package core

import (
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// Ablation switches off one ingredient of PCTWM to measure its
// contribution (the design choices of paper §5.2):
//
//   - AblateNone: the full algorithm;
//   - AblateHistory: communication sinks read uniformly among all legal
//     candidates instead of the h mo-maximal ones (no Definition-5
//     bounding);
//   - AblateDelay: sampled sinks form their communication relation at
//     their natural scheduling position instead of being delayed to run
//     as late as possible (no priority demotion);
//   - AblateLocalViews: non-sink reads pick uniformly among the legal
//     candidates instead of the thread-local view (scheduling bounded,
//     reads unbounded — the read behaviour of the PCT variant).
type Ablation int

const (
	AblateNone Ablation = iota
	AblateHistory
	AblateDelay
	AblateLocalViews
)

// String names the ablation for reports.
func (a Ablation) String() string {
	switch a {
	case AblateNone:
		return "pctwm"
	case AblateHistory:
		return "pctwm-nohistory"
	case AblateDelay:
		return "pctwm-nodelay"
	case AblateLocalViews:
		return "pctwm-nolocalviews"
	default:
		return "pctwm-unknown"
	}
}

// AblatedPCTWM is PCTWM with one ingredient removed.
type AblatedPCTWM struct {
	PCTWM
	mode Ablation
}

// NewAblatedPCTWM returns PCTWM with the given ablation applied.
func NewAblatedPCTWM(d, h, kcom int, mode Ablation) *AblatedPCTWM {
	return &AblatedPCTWM{PCTWM: *NewPCTWM(d, h, kcom), mode: mode}
}

// Name implements engine.Strategy.
func (s *AblatedPCTWM) Name() string { return s.mode.String() }

// NextThread implements engine.Strategy. With AblateDelay, sampled sinks
// are marked reordered but their threads keep their priority, so the
// communication relation forms at the natural position.
func (s *AblatedPCTWM) NextThread(enabled []engine.PendingOp) memmodel.ThreadID {
	if s.mode != AblateDelay {
		return s.PCTWM.NextThread(enabled)
	}
	for {
		op := &enabled[s.highestPriority(enabled)]
		st := &s.threads[op.TID-1]
		if !op.IsCommunicationEvent() || op.Index <= st.lastCounted {
			return op.TID
		}
		st.lastCounted = op.Index
		s.commSeen++
		for _, idx := range s.sampled {
			if idx == s.commSeen {
				st.reorderIdx = op.Index // readGlobal, but no demotion
				break
			}
		}
		return op.TID
	}
}

// PickRead implements engine.Strategy.
func (s *AblatedPCTWM) PickRead(rc engine.ReadContext) int {
	n := len(rc.Candidates)
	switch s.mode {
	case AblateHistory:
		if s.thread(rc.TID).reorderIdx == rc.Index {
			return s.rng.Intn(n) // unbounded history
		}
		return s.PCTWM.PickRead(rc)
	case AblateLocalViews:
		st := s.thread(rc.TID)
		if st.reorderIdx == rc.Index || st.sticky || st.escape {
			return s.PCTWM.PickRead(rc)
		}
		return s.rng.Intn(n) // non-sink reads unrestricted
	default:
		return s.PCTWM.PickRead(rc)
	}
}
