package core

import (
	"math/rand"

	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
	"pctwm/internal/telemetry"
)

// eventKey identifies a (possibly not yet executed) event: the thread and
// its po index. Pending operations expose the same identity, so an event
// delayed by Algorithm 1 is recognized again when its thread resumes.
type eventKey struct {
	tid   memmodel.ThreadID
	index int
}

// pctwmThread is PCTWM's per-thread state, stored densely (index = tid-1)
// so the per-step hot path performs no map operations.
type pctwmThread struct {
	prio   int
	spins  int
	escape bool
	sticky bool
	// lastCounted is the po index of this thread's most recent pending
	// communication event already counted toward kcom; -1 if none. A
	// thread's pending index is monotone, so "op.Index <= lastCounted"
	// is exactly the counted-set membership test of Algorithm 1.
	lastCounted int
	// reorderIdx is the po index of this thread's currently delayed
	// communication event; -1 if none. A thread has at most one pending
	// event, and a delayed event's flag is only consulted while it is
	// still pending, so one index per thread replaces the reorder set.
	reorderIdx int
}

// PCTWM is the paper's Probabilistic Concurrency Testing for Weak Memory
// algorithm (Algorithm 1). It samples an execution with d communication
// relations whose source events lie within history depth h:
//
//   - threads run serially in a random priority order;
//   - the d1…dd-th communication events encountered (indices sampled from
//     [1, kcom]) are delayed by demoting their threads into d reserved
//     low-priority slots, so they execute as late as possible and in tuple
//     order;
//   - a delayed ("reordered") read reads from one of the h mo-maximal
//     legal writes, uniformly (readGlobal); every other read reads from
//     its thread-local view (readLocal).
//
// Priority invariants (the 1/(h·kcom)^d bound of §5.4 assumes them):
//
//   - every live thread's priority is distinct at all times: the high
//     band is a uniformly random rank permutation (OnThreadStart), the
//     d reserved slots 1..d are each taken by at most one delayed thread
//     (one per sampled tuple position), and OnSpin demotes to a fresh
//     strictly-decreasing minimum;
//   - OnThreadStart never produces a priority in the reserved range
//     [1, d]: high-band priorities are ≥ d+1 = highBase;
//   - highestPriority's lowest-index tie-break is therefore unreachable
//     in steady state; it remains only as a deterministic safety net.
type PCTWM struct {
	// Depth is the bug-depth parameter d (number of communication
	// relations to sample).
	Depth int
	// History is the history-depth parameter h (Definition 5).
	History int
	// CommEvents is the estimated number of communication events kcom.
	CommEvents int

	rng *rand.Rand
	// tel is the engine's telemetry shard for the current execution (nil
	// when telemetry is off); change points are logged into it.
	tel *telemetry.EngineCounters

	threads []pctwmThread // index = tid-1
	// sampled holds the d sampled communication-event indices; sampled[k]
	// is the index (in encounter order) of tuple position k+1. d is small,
	// so the per-communication-event lookup is a linear scan.
	sampled   []int
	sampleBuf []int // result buffer for sampleDistinct, reused across runs
	fyScratch []int // Fisher–Yates scratch for sampleDistinct's dense path
	// band lists the threads currently holding high-band priorities in
	// ascending priority order; threads[band[i]-1].prio == highBase + i.
	// Delayed and demoted threads leave the band.
	band          []memmodel.ThreadID
	commSeen      int
	minPrio       int
	highBase      int
	started       int  // threads seen by OnThreadStart this run
	legacyCollide bool // see NewCollidingPCTWM
}

// stickyEscapeAfter is the number of livelock notifications for one
// thread after which PCTWM stops restricting that thread's reads
// altogether. §6.2: "the more thread switches and external reads-from
// PCTWM employs to avoid a livelock, the more it approaches naive random
// testing".
const stickyEscapeAfter = 3

// NewPCTWM returns a PCTWM strategy with bug depth d, history depth h and
// an estimate kcom of the number of communication events.
func NewPCTWM(d, h, kcom int) *PCTWM {
	if d < 0 {
		d = 0
	}
	if h < 1 {
		h = 1
	}
	if kcom < 1 {
		kcom = 1
	}
	return &PCTWM{Depth: d, History: h, CommEvents: kcom}
}

// NewCollidingPCTWM returns the pre-fix PCTWM whose OnThreadStart drew
// priorities with replacement from a band of width 2·started, so two
// threads frequently shared a priority and ties silently resolved
// lowest-tid-first — biasing schedules and voiding the §5.4 bound. It is
// kept ONLY as a regression fixture for the distcheck conformance
// harness (see internal/distcheck).
func NewCollidingPCTWM(d, h, kcom int) *PCTWM {
	s := NewPCTWM(d, h, kcom)
	s.legacyCollide = true
	return s
}

// Name implements engine.Strategy.
func (s *PCTWM) Name() string { return "pctwm" }

// Begin samples the d communication-event indices [d1…dd] uniformly from
// [1, kcom] (Algorithm 1, Data).
func (s *PCTWM) Begin(info engine.ProgramInfo, r *rand.Rand) {
	s.rng = r
	s.tel = info.Telemetry
	s.threads = s.threads[:0]
	s.band = s.band[:0]
	s.commSeen = 0
	s.minPrio = 0
	s.highBase = s.Depth + 1
	s.started = 0
	s.sampleBuf, s.fyScratch = sampleDistinct(r, s.Depth, s.CommEvents, s.sampleBuf, s.fyScratch)
	s.sampled = s.sampleBuf
}

// thread returns the dense state slot for tid, growing the table on
// demand (slots are zeroed and marked unused when grown).
func (s *PCTWM) thread(tid memmodel.ThreadID) *pctwmThread {
	i := int(tid) - 1
	for len(s.threads) <= i {
		s.threads = append(s.threads, pctwmThread{lastCounted: -1, reorderIdx: -1})
	}
	return &s.threads[i]
}

// OnThreadStart gives every new thread a random priority above the d
// reserved slots (Algorithm 1, line 3), distinct from every other live
// thread's: the thread is inserted at a uniformly random rank of the
// high band and the band is renumbered from highBase. Inserting each
// arrival at a uniform rank yields a uniformly random permutation of
// thread ranks without knowing the final thread count up front. Threads
// already delayed or demoted are not in the band and keep their low
// priorities untouched.
func (s *PCTWM) OnThreadStart(tid, _ memmodel.ThreadID) {
	s.started++
	st := s.thread(tid)
	if s.legacyCollide {
		// Pre-fix behavior (regression fixture): sample with replacement,
		// so distinct threads collide and ties resolve lowest-tid-first.
		*st = pctwmThread{prio: s.highBase + s.rng.Intn(s.started*2), lastCounted: -1, reorderIdx: -1}
		return
	}
	*st = pctwmThread{lastCounted: -1, reorderIdx: -1}
	at := s.rng.Intn(len(s.band) + 1)
	s.band = bandInsert(s.band, tid, at)
	for i, id := range s.band {
		s.threads[id-1].prio = s.highBase + i
	}
}

// highestPriority returns the index in enabled of the operation whose
// thread has the highest priority. Every enabled thread has been through
// OnThreadStart, so its state slot exists and is indexed directly — no
// grow checks or PendingOp copies on the per-step scan.
func (s *PCTWM) highestPriority(enabled []engine.PendingOp) int {
	best := 0
	bestPrio := s.threads[enabled[0].TID-1].prio
	for i := 1; i < len(enabled); i++ {
		if p := s.threads[enabled[i].TID-1].prio; p > bestPrio {
			best, bestPrio = i, p
		}
	}
	return best
}

// NextThread implements the scheduling loop of Algorithm 1 (lines 2-13):
// repeatedly take the highest-priority enabled thread; when its pending
// event is a communication event whose running index was sampled, demote
// the thread into reserved slot d−k+1 (so the delayed events run as late
// as possible, in tuple order) and pick again. An already-delayed event is
// executed when its thread surfaces again as the highest priority.
func (s *PCTWM) NextThread(enabled []engine.PendingOp) memmodel.ThreadID {
	for {
		op := &enabled[s.highestPriority(enabled)]
		st := &s.threads[op.TID-1]
		if !op.IsCommunicationEvent() || op.Index <= st.lastCounted {
			return op.TID
		}
		st.lastCounted = op.Index
		s.commSeen++
		k := 0
		for i, idx := range s.sampled {
			if idx == s.commSeen {
				k = i + 1
				break
			}
		}
		if k == 0 {
			return op.TID
		}
		// Delay: move the thread into reserved slot d−k+1 and mark the
		// event as a communication sink (lines 9-13). Each tuple position
		// is sampled at most once, so the slot is free; the thread leaves
		// the high band so later thread starts cannot renumber it back up.
		s.band = bandRemove(s.band, op.TID)
		st.prio = s.Depth - k + 1
		st.reorderIdx = op.Index
		if s.tel != nil {
			s.tel.LogChangePoint(telemetry.ChangePoint{
				TID: op.TID, Index: op.Index, Comm: s.commSeen, Slot: s.Depth - k + 1,
			})
		}
		// If this thread was the only enabled one, it must run anyway;
		// the counted guard above returns it on the next iteration.
	}
}

// PickRead implements readLocal / readGlobal (Algorithm 2 lines 9-19):
// reordered events read from one of the h mo-maximal candidates uniformly;
// all other reads take the thread-local view write (Candidates[0]). A
// thread flagged by the livelock heuristic escapes through a fully random
// read once, approaching naive random testing (§6.2).
func (s *PCTWM) PickRead(rc engine.ReadContext) int {
	n := len(rc.Candidates)
	st := s.thread(rc.TID)
	if st.sticky {
		return s.rng.Intn(n)
	}
	if st.escape {
		st.escape = false
		return s.rng.Intn(n)
	}
	if st.reorderIdx == rc.Index {
		h := s.History
		if h > n {
			h = n
		}
		return n - 1 - s.rng.Intn(h)
	}
	return 0
}

// OnEvent implements engine.Strategy. Communication events are counted at
// scheduling time (NextThread), matching Algorithm 1's encounter order.
func (s *PCTWM) OnEvent(*memmodel.Event) {}

// OnSpin demotes a livelocked thread below every priority and lets its
// next read pick any visible write (§6.2: "PCTWM applies a heuristic to
// switch to a random thread when it observes a livelock"). A thread that
// keeps livelocking is released from view-restricted reads entirely,
// degrading gracefully to naive random testing.
func (s *PCTWM) OnSpin(tid memmodel.ThreadID) {
	s.minPrio--
	st := s.thread(tid)
	s.band = bandRemove(s.band, tid)
	st.prio = s.minPrio
	st.escape = true
	st.spins++
	if st.spins >= stickyEscapeAfter {
		st.sticky = true
	}
}
