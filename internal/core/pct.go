package core

import (
	"math/rand"

	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// PCT is the paper's weak-memory-aware variant of the classic PCT priority
// scheduler (Burckhardt et al., ASPLOS 2010): threads run in a random
// priority order, priorities drop at d−1 change points sampled uniformly
// among the k program events, and — unlike original PCT, which forces SC —
// reads observe a value selected uniformly at random among the
// coherence-legal visible writes (paper §6, "Implementation": "our
// implementation does not produce only sequentially consistent executions").
//
// Priority invariants (the detection-probability bound of §2.2 assumes
// all of them):
//
//   - every live thread holds a priority distinct from every other's, at
//     all times: the high band is a uniformly random rank permutation
//     (see OnThreadStart), change points demote into per-rank slots
//     d−1 … 1 that fire at most once each, and OnSpin demotes to a fresh
//     strictly-decreasing minimum;
//   - the reserved low range (…, d−1] is never produced by OnThreadStart:
//     high-band priorities are ≥ d+1 = highBase;
//   - NextThread's lowest-tid tie-break is therefore unreachable in
//     steady state; it remains only as a deterministic safety net.
type PCT struct {
	// Depth is the bug-depth parameter d.
	Depth int
	// Events is the estimated number of program events k.
	Events int

	rng *rand.Rand

	prio     []int // index = tid-1
	counter  int   // executed events so far
	changeAt []int // changeAt[rank-1] = event count of change point rank
	// band lists the threads currently holding high-band priorities in
	// ascending priority order; prio[band[i]-1] == highBase + i. Demoted
	// threads leave the band (their slots above keep their values — gaps
	// are harmless, distinctness is what matters).
	band          []memmodel.ThreadID
	sampleBuf     []int // scratch for sampleDistinct's dense path
	started       int   // threads seen by OnThreadStart this run
	minPrio       int
	highBase      int
	legacyCollide bool // see NewCollidingPCT
}

// NewPCT returns a PCT strategy with bug depth d and an estimate k of the
// number of program events.
func NewPCT(d, k int) *PCT {
	if d < 1 {
		d = 1
	}
	if k < 1 {
		k = 1
	}
	return &PCT{Depth: d, Events: k}
}

// NewCollidingPCT returns the pre-fix PCT whose OnThreadStart drew
// priorities with replacement from a band of width 2·started, so two
// threads frequently shared a priority and ties silently resolved
// lowest-tid-first — biasing schedules and voiding the §2.2 bound. It is
// kept ONLY as a regression fixture: the distcheck conformance harness
// must flag this implementation (see internal/distcheck).
func NewCollidingPCT(d, k int) *PCT {
	s := NewPCT(d, k)
	s.legacyCollide = true
	return s
}

// Name implements engine.Strategy.
func (s *PCT) Name() string { return "pct" }

// Begin implements engine.Strategy.
func (s *PCT) Begin(info engine.ProgramInfo, r *rand.Rand) {
	s.rng = r
	s.prio = s.prio[:0]
	s.band = s.band[:0]
	s.counter = 0
	s.started = 0
	s.highBase = s.Depth + 1
	s.minPrio = 0
	// Sample d−1 distinct change points from [1, k].
	s.changeAt = s.changeAt[:0]
	if s.Depth > 1 {
		s.changeAt, s.sampleBuf = sampleDistinct(s.rng, s.Depth-1, s.Events, s.changeAt, s.sampleBuf)
	}
}

// sampleDistinct samples n distinct integers from [1, max] (fewer when
// max < n), in random order, appending them to buf[:0]. For sparse
// samples (the common case: n is the bug depth, max the event-count
// estimate) it uses rejection sampling against the small result set; the
// dense case runs a partial Fisher–Yates over scratch, which is grown
// once and reused across runs — the steady state allocates nothing.
// Returns the sample and the (possibly grown) scratch buffer.
func sampleDistinct(r *rand.Rand, n, max int, buf, scratch []int) (pts, scratch2 []int) {
	if n > max {
		n = max
	}
	pts = buf[:0]
	if n == 0 {
		return pts, scratch
	}
	if 2*n >= max {
		// Dense: rejection would thrash. A partial Fisher–Yates over the
		// value range draws exactly n values in O(max) setup + O(n) swaps
		// without the per-call permutation allocation of rand.Perm.
		for cap(scratch) < max {
			scratch = append(scratch[:cap(scratch)], 0)
		}
		scratch = scratch[:max]
		for i := range scratch {
			scratch[i] = i + 1
		}
		for i := 0; i < n; i++ {
			j := i + r.Intn(max-i)
			scratch[i], scratch[j] = scratch[j], scratch[i]
			pts = append(pts, scratch[i])
		}
		return pts, scratch
	}
	for len(pts) < n {
		v := r.Intn(max) + 1
		dup := false
		for _, p := range pts {
			if p == v {
				dup = true
				break
			}
		}
		if !dup {
			pts = append(pts, v)
		}
	}
	return pts, scratch
}

// bandInsert inserts tid at position at (0 ≤ at ≤ len(band)), shifting
// higher entries up. The slice is reused across runs; steady state
// performs no allocations once it has grown to the program's thread count.
func bandInsert(band []memmodel.ThreadID, tid memmodel.ThreadID, at int) []memmodel.ThreadID {
	band = append(band, 0)
	copy(band[at+1:], band[at:])
	band[at] = tid
	return band
}

// bandRemove removes tid from the band, preserving the relative order of
// the remaining threads; a tid not in the band is a no-op.
func bandRemove(band []memmodel.ThreadID, tid memmodel.ThreadID) []memmodel.ThreadID {
	for i, id := range band {
		if id == tid {
			copy(band[i:], band[i+1:])
			return band[:len(band)-1]
		}
	}
	return band
}

// priority returns a pointer to tid's priority slot, growing the dense
// table on demand.
func (s *PCT) priority(tid memmodel.ThreadID) *int {
	i := int(tid) - 1
	for len(s.prio) <= i {
		s.prio = append(s.prio, 0)
	}
	return &s.prio[i]
}

// OnThreadStart assigns a fresh high priority, distinct from every other
// live thread's: the new thread is inserted at a uniformly random rank of
// the high band and the band is renumbered from highBase. Inserting each
// arrival at a uniform rank yields a uniformly random permutation of
// thread ranks — exactly the "random distinct priorities" the PCT bound
// assumes — without knowing the final thread count up front. Threads
// already demoted below the band (change points, OnSpin) are not in the
// band and keep their low priorities untouched.
func (s *PCT) OnThreadStart(tid, _ memmodel.ThreadID) {
	s.started++
	if s.legacyCollide {
		// Pre-fix behavior (regression fixture): sample with replacement,
		// so distinct threads collide and ties resolve lowest-tid-first.
		*s.priority(tid) = s.highBase + s.rng.Intn(s.started*2)
		return
	}
	at := s.rng.Intn(len(s.band) + 1)
	s.band = bandInsert(s.band, tid, at)
	s.priority(tid) // grow the dense table before renumbering
	for i, id := range s.band {
		s.prio[id-1] = s.highBase + i
	}
}

// NextThread runs the highest-priority enabled thread. The strict '>'
// keeps the scan deterministic (lowest tid first on equal priorities);
// with distinct priorities the tie-break never fires.
func (s *PCT) NextThread(enabled []engine.PendingOp) memmodel.ThreadID {
	best := enabled[0].TID
	bestPrio := *s.priority(best)
	for _, op := range enabled[1:] {
		if p := *s.priority(op.TID); p > bestPrio {
			best, bestPrio = op.TID, p
		}
	}
	return best
}

// PickRead observes a value selected uniformly among the legal candidates
// (the weak-memory behavior of the paper's PCT variant).
func (s *PCT) PickRead(rc engine.ReadContext) int {
	return s.rng.Intn(len(rc.Candidates))
}

// OnEvent advances the event counter and applies priority change points.
func (s *PCT) OnEvent(ev *memmodel.Event) {
	if !ev.Label.Kind.IsMemoryAccess() && ev.Label.Kind != memmodel.KindFence {
		return
	}
	s.counter++
	for i, p := range s.changeAt {
		if p == s.counter {
			// Drop the current thread's priority to d − rank, below every
			// initial priority; later change points sit lower still. Each
			// rank fires at most once, so the slots stay distinct. The
			// thread leaves the high band — later thread starts must not
			// renumber it back up.
			s.band = bandRemove(s.band, ev.TID)
			*s.priority(ev.TID) = s.Depth - (i + 1)
			break
		}
	}
}

// OnSpin demotes a livelocked thread below every other priority so the
// rest of the system can make progress (the starvation heuristic of the
// original PCT, §6.2). minPrio decreases monotonically, so repeated
// spins keep priorities distinct.
func (s *PCT) OnSpin(tid memmodel.ThreadID) {
	s.minPrio--
	s.band = bandRemove(s.band, tid)
	*s.priority(tid) = s.minPrio
}
