package core

import (
	"math/rand"

	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// PCT is the paper's weak-memory-aware variant of the classic PCT priority
// scheduler (Burckhardt et al., ASPLOS 2010): threads run in a random
// priority order, priorities drop at d−1 change points sampled uniformly
// among the k program events, and — unlike original PCT, which forces SC —
// reads observe a value selected uniformly at random among the
// coherence-legal visible writes (paper §6, "Implementation": "our
// implementation does not produce only sequentially consistent executions").
type PCT struct {
	// Depth is the bug-depth parameter d.
	Depth int
	// Events is the estimated number of program events k.
	Events int

	rng *rand.Rand

	prio      []int // index = tid-1
	counter   int   // executed events so far
	changeAt  []int // changeAt[rank-1] = event count of change point rank
	minPrio   int
	highBase  int
	highCount int
}

// NewPCT returns a PCT strategy with bug depth d and an estimate k of the
// number of program events.
func NewPCT(d, k int) *PCT {
	if d < 1 {
		d = 1
	}
	if k < 1 {
		k = 1
	}
	return &PCT{Depth: d, Events: k}
}

// Name implements engine.Strategy.
func (s *PCT) Name() string { return "pct" }

// Begin implements engine.Strategy.
func (s *PCT) Begin(info engine.ProgramInfo, r *rand.Rand) {
	s.rng = r
	s.prio = s.prio[:0]
	s.counter = 0
	s.highBase = s.Depth + 1
	s.highCount = 0
	s.minPrio = 0
	// Sample d−1 distinct change points from [1, k].
	s.changeAt = s.changeAt[:0]
	if s.Depth > 1 {
		s.changeAt = sampleDistinct(s.rng, s.Depth-1, s.Events, s.changeAt)
	}
}

// sampleDistinct samples n distinct integers from [1, max] (fewer when
// max < n), in random order, appending them to buf[:0]. For sparse samples
// (the common case: n is the bug depth, max the event-count estimate) it
// uses rejection sampling against the small result set; the dense case
// falls back to a full permutation.
func sampleDistinct(r *rand.Rand, n, max int, buf []int) []int {
	if n > max {
		n = max
	}
	pts := buf[:0]
	if n == 0 {
		return pts
	}
	if 2*n >= max {
		// Dense: rejection would thrash; a permutation is O(max) anyway.
		perm := r.Perm(max)
		for i := 0; i < n; i++ {
			pts = append(pts, perm[i]+1)
		}
		return pts
	}
	for len(pts) < n {
		v := r.Intn(max) + 1
		dup := false
		for _, p := range pts {
			if p == v {
				dup = true
				break
			}
		}
		if !dup {
			pts = append(pts, v)
		}
	}
	return pts
}

// priority returns a pointer to tid's priority slot, growing the dense
// table on demand.
func (s *PCT) priority(tid memmodel.ThreadID) *int {
	i := int(tid) - 1
	for len(s.prio) <= i {
		s.prio = append(s.prio, 0)
	}
	return &s.prio[i]
}

// OnThreadStart assigns a fresh random high priority.
func (s *PCT) OnThreadStart(tid, _ memmodel.ThreadID) {
	s.highCount++
	// A random rank among the high band; ties broken by thread id in
	// NextThread, so reused ranks are harmless.
	*s.priority(tid) = s.highBase + s.rng.Intn(s.highCount*2)
}

// NextThread runs the highest-priority enabled thread.
func (s *PCT) NextThread(enabled []engine.PendingOp) memmodel.ThreadID {
	best := enabled[0].TID
	bestPrio := *s.priority(best)
	for _, op := range enabled[1:] {
		if p := *s.priority(op.TID); p > bestPrio {
			best, bestPrio = op.TID, p
		}
	}
	return best
}

// PickRead observes a value selected uniformly among the legal candidates
// (the weak-memory behavior of the paper's PCT variant).
func (s *PCT) PickRead(rc engine.ReadContext) int {
	return s.rng.Intn(len(rc.Candidates))
}

// OnEvent advances the event counter and applies priority change points.
func (s *PCT) OnEvent(ev *memmodel.Event) {
	if !ev.Label.Kind.IsMemoryAccess() && ev.Label.Kind != memmodel.KindFence {
		return
	}
	s.counter++
	for i, p := range s.changeAt {
		if p == s.counter {
			// Drop the current thread's priority to d − rank, below every
			// initial priority; later change points sit lower still.
			*s.priority(ev.TID) = s.Depth - (i + 1)
			break
		}
	}
}

// OnSpin demotes a livelocked thread below every other priority so the
// rest of the system can make progress (the starvation heuristic of the
// original PCT, §6.2).
func (s *PCT) OnSpin(tid memmodel.ThreadID) {
	s.minPrio--
	*s.priority(tid) = s.minPrio
}
