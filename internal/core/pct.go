package core

import (
	"math/rand"

	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// PCT is the paper's weak-memory-aware variant of the classic PCT priority
// scheduler (Burckhardt et al., ASPLOS 2010): threads run in a random
// priority order, priorities drop at d−1 change points sampled uniformly
// among the k program events, and — unlike original PCT, which forces SC —
// reads observe a value selected uniformly at random among the
// coherence-legal visible writes (paper §6, "Implementation": "our
// implementation does not produce only sequentially consistent executions").
type PCT struct {
	// Depth is the bug-depth parameter d.
	Depth int
	// Events is the estimated number of program events k.
	Events int

	rng *rand.Rand

	prio      map[memmodel.ThreadID]int
	counter   int         // executed events so far
	changeAt  map[int]int // event count -> change-point rank (1..d-1)
	minPrio   int
	highBase  int
	highCount int
}

// NewPCT returns a PCT strategy with bug depth d and an estimate k of the
// number of program events.
func NewPCT(d, k int) *PCT {
	if d < 1 {
		d = 1
	}
	if k < 1 {
		k = 1
	}
	return &PCT{Depth: d, Events: k}
}

// Name implements engine.Strategy.
func (s *PCT) Name() string { return "pct" }

// Begin implements engine.Strategy.
func (s *PCT) Begin(info engine.ProgramInfo, r *rand.Rand) {
	s.rng = r
	s.prio = make(map[memmodel.ThreadID]int, info.NumRootThreads)
	s.counter = 0
	s.highBase = s.Depth + 1
	s.highCount = 0
	s.minPrio = 0
	// Sample d−1 distinct change points from [1, k].
	s.changeAt = make(map[int]int, s.Depth-1)
	if s.Depth > 1 {
		pts := sampleDistinct(s.rng, s.Depth-1, s.Events)
		for rank, p := range pts {
			s.changeAt[p] = rank + 1
		}
	}
}

// sampleDistinct samples n distinct integers from [1, max] (fewer when
// max < n), in random order.
func sampleDistinct(r *rand.Rand, n, max int) []int {
	if n > max {
		n = max
	}
	perm := r.Perm(max)
	pts := make([]int, n)
	for i := 0; i < n; i++ {
		pts[i] = perm[i] + 1
	}
	return pts
}

// OnThreadStart assigns a fresh random high priority.
func (s *PCT) OnThreadStart(tid, _ memmodel.ThreadID) {
	s.highCount++
	// A random rank among the high band; ties broken by thread id in
	// NextThread, so reused ranks are harmless.
	s.prio[tid] = s.highBase + s.rng.Intn(s.highCount*2)
}

// NextThread runs the highest-priority enabled thread.
func (s *PCT) NextThread(enabled []engine.PendingOp) memmodel.ThreadID {
	best := enabled[0].TID
	bestPrio := s.prio[best]
	for _, op := range enabled[1:] {
		if p := s.prio[op.TID]; p > bestPrio {
			best, bestPrio = op.TID, p
		}
	}
	return best
}

// PickRead observes a value selected uniformly among the legal candidates
// (the weak-memory behavior of the paper's PCT variant).
func (s *PCT) PickRead(rc engine.ReadContext) int {
	return s.rng.Intn(len(rc.Candidates))
}

// OnEvent advances the event counter and applies priority change points.
func (s *PCT) OnEvent(ev memmodel.Event) {
	if !ev.Label.Kind.IsMemoryAccess() && ev.Label.Kind != memmodel.KindFence {
		return
	}
	s.counter++
	if rank, ok := s.changeAt[s.counter]; ok {
		// Drop the current thread's priority to d − rank, below every
		// initial priority; later change points sit lower still.
		s.prio[ev.TID] = s.Depth - rank
	}
}

// OnSpin demotes a livelocked thread below every other priority so the
// rest of the system can make progress (the starvation heuristic of the
// original PCT, §6.2).
func (s *PCT) OnSpin(tid memmodel.ThreadID) {
	s.minPrio--
	s.prio[tid] = s.minPrio
}
