package core

import (
	"math/rand"

	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// POS is the partial order sampling algorithm (Yuan, Yang, Gu, CAV 2018),
// one of the randomized baselines the paper's related work discusses
// (§7). Every pending event carries an independently sampled random
// priority; the scheduler runs the highest-priority pending event and
// resamples the priorities of events that "conflict" with the executed
// one (same-location accesses with at least one write), which makes POS
// cover partial orders more uniformly than a random walk. Reads-from
// choices are uniform among the coherence-legal candidates, like the
// paper's PCT variant.
type POS struct {
	rng  *rand.Rand
	prio map[eventKey]float64
	last map[eventKey]memmodel.Loc // pending event -> location (for conflicts)
}

// NewPOS returns a partial order sampling strategy.
func NewPOS() *POS { return &POS{} }

// Name implements engine.Strategy.
func (s *POS) Name() string { return "pos" }

// Begin implements engine.Strategy.
func (s *POS) Begin(_ engine.ProgramInfo, r *rand.Rand) {
	s.rng = r
	s.prio = make(map[eventKey]float64)
	s.last = make(map[eventKey]memmodel.Loc)
}

func (s *POS) priority(op engine.PendingOp) float64 {
	key := eventKey{op.TID, op.Index}
	p, ok := s.prio[key]
	if !ok {
		p = s.rng.Float64()
		s.prio[key] = p
		s.last[key] = op.Loc
	}
	return p
}

// NextThread runs the pending event with the highest sampled priority,
// then resamples priorities of pending events racing with it.
func (s *POS) NextThread(enabled []engine.PendingOp) memmodel.ThreadID {
	best := enabled[0]
	bestPrio := s.priority(best)
	for _, op := range enabled[1:] {
		if p := s.priority(op); p > bestPrio {
			best, bestPrio = op, p
		}
	}
	// Resample events that conflict with the chosen one: same location,
	// at least one writer.
	if best.Kind.IsMemoryAccess() && best.Loc != memmodel.NoLoc {
		for _, op := range enabled {
			if op.TID == best.TID || op.Loc != best.Loc {
				continue
			}
			if !best.Kind.Writes() && !op.Kind.Writes() {
				continue
			}
			s.prio[eventKey{op.TID, op.Index}] = s.rng.Float64()
		}
	}
	// Drop the executed event's entry; its thread's next op gets a fresh
	// sample.
	delete(s.prio, eventKey{best.TID, best.Index})
	return best.TID
}

// PickRead picks uniformly among all legal candidates.
func (s *POS) PickRead(rc engine.ReadContext) int {
	return s.rng.Intn(len(rc.Candidates))
}

// OnEvent implements engine.Strategy.
func (s *POS) OnEvent(*memmodel.Event) {}

// OnThreadStart implements engine.Strategy.
func (s *POS) OnThreadStart(_, _ memmodel.ThreadID) {}

// OnSpin implements engine.Strategy. POS needs no livelock escape: every
// enabled event keeps a positive probability of being scheduled after
// each resampling.
func (s *POS) OnSpin(memmodel.ThreadID) {}
