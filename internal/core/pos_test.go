package core

import (
	"testing"

	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// TestPOSSchedulesAllThreads: over many steps POS schedules every thread.
func TestPOSSchedulesAllThreads(t *testing.T) {
	s := NewPOS()
	s.Begin(engine.ProgramInfo{NumRootThreads: 3}, newRng())
	seen := map[memmodel.ThreadID]int{}
	for i := 0; i < 600; i++ {
		en := []engine.PendingOp{
			pending(1, i, memmodel.KindWrite, memmodel.Relaxed),
			pending(2, i, memmodel.KindWrite, memmodel.Relaxed),
			pending(3, i, memmodel.KindRead, memmodel.Relaxed),
		}
		seen[s.NextThread(en)]++
	}
	for tid := memmodel.ThreadID(1); tid <= 3; tid++ {
		if seen[tid] < 100 {
			t.Fatalf("POS scheduling skewed: %v", seen)
		}
	}
}

// TestPOSPriorityStable: the same pending event keeps its priority until
// executed or resampled, so scheduling is not a pure random walk.
func TestPOSPriorityStable(t *testing.T) {
	s := NewPOS()
	s.Begin(engine.ProgramInfo{NumRootThreads: 2}, newRng())
	opA := pending(1, 0, memmodel.KindWrite, memmodel.Relaxed)
	opB := pending(2, 0, memmodel.KindFence, memmodel.Acquire) // never conflicts
	first := s.NextThread([]engine.PendingOp{opA, opB})
	if first == 1 {
		// A executed; B's priority must persist: with a fresh event C of
		// lower sampled priority, B eventually wins deterministically
		// given its stored sample. Just check the map retains B.
		if _, ok := s.prio[eventKey{2, 0}]; !ok {
			t.Fatal("pending event lost its priority sample")
		}
	} else {
		if _, ok := s.prio[eventKey{1, 0}]; !ok {
			t.Fatal("pending event lost its priority sample")
		}
	}
}

// TestPOSResamplesConflicts: executing a write resamples same-location
// pending accesses.
func TestPOSResamplesConflicts(t *testing.T) {
	s := NewPOS()
	s.Begin(engine.ProgramInfo{NumRootThreads: 2}, newRng())
	w := pending(1, 0, memmodel.KindWrite, memmodel.Relaxed)
	r := pending(2, 0, memmodel.KindRead, memmodel.Relaxed)
	// Force the write to win.
	s.prio[eventKey{1, 0}] = 2.0
	before := s.priority(r)
	if got := s.NextThread([]engine.PendingOp{w, r}); got != 1 {
		t.Fatalf("write should win, got t%d", got)
	}
	after := s.prio[eventKey{2, 0}]
	if after == before {
		t.Fatalf("conflicting read not resampled (%v == %v)", before, after)
	}
}
