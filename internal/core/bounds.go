package core

import "math"

// PCTBound returns the original PCT lower bound on the probability of
// detecting a bug of depth d in a program with t threads and k events:
// 1/(t·k^(d−1)) (paper §2.2).
func PCTBound(t, k, d int) float64 {
	if t < 1 || k < 1 || d < 1 {
		return 0
	}
	return 1 / (float64(t) * math.Pow(float64(k), float64(d-1)))
}

// PCTWMBound returns the PCTWM lower bound on the probability of sampling
// a target execution with d communication relations within history depth
// h in a program with kcom communication events: 1/(h·kcom)^d (paper
// §5.4; the sample set has at most (kcom^d)·(h^d) executions).
func PCTWMBound(kcom, d, h int) float64 {
	if kcom < 1 || h < 1 || d < 0 {
		return 0
	}
	return 1 / math.Pow(float64(h*kcom), float64(d))
}
