package core

import (
	"testing"

	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

func TestAblationNames(t *testing.T) {
	want := map[Ablation]string{
		AblateNone:       "pctwm",
		AblateHistory:    "pctwm-nohistory",
		AblateDelay:      "pctwm-nodelay",
		AblateLocalViews: "pctwm-nolocalviews",
	}
	for m, name := range want {
		if got := NewAblatedPCTWM(1, 1, 5, m).Name(); got != name {
			t.Errorf("Name(%v) = %q, want %q", m, got, name)
		}
	}
	if Ablation(99).String() != "pctwm-unknown" {
		t.Error("unknown ablation string")
	}
}

// TestAblateDelayKeepsPriority: the sampled sink's thread is not demoted
// and runs immediately.
func TestAblateDelayKeepsPriority(t *testing.T) {
	s := NewAblatedPCTWM(1, 1, 1, AblateDelay)
	s.Begin(engine.ProgramInfo{NumRootThreads: 2}, newRng())
	s.OnThreadStart(1, 0)
	s.OnThreadStart(2, 0)
	s.thread(2).prio = 1000
	read := pending(2, 0, memmodel.KindRead, memmodel.Relaxed)
	write := pending(1, 0, memmodel.KindWrite, memmodel.Relaxed)
	if got := s.NextThread([]engine.PendingOp{write, read}); got != 2 {
		t.Fatalf("no-delay must schedule the sink immediately, got t%d", got)
	}
	if s.thread(2).prio != 1000 {
		t.Fatalf("no-delay must not demote: prio[2]=%d", s.thread(2).prio)
	}
	// The sink is still reordered: its read goes global.
	rc := engine.ReadContext{TID: 2, Index: 0, Loc: 1, Candidates: make([]engine.ReadCandidate, 3)}
	if pick := s.PickRead(rc); pick != 2 {
		t.Fatalf("sink read should be global (mo-max), got %d", pick)
	}
}

// TestAblateHistoryUnbounded: sink reads roam all candidates.
func TestAblateHistoryUnbounded(t *testing.T) {
	s := NewAblatedPCTWM(1, 1, 1, AblateHistory)
	s.Begin(engine.ProgramInfo{NumRootThreads: 1}, newRng())
	s.OnThreadStart(1, 0)
	read := pending(1, 0, memmodel.KindRead, memmodel.Relaxed)
	s.NextThread([]engine.PendingOp{read})
	rc := engine.ReadContext{TID: 1, Index: 0, Loc: 1, Candidates: make([]engine.ReadCandidate, 6)}
	seen := map[int]bool{}
	for i := 0; i < 300; i++ {
		seen[s.PickRead(rc)] = true
	}
	if len(seen) < 4 {
		t.Fatalf("unbounded history should roam, saw %v", seen)
	}
	// Non-sink reads stay local.
	rc2 := engine.ReadContext{TID: 1, Index: 7, Loc: 1, Candidates: make([]engine.ReadCandidate, 6)}
	if pick := s.PickRead(rc2); pick != 0 {
		t.Fatalf("non-sink read must stay local, got %d", pick)
	}
}

// TestAblateLocalViewsRandomReads: non-sink reads are uniform.
func TestAblateLocalViewsRandomReads(t *testing.T) {
	s := NewAblatedPCTWM(0, 1, 5, AblateLocalViews)
	s.Begin(engine.ProgramInfo{NumRootThreads: 1}, newRng())
	s.OnThreadStart(1, 0)
	rc := engine.ReadContext{TID: 1, Index: 3, Loc: 1, Candidates: make([]engine.ReadCandidate, 5)}
	seen := map[int]bool{}
	for i := 0; i < 300; i++ {
		seen[s.PickRead(rc)] = true
	}
	if len(seen) < 3 {
		t.Fatalf("no-local-views reads should be uniform, saw %v", seen)
	}
}
