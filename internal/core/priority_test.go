package core

import (
	"math/rand"
	"testing"

	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// startThreads begins a fresh run and starts n root threads.
func startPCT(s *PCT, n int, r *rand.Rand) {
	s.Begin(engine.ProgramInfo{NumRootThreads: n}, r)
	for tid := 1; tid <= n; tid++ {
		s.OnThreadStart(memmodel.ThreadID(tid), 0)
	}
}

func startPCTWM(s *PCTWM, n int, r *rand.Rand) {
	s.Begin(engine.ProgramInfo{NumRootThreads: n}, r)
	for tid := 1; tid <= n; tid++ {
		s.OnThreadStart(memmodel.ThreadID(tid), 0)
	}
}

// TestPCTDistinctPriorities: every started thread holds a priority
// distinct from every other's and above the reserved range [1, d].
func TestPCTDistinctPriorities(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 9} {
		s := NewPCT(3, 50)
		r := rand.New(rand.NewSource(11))
		for round := 0; round < 200; round++ {
			startPCT(s, n, r)
			seen := map[int]memmodel.ThreadID{}
			for tid := 1; tid <= n; tid++ {
				p := *s.priority(memmodel.ThreadID(tid))
				if p < s.highBase {
					t.Fatalf("n=%d round=%d: t%d priority %d inside the reserved range (highBase %d)", n, round, tid, p, s.highBase)
				}
				if other, dup := seen[p]; dup {
					t.Fatalf("n=%d round=%d: priority collision %d between t%d and t%d", n, round, p, tid, other)
				}
				seen[p] = memmodel.ThreadID(tid)
			}
		}
	}
}

// TestPCTWMDistinctPriorities: same invariant for PCTWM.
func TestPCTWMDistinctPriorities(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 9} {
		s := NewPCTWM(2, 3, 10)
		r := rand.New(rand.NewSource(13))
		for round := 0; round < 200; round++ {
			startPCTWM(s, n, r)
			seen := map[int]memmodel.ThreadID{}
			for tid := 1; tid <= n; tid++ {
				p := s.thread(memmodel.ThreadID(tid)).prio
				if p < s.highBase {
					t.Fatalf("n=%d round=%d: t%d priority %d inside the reserved range (highBase %d)", n, round, tid, p, s.highBase)
				}
				if other, dup := seen[p]; dup {
					t.Fatalf("n=%d round=%d: priority collision %d between t%d and t%d", n, round, p, tid, other)
				}
				seen[p] = memmodel.ThreadID(tid)
			}
		}
	}
}

// TestCollidingFixturesCollide: the regression fixtures preserve the
// pre-fix bug — priorities drawn with replacement do collide.
func TestCollidingFixturesCollide(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pct := NewCollidingPCT(3, 50)
	pctwm := NewCollidingPCTWM(2, 3, 10)
	collPCT, collPCTWM := 0, 0
	const rounds = 500
	for round := 0; round < rounds; round++ {
		startPCT(pct, 3, r)
		prios := map[int]bool{}
		for tid := 1; tid <= 3; tid++ {
			prios[*pct.priority(memmodel.ThreadID(tid))] = true
		}
		if len(prios) < 3 {
			collPCT++
		}
		startPCTWM(pctwm, 3, r)
		prios = map[int]bool{}
		for tid := 1; tid <= 3; tid++ {
			prios[pctwm.thread(memmodel.ThreadID(tid)).prio] = true
		}
		if len(prios) < 3 {
			collPCTWM++
		}
	}
	if collPCT < rounds/10 || collPCTWM < rounds/10 {
		t.Fatalf("fixtures should collide frequently: pct %d/%d, pctwm %d/%d", collPCT, rounds, collPCTWM, rounds)
	}
}

// TestPCTRankPermutationUniform: inserting each arrival at a uniform
// rank must yield a uniformly random permutation of thread ranks. With 3
// threads there are 6 orderings; each should appear ≈1/6 of the time.
func TestPCTRankPermutationUniform(t *testing.T) {
	s := NewPCT(1, 10)
	r := rand.New(rand.NewSource(42))
	counts := map[[3]int]int{}
	const rounds = 6000
	for round := 0; round < rounds; round++ {
		startPCT(s, 3, r)
		var perm [3]int
		for tid := 1; tid <= 3; tid++ {
			perm[tid-1] = *s.priority(memmodel.ThreadID(tid)) - s.highBase
		}
		counts[perm]++
	}
	if len(counts) != 6 {
		t.Fatalf("expected all 6 rank permutations, saw %d: %v", len(counts), counts)
	}
	for perm, c := range counts {
		if c < rounds/6-rounds/24 || c > rounds/6+rounds/24 {
			t.Fatalf("rank permutation skewed: %v seen %d times (expect ≈%d): %v", perm, c, rounds/6, counts)
		}
	}
}

// TestPCTDemotedThreadsSurviveLaterStarts: a thread demoted below the
// band (change point or spin) must keep its low priority when later
// thread starts renumber the band.
func TestPCTDemotedThreadsSurviveLaterStarts(t *testing.T) {
	s := NewPCT(3, 50)
	r := rand.New(rand.NewSource(5))
	startPCT(s, 2, r)

	// Change-point demotion of t1.
	s.changeAt = append(s.changeAt[:0], 1)
	s.counter = 0
	s.OnEvent(&memmodel.Event{TID: 1, Label: memmodel.Label{Kind: memmodel.KindWrite, Order: memmodel.Relaxed, Loc: 1}})
	demoted := *s.priority(1)
	if demoted >= s.highBase {
		t.Fatalf("change point did not demote t1: %d", demoted)
	}
	s.OnThreadStart(3, 1)
	s.OnThreadStart(4, 1)
	if got := *s.priority(1); got != demoted {
		t.Fatalf("later starts changed the demoted priority: %d -> %d", demoted, got)
	}

	// Spin demotion of t2 survives more starts, and stays distinct.
	s.OnSpin(2)
	spun := *s.priority(2)
	if spun >= s.highBase {
		t.Fatalf("OnSpin did not demote t2: %d", spun)
	}
	s.OnThreadStart(5, 1)
	if got := *s.priority(2); got != spun {
		t.Fatalf("later starts changed the spun priority: %d -> %d", spun, got)
	}
	prios := map[int]bool{}
	for tid := memmodel.ThreadID(1); tid <= 5; tid++ {
		p := *s.priority(tid)
		if prios[p] {
			t.Fatalf("collision after demotions+starts at priority %d", p)
		}
		prios[p] = true
	}
}

// TestPCTWMDelayedThreadSurvivesLaterStarts: a thread delayed into a
// reserved slot must keep it when later thread starts renumber the band.
func TestPCTWMDelayedThreadSurvivesLaterStarts(t *testing.T) {
	s := NewPCTWM(1, 1, 1)
	r := rand.New(rand.NewSource(9))
	startPCTWM(s, 2, r)
	// t2's read is communication event #1, always sampled with kcom=1, d=1.
	s.thread(2).prio = 1000
	read := engine.PendingOp{TID: 2, Index: 0, Kind: memmodel.KindRead, Order: memmodel.Relaxed, Loc: 1,
		Comm: memmodel.Label{Kind: memmodel.KindRead, Order: memmodel.Relaxed}.IsCommunicationEvent()}
	write := engine.PendingOp{TID: 1, Index: 0, Kind: memmodel.KindWrite, Order: memmodel.Relaxed, Loc: 1}
	if got := s.NextThread([]engine.PendingOp{write, read}); got != 1 {
		t.Fatalf("sampled sink should be delayed, scheduled t%d", got)
	}
	slot := s.thread(2).prio
	if slot != s.Depth { // reserved slot d−k+1 = 1 with d=1, k=1
		t.Fatalf("delayed thread not in reserved slot: %d", slot)
	}
	s.OnThreadStart(3, 1)
	s.OnThreadStart(4, 1)
	if got := s.thread(2).prio; got != slot {
		t.Fatalf("later starts moved the delayed thread: %d -> %d", slot, got)
	}
	for tid := memmodel.ThreadID(3); tid <= 4; tid++ {
		if p := s.thread(tid).prio; p <= s.Depth {
			t.Fatalf("new thread t%d landed in the reserved range: %d", tid, p)
		}
	}
}

// TestSampleDistinctDenseAllocs pins the dense path's zero-allocation
// steady state: with reused buffers, the partial Fisher–Yates must not
// allocate (the old implementation called rand.Perm(max) per Begin).
func TestSampleDistinctDenseAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var buf, scratch []int
	buf, scratch = sampleDistinct(r, 40, 50, buf, scratch) // warm the buffers
	allocs := testing.AllocsPerRun(100, func() {
		buf, scratch = sampleDistinct(r, 40, 50, buf, scratch)
	})
	if allocs != 0 {
		t.Fatalf("dense sampleDistinct allocates %v per call in steady state", allocs)
	}
	// Dense-path output is still a valid distinct sample.
	seen := map[int]bool{}
	for _, p := range buf {
		if p < 1 || p > 50 || seen[p] {
			t.Fatalf("dense sample invalid: %v", buf)
		}
		seen[p] = true
	}
	if len(buf) != 40 {
		t.Fatalf("dense sample has %d values, want 40", len(buf))
	}
}

// TestStrategyBeginZeroAllocSteadyState: Begin + thread starts on reused
// PCT/PCTWM values allocate nothing once the tables have grown — the
// distinct-priority band must not reintroduce per-run allocations.
func TestStrategyBeginZeroAllocSteadyState(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pct := NewPCT(4, 6) // dense change-point sampling: 3 of 6
	startPCT(pct, 4, r) // warm tables
	if allocs := testing.AllocsPerRun(200, func() { startPCT(pct, 4, r) }); allocs != 0 {
		t.Fatalf("PCT Begin+starts allocates %v per run in steady state", allocs)
	}
	pctwm := NewPCTWM(3, 2, 4) // dense comm sampling: 3 of 4
	startPCTWM(pctwm, 4, r)
	if allocs := testing.AllocsPerRun(200, func() { startPCTWM(pctwm, 4, r) }); allocs != 0 {
		t.Fatalf("PCTWM Begin+starts allocates %v per run in steady state", allocs)
	}
}

// TestPCTWMStickyEscape: after stickyEscapeAfter livelock notifications
// a thread's reads become permanently unrestricted (sticky), not just
// one-shot.
func TestPCTWMStickyEscape(t *testing.T) {
	s := NewPCTWM(0, 1, 5)
	r := rand.New(rand.NewSource(21))
	startPCTWM(s, 2, r)
	rc := engine.ReadContext{TID: 1, Index: 7, Loc: 1, Candidates: make([]engine.ReadCandidate, 6)}
	for i := 1; i < stickyEscapeAfter; i++ {
		s.OnSpin(1)
		if s.thread(1).sticky {
			t.Fatalf("sticky after only %d notifications", i)
		}
		s.PickRead(rc) // consume the one-shot escape
	}
	s.OnSpin(1)
	if !s.thread(1).sticky {
		t.Fatalf("not sticky after %d notifications", stickyEscapeAfter)
	}
	// Sticky reads roam every candidate indefinitely — no escape flag to
	// consume, repeated picks stay unrestricted.
	seen := map[int]bool{}
	for i := 0; i < 400; i++ {
		seen[s.PickRead(rc)] = true
	}
	if len(seen) != len(rc.Candidates) {
		t.Fatalf("sticky reads should reach all %d candidates, saw %v", len(rc.Candidates), seen)
	}
	// Other threads are unaffected.
	rc2 := rc
	rc2.TID = 2
	if pick := s.PickRead(rc2); pick != 0 {
		t.Fatalf("sticky escape leaked to t2: pick %d", pick)
	}
}

// TestPCTWMEscapeOneShot: a single livelock notification frees exactly
// one read; the next read is view-restricted again.
func TestPCTWMEscapeOneShot(t *testing.T) {
	s := NewPCTWM(0, 1, 5)
	r := rand.New(rand.NewSource(22))
	startPCTWM(s, 1, r)
	s.OnSpin(1)
	if !s.thread(1).escape {
		t.Fatal("OnSpin must arm the one-shot escape")
	}
	rc := engine.ReadContext{TID: 1, Index: 3, Loc: 1, Candidates: make([]engine.ReadCandidate, 4)}
	s.PickRead(rc) // consumes the escape, whatever it picked
	if s.thread(1).escape {
		t.Fatal("escape must be consumed by the first read")
	}
	for i := 0; i < 10; i++ {
		if pick := s.PickRead(rc); pick != 0 {
			t.Fatalf("read after the escape must be local again, got %d", pick)
		}
	}
}

// TestPCTWMHistoryClampOverflow: a reordered read whose history depth h
// exceeds the candidate count clamps to the candidate count — every
// candidate reachable, no out-of-range index.
func TestPCTWMHistoryClampOverflow(t *testing.T) {
	s := NewPCTWM(1, 10, 1) // h = 10 ≫ candidates
	r := rand.New(rand.NewSource(23))
	startPCTWM(s, 1, r)
	read := engine.PendingOp{TID: 1, Index: 2, Kind: memmodel.KindRead, Order: memmodel.Relaxed, Loc: 1,
		Comm: memmodel.Label{Kind: memmodel.KindRead, Order: memmodel.Relaxed}.IsCommunicationEvent()}
	s.NextThread([]engine.PendingOp{read}) // count + delay + return t1

	rc := engine.ReadContext{TID: 1, Index: 2, Loc: 1, Candidates: make([]engine.ReadCandidate, 3)}
	seen := map[int]bool{}
	for i := 0; i < 300; i++ {
		pick := s.PickRead(rc)
		if pick < 0 || pick >= len(rc.Candidates) {
			t.Fatalf("clamped read out of range: %d", pick)
		}
		seen[pick] = true
	}
	for i := range rc.Candidates {
		if !seen[i] {
			t.Fatalf("h > n clamp should cover all candidates, saw %v", seen)
		}
	}
}
