package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

func pending(tid memmodel.ThreadID, index int, kind memmodel.Kind, ord memmodel.Order) engine.PendingOp {
	return engine.PendingOp{
		TID: tid, Index: index, Kind: kind, Order: ord, Loc: 1,
		Comm: memmodel.Label{Kind: kind, Order: ord}.IsCommunicationEvent(),
	}
}

func newRng() *rand.Rand { return rand.New(rand.NewSource(7)) }

// TestPCTWMDelaysSampledCommEvent: with kcom=1 and d=1, the first
// communication event's thread must be demoted below all others and its
// read must go through readGlobal.
func TestPCTWMDelaysSampledCommEvent(t *testing.T) {
	s := NewPCTWM(1, 1, 1)
	s.Begin(engine.ProgramInfo{Name: "t", NumRootThreads: 2}, newRng())
	s.OnThreadStart(1, 0)
	s.OnThreadStart(2, 0)

	// Thread 1 pends a write (not a communication event), thread 2 pends
	// a read (communication event #1 when encountered as the choice).
	write := pending(1, 0, memmodel.KindWrite, memmodel.Relaxed)
	read := pending(2, 0, memmodel.KindRead, memmodel.Relaxed)

	// Force thread 2 to be the highest priority so its read is counted.
	s.thread(2).prio = 1000
	got := s.NextThread([]engine.PendingOp{write, read})
	if got != 1 {
		t.Fatalf("sampled sink's thread must be demoted; scheduled t%d", got)
	}
	if s.thread(2).prio >= s.thread(1).prio {
		t.Fatalf("demotion failed: prio[2]=%d prio[1]=%d", s.thread(2).prio, s.thread(1).prio)
	}

	// When only the delayed thread remains, it must run (counted guard).
	got = s.NextThread([]engine.PendingOp{read})
	if got != 2 {
		t.Fatalf("delayed thread must eventually run, got t%d", got)
	}

	// Its read is reordered: with h=1 it reads the mo-maximal candidate.
	rc := engine.ReadContext{TID: 2, Index: 0, Loc: 1, Candidates: make([]engine.ReadCandidate, 4)}
	if pick := s.PickRead(rc); pick != 3 {
		t.Fatalf("reordered read should pick mo-max (3), got %d", pick)
	}
}

// TestPCTWMLocalReadsByDefault: non-reordered reads take the thread-local
// view (candidate 0).
func TestPCTWMLocalReadsByDefault(t *testing.T) {
	s := NewPCTWM(0, 3, 10)
	s.Begin(engine.ProgramInfo{NumRootThreads: 2}, newRng())
	s.OnThreadStart(1, 0)
	rc := engine.ReadContext{TID: 1, Index: 5, Loc: 1, Candidates: make([]engine.ReadCandidate, 6)}
	for i := 0; i < 10; i++ {
		if pick := s.PickRead(rc); pick != 0 {
			t.Fatalf("default read must be local, got %d", pick)
		}
	}
}

// TestPCTWMHistoryWindow: a reordered read with history depth h picks
// uniformly among the h mo-maximal candidates.
func TestPCTWMHistoryWindow(t *testing.T) {
	s := NewPCTWM(1, 2, 1)
	s.Begin(engine.ProgramInfo{NumRootThreads: 1}, newRng())
	s.OnThreadStart(1, 0)
	read := pending(1, 3, memmodel.KindRead, memmodel.Relaxed)
	s.NextThread([]engine.PendingOp{read}) // counts + demotes + returns t1

	rc := engine.ReadContext{TID: 1, Index: 3, Loc: 1, Candidates: make([]engine.ReadCandidate, 5)}
	counts := map[int]int{}
	for i := 0; i < 2000; i++ {
		counts[s.PickRead(rc)]++
	}
	if counts[4] == 0 || counts[3] == 0 {
		t.Fatalf("h=2 should cover the top two candidates: %v", counts)
	}
	if counts[0] > 0 || counts[1] > 0 || counts[2] > 0 {
		t.Fatalf("h=2 must not reach older candidates: %v", counts)
	}
	ratio := float64(counts[4]) / float64(counts[3])
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("top-2 picks should be uniform, got %v", counts)
	}
}

// TestPCTWMSpinEscape: after OnSpin the thread's next read is unrestricted
// and the thread is demoted.
func TestPCTWMSpinEscape(t *testing.T) {
	s := NewPCTWM(0, 1, 5)
	s.Begin(engine.ProgramInfo{NumRootThreads: 2}, newRng())
	s.OnThreadStart(1, 0)
	s.OnThreadStart(2, 0)
	before := s.thread(1).prio
	s.OnSpin(1)
	if s.thread(1).prio >= before {
		t.Fatal("OnSpin must demote the spinner")
	}
	rc := engine.ReadContext{TID: 1, Index: 9, Loc: 1, Candidates: make([]engine.ReadCandidate, 8)}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		s.thread(1).escape = true
		seen[s.PickRead(rc)] = true
	}
	if len(seen) < 4 {
		t.Fatalf("escape reads should roam all candidates, saw %v", seen)
	}
	// The escape is one-shot.
	s.thread(1).escape = false
	if pick := s.PickRead(rc); pick != 0 {
		t.Fatalf("after the escape, reads are local again; got %d", pick)
	}
}

// TestPCTWMCountsEventsOnce: re-encountering the same pending event must
// not advance the communication counter.
func TestPCTWMCountsEventsOnce(t *testing.T) {
	s := NewPCTWM(2, 1, 10)
	s.Begin(engine.ProgramInfo{NumRootThreads: 1}, newRng())
	s.OnThreadStart(1, 0)
	read := pending(1, 0, memmodel.KindRead, memmodel.Relaxed)
	s.NextThread([]engine.PendingOp{read})
	n := s.commSeen
	s.NextThread([]engine.PendingOp{read})
	if s.commSeen != n {
		t.Fatalf("comm counter advanced on re-encounter: %d -> %d", n, s.commSeen)
	}
}

// TestPCTPriorities: the PCT scheduler always runs the highest-priority
// enabled thread, and change points drop the running thread's priority.
func TestPCTPriorities(t *testing.T) {
	s := NewPCT(2, 10)
	s.Begin(engine.ProgramInfo{NumRootThreads: 2}, newRng())
	s.OnThreadStart(1, 0)
	s.OnThreadStart(2, 0)
	*s.priority(1), *s.priority(2) = 50, 40
	en := []engine.PendingOp{
		pending(1, 0, memmodel.KindWrite, memmodel.Relaxed),
		pending(2, 0, memmodel.KindWrite, memmodel.Relaxed),
	}
	if got := s.NextThread(en); got != 1 {
		t.Fatalf("highest priority must run, got t%d", got)
	}
	// Force the single change point (d=2 → 1 change point) to fire now.
	s.changeAt = []int{1}
	s.counter = 0
	s.OnEvent(&memmodel.Event{TID: 1, Label: memmodel.Label{Kind: memmodel.KindWrite, Order: memmodel.Relaxed, Loc: 1}})
	if *s.priority(1) >= *s.priority(2) {
		t.Fatalf("change point must demote the running thread: %v", s.prio)
	}
	if got := s.NextThread(en); got != 2 {
		t.Fatalf("after the change point t2 must run, got t%d", got)
	}
}

// TestPCTIgnoresNonMemoryEvents: spawn/join/assert events do not advance
// the PCT counter.
func TestPCTIgnoresNonMemoryEvents(t *testing.T) {
	s := NewPCT(3, 10)
	s.Begin(engine.ProgramInfo{NumRootThreads: 1}, newRng())
	s.OnThreadStart(1, 0)
	for _, k := range []memmodel.Kind{memmodel.KindSpawn, memmodel.KindJoin, memmodel.KindAssert} {
		s.OnEvent(&memmodel.Event{TID: 1, Label: memmodel.Label{Kind: k}})
	}
	if s.counter != 0 {
		t.Fatalf("counter advanced on non-memory events: %d", s.counter)
	}
}

// TestSampleDistinct: the sampled values are distinct, in range, and the
// whole range is reachable.
func TestSampleDistinct(t *testing.T) {
	prop := func(seed int64, nRaw, maxRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%6) + 1
		max := int(maxRaw%10) + 1
		pts, _ := sampleDistinct(r, n, max, nil, nil)
		if len(pts) > max || (n <= max && len(pts) != n) {
			return false
		}
		seen := map[int]bool{}
		for _, p := range pts {
			if p < 1 || p > max || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestBounds checks the §2.2 and §5.4 probability formulas.
func TestBounds(t *testing.T) {
	if got := PCTBound(2, 10, 1); got != 0.5 {
		t.Fatalf("PCTBound(2,10,1) = %v, want 0.5 (depth-1 bugs need only the thread order)", got)
	}
	if got := PCTBound(2, 10, 2); got != 1.0/20 {
		t.Fatalf("PCTBound(2,10,2) = %v", got)
	}
	if got := PCTWMBound(10, 0, 4); got != 1 {
		t.Fatalf("PCTWMBound d=0 must be 1, got %v", got)
	}
	if got := PCTWMBound(10, 2, 2); math.Abs(got-1.0/400) > 1e-12 {
		t.Fatalf("PCTWMBound(10,2,2) = %v", got)
	}
	if PCTBound(0, 1, 1) != 0 || PCTWMBound(0, 1, 1) != 0 {
		t.Fatal("degenerate inputs must give 0")
	}
	// Monotonicity: deeper bugs and larger programs have lower bounds.
	prop := func(kRaw, dRaw, hRaw uint8) bool {
		k := int(kRaw%50) + 2
		d := int(dRaw%4) + 1
		h := int(hRaw%4) + 1
		return PCTWMBound(k, d+1, h) <= PCTWMBound(k, d, h) &&
			PCTWMBound(k+1, d, h) <= PCTWMBound(k, d, h) &&
			PCTWMBound(k, d, h+1) <= PCTWMBound(k, d, h) &&
			PCTBound(2, k+1, d) <= PCTBound(2, k, d)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomStrategyUniform: the baseline picks all threads and all read
// candidates with positive frequency.
func TestRandomStrategyUniform(t *testing.T) {
	s := NewRandom()
	s.Begin(engine.ProgramInfo{NumRootThreads: 3}, newRng())
	en := []engine.PendingOp{
		pending(1, 0, memmodel.KindWrite, memmodel.Relaxed),
		pending(2, 0, memmodel.KindWrite, memmodel.Relaxed),
		pending(3, 0, memmodel.KindWrite, memmodel.Relaxed),
	}
	tids := map[memmodel.ThreadID]int{}
	for i := 0; i < 600; i++ {
		tids[s.NextThread(en)]++
	}
	for tid := memmodel.ThreadID(1); tid <= 3; tid++ {
		if tids[tid] < 100 {
			t.Fatalf("thread choice skewed: %v", tids)
		}
	}
	rc := engine.ReadContext{Candidates: make([]engine.ReadCandidate, 4)}
	picks := map[int]int{}
	for i := 0; i < 800; i++ {
		picks[s.PickRead(rc)]++
	}
	for i := 0; i < 4; i++ {
		if picks[i] < 100 {
			t.Fatalf("read choice skewed: %v", picks)
		}
	}
}
