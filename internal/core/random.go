// Package core implements the testing strategies the paper studies:
//
//   - Random: C11Tester's naive random exploration (§6, "Random Testing in
//     C11Tester": uniform thread choice, uniform reads-from choice);
//   - PCT: the paper's weak-memory-aware variant of the original PCT
//     priority scheduler (§6, "Implementation");
//   - PCTWM: the paper's contribution, Algorithm 1 + 2.
//
// All three are engine.Strategy implementations; Bounds provides the
// theoretical detection-probability lower bounds of §2.2 and §5.4.
package core

import (
	"math/rand"

	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// Random is the C11Tester testing algorithm: at every step it (1) picks
// the next thread uniformly among the enabled threads and (2) lets reads
// read from a write selected uniformly among the coherence-legal visible
// writes.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns the C11Tester-style naive random strategy.
func NewRandom() *Random { return &Random{} }

// Name implements engine.Strategy.
func (s *Random) Name() string { return "c11tester" }

// Begin implements engine.Strategy.
func (s *Random) Begin(_ engine.ProgramInfo, r *rand.Rand) { s.rng = r }

// NextThread picks uniformly among enabled threads.
func (s *Random) NextThread(enabled []engine.PendingOp) memmodel.ThreadID {
	return enabled[s.rng.Intn(len(enabled))].TID
}

// PickRead picks uniformly among all legal candidates.
func (s *Random) PickRead(rc engine.ReadContext) int {
	return s.rng.Intn(len(rc.Candidates))
}

// OnEvent implements engine.Strategy.
func (s *Random) OnEvent(*memmodel.Event) {}

// OnThreadStart implements engine.Strategy.
func (s *Random) OnThreadStart(_, _ memmodel.ThreadID) {}

// OnSpin implements engine.Strategy. Random scheduling needs no livelock
// escape: every enabled thread keeps getting scheduled with positive
// probability.
func (s *Random) OnSpin(memmodel.ThreadID) {}
