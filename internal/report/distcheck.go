package report

import (
	"errors"
	"fmt"
	"io"

	"pctwm/internal/distcheck"
	"pctwm/internal/engine"
	"pctwm/internal/harness"
)

// ErrConformance is returned by DistCheck when a distributional check
// failed — either a shipped strategy diverged from its expected sampling
// distribution, or a colliding regression fixture went undetected. The
// rendered table above the error names the failing checks; callers
// should exit nonzero.
var ErrConformance = errors.New("report: strategy conformance failed")

// DistCheck renders the statistical strategy-conformance harness
// (internal/distcheck): the shipped Random/PCT/PCTWM strategies checked
// against exact ground truth from the exhaustive explorer — empirical
// support vs. the behavior census, a G-test of Random against the exact
// uniform-walk distribution, a chi-square test of the priority rank
// permutation, and per-behavior Wilson bounds against PCTBound/PCTWMBound
// — followed by the colliding-priority regression fixtures, which must
// fail their permutation checks.
//
// The campaign sizes its own run counts (distcheck defaults): statistical
// power needs a fixed sample size, independent of the -runs table sizing.
// Only Seed and Model flow in from the report config.
func DistCheck(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	cfg.phase("distcheck")
	dcfg := harness.DistCheckConfig{
		Check: distcheck.Config{
			Seed:    cfg.Seed,
			Options: engine.Options{Model: cfg.Model, Context: cfg.Context},
		},
	}
	res, err := harness.DistCheckCampaign(nil, dcfg)
	if err != nil {
		if cfg.interrupted() {
			return ErrInterrupted
		}
		return err
	}
	fmt.Fprintf(w, "Strategy conformance: distributional checks against exact ground truth (seed=%d, model=%s).\n",
		cfg.Seed, modelLabel(cfg.Model))
	tw := newTab(w)
	fmt.Fprintln(tw, "Check\tStrategy\tProgram\tVerdict\tp\tDetail")
	for _, r := range res.Conformance.Results {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Check, r.Strategy, dash(r.Program), verdict(r.Pass), pValue(r), r.Detail)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nRegression fixtures (pre-fix colliding priority assignment) — the permutation check must FAIL:")
	tw = newTab(w)
	fmt.Fprintln(tw, "Fixture\tVerdict\tchi2\tp")
	for _, r := range res.Fixtures.Results {
		v := "detected"
		if r.Pass {
			v = "NOT DETECTED"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.3g\n", r.Strategy, v, r.Stat, r.P)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if !res.Passed {
		return ErrConformance
	}
	fmt.Fprintln(w, "\nConformance: PASS (all checks passed, all fixtures detected).")
	return nil
}

func verdict(pass bool) string {
	if pass {
		return "pass"
	}
	return "FAIL"
}

func dash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// pValue renders the p-value for the statistical checks and a dash for
// the exact ones (support, bound), which have no test statistic.
func pValue(r distcheck.CheckResult) string {
	switch r.Check {
	case "uniform", "permutation":
		return fmt.Sprintf("%.3g", r.P)
	}
	return "-"
}

func modelLabel(m string) string {
	if m == "" {
		return engine.ModelRC11
	}
	return m
}
