// Package report regenerates the paper's evaluation artifacts — Tables 1
// through 4 and the data series behind Figures 5 and 6 — as aligned text
// tables, using the harness over the benchmark and application suites.
package report

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"pctwm/internal/apps"
	"pctwm/internal/benchprog"
	"pctwm/internal/core"
	"pctwm/internal/coverage"
	"pctwm/internal/engine"
	"pctwm/internal/enumerate"
	"pctwm/internal/harness"
	"pctwm/internal/litmus"
	"pctwm/internal/telemetry"
)

// ErrInterrupted is returned by a section whose Config.Context was
// canceled mid-generation: whatever rows finished before the cancel have
// been flushed, so the caller holds a partial artifact and should exit
// nonzero instead of treating the output as complete.
var ErrInterrupted = errors.New("report: interrupted")

// Config controls the experiment sizes. The defaults match the paper
// (1000 rounds for the tables, 500 for Figure 6, 10 runs for Table 4);
// smaller values trade precision for speed.
type Config struct {
	// Runs is the number of rounds per configuration for Tables 2-3 and
	// Figure 5.
	Runs int
	// Fig6Runs is the number of rounds per point in Figure 6.
	Fig6Runs int
	// PerfRuns is the number of timed runs per Table 4 cell.
	PerfRuns int
	// MaxH bounds the history-depth search (Tables 2-3 use h ∈ 1..4).
	MaxH int
	// Seed makes the whole report deterministic.
	Seed int64
	// Workers spreads each trial batch over this many worker goroutines
	// (0 = GOMAXPROCS, 1 = serial). Results are identical for every
	// worker count; only wall-clock time changes.
	Workers int
	// Context cancels report generation cooperatively: trial batches
	// abort through the engine's step-loop watchdog and sections return
	// ErrInterrupted after flushing the rows completed so far.
	Context context.Context
	// ReproDir arms the campaign repro sink for every trial batch:
	// failing trials are flake-triaged and written as replayable JSON
	// bundles under this directory (see harness.Campaign).
	ReproDir string
	// MaxRepros caps bundles per trial batch (0 = the harness default).
	MaxRepros int
	// Metrics, when non-nil, receives live campaign metrics from every
	// trial batch (the hub behind pctwm-experiments' -metrics-addr and
	// -progress); sections additionally mark their name as the metrics
	// phase so the progress line shows which artifact is being generated.
	Metrics *telemetry.Metrics
	// Model selects the memory-model backend for every trial batch
	// ("" = rc11). The paper's numbers are defined for rc11: benchmarks
	// whose bugs need weak behaviour report lower (or zero) rates under
	// sc/tso, which is itself the cross-model sensitivity signal.
	Model string
	// Coverage arms behavior fingerprinting on every trial batch: each
	// complete trial contributes to a deterministic first-seen behavior
	// set (internal/coverage), the live Metrics progress line gains the
	// behaviors/est_unseen fields, and the repro sink dedupes bundles by
	// behavior. The Coverage/CoverageCSV sections fingerprint regardless.
	Coverage bool
	// Checkpoint, when non-nil, arms the durable checkpoint/resume layer
	// for every trial batch: each batch periodically snapshots its
	// cumulative state under the spec's directory (keyed by a per-call-site
	// cell label plus program/seed/runs/model) and a rerun with
	// Resume=true continues killed batches with bit-identical totals.
	Checkpoint *harness.CheckpointSpec
}

// campaign maps the config onto the resilience knobs of one trial batch.
// Checkpointing is NOT armed here: checkpointed batches must go through
// campaignCell so every call site carries a unique cell label (several
// sections run different strategies over the same program/seed/runs,
// which would otherwise share a checkpoint identity).
func (c Config) campaign() harness.Campaign {
	return harness.Campaign{
		Workers: c.Workers, Context: c.Context,
		ReproDir: c.ReproDir, MaxRepros: c.MaxRepros,
		Metrics: c.Metrics, Model: c.Model,
		Coverage: c.Coverage,
	}
}

// campaignCell is campaign plus the checkpoint spec under the given
// unique cell label.
func (c Config) campaignCell(cell string) harness.Campaign {
	camp := c.campaign()
	camp.Checkpoint = c.Checkpoint
	camp.CheckpointCell = cell
	return camp
}

// phase marks the currently generating section on the metrics hub (no-op
// without Metrics).
func (c Config) phase(name string) {
	if c.Metrics != nil {
		c.Metrics.SetPhase(name)
	}
}

// interrupted reports whether the config's context has been canceled.
func (c Config) interrupted() bool {
	return c.Context != nil && c.Context.Err() != nil
}

// Default returns the paper-sized configuration.
func Default() Config {
	return Config{Runs: 1000, Fig6Runs: 500, PerfRuns: 10, MaxH: 4, Seed: 20230325}
}

// Quick returns a configuration sized for smoke runs and tests.
func Quick() Config {
	return Config{Runs: 150, Fig6Runs: 100, PerfRuns: 3, MaxH: 2, Seed: 20230325}
}

func (c Config) normalized() Config {
	d := Default()
	if c.Runs <= 0 {
		c.Runs = d.Runs
	}
	if c.Fig6Runs <= 0 {
		c.Fig6Runs = d.Fig6Runs
	}
	if c.PerfRuns <= 0 {
		c.PerfRuns = d.PerfRuns
	}
	if c.MaxH <= 0 {
		c.MaxH = d.MaxH
	}
	return c
}

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

// Table1 prints the benchmark inventory: lines of code, measured event
// count k, measured communication event count kcom, and the bug depth d.
func Table1(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	cfg.phase("table1")
	fmt.Fprintln(w, "Table 1: Data structure benchmarks.")
	tw := newTab(w)
	fmt.Fprintln(tw, "Benchmark\tLOC\tk\tkcom\td")
	for _, b := range benchprog.All() {
		if cfg.interrupted() {
			tw.Flush()
			return ErrInterrupted
		}
		opts := b.Options()
		opts.Model = cfg.Model
		est := harness.EstimateParams(b.Program(0), 50, cfg.Seed, opts)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n", b.Name, benchprog.LOC(b.Name), est.K, est.KCom, b.Depth)
	}
	return tw.Flush()
}

// Table2 prints PCTWM bug hitting rates for bug depths d, d+1, d+2, each
// with the best history depth (paper Table 2).
func Table2(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	cfg.phase("table2")
	fmt.Fprintf(w, "Table 2: PCTWM bug hitting rates (%%) over %d rounds for varying bug depth d.\n", cfg.Runs)
	tw := newTab(w)
	fmt.Fprintln(tw, "Benchmark\td\tRate(d)\tRate(d+1)\tRate(d+2)")
	for _, b := range benchprog.All() {
		if cfg.interrupted() {
			tw.Flush()
			return ErrInterrupted
		}
		cells := make([]string, 3)
		for i := 0; i < 3; i++ {
			res, h := harness.BestOverHCampaign(b, b.Depth+i, cfg.MaxH, cfg.Runs, cfg.Seed+int64(17*i),
				cfg.campaignCell(fmt.Sprintf("table2/%s/d%d", b.Name, b.Depth+i)))
			cells[i] = fmt.Sprintf("%.1f (h:%d)", res.Rate(), h)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\n", b.Name, b.Depth, cells[0], cells[1], cells[2])
	}
	return tw.Flush()
}

// Table3 prints PCTWM bug hitting rates for history depths h = 1..4 at
// each benchmark's Table-3 bug depth (paper Table 3).
func Table3(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	cfg.phase("table3")
	fmt.Fprintf(w, "Table 3: PCTWM bug hitting rates (%%) over %d rounds for varying history depth h.\n", cfg.Runs)
	tw := newTab(w)
	header := "Benchmark\tkcom\td"
	for h := 1; h <= cfg.MaxH; h++ {
		header += fmt.Sprintf("\th:%d", h)
	}
	fmt.Fprintln(tw, header)
	for _, b := range benchprog.All() {
		if cfg.interrupted() {
			tw.Flush()
			return ErrInterrupted
		}
		var est harness.Estimate
		row := make([]string, 0, cfg.MaxH)
		for h := 1; h <= cfg.MaxH; h++ {
			res, e := harness.BenchTrialsCampaign(b, harness.PCTWMFactory(b.Table3Depth, h), cfg.Runs, cfg.Seed+int64(31*h), 0,
				cfg.campaignCell(fmt.Sprintf("table3/%s/h%d", b.Name, h)))
			est = e
			row = append(row, fmt.Sprintf("%.1f", res.Rate()))
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\n", b.Name, est.KCom, b.Table3Depth, strings.Join(row, "\t"))
	}
	return tw.Flush()
}

// Table4 prints the application performance comparison (paper Table 4):
// throughput for silo, elapsed time for mabain and iris, with the
// relative standard deviation in parentheses, for single and multiple
// core configurations.
func Table4(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	cfg.phase("table4")
	fmt.Fprintf(w, "Table 4: Performance on testing real-world applications (mean of %d runs, RSD in parentheses).\n", cfg.PerfRuns)
	tw := newTab(w)
	fmt.Fprintln(tw, "App\tMetric\tCores\tC11Tester\tPCTWM\tOverhead\tns/event (c11/pctwm)\tRaces (c11/pctwm)")
	for _, a := range apps.All() {
		if cfg.interrupted() {
			tw.Flush()
			return ErrInterrupted
		}
		for _, cores := range []int{1, 4} {
			coreLabel := "single"
			if cores > 1 {
				coreLabel = "multiple"
			}
			c11 := harness.MeasureApp(a, harness.C11Tester(), cfg.PerfRuns, cfg.Seed, cores)
			wm := harness.MeasureApp(a, harness.PCTWMFactory(2, 1), cfg.PerfRuns, cfg.Seed, cores)
			var metric, c11Cell, wmCell, overhead string
			switch a.Kind {
			case apps.KindThroughput:
				metric = "ops/sec"
				c11Cell = fmt.Sprintf("%.0f (%.1f%%)", c11.Throughput, c11.RSDPercent)
				wmCell = fmt.Sprintf("%.0f (%.1f%%)", wm.Throughput, wm.RSDPercent)
				overhead = fmt.Sprintf("%+.1f%%", safePct(c11.Throughput-wm.Throughput, c11.Throughput))
			default:
				metric = "time/ms"
				c11Cell = fmt.Sprintf("%.2f (%.1f%%)", 1000*c11.MeanSeconds, c11.RSDPercent)
				wmCell = fmt.Sprintf("%.2f (%.1f%%)", 1000*wm.MeanSeconds, wm.RSDPercent)
				overhead = fmt.Sprintf("%+.1f%%", safePct(wm.MeanSeconds-c11.MeanSeconds, c11.MeanSeconds))
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%.0f/%.0f\t%d/%d\n",
				a.Name, metric, coreLabel, c11Cell, wmCell, overhead,
				c11.NsPerEvent, wm.NsPerEvent, c11.RacesDetected, wm.RacesDetected)
		}
	}
	return tw.Flush()
}

// Figure5 prints the highest bug hitting rates observed per benchmark for
// the three algorithms (paper Figure 5): C11Tester as-is, PCT and PCTWM
// over bug depths d..d+2 (and h ∈ 1..MaxH for PCTWM).
func Figure5(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	cfg.phase("figure5")
	fmt.Fprintf(w, "Figure 5: Highest bug hitting rates (%%) observed over %d rounds.\n", cfg.Runs)
	tw := newTab(w)
	fmt.Fprintln(tw, "Benchmark\tC11Tester\tPCT\tPCTWM\tPCTWM 95% CI")
	for _, b := range benchprog.All() {
		if cfg.interrupted() {
			tw.Flush()
			return ErrInterrupted
		}
		c11, _ := harness.BenchTrialsCampaign(b, harness.C11Tester(), cfg.Runs, cfg.Seed, 0,
			cfg.campaignCell("figure5/"+b.Name+"/c11"))
		bestPCT := 0.0
		var bestWM harness.TrialResult
		for i := 0; i < 3; i++ {
			d := b.Depth + i
			if d < 1 {
				d = 1
			}
			res, _ := harness.BenchTrialsCampaign(b, harness.PCTFactory(d), cfg.Runs, cfg.Seed+int64(7*i), 0,
				cfg.campaignCell(fmt.Sprintf("figure5/%s/pct-d%d", b.Name, i)))
			if res.Rate() > bestPCT {
				bestPCT = res.Rate()
			}
			wm, _ := harness.BestOverHCampaign(b, b.Depth+i, cfg.MaxH, cfg.Runs, cfg.Seed+int64(13*i),
				cfg.campaignCell(fmt.Sprintf("figure5/%s/pctwm-d%d", b.Name, i)))
			if wm.Rate() > bestWM.Rate() || bestWM.Runs == 0 {
				bestWM = wm
			}
		}
		lo, hi := bestWM.CI95()
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t[%.1f, %.1f]\n", b.Name, c11.Rate(), bestPCT, bestWM.Rate(), lo, hi)
	}
	return tw.Flush()
}

// fig6Benchmarks are the four benchmarks of Figure 6 with their inserted
// relaxed-write sweeps (x axes as in the paper).
var fig6Benchmarks = []struct {
	name  string
	sweep []int
}{
	{"mpmcqueue", []int{2, 4, 6, 8, 10}},
	{"dekker", []int{0, 2, 4, 6, 8, 10}},
	{"rwlock", []int{5, 10, 15, 20}},
	{"cldeque", []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
}

// Figure6 prints the change in bug hitting rates with an increasing number
// of inserted relaxed writes (paper Figure 6): PCT's rate fluctuates as
// the event count k grows while PCTWM stays stable.
func Figure6(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	cfg.phase("figure6")
	fmt.Fprintf(w, "Figure 6: Bug hitting rates (%%) in %d rounds vs. inserted relaxed writes.\n", cfg.Fig6Runs)
	for _, f := range fig6Benchmarks {
		b, err := benchprog.ByName(f.name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n%s - inserting relaxed writes (d=%d)\n", b.Name, b.Depth)
		tw := newTab(w)
		fmt.Fprintln(tw, "Writes\tC11Tester\tPCT\tPCTWM")
		for _, n := range f.sweep {
			if cfg.interrupted() {
				tw.Flush()
				return ErrInterrupted
			}
			c11, _ := harness.BenchTrialsCampaign(b, harness.C11Tester(), cfg.Fig6Runs, cfg.Seed+int64(n), n,
				cfg.campaignCell(fmt.Sprintf("figure6/%s/w%d/c11", b.Name, n)))
			pct, _ := harness.BenchTrialsCampaign(b, harness.PCTFactory(maxInt(b.Depth, 1)), cfg.Fig6Runs, cfg.Seed+int64(2*n), n,
				cfg.campaignCell(fmt.Sprintf("figure6/%s/w%d/pct", b.Name, n)))
			wm, _ := harness.BenchTrialsCampaign(b, harness.PCTWMFactory(b.Depth, 1), cfg.Fig6Runs, cfg.Seed+int64(3*n), n,
				cfg.campaignCell(fmt.Sprintf("figure6/%s/w%d/pctwm", b.Name, n)))
			fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%.1f\n", n, c11.Rate(), pct.Rate(), wm.Rate())
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// coverageTargets are the litmus programs the coverage artifacts census
// and sample (weak-behaviour-rich programs with small decision trees, so
// the exhaustive census is cheap and saturation is reachable in a
// Quick-sized budget).
var coverageTargets = []string{"SB+rlx", "MP+rlx", "LB+rlx", "CoRR2", "IRIW+rlx"}

// coverageCensusLimit caps each census enumeration.
const coverageCensusLimit = 500000

// coverageStrategies are the strategies the coverage artifacts race
// against each other (same lineup as the historical outcome-coverage
// table: the POS-paper comparison set).
var coverageStrategies = []struct {
	name    string
	factory harness.StrategyFactory
}{
	{"c11tester", harness.C11Tester()},
	{"pos", harness.POSFactory()},
	{"pct", harness.PCTFactory(2)},
	{"pctwm", harness.PCTWMFactory(2, 2)},
}

// findLitmus resolves a litmus test by name.
func findLitmus(name string) (*litmus.Test, error) {
	for _, cand := range litmus.Suite() {
		if cand.Name == name {
			return cand, nil
		}
	}
	return nil, fmt.Errorf("report: unknown litmus test %q", name)
}

// coverageCampaign runs one litmus coverage campaign and returns its
// deterministic behavior set. The cell label is shared between the
// text and CSV sections, so checkpointed runs seed each other.
func (c Config) coverageCampaign(lt *litmus.Test, strategy string, factory harness.StrategyFactory, seedOff int64) (*coverage.Set, error) {
	opts := engine.Options{Model: c.Model}
	est := harness.EstimateParams(lt.Program, 10, c.Seed, opts)
	camp := c.campaignCell("coverage/" + lt.Name + "/" + strategy)
	camp.Coverage = true
	noHit := func(*engine.Outcome) bool { return false }
	res := harness.RunCampaign(lt.Program, noHit, func() engine.Strategy { return factory(est) },
		c.Runs, c.Seed+seedOff, opts, camp)
	if res.Coverage == nil {
		if res.Interrupted {
			return nil, ErrInterrupted
		}
		return nil, fmt.Errorf("report: coverage campaign %s/%s produced no coverage", lt.Name, strategy)
	}
	return res.Coverage, nil
}

// coverageCell renders one strategy's coverage against the census:
// behaviors found, then either @T (trials to full coverage, for a
// saturated campaign) or ~p% (the Good–Turing unseen-mass estimate).
func coverageCell(set *coverage.Set, census *enumerate.Census) string {
	st := set.Stats()
	if census.Complete && st.Behaviors == len(census.Behaviors) {
		return fmt.Sprintf("%d @%d", st.Behaviors, st.LastNovel+1)
	}
	return fmt.Sprintf("%d ~%.1f%%", st.Behaviors, 100*st.UnseenMass)
}

// Coverage measures behavior-space coverage on litmus programs: the
// exhaustive explorer computes the ground-truth behavior census (every
// distinct behavior fingerprint any schedule can realize — final
// values, reads-from pairs and per-location coherence, canonicalized by
// internal/coverage), then each strategy gets a fixed budget of rounds
// and is scored by how many distinct behaviors it visits and how fast
// it stops finding new ones — the saturation view of randomized
// testing ("is my campaign done?"). The behavior census refines the
// final-value outcome count the POS paper popularized (related work,
// §7): schedules agreeing on finals but differing in rf/coherence are
// distinct behaviors here.
func Coverage(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	cfg.phase("coverage")
	fmt.Fprintf(w, "Behavior coverage on litmus programs: distinct behaviors found in %d rounds vs. the exhaustive census.\n", cfg.Runs)
	fmt.Fprintln(w, "Cells: behaviors found, then @T = trials to full coverage or ~p% = Good-Turing unseen-mass estimate.")
	tw := newTab(w)
	fmt.Fprintln(tw, "Program\tcensus\tC11Tester\tPOS\tPCT(d=2)\tPCTWM(d=2,h=2)")
	for _, name := range coverageTargets {
		if cfg.interrupted() {
			tw.Flush()
			return ErrInterrupted
		}
		lt, err := findLitmus(name)
		if err != nil {
			return err
		}
		census, err := enumerate.BehaviorCensus(lt.Program, engine.Options{Model: cfg.Model},
			enumerate.Config{Limit: coverageCensusLimit, Workers: cfg.Workers, Context: cfg.Context})
		if err != nil {
			return err
		}
		total := fmt.Sprintf("%d", len(census.Behaviors))
		if !census.Complete {
			total += "+"
		}
		row := []string{}
		for i, s := range coverageStrategies {
			set, err := cfg.coverageCampaign(lt, s.name, s.factory, int64(23*i))
			if err != nil {
				tw.Flush()
				return err
			}
			row = append(row, coverageCell(set, census))
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", lt.Name, total, strings.Join(row, "\t"))
	}
	return tw.Flush()
}

// Baselines prints an extended comparison beyond the paper's Figure 5:
// the four randomized algorithms side by side at each benchmark's design
// depth, together with PCTWM's theoretical lower bound (§5.4).
func Baselines(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	cfg.phase("baselines")
	fmt.Fprintf(w, "Extended baselines: bug hitting rates (%%) over %d rounds at the design depth (h=1).\n", cfg.Runs)
	tw := newTab(w)
	fmt.Fprintln(tw, "Benchmark\td\tC11Tester\tPOS\tPCT\tPCTWM\tPCTWM bound")
	for _, b := range benchprog.All() {
		if cfg.interrupted() {
			tw.Flush()
			return ErrInterrupted
		}
		c11, est := harness.BenchTrialsCampaign(b, harness.C11Tester(), cfg.Runs, cfg.Seed, 0,
			cfg.campaignCell("baselines/"+b.Name+"/c11"))
		pos, _ := harness.BenchTrialsCampaign(b, harness.POSFactory(), cfg.Runs, cfg.Seed+1, 0,
			cfg.campaignCell("baselines/"+b.Name+"/pos"))
		pct, _ := harness.BenchTrialsCampaign(b, harness.PCTFactory(maxInt(b.Depth, 1)), cfg.Runs, cfg.Seed+2, 0,
			cfg.campaignCell("baselines/"+b.Name+"/pct"))
		wm, _ := harness.BenchTrialsCampaign(b, harness.PCTWMFactory(b.Depth, 1), cfg.Runs, cfg.Seed+3, 0,
			cfg.campaignCell("baselines/"+b.Name+"/pctwm"))
		bound := 100 * core.PCTWMBound(est.KCom, b.Depth, 1)
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\n",
			b.Name, b.Depth, c11.Rate(), pos.Rate(), pct.Rate(), wm.Rate(), bound)
	}
	return tw.Flush()
}

// Ablations prints the contribution of each PCTWM ingredient (history
// bounding, sink delaying, thread-local views) to the bug hitting rate at
// every benchmark's design depth — the ablation study for the design
// choices of §5.2.
func Ablations(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	cfg.phase("ablation")
	fmt.Fprintf(w, "Ablation: PCTWM ingredient contributions (%%), %d rounds, h=1, d = design depth.\n", cfg.Runs)
	tw := newTab(w)
	fmt.Fprintln(tw, "Benchmark\td\tfull\tno-history\tno-delay\tno-local-views")
	modes := []core.Ablation{core.AblateNone, core.AblateHistory, core.AblateDelay, core.AblateLocalViews}
	for _, b := range benchprog.All() {
		if cfg.interrupted() {
			tw.Flush()
			return ErrInterrupted
		}
		row := make([]string, 0, len(modes))
		for i, m := range modes {
			m := m
			factory := func(est harness.Estimate) engine.Strategy {
				return core.NewAblatedPCTWM(b.Depth, 1, est.KCom, m)
			}
			res, _ := harness.BenchTrialsCampaign(b, factory, cfg.Runs, cfg.Seed+int64(41*i), 0,
				cfg.campaignCell(fmt.Sprintf("ablation/%s/m%d", b.Name, i)))
			row = append(row, fmt.Sprintf("%.1f", res.Rate()))
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\n", b.Name, b.Depth, strings.Join(row, "\t"))
	}
	return tw.Flush()
}

// Telemetry prints the engine-counter profile of one PCTWM campaign per
// benchmark: how the executed-event mix, scheduler handoff ratio,
// reads-from candidate-bag sizes, and priority-change-point depths differ
// across the suite. The counters are merged from the per-worker shards of
// each campaign, so the totals are identical for every Workers setting.
func Telemetry(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	cfg.phase("telemetry")
	fmt.Fprintf(w, "Engine telemetry per benchmark: PCTWM (h=1, design depth), %d rounds.\n", cfg.Runs)
	tw := newTab(w)
	fmt.Fprintln(tw, "Benchmark\ttrials\tevents\thandoff%\trf-cand (mean/max)\tcp-depth (mean/max)\trace checks")
	for _, b := range benchprog.All() {
		if cfg.interrupted() {
			tw.Flush()
			return ErrInterrupted
		}
		camp := cfg.campaignCell("telemetry/" + b.Name)
		camp.Telemetry = true
		res, _ := harness.BenchTrialsCampaign(b, harness.PCTWMFactory(b.Depth, 1), cfg.Runs, cfg.Seed, 0, camp)
		if res.Telemetry == nil {
			return fmt.Errorf("report: campaign for %s produced no telemetry", b.Name)
		}
		s := res.Telemetry.Summary()
		grants := s.Handoffs + s.SameThreadGrants
		handoffPct := 0.0
		if grants > 0 {
			handoffPct = 100 * float64(s.Handoffs) / float64(grants)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%.1f/%d\t%.1f/%d\t%d\n",
			b.Name, s.Trials, s.Events, handoffPct,
			s.RFCandidates.Mean, s.RFCandidates.Max,
			s.ChangePointDepth.Mean, s.ChangePointDepth.Max,
			s.RaceChecks)
	}
	return tw.Flush()
}

// All renders every table and figure in order.
func All(w io.Writer, cfg Config) error {
	sections := []func(io.Writer, Config) error{
		Table1, Table2, Table3, Table4, Figure5, Figure6, Ablations, Baselines, Coverage,
	}
	for i, f := range sections {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := f(w, cfg); err != nil {
			return err
		}
	}
	return nil
}

// safePct returns 100*num/den with a zero denominator guarded to 0, so
// degenerate measurements (an app that completed in 0 observable time)
// render as "+0.0%" instead of NaN/Inf.
func safePct(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * num / den
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
