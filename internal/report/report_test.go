package report

import (
	"strings"
	"testing"
)

// tiny is a minimal configuration so the full report renders quickly.
var tiny = Config{Runs: 20, Fig6Runs: 15, PerfRuns: 1, MaxH: 2, Seed: 3}

func render(t *testing.T, f func(w interface {
	Write([]byte) (int, error)
}, cfg Config) error) string {
	t.Helper()
	var b strings.Builder
	if err := f(&b, tiny); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestTable1(t *testing.T) {
	out := render(t, func(w interface{ Write([]byte) (int, error) }, cfg Config) error {
		return Table1(w, cfg)
	})
	for _, want := range []string{"Table 1", "dekker", "seqlock", "kcom"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 11 { // title + header + 9 rows
		t.Fatalf("unexpected row count:\n%s", out)
	}
}

func TestTable2(t *testing.T) {
	out := render(t, func(w interface{ Write([]byte) (int, error) }, cfg Config) error {
		return Table2(w, cfg)
	})
	if !strings.Contains(out, "Rate(d+2)") || !strings.Contains(out, "(h:") {
		t.Fatalf("table 2 malformed:\n%s", out)
	}
}

func TestTable3(t *testing.T) {
	out := render(t, func(w interface{ Write([]byte) (int, error) }, cfg Config) error {
		return Table3(w, cfg)
	})
	if !strings.Contains(out, "h:1") || !strings.Contains(out, "h:2") {
		t.Fatalf("table 3 malformed:\n%s", out)
	}
}

func TestTable4(t *testing.T) {
	out := render(t, func(w interface{ Write([]byte) (int, error) }, cfg Config) error {
		return Table4(w, cfg)
	})
	for _, want := range []string{"silo", "mabain", "iris", "ops/sec", "time/ms", "single", "multiple"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFigure5(t *testing.T) {
	out := render(t, func(w interface{ Write([]byte) (int, error) }, cfg Config) error {
		return Figure5(w, cfg)
	})
	if !strings.Contains(out, "C11Tester") || !strings.Contains(out, "PCTWM") {
		t.Fatalf("figure 5 malformed:\n%s", out)
	}
}

func TestFigure6(t *testing.T) {
	out := render(t, func(w interface{ Write([]byte) (int, error) }, cfg Config) error {
		return Figure6(w, cfg)
	})
	for _, want := range []string{"mpmcqueue", "dekker", "rwlock", "cldeque", "Writes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestConfigNormalization(t *testing.T) {
	n := (Config{}).normalized()
	d := Default()
	if n.Runs != d.Runs || n.Fig6Runs != d.Fig6Runs || n.PerfRuns != d.PerfRuns || n.MaxH != d.MaxH {
		t.Fatalf("normalized %+v", n)
	}
	q := Quick()
	if q.Runs >= d.Runs {
		t.Fatal("quick config not smaller")
	}
}

func TestAblations(t *testing.T) {
	out := render(t, func(w interface{ Write([]byte) (int, error) }, cfg Config) error {
		return Ablations(w, cfg)
	})
	for _, want := range []string{"no-history", "no-delay", "no-local-views", "seqlock"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestBaselines(t *testing.T) {
	out := render(t, func(w interface{ Write([]byte) (int, error) }, cfg Config) error {
		return Baselines(w, cfg)
	})
	for _, want := range []string{"POS", "PCTWM bound", "dekker"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCoverage(t *testing.T) {
	out := render(t, func(w interface{ Write([]byte) (int, error) }, cfg Config) error {
		return Coverage(w, cfg)
	})
	for _, want := range []string{"census", "behaviors", "SB+rlx", "IRIW+rlx"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCoverageCSV(t *testing.T) {
	out := render(t, func(w interface{ Write([]byte) (int, error) }, cfg Config) error {
		return CoverageCSV(w, cfg)
	})
	if !strings.HasPrefix(out, "program,census,strategy,behaviors,observations,trials_to_full,est_unseen,chao1,gap_hist\n") {
		t.Fatalf("csv header missing:\n%s", out)
	}
	// One row per target program × strategy, every row well-formed.
	rows := strings.Split(strings.TrimSpace(out), "\n")[1:]
	if want := len(coverageTargets) * len(coverageStrategies); len(rows) != want {
		t.Fatalf("%d rows, want %d:\n%s", len(rows), want, out)
	}
	for _, row := range rows {
		if cells := strings.Split(row, ","); len(cells) != 9 {
			t.Fatalf("malformed row %q", row)
		}
	}
}

func TestAll(t *testing.T) {
	var b strings.Builder
	micro := Config{Runs: 5, Fig6Runs: 4, PerfRuns: 1, MaxH: 1, Seed: 2}
	if err := All(&b, micro); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table 1", "Table 4", "Figure 6", "Ablation", "coverage"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in full report", want)
		}
	}
}

func TestFigureCSVs(t *testing.T) {
	out := render(t, func(w interface{ Write([]byte) (int, error) }, cfg Config) error {
		return Figure5CSV(w, cfg)
	})
	if !strings.Contains(out, "benchmark,strategy,rate,ci_low,ci_high") || !strings.Contains(out, "dekker,pctwm,") {
		t.Fatalf("figure 5 CSV malformed:\n%s", out)
	}
	out = render(t, func(w interface{ Write([]byte) (int, error) }, cfg Config) error {
		return Figure6CSV(w, cfg)
	})
	if !strings.Contains(out, "benchmark,writes,strategy,rate") || !strings.Contains(out, "rwlock,5,pctwm,") {
		t.Fatalf("figure 6 CSV malformed:\n%s", out)
	}
}
