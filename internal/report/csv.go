package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"pctwm/internal/benchprog"
	"pctwm/internal/engine"
	"pctwm/internal/enumerate"
	"pctwm/internal/harness"
	"pctwm/internal/telemetry"
)

// Figure5CSV emits the Figure 5 series as CSV (benchmark, strategy,
// rate, ci_low, ci_high) for plotting.
func Figure5CSV(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	if _, err := fmt.Fprintln(w, "benchmark,strategy,rate,ci_low,ci_high"); err != nil {
		return err
	}
	for _, b := range benchprog.All() {
		if cfg.interrupted() {
			return ErrInterrupted
		}
		// Cell labels match Figure5's: the CSV section runs the identical
		// campaigns, so a checkpointed text run seeds the CSV run and vice
		// versa.
		c11, _ := harness.BenchTrialsCampaign(b, harness.C11Tester(), cfg.Runs, cfg.Seed, 0,
			cfg.campaignCell("figure5/"+b.Name+"/c11"))
		writeCSVRow(w, b.Name, "c11tester", c11)
		var bestPCT, bestWM harness.TrialResult
		for i := 0; i < 3; i++ {
			d := maxInt(b.Depth+i, 1)
			res, _ := harness.BenchTrialsCampaign(b, harness.PCTFactory(d), cfg.Runs, cfg.Seed+int64(7*i), 0,
				cfg.campaignCell(fmt.Sprintf("figure5/%s/pct-d%d", b.Name, i)))
			if res.Rate() > bestPCT.Rate() || bestPCT.Runs == 0 {
				bestPCT = res
			}
			wm, _ := harness.BestOverHCampaign(b, b.Depth+i, cfg.MaxH, cfg.Runs, cfg.Seed+int64(13*i),
				cfg.campaignCell(fmt.Sprintf("figure5/%s/pctwm-d%d", b.Name, i)))
			if wm.Rate() > bestWM.Rate() || bestWM.Runs == 0 {
				bestWM = wm
			}
		}
		writeCSVRow(w, b.Name, "pct", bestPCT)
		writeCSVRow(w, b.Name, "pctwm", bestWM)
	}
	return nil
}

// Figure6CSV emits the Figure 6 series as CSV (benchmark, writes,
// strategy, rate) for plotting.
func Figure6CSV(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	if _, err := fmt.Fprintln(w, "benchmark,writes,strategy,rate"); err != nil {
		return err
	}
	for _, f := range fig6Benchmarks {
		b, err := benchprog.ByName(f.name)
		if err != nil {
			return err
		}
		for _, n := range f.sweep {
			if cfg.interrupted() {
				return ErrInterrupted
			}
			c11, _ := harness.BenchTrialsCampaign(b, harness.C11Tester(), cfg.Fig6Runs, cfg.Seed+int64(n), n,
				cfg.campaignCell(fmt.Sprintf("figure6/%s/w%d/c11", b.Name, n)))
			pct, _ := harness.BenchTrialsCampaign(b, harness.PCTFactory(maxInt(b.Depth, 1)), cfg.Fig6Runs, cfg.Seed+int64(2*n), n,
				cfg.campaignCell(fmt.Sprintf("figure6/%s/w%d/pct", b.Name, n)))
			wm, _ := harness.BenchTrialsCampaign(b, harness.PCTWMFactory(b.Depth, 1), cfg.Fig6Runs, cfg.Seed+int64(3*n), n,
				cfg.campaignCell(fmt.Sprintf("figure6/%s/w%d/pctwm", b.Name, n)))
			fmt.Fprintf(w, "%s,%d,c11tester,%.2f\n", b.Name, n, c11.Rate())
			fmt.Fprintf(w, "%s,%d,pct,%.2f\n", b.Name, n, pct.Rate())
			fmt.Fprintf(w, "%s,%d,pctwm,%.2f\n", b.Name, n, wm.Rate())
		}
	}
	return nil
}

// TelemetryCSV emits the per-benchmark engine-counter profile as CSV
// (one row per benchmark; same campaigns as the Telemetry text section)
// for machine consumption.
func TelemetryCSV(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	cfg.phase("telemetry")
	if _, err := fmt.Fprintln(w, "benchmark,trials,events,handoffs,same_thread_grants,rf_cand_mean,rf_cand_max,cp_depth_mean,cp_depth_max,race_checks"); err != nil {
		return err
	}
	for _, b := range benchprog.All() {
		if cfg.interrupted() {
			return ErrInterrupted
		}
		camp := cfg.campaignCell("telemetry/" + b.Name)
		camp.Telemetry = true
		res, _ := harness.BenchTrialsCampaign(b, harness.PCTWMFactory(b.Depth, 1), cfg.Runs, cfg.Seed, 0, camp)
		if res.Telemetry == nil {
			return fmt.Errorf("report: campaign for %s produced no telemetry", b.Name)
		}
		s := res.Telemetry.Summary()
		fmt.Fprintf(w, "%s,%d,%d,%d,%d,%.2f,%d,%.2f,%d,%d\n",
			b.Name, s.Trials, s.Events, s.Handoffs, s.SameThreadGrants,
			s.RFCandidates.Mean, s.RFCandidates.Max,
			s.ChangePointDepth.Mean, s.ChangePointDepth.Max,
			s.RaceChecks)
	}
	return nil
}

// CoverageCSV emits the behavior-coverage artifact as CSV: one row per
// litmus program × strategy with the census size, distinct behaviors
// found, trials to full coverage (-1 when the campaign did not
// saturate), the saturation estimators, and the novelty-gap histogram.
// The campaigns share cell labels with the Coverage text section, so a
// checkpointed text run seeds the CSV run and vice versa.
func CoverageCSV(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	cfg.phase("coverage")
	if _, err := fmt.Fprintln(w, "program,census,strategy,behaviors,observations,trials_to_full,est_unseen,chao1,gap_hist"); err != nil {
		return err
	}
	for _, name := range coverageTargets {
		if cfg.interrupted() {
			return ErrInterrupted
		}
		lt, err := findLitmus(name)
		if err != nil {
			return err
		}
		census, err := enumerate.BehaviorCensus(lt.Program, engine.Options{Model: cfg.Model},
			enumerate.Config{Limit: coverageCensusLimit, Workers: cfg.Workers, Context: cfg.Context})
		if err != nil {
			return err
		}
		for i, s := range coverageStrategies {
			set, err := cfg.coverageCampaign(lt, s.name, s.factory, int64(23*i))
			if err != nil {
				return err
			}
			st := set.Stats()
			trialsToFull := int64(-1)
			if census.Complete && st.Behaviors == len(census.Behaviors) {
				trialsToFull = st.LastNovel + 1
			}
			fmt.Fprintf(w, "%s,%d,%s,%d,%d,%d,%.4f,%.2f,%s\n",
				lt.Name, len(census.Behaviors), s.name, st.Behaviors, st.Observations,
				trialsToFull, st.UnseenMass, st.Chao1, histCells(st.GapHist))
		}
	}
	return nil
}

// histCells renders a histogram's populated buckets as "label:count"
// pairs joined by ";". The labels come from telemetry.BucketLabel — the
// exact table behind the Prometheus `le` labels — so the boundaries in
// the CSV and on /metrics can never disagree (a test pins this).
func histCells(h telemetry.Hist) string {
	var parts []string
	for i, n := range h.Buckets {
		if n > 0 {
			parts = append(parts, telemetry.BucketLabel(i)+":"+strconv.FormatUint(n, 10))
		}
	}
	return strings.Join(parts, ";")
}

func writeCSVRow(w io.Writer, bench, strategy string, res harness.TrialResult) {
	lo, hi := res.CI95()
	fmt.Fprintf(w, "%s,%s,%.2f,%.2f,%.2f\n", bench, strategy, res.Rate(), lo, hi)
}
