package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// StartProgress launches a periodic one-line status reporter reading
// from m and writing to w (normally os.Stderr, so it composes with
// stdout JSON/CSV output and with SIGINT partial flushes). It returns a
// stop function that halts the ticker and prints one final line;
// calling stop more than once is safe.
//
// A line looks like
//
//	[table2] 12400/48000 trials (2310.5/s, eta 15s) | hits 37, quarantine 0, timeout 0 | workers 8
//
// The rate and ETA are zero-guarded: an idle or empty campaign prints
// "0.0/s" and omits the ETA rather than emitting Inf/NaN.
func StartProgress(w io.Writer, m *Metrics, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				writeProgressLine(w, m)
			}
		}
	}()
	return func() {
		once.Do(func() {
			close(done)
			writeProgressLine(w, m)
		})
	}
}

// writeProgressLine renders one status line from a metrics snapshot.
func writeProgressLine(w io.Writer, m *Metrics) {
	s := m.SnapshotAt(time.Now())
	line := FormatProgress(s)
	fmt.Fprintln(w, line)
}

// FormatProgress renders a Snapshot as the canonical one-line status
// (exposed separately so tests can assert on it without a ticker).
func FormatProgress(s Snapshot) string {
	phase := s.Phase
	if phase == "" {
		phase = "run"
	}
	var eta string
	if s.Expected > s.Trials && s.TrialsPerSec > 0 {
		remain := float64(s.Expected-s.Trials) / s.TrialsPerSec
		eta = fmt.Sprintf(", eta %s", time.Duration(remain*float64(time.Second)).Round(time.Second))
	}
	var total string
	if s.Expected > 0 {
		total = fmt.Sprintf("/%d", s.Expected)
	}
	// With coverage on, show how much of the behavior space the campaign
	// is still discovering: distinct behaviors and the Good–Turing
	// estimate of the unseen probability mass (see Snapshot).
	var cov string
	if s.CoverageObservations > 0 {
		cov = fmt.Sprintf(" | behaviors=%d est_unseen=%.1f%%",
			s.CoverageBehaviors, 100*s.CoverageUnseenMass)
	}
	return fmt.Sprintf("[%s] %d%s trials (%.1f/s%s) | hits %d, quarantine %d, timeout %d%s | workers %d",
		phase, s.Trials, total, s.TrialsPerSec, eta,
		s.Hits, s.Quarantines, s.Timeouts, cov, s.Workers)
}
