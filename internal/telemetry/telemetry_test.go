package telemetry

import (
	"io"
	"math"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"pctwm/internal/memmodel"
)

// TestMatrixCoversEnums: the dense op matrix must be able to index every
// kind/order the memory model defines (a new enum value must bump the
// constants, or CountOp silently drops it).
func TestMatrixCoversEnums(t *testing.T) {
	for k := 0; ; k++ {
		if strings.HasPrefix(memmodel.Kind(k).String(), "kind(") {
			if k != NumKinds {
				t.Fatalf("memmodel defines %d kinds, NumKinds is %d", k, NumKinds)
			}
			break
		}
	}
	for o := 0; ; o++ {
		if strings.HasPrefix(memmodel.Order(o).String(), "order(") {
			if o != NumOrders {
				t.Fatalf("memmodel defines %d orders, NumOrders is %d", o, NumOrders)
			}
			break
		}
	}
	// Out-of-range values are dropped, not a panic or corruption.
	var c EngineCounters
	c.CountOp(memmodel.Kind(NumKinds+3), memmodel.Order(NumOrders+3))
	if c.Events() != 0 {
		t.Fatalf("out-of-range op was counted")
	}
}

// TestHistBuckets: values land in the log2 bucket whose upper bound
// (2^i - 1) is the smallest one >= v, and the last bucket absorbs the
// overflow.
func TestHistBuckets(t *testing.T) {
	var h Hist
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 20, 21}, {math.MaxUint64, HistBuckets - 1},
	}
	for _, c := range cases {
		h = Hist{}
		h.Observe(c.v)
		if h.Buckets[c.bucket] != 1 {
			t.Fatalf("value %d not in bucket %d: %v", c.v, c.bucket, h.Buckets)
		}
		if c.bucket < HistBuckets-1 && BucketUpper(c.bucket) < c.v {
			t.Fatalf("bucket %d upper %d < value %d", c.bucket, BucketUpper(c.bucket), c.v)
		}
	}
}

// TestHistMergeAndMean: merge adds counts/sums/buckets, keeps the max,
// and Mean stays zero-guarded.
func TestHistMergeAndMean(t *testing.T) {
	var a, b Hist
	if a.Mean() != 0 {
		t.Fatalf("empty mean %v", a.Mean())
	}
	a.Observe(2)
	a.Observe(4)
	b.Observe(100)
	a.Merge(&b)
	if a.Count != 3 || a.Sum != 106 || a.Max != 100 {
		t.Fatalf("merge: %+v", a)
	}
	if got := a.Mean(); math.Abs(got-106.0/3) > 1e-9 {
		t.Fatalf("mean %v", got)
	}
}

// TestAtomicHistMatchesHist: the atomic mirror buckets identically to the
// plain histogram.
func TestAtomicHistMatchesHist(t *testing.T) {
	var plain Hist
	var at AtomicHist
	for _, v := range []uint64{0, 1, 3, 9, 100, 5000} {
		plain.Observe(v)
		at.Observe(v)
	}
	if snap := at.Snapshot(); snap != plain {
		t.Fatalf("atomic snapshot %+v != plain %+v", snap, plain)
	}
}

// TestEngineCountersMerge: merging shards is order-independent and the
// change-point log (a per-Runner diagnostic) is excluded.
func TestEngineCountersMerge(t *testing.T) {
	mk := func(seed uint64) *EngineCounters {
		c := &EngineCounters{}
		c.Trials = seed
		c.CountOp(memmodel.KindRead, memmodel.Relaxed)
		c.Handoffs = 2 * seed
		c.RFCandidates.Observe(seed)
		c.LogChangePoint(ChangePoint{Comm: int(seed)})
		c.RaceChecks = seed
		return c
	}
	var ab, ba EngineCounters
	ab.Merge(mk(3))
	ab.Merge(mk(5))
	ba.Merge(mk(5))
	ba.Merge(mk(3))
	if !reflect.DeepEqual(ab.Summary(), ba.Summary()) {
		t.Fatalf("merge order changed totals")
	}
	if len(ab.ChangePoints) != 0 {
		t.Fatalf("merge copied the change-point log")
	}
	if ab.Trials != 8 || ab.Handoffs != 16 || ab.RaceChecks != 8 {
		t.Fatalf("merged totals wrong: %+v", ab)
	}
}

// TestChangePointLogCap: the log stops growing at the cap while the depth
// histogram keeps counting.
func TestChangePointLogCap(t *testing.T) {
	var c EngineCounters
	for i := 0; i < maxChangePointLog+50; i++ {
		c.LogChangePoint(ChangePoint{Comm: i})
	}
	if len(c.ChangePoints) != maxChangePointLog {
		t.Fatalf("log length %d", len(c.ChangePoints))
	}
	if c.ChangePointDepth.Count != uint64(maxChangePointLog+50) {
		t.Fatalf("histogram count %d", c.ChangePointDepth.Count)
	}
}

// TestMetricsSnapshotGuards: an untouched hub snapshots to all-zero
// finite values (no NaN/Inf — the snapshot must always JSON-encode).
func TestMetricsSnapshotGuards(t *testing.T) {
	var m Metrics
	s := m.SnapshotAt(time.Now())
	for name, v := range map[string]float64{
		"trials_per_sec": s.TrialsPerSec,
		"utilization":    s.WorkerUtilization,
		"uptime":         s.UptimeSec,
		"ns_mean":        s.NsPerEvent.Mean,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s is %v", name, v)
		}
	}
	if s.TrialsPerSec != 0 || s.WorkerUtilization != 0 {
		t.Fatalf("idle hub not zero: %+v", s)
	}
	if m.TrialsPerSec() != 0 {
		t.Fatalf("idle TrialsPerSec %v", m.TrialsPerSec())
	}
}

// TestRateGuard: the shared rate helper never divides by zero.
func TestRateGuard(t *testing.T) {
	cases := []struct {
		n    uint64
		d    time.Duration
		want float64
	}{
		{0, 0, 0},
		{0, time.Second, 0},
		{10, 0, 0},
		{10, -time.Second, 0},
		{10, 2 * time.Second, 5},
	}
	for _, c := range cases {
		if got := rate(c.n, c.d); got != c.want {
			t.Fatalf("rate(%d, %v) = %v, want %v", c.n, c.d, got, c.want)
		}
	}
}

// TestMetricsObserveTrial: the per-trial taxonomy lands in the right
// counters and histograms.
func TestMetricsObserveTrial(t *testing.T) {
	var m Metrics
	m.ObserveTrial(TrialObs{Duration: time.Millisecond, Events: 1000, Hit: true, Deadlocked: true})
	m.ObserveTrial(TrialObs{Quarantined: true})
	m.ObserveTrial(TrialObs{TimedOut: true, Canceled: true})
	m.ReproTriaged("DETERMINISTIC")
	m.ReproTriaged("NONDETERMINISTIC")
	m.ReproTriaged("SKIPPED")
	s := m.SnapshotAt(time.Now())
	if s.Trials != 3 || s.Hits != 1 || s.Deadlocks != 1 || s.Quarantines != 1 ||
		s.Timeouts != 1 || s.Cancels != 1 {
		t.Fatalf("taxonomy: %+v", s)
	}
	if s.ReproDet != 1 || s.ReproNondet != 1 || s.ReproSkipped != 1 {
		t.Fatalf("triage: %+v", s)
	}
	if s.NsPerEvent.Count != 1 || s.NsPerEvent.Mean != 1000 {
		t.Fatalf("ns/event: %+v", s.NsPerEvent)
	}
	if s.Events != 1000 {
		t.Fatalf("events: %d", s.Events)
	}
}

// TestWritePrometheus: the core series the CI smoke job asserts are all
// present, and histograms render a valid cumulative form.
func TestWritePrometheus(t *testing.T) {
	var m Metrics
	m.ObserveTrial(TrialObs{Duration: time.Millisecond, Events: 500, Hit: true})
	m.ObserveTrial(TrialObs{Quarantined: true})
	var eng EngineCounters
	eng.CountOp(memmodel.KindRead, memmodel.Acquire)
	eng.Handoffs = 4
	eng.RFCandidates.Observe(3)
	m.MergeEngine(&eng)

	var sb strings.Builder
	m.WritePrometheus(&sb)
	out := sb.String()
	for _, series := range []string{
		"pctwm_trials_total 2",
		"pctwm_trial_hits_total 1",
		"pctwm_trial_quarantines_total 1",
		"pctwm_trial_timeouts_total 0",
		"pctwm_trial_cancels_total 0",
		"pctwm_events_total 500",
		"pctwm_repro_bundles_total{triage=\"deterministic\"}",
		"pctwm_trials_per_second",
		"pctwm_worker_utilization_ratio",
		"pctwm_ns_per_event_bucket{le=\"+Inf\"} 1",
		"pctwm_ns_per_event_count 1",
		"pctwm_trial_duration_ns_sum",
		"pctwm_engine_ops_total{kind=\"R\",order=\"acq\"} 1",
		"pctwm_engine_grants_total{kind=\"handoff\"} 4",
		"pctwm_engine_rf_candidates_count 1",
	} {
		if !strings.Contains(out, series) {
			t.Fatalf("prometheus output missing %q:\n%s", series, out)
		}
	}
}

// TestFormatProgress: the status line renders rate/ETA zero-guarded and
// includes the failure taxonomy.
func TestFormatProgress(t *testing.T) {
	line := FormatProgress(Snapshot{})
	if !strings.Contains(line, "[run] 0 trials (0.0/s)") {
		t.Fatalf("idle line: %q", line)
	}
	if strings.Contains(line, "eta") {
		t.Fatalf("idle line has an ETA: %q", line)
	}
	s := Snapshot{
		Phase: "table2", Expected: 100, Trials: 40, TrialsPerSec: 20,
		Hits: 3, Quarantines: 1, Timeouts: 2, Workers: 4,
	}
	line = FormatProgress(s)
	for _, want := range []string{"[table2]", "40/100", "20.0/s", "eta 3s",
		"hits 3", "quarantine 1", "timeout 2", "workers 4"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
}

// TestHandlerEndpoints: the mux serves Prometheus text, the JSON
// snapshot, and expvar, and ListenAndServe binds ":0" successfully.
func TestHandlerEndpoints(t *testing.T) {
	var m Metrics
	m.ObserveTrial(TrialObs{Duration: time.Millisecond, Events: 10})
	bound, stop, err := m.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	for path, want := range map[string]string{
		"/metrics":      "pctwm_trials_total 1",
		"/metrics.json": "\"trials\": 1",
		"/debug/vars":   "\"pctwm\"",
	} {
		resp, err := http.Get("http://" + bound + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			t.Fatalf("%s missing %q:\n%s", path, want, body)
		}
	}
}
