// Package perfetto renders recorded executions (engine.Recording) as
// Chrome trace-event JSON, the format Perfetto (ui.perfetto.dev) and
// chrome://tracing load directly. One execution becomes one track per
// thread with a slice per event, flow arrows for every reads-from edge,
// and instant markers where PCTWM priority change points landed — so a
// single weird schedule can be inspected visually instead of read as an
// event list.
//
// The time axis is synthetic: executions are fully serialized, so the
// i-th executed event is drawn at ts = i*slotUS microseconds with a fixed
// duration. This preserves the one total order that matters (execution
// order) while keeping slices wide enough to click.
package perfetto

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
	"pctwm/internal/telemetry"
)

// slotUS is the synthetic width of one execution slot in microseconds;
// sliceUS is the drawn duration of an event slice (slightly narrower than
// its slot so adjacent slices do not touch).
const (
	slotUS  = 10
	sliceUS = 8
)

// Event is one Chrome trace-event object. Only the fields this exporter
// uses are modeled; see the Trace Event Format spec for their meaning.
type Event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace is the JSON-object form of a trace-event file.
type Trace struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// Convert builds the trace-event representation of a recording. cps, when
// non-nil, marks the PCTWM priority change points (from
// telemetry.EngineCounters.ChangePoints of the same run) as instant
// events on the delayed events' slices. The output is deterministic for a
// deterministic recording: events are emitted in thread-id then
// execution order, and json.Marshal sorts the args maps.
func Convert(rec *engine.Recording, cps []telemetry.ChangePoint) *Trace {
	tr := &Trace{DisplayTimeUnit: "ms"}
	if rec == nil {
		return tr
	}

	// Execution position of every event (the recording is in execution
	// order) and the set of threads that appear.
	type pos struct {
		ts  int64
		tid int
	}
	posByID := make(map[memmodel.EventID]pos, len(rec.Events))
	posByKey := make(map[[2]int]pos, len(rec.Events))
	maxTID := 0
	for i := range rec.Events {
		ev := &rec.Events[i]
		p := pos{ts: int64(i) * slotUS, tid: int(ev.TID)}
		posByID[ev.ID] = p
		posByKey[[2]int{int(ev.TID), ev.Index}] = p
		if int(ev.TID) > maxTID {
			maxTID = int(ev.TID)
		}
	}

	// Track metadata: process name plus one named track per thread.
	tr.TraceEvents = append(tr.TraceEvents, Event{
		Name: "process_name", Ph: "M", PID: 0, TID: 0,
		Args: map[string]any{"name": "pctwm execution"},
	})
	seen := make([]bool, maxTID+1)
	for i := range rec.Events {
		seen[int(rec.Events[i].TID)] = true
	}
	for tid := 0; tid <= maxTID; tid++ {
		if !seen[tid] {
			continue
		}
		name := "t" + strconv.Itoa(tid)
		if memmodel.ThreadID(tid) == memmodel.InitThread {
			name = "init"
		}
		tr.TraceEvents = append(tr.TraceEvents,
			Event{Name: "thread_name", Ph: "M", PID: 0, TID: tid,
				Args: map[string]any{"name": name}},
			Event{Name: "thread_sort_index", Ph: "M", PID: 0, TID: tid,
				Args: map[string]any{"sort_index": tid}},
		)
	}

	// One slice per event.
	for i := range rec.Events {
		ev := &rec.Events[i]
		e := Event{
			Name: sliceName(ev, rec.LocNames),
			Ph:   "X",
			Cat:  ev.Label.Kind.String(),
			TS:   int64(i) * slotUS,
			Dur:  sliceUS,
			PID:  0,
			TID:  int(ev.TID),
			Args: sliceArgs(ev, rec.LocNames),
		}
		tr.TraceEvents = append(tr.TraceEvents, e)
	}

	// Flow arrows for reads-from edges: start on the writer slice, finish
	// (bind point "e": attach to the enclosing slice) on the reader slice.
	flowID := 0
	for i := range rec.Events {
		ev := &rec.Events[i]
		if !ev.Label.Kind.Reads() || ev.ReadsFrom == memmodel.NoEvent {
			continue
		}
		wp, ok := posByID[ev.ReadsFrom]
		if !ok {
			continue // writer outside the recording (unrecorded init write)
		}
		rp := posByID[ev.ID]
		flowID++
		tr.TraceEvents = append(tr.TraceEvents,
			Event{Name: "rf", Ph: "s", Cat: "rf", ID: flowID,
				TS: wp.ts + sliceUS/2, PID: 0, TID: wp.tid},
			Event{Name: "rf", Ph: "f", Cat: "rf", ID: flowID, BP: "e",
				TS: rp.ts + sliceUS/2, PID: 0, TID: rp.tid},
		)
	}

	// PCTWM change points: instant markers on the delayed events. A change
	// point identifies its event by (thread, po index) — the event had not
	// executed when it was logged — so it is located through posByKey; a
	// delayed event that never executed (run aborted first) has no slice
	// and is skipped.
	for _, cp := range cps {
		p, ok := posByKey[[2]int{int(cp.TID), cp.Index}]
		if !ok {
			continue
		}
		tr.TraceEvents = append(tr.TraceEvents, Event{
			Name: fmt.Sprintf("change point (comm %d, slot %d)", cp.Comm, cp.Slot),
			Ph:   "i", Cat: "change-point", S: "t",
			TS: p.ts, PID: 0, TID: p.tid,
			Args: map[string]any{"comm": cp.Comm, "slot": cp.Slot},
		})
	}
	return tr
}

// sliceName renders the human-visible slice label, e.g. "W[rel] x = 1" or
// "R[acq] flag -> 0".
func sliceName(ev *memmodel.Event, locNames map[memmodel.Loc]string) string {
	lab := ev.Label
	switch lab.Kind {
	case memmodel.KindRead:
		return fmt.Sprintf("R[%s] %s -> %d", lab.Order, locName(lab.Loc, locNames), lab.RVal)
	case memmodel.KindWrite:
		return fmt.Sprintf("W[%s] %s = %d", lab.Order, locName(lab.Loc, locNames), lab.WVal)
	case memmodel.KindRMW:
		return fmt.Sprintf("U[%s] %s %d -> %d", lab.Order, locName(lab.Loc, locNames), lab.RVal, lab.WVal)
	case memmodel.KindFence:
		return fmt.Sprintf("F[%s]", lab.Order)
	default:
		return lab.Kind.String()
	}
}

// sliceArgs carries the machine-readable event details shown in the
// Perfetto details pane.
func sliceArgs(ev *memmodel.Event, locNames map[memmodel.Loc]string) map[string]any {
	args := map[string]any{
		"event_id": int(ev.ID),
		"index":    ev.Index,
		"kind":     ev.Label.Kind.String(),
		"order":    ev.Label.Order.String(),
	}
	if ev.Label.Loc != memmodel.NoLoc {
		args["loc"] = locName(ev.Label.Loc, locNames)
	}
	if ev.Label.Kind.Reads() {
		args["read_value"] = int64(ev.Label.RVal)
		args["reads_from"] = int(ev.ReadsFrom)
	}
	if ev.Label.Kind.Writes() {
		args["write_value"] = int64(ev.Label.WVal)
		args["stamp"] = int(ev.Stamp)
	}
	return args
}

func locName(l memmodel.Loc, names map[memmodel.Loc]string) string {
	if n, ok := names[l]; ok && n != "" {
		return n
	}
	return "x" + strconv.Itoa(int(l))
}

// Marshal renders the recording as an indented trace-event JSON document.
func Marshal(rec *engine.Recording, cps []telemetry.ChangePoint) ([]byte, error) {
	return json.MarshalIndent(Convert(rec, cps), "", " ")
}

// Write streams the trace-event JSON to w (with a trailing newline).
func Write(w io.Writer, rec *engine.Recording, cps []telemetry.ChangePoint) error {
	data, err := Marshal(rec, cps)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
