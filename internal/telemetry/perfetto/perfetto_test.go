package perfetto

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/litmus"
	"pctwm/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite the golden trace files")

// recordSB runs the SB+rlx litmus program once under PCTWM at a fixed
// seed with recording and an armed counter shard, returning the
// recording and the logged change points. The engine is deterministic
// per (program, strategy, seed), so the trace is stable across runs and
// platforms.
func recordSB(t *testing.T) (*engine.Recording, []telemetry.ChangePoint) {
	t.Helper()
	var lt *litmus.Test
	for _, cand := range litmus.Suite() {
		if cand.Name == "SB+rlx" {
			lt = cand
			break
		}
	}
	if lt == nil {
		t.Fatal("litmus test SB+rlx not in the suite")
	}
	tel := &telemetry.EngineCounters{}
	opts := engine.Options{Record: true, Telemetry: tel}
	o := engine.Run(lt.Program, core.NewPCTWM(2, 1, 4), 3, opts)
	if o.Recording == nil {
		t.Fatal("no recording")
	}
	return o.Recording, tel.ChangePoints
}

// TestGoldenSBTrace: the exporter's output for a fixed litmus execution
// matches the committed golden file byte-for-byte (deterministic event
// order, sorted JSON maps). Regenerate with `go test -run Golden
// ./internal/telemetry/perfetto -update` after intentional format
// changes.
func TestGoldenSBTrace(t *testing.T) {
	rec, cps := recordSB(t)
	got, err := Marshal(rec, cps)
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "sb_rlx_seed3.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace diverges from golden file %s (len %d vs %d); "+
			"if the change is intentional, re-run with -update", golden, len(got), len(want))
	}
}

// TestTraceShape: structural invariants that hold for any recording —
// metadata present, one slice per event, rf flows in matched s/f pairs,
// monotone slice timestamps per execution order.
func TestTraceShape(t *testing.T) {
	rec, cps := recordSB(t)
	tr := Convert(rec, cps)

	var slices, flowStarts, flowEnds, meta, instants int
	lastTS := int64(-1)
	for _, e := range tr.TraceEvents {
		switch e.Ph {
		case "X":
			slices++
			if e.TS < lastTS {
				t.Fatalf("slice timestamps not monotone: %d after %d", e.TS, lastTS)
			}
			lastTS = e.TS
		case "s":
			flowStarts++
		case "f":
			flowEnds++
			if e.BP != "e" {
				t.Fatalf("flow finish without bp=e: %+v", e)
			}
		case "M":
			meta++
		case "i":
			instants++
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if slices != len(rec.Events) {
		t.Fatalf("%d slices for %d events", slices, len(rec.Events))
	}
	if flowStarts != flowEnds {
		t.Fatalf("unbalanced rf flows: %d starts, %d ends", flowStarts, flowEnds)
	}
	if meta < 3 {
		t.Fatalf("missing track metadata (%d events)", meta)
	}

	// The document must be loadable JSON with the trace-event envelope.
	data, err := Marshal(rec, cps)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents     []json.RawMessage `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != len(tr.TraceEvents) || doc.DisplayTimeUnit != "ms" {
		t.Fatalf("envelope mismatch: %d events, unit %q", len(doc.TraceEvents), doc.DisplayTimeUnit)
	}
}

// TestConvertNil: a nil recording converts to an empty, valid trace.
func TestConvertNil(t *testing.T) {
	tr := Convert(nil, nil)
	if len(tr.TraceEvents) != 0 {
		t.Fatalf("nil recording produced %d events", len(tr.TraceEvents))
	}
	if _, err := Marshal(nil, nil); err != nil {
		t.Fatal(err)
	}
}
