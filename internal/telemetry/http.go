package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"

	"pctwm/internal/memmodel"
)

// WritePrometheus renders the metrics in Prometheus text exposition
// format (version 0.0.4). Counter and gauge names are stable API — the
// DESIGN.md Observability section documents them, and the CI metrics
// smoke job asserts the core series are present.
func (m *Metrics) WritePrometheus(w io.Writer) {
	s := m.SnapshotAt(time.Now())

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("pctwm_trials_total", "Trials completed across all campaigns.", s.Trials)
	counter("pctwm_trial_hits_total", "Failed (bug-hitting) trials: assertion violations, races, panics, deadlocks.", s.Hits)
	counter("pctwm_trial_deadlocks_total", "Trials that ended in a reported deadlock.", s.Deadlocks)
	counter("pctwm_trial_quarantines_total", "Trials whose worker panicked and was quarantined (fresh Runner swapped in).", s.Quarantines)
	counter("pctwm_trial_timeouts_total", "Trials stopped by the per-trial wall-clock watchdog.", s.Timeouts)
	counter("pctwm_trial_cancels_total", "Trials cut short by campaign cancellation.", s.Cancels)
	counter("pctwm_events_total", "Events executed across all trials.", s.Events)
	counter("pctwm_campaigns_interrupted_total", "Campaigns cut short by context cancellation (SIGINT/SIGTERM or watchdog).", s.Interrupts)
	counter("pctwm_campaigns_stuck_total", "Stuck-worker watchdog firings.", s.Stuck)

	fmt.Fprintf(w, "# HELP pctwm_repro_bundles_total Repro bundles written, by flake-triage verdict.\n# TYPE pctwm_repro_bundles_total counter\n")
	fmt.Fprintf(w, "pctwm_repro_bundles_total{triage=\"deterministic\"} %d\n", s.ReproDet)
	fmt.Fprintf(w, "pctwm_repro_bundles_total{triage=\"nondeterministic\"} %d\n", s.ReproNondet)
	fmt.Fprintf(w, "pctwm_repro_bundles_total{triage=\"skipped\"} %d\n", s.ReproSkipped)

	counter("pctwm_checkpoint_writes_total", "Checkpoint generations committed to durable storage.", s.CheckpointWrites)
	counter("pctwm_checkpoint_retries_total", "Durable-write retries after transient filesystem errors.", s.CheckpointRetries)
	counter("pctwm_checkpoint_corrupt_recoveries_total", "Checkpoint loads that fell back past a corrupt generation.", s.CheckpointCorrupt)
	counter("pctwm_checkpoint_degraded_total", "Campaigns that stopped writing durably (directory unwritable).", s.CheckpointDegraded)

	counter("pctwm_coverage_behaviors_total", "Distinct behavior fingerprints observed across coverage-enabled trials.", s.CoverageBehaviors)
	gauge("pctwm_coverage_unseen_mass", "Good-Turing estimate of the probability the next trial shows a never-seen behavior.", s.CoverageUnseenMass)

	gauge("pctwm_trials_per_second", "Campaign-wide trial completion rate.", s.TrialsPerSec)
	gauge("pctwm_worker_count", "Campaign workers currently running trials.", float64(s.Workers))
	gauge("pctwm_worker_utilization_ratio", "Fraction of worker time spent inside trials.", s.WorkerUtilization)

	writePromHist(w, "pctwm_trial_duration_ns", "Per-trial wall time in nanoseconds.", m.trialNs.Snapshot())
	writePromHist(w, "pctwm_ns_per_event", "Per-trial nanoseconds per executed event.", m.nsPerEvent.Snapshot())

	// Engine counters (merged at trial boundaries from per-worker shards).
	eng := m.Engine()
	fmt.Fprintf(w, "# HELP pctwm_engine_ops_total Executed events by op kind and memory order.\n# TYPE pctwm_engine_ops_total counter\n")
	type cell struct {
		kind, order string
		n           uint64
	}
	var cells []cell
	for k := range eng.Ops {
		for ord := range eng.Ops[k] {
			if n := eng.Ops[k][ord]; n > 0 {
				cells = append(cells, cell{memmodel.Kind(k).String(), memmodel.Order(ord).String(), n})
			}
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].kind != cells[j].kind {
			return cells[i].kind < cells[j].kind
		}
		return cells[i].order < cells[j].order
	})
	for _, c := range cells {
		fmt.Fprintf(w, "pctwm_engine_ops_total{kind=%q,order=%q} %d\n", c.kind, c.order, c.n)
	}

	fmt.Fprintf(w, "# HELP pctwm_engine_grants_total Scheduler grants by whether they switched threads.\n# TYPE pctwm_engine_grants_total counter\n")
	fmt.Fprintf(w, "pctwm_engine_grants_total{kind=\"handoff\"} %d\n", eng.Handoffs)
	fmt.Fprintf(w, "pctwm_engine_grants_total{kind=\"same_thread\"} %d\n", eng.SameThreadGrants)

	writePromHist(w, "pctwm_engine_rf_candidates", "Coherence-legal candidate-bag sizes materialized for reads.", eng.RFCandidates)
	writePromHist(w, "pctwm_engine_change_point_depth", "Communication-event encounter indices where PCTWM change points landed.", eng.ChangePointDepth)
	counter("pctwm_engine_race_checks_total", "Vector-clock race-detector access checks.", eng.RaceChecks)
	counter("pctwm_engine_axiom_recheck_ns_total", "Wall time spent re-checking executions against the C11 axioms.", eng.AxiomRecheckNs)
}

// writePromHist renders one Hist as a Prometheus histogram with
// cumulative le bounds from the shared BucketLabel table (2^i - 1, then
// +Inf) — the same labels the CSV/report renderers use, so /metrics and
// report boundaries cannot diverge. Empty leading/trailing buckets are
// collapsed to keep output small.
func writePromHist(w io.Writer, name, help string, h Hist) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i := 0; i < HistBuckets-1; i++ {
		cum += h.Buckets[i]
		// Skip interior zero-width repeats: only emit a bound when the
		// bucket is populated or it is the first bound (le="0"), keeping
		// the cumulative series valid while dropping dead lines.
		if h.Buckets[i] == 0 && i > 0 {
			continue
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, BucketLabel(i), cum)
	}
	cum += h.Buckets[HistBuckets-1]
	fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, BucketLabel(HistBuckets-1), cum)
	fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

// expvarOnce guards the process-global expvar registration (Publish
// panics on duplicate names; tests create many Metrics).
var expvarOnce sync.Once

// publishExpvar registers this Metrics under the "pctwm" expvar name.
// Only the first Metrics per process wins, which matches the one-hub
// usage model.
func (m *Metrics) publishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("pctwm", expvar.Func(func() any {
			return m.SnapshotAt(time.Now())
		}))
	})
}

// Handler returns the monitoring mux for a Metrics:
//
//	/metrics       Prometheus text format
//	/metrics.json  Snapshot as JSON
//	/debug/vars    expvar JSON (includes the "pctwm" var)
func (m *Metrics) Handler() http.Handler {
	m.publishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.SnapshotAt(time.Now()))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// ListenAndServe starts the monitoring endpoint on addr in a background
// goroutine and returns the bound address (useful with ":0") and a stop
// function. Serving failures after a successful bind are dropped: the
// endpoint is best-effort observability, never a campaign-killer.
func (m *Metrics) ListenAndServe(addr string) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: m.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// ListenAndServePprof exposes net/http/pprof on addr (for long
// campaigns; pair with the pprof labels campaign workers run under).
func ListenAndServePprof(addr string) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
