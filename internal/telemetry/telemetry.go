// Package telemetry is the low-overhead instrumentation layer of the
// repository: per-Runner engine counters (plain fields, no atomics, no
// allocation on the hot path), campaign-level metrics shared by worker
// pools (atomics, updated only at trial boundaries), log-bucketed
// histograms, a Prometheus/expvar HTTP endpoint, and a periodic one-line
// progress reporter.
//
// The design has two layers matching the two update frequencies:
//
//   - EngineCounters is attached to one engine.Runner via
//     engine.Options.Telemetry and written with plain (non-atomic) field
//     increments from inside the step loop. A Runner is single-threaded
//     by contract, so no synchronization is needed; with a nil pointer
//     the engine pays exactly one predictable branch per hook and
//     allocates nothing.
//   - Metrics is shared by all workers of a campaign and updated with
//     atomics once per *trial* (thousands of events per trial), so the
//     synchronization cost is invisible. Worker-local EngineCounters are
//     merged into Metrics when each worker exits, which keeps merged
//     totals bit-identical between serial and parallel campaigns.
//
// The package deliberately depends only on the standard library and
// internal/memmodel (for kind/order names), so every other layer —
// engine, harness, report, the CLIs — can import it without cycles.
package telemetry

import (
	"math/bits"
	"strconv"

	"pctwm/internal/memmodel"
)

// NumKinds and NumOrders size the dense op-count matrix. They must cover
// every memmodel.Kind / memmodel.Order value (asserted by a test).
const (
	NumKinds  = 7 // R, W, U, F, Spawn, Join, Assert
	NumOrders = 6 // na, rlx, acq, rel, acq-rel, sc
)

// HistBuckets is the number of log2 buckets in a Hist. Bucket i counts
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i); the
// last bucket absorbs everything larger. 28 buckets cover values up to
// ~134M, far beyond any per-trial quantity the engine observes (candidate
// bag sizes, change-point depths) while keeping the struct compact.
const HistBuckets = 28

// Hist is a log2-bucketed histogram with plain (non-atomic) fields, for
// single-writer accumulation inside one Runner.
type Hist struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	Buckets [HistBuckets]uint64
}

// histBucket maps a value onto its log2 bucket index.
func histBucket(v uint64) int {
	b := bits.Len64(v)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// BucketUpper returns the inclusive upper bound of bucket i (2^i - 1);
// the last bucket is unbounded (callers render it as +Inf).
func BucketUpper(i int) uint64 {
	return uint64(1)<<uint(i) - 1
}

// BucketLabel renders bucket i's inclusive upper bound. This is the one
// shared boundary table: the Prometheus exposition (histogram `le`
// labels) and the CSV/report histogram columns both go through it, so
// the bucket boundaries shown on /metrics and in reports cannot drift
// apart. The last bucket is unbounded and renders as "+Inf".
func BucketLabel(i int) string {
	if i >= HistBuckets-1 {
		return "+Inf"
	}
	return strconv.FormatUint(BucketUpper(i), 10)
}

// BucketLabels returns the labels of all HistBuckets buckets in order
// (see BucketLabel).
func BucketLabels() [HistBuckets]string {
	var out [HistBuckets]string
	for i := range out {
		out[i] = BucketLabel(i)
	}
	return out
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	h.Buckets[histBucket(v)]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

// Merge accumulates o into h. Merging is commutative and associative, so
// totals are independent of worker interleaving.
func (h *Hist) Merge(o *Hist) {
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the mean observed value, zero-guarded (0 for an empty
// histogram — never NaN, so JSON encoding cannot fail).
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// HistSummary is the JSON-facing digest of a Hist.
type HistSummary struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Max   uint64  `json:"max"`
	Mean  float64 `json:"mean"`
}

// Summary digests the histogram.
func (h *Hist) Summary() HistSummary {
	return HistSummary{Count: h.Count, Sum: h.Sum, Max: h.Max, Mean: h.Mean()}
}

// ChangePoint records one PCTWM priority change point: the pending event
// that was delayed (identified by thread and po index, a stable identity
// for a not-yet-executed event), the communication-event encounter index
// it landed on, and the reserved priority slot it was demoted into.
type ChangePoint struct {
	TID memmodel.ThreadID `json:"tid"`
	// Index is the po index of the delayed event within its thread.
	Index int `json:"index"`
	// Comm is the 1-based communication-event encounter index (the
	// sampled d_k of Algorithm 1) at which the change point landed.
	Comm int `json:"comm"`
	// Slot is the reserved low-priority slot (d-k+1) the thread moved to.
	Slot int `json:"slot"`
}

// maxChangePointLog bounds the per-Runner change-point log. The log is a
// per-execution diagnostic (the Perfetto exporter marks change points on
// schedule traces); campaigns that run millions of trials only keep the
// first entries and rely on the ChangePointDepth histogram for aggregate
// shape.
const maxChangePointLog = 256

// EngineCounters accumulates per-execution engine statistics for one
// Runner. All fields are plain (non-atomic): a Runner is single-threaded
// by contract, and campaigns give every worker its own EngineCounters,
// merged at the end (see Merge). The zero value is ready to use.
//
// An EngineCounters must not be shared by Runners that run concurrently.
type EngineCounters struct {
	// Model tags the counters with the memory-model backend that produced
	// them ("rc11", "sc", "tso"). The engine stamps it on first use; Merge
	// keeps the first non-empty tag (campaigns run one model at a time).
	Model string
	// Trials counts completed engine runs.
	Trials uint64
	// Ops counts executed events by [kind][order] (dense matrix; index
	// with memmodel.Kind / memmodel.Order values).
	Ops [NumKinds][NumOrders]uint64
	// Handoffs counts scheduler grants that moved execution to a
	// different thread (a coroutine switch under the direct-handoff
	// protocol); SameThreadGrants counts grants that kept the current
	// thread running (zero switches). Both are derived purely from the
	// schedule, so they are bit-identical across scheduler protocols and
	// worker counts.
	Handoffs         uint64
	SameThreadGrants uint64
	// RFCandidates is the distribution of coherence-legal candidate-bag
	// sizes materialized for reads — how many visible writes each read
	// had to choose from (the paper's readGlobal search space).
	RFCandidates Hist
	// ChangePointDepth is the distribution of communication-event
	// encounter indices at which PCTWM priority change points landed.
	ChangePointDepth Hist
	// RaceChecks counts vector-clock race-detector access checks.
	RaceChecks uint64
	// Drains counts buffered stores flushed to shared memory by the tso
	// backend (always zero under rc11/sc, which have no store buffers).
	Drains uint64
	// AxiomRecheckNs is the cumulative wall time (ns) spent re-checking
	// recorded executions against the C11 axioms (tools and tests call
	// AddAxiomRecheck around axiom.Graph.Check).
	AxiomRecheckNs uint64
	// ExploreRuns counts engine executions performed by the exhaustive
	// explorer (internal/enumerate): counted leaves plus frontier-expansion
	// probes and merge-time re-descents. Unlike enumerate.Result.Runs this
	// is a work counter — it includes executions whose results were
	// discarded, so its value may vary with the worker count.
	ExploreRuns uint64
	// ExploreSteals counts subtree shards a worker claimed from another
	// worker's queue (work-stealing in the parallel explorer). Zero for
	// serial explorations; scheduling-dependent otherwise.
	ExploreSteals uint64
	// ExplorePruned counts frontier subtrees the parallel explorer skipped
	// or discarded without merging: the run limit was already covered by
	// lexicographically earlier shards, or a drift abort cut the
	// exploration short. Scheduling-dependent, like ExploreRuns.
	ExplorePruned uint64

	// ChangePoints is the capped per-Runner change-point log (see
	// maxChangePointLog). It is a diagnostic for single-execution trace
	// export and is NOT merged by Merge — merged totals stay
	// deterministic regardless of worker interleaving.
	ChangePoints []ChangePoint
}

// CountOp records one executed event by kind and order. Out-of-range
// values (future enum growth) are dropped rather than corrupting memory.
func (c *EngineCounters) CountOp(kind memmodel.Kind, order memmodel.Order) {
	if int(kind) < NumKinds && int(order) < NumOrders {
		c.Ops[kind][order]++
	}
}

// LogChangePoint appends to the capped change-point log and observes the
// depth histogram.
func (c *EngineCounters) LogChangePoint(cp ChangePoint) {
	c.ChangePointDepth.Observe(uint64(cp.Comm))
	if len(c.ChangePoints) < maxChangePointLog {
		c.ChangePoints = append(c.ChangePoints, cp)
	}
}

// AddAxiomRecheck accumulates consistency-recheck wall time.
func (c *EngineCounters) AddAxiomRecheck(ns int64) {
	if ns > 0 {
		c.AxiomRecheckNs += uint64(ns)
	}
}

// Merge accumulates o's counters into c. The change-point log is not
// merged (it is a per-Runner diagnostic; merging would make totals
// depend on worker interleaving). Merge is commutative and associative
// over the numeric fields, so campaign totals are bit-identical between
// serial and parallel runs over the same seed set.
func (c *EngineCounters) Merge(o *EngineCounters) {
	if c.Model == "" {
		c.Model = o.Model
	}
	c.Trials += o.Trials
	for k := range c.Ops {
		for ord := range c.Ops[k] {
			c.Ops[k][ord] += o.Ops[k][ord]
		}
	}
	c.Handoffs += o.Handoffs
	c.SameThreadGrants += o.SameThreadGrants
	c.RFCandidates.Merge(&o.RFCandidates)
	c.ChangePointDepth.Merge(&o.ChangePointDepth)
	c.RaceChecks += o.RaceChecks
	c.Drains += o.Drains
	c.AxiomRecheckNs += o.AxiomRecheckNs
	c.ExploreRuns += o.ExploreRuns
	c.ExploreSteals += o.ExploreSteals
	c.ExplorePruned += o.ExplorePruned
}

// Events returns the total number of counted events across all kinds and
// orders.
func (c *EngineCounters) Events() uint64 {
	var n uint64
	for k := range c.Ops {
		for ord := range c.Ops[k] {
			n += c.Ops[k][ord]
		}
	}
	return n
}

// EngineSummary is the JSON-facing digest of an EngineCounters. Ops is
// keyed "kind/order" (e.g. "R/rlx") with zero cells omitted;
// encoding/json sorts map keys, so the encoding is deterministic.
type EngineSummary struct {
	Model            string            `json:"model,omitempty"`
	Trials           uint64            `json:"trials"`
	Events           uint64            `json:"events"`
	Ops              map[string]uint64 `json:"ops,omitempty"`
	Handoffs         uint64            `json:"handoffs"`
	SameThreadGrants uint64            `json:"same_thread_grants"`
	RFCandidates     HistSummary       `json:"rf_candidates"`
	ChangePointDepth HistSummary       `json:"change_point_depth"`
	RaceChecks       uint64            `json:"race_checks"`
	Drains           uint64            `json:"drains,omitempty"`
	AxiomRecheckNs   uint64            `json:"axiom_recheck_ns"`
	ExploreRuns      uint64            `json:"explore_runs,omitempty"`
	ExploreSteals    uint64            `json:"explore_steals,omitempty"`
	ExplorePruned    uint64            `json:"explore_pruned,omitempty"`
}

// Summary digests the counters (the change-point log is excluded — it is
// a per-Runner diagnostic, not an aggregate).
func (c *EngineCounters) Summary() EngineSummary {
	s := EngineSummary{
		Model:            c.Model,
		Trials:           c.Trials,
		Events:           c.Events(),
		Handoffs:         c.Handoffs,
		SameThreadGrants: c.SameThreadGrants,
		RFCandidates:     c.RFCandidates.Summary(),
		ChangePointDepth: c.ChangePointDepth.Summary(),
		RaceChecks:       c.RaceChecks,
		Drains:           c.Drains,
		AxiomRecheckNs:   c.AxiomRecheckNs,
		ExploreRuns:      c.ExploreRuns,
		ExploreSteals:    c.ExploreSteals,
		ExplorePruned:    c.ExplorePruned,
	}
	for k := range c.Ops {
		for ord := range c.Ops[k] {
			if n := c.Ops[k][ord]; n > 0 {
				if s.Ops == nil {
					s.Ops = make(map[string]uint64)
				}
				s.Ops[memmodel.Kind(k).String()+"/"+memmodel.Order(ord).String()] += n
			}
		}
	}
	return s
}
