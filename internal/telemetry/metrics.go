package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// AtomicHist is the thread-safe counterpart of Hist, used for quantities
// observed once per trial from many campaign workers. Bucketing is
// identical to Hist (log2, HistBuckets buckets), so snapshots of an
// AtomicHist and plain Hists merge and render the same way.
type AtomicHist struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [HistBuckets]atomic.Uint64
}

// Observe records one value.
func (h *AtomicHist) Observe(v uint64) {
	h.buckets[histBucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot copies the histogram into a plain Hist. The snapshot is not
// atomic across fields (counters move while it is taken), which is fine
// for monitoring output; campaign-final numbers are read after all
// workers have exited.
func (h *AtomicHist) Snapshot() Hist {
	var out Hist
	out.Count = h.count.Load()
	out.Sum = h.sum.Load()
	out.Max = h.max.Load()
	for i := range out.Buckets {
		out.Buckets[i] = h.buckets[i].Load()
	}
	return out
}

// TrialObs is the per-trial observation fed into Metrics.ObserveTrial by
// campaign workers. Flags mirror the harness outcome taxonomy.
type TrialObs struct {
	// Duration is the engine-measured wall time of the trial.
	Duration time.Duration
	// Events is the number of scheduled events the trial executed.
	Events int
	// Hit marks a failed (bug-hitting) outcome: assertion violation,
	// detected race, or structured panic/deadlock error.
	Hit bool
	// Quarantined marks a trial whose worker panicked and was replaced.
	Quarantined bool
	// TimedOut marks a per-trial wall-clock watchdog expiry.
	TimedOut bool
	// Canceled marks a trial cut short by campaign cancellation.
	Canceled bool
	// Deadlocked marks a reported deadlock outcome (subset of Hit).
	Deadlocked bool
	// BehaviorFP is the trial's canonical behavior fingerprint (computed
	// by internal/coverage when engine Options.Coverage is on).
	// Meaningful only when HasBehavior is set.
	BehaviorFP uint64
	// HasBehavior marks a complete execution with a valid BehaviorFP:
	// coverage was enabled and the run finished without an engine error
	// (timeouts, step-limit aborts and cancellations carry no behavior).
	HasBehavior bool
}

// Metrics is the campaign-level metrics hub shared by all workers of one
// process. All fields are updated with atomics (or under mu for the
// merged engine counters), and every update happens at most once per
// trial or campaign phase — never on the engine's per-event hot path.
//
// The zero value is ready to use. One Metrics is typically created per
// process, passed to every Campaign, and served over HTTP via Handler.
type Metrics struct {
	startNs atomic.Int64 // process-relative epoch for rate/ETA computation

	expected atomic.Uint64 // trials planned across announced campaigns
	trials   atomic.Uint64 // trials completed
	hits     atomic.Uint64 // failed (bug-hitting) trials
	events   atomic.Uint64 // events executed (sum over trials)

	deadlocks   atomic.Uint64
	quarantines atomic.Uint64
	timeouts    atomic.Uint64
	cancels     atomic.Uint64
	interrupts  atomic.Uint64 // campaigns cut short by context cancellation
	stuck       atomic.Uint64 // stuck-worker watchdog firings

	reproDeterministic    atomic.Uint64
	reproNondeterministic atomic.Uint64
	reproSkipped          atomic.Uint64

	checkpointWrites   atomic.Uint64 // committed checkpoint generations
	checkpointRetries  atomic.Uint64 // durable-write retries after transient errors
	checkpointCorrupt  atomic.Uint64 // loads that recovered past a corrupt generation
	checkpointDegraded atomic.Uint64 // campaigns that gave up on durable writes

	workers atomic.Int64  // workers currently running trials
	busyNs  atomic.Uint64 // cumulative worker busy time (trial durations)

	trialNs    AtomicHist // per-trial wall time, ns
	nsPerEvent AtomicHist // per-trial ns/event (integer division)

	phase atomic.Value // string: current campaign phase / section label

	mu     sync.Mutex
	engine EngineCounters // merged per-worker engine counters

	// covSeen/covObs are the live behavior-coverage view: observation
	// counts per fingerprint across all trials observed by this hub, and
	// the total number of behavior-carrying trials. Updated once per
	// trial under mu (the map write is far cheaper than the trial that
	// produced it); the campaign-final deterministic set lives in
	// coverage.Set — this map only feeds monitoring output (the
	// Prometheus gauges and the progress line).
	covSeen map[uint64]uint64
	covObs  uint64
}

// touchStart records the first observation time; all rate and ETA
// computations are relative to it.
func (m *Metrics) touchStart() {
	if m.startNs.Load() == 0 {
		m.startNs.CompareAndSwap(0, time.Now().UnixNano())
	}
}

// SetPhase labels the current campaign phase (a report section, a bench
// program name); the progress reporter and the metrics snapshot show it.
func (m *Metrics) SetPhase(name string) {
	m.touchStart()
	m.phase.Store(name)
}

// Phase returns the current phase label ("" before the first SetPhase).
func (m *Metrics) Phase() string {
	if v, ok := m.phase.Load().(string); ok {
		return v
	}
	return ""
}

// AddExpected announces n upcoming trials, which drives the progress
// reporter's ETA.
func (m *Metrics) AddExpected(n int) {
	m.touchStart()
	if n > 0 {
		m.expected.Add(uint64(n))
	}
}

// WorkerStarted / WorkerDone bracket a campaign worker's lifetime and
// feed the worker-utilization gauge.
func (m *Metrics) WorkerStarted() { m.touchStart(); m.workers.Add(1) }
func (m *Metrics) WorkerDone()    { m.workers.Add(-1) }

// ObserveTrial records one finished trial. Called once per trial by the
// owning worker; the cost (a dozen atomic adds) is invisible next to the
// thousands of events the trial executed.
func (m *Metrics) ObserveTrial(o TrialObs) {
	m.touchStart()
	m.trials.Add(1)
	if o.Hit {
		m.hits.Add(1)
	}
	if o.Deadlocked {
		m.deadlocks.Add(1)
	}
	if o.Quarantined {
		m.quarantines.Add(1)
	}
	if o.TimedOut {
		m.timeouts.Add(1)
	}
	if o.Canceled {
		m.cancels.Add(1)
	}
	if o.Events > 0 {
		m.events.Add(uint64(o.Events))
	}
	if o.Duration > 0 {
		ns := uint64(o.Duration.Nanoseconds())
		m.busyNs.Add(ns)
		m.trialNs.Observe(ns)
		if o.Events > 0 {
			m.nsPerEvent.Observe(ns / uint64(o.Events))
		}
	}
	if o.HasBehavior {
		m.mu.Lock()
		if m.covSeen == nil {
			m.covSeen = make(map[uint64]uint64)
		}
		m.covSeen[o.BehaviorFP]++
		m.covObs++
		m.mu.Unlock()
	}
}

// Coverage returns the live behavior-coverage counters: distinct
// behaviors seen, behavior-carrying trials observed, and behaviors seen
// exactly once (the Good–Turing f1). All zero when coverage is off.
func (m *Metrics) Coverage() (behaviors, observations, singletons uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, n := range m.covSeen {
		if n == 1 {
			singletons++
		}
	}
	return uint64(len(m.covSeen)), m.covObs, singletons
}

// UnseenMass is the Good–Turing estimate of the probability mass of
// never-seen behaviors — the chance the next trial shows something new,
// f1/N. Zero-guarded (0 for an empty campaign, never NaN).
func UnseenMass(singletons, observations uint64) float64 {
	if observations == 0 {
		return 0
	}
	return float64(singletons) / float64(observations)
}

// CampaignInterrupted counts a campaign cut short by context
// cancellation (SIGINT/SIGTERM or a stuck-watchdog cancel).
func (m *Metrics) CampaignInterrupted() { m.interrupts.Add(1) }

// WorkerStuck counts a stuck-worker watchdog firing.
func (m *Metrics) WorkerStuck() { m.stuck.Add(1) }

// ReproTriaged counts one repro bundle by its triage verdict
// ("DETERMINISTIC", "NONDETERMINISTIC", anything else = skipped).
func (m *Metrics) ReproTriaged(verdict string) {
	switch verdict {
	case "DETERMINISTIC":
		m.reproDeterministic.Add(1)
	case "NONDETERMINISTIC":
		m.reproNondeterministic.Add(1)
	default:
		m.reproSkipped.Add(1)
	}
}

// CheckpointWritten, CheckpointRetried, CheckpointCorruptRecovered and
// CheckpointDegraded are the durable-sink observations (the
// checkpoint.Observer surface — kept signature-compatible without
// importing the checkpoint package): committed generations, transient
// write retries, loads that fell back past a corrupt generation, and
// campaigns that stopped writing durably after the directory became
// unwritable.
func (m *Metrics) CheckpointWritten()          { m.checkpointWrites.Add(1) }
func (m *Metrics) CheckpointRetried()          { m.checkpointRetries.Add(1) }
func (m *Metrics) CheckpointCorruptRecovered() { m.checkpointCorrupt.Add(1) }
func (m *Metrics) CheckpointDegraded()         { m.checkpointDegraded.Add(1) }

// MergeEngine folds a worker's EngineCounters into the campaign-wide
// merged totals. Called at trial-batch boundaries, never on the hot
// path. Merging is commutative, so totals are independent of worker
// interleaving.
func (m *Metrics) MergeEngine(c *EngineCounters) {
	if c == nil {
		return
	}
	m.mu.Lock()
	m.engine.Merge(c)
	m.mu.Unlock()
}

// Engine returns a copy of the merged engine counters (the change-point
// log, a per-Runner diagnostic, is left empty).
func (m *Metrics) Engine() EngineCounters {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.engine
	c.ChangePoints = nil
	return c
}

// Snapshot is the JSON-facing (and expvar-facing) digest of a Metrics.
// All derived ratios are zero-guarded so the struct always encodes.
type Snapshot struct {
	Phase        string  `json:"phase,omitempty"`
	UptimeSec    float64 `json:"uptime_sec"`
	Expected     uint64  `json:"expected"`
	Trials       uint64  `json:"trials"`
	Hits         uint64  `json:"hits"`
	Events       uint64  `json:"events"`
	Deadlocks    uint64  `json:"deadlocks"`
	Quarantines  uint64  `json:"quarantines"`
	Timeouts     uint64  `json:"timeouts"`
	Cancels      uint64  `json:"cancels"`
	Interrupts   uint64  `json:"interrupts"`
	Stuck        uint64  `json:"stuck"`
	ReproDet     uint64  `json:"repro_deterministic"`
	ReproNondet  uint64  `json:"repro_nondeterministic"`
	ReproSkipped uint64  `json:"repro_skipped"`

	CheckpointWrites   uint64 `json:"checkpoint_writes"`
	CheckpointRetries  uint64 `json:"checkpoint_retries"`
	CheckpointCorrupt  uint64 `json:"checkpoint_corrupt_recoveries"`
	CheckpointDegraded uint64 `json:"checkpoint_degraded"`

	Workers           int64   `json:"workers"`
	WorkerUtilization float64 `json:"worker_utilization"`
	TrialsPerSec      float64 `json:"trials_per_sec"`

	TrialNs    HistSummary `json:"trial_ns"`
	NsPerEvent HistSummary `json:"ns_per_event"`

	// Behavior coverage (zero when no campaign ran with coverage on):
	// distinct behaviors, behavior-carrying trials, and the Good–Turing
	// unseen-mass estimate f1/N.
	CoverageBehaviors    uint64  `json:"coverage_behaviors,omitempty"`
	CoverageObservations uint64  `json:"coverage_observations,omitempty"`
	CoverageUnseenMass   float64 `json:"coverage_unseen_mass,omitempty"`

	Engine EngineSummary `json:"engine"`
}

// uptime returns the wall time since the first observation (0 before).
func (m *Metrics) uptime(now time.Time) time.Duration {
	start := m.startNs.Load()
	if start == 0 {
		return 0
	}
	d := now.UnixNano() - start
	if d < 0 {
		return 0
	}
	return time.Duration(d)
}

// TrialsPerSec returns the campaign-wide completion rate, zero-guarded
// (0 for an empty or zero-duration campaign — never NaN/Inf).
func (m *Metrics) TrialsPerSec() float64 {
	return rate(m.trials.Load(), m.uptime(time.Now()))
}

// rate is the shared zero-guarded n/duration helper.
func rate(n uint64, d time.Duration) float64 {
	if n == 0 || d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// Trials returns the number of completed trials.
func (m *Metrics) Trials() uint64 { return m.trials.Load() }

// Snapshot digests the metrics at time now (pass time.Now()).
func (m *Metrics) SnapshotAt(now time.Time) Snapshot {
	up := m.uptime(now)
	trials := m.trials.Load()
	workers := m.workers.Load()

	// Utilization: fraction of worker-seconds spent inside trials. With
	// no workers currently registered (between campaigns) fall back to a
	// single-lane denominator so the number stays meaningful, and clamp
	// to [0,1] against clock skew.
	util := 0.0
	if up > 0 {
		lanes := workers
		if lanes <= 0 {
			lanes = 1
		}
		util = float64(m.busyNs.Load()) / (float64(lanes) * float64(up.Nanoseconds()))
		if util > 1 {
			util = 1
		}
	}

	eng := m.Engine()
	trialNs := m.trialNs.Snapshot()
	nsPerEvent := m.nsPerEvent.Snapshot()
	behaviors, covObs, singletons := m.Coverage()
	return Snapshot{
		Phase:        m.Phase(),
		UptimeSec:    up.Seconds(),
		Expected:     m.expected.Load(),
		Trials:       trials,
		Hits:         m.hits.Load(),
		Events:       m.events.Load(),
		Deadlocks:    m.deadlocks.Load(),
		Quarantines:  m.quarantines.Load(),
		Timeouts:     m.timeouts.Load(),
		Cancels:      m.cancels.Load(),
		Interrupts:   m.interrupts.Load(),
		Stuck:        m.stuck.Load(),
		ReproDet:     m.reproDeterministic.Load(),
		ReproNondet:  m.reproNondeterministic.Load(),
		ReproSkipped: m.reproSkipped.Load(),

		CheckpointWrites:   m.checkpointWrites.Load(),
		CheckpointRetries:  m.checkpointRetries.Load(),
		CheckpointCorrupt:  m.checkpointCorrupt.Load(),
		CheckpointDegraded: m.checkpointDegraded.Load(),

		Workers:           workers,
		WorkerUtilization: util,
		TrialsPerSec:      rate(trials, up),

		TrialNs:    trialNs.Summary(),
		NsPerEvent: nsPerEvent.Summary(),

		CoverageBehaviors:    behaviors,
		CoverageObservations: covObs,
		CoverageUnseenMass:   UnseenMass(singletons, covObs),

		Engine: eng.Summary(),
	}
}
