package telemetry

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestMetricsCoverage: trial observations carrying behavior fingerprints
// land in the live coverage counters, and trials without a behavior
// (errored runs, coverage off) do not.
func TestMetricsCoverage(t *testing.T) {
	var m Metrics
	m.ObserveTrial(TrialObs{HasBehavior: true, BehaviorFP: 10})
	m.ObserveTrial(TrialObs{HasBehavior: true, BehaviorFP: 10})
	m.ObserveTrial(TrialObs{HasBehavior: true, BehaviorFP: 20})
	m.ObserveTrial(TrialObs{})               // coverage off
	m.ObserveTrial(TrialObs{TimedOut: true}) // no behavior
	behaviors, obs, singletons := m.Coverage()
	if behaviors != 2 || obs != 3 || singletons != 1 {
		t.Fatalf("behaviors=%d obs=%d singletons=%d, want 2/3/1", behaviors, obs, singletons)
	}
	s := m.SnapshotAt(time.Now())
	if s.CoverageBehaviors != 2 || s.CoverageObservations != 3 {
		t.Fatalf("snapshot coverage: %+v", s)
	}
	if want := 1.0 / 3.0; s.CoverageUnseenMass != want {
		t.Fatalf("unseen mass %v want %v", s.CoverageUnseenMass, want)
	}
	if UnseenMass(0, 0) != 0 {
		t.Fatal("UnseenMass(0,0) must guard the division")
	}
}

// TestWritePrometheusCoverage: the two series the CI coverage smoke job
// greps for are present and carry the live values.
func TestWritePrometheusCoverage(t *testing.T) {
	var m Metrics
	m.ObserveTrial(TrialObs{HasBehavior: true, BehaviorFP: 1})
	m.ObserveTrial(TrialObs{HasBehavior: true, BehaviorFP: 2})
	var sb strings.Builder
	m.WritePrometheus(&sb)
	out := sb.String()
	for _, series := range []string{
		"pctwm_coverage_behaviors_total 2",
		"pctwm_coverage_unseen_mass 1",
	} {
		if !strings.Contains(out, series) {
			t.Fatalf("prometheus output missing %q:\n%s", series, out)
		}
	}
}

// TestBucketLabelPin: every histogram boundary rendered anywhere — the
// Prometheus `le` labels and the report CSV gap-histogram cells — comes
// from the single BucketLabel table, so the boundaries can never
// disagree. This pins the table against both the bucket math and the
// /metrics output.
func TestBucketLabelPin(t *testing.T) {
	labels := BucketLabels()
	if labels[HistBuckets-1] != "+Inf" {
		t.Fatalf("last label %q, want +Inf", labels[HistBuckets-1])
	}
	for i := 0; i < HistBuckets-1; i++ {
		if want := fmt.Sprintf("%d", BucketUpper(i)); labels[i] != want {
			t.Fatalf("label[%d] = %q, want %q", i, labels[i], want)
		}
		if labels[i] != BucketLabel(i) {
			t.Fatalf("BucketLabels()[%d] != BucketLabel(%d)", i, i)
		}
	}

	// The `le` labels on /metrics must be drawn from the table in table
	// order (the writer collapses empty interior buckets, so the emitted
	// labels are an ordered subset ending at +Inf).
	var m Metrics
	m.ObserveTrial(TrialObs{Duration: 1000, Events: 1})
	var sb strings.Builder
	m.WritePrometheus(&sb)
	re := regexp.MustCompile(`pctwm_ns_per_event_bucket\{le="([^"]+)"\}`)
	var got []string
	for _, match := range re.FindAllStringSubmatch(sb.String(), -1) {
		got = append(got, match[1])
	}
	if len(got) == 0 || got[len(got)-1] != "+Inf" {
		t.Fatalf("le labels %v do not end at +Inf", got)
	}
	next := 0
	for _, le := range got {
		for next < HistBuckets && labels[next] != le {
			next++
		}
		if next == HistBuckets {
			t.Fatalf("le label %q is not in the BucketLabel table (or out of order): %v", le, got)
		}
		next++
	}
	// 1000 ns/event lands in the le="1023" bucket; its exact label must
	// be present, not a neighboring boundary.
	if !strings.Contains(sb.String(), `pctwm_ns_per_event_bucket{le="1023"} 1`) {
		t.Fatalf("populated bucket label missing:\n%s", sb.String())
	}
}

// TestFormatProgressCoverage: the status line gains the behaviors /
// est_unseen fields exactly when coverage observations exist.
func TestFormatProgressCoverage(t *testing.T) {
	s := Snapshot{Phase: "run", Trials: 10, Workers: 2}
	if line := FormatProgress(s); strings.Contains(line, "behaviors=") {
		t.Fatalf("coverage-off line mentions behaviors: %q", line)
	}
	s.CoverageBehaviors = 7
	s.CoverageObservations = 9
	s.CoverageUnseenMass = 0.25
	line := FormatProgress(s)
	for _, want := range []string{"behaviors=7", "est_unseen=25.0%", "workers 2"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
}
