package apps_test

import (
	"testing"

	"pctwm/internal/apps"
	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/harness"
)

// TestAppsCompleteUnderAllStrategies: the applications must run to
// completion (no deadlocks; livelock escapes keep them under the step
// budget) under every strategy.
func TestAppsCompleteUnderAllStrategies(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			prog := a.Program()
			opts := a.Options()
			est := harness.EstimateParams(prog, 3, 9, opts)
			strategies := []func() engine.Strategy{
				func() engine.Strategy { return core.NewRandom() },
				func() engine.Strategy { return core.NewPCT(3, est.K) },
				func() engine.Strategy { return core.NewPCTWM(2, 1, est.KCom) },
			}
			for _, ns := range strategies {
				for seed := int64(0); seed < 5; seed++ {
					o := engine.Run(prog, ns(), seed, opts)
					if o.Deadlocked {
						t.Fatalf("%s deadlocked (seed %d, strategy %s)", a.Name, seed, ns().Name())
					}
					if o.Aborted {
						t.Fatalf("%s hit the step budget (seed %d, strategy %s, steps %d)", a.Name, seed, ns().Name(), o.Steps)
					}
				}
			}
		})
	}
}

// TestAppsExposeRaces: the paper reports that both C11Tester and PCTWM
// detect data races in all three applications; over a handful of runs the
// seeded publication races must surface.
func TestAppsExposeRaces(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			prog := a.Program()
			opts := a.Options()
			est := harness.EstimateParams(prog, 3, 10, opts)
			for name, ns := range map[string]func() engine.Strategy{
				"c11tester": func() engine.Strategy { return core.NewRandom() },
				"pctwm":     func() engine.Strategy { return core.NewPCTWM(2, 1, est.KCom) },
			} {
				found := false
				for seed := int64(0); seed < 10 && !found; seed++ {
					o := engine.Run(prog, ns(), seed, opts)
					found = len(o.Races) > 0
				}
				if !found {
					t.Fatalf("%s: no data race detected by %s in 10 runs", a.Name, name)
				}
			}
		})
	}
}

// TestMeasureApp exercises the Table-4 measurement path.
func TestMeasureApp(t *testing.T) {
	a := apps.All()[0]
	r := harness.MeasureApp(a, harness.C11Tester(), 3, 77, 1)
	if r.Runs != 3 || r.MeanSeconds <= 0 {
		t.Fatalf("bad measurement: %+v", r)
	}
	if r.Strategy != "c11tester" {
		t.Fatalf("strategy name %q", r.Strategy)
	}
}

// TestMeasureAppThroughput covers the throughput metric path and the
// per-event cost computation.
func TestMeasureAppThroughput(t *testing.T) {
	a, err := apps.ByName("silo")
	if err != nil {
		t.Fatal(err)
	}
	r := harness.MeasureApp(a, harness.PCTWMFactory(2, 1), 3, 5, 2)
	if r.Throughput <= 0 || r.NsPerEvent <= 0 {
		t.Fatalf("bad throughput measurement: %+v", r)
	}
	if _, err := apps.ByName("nope"); err == nil {
		t.Fatal("unknown app accepted")
	}
}
