// Package apps provides the real-world application workloads of the
// paper's Table 4 (RQ4, testing-tool overhead): synthetic equivalents of
// Iris (a low-latency asynchronous logging library), Mabain (a key-value
// store library), and Silo (a multicore in-memory storage engine), all
// built against the engine's C11-style atomics.
//
// The paper measures elapsed time (Mabain, Iris) and throughput (Silo)
// under C11Tester's random tester versus PCTWM, and reports that both
// tools detect data races in all three applications. These workloads
// reproduce that setup: each has a seeded weak-memory publication bug
// whose race the detector finds, plus enough work per run for timing to
// be meaningful.
package apps

import (
	"fmt"

	"pctwm/internal/engine"
)

// Kind classifies how an app's Table-4 row is reported.
type Kind int

const (
	// KindTime reports elapsed seconds per run (Mabain, Iris).
	KindTime Kind = iota
	// KindThroughput reports operations per second (Silo).
	KindThroughput
)

// App is one application workload.
type App struct {
	// Name matches the paper's Table 4 row.
	Name string
	// Kind selects the reported metric.
	Kind Kind
	// Ops is the number of application-level operations one run performs
	// (transactions for Silo, log appends for Iris, KV operations for
	// Mabain); throughput = Ops / elapsed.
	Ops int
	// Build constructs a fresh program.
	Build func() *engine.Program

	prog *engine.Program
}

// Program returns the cached program.
func (a *App) Program() *engine.Program {
	if a.prog == nil {
		a.prog = a.Build()
	}
	return a.prog
}

// Options returns the engine options application runs use: races on, run
// to completion (the paper measures full testing runs), generous step
// budget for strategy-induced retries.
func (a *App) Options() engine.Options {
	return engine.Options{
		DetectRaces: true,
		StopOnBug:   false,
		MaxSteps:    400000,
	}
}

// All returns the three Table-4 applications.
func All() []*App {
	return []*App{Iris(), Mabain(), Silo()}
}

// ByName returns the application with the given name.
func ByName(name string) (*App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}
