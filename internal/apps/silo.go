package apps

import (
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// Silo models the Silo multicore in-memory storage engine: records carry a
// TID/version word whose low bit is a write lock; transactions run
// optimistic concurrency control — read records with version validation,
// then lock their write set, validate the read set, install new values,
// and bump the versions. Worker threads each run a batch of read-modify
// transactions over a small table and count commits; Table 4 reports the
// resulting throughput (ops/sec).
//
// Seeded bug: the version-install store after a write is relaxed instead
// of release, so a concurrent reader can validate against the new version
// while reading the old (plain) value — its plain reads race with the
// writer's plain value stores.
func Silo() *App {
	const (
		records = 6
		workers = 3
		txns    = 16
	)
	return &App{
		Name: "silo",
		Kind: KindThroughput,
		Ops:  workers * txns,
		Build: func() *engine.Program {
			p := engine.NewProgram("silo")
			ver := p.LocArray("tid", records, 2) // even = unlocked version
			val := p.LocArray("val", records, 0)
			commits := p.LocArray("commits", workers, 0)

			for wi := 0; wi < workers; wi++ {
				wi := wi
				p.AddNamedThread("worker", func(t *engine.Thread) {
					committed := memmodel.Value(0)
					for tx := 0; tx < txns; tx++ {
						src := memmodel.Loc((wi + tx) % records)
						dst := memmodel.Loc((wi + tx + 1) % records)

						// Read phase: snapshot src with its version.
						v1 := t.Load(ver+src, memmodel.Relaxed) // seeded: should be acquire
						if v1%2 != 0 {
							continue // locked; abort
						}
						rv := t.Load(val+src, memmodel.NonAtomic)

						// Write phase: lock dst (set low bit).
						lv := t.Load(ver+dst, memmodel.Relaxed)
						if lv%2 != 0 {
							continue // locked; abort
						}
						if _, ok := t.CAS(ver+dst, lv, lv+1, memmodel.Acquire, memmodel.Relaxed); !ok {
							continue // lost the lock race; abort
						}

						// Validate the read set.
						if t.Load(ver+src, memmodel.Relaxed) != v1 && src != dst {
							t.Store(ver+dst, lv, memmodel.Relaxed) // unlock, no install
							continue
						}

						// Install and unlock with a new even version.
						t.Store(val+dst, rv+1, memmodel.NonAtomic)
						t.Store(ver+dst, lv+2, memmodel.Relaxed) // seeded: should be release
						committed++
					}
					t.Store(commits+memmodel.Loc(wi), committed, memmodel.NonAtomic)
				})
			}
			return p
		},
	}
}
