package apps

import (
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// Iris models the iris asynchronous logging library: producer threads
// append log entries into a bounded multi-producer ring buffer and a
// background consumer drains it to a sink. Producers claim slots with an
// atomic ticket, write the entry payload with plain stores, and publish
// the slot by storing its sequence number; the consumer polls the
// sequence, reads the payload, and releases the slot.
//
// Seeded bug: the slot publication store is relaxed instead of release,
// so the consumer's payload reads race with the producers' plain writes —
// the data race C11Tester and PCTWM both detect in the paper's RQ4 runs.
func Iris() *App {
	const (
		ringSize  = 8
		producers = 3
		perThread = 24
		total     = producers * perThread
	)
	return &App{
		Name: "iris",
		Kind: KindTime,
		Ops:  total,
		Build: func() *engine.Program {
			p := engine.NewProgram("iris")
			tail := p.Loc("tail", 0)
			head := p.Loc("head", 0)
			seq := p.LocArray("seq", ringSize, 0)     // published entry index + 1; 0 = empty
			payload := p.LocArray("msg", ringSize, 0) // entry payload
			sink := p.Loc("sink", 0)                  // consumer checksum
			consumed := p.Loc("consumed", 0)

			for pi := 0; pi < producers; pi++ {
				pi := pi
				p.AddNamedThread("producer", func(t *engine.Thread) {
					for e := 0; e < perThread; e++ {
						ticket := t.FetchAdd(tail, 1, memmodel.Relaxed)
						slot := memmodel.Loc(ticket % ringSize)
						// Wait until the consumer freed the slot.
						for t.Load(head, memmodel.Acquire)+ringSize <= ticket {
							t.Yield()
						}
						entry := memmodel.Value(1000*(pi+1)) + memmodel.Value(e)
						t.Store(payload+slot, entry, memmodel.NonAtomic)
						t.Store(seq+slot, ticket+1, memmodel.Relaxed) // seeded: should be release
					}
				})
			}
			p.AddNamedThread("consumer", func(t *engine.Thread) {
				var sum memmodel.Value
				for c := 0; c < total; c++ {
					slot := memmodel.Loc(c % ringSize)
					// Poll for the publication of entry c.
					for t.Load(seq+slot, memmodel.Acquire) != memmodel.Value(c+1) {
						t.Yield()
					}
					sum += t.Load(payload+slot, memmodel.NonAtomic)
					t.Store(head, memmodel.Value(c+1), memmodel.Release)
				}
				t.Store(sink, sum, memmodel.NonAtomic)
				t.Store(consumed, memmodel.Value(total), memmodel.Relaxed)
			})
			return p
		},
	}
}
