package apps

import (
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// Mabain models the mabain key-value store library: a fixed-size hash
// index whose buckets hold a key and a value protected by a per-bucket
// spinlock on the write path, with a lock-free versioned read path
// (writers bump the bucket version around updates; readers retry on
// version mismatch). Writer threads insert and update keys while reader
// threads look them up.
//
// Seeded bug: the version publication after an update is relaxed instead
// of release (and the readers' version loads relaxed instead of acquire),
// so a reader can validate a version while reading a torn key/value pair:
// its plain reads race with the writer's plain writes.
func Mabain() *App {
	const (
		buckets   = 8
		writers   = 2
		readers   = 2
		writerOps = 16
		readerOps = 16
	)
	return &App{
		Name: "mabain",
		Kind: KindTime,
		Ops:  writers*writerOps + readers*readerOps,
		Build: func() *engine.Program {
			p := engine.NewProgram("mabain")
			lock := p.LocArray("lock", buckets, 0)
			version := p.LocArray("version", buckets, 0)
			keys := p.LocArray("key", buckets, 0)
			vals := p.LocArray("val", buckets, 0)
			found := p.LocArray("found", readers, 0)

			hash := func(k memmodel.Value) memmodel.Loc { return memmodel.Loc(k % buckets) }

			for wi := 0; wi < writers; wi++ {
				wi := wi
				p.AddNamedThread("writer", func(t *engine.Thread) {
					for op := 0; op < writerOps; op++ {
						k := memmodel.Value((wi*writerOps+op)*3%23 + 1)
						b := hash(k)
						// Bucket spinlock (correct: acq-rel CAS pair).
						for {
							if _, ok := t.CAS(lock+b, 0, 1, memmodel.Acquire, memmodel.Relaxed); ok {
								break
							}
							t.Yield()
						}
						v := t.Load(version+b, memmodel.Relaxed)
						t.Store(version+b, v+1, memmodel.Relaxed) // odd: update in progress
						t.Store(keys+b, k, memmodel.NonAtomic)
						t.Store(vals+b, k*100, memmodel.NonAtomic)
						t.Store(version+b, v+2, memmodel.Relaxed) // seeded: should be release
						t.Store(lock+b, 0, memmodel.Release)
					}
				})
			}
			for ri := 0; ri < readers; ri++ {
				ri := ri
				p.AddNamedThread("reader", func(t *engine.Thread) {
					hits := memmodel.Value(0)
					for op := 0; op < readerOps; op++ {
						k := memmodel.Value((ri*readerOps+op)*5%23 + 1)
						b := hash(k)
						for attempt := 0; attempt < 3; attempt++ {
							v1 := t.Load(version+b, memmodel.Relaxed) // seeded: should be acquire
							if v1%2 != 0 {
								continue // update in progress
							}
							kk := t.Load(keys+b, memmodel.NonAtomic)
							vv := t.Load(vals+b, memmodel.NonAtomic)
							v2 := t.Load(version+b, memmodel.Relaxed) // seeded: should be acquire
							if v1 != v2 {
								continue // concurrent update; retry
							}
							if kk == k {
								t.Assert(vv == k*100, "lookup(%d) returned torn value %d", k, vv)
								hits++
							}
							break
						}
					}
					t.Store(found+memmodel.Loc(ri), hits, memmodel.NonAtomic)
				})
			}
			return p
		},
	}
}
