package race

import (
	"strings"
	"testing"

	"pctwm/internal/memmodel"
	"pctwm/internal/vclock"
)

func name(l memmodel.Loc) string { return "x" }

// clockFor builds a clock for thread t at time n, optionally covering
// other epochs.
func clockFor(t int, n int32, covers ...[2]int32) vclock.VC {
	var v vclock.VC
	v.Set(t, n)
	for _, c := range covers {
		v.Set(int(c[0]), c[1])
	}
	return v
}

// TestUnorderedNAWriteRead: a non-atomic write and a read with no
// happens-before edge race.
func TestUnorderedNAWriteRead(t *testing.T) {
	d := NewDetector(name, 8)
	if r := d.OnAccess(1, 0, 1, true, true, 1, clockFor(1, 1)); len(r) != 0 {
		t.Fatalf("first access raced: %v", r)
	}
	races := d.OnAccess(2, 1, 1, false, true, 1, clockFor(2, 1))
	if len(races) != 1 {
		t.Fatalf("expected one race, got %v", races)
	}
	r := races[0]
	if r.Prior.TID != 1 || r.Current.TID != 2 || !r.Prior.Write || r.Current.Write {
		t.Fatalf("bad race %+v", r)
	}
	if !strings.Contains(r.String(), "non-atomic write") {
		t.Fatalf("bad rendering %q", r)
	}
}

// TestHappensBeforeSuppressesRace: covering the writer's epoch removes
// the race.
func TestHappensBeforeSuppressesRace(t *testing.T) {
	d := NewDetector(name, 8)
	d.OnAccess(1, 0, 1, true, true, 3, clockFor(1, 3))
	// Reader's clock covers (1,3): ordered, no race.
	if r := d.OnAccess(2, 1, 1, false, true, 1, clockFor(2, 1, [2]int32{1, 3})); len(r) != 0 {
		t.Fatalf("ordered accesses raced: %v", r)
	}
}

// TestAtomicAccessesNeverRace: conflicting atomic accesses are not races.
func TestAtomicAccessesNeverRace(t *testing.T) {
	d := NewDetector(name, 8)
	d.OnAccess(1, 0, 1, true, false, 1, clockFor(1, 1))
	if r := d.OnAccess(2, 1, 1, true, false, 1, clockFor(2, 1)); len(r) != 0 {
		t.Fatalf("atomic/atomic raced: %v", r)
	}
}

// TestAtomicVsNonAtomicRaces: one non-atomic side suffices.
func TestAtomicVsNonAtomicRaces(t *testing.T) {
	d := NewDetector(name, 8)
	d.OnAccess(1, 0, 1, true, true, 1, clockFor(1, 1)) // na write
	if r := d.OnAccess(2, 1, 1, false, false, 1, clockFor(2, 1)); len(r) != 1 {
		t.Fatalf("atomic read vs na write should race: %v", r)
	}
}

// TestReadsDoNotRaceWithReads: two unordered reads are fine.
func TestReadsDoNotRaceWithReads(t *testing.T) {
	d := NewDetector(name, 8)
	d.OnAccess(1, 0, 1, false, true, 1, clockFor(1, 1))
	if r := d.OnAccess(2, 1, 1, false, true, 1, clockFor(2, 1)); len(r) != 0 {
		t.Fatalf("read/read raced: %v", r)
	}
}

// TestLaterAtomicWriteDoesNotMaskNAWrite: the msqueue pattern — plain
// initialization followed by the same thread's atomic update must still
// race with an unordered atomic read.
func TestLaterAtomicWriteDoesNotMaskNAWrite(t *testing.T) {
	d := NewDetector(name, 8)
	d.OnAccess(1, 0, 1, true, true, 1, clockFor(1, 1))  // na init
	d.OnAccess(1, 1, 1, true, false, 2, clockFor(1, 2)) // atomic update
	races := d.OnAccess(2, 2, 1, false, false, 1, clockFor(2, 1))
	if len(races) != 1 || !races[0].Prior.NonAtomic {
		t.Fatalf("na write masked by the atomic write: %v", races)
	}
}

// TestDistinctLocationsIndependent: accesses to different locations never
// race.
func TestDistinctLocationsIndependent(t *testing.T) {
	d := NewDetector(name, 8)
	d.OnAccess(1, 0, 1, true, true, 1, clockFor(1, 1))
	if r := d.OnAccess(2, 1, 2, true, true, 1, clockFor(2, 1)); len(r) != 0 {
		t.Fatalf("cross-location race: %v", r)
	}
}

// TestMaxRacesCap: the stored race list is bounded.
func TestMaxRacesCap(t *testing.T) {
	d := NewDetector(name, 2)
	for i := 0; i < 6; i++ {
		d.OnAccess(memmodel.ThreadID(i+1), memmodel.EventID(i), 1, true, true, 1, clockFor(i+1, 1))
	}
	if len(d.Races()) != 2 {
		t.Fatalf("cap not applied: %d races stored", len(d.Races()))
	}
}

// TestSameThreadNeverRaces: program order covers same-thread accesses.
func TestSameThreadNeverRaces(t *testing.T) {
	d := NewDetector(name, 8)
	d.OnAccess(1, 0, 1, true, true, 1, clockFor(1, 1))
	if r := d.OnAccess(1, 1, 1, true, true, 2, clockFor(1, 2)); len(r) != 0 {
		t.Fatalf("same-thread race: %v", r)
	}
}
