// Package race implements a vector-clock data-race detector in the style
// of FastTrack, specialized to the engine's serialized execution: an access
// races with a prior conflicting access when at least one of the two is
// non-atomic, at least one is a write, and the prior access's epoch is not
// covered by the current thread's happens-before clock.
package race

import (
	"fmt"

	"pctwm/internal/memmodel"
	"pctwm/internal/vclock"
)

// Race describes one detected data race.
type Race struct {
	Loc     memmodel.Loc
	LocName string
	// Prior is the earlier conflicting access; Current is the access that
	// exposed the race.
	Prior   Access
	Current Access
}

// Access identifies one side of a race.
type Access struct {
	TID       memmodel.ThreadID
	Event     memmodel.EventID
	Write     bool
	NonAtomic bool
}

func (r Race) String() string {
	return fmt.Sprintf("data race on %s: %s by t%d (e%d) vs %s by t%d (e%d)",
		r.LocName, accKind(r.Prior), r.Prior.TID, r.Prior.Event,
		accKind(r.Current), r.Current.TID, r.Current.Event)
}

func accKind(a Access) string {
	k := "read"
	if a.Write {
		k = "write"
	}
	if a.NonAtomic {
		return "non-atomic " + k
	}
	return "atomic " + k
}

// epoch is a single access by one thread at one clock value.
type epoch struct {
	clock     int32
	event     memmodel.EventID
	write     bool
	nonAtomic bool
}

// locState keeps, per thread, the latest access of each class. Full
// per-thread state (rather than FastTrack's adaptive epochs) is fine at
// this scale and keeps both racing events reportable. Writes are tracked
// separately per atomicity class: a later atomic write must not mask an
// earlier still-unsynchronized non-atomic write (e.g. plain object
// initialization followed by atomic field updates).
type locState struct {
	lastNAWrite     map[memmodel.ThreadID]epoch
	lastAtomicWrite map[memmodel.ThreadID]epoch
	lastNARead      map[memmodel.ThreadID]epoch
	lastAtomicRead  map[memmodel.ThreadID]epoch
}

// Detector accumulates accesses and reports races.
type Detector struct {
	locs     map[memmodel.Loc]*locState
	locName  func(memmodel.Loc) string
	races    []Race
	maxRaces int
}

// NewDetector returns a detector that names locations through locName and
// stops recording after maxRaces races.
func NewDetector(locName func(memmodel.Loc) string, maxRaces int) *Detector {
	if maxRaces <= 0 {
		maxRaces = 16
	}
	return &Detector{
		locs:     make(map[memmodel.Loc]*locState),
		locName:  locName,
		maxRaces: maxRaces,
	}
}

// Races returns the races detected so far.
func (d *Detector) Races() []Race { return d.races }

func (d *Detector) state(loc memmodel.Loc) *locState {
	s := d.locs[loc]
	if s == nil {
		s = &locState{
			lastNAWrite:     make(map[memmodel.ThreadID]epoch),
			lastAtomicWrite: make(map[memmodel.ThreadID]epoch),
			lastNARead:      make(map[memmodel.ThreadID]epoch),
			lastAtomicRead:  make(map[memmodel.ThreadID]epoch),
		}
		d.locs[loc] = s
	}
	return s
}

// OnAccess records an access and returns any new races it exposes. vc is
// the accessing thread's happens-before clock at the access (its own
// component already ticked for this event).
func (d *Detector) OnAccess(tid memmodel.ThreadID, ev memmodel.EventID, loc memmodel.Loc, write, nonAtomic bool, clock int32, vc vclock.VC) []Race {
	s := d.state(loc)
	cur := Access{TID: tid, Event: ev, Write: write, NonAtomic: nonAtomic}
	var found []Race

	check := func(prior map[memmodel.ThreadID]epoch, priorIsWrite bool) {
		for ptid, pe := range prior {
			if ptid == tid {
				continue // same-thread accesses are po-ordered
			}
			// Conflict requires one write and one non-atomic access.
			if !write && !priorIsWrite {
				continue
			}
			if !nonAtomic && !pe.nonAtomic {
				continue
			}
			if vclock.HappensBefore(int(ptid), pe.clock, vc) {
				continue
			}
			found = append(found, Race{
				Loc:     loc,
				LocName: d.locName(loc),
				Prior:   Access{TID: ptid, Event: pe.event, Write: priorIsWrite, NonAtomic: pe.nonAtomic},
				Current: cur,
			})
		}
	}

	check(s.lastNAWrite, true)
	check(s.lastAtomicWrite, true)
	if write {
		check(s.lastNARead, false)
		check(s.lastAtomicRead, false)
	}

	e := epoch{clock: clock, event: ev, write: write, nonAtomic: nonAtomic}
	switch {
	case write && nonAtomic:
		s.lastNAWrite[tid] = e
	case write:
		s.lastAtomicWrite[tid] = e
	case nonAtomic:
		s.lastNARead[tid] = e
	default:
		s.lastAtomicRead[tid] = e
	}

	if len(found) > 0 && len(d.races) < d.maxRaces {
		room := d.maxRaces - len(d.races)
		if len(found) < room {
			room = len(found)
		}
		d.races = append(d.races, found[:room]...)
	}
	return found
}
