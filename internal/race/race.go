// Package race implements a vector-clock data-race detector in the style
// of FastTrack, specialized to the engine's serialized execution: an access
// races with a prior conflicting access when at least one of the two is
// non-atomic, at least one is a write, and the prior access's epoch is not
// covered by the current thread's happens-before clock.
package race

import (
	"fmt"

	"pctwm/internal/memmodel"
	"pctwm/internal/vclock"
)

// Race describes one detected data race.
type Race struct {
	Loc     memmodel.Loc
	LocName string
	// Prior is the earlier conflicting access; Current is the access that
	// exposed the race.
	Prior   Access
	Current Access
}

// Access identifies one side of a race.
type Access struct {
	TID       memmodel.ThreadID
	Event     memmodel.EventID
	Write     bool
	NonAtomic bool
}

func (r Race) String() string {
	return fmt.Sprintf("data race on %s: %s by t%d (e%d) vs %s by t%d (e%d)",
		r.LocName, accKind(r.Prior), r.Prior.TID, r.Prior.Event,
		accKind(r.Current), r.Current.TID, r.Current.Event)
}

func accKind(a Access) string {
	k := "read"
	if a.Write {
		k = "write"
	}
	if a.NonAtomic {
		return "non-atomic " + k
	}
	return "atomic " + k
}

// epoch is the latest access of one class by one thread at one clock value.
type epoch struct {
	tid       memmodel.ThreadID
	clock     int32
	event     memmodel.EventID
	write     bool
	nonAtomic bool
}

// locState keeps, per thread, the latest access of each class as small
// dense slices scanned linearly (executions have tens of threads at most;
// slices beat maps here both on the upsert and the scan, and iterate in a
// deterministic order, so reported races are reproducible across runs).
// Full per-thread state (rather than FastTrack's adaptive epochs) is fine
// at this scale and keeps both racing events reportable. Writes are tracked
// separately per atomicity class: a later atomic write must not mask an
// earlier still-unsynchronized non-atomic write (e.g. plain object
// initialization followed by atomic field updates).
type locState struct {
	naWrites     []epoch
	atomicWrites []epoch
	naReads      []epoch
	atomicReads  []epoch
}

func (s *locState) reset() {
	s.naWrites = s.naWrites[:0]
	s.atomicWrites = s.atomicWrites[:0]
	s.naReads = s.naReads[:0]
	s.atomicReads = s.atomicReads[:0]
}

// upsert replaces the thread's entry in es or appends a new one.
func upsert(es []epoch, e epoch) []epoch {
	for i := range es {
		if es[i].tid == e.tid {
			es[i] = e
			return es
		}
	}
	return append(es, e)
}

// Detector accumulates accesses and reports races. A Detector is reusable:
// Reset clears all access state while retaining the backing storage, so a
// trial loop pays no per-run detector allocations after warmup.
type Detector struct {
	locs     []locState // index = Loc-1
	locName  func(memmodel.Loc) string
	races    []Race
	found    []Race // scratch for OnAccess results
	maxRaces int
}

// NewDetector returns a detector that names locations through locName and
// stops recording after maxRaces races.
func NewDetector(locName func(memmodel.Loc) string, maxRaces int) *Detector {
	if maxRaces <= 0 {
		maxRaces = 16
	}
	return &Detector{locName: locName, maxRaces: maxRaces}
}

// Reset clears all recorded accesses and races for a fresh execution,
// keeping backing storage for reuse. The locName function and race cap are
// retained.
func (d *Detector) Reset() {
	for i := range d.locs {
		d.locs[i].reset()
	}
	d.locs = d.locs[:0]
	d.races = d.races[:0]
}

// Races returns the races detected so far. The slice aliases detector
// state; callers that outlive the next Reset must copy it.
func (d *Detector) Races() []Race { return d.races }

func (d *Detector) state(loc memmodel.Loc) *locState {
	i := int(loc) - 1
	for len(d.locs) <= i {
		if len(d.locs) < cap(d.locs) {
			// Reuse the truncated slot (its inner slices were reset).
			d.locs = d.locs[:len(d.locs)+1]
		} else {
			d.locs = append(d.locs, locState{})
		}
	}
	return &d.locs[i]
}

// check scans prior accesses for conflicts with the current access and
// appends any races to d.found.
func (d *Detector) check(prior []epoch, priorIsWrite bool, loc memmodel.Loc, cur Access, vc vclock.VC) {
	for i := range prior {
		pe := &prior[i]
		if pe.tid == cur.TID {
			continue // same-thread accesses are po-ordered
		}
		// Conflict requires one write and one non-atomic access.
		if !cur.Write && !priorIsWrite {
			continue
		}
		if !cur.NonAtomic && !pe.nonAtomic {
			continue
		}
		if vclock.HappensBefore(int(pe.tid), pe.clock, vc) {
			continue
		}
		d.found = append(d.found, Race{
			Loc:     loc,
			LocName: d.locName(loc),
			Prior:   Access{TID: pe.tid, Event: pe.event, Write: priorIsWrite, NonAtomic: pe.nonAtomic},
			Current: cur,
		})
	}
}

// OnAccess records an access and returns any new races it exposes. vc is
// the accessing thread's happens-before clock at the access (its own
// component already ticked for this event). The returned slice is scratch:
// it is only valid until the next OnAccess call.
func (d *Detector) OnAccess(tid memmodel.ThreadID, ev memmodel.EventID, loc memmodel.Loc, write, nonAtomic bool, clock int32, vc vclock.VC) []Race {
	s := d.state(loc)
	cur := Access{TID: tid, Event: ev, Write: write, NonAtomic: nonAtomic}
	d.found = d.found[:0]

	// Epoch classes are homogeneous (naWrites/naReads hold only non-atomic
	// epochs, atomicWrites/atomicReads only atomic ones), so classes that
	// cannot satisfy the conflict conditions — one write, one non-atomic —
	// are skipped without scanning. The scan order of the remaining classes
	// is unchanged, so reported races are identical.
	d.check(s.naWrites, true, loc, cur, vc)
	if nonAtomic {
		d.check(s.atomicWrites, true, loc, cur, vc)
	}
	if write {
		d.check(s.naReads, false, loc, cur, vc)
		if nonAtomic {
			d.check(s.atomicReads, false, loc, cur, vc)
		}
	}

	e := epoch{tid: tid, clock: clock, event: ev, write: write, nonAtomic: nonAtomic}
	switch {
	case write && nonAtomic:
		s.naWrites = upsert(s.naWrites, e)
	case write:
		s.atomicWrites = upsert(s.atomicWrites, e)
	case nonAtomic:
		s.naReads = upsert(s.naReads, e)
	default:
		s.atomicReads = upsert(s.atomicReads, e)
	}

	if len(d.found) > 0 && len(d.races) < d.maxRaces {
		room := d.maxRaces - len(d.races)
		if len(d.found) < room {
			room = len(d.found)
		}
		d.races = append(d.races, d.found[:room]...)
	}
	return d.found
}
