package benchprog

import (
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// Dekker is the flag-based mutual-exclusion benchmark. The correct
// algorithm uses sequentially consistent flag accesses; the seeded bug
// relaxes them all (the classic weak-memory failure of Dekker/Peterson
// style locks). With no communication between the threads, both read the
// other's flag as 0 from their thread-local views and enter the critical
// section together — bug depth d = 0.
//
// Detection: the critical section increments a plain (non-atomic) counter,
// so a mutual-exclusion violation is both a data race and a lost update
// (final counter 1 instead of 2).
func Dekker() *Benchmark {
	return &Benchmark{
		Name:        "dekker",
		Depth:       0,
		Table3Depth: 1,
		RaceIsBug:   true,
		Build:       buildDekker,
		BuildFixed:  func() *engine.Program { return buildDekkerOrd(0, memmodel.SeqCst) },
		CheckFinal: func(final map[string]memmodel.Value) bool {
			// Both threads entered iff both intent flags were raised and
			// the counter lost an update.
			return final["entered1"] == 1 && final["entered2"] == 1 && final["count"] < 2
		},
	}
}

func buildDekker(extra int) *engine.Program {
	return buildDekkerOrd(extra, memmodel.Relaxed)
}

func buildDekkerOrd(extra int, ord memmodel.Order) *engine.Program {
	p := engine.NewProgram("dekker")
	flag1 := p.Loc("flag1", 0)
	flag2 := p.Loc("flag2", 0)
	turn := p.Loc("turn", 0)
	count := p.Loc("count", 0)
	e1 := p.Loc("entered1", 0)
	e2 := p.Loc("entered2", 0)
	dummy := p.Loc("dummy", 0)

	worker := func(my, other memmodel.Loc, myTurn memmodel.Value, entered memmodel.Loc, withExtra bool) engine.ThreadFunc {
		return func(t *engine.Thread) {
			defer func() {
				if withExtra {
					insertExtraWrites(t, dummy, extra)
				}
			}()
			t.Store(my, 1, ord)
			if t.Load(other, ord) != 0 {
				// Contention: consult the turn variable (bounded wait).
				if t.Load(turn, ord) != myTurn {
					t.Store(my, 0, ord)
					for i := 0; i < 4; i++ {
						if t.Load(turn, ord) == myTurn {
							break
						}
					}
					t.Store(my, 1, ord)
				}
				if t.Load(other, ord) != 0 {
					// Give up this round: no critical section.
					t.Store(my, 0, ord)
					return
				}
			}
			// Critical section: plain accesses, protected only by the
			// (broken) mutual exclusion.
			t.Store(entered, 1, memmodel.NonAtomic)
			v := t.Load(count, memmodel.NonAtomic)
			t.Store(count, v+1, memmodel.NonAtomic)
			// Exit protocol.
			t.Store(turn, 1-myTurn, ord)
			t.Store(my, 0, ord)
		}
	}
	p.AddNamedThread("T1", worker(flag1, flag2, 0, e1, true))
	p.AddNamedThread("T2", worker(flag2, flag1, 1, e2, false))
	return p
}
