package benchprog

import (
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// MPMCQueue is a Vyukov-style bounded multi-producer multi-consumer queue:
// producers claim a ticket from the tail counter, write the element, and
// publish it by bumping the cell's sequence number; consumers poll the
// tail ticket and the cell sequence before reading. The seeded bug relaxes
// both publications (correct: release stores matched by acquire loads), so
// a consumer reaches the element through two chained communication
// relations — observing the producer's ticket, then the cell sequence —
// without happens-before, and reads a stale element. Bug depth d = 2.
func MPMCQueue() *Benchmark {
	return &Benchmark{
		Name:        "mpmcqueue",
		Depth:       2,
		Table3Depth: 2,
		RaceIsBug:   false, // detection is the stale-element assert
		Build:       buildMPMCQueue,
		BuildFixed: func() *engine.Program {
			return buildMPMCQueueOrd(0, memmodel.Release, memmodel.Acquire)
		},
	}
}

func buildMPMCQueue(extra int) *engine.Program {
	return buildMPMCQueueOrd(extra, memmodel.Relaxed, memmodel.Relaxed)
}

func buildMPMCQueueOrd(extra int, pubOrd, subOrd memmodel.Order) *engine.Program {
	p := engine.NewProgram("mpmcqueue")
	ptail := p.Loc("tail", 0) // producer ticket counter
	phead := p.Loc("head", 0) // consumer ticket counter
	cellSeq := p.Loc("cell0.seq", 0)
	cellData := p.Loc("cell0.data", 0)
	dummy := p.Loc("dummy", 0)

	p.AddNamedThread("producer", func(t *engine.Thread) {
		insertExtraWrites(t, dummy, extra)
		pos := t.FetchAdd(ptail, 1, memmodel.Relaxed) // claim ticket 0
		if pos != 0 {
			return
		}
		t.Store(cellData, 42, memmodel.NonAtomic)
		t.Store(cellSeq, pos+1, pubOrd) // seeded: relaxed instead of release
	})
	p.AddNamedThread("consumer", func(t *engine.Thread) {
		// Phase 1: wait for the producer's ticket. Seeded: should be acquire.
		if _, ok := waitFor(t, ptail, subOrd, 16, eq(1)); !ok {
			return // nothing produced in this thread's view
		}
		// Phase 2: wait for the cell publication. Seeded: should be acquire.
		if _, ok := waitFor(t, cellSeq, subOrd, 16, eq(1)); !ok {
			return // cell never published in this thread's view
		}
		v := t.Load(cellData, memmodel.NonAtomic)
		t.Assert(v == 42, "consumer dequeued a stale element: %d", v)
		t.FetchAdd(phead, 1, memmodel.Relaxed)
	})
	return p
}
