package benchprog_test

import (
	"testing"

	"pctwm/internal/benchprog"
	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/harness"
)

const trialRuns = 250

// TestAllBenchmarksRunClean checks that every benchmark executes without
// aborts or deadlocks under all strategies.
func TestAllBenchmarksRunClean(t *testing.T) {
	for _, b := range benchprog.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			for _, factory := range []harness.StrategyFactory{
				harness.C11Tester(),
				harness.PCTFactory(b.Depth + 1),
				harness.PCTWMFactory(b.Depth, 1),
			} {
				res, _ := harness.BenchTrials(b, factory, 100, 7, 0, 1)
				if res.Aborted > 0 || res.Deadlock > 0 {
					t.Fatalf("aborted=%d deadlocked=%d", res.Aborted, res.Deadlock)
				}
			}
		})
	}
}

// TestDepthZeroBenchmarksAlwaysHit: the d=0 benchmarks must be detected by
// every PCTWM d=0 execution (paper §6.1: "PCTWM generates a single
// execution that does not introduce any communication relations and
// detects the bug in all tests").
func TestDepthZeroBenchmarksAlwaysHit(t *testing.T) {
	for _, b := range benchprog.All() {
		if b.Depth != 0 {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			res, _ := harness.BenchTrials(b, harness.PCTWMFactory(0, 1), trialRuns, 11, 0, 1)
			if res.Hits != res.Runs {
				t.Fatalf("PCTWM d=0 hit %d/%d, want all", res.Hits, res.Runs)
			}
		})
	}
}

// TestPCTWMBeatsBaselines: on every benchmark except seqlock, PCTWM at the
// design depth detects the bug more frequently than C11Tester-style random
// testing (the paper's headline result); seqlock is the documented
// exception where restricting communication hinders the wait loops (§6.2).
func TestPCTWMBeatsBaselines(t *testing.T) {
	for _, b := range benchprog.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			random, _ := harness.BenchTrials(b, harness.C11Tester(), trialRuns, 21, 0, 1)
			pctwm, _ := harness.BestOverH(b, b.Depth, 2, trialRuns, 22, 1)
			if b.Name == "seqlock" {
				if pctwm.Rate() >= random.Rate() {
					t.Fatalf("seqlock should favor random testing: pctwm %.1f%% vs random %.1f%%", pctwm.Rate(), random.Rate())
				}
				return
			}
			if pctwm.Rate() < random.Rate() {
				t.Fatalf("pctwm %.1f%% below c11tester %.1f%%", pctwm.Rate(), random.Rate())
			}
			if pctwm.Rate() < 50 {
				t.Fatalf("pctwm rate %.1f%% suspiciously low at design depth %d", pctwm.Rate(), b.Depth)
			}
		})
	}
}

// TestBugsRequireTheSeededOrders: sanity — the detection rules must not
// fire on executions without weak behaviour. A d=0 PCTWM execution of a
// program whose reads all take thread-local views is SC-like only for the
// d>0 benchmarks, so instead we check determinism: the same seed yields
// the same outcome.
func TestDeterministicReplay(t *testing.T) {
	for _, b := range benchprog.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog := b.Program(0)
			for seed := int64(0); seed < 20; seed++ {
				a := engine.Run(prog, core.NewPCTWM(b.Depth, 2, 12), seed, b.Options())
				c := engine.Run(prog, core.NewPCTWM(b.Depth, 2, 12), seed, b.Options())
				if b.Detect(a) != b.Detect(c) || a.Events != c.Events || a.Steps != c.Steps {
					t.Fatalf("seed %d: non-deterministic replay (%v/%d/%d vs %v/%d/%d)",
						seed, b.Detect(a), a.Events, a.Steps, b.Detect(c), c.Events, c.Steps)
				}
			}
		})
	}
}

// TestExtraWritesDoNotChangeDepth: the Figure 6 instrumentation must not
// change PCTWM's detection ability (the inserted writes are not
// communication events).
func TestExtraWritesDoNotChangeDepth(t *testing.T) {
	for _, name := range []string{"dekker", "mpmcqueue", "rwlock", "cldeque"} {
		b, err := benchprog.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		base, _ := harness.BenchTrials(b, harness.PCTWMFactory(b.Depth, 1), trialRuns, 31, 0, 1)
		loaded, _ := harness.BenchTrials(b, harness.PCTWMFactory(b.Depth, 1), trialRuns, 32, 10, 1)
		if diff := base.Rate() - loaded.Rate(); diff > 25 || diff < -25 {
			t.Fatalf("%s: PCTWM rate moved from %.1f%% to %.1f%% with 10 inserted writes", name, base.Rate(), loaded.Rate())
		}
	}
}

// TestPaperP1Probability reproduces the §3.3 claim: on Program P1 with
// d=1 and h=2, PCTWM detects the bug with probability 1/2 (it reads
// either X=k-1 or X=k).
func TestPaperP1Probability(t *testing.T) {
	b := benchprog.P1(5)
	prog := b.Program(0)
	// The program has exactly one communication event (the assertion's
	// load), so kcom = 1 pins the sink on it.
	res := harness.RunTrials(prog, b.Detect, func() engine.Strategy {
		return core.NewPCTWM(1, 2, 1)
	}, 2000, 99, b.Options())
	if r := res.Rate(); r < 42 || r > 58 {
		t.Fatalf("P1 d=1 h=2 rate %.1f%%, want ≈50%%", r)
	}
	// With h=1 the read is pinned on the mo-maximal write: always the bug.
	res = harness.RunTrials(prog, b.Detect, func() engine.Strategy {
		return core.NewPCTWM(1, 1, 1)
	}, 500, 100, b.Options())
	if res.Hits != res.Runs {
		t.Fatalf("P1 d=1 h=1 hit %d/%d, want all", res.Hits, res.Runs)
	}
}

// TestPaperMP2Depth reproduces §5.3: MP2's bug needs two communication
// relations; PCTWM with d=2 finds it, with d=0 it cannot.
func TestPaperMP2Depth(t *testing.T) {
	b := benchprog.MP2()
	prog := b.Program(0)
	est := harness.EstimateParams(prog, 20, 5, b.Options())
	d2 := harness.RunTrials(prog, b.Detect, func() engine.Strategy {
		return core.NewPCTWM(2, 1, est.KCom)
	}, 1000, 101, b.Options())
	if d2.Hits == 0 {
		t.Fatalf("MP2 never detected at d=2 (kcom=%d)", est.KCom)
	}
	d0 := harness.RunTrials(prog, b.Detect, func() engine.Strategy {
		return core.NewPCTWM(0, 1, est.KCom)
	}, 500, 102, b.Options())
	if d0.Hits != 0 {
		t.Fatalf("MP2 detected %d times at d=0; the bug needs 2 communications", d0.Hits)
	}
}

// TestFixedBenchmarksAreClean: the correctly synchronized variants of
// all nine benchmarks never trip their detection rules — assertions hold,
// post-conditions hold, and no data races exist — under aggressive
// testing with every strategy. This validates that detection genuinely
// depends on the seeded weak-memory bugs rather than on the harness.
func TestFixedBenchmarksAreClean(t *testing.T) {
	for _, b := range benchprog.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog := b.FixedProgram()
			opts := b.Options()
			est := harness.EstimateParams(prog, 10, 3, opts)
			strategies := map[string]func() engine.Strategy{
				"c11tester": func() engine.Strategy { return core.NewRandom() },
				"pos":       func() engine.Strategy { return core.NewPOS() },
				"pct":       func() engine.Strategy { return core.NewPCT(b.Depth+2, est.K) },
				"pctwm-d":   func() engine.Strategy { return core.NewPCTWM(b.Depth, 2, est.KCom) },
				"pctwm-d2":  func() engine.Strategy { return core.NewPCTWM(b.Depth+2, 4, est.KCom) },
			}
			for name, ns := range strategies {
				for seed := int64(0); seed < 120; seed++ {
					o := engine.Run(prog, ns(), seed, opts)
					if o.BugHit {
						t.Fatalf("[%s seed %d] fixed variant asserted: %v", name, seed, o.BugMessages)
					}
					if len(o.Races) > 0 {
						t.Fatalf("[%s seed %d] fixed variant raced: %v", name, seed, o.Races[0])
					}
					if b.CheckFinal != nil && !o.Aborted && b.CheckFinal(o.FinalValues) {
						t.Fatalf("[%s seed %d] fixed variant failed the post-check: %v", name, seed, o.FinalValues)
					}
				}
			}
		})
	}
}

// TestSeededBenchmarksStillDetect guards the refactor: the seeded builds
// must still expose their bugs.
func TestSeededBenchmarksStillDetect(t *testing.T) {
	for _, b := range benchprog.All() {
		res, _ := harness.BenchTrials(b, harness.PCTWMFactory(b.Depth, 1), 150, 13, 0, 1)
		if res.Hits == 0 {
			t.Fatalf("%s: seeded bug no longer detected", b.Name)
		}
	}
}
