package benchprog

import (
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// msqueue node layout: a node is two consecutive locations.
const (
	nodeVal  = 0 // payload cell
	nodeNext = 1 // next pointer cell (0 = nil)
	nodeSize = 2
)

// MSQueue is a Michael-Scott lock-free queue with the publication orders
// seeded to relaxed (the correct algorithm publishes nodes with a release
// CAS and walks them with acquire loads). Two enqueuers race to link their
// nodes after the shared dummy node; the loser's CAS is forced to observe
// the winner's link (RMW atomicity), after which it walks to the winner's
// freshly allocated node without synchronization — its accesses race with
// the winner's plain initialization writes. No strategy-controlled
// communication is required, hence bug depth d = 0.
//
// A consumer additionally dequeues twice; post-checks catch duplicate or
// invented elements.
func MSQueue() *Benchmark {
	return &Benchmark{
		Name:        "msqueue",
		Depth:       0,
		Table3Depth: 0,
		RaceIsBug:   true,
		Build:       buildMSQueue,
		BuildFixed: func() *engine.Program {
			return buildMSQueueOrd(0, memmodel.Release, memmodel.Acquire)
		},
		CheckFinal: func(final map[string]memmodel.Value) bool {
			a, b := final["deq1"], final["deq2"]
			if a != 0 && a == b {
				return true // duplicate dequeue
			}
			valid := func(v memmodel.Value) bool { return v == 0 || v == 101 || v == 102 }
			return !valid(a) || !valid(b)
		},
	}
}

// msqEnqueue links a new node carrying v at the tail. The atomic orders
// are the seeded relaxed ones (comments give the correct orders).
func msqEnqueue(t *engine.Thread, head, tail memmodel.Loc, v memmodel.Value, pubOrd, subOrd memmodel.Order) {
	node := t.Alloc("node", nodeSize)
	t.Store(node+nodeVal, v, memmodel.NonAtomic) // payload: plain write before publication
	t.Store(node+nodeNext, 0, memmodel.Relaxed)
	for i := 0; i < 8; i++ {
		last := memmodel.Loc(t.Load(tail, subOrd)) // seeded: relaxed instead of acquire
		next := t.Load(last+nodeNext, subOrd)      // seeded: relaxed instead of acquire
		if next == 0 {
			if _, ok := t.CAS(last+nodeNext, 0, memmodel.Value(node), pubOrd, subOrd); ok { // seeded: relaxed instead of release
				t.CAS(tail, memmodel.Value(last), memmodel.Value(node), pubOrd, subOrd)
				return
			}
		} else {
			// Help swing the tail.
			t.CAS(tail, memmodel.Value(last), next, pubOrd, subOrd)
		}
	}
}

// msqDequeue unlinks the node after head and returns its payload (0 when
// the queue looks empty).
func msqDequeue(t *engine.Thread, head, tail memmodel.Loc, pubOrd, subOrd memmodel.Order) memmodel.Value {
	for i := 0; i < 8; i++ {
		first := memmodel.Loc(t.Load(head, subOrd)) // seeded: relaxed instead of acquire
		last := memmodel.Loc(t.Load(tail, subOrd))
		next := t.Load(first+nodeNext, subOrd) // seeded: relaxed instead of acquire
		if first == last {
			if next == 0 {
				return 0 // empty
			}
			t.CAS(tail, memmodel.Value(last), next, pubOrd, subOrd)
			continue
		}
		if next == 0 {
			continue
		}
		if _, ok := t.CAS(head, memmodel.Value(first), next, pubOrd, subOrd); ok {
			return t.Load(memmodel.Loc(next)+nodeVal, memmodel.NonAtomic)
		}
	}
	return 0
}

func buildMSQueue(extra int) *engine.Program {
	return buildMSQueueOrd(extra, memmodel.Relaxed, memmodel.Relaxed)
}

func buildMSQueueOrd(extra int, pubOrd, subOrd memmodel.Order) *engine.Program {
	p := engine.NewProgram("msqueue")
	// The dummy node is static so the initialized queue is part of every
	// thread's initial view (the paper's benchmarks run make_queue before
	// spawning workers).
	dummyNode := p.Loc("dummy0.val", 0)
	p.Loc("dummy0.next", 0) // dummyNode+nodeNext
	head := p.Loc("head", memmodel.Value(dummyNode))
	tail := p.Loc("tail", memmodel.Value(dummyNode))
	deq1 := p.Loc("deq1", 0)
	deq2 := p.Loc("deq2", 0)
	extraLoc := p.Loc("extra", 0)

	p.AddNamedThread("enq1", func(t *engine.Thread) {
		insertExtraWrites(t, extraLoc, extra)
		msqEnqueue(t, head, tail, 101, pubOrd, subOrd)
	})
	p.AddNamedThread("enq2", func(t *engine.Thread) {
		msqEnqueue(t, head, tail, 102, pubOrd, subOrd)
	})
	p.AddNamedThread("deq", func(t *engine.Thread) {
		t.Store(deq1, msqDequeue(t, head, tail, pubOrd, subOrd), memmodel.NonAtomic)
		t.Store(deq2, msqDequeue(t, head, tail, pubOrd, subOrd), memmodel.NonAtomic)
	})
	return p
}
