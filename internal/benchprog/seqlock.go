package benchprog

import (
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// Seqlock is a sequence lock: the writer brackets its updates of two data
// words with sequence-counter increments (odd = write in progress); a
// reader retries until it sees the same even sequence before and after
// reading both words. The seeded bug relaxes the entire protocol (correct:
// release stores of the sequence, acquire loads, or fences), so a reader
// can observe a torn snapshot that *looks* consistent: it needs three
// chained communication relations — the writer-ready flag, the final even
// sequence, and one (but not both) of the data words — while the second
// sequence read is satisfied by the thread-local view. Bug depth d = 3.
//
// All protected accesses are atomic (the classic C11 seqlock formulation),
// so there are no data races; detection is purely the consistency assert.
func Seqlock() *Benchmark {
	return &Benchmark{
		Name:        "seqlock",
		Depth:       3,
		Table3Depth: 4,
		RaceIsBug:   false,
		Build:       buildSeqlock,
		BuildFixed:  buildSeqlockFixed,
	}
}

// buildSeqlockFixed is the correctly synchronized seqlock (Boehm 2012):
// the writer brackets its relaxed data stores with a relaxed odd-seq
// store + release fence and a release even-seq store; the reader loads
// the sequence with acquire, reads the data relaxed, and validates after
// an acquire fence.
func buildSeqlockFixed() *engine.Program {
	p := engine.NewProgram("seqlock-fixed")
	ready := p.Loc("ready", 0)
	seq := p.Loc("seq", 0)
	d1 := p.Loc("d1", 0)
	d2 := p.Loc("d2", 0)

	p.AddNamedThread("writer", func(t *engine.Thread) {
		t.Store(ready, 1, memmodel.Relaxed)
		t.Store(seq, 1, memmodel.Relaxed)
		t.Fence(memmodel.Release)
		t.Store(d1, 10, memmodel.Relaxed)
		t.Store(d2, 10, memmodel.Relaxed)
		t.Store(seq, 2, memmodel.Release)
	})
	reader := func(t *engine.Thread) {
		if _, ok := waitFor(t, ready, memmodel.Relaxed, 8, eq(1)); !ok {
			return
		}
		s1, ok := waitFor(t, seq, memmodel.Acquire, 16, func(v memmodel.Value) bool {
			return v != 0 && v%2 == 0
		})
		if !ok {
			return
		}
		v1 := t.Load(d1, memmodel.Relaxed)
		v2 := t.Load(d2, memmodel.Relaxed)
		t.Fence(memmodel.Acquire)
		s2 := t.Load(seq, memmodel.Relaxed)
		if s2 != s1 {
			return // writer interfered; a real reader would retry
		}
		t.Assert(v1 == v2, "seqlock reader accepted a torn snapshot: d1=%d d2=%d (seq %d)", v1, v2, s1)
	}
	p.AddNamedThread("reader1", reader)
	p.AddNamedThread("reader2", reader)
	return p
}

func buildSeqlock(extra int) *engine.Program {
	p := engine.NewProgram("seqlock")
	ready := p.Loc("ready", 0)
	seq := p.Loc("seq", 0)
	d1 := p.Loc("d1", 0)
	d2 := p.Loc("d2", 0)
	dummy := p.Loc("dummy", 0)

	p.AddNamedThread("writer", func(t *engine.Thread) {
		insertExtraWrites(t, dummy, extra)
		t.Store(ready, 1, memmodel.Relaxed)
		t.Store(seq, 1, memmodel.Relaxed) // seeded: should be release/fenced
		t.Store(d1, 10, memmodel.Relaxed)
		t.Store(d2, 10, memmodel.Relaxed)
		t.Store(seq, 2, memmodel.Relaxed) // seeded: should be release
	})
	reader := func(t *engine.Thread) {
		// Phase 1: wait until the writer has started.
		if _, ok := waitFor(t, ready, memmodel.Relaxed, 8, eq(1)); !ok {
			return
		}
		// Phase 2: wait for an even, non-zero sequence. Seeded: acquire.
		s1, ok := waitFor(t, seq, memmodel.Relaxed, 16, func(v memmodel.Value) bool {
			return v != 0 && v%2 == 0
		})
		if !ok {
			return
		}
		// Phase 3: read the snapshot and validate the sequence.
		v1 := t.Load(d1, memmodel.Relaxed)
		v2 := t.Load(d2, memmodel.Relaxed)
		s2 := t.Load(seq, memmodel.Relaxed) // seeded: should be acquire/fenced
		if s2 != s1 {
			return // writer interfered; a real reader would retry
		}
		t.Assert(v1 == v2, "seqlock reader accepted a torn snapshot: d1=%d d2=%d (seq %d)", v1, v2, s1)
	}
	p.AddNamedThread("reader1", reader)
	p.AddNamedThread("reader2", reader)
	return p
}
