package benchprog

import (
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// RWLock is an epoch-stamped reader-writer lock: the writer takes the lock
// word from 0 (free) to 1 (held) with a CAS and releases it to 2 ("free,
// epoch 1") so readers can tell whether the writer already ran. The seeded
// bug relaxes the writer's publication chain (completion counter and
// epoch release; correct: release stores with acquire loads), so a reader
// that chains two communication relations — observing the completion
// counter, then the released epoch — enters its read section without
// happens-before and sees stale protected data. Bug depth d = 2.
func RWLock() *Benchmark {
	return &Benchmark{
		Name:        "rwlock",
		Depth:       2,
		Table3Depth: 3,
		RaceIsBug:   false, // detection is the stale-data assert
		Build:       buildRWLock,
		BuildFixed: func() *engine.Program {
			return buildRWLockOrd(0, memmodel.Release, memmodel.Acquire)
		},
	}
}

func buildRWLock(extra int) *engine.Program {
	return buildRWLockOrd(extra, memmodel.Relaxed, memmodel.Relaxed)
}

func buildRWLockOrd(extra int, pubOrd, subOrd memmodel.Order) *engine.Program {
	p := engine.NewProgram("rwlock")
	lock := p.Loc("lock", 0) // 0 free, 1 writer, 2 free after epoch 1
	wcount := p.Loc("wcount", 0)
	data := p.Loc("data", 0)
	dummy := p.Loc("dummy", 0)

	p.AddNamedThread("writer", func(t *engine.Thread) {
		insertExtraWrites(t, dummy, extra)
		if _, ok := t.CAS(lock, 0, 1, memmodel.AcqRel, memmodel.Relaxed); !ok {
			return
		}
		t.Store(data, 42, memmodel.NonAtomic)
		t.Store(wcount, 1, pubOrd) // seeded: relaxed instead of release
		t.Store(lock, 2, pubOrd)   // seeded: relaxed instead of release
	})
	p.AddNamedThread("reader", func(t *engine.Thread) {
		// Phase 1: wait for the completed-writes counter. Seeded: acquire.
		if _, ok := waitFor(t, wcount, subOrd, 16, eq(1)); !ok {
			return
		}
		// Phase 2: wait for the epoch-1 release. Seeded: acquire.
		if _, ok := waitFor(t, lock, subOrd, 16, eq(2)); !ok {
			return
		}
		v := t.Load(data, memmodel.NonAtomic)
		t.Assert(v == 42, "reader entered epoch 1 but sees stale data: %d", v)
	})
	return p
}
