package benchprog

import (
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// CLDeque is a Chase-Lev work-stealing deque: the owner pushes and pops at
// the bottom, a thief steals at the top. The correct algorithm publishes
// pushed elements with a release store of bottom (and steals with acquire
// loads plus a seq_cst CAS on top); the seeded bug relaxes the thief-facing
// orders. A thief that observes the owner's bottom update through a single
// communication relation steals the element without synchronizing, so its
// read of the buffer races with the owner's plain element write and can
// observe a stale element — bug depth d = 1.
func CLDeque() *Benchmark {
	return &Benchmark{
		Name:        "cldeque",
		Depth:       1,
		Table3Depth: 1,
		RaceIsBug:   false, // detection is the stale/duplicate-steal post-check
		Build:       buildCLDeque,
		BuildFixed: func() *engine.Program {
			return buildCLDequeOrd(0, memmodel.Release, memmodel.Acquire)
		},
		CheckFinal: func(final map[string]memmodel.Value) bool {
			if final["stole"] != 1 {
				return false // nothing stolen; nothing to validate
			}
			stolen, popped := final["stolen"], final["popped"]
			if stolen != 11 && stolen != 12 {
				return true // stale or invented element
			}
			return stolen == popped // duplicated element
		},
	}
}

func buildCLDeque(extra int) *engine.Program {
	return buildCLDequeOrd(extra, memmodel.Relaxed, memmodel.Relaxed)
}

func buildCLDequeOrd(extra int, pubOrd, subOrd memmodel.Order) *engine.Program {
	p := engine.NewProgram("cldeque")
	buf := p.LocArray("buf", 4, 0)
	top := p.Loc("top", 0)
	bottom := p.Loc("bottom", 0)
	stole := p.Loc("stole", 0)
	stolen := p.Loc("stolen", 0)
	popped := p.Loc("popped", 0)
	dummy := p.Loc("dummy", 0)

	bufAt := func(i memmodel.Value) memmodel.Loc { return buf + memmodel.Loc(i%4) }

	// Owner: push 11, push 12, pop.
	p.AddNamedThread("owner", func(t *engine.Thread) {
		insertExtraWrites(t, dummy, extra)
		push := func(v memmodel.Value) {
			b := t.Load(bottom, memmodel.Relaxed)
			t.Store(bufAt(b), v, memmodel.NonAtomic) // element: plain write
			t.Store(bottom, b+1, pubOrd)             // seeded: relaxed instead of release
		}
		pop := func() memmodel.Value {
			b := t.Load(bottom, memmodel.Relaxed) - 1
			t.Store(bottom, b, pubOrd) // seeded: relaxed instead of seq_cst
			tp := t.Load(top, subOrd)  // seeded: relaxed instead of seq_cst
			if b < tp {
				t.Store(bottom, tp, pubOrd)
				return 0 // empty
			}
			v := t.Load(bufAt(b), memmodel.NonAtomic)
			if b > tp {
				return v // no conflict with thieves
			}
			// Last element: race with thieves through top.
			if _, ok := t.CAS(top, tp, tp+1, pubOrd, subOrd); !ok {
				v = 0
			}
			t.Store(bottom, tp+1, pubOrd)
			return v
		}
		push(11)
		push(12)
		t.Store(popped, pop(), memmodel.NonAtomic)
	})

	// Thief: one steal attempt with a bounded wait for work.
	p.AddNamedThread("thief", func(t *engine.Thread) {
		tp := t.Load(top, subOrd) // seeded: relaxed instead of acquire
		b, ok := waitFor(t, bottom, subOrd, 16, func(v memmodel.Value) bool {
			return v > tp
		}) // seeded: should be acquire
		if !ok || b <= tp {
			return // deque looks empty
		}
		v := t.Load(bufAt(tp), memmodel.NonAtomic) // races without the release/acquire pair
		if _, ok := t.CAS(top, tp, tp+1, pubOrd, subOrd); ok {
			t.Store(stole, 1, memmodel.NonAtomic)
			t.Store(stolen, v, memmodel.NonAtomic)
		}
	})
	return p
}
