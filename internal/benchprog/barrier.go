package benchprog

import (
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// Barrier is a two-thread flag barrier: each thread publishes a payload,
// raises its arrival flag, and waits (bounded) for the other's flag before
// reading the other payload. Thread 1 is correct (release store, acquire
// wait); the seeded bug makes thread 2's wait loop relaxed, so T2 can pass
// the barrier through a single communication (reading T1's flag) without
// synchronizing — its payload read then misses T1's plain write. Bug
// depth d = 1: exactly one communication relation (the flag read) reaches
// the failing assertion.
func Barrier() *Benchmark {
	return &Benchmark{
		Name:        "barrier",
		Depth:       1,
		Table3Depth: 2,
		RaceIsBug:   false, // the race is incidental; detection is the visibility assert
		Build:       buildBarrier,
		BuildFixed:  func() *engine.Program { return buildBarrierOrd(0, memmodel.Acquire) },
	}
}

func buildBarrier(extra int) *engine.Program {
	return buildBarrierOrd(extra, memmodel.Relaxed)
}

func buildBarrierOrd(extra int, t2Ord memmodel.Order) *engine.Program {
	p := engine.NewProgram("barrier")
	x1 := p.Loc("x1", 0)
	x2 := p.Loc("x2", 0)
	f1 := p.Loc("f1", 0)
	f2 := p.Loc("f2", 0)
	dummy := p.Loc("dummy", 0)

	const boundT1, boundT2 = 3, 16

	p.AddNamedThread("T1", func(t *engine.Thread) {
		insertExtraWrites(t, dummy, extra)
		t.Store(x1, 1, memmodel.NonAtomic)
		for stage := memmodel.Value(1); stage <= 4; stage++ {
			t.Store(f1, stage, memmodel.Release) // staged arrival counter
		}
		for i := 0; i < boundT1; i++ {
			if t.Load(f2, memmodel.Acquire) == 1 { // correct side
				v := t.Load(x2, memmodel.NonAtomic)
				t.Assert(v == 2, "T1 passed the barrier but x2=%d", v)
				return
			}
		}
	})
	p.AddNamedThread("T2", func(t *engine.Thread) {
		t.Store(x2, 2, memmodel.NonAtomic)
		t.Store(f2, 1, memmodel.Release)
		for i := 0; i < boundT2; i++ {
			if t.Load(f1, t2Ord) >= 1 { // seeded: relaxed instead of acquire
				v := t.Load(x1, memmodel.NonAtomic)
				t.Assert(v == 1, "T2 passed the barrier but x1=%d", v)
				return
			}
		}
	})
	return p
}
