// Package benchprog re-implements the paper's nine data-structure
// benchmarks (Table 1) against the engine API. Each benchmark carries a
// seeded weak-memory bug — a handful of accesses weakened from their
// correct orders to relaxed, exactly like the C11Tester benchmark suite —
// and a detection rule (a failed assertion, a post-condition on the final
// state, and/or a data race that is only reachable through the bug).
//
// Wait loops are bounded: a thread that never observes the value it waits
// for gives up instead of spinning forever, so an execution whose sampled
// communication relations miss the bug completes without detecting it
// (this mirrors the paper's discussion of wait loops in §6.2).
//
// Every benchmark accepts an "extra relaxed writes" parameter used by the
// Figure 6 experiment: the writes go to a dummy location and do not affect
// the program behaviour or the bug depth, but they inflate the program
// event count k that PCT's change points are sampled from.
package benchprog

import (
	"fmt"
	"sync"

	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// Benchmark is one weak-memory test program with a seeded bug.
type Benchmark struct {
	// Name matches the paper's Table 1 row.
	Name string
	// Depth is the concurrency bug depth d (Table 1).
	Depth int
	// Table3Depth is the d used for the history-depth sweep (Table 3
	// lists slightly different depths than Table 1).
	Table3Depth int
	// RaceIsBug counts detected data races as bug hits. Races in these
	// benchmarks are only reachable through the seeded bug, so this is
	// safe where set.
	RaceIsBug bool
	// Build constructs the program with extra inserted relaxed writes
	// (Figure 6); 0 for the plain benchmark.
	Build func(extraWrites int) *engine.Program
	// BuildFixed constructs the correctly synchronized variant (the
	// seeded orders restored); no strategy should detect anything in it.
	BuildFixed func() *engine.Program
	// CheckFinal inspects the final static-location values; returning true
	// flags a bug. Nil when asserts/races cover detection.
	CheckFinal func(final map[string]memmodel.Value) bool

	mu    sync.Mutex
	progs map[int]*engine.Program
	fixed *engine.Program
}

// Program returns the (cached) program with the given number of inserted
// relaxed writes.
func (b *Benchmark) Program(extraWrites int) *engine.Program {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.progs == nil {
		b.progs = make(map[int]*engine.Program)
	}
	p := b.progs[extraWrites]
	if p == nil {
		p = b.Build(extraWrites)
		b.progs[extraWrites] = p
	}
	return p
}

// FixedProgram returns the (cached) correctly synchronized variant.
func (b *Benchmark) FixedProgram() *engine.Program {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fixed == nil {
		b.fixed = b.BuildFixed()
	}
	return b.fixed
}

// Detect reports whether the outcome exposes the seeded bug.
func (b *Benchmark) Detect(o *engine.Outcome) bool {
	if o.BugHit {
		return true
	}
	if b.RaceIsBug && len(o.Races) > 0 {
		return true
	}
	if b.CheckFinal != nil && !o.Aborted && b.CheckFinal(o.FinalValues) {
		return true
	}
	return false
}

// Options returns the engine options benchmarks run under: races on (the
// C11Tester behaviour), stop at the first bug.
func (b *Benchmark) Options() engine.Options {
	return engine.Options{DetectRaces: true, StopOnBug: true}
}

// insertExtraWrites emits n relaxed writes to a dummy location. The dummy
// is never read, so the writes change neither the program behaviour nor
// the bug depth — they only inflate the event count k (§6.3).
func insertExtraWrites(t *engine.Thread, dummy memmodel.Loc, n int) {
	for i := 1; i <= n; i++ {
		t.Store(dummy, memmodel.Value(i), memmodel.Relaxed)
	}
}

// All returns the nine Table-1 benchmarks in the paper's order.
func All() []*Benchmark {
	return []*Benchmark{
		Dekker(),
		MSQueue(),
		Barrier(),
		CLDeque(),
		MCSLock(),
		MPMCQueue(),
		LinuxRWLocks(),
		RWLock(),
		Seqlock(),
	}
}

// ByName returns the benchmark with the given name.
func ByName(name string) (*Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("benchprog: unknown benchmark %q", name)
}
