package benchprog

import (
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// MCSLock is a queue lock in the MCS family (CLH-style handoff: each
// contender enqueues its qnode with an atomic exchange on the lock tail
// and spins on its predecessor's node). The seeded bug relaxes the handoff
// (correct: release store of locked=0, acquire spin), so the successor
// enters the critical section through a single communication relation —
// reading locked=0 without happens-before. Its critical-section accesses
// then race with the predecessor's and the protected counter loses an
// update. Bug depth d = 1.
func MCSLock() *Benchmark {
	return &Benchmark{
		Name:        "mcslock",
		Depth:       1,
		Table3Depth: 1,
		RaceIsBug:   false, // detection is the lost-update post-check
		Build:       buildMCSLock,
		BuildFixed: func() *engine.Program {
			return buildMCSLockOrd(0, memmodel.Acquire, memmodel.Release)
		},
		CheckFinal: func(final map[string]memmodel.Value) bool {
			// Both critical sections ran iff both done flags are set; the
			// protected counter must then be 2.
			return final["done1"] == 1 && final["done2"] == 1 && final["count"] < 2
		},
	}
}

func buildMCSLock(extra int) *engine.Program {
	return buildMCSLockOrd(extra, memmodel.Relaxed, memmodel.Relaxed)
}

func buildMCSLockOrd(extra int, spinOrd, handoffOrd memmodel.Order) *engine.Program {
	p := engine.NewProgram("mcslock")
	tail := p.Loc("lock.tail", 0) // holds the qnode of the last contender; 0 = free
	count := p.Loc("count", 0)
	done1 := p.Loc("done1", 0)
	done2 := p.Loc("done2", 0)
	dummy := p.Loc("dummy", 0)

	worker := func(done memmodel.Loc, withExtra bool) engine.ThreadFunc {
		return func(t *engine.Thread) {
			if withExtra {
				insertExtraWrites(t, dummy, extra)
			}
			my := t.Alloc("qnode", 1)
			// locked=1 before publication: the exchange releases the node.
			t.Store(my, 1, memmodel.Relaxed)
			pred := t.Exchange(tail, memmodel.Value(my), memmodel.AcqRel)
			acquired := pred == 0
			if !acquired {
				// seeded: the handoff spin should be an acquire load.
				_, acquired = waitFor(t, memmodel.Loc(pred), spinOrd, 16, eq(0))
			}
			if !acquired {
				return // bounded wait exhausted; give up without the lock
			}
			// Critical section: plain read-modify-write of the counter.
			v := t.Load(count, memmodel.NonAtomic)
			t.Store(count, v+1, memmodel.NonAtomic)
			t.Store(done, 1, memmodel.NonAtomic)
			// Handoff: clear our own node for the successor.
			t.Store(my, 0, handoffOrd) // seeded: relaxed instead of release
		}
	}
	p.AddNamedThread("T1", worker(done1, true))
	p.AddNamedThread("T2", worker(done2, false))
	return p
}
