package benchprog

import (
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// waitFor polls loc with the given order until pred accepts the value,
// giving up after bound attempts. It returns the accepted value and
// whether the wait succeeded. This is the bounded wait-loop idiom shared
// by the benchmarks: a thread whose sampled communication relations never
// deliver the awaited value completes without reaching the bug (§6.2).
func waitFor(t *engine.Thread, loc memmodel.Loc, ord memmodel.Order, bound int, pred func(memmodel.Value) bool) (memmodel.Value, bool) {
	for i := 0; i < bound; i++ {
		if v := t.Load(loc, ord); pred(v) {
			return v, true
		}
	}
	return 0, false
}

func eq(want memmodel.Value) func(memmodel.Value) bool {
	return func(v memmodel.Value) bool { return v == want }
}
