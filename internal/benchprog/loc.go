package benchprog

import (
	"embed"
	"strings"
)

//go:embed dekker.go msqueue.go barrier.go cldeque.go mcslock.go mpmcqueue.go linuxrwlocks.go rwlock.go seqlock.go
var sources embed.FS

// LOC returns the number of non-blank source lines of the named
// benchmark's implementation file (the Table 1 "LOC" column).
func LOC(name string) int {
	data, err := sources.ReadFile(name + ".go")
	if err != nil {
		return 0
	}
	n := 0
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}
