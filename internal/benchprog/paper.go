package benchprog

import (
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// P1 is the paper's Program P1 (§2.2): one thread writes X = 1…k, the
// other asserts it does not read X = k. The bug has depth d = 1 — a single
// communication of the final write to the read. With history depth h,
// PCTWM detects it with probability ≈ 1/h once the read is chosen as the
// communication sink (§3.3: d=1, h=2 detects with probability 1/2).
//
// The paper states all accesses in P1 are sc; our engine gives SC events a
// global SC view (Algorithm 2, getSC) that is stronger than the C11Tester
// acyclicity axiom and pins a delayed SC read to the mo-maximal write, so
// this reproduction uses relaxed accesses — the communication structure
// and the §3.3 probabilities are identical.
func P1(k int) *Benchmark {
	return &Benchmark{
		Name:        "p1",
		Depth:       1,
		Table3Depth: 1,
		Build: func(extra int) *engine.Program {
			p := engine.NewProgram("p1")
			x := p.Loc("X", 0)
			dummy := p.Loc("dummy", 0)
			p.AddNamedThread("T1", func(t *engine.Thread) {
				insertExtraWrites(t, dummy, extra)
				for i := 1; i <= k; i++ {
					t.Store(x, memmodel.Value(i), memmodel.Relaxed)
				}
			})
			p.AddNamedThread("T2", func(t *engine.Thread) {
				v := t.Load(x, memmodel.Relaxed)
				t.Assert(v != memmodel.Value(k), "read X=%d", v)
			})
			return p
		},
	}
}

// MP2 is the paper's Program MP2 (§5.3): a three-thread relaxed
// message-passing chain whose assertion violation (Y==1 read while X==0)
// has bug depth d = 2 (Figure 4's execution with sinks [e2, e4]).
func MP2() *Benchmark {
	return &Benchmark{
		Name:        "mp2",
		Depth:       2,
		Table3Depth: 2,
		Build: func(extra int) *engine.Program {
			p := engine.NewProgram("mp2")
			x := p.Loc("X", 0)
			y := p.Loc("Y", 0)
			dummy := p.Loc("dummy", 0)
			p.AddNamedThread("T1", func(t *engine.Thread) {
				insertExtraWrites(t, dummy, extra)
				t.Store(x, 1, memmodel.Relaxed)
			})
			p.AddNamedThread("T2", func(t *engine.Thread) {
				if t.Load(x, memmodel.Relaxed) == 1 {
					t.Store(y, 1, memmodel.Relaxed)
				}
			})
			p.AddNamedThread("T3", func(t *engine.Thread) {
				if t.Load(y, memmodel.Relaxed) == 1 {
					v := t.Load(x, memmodel.Relaxed)
					t.Assert(v != 0, "Y==1 but X==0")
				}
			})
			return p
		},
	}
}
