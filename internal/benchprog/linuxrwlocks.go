package benchprog

import (
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// LinuxRWLocks models the Linux-style counter read-write lock: a writer
// claims the whole counter with a CAS, readers add one. The writer
// publishes two protected fields behind two completion flags; the seeded
// bug relaxes the flag stores and loads (correct: release/acquire), so a
// reader that chains two communication relations — observing both flags —
// takes the read lock and reads the fields without happens-before: a data
// race and stale values. Bug depth d = 2.
func LinuxRWLocks() *Benchmark {
	return &Benchmark{
		Name:        "linuxrwlocks",
		Depth:       2,
		Table3Depth: 2,
		RaceIsBug:   false, // detection is the torn-fields assert
		Build:       buildLinuxRWLocks,
		BuildFixed: func() *engine.Program {
			return buildLinuxRWLocksOrd(0, memmodel.Release, memmodel.Acquire)
		},
	}
}

const rwWriterBias = 100

func buildLinuxRWLocks(extra int) *engine.Program {
	return buildLinuxRWLocksOrd(extra, memmodel.Relaxed, memmodel.Relaxed)
}

func buildLinuxRWLocksOrd(extra int, pubOrd, subOrd memmodel.Order) *engine.Program {
	p := engine.NewProgram("linuxrwlocks")
	lock := p.Loc("lock", 0) // 0 free, -rwWriterBias writer, +n readers
	data1 := p.Loc("data1", 0)
	data2 := p.Loc("data2", 0)
	done1 := p.Loc("done1", 0)
	done2 := p.Loc("done2", 0)
	dummy := p.Loc("dummy", 0)

	p.AddNamedThread("writer", func(t *engine.Thread) {
		insertExtraWrites(t, dummy, extra)
		if _, ok := t.CAS(lock, 0, -rwWriterBias, memmodel.AcqRel, memmodel.Relaxed); !ok {
			return
		}
		t.Store(data1, 42, memmodel.NonAtomic)
		t.Store(done1, 1, pubOrd) // seeded: relaxed instead of release
		t.Store(data2, 43, memmodel.NonAtomic)
		t.Store(done2, 1, pubOrd)              // seeded: relaxed instead of release
		t.FetchAdd(lock, rwWriterBias, pubOrd) // seeded: relaxed instead of release

	})
	reader := func(t *engine.Thread) {
		// Phase 1 and 2: wait for both completion flags. Seeded: acquire.
		if _, ok := waitFor(t, done1, subOrd, 16, eq(1)); !ok {
			return
		}
		if _, ok := waitFor(t, done2, subOrd, 16, eq(1)); !ok {
			return
		}
		// Both fields are (supposedly) published; take the read lock.
		if t.FetchAdd(lock, 1, memmodel.Acquire) < 0 {
			// Writer still inside; back out.
			t.FetchAdd(lock, -1, memmodel.Relaxed)
			return
		}
		v1 := t.Load(data1, memmodel.NonAtomic)
		v2 := t.Load(data2, memmodel.NonAtomic)
		t.Assert(v1 == 42 && v2 == 43, "reader saw torn fields: %d, %d", v1, v2)
		t.FetchAdd(lock, -1, memmodel.Release)
	}
	p.AddNamedThread("reader", reader)
	return p
}
