package enumerate

import (
	"reflect"
	"testing"

	"pctwm/internal/engine"
	"pctwm/internal/litmus"
	"pctwm/internal/memmodel"
)

// TestBehaviorCensusSB pins the census on the canonical example: SB+rlx
// has exactly 4 behaviors under rc11 (each read independently sees 0 or
// 1), and the total leaf count equals the enumeration's run count.
func TestBehaviorCensusSB(t *testing.T) {
	lt := litmus.SBRelaxed()
	c, err := BehaviorCensus(lt.Program, engine.Options{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Complete {
		t.Fatalf("SB census incomplete after %d runs", c.Runs)
	}
	if len(c.Behaviors) != 4 {
		t.Fatalf("SB+rlx census has %d behaviors, want 4: %+v", len(c.Behaviors), c.Behaviors)
	}
	leaves := c.Skipped
	for _, e := range c.Behaviors {
		if e.Leaves <= 0 {
			t.Fatalf("behavior %#x with %d leaves", e.FP, e.Leaves)
		}
		leaves += e.Leaves
	}
	if leaves != c.Runs {
		t.Fatalf("leaf counts sum to %d, runs %d", leaves, c.Runs)
	}
	if c.Program != lt.Program.Name() || c.Model != engine.ModelRC11 {
		t.Fatalf("census identity: %q/%q", c.Program, c.Model)
	}
}

// TestBehaviorCensusWorkerDeterminism: the census is bit-identical at
// any worker count, including the JSON encoding.
func TestBehaviorCensusWorkerDeterminism(t *testing.T) {
	lt := litmus.IRIWRelaxed()
	ref, err := BehaviorCensus(lt.Program, engine.Options{}, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := ref.Encode()
	for _, workers := range []int{2, 8, 0} {
		got, err := BehaviorCensus(lt.Program, engine.Options{}, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d census diverges:\n got %+v\nwant %+v", workers, got, ref)
		}
		gotJSON, _ := got.Encode()
		if string(gotJSON) != string(refJSON) {
			t.Fatalf("workers=%d census encoding diverges", workers)
		}
	}
}

// TestBehaviorCensusSkipsErrored: leaves that end in an engine error are
// counted as Skipped, not as behaviors — mirroring the harness rule that
// only clean runs carry a behavior.
func TestBehaviorCensusSkipsErrored(t *testing.T) {
	// A join cycle deadlocks every execution: the child joins itself, the
	// root joins the child. Every leaf errs, so the census has skipped
	// runs and zero behaviors.
	p := engine.NewProgram("skip-census")
	x := p.Loc("X", 0)
	p.AddThread(func(th *engine.Thread) {
		var h *engine.ThreadHandle
		h = th.Spawn(func(c *engine.Thread) {
			c.Load(x, memmodel.Relaxed)
			c.Join(h)
		})
		th.Join(h)
	})
	c, err := BehaviorCensus(p, engine.Options{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Complete {
		t.Fatalf("census incomplete after %d runs", c.Runs)
	}
	if c.Skipped == 0 || c.Skipped != c.Runs {
		t.Fatalf("deadlocking leaves not all counted as skipped: %+v", c)
	}
	if len(c.Behaviors) != 0 {
		t.Fatalf("deadlocked executions contributed behaviors: %+v", c.Behaviors)
	}
}

// TestBehaviorProbsSB: the exact uniform-walk distribution is a proper
// probability distribution whose support matches the census exactly.
func TestBehaviorProbsSB(t *testing.T) {
	lt := litmus.SBRelaxed()
	probs, errMass, err := BehaviorProbs(lt.Program, engine.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := errMass
	for fp, p := range probs {
		if p <= 0 || p > 1 {
			t.Fatalf("behavior %#x has probability %v outside (0,1]", fp, p)
		}
		total += p
	}
	if total < 1-1e-9 || total > 1+1e-9 {
		t.Fatalf("probabilities sum to %v, want 1", total)
	}
	c, err := BehaviorCensus(lt.Program, engine.Options{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range c.Fingerprints() {
		if _, ok := probs[fp]; !ok {
			t.Fatalf("census behavior %#x missing from probs", fp)
		}
	}
	if len(probs) != len(c.Behaviors) {
		t.Fatalf("probs support %d behaviors, census %d", len(probs), len(c.Behaviors))
	}
}

// TestBehaviorProbsTruncationErrors: a limit that cuts the tree short is
// an error, never a silently truncated distribution.
func TestBehaviorProbsTruncationErrors(t *testing.T) {
	lt := litmus.SBRelaxed()
	if _, _, err := BehaviorProbs(lt.Program, engine.Options{}, 1); err == nil {
		t.Fatal("limit=1 must truncate SB and error")
	}
}

// TestCensusRoundTrip: Encode/DecodeCensus is lossless.
func TestCensusRoundTrip(t *testing.T) {
	lt := litmus.SBRelaxed()
	c, err := BehaviorCensus(lt.Program, engine.Options{Model: engine.ModelTSO}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCensus(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, c) {
		t.Fatalf("round trip diverges:\n got %+v\nwant %+v", back, c)
	}
	if back.Model != engine.ModelTSO {
		t.Fatalf("model lost: %q", back.Model)
	}
}
