package enumerate

import (
	"encoding/json"
	"fmt"
	"slices"
	"strconv"

	"pctwm/internal/engine"
)

// censusErrKey classifies leaves that ended in an engine error (step-
// limit aborts, deadlocks, stalls): they are complete schedules but
// carry no behavior fingerprint — the harness skips the same runs when
// accumulating campaign coverage — so the census counts them separately
// instead of polluting the behavior set.
const censusErrKey = "err"

// censusKey classifies one leaf by its behavior fingerprint (hex).
func censusKey(o *engine.Outcome) string {
	if o.Err != nil {
		return censusErrKey
	}
	return strconv.FormatUint(o.BehaviorFP, 16)
}

// CensusEntry is one distinct behavior in a census: its fingerprint and
// the number of decision-tree leaves (complete executions) realizing it.
type CensusEntry struct {
	FP     uint64 `json:"fp"`
	Leaves int    `json:"leaves"`
}

// Census is the exhaustive explorer's ground-truth behavior census of a
// program under one memory model: every distinct behavior fingerprint
// reachable by any scheduling and reads-from choice. A saturated
// randomized campaign's coverage.Set must contain exactly these
// fingerprints — the cross-validation the coverage tests and the CI
// smoke job pin.
type Census struct {
	Program string `json:"program"`
	Model   string `json:"model"`
	// Complete is false when the run limit or a cancellation cut the
	// enumeration short; an incomplete census is a lower bound only.
	Complete bool `json:"complete"`
	// Runs is the number of executions enumerated (including skipped).
	Runs int `json:"runs"`
	// Skipped counts leaves that ended in an engine error and therefore
	// carry no behavior.
	Skipped int `json:"skipped,omitempty"`
	// Behaviors lists the distinct behaviors sorted by fingerprint.
	Behaviors []CensusEntry `json:"behaviors"`
}

// BehaviorCensus exhaustively enumerates p under opts and returns the
// ground-truth behavior census. Coverage is forced on (the fingerprint
// is the classification key); limit and worker count come from cfg, and
// the result is bit-identical at any worker count. Drift (a
// nondeterministic program) aborts with an error.
func BehaviorCensus(p *engine.Program, opts engine.Options, cfg Config) (*Census, error) {
	opts.Coverage = true
	counts, res := Outcomes(p, opts, cfg, censusKey)
	if res.Drift != nil {
		return nil, res.Drift
	}
	model := opts.Model
	if model == "" {
		model = engine.ModelRC11
	}
	c := &Census{
		Program:  p.Name(),
		Model:    model,
		Complete: res.Complete && !res.Interrupted,
		Runs:     res.Runs,
	}
	for k, n := range counts {
		if k == censusErrKey {
			c.Skipped = n
			continue
		}
		fp, err := strconv.ParseUint(k, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("enumerate: internal: bad census key %q: %w", k, err)
		}
		c.Behaviors = append(c.Behaviors, CensusEntry{FP: fp, Leaves: n})
	}
	slices.SortFunc(c.Behaviors, func(a, b CensusEntry) int {
		switch {
		case a.FP < b.FP:
			return -1
		case a.FP > b.FP:
			return 1
		}
		return 0
	})
	return c, nil
}

// BehaviorProbs exhaustively enumerates p under opts and returns, for
// each behavior fingerprint, the exact probability that a
// uniform-decision random walk — one uniform choice among the enabled
// threads at every scheduling point and among the legal candidates at
// every read, i.e. the sampling distribution of core.Random — produces
// that behavior. A leaf reached through decisions of arities a_1…a_m
// has probability prod(1/a_i); behaviors sum their leaves.
//
// The second return is the probability mass on errored leaves
// (step-limit aborts, deadlocks), which carry no behavior; conditioning
// an empirical clean-run distribution against these probabilities must
// renormalize by 1−errMass. The exploration is serial (floating-point
// accumulation is order-sensitive) and always complete: limit 0 means
// unlimited, and a limit that truncates the tree returns an error, as a
// truncated distribution is not a distribution.
func BehaviorProbs(p *engine.Program, opts engine.Options, limit int) (probs map[uint64]float64, errMass float64, err error) {
	opts.Coverage = true
	probs = make(map[uint64]float64)
	r := engine.NewRunner(p, opts)
	defer r.Close()
	sub := dfs(r, nil, nil, limit, opts.Telemetry, nil, func(o *engine.Outcome, arity []int) bool {
		pr := 1.0
		for _, a := range arity {
			pr /= float64(a)
		}
		if o.Err != nil {
			errMass += pr
			return true
		}
		probs[o.BehaviorFP] += pr
		return true
	})
	if sub.drift != nil {
		return nil, 0, sub.drift
	}
	if !sub.complete {
		return nil, 0, fmt.Errorf("enumerate: BehaviorProbs hit the %d-run limit on %s: a truncated leaf set has no distribution", limit, p.Name())
	}
	return probs, errMass, nil
}

// Fingerprints returns the census's sorted distinct fingerprints —
// directly comparable (slices.Equal) against coverage.Set.Fingerprints.
func (c *Census) Fingerprints() []uint64 {
	out := make([]uint64, 0, len(c.Behaviors))
	for _, e := range c.Behaviors {
		out = append(out, e.FP)
	}
	return out
}

// Encode renders the census as indented JSON (entries are already
// fingerprint-sorted, so equal censuses encode byte-identically).
func (c *Census) Encode() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// DecodeCensus parses a census written by Encode.
func DecodeCensus(data []byte) (*Census, error) {
	var c Census
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("enumerate: decoding census: %w", err)
	}
	return &c, nil
}
