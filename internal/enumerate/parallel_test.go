package enumerate

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"

	"pctwm/internal/benchprog"
	"pctwm/internal/engine"
	"pctwm/internal/litmus"
	"pctwm/internal/memmodel"
	"pctwm/internal/telemetry"
)

// differentialCase is one (program, options, key) triple whose parallel
// exploration must match serial bit for bit.
type differentialCase struct {
	name string
	prog *engine.Program
	opts engine.Options
	key  func(*engine.Outcome) string
	// limits to sweep: 0 (unlimited) is only safe for loop-free litmus
	// programs — the truncated decision trees of the spin-loop benchmarks
	// are effectively unbounded.
	limits []int
}

// differentialCases builds the sweep: litmus tests plus benchmark
// programs (with a tight step limit so their spin loops truncate fast),
// across every memory-model backend.
func differentialCases(t *testing.T, full bool) []differentialCase {
	t.Helper()
	litmusNames := []string{"SB+rlx", "MP+rlx", "CoRR2"}
	benchNames := []string{"dekker", "seqlock"}
	if full {
		litmusNames = append(litmusNames, "LB+rlx", "IRIW+rlx")
	}
	var cases []differentialCase
	for _, model := range engine.Models() {
		for _, name := range litmusNames {
			lt := litmusByName(t, name)
			cases = append(cases, differentialCase{
				name:   name + "/" + model,
				prog:   lt.Program,
				opts:   engine.Options{Model: model},
				key:    func(o *engine.Outcome) string { return lt.Outcome(o.FinalValues) },
				limits: []int{0, 1, 700},
			})
		}
		for _, name := range benchNames {
			b := benchByName(t, name)
			opts := b.Options()
			opts.Model = model
			// Race detection is rc11-only; the engine forces it off
			// elsewhere, but keep the options honest.
			if model != engine.ModelRC11 {
				opts.DetectRaces = false
			}
			// A tight step limit keeps the spin-loop executions cheap; the
			// truncation pattern itself must still match serial exactly.
			opts.MaxSteps = 250
			cases = append(cases, differentialCase{
				name:   name + "/" + model,
				prog:   b.Program(0),
				opts:   opts,
				limits: []int{1, 700},
				key: func(o *engine.Outcome) string {
					switch {
					case o.BugHit:
						return "bug"
					case o.Aborted:
						return "aborted"
					case o.Deadlocked:
						return "deadlock"
					default:
						return "clean"
					}
				},
			})
		}
	}
	return cases
}

func litmusByName(t *testing.T, name string) *litmus.Test {
	t.Helper()
	for _, lt := range litmus.Suite() {
		if lt.Name == name {
			return lt
		}
	}
	t.Fatalf("unknown litmus test %q", name)
	return nil
}

func benchByName(t *testing.T, name string) *benchprog.Benchmark {
	t.Helper()
	for _, b := range benchprog.All() {
		if b.Name == name {
			return b
		}
	}
	t.Fatalf("unknown benchmark %q", name)
	return nil
}

// TestParallelMatchesSerial is the determinism contract of the parallel
// explorer: over litmus and benchmark programs, every memory model, and
// worker counts 1, 2, and 8, the outcome counts and the Result fields
// must be bit-identical to the serial exploration — both for complete
// explorations and for runs truncated by a limit (where "the first N
// executions" must mean the same N leaves at any worker count).
func TestParallelMatchesSerial(t *testing.T) {
	for _, tc := range differentialCases(t, !testing.Short()) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, limit := range tc.limits {
				serialCounts, serialRes := Outcomes(tc.prog, tc.opts, Config{Limit: limit, Workers: 1}, tc.key)
				if serialRes.Drift != nil {
					t.Fatalf("limit %d: serial drift: %v", limit, serialRes.Drift)
				}
				for _, workers := range []int{2, 8} {
					gotCounts, gotRes := Outcomes(tc.prog, tc.opts, Config{Limit: limit, Workers: workers}, tc.key)
					if gotRes.Drift != nil {
						t.Fatalf("limit %d workers %d: drift: %v", limit, workers, gotRes.Drift)
					}
					if !reflect.DeepEqual(gotCounts, serialCounts) {
						t.Errorf("limit %d workers %d: counts diverge\n got  %v\n want %v",
							limit, workers, gotCounts, serialCounts)
					}
					if gotRes != serialRes {
						t.Errorf("limit %d workers %d: Result diverges\n got  %+v\n want %+v",
							limit, workers, gotRes, serialRes)
					}
				}
			}
		})
	}
}

// TestParallelTelemetry: the explorer's work counters flow into the
// caller's EngineCounters after a parallel exploration, and the engine
// trial counts cover every execution the explorer performed.
func TestParallelTelemetry(t *testing.T) {
	lt := litmusByName(t, "IRIW+rlx")
	var tel telemetry.EngineCounters
	opts := engine.Options{Telemetry: &tel}
	counts, res := Outcomes(lt.Program, opts, Config{Workers: 4}, func(o *engine.Outcome) string {
		return lt.Outcome(o.FinalValues)
	})
	if res.Drift != nil {
		t.Fatal(res.Drift)
	}
	if !res.Complete || len(counts) == 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
	if tel.ExploreRuns < uint64(res.Runs) {
		t.Errorf("ExploreRuns %d < merged Runs %d", tel.ExploreRuns, res.Runs)
	}
	if tel.Trials != tel.ExploreRuns {
		t.Errorf("engine Trials %d != ExploreRuns %d (every explorer execution runs on an instrumented Runner)",
			tel.Trials, tel.ExploreRuns)
	}
}

// driftProgram builds a program whose decision tree changes shape from
// run to run: a closure-captured counter adds one more store per
// execution, so replaying a recorded prefix meets different arities.
func driftProgram() *engine.Program {
	p := engine.NewProgram("drift")
	x := p.Loc("X", 0)
	n := 0
	p.AddThread(func(th *engine.Thread) {
		n++
		for i := 0; i < n; i++ {
			th.Store(x, memmodel.Value(i), memmodel.Relaxed)
		}
	})
	p.AddThread(func(th *engine.Thread) {
		th.Load(x, memmodel.Relaxed)
	})
	return p
}

// TestDriftDetectedSerial: the silent-clamp behaviour is gone — a
// nondeterministic program surfaces a structured DriftError carrying
// the offending decision index instead of silently folding executions
// together.
func TestDriftDetectedSerial(t *testing.T) {
	counts, res := Outcomes(driftProgram(), engine.Options{}, Config{Workers: 1}, func(o *engine.Outcome) string {
		return "x"
	})
	if res.Drift == nil {
		t.Fatalf("nondeterministic program explored without drift: %+v", res)
	}
	if counts != nil {
		t.Errorf("counts not discarded on drift: %v", counts)
	}
	if res.Runs != 0 || res.Complete {
		t.Errorf("drift Result not normalized: %+v", res)
	}
	if res.Drift.Index < 0 || res.Drift.Error() == "" {
		t.Errorf("malformed DriftError: %+v", res.Drift)
	}
}

// TestDriftDetectedParallel: the parallel explorer reports drift too
// (from whichever shard tripped it) rather than merging garbage.
func TestDriftDetectedParallel(t *testing.T) {
	counts, res := Outcomes(driftProgram(), engine.Options{}, Config{Workers: 4}, func(o *engine.Outcome) string {
		return "x"
	})
	if res.Drift == nil {
		t.Fatalf("nondeterministic program explored without drift: %+v", res)
	}
	if counts != nil {
		t.Errorf("counts not discarded on drift: %v", counts)
	}
}

// TestDriftReportedByExplore: the serial visitor API surfaces drift in
// its Result as well (visit has observed the pre-drift leaves).
func TestDriftReportedByExplore(t *testing.T) {
	res := Explore(driftProgram(), engine.Options{}, 0, func(*engine.Outcome) {})
	if res.Drift == nil {
		t.Fatalf("Explore missed drift: %+v", res)
	}
}

// TestExploreUntilStops: the early-stop visitor halts the walk after
// the current leaf.
func TestExploreUntilStops(t *testing.T) {
	lt := litmusByName(t, "SB+rlx")
	seen := 0
	res := ExploreUntil(lt.Program, engine.Options{}, 0, func(o *engine.Outcome) bool {
		seen++
		return seen < 3
	})
	if seen != 3 || res.Runs != 3 || res.Complete {
		t.Fatalf("early stop broken: seen=%d res=%+v", seen, res)
	}
}

// countCtx is a context whose Err() flips to context.Canceled after a
// fixed number of polls — a deterministic stand-in for a signal arriving
// mid-exploration.
type countCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *countCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestContextCancelsExploration: a canceled Config.Context stops both the
// serial and the parallel explorer between executions, marking the result
// Interrupted and incomplete while keeping the partial counts it did
// merge. An already-canceled context yields zero runs.
func TestContextCancelsExploration(t *testing.T) {
	lt := litmusByName(t, "IRIW+rlx")
	key := func(o *engine.Outcome) string { return lt.Outcome(o.FinalValues) }

	_, full := Outcomes(lt.Program, engine.Options{}, Config{Workers: 1}, key)
	if full.Drift != nil || !full.Complete {
		t.Fatalf("baseline exploration broken: %+v", full)
	}

	for _, workers := range []int{1, 4} {
		cctx := &countCtx{Context: context.Background(), after: 40}
		counts, res := Outcomes(lt.Program, engine.Options{}, Config{Workers: workers, Context: cctx}, key)
		if res.Drift != nil {
			t.Fatalf("workers %d: drift: %v", workers, res.Drift)
		}
		if !res.Interrupted || res.Complete {
			t.Fatalf("workers %d: cancellation not reported: %+v", workers, res)
		}
		if res.Runs >= full.Runs {
			t.Errorf("workers %d: interrupted run explored the full space (%d runs)", workers, res.Runs)
		}
		merged := 0
		for _, n := range counts {
			merged += n
		}
		if merged != res.Runs {
			t.Errorf("workers %d: partial counts (%d) disagree with Runs (%d)", workers, merged, res.Runs)
		}

		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		counts, res = Outcomes(lt.Program, engine.Options{}, Config{Workers: workers, Context: ctx}, key)
		if !res.Interrupted || res.Runs != 0 || len(counts) != 0 {
			t.Errorf("workers %d: pre-canceled context still explored: %+v %v", workers, res, counts)
		}
	}
}

// TestNilContextUnchanged: leaving Config.Context nil keeps the explorer
// on its zero-overhead path with identical results.
func TestNilContextUnchanged(t *testing.T) {
	lt := litmusByName(t, "SB+rlx")
	key := func(o *engine.Outcome) string { return lt.Outcome(o.FinalValues) }
	wantCounts, wantRes := Outcomes(lt.Program, engine.Options{}, Config{Workers: 2}, key)
	gotCounts, gotRes := Outcomes(lt.Program, engine.Options{}, Config{Workers: 2, Context: context.Background()}, key)
	if !reflect.DeepEqual(gotCounts, wantCounts) || gotRes != wantRes {
		t.Errorf("background context changed results: %+v vs %+v", gotRes, wantRes)
	}
}

// TestParallelLimitExactPrefix: with a limit smaller than the state
// space, the counted executions are exactly the serial explorer's first
// N leaves — checked here against an independently computed serial
// prefix rather than the Outcomes serial path, so both sides of the
// differential can't share a bug.
func TestParallelLimitExactPrefix(t *testing.T) {
	lt := litmusByName(t, "IRIW+rlx")
	const limit = 137
	want := make(map[string]int)
	n := 0
	Explore(lt.Program, engine.Options{}, limit, func(o *engine.Outcome) {
		want[lt.Outcome(o.FinalValues)]++
		n++
	})
	if n != limit {
		t.Fatalf("serial prefix short: %d", n)
	}
	for _, workers := range []int{2, 8} {
		got, res := Outcomes(lt.Program, engine.Options{}, Config{Limit: limit, Workers: workers}, func(o *engine.Outcome) string {
			return lt.Outcome(o.FinalValues)
		})
		if res.Drift != nil {
			t.Fatal(res.Drift)
		}
		if res.Runs != limit || res.Complete {
			t.Fatalf("workers %d: res %+v", workers, res)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers %d: prefix counts diverge\n got  %v\n want %v", workers, got, want)
		}
	}
}
