// Package enumerate exhaustively explores every scheduling and
// reads-from choice of a (small, loop-free) program under the engine's
// weak memory semantics — a bounded model checker built from the same
// machinery the randomized strategies use. It drives the engine with a
// scripted strategy and backtracks over the decision tree in
// depth-first order.
//
// The litmus suite uses it to verify outcome sets exactly: an outcome is
// allowed if and only if some decision sequence produces it.
//
// Every execution runs on a pooled engine.Runner (location tables,
// arenas, and coroutines are reused across leaves), and Outcomes can
// shard disjoint subtrees of the decision tree across a worker pool —
// see parallel.go. Parallel results are bit-identical to serial at any
// worker count.
//
// Enumeration assumes the program is deterministic given its decision
// sequence: replaying a prefix of recorded choices must reach decision
// points with the same arity every time. When that assumption breaks
// (a nondeterministic program body, or options that change the decision
// tree between runs), the explorer reports a DriftError in the Result
// instead of silently clamping out-of-range choices.
package enumerate

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"

	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
	"pctwm/internal/telemetry"
)

// DriftError reports that replaying a recorded decision prefix reached a
// decision point whose shape differs from the recording — the program is
// nondeterministic (its body consults state outside the engine) or the
// engine options changed between runs. Exploration aborts when drift is
// detected: the decision tree has no stable shape to enumerate.
type DriftError struct {
	// Index is the 0-based decision index at which drift was detected.
	Index int
	// Want is the arity recorded for this decision point by the previous
	// run of the same prefix (0 when the decision point itself vanished:
	// the replay run ended before making Index decisions).
	Want int
	// Got is the arity observed on replay (0 when the decision point
	// vanished).
	Got int
	// Prefix is the script being replayed when drift was detected.
	Prefix []int
}

func (e *DriftError) Error() string {
	if e.Got == 0 && e.Want != 0 {
		return fmt.Sprintf("enumerate: script drift at decision %d: replay ended before reaching it (recorded arity %d, prefix %v)",
			e.Index, e.Want, e.Prefix)
	}
	return fmt.Sprintf("enumerate: script drift at decision %d: arity %d on replay, %d recorded (prefix %v)",
		e.Index, e.Got, e.Want, e.Prefix)
}

// scripted is an engine.Strategy that follows a fixed prefix of decision
// indices and takes the first alternative beyond it, recording the number
// of alternatives at every decision point. want carries the arity the
// previous run recorded for each scripted position; any mismatch is
// drift (see DriftError).
//
// The value is reused across runs: Begin resets the per-run state, so
// one scripted per Runner suffices for a whole exploration.
type scripted struct {
	script []int
	// want[i] is the expected arity at decision point i (len(want) ==
	// len(script) always; the positions beyond the script are discovered
	// fresh and have no expectation).
	want []int
	pos  int
	// arity[i] is the number of alternatives at decision point i of the
	// current run.
	arity []int
	drift *DriftError
}

func (s *scripted) Name() string { return "enumerate" }

func (s *scripted) Begin(engine.ProgramInfo, *rand.Rand) {
	s.pos = 0
	s.arity = s.arity[:0]
	s.drift = nil
}

func (s *scripted) OnEvent(*memmodel.Event)              {}
func (s *scripted) OnThreadStart(_, _ memmodel.ThreadID) {}
func (s *scripted) OnSpin(memmodel.ThreadID)             {}

func (s *scripted) decide(n int) int {
	if s.pos < len(s.want) && s.want[s.pos] != n && s.drift == nil {
		s.drift = &DriftError{
			Index:  s.pos,
			Want:   s.want[s.pos],
			Got:    n,
			Prefix: append([]int(nil), s.script...),
		}
	}
	s.arity = append(s.arity, n)
	choice := 0
	if s.pos < len(s.script) {
		choice = s.script[s.pos]
	}
	s.pos++
	if choice >= n {
		// Out-of-range script entry: only reachable under drift (the
		// scripted choice was in range when it was recorded). Clamp so the
		// run stays well-formed — its outcome is discarded by the caller.
		if s.drift == nil {
			s.drift = &DriftError{
				Index:  s.pos - 1,
				Want:   choice + 1,
				Got:    n,
				Prefix: append([]int(nil), s.script...),
			}
		}
		choice = n - 1
	}
	return choice
}

func (s *scripted) NextThread(enabled []engine.PendingOp) memmodel.ThreadID {
	return enabled[s.decide(len(enabled))].TID
}

func (s *scripted) PickRead(rc engine.ReadContext) int {
	return s.decide(len(rc.Candidates))
}

// Result summarizes an exhaustive exploration.
//
// Runs, Complete, and Truncated are pure functions of (program, options,
// limit): the parallel explorer reports bit-identical values at every
// worker count. Drift is the exception — its Index/Prefix depend on which
// replay first tripped the detector — but its presence or absence is
// deterministic for a given program.
type Result struct {
	// Runs is the number of executions explored.
	Runs int
	// Complete is false when the exploration hit the run limit before
	// exhausting the decision tree.
	Complete bool
	// Truncated counts executions that hit the engine step limit (only
	// possible for programs with unbounded loops).
	Truncated int
	// Drift is non-nil when replaying a decision prefix observed a
	// different tree shape than the run that recorded it — the program is
	// nondeterministic and its outcome space cannot be enumerated. The
	// exploration aborted where drift was detected; Runs/Truncated cover
	// the executions visited before that (Outcomes discards counts
	// entirely and zeroes them, so serial and parallel agree).
	Drift *DriftError
	// Interrupted marks an exploration stopped early by Config.Context
	// cancellation (SIGINT/SIGTERM drain): the counts returned by
	// Outcomes are a partial prefix of the leaf set and Complete is
	// false. Unlike the other fields, the cut point depends on when the
	// cancellation landed.
	Interrupted bool
}

// Config controls an Outcomes exploration.
type Config struct {
	// Limit caps the number of executions explored (0 = unlimited). When
	// the limit cuts the tree short, the executions counted are exactly
	// the first Limit leaves in depth-first order, regardless of Workers.
	Limit int
	// Workers is the number of exploration workers: 0 selects
	// GOMAXPROCS, 1 forces the serial path. Results are bit-identical at
	// every value.
	Workers int
	// Context, when non-nil, cancels the exploration cooperatively: it is
	// polled between executions, the pool drains, and Outcomes returns
	// the partial counts with Result.Interrupted set. The engine's
	// in-flight run is never aborted (a partial execution has no
	// classifiable outcome).
	Context context.Context
}

// ctxStop adapts a context into the dfs stop hook (nil for no context).
func ctxStop(ctx context.Context) func() bool {
	if ctx == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

// resolveWorkers maps the Config.Workers convention (0 = GOMAXPROCS)
// onto a concrete worker count.
func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// subtreeResult summarizes a bounded DFS over one subtree of the
// decision tree. Exactly one of the terminal conditions holds: complete
// (every leaf under the prefix visited), capped (run limit hit), stopped
// (the stop hook or the visitor ended it), or drift.
type subtreeResult struct {
	runs      int
	truncated int
	complete  bool
	capped    bool
	stopped   bool
	drift     *DriftError
}

// dfs explores, in lexicographic (depth-first) order, every execution
// whose decision sequence extends prefix, reusing r across runs. want
// carries the recorded arity of each decision along prefix for drift
// detection. limit > 0 caps visited leaves; stop (may be nil) is polled
// between executions for cooperative early termination; visit returns
// false to stop after the current leaf. visit additionally receives the
// leaf's decision arities (engine-owned scratch, valid only during the
// call): arity[i] is the number of alternatives at the leaf's i-th
// decision point, so prod(1/arity[i]) is the exact probability a
// uniform-decision random walk reaches this leaf (see BehaviorProbs).
// tel (may be nil) counts engine executions into ExploreRuns.
//
// The steady-state loop performs no allocations of its own: the script
// and arity buffers are reused across leaves, so per-leaf cost is the
// pooled Runner execution plus the backtracking scan.
func dfs(r *engine.Runner, prefix, want []int, limit int, tel *telemetry.EngineCounters,
	stop func() bool, visit func(*engine.Outcome, []int) bool) subtreeResult {
	var res subtreeResult
	s := &scripted{}
	script := append(make([]int, 0, len(prefix)+16), prefix...)
	expect := append(make([]int, 0, len(want)+16), want...)
	for {
		if limit > 0 && res.runs >= limit {
			res.capped = true
			return res
		}
		if stop != nil && stop() {
			res.stopped = true
			return res
		}
		s.script, s.want = script, expect
		o := r.Run(s, 0)
		if tel != nil {
			tel.ExploreRuns++
		}
		if s.drift == nil && len(s.arity) < len(script) {
			// The run that recorded this script made a decision at position
			// len(s.arity); the replay ended before reaching it.
			w := 0
			if len(s.arity) < len(expect) {
				w = expect[len(s.arity)]
			}
			s.drift = &DriftError{
				Index:  len(s.arity),
				Want:   w,
				Prefix: append([]int(nil), script...),
			}
		}
		if s.drift != nil {
			res.drift = s.drift
			return res
		}
		res.runs++
		if o.Aborted {
			res.truncated++
		}
		if !visit(o, s.arity) {
			res.stopped = true
			return res
		}

		// Backtrack: find the deepest decision point at or below the
		// subtree root that still has an untaken alternative, bump it, and
		// drop everything after. Choices beyond the script length were 0.
		i := len(s.arity) - 1
		for i >= len(prefix) {
			c := 0
			if i < len(script) {
				c = script[i]
			}
			if c+1 < s.arity[i] {
				break
			}
			i--
		}
		if i < len(prefix) {
			res.complete = true
			return res
		}
		for len(script) <= i {
			script = append(script, 0)
		}
		script = script[:i+1]
		script[i]++
		expect = append(expect[:0], s.arity[:i+1]...)
	}
}

// result converts a whole-tree subtreeResult into the public form.
func (s subtreeResult) result() Result {
	return Result{
		Runs:      s.runs,
		Complete:  s.complete,
		Truncated: s.truncated,
		Drift:     s.drift,
	}
}

// Explore runs every execution of the program (up to limit runs), calling
// visit with each outcome. Programs must be small and loop-free for the
// exploration to terminate; use limit as a safety net.
//
// Explore is serial (visit observes leaves in depth-first script order
// on the caller's goroutine) but pooled: all executions share one
// engine.Runner. Use Outcomes for parallel exploration. On drift the
// exploration aborts with Result.Drift set; visit has already observed
// the pre-drift leaves.
func Explore(p *engine.Program, opts engine.Options, limit int, visit func(*engine.Outcome)) Result {
	return ExploreUntil(p, opts, limit, func(o *engine.Outcome) bool {
		visit(o)
		return true
	})
}

// ExploreUntil is Explore with early termination: visit returns false to
// stop the exploration after the current leaf (Result.Complete stays
// false). Useful for searches that only need one witness execution.
func ExploreUntil(p *engine.Program, opts engine.Options, limit int, visit func(*engine.Outcome) bool) Result {
	r := engine.NewRunner(p, opts)
	defer r.Close()
	return dfs(r, nil, nil, limit, opts.Telemetry, nil,
		func(o *engine.Outcome, _ []int) bool { return visit(o) }).result()
}

// Outcomes explores the program and classifies each execution with the
// key function, returning how many executions produced each key. With
// cfg.Workers != 1 disjoint subtrees of the decision tree are explored
// in parallel (see parallel.go); the returned counts and Result are
// bit-identical to the serial exploration at any worker count. key must
// be safe for concurrent use when cfg.Workers != 1 (a pure function of
// the outcome, like litmus.Test.Outcome).
//
// On drift the counts map is nil and Result carries only the Drift
// error: partial counts of a nondeterministic program are meaningless,
// and discarding them keeps serial and parallel output identical.
func Outcomes(p *engine.Program, opts engine.Options, cfg Config, key func(*engine.Outcome) string) (map[string]int, Result) {
	if resolveWorkers(cfg.Workers) > 1 {
		return parallelOutcomes(p, opts, cfg, key)
	}
	counts := make(map[string]int)
	r := engine.NewRunner(p, opts)
	defer r.Close()
	sub := dfs(r, nil, nil, cfg.Limit, opts.Telemetry, ctxStop(cfg.Context), func(o *engine.Outcome, _ []int) bool {
		counts[key(o)]++
		return true
	})
	if sub.drift != nil {
		return nil, Result{Drift: sub.drift}
	}
	res := sub.result()
	res.Interrupted = sub.stopped
	return counts, res
}
