// Package enumerate exhaustively explores every scheduling and
// reads-from choice of a (small, loop-free) program under the engine's
// weak memory semantics — a bounded model checker built from the same
// machinery the randomized strategies use. It drives the engine with a
// scripted strategy and backtracks over the decision tree in
// depth-first order.
//
// The litmus suite uses it to verify outcome sets exactly: an outcome is
// allowed if and only if some decision sequence produces it.
package enumerate

import (
	"math/rand"

	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// scripted is an engine.Strategy that follows a fixed prefix of decision
// indices and takes the first alternative beyond it, recording the number
// of alternatives at every decision point.
type scripted struct {
	script []int
	pos    int
	// arity[i] is the number of alternatives at decision point i of the
	// current run.
	arity []int
}

func (s *scripted) Name() string                         { return "enumerate" }
func (s *scripted) Begin(engine.ProgramInfo, *rand.Rand) {}
func (s *scripted) OnEvent(*memmodel.Event)              {}
func (s *scripted) OnThreadStart(_, _ memmodel.ThreadID) {}
func (s *scripted) OnSpin(memmodel.ThreadID)             {}

func (s *scripted) decide(n int) int {
	s.arity = append(s.arity, n)
	choice := 0
	if s.pos < len(s.script) {
		choice = s.script[s.pos]
	}
	s.pos++
	if choice >= n {
		choice = n - 1
	}
	return choice
}

func (s *scripted) NextThread(enabled []engine.PendingOp) memmodel.ThreadID {
	return enabled[s.decide(len(enabled))].TID
}

func (s *scripted) PickRead(rc engine.ReadContext) int {
	return s.decide(len(rc.Candidates))
}

// Result summarizes an exhaustive exploration.
type Result struct {
	// Runs is the number of executions explored.
	Runs int
	// Complete is false when the exploration hit the run limit before
	// exhausting the decision tree.
	Complete bool
	// Truncated counts executions that hit the engine step limit (only
	// possible for programs with unbounded loops).
	Truncated int
}

// Explore runs every execution of the program (up to limit runs), calling
// visit with each outcome. Programs must be small and loop-free for the
// exploration to terminate; use limit as a safety net.
func Explore(p *engine.Program, opts engine.Options, limit int, visit func(*engine.Outcome)) Result {
	var res Result
	script := []int{}
	for {
		if limit > 0 && res.Runs >= limit {
			return res
		}
		s := &scripted{script: script}
		o := engine.Run(p, s, 0, opts)
		res.Runs++
		if o.Aborted {
			res.Truncated++
		}
		visit(o)

		// Advance the script: find the deepest decision point that still
		// has an untaken alternative, bump it, and drop everything after.
		next := make([]int, len(s.arity))
		copy(next, script)
		for i := len(next); i < len(s.arity); i++ {
			next[i] = 0
		}
		i := len(s.arity) - 1
		for i >= 0 {
			if next[i]+1 < s.arity[i] {
				break
			}
			i--
		}
		if i < 0 {
			res.Complete = true
			return res
		}
		script = append(next[:i:i], next[i]+1)
	}
}

// Outcomes explores the program and classifies each execution with the
// key function, returning how many executions produced each key.
func Outcomes(p *engine.Program, opts engine.Options, limit int, key func(*engine.Outcome) string) (map[string]int, Result) {
	counts := make(map[string]int)
	res := Explore(p, opts, limit, func(o *engine.Outcome) {
		counts[key(o)]++
	})
	return counts, res
}
