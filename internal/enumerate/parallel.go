// Parallel exhaustive exploration: the decision tree is expanded
// serially to a shallow frontier, the disjoint subtrees below the
// frontier are sharded across a work-stealing worker pool (each worker
// owns one pooled engine.Runner), and per-subtree outcome counts are
// merged in lexicographic frontier order so the final counts and Result
// are bit-identical to a serial exploration — including where a run
// limit truncates the tree.
//
// Determinism argument. The frontier units partition the leaf set, and
// their order is the depth-first script order, so concatenating the
// per-unit leaf sequences reproduces the serial visit sequence exactly.
// Outcome counting is commutative within a unit and the merge walks
// units in order, so an unlimited exploration trivially matches serial.
// With a limit L, the serial explorer visits exactly the first L leaves;
// the merge reproduces that cut by accumulating unit run counts in
// order and re-descending the one boundary subtree that straddles leaf
// L with exactly the remaining budget (the subtree's leaves enumerate
// in the same depth-first order, so "its first k leaves" is
// well-defined and worker-count independent). Units past the cut are
// discarded; a stop flag lets their workers quit early, which changes
// only how much discarded work was performed (telemetry), never the
// merged result.
package enumerate

import (
	"sync"
	"sync/atomic"

	"pctwm/internal/engine"
	"pctwm/internal/telemetry"
)

const (
	// shardFactor sets how many frontier subtrees the expansion aims for
	// per worker. More shards mean better load balance (subtree sizes are
	// wildly skewed) at the cost of a longer serial expansion phase.
	shardFactor = 8
	// maxFrontierDepth bounds the expansion depth, guarding against
	// degenerate trees (long arity-1 chains) that would otherwise expand
	// forever without producing new shards.
	maxFrontierDepth = 64
)

// unit is one shard of the decision tree in frontier order: either a
// single leaf already explored during expansion, or an unexplored
// subtree rooted at prefix.
type unit struct {
	prefix []int
	// want holds the recorded arity at each prefix position (drift
	// detection on re-descent).
	want []int
	leaf bool
	// Discovery-run classification, valid for leaf units only.
	key       string
	truncated bool
}

// expNode is a frontier node during expansion. tail holds the discovery
// run's recorded arities below prefix (its all-zeros descent); an empty
// tail means the run ended exactly at prefix — the node is a leaf.
type expNode struct {
	prefix    []int
	want      []int
	tail      []int
	key       string
	truncated bool
}

func appendCopy(s []int, v int) []int {
	out := make([]int, len(s)+1)
	copy(out, s)
	out[len(s)] = v
	return out
}

// expandFrontier grows the frontier level by level until it holds at
// least target units, the tree is fully expanded, or the depth budget
// runs out. Each internal node's 0-child inherits the parent's
// discovery run (the run that revealed the node already recorded the
// arities of the whole all-zeros descent below it), so expansion costs
// one engine run per non-zero child only — the trie of recorded
// arities is what lets re-descents skip already-known structure.
func expandFrontier(r *engine.Runner, target int, keyFn func(*engine.Outcome) string,
	tel *telemetry.EngineCounters, stop func() bool) (units []unit, interrupted bool, drift *DriftError) {
	probe := func(prefix, want []int) (*expNode, *DriftError) {
		s := &scripted{script: prefix, want: want}
		o := r.Run(s, 0)
		if tel != nil {
			tel.ExploreRuns++
		}
		if s.drift == nil && len(s.arity) < len(prefix) {
			w := 0
			if len(s.arity) < len(want) {
				w = want[len(s.arity)]
			}
			s.drift = &DriftError{Index: len(s.arity), Want: w, Prefix: append([]int(nil), prefix...)}
		}
		if s.drift != nil {
			return nil, s.drift
		}
		return &expNode{
			prefix:    prefix,
			want:      want,
			tail:      append([]int(nil), s.arity[len(prefix):]...),
			key:       keyFn(o),
			truncated: o.Aborted,
		}, nil
	}

	if stop != nil && stop() {
		return nil, true, nil
	}
	root, derr := probe(nil, nil)
	if derr != nil {
		return nil, false, derr
	}
	level := []*expNode{root}
	for depth := 0; depth < maxFrontierDepth && len(level) < target; depth++ {
		if stop != nil && stop() {
			return nil, true, nil
		}
		internal := 0
		for _, n := range level {
			if len(n.tail) > 0 {
				internal++
			}
		}
		if internal == 0 {
			break
		}
		next := make([]*expNode, 0, 2*len(level))
		for _, n := range level {
			if len(n.tail) == 0 {
				next = append(next, n)
				continue
			}
			arity := n.tail[0]
			// Child 0 is the continuation of the discovery run.
			next = append(next, &expNode{
				prefix:    appendCopy(n.prefix, 0),
				want:      appendCopy(n.want, arity),
				tail:      n.tail[1:],
				key:       n.key,
				truncated: n.truncated,
			})
			for c := 1; c < arity; c++ {
				child, derr := probe(appendCopy(n.prefix, c), appendCopy(n.want, arity))
				if derr != nil {
					return nil, false, derr
				}
				next = append(next, child)
			}
		}
		level = next
	}
	units = make([]unit, len(level))
	for i, n := range level {
		units[i] = unit{
			prefix:    n.prefix,
			want:      n.want,
			leaf:      len(n.tail) == 0,
			key:       n.key,
			truncated: n.truncated,
		}
	}
	return units, false, nil
}

// stealQueues distributes unit indices over per-worker FIFO queues. A
// worker pops its own queue from the front; when empty it steals from
// the back of the longest other queue, keeping stolen subtrees as far
// as possible from the victim's current position.
type stealQueues struct {
	mu sync.Mutex
	qs [][]int
}

func newStealQueues(indices []int, workers int) *stealQueues {
	sq := &stealQueues{qs: make([][]int, workers)}
	for j, idx := range indices {
		w := j % workers
		sq.qs[w] = append(sq.qs[w], idx)
	}
	return sq
}

func (q *stealQueues) pop(w int) (idx int, stole, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if own := q.qs[w]; len(own) > 0 {
		idx = own[0]
		q.qs[w] = own[1:]
		return idx, false, true
	}
	victim, best := -1, 0
	for v := range q.qs {
		if l := len(q.qs[v]); l > best {
			victim, best = v, l
		}
	}
	if victim < 0 {
		return 0, false, false
	}
	last := len(q.qs[victim]) - 1
	idx = q.qs[victim][last]
	q.qs[victim] = q.qs[victim][:last]
	return idx, true, true
}

// explorePool coordinates the workers: per-unit results in frontier
// order, a coverage monitor that raises the stop flag once the ordered
// prefix of finalized units covers the run limit, and a drift flag that
// aborts everything.
type explorePool struct {
	units   []unit
	results []*subtreeResult
	counts  []map[string]int
	limit   int
	mu      sync.Mutex
	stop    atomic.Bool
}

func (e *explorePool) stopped() bool { return e.stop.Load() }

// finish records a unit's exploration result and re-evaluates coverage.
func (e *explorePool) finish(i int, r *subtreeResult, m map[string]int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.results[i] = r
	e.counts[i] = m
	if r.drift != nil {
		e.stop.Store(true)
		return
	}
	e.updateCoverage()
}

// updateCoverage raises the stop flag when the contiguous prefix of
// finalized units already accounts for limit executions: everything
// after the covering point will be discarded by the merge, so workers
// still exploring it may quit. Called with mu held.
func (e *explorePool) updateCoverage() {
	if e.limit <= 0 {
		return
	}
	covered := 0
	for i := range e.units {
		r := e.results[i]
		if r == nil || r.stopped {
			return
		}
		covered += r.runs
		if covered >= e.limit {
			e.stop.Store(true)
			return
		}
	}
}

// parallelOutcomes is the Workers != 1 path of Outcomes.
func parallelOutcomes(p *engine.Program, opts engine.Options, cfg Config, key func(*engine.Outcome) string) (map[string]int, Result) {
	workers := resolveWorkers(cfg.Workers)

	// The caller's telemetry must not be written concurrently: strip it,
	// give the coordinator and every worker their own shard, and merge
	// after the pool drains (the RunCampaign contract).
	base := opts.Telemetry
	workerOpts := opts
	workerOpts.Telemetry = nil
	coordOpts := opts
	var coordTel *telemetry.EngineCounters
	if base != nil {
		coordTel = &telemetry.EngineCounters{}
		coordOpts.Telemetry = coordTel
	}
	var shards []*telemetry.EngineCounters
	mergeTel := func() {
		if base == nil {
			return
		}
		for _, s := range shards {
			if s != nil {
				base.Merge(s)
			}
		}
		base.Merge(coordTel)
	}

	// Phase 1: serial frontier expansion on the coordinator's Runner.
	ctxDone := ctxStop(cfg.Context)
	rc := engine.NewRunner(p, coordOpts)
	defer rc.Close()
	units, interrupted, derr := expandFrontier(rc, workers*shardFactor, key, coordTel, ctxDone)
	if derr != nil {
		mergeTel()
		return nil, Result{Drift: derr}
	}
	if interrupted {
		mergeTel()
		return make(map[string]int), Result{Interrupted: true}
	}

	pool := &explorePool{
		units:   units,
		results: make([]*subtreeResult, len(units)),
		counts:  make([]map[string]int, len(units)),
		limit:   cfg.Limit,
	}
	var subtrees []int
	for i, u := range units {
		if u.leaf {
			r := &subtreeResult{runs: 1, complete: true}
			if u.truncated {
				r.truncated = 1
			}
			pool.results[i] = r
			pool.counts[i] = map[string]int{u.key: 1}
		} else {
			subtrees = append(subtrees, i)
		}
	}

	// Phase 2: work-stealing pool over the subtree shards.
	if nw := min(workers, len(subtrees)); nw > 0 {
		pool.mu.Lock()
		pool.updateCoverage() // the leaf prefix alone may cover the limit
		pool.mu.Unlock()
		sq := newStealQueues(subtrees, nw)
		if base != nil {
			shards = make([]*telemetry.EngineCounters, nw)
		}
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wopts := workerOpts
				var shard *telemetry.EngineCounters
				if base != nil {
					shard = &telemetry.EngineCounters{}
					shards[w] = shard
					wopts.Telemetry = shard
				}
				r := engine.NewRunner(p, wopts)
				defer r.Close()
				for {
					idx, stole, ok := sq.pop(w)
					if !ok {
						return
					}
					if stole && shard != nil {
						shard.ExploreSteals++
					}
					if pool.stopped() || (ctxDone != nil && ctxDone()) {
						// Covered by earlier shards (or drift): skip without
						// exploring. The merge never reaches this unit.
						if shard != nil {
							shard.ExplorePruned++
						}
						pool.finish(idx, &subtreeResult{stopped: true}, nil)
						continue
					}
					u := units[idx]
					m := make(map[string]int)
					wstop := pool.stopped
					if ctxDone != nil {
						wstop = func() bool { return pool.stopped() || ctxDone() }
					}
					sub := dfs(r, u.prefix, u.want, pool.limit, shard, wstop,
						func(o *engine.Outcome, _ []int) bool {
							m[key(o)]++
							return true
						})
					if sub.stopped && shard != nil {
						shard.ExplorePruned++
					}
					pool.finish(idx, &sub, m)
				}
			}(w)
		}
		wg.Wait()
	}

	// Any drift aborts the whole exploration; report the one from the
	// lexicographically earliest unit for stability.
	for i := range units {
		if r := pool.results[i]; r != nil && r.drift != nil {
			mergeTel()
			return nil, Result{Drift: r.drift}
		}
	}

	// Phase 3: deterministic merge in frontier order.
	counts := make(map[string]int)
	res := Result{Complete: true}
	for i := range units {
		if ctxDone != nil && ctxDone() {
			// Canceled mid-merge: report the partial prefix merged so far
			// without re-descending the remaining units (a re-descent would
			// defeat the cancellation).
			res.Complete = false
			res.Interrupted = true
			break
		}
		if cfg.Limit > 0 && res.Runs >= cfg.Limit {
			// The limit cut the tree before this unit; serial would have
			// stopped here too.
			res.Complete = false
			break
		}
		r, m := pool.results[i], pool.counts[i]
		remaining := 0
		if cfg.Limit > 0 {
			remaining = cfg.Limit - res.Runs
		}
		if r == nil || r.stopped || (cfg.Limit > 0 && r.runs > remaining) {
			// The unit was skipped, stopped early, or explored past the
			// budget that is actually left for it: re-descend it serially
			// with exactly the remaining budget so the merged counts match
			// the serial cut bit for bit. Cancellation still stops the
			// re-descent between executions.
			m = make(map[string]int)
			sub := dfs(rc, units[i].prefix, units[i].want, remaining, coordTel, ctxDone,
				func(o *engine.Outcome, _ []int) bool {
					m[key(o)]++
					return true
				})
			if sub.drift != nil {
				mergeTel()
				return nil, Result{Drift: sub.drift}
			}
			r = &sub
		}
		for k, n := range m {
			counts[k] += n
		}
		res.Runs += r.runs
		res.Truncated += r.truncated
		if !r.complete {
			res.Complete = false
		}
		if r.stopped {
			res.Complete = false
			res.Interrupted = true
			break
		}
	}
	mergeTel()
	return counts, res
}
