package enumerate

import (
	"flag"
	"fmt"
	"sort"
	"strings"
	"testing"

	"pctwm/internal/axiom"
	"pctwm/internal/engine"
	"pctwm/internal/litmus"
	"pctwm/internal/memmodel"
)

// exploreWorkers sets the worker count for this package's exhaustive
// explorations (0 = GOMAXPROCS). Results are bit-identical at any value
// (TestParallelMatchesSerial pins that).
var exploreWorkers = flag.Int("explore.workers", 0, "exhaustive-exploration workers (0 = GOMAXPROCS)")

// TestExploreCountsTinyProgram: a single thread with one two-candidate
// read has exactly two executions.
func TestExploreCountsTinyProgram(t *testing.T) {
	p := engine.NewProgram("tiny")
	x := p.Loc("X", 0)
	r := p.Loc("r", -1)
	p.AddThread(func(th *engine.Thread) {
		th.Store(x, 1, memmodel.Relaxed)
	})
	p.AddThread(func(th *engine.Thread) {
		th.Store(r, th.Load(x, memmodel.Relaxed), memmodel.NonAtomic)
	})
	seen := map[memmodel.Value]bool{}
	res := Explore(p, engine.Options{}, 0, func(o *engine.Outcome) {
		seen[o.FinalValues["r"]] = true
	})
	if !res.Complete {
		t.Fatal("exploration incomplete")
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("missing outcomes: %v (runs %d)", seen, res.Runs)
	}
}

// exhaustive litmus verification: the set of reachable outcomes must
// exactly equal the declared Allowed set (for tests that declare one),
// and must exclude every Forbidden outcome.
func TestLitmusOutcomeSetsExact(t *testing.T) {
	for _, lt := range litmus.Suite() {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			counts, res := Outcomes(lt.Program, engine.Options{}, Config{Limit: 2_000_000, Workers: *exploreWorkers}, func(o *engine.Outcome) string {
				return lt.Outcome(o.FinalValues)
			})
			if res.Drift != nil {
				t.Fatal(res.Drift)
			}
			if !res.Complete {
				t.Skipf("state space too large (%d runs)", res.Runs)
			}
			if res.Truncated > 0 {
				t.Fatalf("%d truncated executions", res.Truncated)
			}
			got := make([]string, 0, len(counts))
			for k := range counts {
				got = append(got, k)
			}
			sort.Strings(got)

			if len(lt.Allowed) > 0 {
				want := append([]string(nil), lt.Allowed...)
				sort.Strings(want)
				if strings.Join(got, ";") != strings.Join(want, ";") {
					t.Fatalf("reachable outcomes = %v\nwant exactly   = %v", got, want)
				}
			}
			for _, f := range lt.Forbidden {
				if counts[f] > 0 {
					t.Fatalf("forbidden outcome %q reachable (%d times)", f, counts[f])
				}
			}
			for _, wk := range lt.Weak {
				if counts[wk] == 0 {
					t.Fatalf("weak outcome %q unreachable", wk)
				}
			}
			t.Logf("%s: %d executions, %d distinct outcomes", lt.Name, res.Runs, len(counts))
		})
	}
}

// TestExhaustiveConsistency: every execution of every litmus test, under
// every decision sequence, satisfies the C11 consistency axioms — the
// strongest form of the soundness invariant.
func TestExhaustiveConsistency(t *testing.T) {
	for _, lt := range litmus.Suite() {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			checked := 0
			res := Explore(lt.Program, engine.Options{Record: true}, 30000, func(o *engine.Outcome) {
				g, err := axiom.FromRecording(o.Recording)
				if err != nil {
					t.Fatal(err)
				}
				if vs := g.Check(); len(vs) > 0 {
					t.Fatalf("inconsistent execution: %v", vs)
				}
				checked++
			})
			t.Logf("%s: %d executions checked (complete=%v)", lt.Name, checked, res.Complete)
		})
	}
}

// TestOutcomesHelper covers the classification helper.
func TestOutcomesHelper(t *testing.T) {
	p := engine.NewProgram("h")
	x := p.Loc("X", 0)
	p.AddThread(func(th *engine.Thread) { th.Store(x, 1, memmodel.Relaxed) })
	counts, res := Outcomes(p, engine.Options{}, Config{}, func(o *engine.Outcome) string {
		return fmt.Sprintf("X=%d", o.FinalValues["X"])
	})
	if !res.Complete || counts["X=1"] != res.Runs {
		t.Fatalf("counts %v res %+v", counts, res)
	}
}

// TestLimitStopsExploration: the run limit is honored.
func TestLimitStopsExploration(t *testing.T) {
	lt := litmus.IRIWRelaxed()
	res := Explore(lt.Program, engine.Options{}, 10, func(*engine.Outcome) {})
	if res.Complete || res.Runs != 10 {
		t.Fatalf("limit ignored: %+v", res)
	}
}
