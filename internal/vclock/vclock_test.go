package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	var v VC
	if v.Get(3) != 0 || v.Len() != 0 {
		t.Fatal("zero clock not empty")
	}
	if n := v.Tick(2); n != 1 {
		t.Fatalf("Tick = %d, want 1", n)
	}
	v.Set(0, 5)
	if v.Get(0) != 5 || v.Get(2) != 1 {
		t.Fatalf("components wrong: %s", v)
	}
	c := v.Clone()
	c.Tick(0)
	if v.Get(0) != 5 {
		t.Fatal("Clone aliases original")
	}
	if s := v.String(); s != "<5,0,1>" {
		t.Fatalf("String = %q", s)
	}
}

func TestLeqAndConcurrent(t *testing.T) {
	var a, b VC
	a.Set(0, 1)
	b.Set(1, 1)
	if a.Leq(b) || b.Leq(a) {
		t.Fatal("disjoint clocks should not be ordered")
	}
	if !a.Concurrent(b) {
		t.Fatal("disjoint clocks should be concurrent")
	}
	j := a.Clone()
	j.Join(b)
	if !a.Leq(j) || !b.Leq(j) || j.Concurrent(a) {
		t.Fatal("join not an upper bound")
	}
}

func TestHappensBefore(t *testing.T) {
	var v VC
	v.Set(2, 7)
	if !HappensBefore(2, 7, v) || !HappensBefore(2, 3, v) {
		t.Fatal("covered epoch should happen-before")
	}
	if HappensBefore(2, 8, v) || HappensBefore(1, 1, v) {
		t.Fatal("uncovered epoch should not happen-before")
	}
}

func randomVC(r *rand.Rand) VC {
	var v VC
	for i, n := 0, r.Intn(5); i < n; i++ {
		v.Set(r.Intn(4), int32(r.Intn(10)))
	}
	return v
}

// TestJoinLattice property-checks the semilattice laws of Join.
func TestJoinLattice(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomVC(r), randomVC(r), randomVC(r)

		ab := a.Clone()
		ab.Join(b)
		ba := b.Clone()
		ba.Join(a)
		if !ab.Leq(ba) || !ba.Leq(ab) {
			return false // commutativity
		}
		abc1 := ab.Clone()
		abc1.Join(c)
		bc := b.Clone()
		bc.Join(c)
		abc2 := a.Clone()
		abc2.Join(bc)
		if !abc1.Leq(abc2) || !abc2.Leq(abc1) {
			return false // associativity
		}
		aa := a.Clone()
		aa.Join(a)
		return aa.Leq(a) && a.Leq(aa) && a.Leq(ab) && b.Leq(ab)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTickMonotone: ticking strictly increases the own component and
// leaves others alone.
func TestTickMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomVC(r)
		i := r.Intn(4)
		before := v.Clone()
		v.Tick(i)
		if v.Get(i) != before.Get(i)+1 {
			return false
		}
		for j := 0; j < 4; j++ {
			if j != i && v.Get(j) != before.Get(j) {
				return false
			}
		}
		return before.Leq(v) && !v.Leq(before)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
