// Package vclock implements vector clocks over thread identifiers. The
// engine threads them along every synchronizes-with edge so that
// happens-before between arbitrary events is decidable — the basis of both
// the data-race detector and the recorded execution graphs.
package vclock

import (
	"fmt"
	"strings"
)

// VC is a vector clock: per-thread logical times. The zero value is the
// empty clock (all components zero). VCs are small dense slices indexed by
// thread id; executions in this repository have tens of threads at most.
type VC struct {
	c []int32
}

// New returns an empty clock.
func New() VC { return VC{} }

// Get returns the component for thread t.
func (v VC) Get(t int) int32 {
	if t < len(v.c) {
		return v.c[t]
	}
	return 0
}

func (v *VC) grow(t int) {
	if t < len(v.c) {
		return
	}
	n := make([]int32, t+1)
	copy(n, v.c)
	v.c = n
}

// Set assigns component t to value n.
func (v *VC) Set(t int, n int32) {
	v.grow(t)
	v.c[t] = n
}

// Tick increments component t and returns the new value.
func (v *VC) Tick(t int) int32 {
	v.grow(t)
	v.c[t]++
	return v.c[t]
}

// Join merges other into v pointwise (least upper bound).
func (v *VC) Join(other VC) {
	if len(other.c) > len(v.c) {
		v.grow(len(other.c) - 1)
	}
	for i, n := range other.c {
		if n > v.c[i] {
			v.c[i] = n
		}
	}
}

// Clone returns an independent copy.
func (v VC) Clone() VC {
	if len(v.c) == 0 {
		return VC{}
	}
	c := make([]int32, len(v.c))
	copy(c, v.c)
	return VC{c: c}
}

// Leq reports v ⊑ other pointwise: v happens-before-or-equals other.
func (v VC) Leq(other VC) bool {
	for i, n := range v.c {
		if n == 0 {
			continue
		}
		if i >= len(other.c) || n > other.c[i] {
			return false
		}
	}
	return true
}

// HappensBefore reports whether the epoch (t, n) — event n of thread t —
// is ordered before the point described by clock other.
func HappensBefore(t int, n int32, other VC) bool {
	return n <= other.Get(t)
}

// Concurrent reports whether neither clock is ⊑ the other.
func (v VC) Concurrent(other VC) bool {
	return !v.Leq(other) && !other.Leq(v)
}

// Len returns the number of tracked components.
func (v VC) Len() int { return len(v.c) }

// String renders the clock as ⟨c0,c1,…⟩.
func (v VC) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, n := range v.c {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", n)
	}
	b.WriteByte('>')
	return b.String()
}
