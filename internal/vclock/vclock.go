// Package vclock implements vector clocks over thread identifiers. The
// engine threads them along every synchronizes-with edge so that
// happens-before between arbitrary events is decidable — the basis of both
// the data-race detector and the recorded execution graphs.
package vclock

import (
	"fmt"
	"strings"
)

// VC is a vector clock: per-thread logical times. The zero value is the
// empty clock (all components zero). VCs are small dense slices indexed by
// thread id; executions in this repository have tens of threads at most.
type VC struct {
	c []int32
}

// New returns an empty clock.
func New() VC { return VC{} }

// Get returns the component for thread t.
func (v VC) Get(t int) int32 {
	if t < len(v.c) {
		return v.c[t]
	}
	return 0
}

func (v *VC) grow(t int) {
	if t < len(v.c) {
		return
	}
	if t < cap(v.c) {
		// Reuse slack reclaimed by Reset, zeroing stale entries.
		old := len(v.c)
		v.c = v.c[:t+1]
		for i := old; i <= t; i++ {
			v.c[i] = 0
		}
		return
	}
	n := make([]int32, t+1)
	copy(n, v.c)
	v.c = n
}

// Set assigns component t to value n.
func (v *VC) Set(t int, n int32) {
	v.grow(t)
	v.c[t] = n
}

// Tick increments component t and returns the new value.
func (v *VC) Tick(t int) int32 {
	v.grow(t)
	v.c[t]++
	return v.c[t]
}

// Join merges other into v pointwise (least upper bound).
func (v *VC) Join(other VC) {
	if len(other.c) > len(v.c) {
		v.grow(len(other.c) - 1)
	}
	for i, n := range other.c {
		if n > v.c[i] {
			v.c[i] = n
		}
	}
}

// Clone returns an independent copy. Hot paths should prefer Arena.Clone,
// which recycles backing arrays.
func (v VC) Clone() VC {
	if len(v.c) == 0 {
		return VC{}
	}
	c := make([]int32, len(v.c))
	copy(c, v.c)
	return VC{c: c}
}

// CopyFrom makes v an exact copy of other, reusing v's backing array when
// it is large enough.
func (v *VC) CopyFrom(other VC) {
	n := len(other.c)
	if cap(v.c) < n {
		v.c = make([]int32, n)
	} else {
		v.c = v.c[:n]
	}
	copy(v.c, other.c)
}

// Reset empties the clock, keeping the backing array for reuse.
func (v *VC) Reset() {
	v.c = v.c[:0]
}

// Leq reports v ⊑ other pointwise: v happens-before-or-equals other.
func (v VC) Leq(other VC) bool {
	for i, n := range v.c {
		if n == 0 {
			continue
		}
		if i >= len(other.c) || n > other.c[i] {
			return false
		}
	}
	return true
}

// HappensBefore reports whether the epoch (t, n) — event n of thread t —
// is ordered before the point described by clock other.
func HappensBefore(t int, n int32, other VC) bool {
	return n <= other.Get(t)
}

// Concurrent reports whether neither clock is ⊑ the other.
func (v VC) Concurrent(other VC) bool {
	return !v.Leq(other) && !other.Leq(v)
}

// Len returns the number of tracked components.
func (v VC) Len() int { return len(v.c) }

// String renders the clock as ⟨c0,c1,…⟩.
func (v VC) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, n := range v.c {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", n)
	}
	b.WriteByte('>')
	return b.String()
}

// Arena recycles vector-clock backing arrays through a plain freelist. The
// engine publishes a clock per write event along synchronizes-with edges;
// with an arena, repeated executions reuse the arrays released by the
// previous run (see Runner in internal/engine).
//
// The freelist is unsynchronized on purpose: each engine owns one arena and
// its accesses are serialized by the scheduler baton. The zero value is
// ready to use.
type Arena struct {
	free [][]int32
	// max is the rounded-up high-water capacity requested from this arena;
	// fresh arrays are allocated at max so the freelist converges on arrays
	// that fit every later request (see ViewArena in internal/memmodel).
	max int
}

// get returns a zero-length slice with capacity ≥ n, preferring recycled
// arrays. Fresh arrays are allocated at the arena's high-water capacity, so
// the freelist converges quickly.
func (a *Arena) get(n int) []int32 {
	if n > a.max {
		c := 8
		for c < n {
			c *= 2
		}
		a.max = c
	}
	for l := len(a.free); l > 0; l-- {
		s := a.free[l-1]
		a.free[l-1] = nil
		a.free = a.free[:l-1]
		if cap(s) >= n {
			return s
		}
	}
	c := a.max
	if c < 8 {
		c = 8
	}
	return make([]int32, 0, c)
}

// Clone returns an independent copy of v backed by a recycled array. Like
// ViewArena.Clone, the result always owns an arena array even when v is
// empty, so clones grown afterwards (Join on an RMW's published clock) and
// then Released return arena storage instead of growing the freelist with
// arrays that were never taken from it.
func (a *Arena) Clone(v VC) VC {
	n := len(v.c)
	c := a.get(n)[:n]
	copy(c, v.c)
	return VC{c: c}
}

// Release returns v's backing array to the arena and empties v. Released
// clocks must not be read again.
func (a *Arena) Release(v *VC) {
	if cap(v.c) > 0 {
		a.free = append(a.free, v.c[:0])
	}
	v.c = nil
}
