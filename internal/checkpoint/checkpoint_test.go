package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// countObserver records observer callbacks for assertions.
type countObserver struct {
	mu                                    sync.Mutex
	written, retried, recovered, degraded int
}

func (o *countObserver) CheckpointWritten() { o.mu.Lock(); o.written++; o.mu.Unlock() }
func (o *countObserver) CheckpointRetried() { o.mu.Lock(); o.retried++; o.mu.Unlock() }
func (o *countObserver) CheckpointCorruptRecovered() {
	o.mu.Lock()
	o.recovered++
	o.mu.Unlock()
}
func (o *countObserver) CheckpointDegraded() { o.mu.Lock(); o.degraded++; o.mu.Unlock() }

func newStore(t *testing.T) (*Store, *countObserver) {
	t.Helper()
	obs := &countObserver{}
	return &Store{Dir: filepath.Join(t.TempDir(), "ckpt"), Backoff: time.Microsecond, Observer: obs}, obs
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	payload := []byte(`{ "trials": 42,  "note": "a<b&c>d" }`)
	data, err := Encode("cell-1", 7, payload)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, gen, err := DecodeEnvelope(data, "cell-1")
	if err != nil {
		t.Fatalf("DecodeEnvelope: %v", err)
	}
	if gen != 7 {
		t.Fatalf("gen = %d, want 7", gen)
	}
	want := `{"trials":42,"note":"a<b&c>d"}`
	if string(got) != want {
		t.Fatalf("payload = %s, want %s", got, want)
	}
}

func TestEncodeRejectsInvalidJSON(t *testing.T) {
	if _, err := Encode("k", 1, []byte(`{"unclosed":`)); err == nil {
		t.Fatal("Encode accepted invalid JSON payload")
	}
}

func TestDecodeEnvelopeRejects(t *testing.T) {
	good, err := Encode("key", 3, []byte(`{"n":1}`))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	cases := []struct {
		name string
		data []byte
		key  string
	}{
		{"garbage", []byte("not json at all"), "key"},
		{"truncated", good[:len(good)/2], "key"},
		{"empty", nil, "key"},
		{"bad magic", []byte(`{"magic":"nope","version":1,"key":"key","gen":1,"checksum_fnv1a64":"0","payload":{}}`), "key"},
		{"stale version", bytes.Replace(good, []byte(`"version":1`), []byte(`"version":99`), 1), "key"},
		{"key mismatch", good, "other-key"},
		{"flipped checksum bit", bytes.Replace(good, []byte(`"n":1`), []byte(`"n":2`), 1), "key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := DecodeEnvelope(tc.data, tc.key)
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *CorruptError", err)
			}
			if ce.Error() == "" {
				t.Fatal("empty CorruptError message")
			}
		})
	}
	// key "" skips the key check.
	if _, _, err := DecodeEnvelope(good, ""); err != nil {
		t.Fatalf("DecodeEnvelope with empty key: %v", err)
	}
}

func TestStoreSaveLoadGenerations(t *testing.T) {
	s, obs := newStore(t)
	for i := 1; i <= 5; i++ {
		gen, err := s.Save("k", []byte(fmt.Sprintf(`{"i":%d}`, i)))
		if err != nil {
			t.Fatalf("Save %d: %v", i, err)
		}
		if gen != uint64(i) {
			t.Fatalf("Save %d returned gen %d", i, gen)
		}
	}
	payload, gen, err := s.Load("k")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if gen != 5 || string(payload) != `{"i":5}` {
		t.Fatalf("Load = gen %d payload %s", gen, payload)
	}
	// GC keeps only the last 2 generations.
	if gens := s.generations(); len(gens) != 2 || gens[0] != 4 || gens[1] != 5 {
		t.Fatalf("generations after GC = %v, want [4 5]", gens)
	}
	if obs.written != 5 {
		t.Fatalf("written = %d, want 5", obs.written)
	}
}

func TestStoreLoadEmpty(t *testing.T) {
	s, _ := newStore(t)
	if _, _, err := s.Load("k"); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("Load on empty store: %v, want ErrNoCheckpoint", err)
	}
}

func TestStoreFallsBackPastCorruptNewest(t *testing.T) {
	s, obs := newStore(t)
	if _, err := s.Save("k", []byte(`{"i":1}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save("k", []byte(`{"i":2}`)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest generation in place (truncate to half).
	newest := filepath.Join(s.Dir, genName(2))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	payload, gen, err := s.Load("k")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if gen != 1 || string(payload) != `{"i":1}` {
		t.Fatalf("Load = gen %d payload %s, want gen 1 {\"i\":1}", gen, payload)
	}
	if obs.recovered != 1 {
		t.Fatalf("recovered = %d, want 1", obs.recovered)
	}
}

func TestStoreAllGenerationsCorrupt(t *testing.T) {
	s, _ := newStore(t)
	if _, err := s.Save("k", []byte(`{"i":1}`)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir, genName(1))
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := s.Load("k")
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
	if ce.Path != path || ce.Gen != 1 {
		t.Fatalf("CorruptError path/gen = %q/%d, want %q/1", ce.Path, ce.Gen, path)
	}
}

func TestStoreRetriesTransientWriteErrors(t *testing.T) {
	ffs := &FaultFS{}
	obs := &countObserver{}
	s := &Store{FS: ffs, Dir: filepath.Join(t.TempDir(), "ckpt"), Backoff: time.Microsecond, Observer: obs}
	ffs.FailWrites(2, errors.New("injected ENOSPC"))
	if _, err := s.Save("k", []byte(`{"i":1}`)); err != nil {
		t.Fatalf("Save with 2 transient failures: %v", err)
	}
	if obs.retried != 2 {
		t.Fatalf("retried = %d, want 2", obs.retried)
	}
	if _, gen, err := s.Load("k"); err != nil || gen != 1 {
		t.Fatalf("Load after retried save: gen %d err %v", gen, err)
	}
}

func TestStoreExhaustsRetriesOnPermanentError(t *testing.T) {
	ffs := &FaultFS{}
	s := &Store{FS: ffs, Dir: filepath.Join(t.TempDir(), "ckpt"), Attempts: 3, Backoff: time.Microsecond}
	werr := errors.New("injected EACCES")
	ffs.SetPermanentError(werr)
	if _, err := s.Save("k", []byte(`{"i":1}`)); !errors.Is(err, werr) {
		t.Fatalf("Save under permanent error = %v, want wrapped %v", err, werr)
	}
}

func TestStoreSurvivesTornWrite(t *testing.T) {
	ffs := &FaultFS{}
	obs := &countObserver{}
	s := &Store{FS: ffs, Dir: filepath.Join(t.TempDir(), "ckpt"), Backoff: time.Microsecond, Observer: obs}
	if _, err := s.Save("k", []byte(`{"i":1}`)); err != nil {
		t.Fatal(err)
	}
	// The next write tears: half the bytes land, success is reported.
	ffs.TearWrites(1)
	if _, err := s.Save("k", []byte(`{"i":2}`)); err != nil {
		t.Fatalf("torn Save reported error: %v", err)
	}
	payload, gen, err := s.Load("k")
	if err != nil {
		t.Fatalf("Load after torn write: %v", err)
	}
	if gen != 1 || string(payload) != `{"i":1}` {
		t.Fatalf("Load = gen %d payload %s, want fallback to gen 1", gen, payload)
	}
	if obs.recovered != 1 {
		t.Fatalf("recovered = %d, want 1", obs.recovered)
	}
}

func TestWriteDurableRetries(t *testing.T) {
	ffs := &FaultFS{}
	obs := &countObserver{}
	path := filepath.Join(t.TempDir(), "sink", "out.json")
	ffs.FailRenames(1, errors.New("injected EIO"))
	if err := WriteDurable(ffs, path, []byte("payload"), obs); err != nil {
		t.Fatalf("WriteDurable: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "payload" {
		t.Fatalf("read back: %s, %v", data, err)
	}
	if obs.retried != 1 {
		t.Fatalf("retried = %d, want 1", obs.retried)
	}
}

func TestStoreRejectsForeignKey(t *testing.T) {
	s, _ := newStore(t)
	if _, err := s.Save("campaign-a", []byte(`{"i":1}`)); err != nil {
		t.Fatal(err)
	}
	_, _, err := s.Load("campaign-b")
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("cross-campaign Load = %v, want *CorruptError", err)
	}
	// LoadLatest skips the key check.
	if _, _, err := s.LoadLatest(); err != nil {
		t.Fatalf("LoadLatest: %v", err)
	}
}

func TestParseGen(t *testing.T) {
	if g, ok := parseGen(genName(12)); !ok || g != 12 {
		t.Fatalf("parseGen(genName(12)) = %d, %v", g, ok)
	}
	for _, bad := range []string{"gen-.ckpt", "gen-12", "12.ckpt", "gen-x.ckpt", "gen--1.ckpt"} {
		if _, ok := parseGen(bad); ok {
			t.Fatalf("parseGen(%q) accepted", bad)
		}
	}
}
