package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

const (
	// Magic identifies a checkpoint envelope; anything else under a
	// checkpoint directory is garbage (a torn write, a stray file) and is
	// rejected with a CorruptError instead of being misinterpreted.
	Magic = "pctwm-checkpoint"
	// Version is the current envelope format version. Loaders reject
	// other versions as corrupt (stale-version detection): a campaign
	// must never resume from state written by an incompatible build.
	Version = 1
)

// ErrNoCheckpoint is returned by Load when the store's directory holds
// no checkpoint at all — a fresh campaign, not a failure.
var ErrNoCheckpoint = errors.New("checkpoint: no checkpoint found")

// CorruptError describes a checkpoint generation that failed
// validation: truncated or garbage bytes (a torn write), a checksum
// mismatch (bit rot), a stale format version, or a campaign-key
// mismatch. Load skips past corrupt generations to the previous good
// one; a CorruptError is only returned when no generation validates.
type CorruptError struct {
	// Path is the offending file ("" when the envelope was decoded from
	// bytes without a file, e.g. by the fuzz target).
	Path string
	// Gen is the generation number from the filename (0 when unknown).
	Gen uint64
	// Reason says what failed.
	Reason string
}

func (e *CorruptError) Error() string {
	where := e.Path
	if where == "" {
		where = "checkpoint envelope"
	}
	if e.Gen > 0 {
		return fmt.Sprintf("checkpoint: %s (generation %d): %s", where, e.Gen, e.Reason)
	}
	return fmt.Sprintf("checkpoint: %s: %s", where, e.Reason)
}

// Observer receives durability telemetry from a Store (and from
// WriteDurable). telemetry.Metrics implements it; a nil Observer is
// silently ignored everywhere.
type Observer interface {
	// CheckpointWritten counts one committed checkpoint generation.
	CheckpointWritten()
	// CheckpointRetried counts one retry of a durable write after a
	// transient error.
	CheckpointRetried()
	// CheckpointCorruptRecovered counts one load that skipped past a
	// corrupt generation to an older good one.
	CheckpointCorruptRecovered()
	// CheckpointDegraded counts a campaign giving up on durable writes
	// (the directory became unwritable; the campaign keeps running).
	CheckpointDegraded()
}

// Write-retry and retention defaults (zero-value Store fields).
const (
	defaultAttempts = 4
	defaultBackoff  = 2 * time.Millisecond
	defaultKeep     = 2
)

// envelope is the on-disk checkpoint frame. Payload is stored as raw
// JSON so the checksum covers the exact bytes on disk.
type envelope struct {
	Magic    string          `json:"magic"`
	Version  int             `json:"version"`
	Key      string          `json:"key"`
	Gen      uint64          `json:"gen"`
	Checksum string          `json:"checksum_fnv1a64"`
	Payload  json.RawMessage `json:"payload"`
}

// checksum is FNV-1a/64 of the payload bytes, hex-encoded. Fast, stdlib,
// and plenty to detect truncation and bit flips (this is an integrity
// check against torn writes, not an authenticity check).
func checksum(payload []byte) string {
	h := fnv.New64a()
	h.Write(payload)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Encode frames payload (which must be valid JSON) as a checkpoint
// envelope for key and generation gen. The payload is compacted first so
// the checksum covers exactly the bytes that land on disk (json.Marshal
// compacts RawMessage when writing the envelope).
func Encode(key string, gen uint64, payload []byte) ([]byte, error) {
	var compact bytes.Buffer
	if err := json.Compact(&compact, payload); err != nil {
		return nil, fmt.Errorf("checkpoint: payload is not valid JSON: %w", err)
	}
	v := json.RawMessage(compact.Bytes())
	env := envelope{
		Magic:    Magic,
		Version:  Version,
		Key:      key,
		Gen:      gen,
		Checksum: checksum(v),
		Payload:  v,
	}
	// Encode without HTML escaping so the payload bytes on disk are
	// byte-identical to the compacted bytes the checksum covers
	// (json.Marshal would rewrite <, >, & inside the RawMessage).
	var out bytes.Buffer
	enc := json.NewEncoder(&out)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(env); err != nil {
		return nil, err
	}
	return bytes.TrimRight(out.Bytes(), "\n"), nil
}

// DecodeEnvelope validates a checkpoint envelope and returns its payload
// and generation. key "" skips the campaign-key check (used to inspect a
// store whose key is unknown). Every failure — garbage bytes, bad magic,
// stale version, key mismatch, checksum mismatch — is a *CorruptError;
// DecodeEnvelope never panics on any input (see the fuzz target).
func DecodeEnvelope(data []byte, key string) (payload []byte, gen uint64, err error) {
	var env envelope
	if jerr := json.Unmarshal(data, &env); jerr != nil {
		return nil, 0, &CorruptError{Reason: "not a valid JSON envelope (torn write?): " + jerr.Error()}
	}
	if env.Magic != Magic {
		return nil, 0, &CorruptError{Gen: env.Gen, Reason: fmt.Sprintf("bad magic %q", env.Magic)}
	}
	if env.Version != Version {
		return nil, 0, &CorruptError{Gen: env.Gen, Reason: fmt.Sprintf("stale format version %d (this build writes %d)", env.Version, Version)}
	}
	if key != "" && env.Key != key {
		return nil, 0, &CorruptError{Gen: env.Gen, Reason: "campaign key mismatch (directory shared by a different campaign?)"}
	}
	if got := checksum(env.Payload); got != env.Checksum {
		return nil, 0, &CorruptError{Gen: env.Gen, Reason: fmt.Sprintf("checksum mismatch: envelope says %s, payload hashes to %s", env.Checksum, got)}
	}
	return env.Payload, env.Gen, nil
}

// Store reads and writes the numbered checkpoint generations of one
// campaign cell under Dir. The zero value plus Dir is ready to use
// (real filesystem, default retry/retention). Stores are cheap; create
// one per cell.
type Store struct {
	// FS is the filesystem written through (nil = OS).
	FS FS
	// Dir holds this store's generation files (created on first Save).
	Dir string
	// Keep is how many newest generations survive GC (0 = 2: the
	// current one plus the fallback a corrupt write recovers to).
	Keep int
	// Attempts bounds durable-write retries (0 = 4 total attempts).
	Attempts int
	// Backoff is the first retry delay, doubling per attempt (0 = 2ms).
	Backoff time.Duration
	// Observer receives durability telemetry (may be nil).
	Observer Observer
}

func (s *Store) fsys() FS {
	if s.FS == nil {
		return OS
	}
	return s.FS
}

func (s *Store) keep() int {
	if s.Keep <= 0 {
		return defaultKeep
	}
	return s.Keep
}

const genSuffix = ".ckpt"

// genName renders a generation filename; zero-padding makes
// lexicographic order equal numeric order.
func genName(gen uint64) string {
	return fmt.Sprintf("gen-%016d%s", gen, genSuffix)
}

// parseGen extracts the generation number from a filename (ok=false for
// anything that is not a generation file).
func parseGen(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "gen-") || !strings.HasSuffix(name, genSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "gen-"), genSuffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// generations lists the generation numbers present, ascending. A missing
// directory is an empty store, not an error.
func (s *Store) generations() []uint64 {
	entries, err := s.fsys().ReadDir(s.Dir)
	if err != nil {
		return nil
	}
	var gens []uint64
	for _, e := range entries {
		if g, ok := parseGen(e.Name()); ok {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens
}

// Save writes payload (valid JSON) as the next generation for key:
// envelope + checksum, temp-file write, atomic rename, bounded retries
// with exponential backoff, then GC of generations beyond Keep. Returns
// the generation number written.
func (s *Store) Save(key string, payload []byte) (uint64, error) {
	gen := uint64(1)
	if gens := s.generations(); len(gens) > 0 {
		gen = gens[len(gens)-1] + 1
	}
	data, err := Encode(key, gen, payload)
	if err != nil {
		return 0, err
	}
	path := filepath.Join(s.Dir, genName(gen))
	if err := s.writeDurable(path, data); err != nil {
		return 0, fmt.Errorf("checkpoint: writing generation %d: %w", gen, err)
	}
	if s.Observer != nil {
		s.Observer.CheckpointWritten()
	}
	s.gc(gen)
	return gen, nil
}

// gc removes generations older than the Keep newest. Removal errors are
// ignored: stale generations are garbage, not state.
func (s *Store) gc(newest uint64) {
	keep := uint64(s.keep())
	for _, g := range s.generations() {
		if g+keep <= newest {
			_ = s.fsys().Remove(filepath.Join(s.Dir, genName(g)))
		}
	}
}

// writeDurable is one atomic (temp + rename) write with bounded retry
// and exponential backoff on any error.
func (s *Store) writeDurable(path string, data []byte) error {
	attempts := s.Attempts
	if attempts <= 0 {
		attempts = defaultAttempts
	}
	backoff := s.Backoff
	if backoff <= 0 {
		backoff = defaultBackoff
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if s.Observer != nil {
				s.Observer.CheckpointRetried()
			}
			time.Sleep(backoff << (i - 1))
		}
		if err = writeOnce(s.fsys(), path, data); err == nil {
			return nil
		}
	}
	return err
}

// writeOnce performs a single atomic write attempt.
func writeOnce(fsys FS, path string, data []byte) error {
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := fsys.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return fsys.Rename(tmp, path)
}

// WriteDurable writes data to path atomically (temp file + rename) with
// the same bounded-retry/backoff policy Store.Save uses — the shared
// hardening for every durable sink (repro bundles, snapshot files) that
// is not itself a generational checkpoint. obs may be nil.
func WriteDurable(fsys FS, path string, data []byte, obs Observer) error {
	s := &Store{FS: fsys, Observer: obs}
	return s.writeDurable(path, data)
}

// Load returns the payload of the newest generation that validates for
// key, skipping past corrupt generations (torn writes, checksum
// mismatches, stale versions) to older ones — never panicking, never
// crashing the campaign. It returns ErrNoCheckpoint for an empty or
// missing store, and the newest generation's CorruptError when no
// generation validates.
func (s *Store) Load(key string) (payload []byte, gen uint64, err error) {
	return s.load(key)
}

// LoadLatest is Load without the campaign-key check, for tools that
// inspect a checkpoint directory without knowing which campaign wrote
// it (e.g. pctwm-replay -campaign).
func (s *Store) LoadLatest() (payload []byte, gen uint64, err error) {
	return s.load("")
}

func (s *Store) load(key string) ([]byte, uint64, error) {
	gens := s.generations()
	if len(gens) == 0 {
		return nil, 0, ErrNoCheckpoint
	}
	var firstErr error
	for i := len(gens) - 1; i >= 0; i-- {
		path := filepath.Join(s.Dir, genName(gens[i]))
		var cerr error
		var payload []byte
		data, rerr := s.fsys().ReadFile(path)
		if rerr != nil {
			cerr = &CorruptError{Path: path, Gen: gens[i], Reason: "unreadable: " + rerr.Error()}
		} else {
			var envGen uint64
			payload, envGen, cerr = DecodeEnvelope(data, key)
			if cerr == nil && envGen != gens[i] {
				cerr = &CorruptError{Path: path, Gen: gens[i], Reason: fmt.Sprintf("envelope records generation %d under filename generation %d", envGen, gens[i])}
			}
			if ce, ok := cerr.(*CorruptError); ok {
				ce.Path, ce.Gen = path, gens[i]
			}
		}
		if cerr != nil {
			if firstErr == nil {
				firstErr = cerr
			}
			continue
		}
		if firstErr != nil && s.Observer != nil {
			s.Observer.CheckpointCorruptRecovered()
		}
		return payload, gens[i], nil
	}
	return nil, 0, firstErr
}
