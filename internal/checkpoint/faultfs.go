package checkpoint

import (
	"io/fs"
	"sync"
)

// FaultFS wraps an FS with scriptable fault injection for testing the
// durable sinks: transient failures on the next N mutating calls,
// a permanent error that persists until cleared (an unwritable
// directory mid-campaign), and torn writes (the write reports success
// but only half the bytes reach the file — what a SIGKILL or power cut
// mid-flush leaves behind when the sink skips the rename). Reads always
// pass through: load-path corruption is tested by corrupting the bytes
// on the base filesystem directly.
//
// All methods are safe for concurrent use (campaign workers and the
// checkpoint loop share one FaultFS in tests run under -race).
type FaultFS struct {
	// Base is the wrapped filesystem (nil = OS).
	Base FS

	mu          sync.Mutex
	failWrites  int   // next N WriteFile calls fail
	failRenames int   // next N Rename calls fail
	failMkdirs  int   // next N MkdirAll calls fail
	permanent   error // all mutating calls fail until cleared
	injected    error // the error transient failures return
	tornWrites  int   // next N WriteFile calls write half the data, report success

	writes, renames, mkdirs int // successful-call counters for assertions
}

func (f *FaultFS) base() FS {
	if f.Base == nil {
		return OS
	}
	return f.Base
}

// FailWrites makes the next n WriteFile calls fail with err.
func (f *FaultFS) FailWrites(n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWrites, f.injected = n, err
}

// FailRenames makes the next n Rename calls fail with err.
func (f *FaultFS) FailRenames(n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failRenames, f.injected = n, err
}

// FailMkdirs makes the next n MkdirAll calls fail with err.
func (f *FaultFS) FailMkdirs(n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failMkdirs, f.injected = n, err
}

// SetPermanentError makes every mutating call fail with err until
// cleared with SetPermanentError(nil) — the directory went read-only
// (EACCES) or the disk filled (ENOSPC) and stays that way.
func (f *FaultFS) SetPermanentError(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.permanent = err
}

// TearWrites makes the next n WriteFile calls write only the first half
// of the data and report success — a torn write the load path must
// detect by checksum instead of crashing on.
func (f *FaultFS) TearWrites(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tornWrites = n
}

// Writes returns how many WriteFile calls reached the base filesystem.
func (f *FaultFS) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	f.mu.Lock()
	if f.permanent != nil {
		err := f.permanent
		f.mu.Unlock()
		return err
	}
	if f.failMkdirs > 0 {
		f.failMkdirs--
		err := f.injected
		f.mu.Unlock()
		return err
	}
	f.mkdirs++
	f.mu.Unlock()
	return f.base().MkdirAll(path, perm)
}

func (f *FaultFS) WriteFile(path string, data []byte, perm fs.FileMode) error {
	f.mu.Lock()
	if f.permanent != nil {
		err := f.permanent
		f.mu.Unlock()
		return err
	}
	if f.failWrites > 0 {
		f.failWrites--
		err := f.injected
		f.mu.Unlock()
		return err
	}
	torn := false
	if f.tornWrites > 0 {
		f.tornWrites--
		torn = true
	}
	f.writes++
	f.mu.Unlock()
	if torn {
		return f.base().WriteFile(path, data[:len(data)/2], perm)
	}
	return f.base().WriteFile(path, data, perm)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	if f.permanent != nil {
		err := f.permanent
		f.mu.Unlock()
		return err
	}
	if f.failRenames > 0 {
		f.failRenames--
		err := f.injected
		f.mu.Unlock()
		return err
	}
	f.renames++
	f.mu.Unlock()
	return f.base().Rename(oldpath, newpath)
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) { return f.base().ReadFile(path) }

func (f *FaultFS) ReadDir(path string) ([]fs.DirEntry, error) { return f.base().ReadDir(path) }

func (f *FaultFS) Remove(path string) error { return f.base().Remove(path) }
