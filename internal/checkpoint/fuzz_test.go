package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeEnvelope proves checkpoint load never panics: every input —
// valid envelope, truncated bytes, bit-flipped checksum, arbitrary
// garbage — either decodes cleanly or returns a *CorruptError.
func FuzzDecodeEnvelope(f *testing.F) {
	valid, err := Encode("fuzz-key", 3, []byte(`{"trials":100,"hits":7}`))
	if err != nil {
		f.Fatalf("Encode: %v", err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated (torn write)
	flipped := bytes.Clone(valid)
	if i := bytes.Index(flipped, []byte(`"checksum_fnv1a64":"`)); i >= 0 {
		flipped[i+len(`"checksum_fnv1a64":"`)] ^= 1 // bit-flip the checksum
	}
	f.Add(flipped)
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`{"magic":"pctwm-checkpoint","version":1,"key":"fuzz-key","gen":0,"checksum_fnv1a64":"x","payload":null}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, gen, err := DecodeEnvelope(data, "fuzz-key")
		if err != nil {
			if _, ok := err.(*CorruptError); !ok {
				t.Fatalf("DecodeEnvelope error is %T, want *CorruptError", err)
			}
			return
		}
		// A successful decode must round-trip: re-encoding the payload at
		// the same key/gen must decode again.
		re, eerr := Encode("fuzz-key", gen, payload)
		if eerr != nil {
			t.Fatalf("Encode of decoded payload failed: %v", eerr)
		}
		if _, _, derr := DecodeEnvelope(re, "fuzz-key"); derr != nil {
			t.Fatalf("re-decode failed: %v", derr)
		}
	})
}

// FuzzStoreLoad drives the full Store.Load path over arbitrary file
// bytes: whatever is on disk, Load returns data, ErrNoCheckpoint, or a
// *CorruptError — it never panics and never fabricates a payload.
func FuzzStoreLoad(f *testing.F) {
	valid, err := Encode("fuzz-key", 1, []byte(`{"trials":100}`))
	if err != nil {
		f.Fatalf("Encode: %v", err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)*3/4])
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, genName(1)), data, 0o644); err != nil {
			t.Skip()
		}
		s := &Store{Dir: dir}
		if _, _, err := s.Load("fuzz-key"); err != nil {
			if _, ok := err.(*CorruptError); !ok {
				t.Fatalf("Store.Load error is %T (%v), want *CorruptError", err, err)
			}
		}
	})
}
