// Package checkpoint provides the durable-state layer for long-running
// trial campaigns: atomic, checksummed, versioned snapshot files written
// in numbered generations, loaded back with torn-write detection and
// fallback to the previous good generation. Every write goes through a
// small filesystem interface (FS) so tests can inject transient and
// permanent faults (ENOSPC, EACCES, torn writes) into any durable sink
// — checkpoints, repro bundles, snapshot files — and prove the campaign
// survives them.
//
// The format is deliberately boring: one JSON envelope per generation
// carrying a magic string, a format version, the campaign key, the
// generation number, an FNV-1a/64 checksum of the payload, and the
// payload itself. Atomicity comes from write-to-temp-then-rename;
// durability against flaky disks from bounded retry with exponential
// backoff; recoverability from keeping the last Keep generations and
// falling back past a corrupt newest one on load.
package checkpoint

import (
	"io/fs"
	"os"
)

// FS is the filesystem surface durable sinks write through. The
// production implementation is OS; tests substitute a FaultFS to inject
// write errors and torn writes. The interface is intentionally minimal —
// exactly the operations an atomic generational store needs.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	WriteFile(path string, data []byte, perm fs.FileMode) error
	Rename(oldpath, newpath string) error
	ReadFile(path string) ([]byte, error)
	ReadDir(path string) ([]fs.DirEntry, error)
	Remove(path string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) WriteFile(path string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(path, data, perm)
}
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) ReadFile(path string) ([]byte, error)       { return os.ReadFile(path) }
func (osFS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }
func (osFS) Remove(path string) error                   { return os.Remove(path) }
