// Package distcheck is the statistical strategy-conformance harness: it
// cross-checks the *sampling distributions* of the randomized strategies
// against exact ground truth from the exhaustive explorer. Ordinary unit
// tests pin what a strategy does on one seed; distcheck pins what the
// strategy samples in aggregate — the property the PCT/PCTWM probability
// bounds (§2.2, §5.4) are actually about, and the property that silently
// broke when priority assignment collided.
//
// Four checks, all deterministic for a fixed Config.Seed:
//
//   - support: every behavior fingerprint observed empirically must
//     appear in the exhaustive enumerate.BehaviorCensus (an observation
//     outside the census means engine nondeterminism or a census bug);
//   - uniform: for strategies sampling the uniform decision walk
//     (core.Random), a G-test of the empirical behavior frequencies
//     against the exact leaf probabilities from enumerate.BehaviorProbs,
//     conditioned on clean runs and with low-expectation bins pooled;
//   - permutation: a synthetic driver hands the strategy t freshly
//     started threads with non-communication pending ops and records the
//     order NextThread retires them. With distinct priorities the order
//     is the initial rank permutation, uniform over t! for Random, PCT
//     and PCTWM alike; colliding priorities bias ties toward low thread
//     ids and a chi-square test detects it. This is the check that fails
//     on the historical colliding assignment (core.NewCollidingPCT /
//     core.NewCollidingPCTWM) and passes on the fixed strategies;
//   - bound: for priority strategies, every census behavior's empirical
//     hit rate must be consistent with the strategy's per-behavior lower
//     probability bound — the Wilson interval's upper edge must reach
//     the bound, otherwise the strategy provably under-covers.
//
// The package depends on engine/enumerate/stats only; the harness wraps
// it with estimated program parameters (harness.DistCheckCampaign), and
// the report renders its results.
package distcheck

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"slices"
	"sort"

	"pctwm/internal/engine"
	"pctwm/internal/enumerate"
	"pctwm/internal/memmodel"
	"pctwm/internal/stats"
)

// Params are the program characteristics the PCT/PCTWM bound formulas
// need. The caller estimates them (the harness uses EstimateParams); the
// checks only consume them through Strategy.Bound.
type Params struct {
	// Threads is t: the maximum number of concurrently live threads.
	Threads int `json:"threads"`
	// Steps is k: the scheduler-step count (PCT's program length).
	Steps int `json:"steps"`
	// Comm is kcom: the communication-event count (PCTWM's k_com).
	Comm int `json:"comm"`
}

// Program is one conformance test case: a litmus-scale program small
// enough to enumerate exhaustively, plus its bound parameters.
type Program struct {
	Prog   *engine.Program
	Params Params
}

// Strategy describes one strategy under conformance test.
type Strategy struct {
	// Name identifies the strategy in results (need not match the
	// engine-facing Name(); fixtures reuse the real strategy's name with
	// a suffix).
	Name string
	// New returns a fresh instance parameterized for a program with
	// params p (the PCT/PCTWM constructors take estimated k and kcom).
	// Strategies are stateful, and the campaign runner and the synthetic
	// permutation driver must not share one.
	New func(p Params) engine.Strategy
	// Uniform marks strategies whose sampling distribution is the
	// uniform decision walk (core.Random): enables the exact G-test
	// against enumerate.BehaviorProbs.
	Uniform bool
	// Bound returns the per-behavior lower probability bound the
	// strategy guarantees on a program with params p (core.PCTBound /
	// core.PCTWMBound). nil disables the bound check.
	Bound func(p Params) float64
}

// Config tunes the conformance campaign. The zero value is usable: every
// field has a default chosen so the fixed-seed CI suite passes on the
// correct strategies and fails on the colliding fixtures.
type Config struct {
	// Runs is the number of executions per (program, strategy) cell.
	// Default 4000.
	Runs int `json:"runs"`
	// Seed is the master seed; every check derives its own stream
	// deterministically from it, so results are independent of check
	// ordering. Default 1.
	Seed int64 `json:"seed"`
	// Alpha is the significance level for the chi-square and G tests.
	// Default 1e-3: strict enough to catch the collision bias within a
	// few thousand rounds, loose enough that a correct strategy passes
	// any reasonable seed.
	Alpha float64 `json:"alpha"`
	// Z is the Wilson interval width for the bound check. Default 1.96
	// (95%).
	Z float64 `json:"z"`
	// PermThreads is the width t of the synthetic permutation check
	// (t! bins). Default 4.
	PermThreads int `json:"permThreads"`
	// PermRounds is the number of synthetic rounds. Default 6000.
	PermRounds int `json:"permRounds"`
	// EnumLimit caps the exhaustive enumerations (0 = unlimited); a
	// program too large to enumerate under the cap is an error, since a
	// truncated census is not ground truth.
	EnumLimit int `json:"-"`
	// Options are the engine options for both the enumerations and the
	// empirical campaigns (model selection in particular). Coverage is
	// forced on.
	Options engine.Options `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.Runs == 0 {
		c.Runs = 4000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Alpha == 0 {
		c.Alpha = 1e-3
	}
	if c.Z == 0 {
		c.Z = 1.96
	}
	if c.PermThreads == 0 {
		c.PermThreads = 4
	}
	if c.PermRounds == 0 {
		c.PermRounds = 6000
	}
	return c
}

// CheckResult is one check's verdict.
type CheckResult struct {
	// Check is "support", "uniform", "permutation" or "bound".
	Check    string `json:"check"`
	Strategy string `json:"strategy"`
	// Program is empty for the synthetic permutation check.
	Program string `json:"program,omitempty"`
	Pass    bool   `json:"pass"`
	// Stat is the test statistic (chi-square / G) where applicable.
	Stat float64 `json:"stat,omitempty"`
	// P is the p-value where applicable.
	P      float64 `json:"p,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// Report collects every check's result. Passed is the conjunction.
type Report struct {
	Results []CheckResult `json:"results"`
	Passed  bool          `json:"passed"`
}

func (r *Report) add(c CheckResult) {
	r.Results = append(r.Results, c)
	if !c.Pass {
		r.Passed = false
	}
}

// Failures returns the failing results, in check order.
func (r *Report) Failures() []CheckResult {
	var out []CheckResult
	for _, c := range r.Results {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// deriveSeed mixes the master seed with a per-check label so every check
// gets an independent, order-insensitive random stream.
func deriveSeed(master int64, labels ...string) int64 {
	h := fnv.New64a()
	for _, l := range labels {
		h.Write([]byte(l))
		h.Write([]byte{0})
	}
	return master ^ int64(h.Sum64())
}

// Run executes the full conformance suite: the synthetic permutation
// check per strategy, then per (program, strategy) the support check and
// — where the strategy declares them — the uniform G-test and the bound
// check. Errors are infrastructural (enumeration truncated, program
// nondeterministic); statistical failures land in the report.
func Run(programs []Program, strategies []Strategy, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{Passed: true}
	for _, st := range strategies {
		res, err := permutationCheck(st, cfg)
		if err != nil {
			return nil, err
		}
		rep.add(res)
	}
	needProbs := false
	for _, st := range strategies {
		if st.Uniform {
			needProbs = true
		}
	}
	for _, pr := range programs {
		census, err := enumerate.BehaviorCensus(pr.Prog, cfg.Options, enumerate.Config{Limit: cfg.EnumLimit})
		if err != nil {
			return nil, fmt.Errorf("distcheck: census of %s: %w", pr.Prog.Name(), err)
		}
		if !census.Complete {
			return nil, fmt.Errorf("distcheck: census of %s truncated at %d runs: not ground truth", pr.Prog.Name(), census.Runs)
		}
		var probs map[uint64]float64
		var errMass float64
		if needProbs {
			probs, errMass, err = enumerate.BehaviorProbs(pr.Prog, cfg.Options, cfg.EnumLimit)
			if err != nil {
				return nil, fmt.Errorf("distcheck: %w", err)
			}
		}
		for _, st := range strategies {
			counts, clean := sample(pr, st, cfg)
			rep.add(supportCheck(pr, st, counts, census))
			if st.Uniform {
				rep.add(uniformCheck(pr, st, counts, clean, probs, errMass, cfg))
			}
			if st.Bound != nil {
				rep.add(boundCheck(pr, st, counts, census, cfg))
			}
		}
	}
	return rep, nil
}

// sample runs one empirical campaign cell and tallies clean-run behavior
// fingerprints. Per-run seeds come from a stream derived from the master
// seed and the cell identity, so cells are order-independent.
func sample(pr Program, st Strategy, cfg Config) (counts map[uint64]int, clean int) {
	opts := cfg.Options
	opts.Coverage = true
	r := engine.NewRunner(pr.Prog, opts)
	defer r.Close()
	strat := st.New(pr.Params)
	seeds := rand.New(rand.NewSource(deriveSeed(cfg.Seed, "cell", pr.Prog.Name(), st.Name)))
	counts = make(map[uint64]int)
	for i := 0; i < cfg.Runs; i++ {
		o := r.Run(strat, seeds.Int63())
		if o.Err != nil {
			continue
		}
		counts[o.BehaviorFP]++
		clean++
	}
	return counts, clean
}

// supportCheck verifies every empirically observed behavior appears in
// the exhaustive census.
func supportCheck(pr Program, st Strategy, counts map[uint64]int, census *enumerate.Census) CheckResult {
	known := make(map[uint64]bool, len(census.Behaviors))
	for _, e := range census.Behaviors {
		known[e.FP] = true
	}
	res := CheckResult{Check: "support", Strategy: st.Name, Program: pr.Prog.Name(), Pass: true}
	for fp, n := range counts {
		if !known[fp] {
			res.Pass = false
			res.Detail = fmt.Sprintf("behavior %#x observed %d times but absent from the exhaustive census", fp, n)
			return res
		}
	}
	res.Detail = fmt.Sprintf("%d/%d census behaviors observed", len(counts), len(census.Behaviors))
	return res
}

// uniformCheck G-tests the empirical clean-run behavior frequencies
// against the exact uniform-walk distribution, conditioned on clean runs
// (renormalized by 1−errMass) and with low-expectation bins pooled
// (expected < 5, the standard chi-square validity rule).
func uniformCheck(pr Program, st Strategy, counts map[uint64]int, clean int, probs map[uint64]float64, errMass float64, cfg Config) CheckResult {
	res := CheckResult{Check: "uniform", Strategy: st.Name, Program: pr.Prog.Name()}
	norm := 1 - errMass
	if norm <= 0 || clean == 0 {
		res.Pass = false
		res.Detail = "no clean probability mass to test against"
		return res
	}
	fps := make([]uint64, 0, len(probs))
	for fp := range probs {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	var obs []int
	var exp []float64
	pooledObs, pooledExp := 0, 0.0
	seen := make(map[uint64]bool, len(fps))
	for _, fp := range fps {
		seen[fp] = true
		e := float64(clean) * probs[fp] / norm
		o := counts[fp]
		if e < 5 {
			pooledObs += o
			pooledExp += e
			continue
		}
		obs = append(obs, o)
		exp = append(exp, e)
	}
	// Observations outside the exact support (the support check already
	// fails the report for these) still belong in the pooled bin so the
	// statistic stays well-formed.
	for fp, o := range counts {
		if !seen[fp] {
			pooledObs += o
		}
	}
	if pooledExp > 0 || pooledObs > 0 {
		obs = append(obs, pooledObs)
		exp = append(exp, pooledExp)
	}
	df := len(obs) - 1
	if df < 1 {
		res.Pass = true
		res.Detail = "single-bin distribution: nothing to test"
		return res
	}
	res.Stat = stats.GStat(obs, exp)
	res.P = stats.ChiSquareP(res.Stat, df)
	res.Pass = res.P >= cfg.Alpha
	res.Detail = fmt.Sprintf("G=%.2f df=%d over %d clean runs", res.Stat, df, clean)
	return res
}

// boundCheck verifies every census behavior's empirical hit rate is
// consistent with the strategy's per-behavior lower probability bound:
// the Wilson interval's upper edge must reach the bound. A behavior whose
// optimistic rate estimate is still below the guarantee means the
// strategy under-covers it.
func boundCheck(pr Program, st Strategy, counts map[uint64]int, census *enumerate.Census, cfg Config) CheckResult {
	res := CheckResult{Check: "bound", Strategy: st.Name, Program: pr.Prog.Name(), Pass: true}
	bound := 100 * st.Bound(pr.Params)
	worst := 200.0
	for _, e := range census.Behaviors {
		hits := counts[e.FP]
		_, high := stats.Wilson(hits, cfg.Runs, cfg.Z)
		if high < worst {
			worst = high
		}
		if high < bound {
			res.Pass = false
			res.Detail = fmt.Sprintf("behavior %#x: %d/%d hits, Wilson high %.3f%% < bound %.3f%%", e.FP, hits, cfg.Runs, high, bound)
			return res
		}
	}
	res.Detail = fmt.Sprintf("all %d behaviors clear the %.3f%% bound (worst Wilson high %.3f%%)", len(census.Behaviors), bound, worst)
	return res
}

// permutationCheck drives the strategy directly — no engine — through t
// freshly started threads pending non-communication ops, recording the
// order NextThread retires them. Correct distinct-priority assignment
// makes the retirement order the initial rank permutation, uniform over
// t! (and Random is uniform trivially); colliding priorities resolve
// ties toward low thread ids and skew the distribution, which the
// chi-square test detects. No OnEvent is delivered, so PCT change points
// never fire, and the ops carry Comm=false, so PCTWM never delays: the
// check isolates exactly the initial priority assignment.
func permutationCheck(st Strategy, cfg Config) (CheckResult, error) {
	t := cfg.PermThreads
	nperm := 1
	for i := 2; i <= t; i++ {
		nperm *= i
	}
	strat := st.New(Params{Threads: t, Steps: t, Comm: t})
	rng := rand.New(rand.NewSource(deriveSeed(cfg.Seed, "perm", st.Name)))
	info := engine.ProgramInfo{Name: "distcheck-perm", NumRootThreads: t}
	enabled := make([]engine.PendingOp, 0, t)
	order := make([]memmodel.ThreadID, 0, t)
	counts := make([]int, nperm)
	for round := 0; round < cfg.PermRounds; round++ {
		strat.Begin(info, rng)
		enabled = enabled[:0]
		for i := 1; i <= t; i++ {
			tid := memmodel.ThreadID(i)
			strat.OnThreadStart(tid, memmodel.InitThread)
			enabled = append(enabled, engine.PendingOp{
				TID: tid, Index: 0, Kind: memmodel.KindWrite,
				Order: memmodel.Relaxed, Loc: 1, Comm: false,
			})
		}
		order = order[:0]
		for len(enabled) > 0 {
			tid := strat.NextThread(enabled)
			at := slices.IndexFunc(enabled, func(op engine.PendingOp) bool { return op.TID == tid })
			if at < 0 {
				return CheckResult{}, fmt.Errorf("distcheck: %s scheduled thread %d which has no enabled op", st.Name, tid)
			}
			order = append(order, tid)
			enabled = slices.Delete(enabled, at, at+1)
		}
		counts[permIndex(order)]++
	}
	exp := make([]float64, nperm)
	for i := range exp {
		exp[i] = float64(cfg.PermRounds) / float64(nperm)
	}
	res := CheckResult{Check: "permutation", Strategy: st.Name}
	res.Stat = stats.ChiSquareStat(counts, exp)
	res.P = stats.ChiSquareP(res.Stat, nperm-1)
	res.Pass = res.P >= cfg.Alpha
	res.Detail = fmt.Sprintf("chi2=%.2f over %d rounds, %d! orderings", res.Stat, cfg.PermRounds, t)
	return res, nil
}

// permIndex maps a retirement order of threads 1..t to its Lehmer index
// in [0, t!).
func permIndex(order []memmodel.ThreadID) int {
	idx := 0
	for i, tid := range order {
		rank := 0
		for _, later := range order[i+1:] {
			if later < tid {
				rank++
			}
		}
		idx = idx*(len(order)-i) + rank
	}
	return idx
}
