package distcheck

import (
	"math"
	"testing"

	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/enumerate"
	"pctwm/internal/litmus"
	"pctwm/internal/memmodel"
)

func enumCensus(pr Program, cfg Config) (*enumerate.Census, error) {
	return enumerate.BehaviorCensus(pr.Prog, cfg.Options, enumerate.Config{Limit: cfg.EnumLimit})
}

func enumProbs(pr Program, cfg Config) (map[uint64]float64, float64, error) {
	return enumerate.BehaviorProbs(pr.Prog, cfg.Options, cfg.EnumLimit)
}

// testPrograms is the small-litmus conformance set: programs tiny enough
// to enumerate exhaustively, with hand-estimated bound parameters.
func testPrograms() []Program {
	return []Program{
		{Prog: litmus.SBRelaxed().Program, Params: Params{Threads: 3, Steps: 12, Comm: 4}},
		{Prog: litmus.MPRelaxed().Program, Params: Params{Threads: 3, Steps: 12, Comm: 4}},
	}
}

// fixedStrategies are the shipped strategies with conservative bounds.
func fixedStrategies() []Strategy {
	return []Strategy{
		{
			Name:    "c11tester",
			New:     func(Params) engine.Strategy { return core.NewRandom() },
			Uniform: true,
		},
		{
			Name: "pct",
			New:  func(p Params) engine.Strategy { return core.NewPCT(3, p.Steps) },
			Bound: func(p Params) float64 {
				return core.PCTBound(p.Threads, p.Steps, 3)
			},
		},
		{
			Name: "pctwm",
			New:  func(p Params) engine.Strategy { return core.NewPCTWM(2, 3, p.Comm) },
			Bound: func(p Params) float64 {
				return core.PCTWMBound(p.Comm, 2, 3)
			},
		},
	}
}

// TestFixedStrategiesConform is the headline conformance run: with the
// default fixed seed, every check passes on the shipped Random, PCT and
// PCTWM implementations.
func TestFixedStrategiesConform(t *testing.T) {
	rep, err := Run(testPrograms(), fixedStrategies(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Results {
		t.Logf("%-11s %-10s %-12s pass=%-5v p=%-10.3g %s",
			res.Check, res.Strategy, res.Program, res.Pass, res.P, res.Detail)
	}
	if !rep.Passed {
		t.Fatalf("conformance failures: %+v", rep.Failures())
	}
	// 3 permutation checks + per (2 programs × 3 strategies): support,
	// plus uniform for Random and bound for PCT/PCTWM.
	if len(rep.Results) != 3+2*(3+1+2) {
		t.Fatalf("unexpected result count %d: %+v", len(rep.Results), rep.Results)
	}
}

// TestCollidingFixturesFail pins the historical bug: the pre-fix
// colliding priority assignment (preserved as core.NewCollidingPCT /
// core.NewCollidingPCTWM) fails the permutation check, which is exactly
// the check the distinct-priority fix makes pass.
func TestCollidingFixturesFail(t *testing.T) {
	broken := []Strategy{
		{Name: "pct-colliding", New: func(p Params) engine.Strategy { return core.NewCollidingPCT(3, p.Steps) }},
		{Name: "pctwm-colliding", New: func(p Params) engine.Strategy { return core.NewCollidingPCTWM(2, 3, p.Comm) }},
	}
	rep, err := Run(nil, broken, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatalf("colliding fixtures passed the permutation check: %+v", rep.Results)
	}
	for _, res := range rep.Results {
		if res.Check != "permutation" {
			t.Fatalf("unexpected check %q with no programs", res.Check)
		}
		if res.Pass {
			t.Errorf("%s: colliding priorities not detected (chi2=%.2f p=%g)", res.Strategy, res.Stat, res.P)
		}
	}
}

// TestPermutationSeedRobustness: the permutation verdicts are not a
// one-seed fluke — correct strategies pass and colliding ones fail
// across several master seeds.
func TestPermutationSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for seed := int64(1); seed <= 5; seed++ {
		cfg := Config{Seed: seed}.withDefaults()
		good, err := permutationCheck(Strategy{
			Name: "pct", New: func(p Params) engine.Strategy { return core.NewPCT(3, p.Steps) },
		}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !good.Pass {
			t.Errorf("seed %d: fixed PCT failed (chi2=%.2f p=%g)", seed, good.Stat, good.P)
		}
		bad, err := permutationCheck(Strategy{
			Name: "pct-colliding", New: func(p Params) engine.Strategy { return core.NewCollidingPCT(3, p.Steps) },
		}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if bad.Pass {
			t.Errorf("seed %d: colliding PCT passed (chi2=%.2f p=%g)", seed, bad.Stat, bad.P)
		}
	}
}

// TestSupportCheckRejectsAlienBehavior: an observation outside the
// census fails the support check.
func TestSupportCheckRejectsAlienBehavior(t *testing.T) {
	pr := Program{Prog: litmus.SBRelaxed().Program}
	st := Strategy{Name: "x"}
	census, err := enumCensus(pr, Config{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]int{census.Behaviors[0].FP: 10, 0xdeadbeef: 1}
	if res := supportCheck(pr, st, counts, census); res.Pass {
		t.Fatal("alien fingerprint passed the support check")
	}
	delete(counts, 0xdeadbeef)
	if res := supportCheck(pr, st, counts, census); !res.Pass {
		t.Fatalf("census-subset observations failed: %s", res.Detail)
	}
}

// TestUniformCheckDetectsSkew: a deliberately skewed sample fails the
// G-test that the true Random strategy passes.
func TestUniformCheckDetectsSkew(t *testing.T) {
	pr := Program{Prog: litmus.SBRelaxed().Program}
	cfg := Config{}.withDefaults()
	st := Strategy{Name: "c11tester", New: func(Params) engine.Strategy { return core.NewRandom() }, Uniform: true}
	counts, clean := sample(pr, st, cfg)
	probs, errMass, err := enumProbs(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res := uniformCheck(pr, st, counts, clean, probs, errMass, cfg); !res.Pass {
		t.Fatalf("true Random sample failed the G-test: %s p=%g", res.Detail, res.P)
	}
	// Skew: move half of the most common behavior's mass onto the least
	// common one.
	var maxFP, minFP uint64
	maxN, minN := -1, math.MaxInt
	for fp, n := range counts {
		if n > maxN {
			maxFP, maxN = fp, n
		}
		if n < minN {
			minFP, minN = fp, n
		}
	}
	counts[maxFP] -= maxN / 2
	counts[minFP] += maxN / 2
	if res := uniformCheck(pr, st, counts, clean, probs, errMass, cfg); res.Pass {
		t.Fatalf("skewed sample passed the G-test: %s p=%g", res.Detail, res.P)
	}
}

// TestPermIndexBijective: the Lehmer encoding is a bijection over the
// orderings actually fed to it.
func TestPermIndexBijective(t *testing.T) {
	seen := map[int]bool{}
	var rec func(rest []memmodel.ThreadID, cur []memmodel.ThreadID)
	rec = func(rest, cur []memmodel.ThreadID) {
		if len(rest) == 0 {
			idx := permIndex(cur)
			if idx < 0 || idx >= 24 || seen[idx] {
				t.Fatalf("permIndex(%v) = %d (dup=%v)", cur, idx, seen[idx])
			}
			seen[idx] = true
			return
		}
		for i, tid := range rest {
			next := append(append([]memmodel.ThreadID{}, rest[:i]...), rest[i+1:]...)
			rec(next, append(cur, tid))
		}
	}
	rec([]memmodel.ThreadID{1, 2, 3, 4}, nil)
	if len(seen) != 24 {
		t.Fatalf("covered %d/24 indices", len(seen))
	}
}
