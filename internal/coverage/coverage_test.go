package coverage

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"pctwm/internal/memmodel"
)

// mkWrite builds a write event: id/tid/index identify it, stamp is its
// 1-based mo position at loc.
func mkWrite(id memmodel.EventID, tid memmodel.ThreadID, index int, loc memmodel.Loc, val memmodel.Value, stamp memmodel.TS) *memmodel.Event {
	return &memmodel.Event{
		ID: id, TID: tid, Index: index,
		Label:     memmodel.Label{Kind: memmodel.KindWrite, Loc: loc, WVal: val},
		Stamp:     stamp,
		ReadsFrom: memmodel.NoEvent,
	}
}

// mkRead builds a read event observing the write with event id src.
func mkRead(id memmodel.EventID, tid memmodel.ThreadID, index int, loc memmodel.Loc, src memmodel.EventID) *memmodel.Event {
	return &memmodel.Event{
		ID: id, TID: tid, Index: index,
		Label:     memmodel.Label{Kind: memmodel.KindRead, Loc: loc},
		ReadsFrom: src,
	}
}

// fingerprint runs one synthetic execution through a fresh accumulator.
func fingerprint(model string, staticLocs int, events []*memmodel.Event, finals []memmodel.Value) uint64 {
	var a Accumulator
	a.Reset(model, staticLocs)
	for _, ev := range events {
		a.Observe(ev)
	}
	for _, v := range finals {
		a.PushFinal(v)
	}
	return a.Finalize()
}

// TestFingerprintScheduleInvariant: two interleavings of independent
// threads assign different event ids in different orders but realize the
// same behavior, so they must collide.
func TestFingerprintScheduleInvariant(t *testing.T) {
	// t1: W x=1; t2: W y=1 (locs 0,1; init writes are ids 0,1).
	finals := []memmodel.Value{1, 1}
	a := fingerprint("rc11", 2, []*memmodel.Event{
		mkWrite(2, 1, 0, 0, 1, 2),
		mkWrite(3, 2, 0, 1, 1, 2),
	}, finals)
	b := fingerprint("rc11", 2, []*memmodel.Event{
		mkWrite(2, 2, 0, 1, 1, 2),
		mkWrite(3, 1, 0, 0, 1, 2),
	}, finals)
	if a != b {
		t.Fatalf("interleavings of the same behavior diverge: %#x vs %#x", a, b)
	}
}

// TestFingerprintDistinguishes: changing any behavior component — the
// reads-from source, a final value, a write's mo stamp, or the memory
// model — must change the fingerprint.
func TestFingerprintDistinguishes(t *testing.T) {
	base := func() ([]*memmodel.Event, []memmodel.Value) {
		return []*memmodel.Event{
			mkWrite(2, 1, 0, 0, 1, 2),
			mkRead(3, 2, 0, 0, 2), // reads t1's write
		}, []memmodel.Value{1, 0}
	}
	events, finals := base()
	ref := fingerprint("rc11", 2, events, finals)

	events, finals = base()
	events[1].ReadsFrom = 0 // reads the initialization write instead
	if got := fingerprint("rc11", 2, events, finals); got == ref {
		t.Fatal("rf change did not change the fingerprint")
	}

	events, finals = base()
	finals[1] = 7
	if got := fingerprint("rc11", 2, events, finals); got == ref {
		t.Fatal("final-value change did not change the fingerprint")
	}

	events, finals = base()
	events[0].Stamp = 3 // same write, later in modification order
	if got := fingerprint("rc11", 2, events, finals); got == ref {
		t.Fatal("mo-stamp change did not change the fingerprint")
	}

	events, finals = base()
	if got := fingerprint("tso", 2, events, finals); got == ref {
		t.Fatal("model change did not change the fingerprint")
	}
}

// TestFingerprintRMWContributesBoth: an RMW is both a read and a write;
// its fingerprint must differ from either aspect alone.
func TestFingerprintRMWContributesBoth(t *testing.T) {
	rmw := &memmodel.Event{
		ID: 1, TID: 1, Index: 0,
		Label:     memmodel.Label{Kind: memmodel.KindRMW, Loc: 0, WVal: 1},
		Stamp:     2,
		ReadsFrom: 0,
	}
	full := fingerprint("rc11", 1, []*memmodel.Event{rmw}, []memmodel.Value{1})
	asRead := fingerprint("rc11", 1, []*memmodel.Event{mkRead(1, 1, 0, 0, 0)}, []memmodel.Value{1})
	asWrite := fingerprint("rc11", 1, []*memmodel.Event{mkWrite(1, 1, 0, 0, 1, 2)}, []memmodel.Value{1})
	if full == asRead || full == asWrite {
		t.Fatalf("RMW fingerprint aliases one of its aspects: rmw %#x, read %#x, write %#x", full, asRead, asWrite)
	}
}

// TestAccumulatorReuse: the same accumulator reused across runs (the
// per-Runner pattern) reproduces a fresh accumulator's fingerprints, and
// the steady state allocates nothing.
func TestAccumulatorReuse(t *testing.T) {
	events := []*memmodel.Event{
		mkWrite(2, 1, 0, 0, 1, 2),
		mkRead(3, 2, 0, 0, 2),
	}
	finals := []memmodel.Value{1, 0}
	want := fingerprint("rc11", 2, events, finals)

	var a Accumulator
	run := func() uint64 {
		a.Reset("rc11", 2)
		for _, ev := range events {
			a.Observe(ev)
		}
		for _, v := range finals {
			a.PushFinal(v)
		}
		return a.Finalize()
	}
	for i := 0; i < 5; i++ {
		run() // warm the scratch
	}
	if got := run(); got != want {
		t.Fatalf("reused accumulator diverges: %#x vs %#x", got, want)
	}
	if allocs := testing.AllocsPerRun(200, func() { run() }); allocs > 0 {
		t.Fatalf("steady-state accumulator allocates %.1f per run, want 0", allocs)
	}
}

// observation is one trial's coverage record, for driving Set tests.
type observation struct {
	fp    uint64
	trial int64
	depth uint64
}

func foldSerial(obs []observation) *Set {
	var s Set
	for _, o := range obs {
		s.Observe(o.fp, o.trial, o.depth)
	}
	return &s
}

// TestSetObserveNovelty: Observe reports novelty exactly once per
// fingerprint and keeps the earliest First.
func TestSetObserveNovelty(t *testing.T) {
	var s Set
	if !s.Observe(10, 5, 1) {
		t.Fatal("first observation not novel")
	}
	if s.Observe(10, 9, 2) {
		t.Fatal("repeat observation reported novel")
	}
	if s.Observe(10, 2, 3) {
		t.Fatal("earlier repeat reported novel")
	}
	e := s.Entries()[0]
	if e.First != 2 || e.Count != 3 || e.Depth != 3 {
		t.Fatalf("entry after out-of-order observations: %+v", e)
	}
	if s.Observations() != 3 || s.Len() != 1 {
		t.Fatalf("obs %d len %d", s.Observations(), s.Len())
	}
}

// TestSetMergeDeterministic: any sharding of an observation stream, and
// any merge order over the shards, produces a Set bit-identical to the
// serial fold — the property that makes parallel coverage campaigns
// worker-count-independent.
func TestSetMergeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var obs []observation
	for trial := int64(0); trial < 500; trial++ {
		obs = append(obs, observation{
			fp:    uint64(rng.Intn(40)) + 1,
			trial: trial,
			depth: uint64(rng.Intn(4)),
		})
	}
	want := foldSerial(obs)

	for _, shards := range []int{1, 2, 3, 8} {
		parts := make([]*Set, shards)
		for i := range parts {
			parts[i] = new(Set)
		}
		// Round-robin sharding mimics the pooled runner's seed striping.
		for i, o := range obs {
			parts[i%shards].Observe(o.fp, o.trial, o.depth)
		}
		// Merge in a shuffled order: Merge must be order-independent.
		order := rng.Perm(shards)
		var got Set
		for _, i := range order {
			got.Merge(parts[i])
		}
		if !got.Equal(want) {
			t.Fatalf("shards=%d merge order %v diverges from serial fold", shards, order)
		}
		if !reflect.DeepEqual(got.Stats(), want.Stats()) {
			t.Fatalf("shards=%d stats diverge:\n got %+v\nwant %+v", shards, got.Stats(), want.Stats())
		}
	}
}

// TestSetMergeEmpty: merging empty or entry-less sets only transfers the
// observation count.
func TestSetMergeEmpty(t *testing.T) {
	var a, b Set
	a.Observe(1, 0, 0)
	a.Merge(&b)
	if a.Len() != 1 || a.Observations() != 1 {
		t.Fatalf("merge of empty set perturbed: len %d obs %d", a.Len(), a.Observations())
	}
	b.Merge(&a)
	if b.Len() != 1 || b.Observations() != 1 {
		t.Fatalf("merge into empty set: len %d obs %d", b.Len(), b.Observations())
	}
}

// TestSetJSONRoundTrip: the checkpoint serialization is deterministic
// and lossless.
func TestSetJSONRoundTrip(t *testing.T) {
	s := foldSerial([]observation{
		{fp: 30, trial: 0, depth: 2},
		{fp: 10, trial: 1, depth: 0},
		{fp: 30, trial: 2, depth: 1},
		{fp: 20, trial: 3, depth: 3},
	})
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	data2, _ := json.Marshal(s)
	if string(data) != string(data2) {
		t.Fatalf("serialization not deterministic:\n%s\n%s", data, data2)
	}
	var back Set
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s) {
		t.Fatalf("round trip diverges:\n got %+v\nwant %+v", back.Entries(), s.Entries())
	}
	if !reflect.DeepEqual(back.Stats(), s.Stats()) {
		t.Fatalf("round-tripped stats diverge")
	}
}

// TestSetStats pins the estimators on a hand-computed example.
func TestSetStats(t *testing.T) {
	// 6 trials: fp 1 at trials 0,2,5 (count 3); fp 2 at trials 1,4
	// (count 2, doubleton); fp 3 at trial 3 (count 1, singleton).
	s := foldSerial([]observation{
		{fp: 1, trial: 0, depth: 0},
		{fp: 2, trial: 1, depth: 1},
		{fp: 1, trial: 2, depth: 0},
		{fp: 3, trial: 3, depth: 1},
		{fp: 2, trial: 4, depth: 2},
		{fp: 1, trial: 5, depth: 0},
	})
	st := s.Stats()
	if st.Behaviors != 3 || st.Observations != 6 {
		t.Fatalf("behaviors %d obs %d", st.Behaviors, st.Observations)
	}
	if st.Singletons != 1 || st.Doubletons != 1 {
		t.Fatalf("f1 %d f2 %d", st.Singletons, st.Doubletons)
	}
	if want := 1.0 / 6.0; st.UnseenMass != want {
		t.Fatalf("unseen mass %v want %v", st.UnseenMass, want)
	}
	// Chao1 = S + f1²/(2·f2) = 3 + 1/2.
	if want := 3.5; st.Chao1 != want {
		t.Fatalf("chao1 %v want %v", st.Chao1, want)
	}
	if st.LastNovel != 3 {
		t.Fatalf("last novel %d want 3", st.LastNovel)
	}
	// Novelty at trials 0,1,3 → gaps 1,2.
	if got := st.GapHist.Count; got != 2 {
		t.Fatalf("gap observations %d want 2", got)
	}
	wantDepth := []DepthCount{{Depth: 0, Behaviors: 1}, {Depth: 1, Behaviors: 2}}
	if !reflect.DeepEqual(st.ByDepth, wantDepth) {
		t.Fatalf("by depth %+v want %+v", st.ByDepth, wantDepth)
	}
}

// TestSetStatsChao1NoDoubletons covers the bias-corrected fallback.
func TestSetStatsChao1NoDoubletons(t *testing.T) {
	s := foldSerial([]observation{
		{fp: 1, trial: 0}, {fp: 2, trial: 1}, {fp: 3, trial: 2},
	})
	st := s.Stats()
	// f1 = 3, f2 = 0 → Chao1 = 3 + 3·2/2 = 6.
	if st.Chao1 != 6 {
		t.Fatalf("chao1 %v want 6", st.Chao1)
	}
}

// TestSetEqualAndSameBehaviors separates the exact-entry and
// fingerprint-set-only comparisons.
func TestSetEqualAndSameBehaviors(t *testing.T) {
	a := foldSerial([]observation{{fp: 1, trial: 0}, {fp: 2, trial: 1}})
	b := foldSerial([]observation{{fp: 1, trial: 0}, {fp: 2, trial: 1}})
	if !a.Equal(b) || !a.SameBehaviors(b) {
		t.Fatal("identical folds not equal")
	}
	// Same behaviors, different counts.
	b.Observe(2, 5, 0)
	if a.Equal(b) {
		t.Fatal("Equal ignores counts")
	}
	if !a.SameBehaviors(b) {
		t.Fatal("SameBehaviors should ignore counts")
	}
	// Different behaviors.
	c := foldSerial([]observation{{fp: 1, trial: 0}, {fp: 3, trial: 1}})
	if a.SameBehaviors(c) {
		t.Fatal("SameBehaviors missed a fingerprint difference")
	}
}

// TestSetNilAndEmpty: nil and empty sets answer every query safely.
func TestSetNilAndEmpty(t *testing.T) {
	var nilSet *Set
	if nilSet.Len() != 0 || nilSet.Observations() != 0 {
		t.Fatal("nil set not empty")
	}
	if got := nilSet.Stats(); got.Behaviors != 0 || got.LastNovel != -1 {
		t.Fatalf("nil stats %+v", got)
	}
	if nilSet.Fingerprints() != nil || nilSet.Novelty() != nil || nilSet.Entries() != nil {
		t.Fatal("nil set yields non-nil slices")
	}
	var empty Set
	if st := empty.Stats(); st.Behaviors != 0 || st.LastNovel != -1 {
		t.Fatalf("empty stats %+v", st)
	}
}
