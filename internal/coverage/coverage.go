// Package coverage turns executions into canonical behavior
// fingerprints and campaigns into saturation estimates: what fraction of
// the program's weak-memory behavior space has a testing campaign
// actually seen, and is it still finding anything new?
//
// A behavior is the observable essence of one complete execution — the
// final values of the static locations, the reads-from relation (which
// write each read observed), and the per-location modification order —
// under a given memory model. Two executions with the same behavior are
// indistinguishable to an assertion, so counting distinct behaviors (the
// C11Tester evaluation metric) measures progress through the space the
// exhaustive explorer (internal/enumerate) can census exactly on
// litmus-sized programs.
//
// The Accumulator computes one uint64 FNV-1a fingerprint per run from
// the engine's event stream, canonically: events are keyed by their
// schedule-invariant (thread, program-order index) coordinates rather
// than by schedule-dependent event ids, and the per-event tuple hashes
// are sorted before the final mix, so any two schedules realizing the
// same behavior collide regardless of interleaving order. The Set
// aggregates fingerprints across a campaign — first-seen trial indices,
// observation counts, novelty gaps, per-depth discovery attribution —
// with a commutative, associative Merge so sharded parallel campaigns
// produce bit-identical results in any merge grouping, and JSON
// round-tripping for the checkpoint store. Stats derives the online
// saturation estimators (Good–Turing unseen mass, Chao1 richness).
package coverage

import (
	"slices"

	"pctwm/internal/memmodel"
)

// FNV-1a parameters, mixed one 64-bit word at a time (the same scheme as
// the engine's final-value interning hash). Collisions are the usual
// 64-bit-hash story: ~2^-64 per pair, negligible against campaign sizes.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Tuple domain tags keep read and write tuples (and the section breaks
// of the final mix) from aliasing each other.
const (
	tagRead   uint64 = 'R'
	tagWrite  uint64 = 'W'
	tagFinals uint64 = 'F'
)

// Accumulator builds one behavior fingerprint per run. It is owned by a
// single Runner and reused across runs: all scratch (the event-id
// translation table, the tuple list, the final-value vector) is retained
// between runs, so the steady state allocates nothing.
//
// Usage per run: Reset, Observe every event in execution order,
// PushFinal the final values in static location order, Finalize.
type Accumulator struct {
	model    string
	modelTag uint64

	// idTab translates schedule-dependent event ids into canonical
	// (thread, po-index) coordinates, packed tid<<32|index. Indexed by
	// EventID; ids are assigned densely from 0, and every event passes
	// Observe before any later read can name it as a reads-from source
	// (a write executes — including into a TSO store buffer — before it
	// becomes visible), so lookups never miss.
	idTab []uint64

	// tuples holds one hash per observed read/write aspect; Finalize
	// sorts it so the fingerprint is independent of observation order.
	tuples []uint64

	// finals collects the final-value vector (static location order).
	finals []uint64
}

// pack maps an event to its canonical schedule-invariant coordinates.
// Thread ids and po indices are dense and small; 32 bits each is vastly
// more than any program the engine can run.
func pack(tid memmodel.ThreadID, index int) uint64 {
	return uint64(uint32(tid))<<32 | uint64(uint32(index))
}

// Reset prepares the accumulator for a fresh run of a program with
// staticLocs static locations under the given memory model. The
// initialization writes (event ids 0..staticLocs-1, thread 0, index i)
// never pass Observe, so their translation entries are seeded here.
func (a *Accumulator) Reset(model string, staticLocs int) {
	if a.modelTag == 0 || model != a.model {
		a.model = model
		h := fnvOffset
		for i := 0; i < len(model); i++ {
			h = (h ^ uint64(model[i])) * fnvPrime
		}
		a.modelTag = h
	}
	a.idTab = a.idTab[:0]
	for i := 0; i < staticLocs; i++ {
		a.idTab = append(a.idTab, pack(memmodel.InitThread, i))
	}
	a.tuples = a.tuples[:0]
	a.finals = a.finals[:0]
}

// Observe folds one event into the fingerprint. Every event must pass
// through (the id table needs all ids), but only reads contribute an
// rf-pair tuple and only writes a modification-order tuple; RMWs
// contribute both. Call order must follow execution order only so that
// reads-from sources are already registered — the fingerprint itself is
// order-invariant.
func (a *Accumulator) Observe(ev *memmodel.Event) {
	self := pack(ev.TID, ev.Index)
	if id := int(ev.ID); id == len(a.idTab) {
		a.idTab = append(a.idTab, self)
	} else if id >= 0 {
		for len(a.idTab) <= id {
			a.idTab = append(a.idTab, 0)
		}
		a.idTab[id] = self
	}
	kind := ev.Label.Kind
	if kind.Reads() && ev.ReadsFrom != memmodel.NoEvent {
		var src uint64
		if w := int(ev.ReadsFrom); w >= 0 && w < len(a.idTab) {
			src = a.idTab[w]
		}
		h := fnvOffset
		h = (h ^ tagRead) * fnvPrime
		h = (h ^ self) * fnvPrime
		h = (h ^ uint64(uint32(ev.Label.Loc))) * fnvPrime
		h = (h ^ src) * fnvPrime
		a.tuples = append(a.tuples, h)
	}
	if kind.Writes() {
		// Stamp is the write's 1-based position in its location's
		// modification order — the per-model extra that distinguishes
		// executions agreeing on rf and finals but not on coherence.
		h := fnvOffset
		h = (h ^ tagWrite) * fnvPrime
		h = (h ^ self) * fnvPrime
		h = (h ^ uint64(uint32(ev.Label.Loc))) * fnvPrime
		h = (h ^ uint64(ev.Label.WVal)) * fnvPrime
		h = (h ^ uint64(ev.Stamp)) * fnvPrime
		a.tuples = append(a.tuples, h)
	}
}

// PushFinal appends one final value. Callers push the mo-maximal value
// of every static location in static declaration order, giving every
// run of a program the same-length, same-order vector.
func (a *Accumulator) PushFinal(v memmodel.Value) {
	a.finals = append(a.finals, uint64(v))
}

// Finalize returns the run's behavior fingerprint and clears the
// per-run state (the scratch capacity is retained). The tuple hashes
// are sorted in place first: observation order drops out, leaving a
// pure function of {rf pairs} ∪ {mo-stamped writes} + final values +
// model.
func (a *Accumulator) Finalize() uint64 {
	slices.Sort(a.tuples)
	h := a.modelTag
	h = (h ^ uint64(len(a.tuples))) * fnvPrime
	for _, t := range a.tuples {
		h = (h ^ t) * fnvPrime
	}
	h = (h ^ tagFinals) * fnvPrime
	h = (h ^ uint64(len(a.finals))) * fnvPrime
	for _, v := range a.finals {
		h = (h ^ v) * fnvPrime
	}
	a.tuples = a.tuples[:0]
	a.finals = a.finals[:0]
	return h
}
