package coverage

import (
	"encoding/json"
	"slices"

	"pctwm/internal/telemetry"
)

// Entry is one distinct behavior's campaign record.
type Entry struct {
	// FP is the behavior fingerprint (Accumulator.Finalize).
	FP uint64 `json:"fp"`
	// First is the global trial index (0-based, across resumes and
	// workers) of the trial that first exhibited the behavior.
	First int64 `json:"first"`
	// Count is how many trials exhibited the behavior in total.
	Count uint64 `json:"count"`
	// Depth is the discovering trial's change-point depth attribution:
	// how many schedule change points the strategy had injected in that
	// trial (0 for strategies without change points).
	Depth uint64 `json:"depth,omitempty"`
}

// Set is a campaign's first-seen behavior set. Each worker (and each
// checkpoint chunk) accumulates its own Set; Merge folds them together.
// Because Observe keys novelty by the global trial index and Merge
// resolves duplicates by minimum First, the merged Set is independent
// of worker count, merge grouping and kill/resume boundaries — the
// campaign determinism guarantee extends to coverage.
//
// A Set is not safe for concurrent use; shard per worker and merge.
type Set struct {
	m   map[uint64]Entry
	obs uint64
}

// Observe folds one trial's behavior into the set, reporting whether it
// was novel. trial is the campaign-global trial index; depth is the
// trial's change-point attribution (see Entry.Depth).
func (s *Set) Observe(fp uint64, trial int64, depth uint64) (novel bool) {
	if s.m == nil {
		s.m = make(map[uint64]Entry)
	}
	s.obs++
	e, ok := s.m[fp]
	if !ok {
		s.m[fp] = Entry{FP: fp, First: trial, Count: 1, Depth: depth}
		return true
	}
	e.Count++
	if trial < e.First {
		e.First, e.Depth = trial, depth
	}
	s.m[fp] = e
	return false
}

// Merge folds o into s. The operation is commutative and associative:
// counts add, and the earliest First (with its Depth attribution) wins,
// with the smaller Depth breaking the (normally impossible) tie of two
// shards claiming the same trial index.
func (s *Set) Merge(o *Set) {
	if o == nil || len(o.m) == 0 {
		s.obs += o.Observations()
		return
	}
	if s.m == nil {
		s.m = make(map[uint64]Entry, len(o.m))
	}
	s.obs += o.obs
	for fp, oe := range o.m {
		e, ok := s.m[fp]
		if !ok {
			s.m[fp] = oe
			continue
		}
		e.Count += oe.Count
		if oe.First < e.First || (oe.First == e.First && oe.Depth < e.Depth) {
			e.First, e.Depth = oe.First, oe.Depth
		}
		s.m[fp] = e
	}
}

// Len returns the number of distinct behaviors seen.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.m)
}

// Observations returns the total number of trials folded in.
func (s *Set) Observations() uint64 {
	if s == nil {
		return 0
	}
	return s.obs
}

// Entries returns the behaviors sorted by fingerprint (the canonical
// serialization order).
func (s *Set) Entries() []Entry {
	if s == nil {
		return nil
	}
	out := make([]Entry, 0, len(s.m))
	for _, e := range s.m {
		out = append(out, e)
	}
	slices.SortFunc(out, func(a, b Entry) int {
		switch {
		case a.FP < b.FP:
			return -1
		case a.FP > b.FP:
			return 1
		}
		return 0
	})
	return out
}

// Fingerprints returns the sorted distinct fingerprints — the campaign's
// behavior census, directly comparable against the exhaustive explorer's.
func (s *Set) Fingerprints() []uint64 {
	if s == nil {
		return nil
	}
	out := make([]uint64, 0, len(s.m))
	for fp := range s.m {
		out = append(out, fp)
	}
	slices.Sort(out)
	return out
}

// Novelty returns the novelty time series: the sorted global trial
// indices at which a new behavior was first seen (one per behavior).
func (s *Set) Novelty() []int64 {
	if s == nil {
		return nil
	}
	out := make([]int64, 0, len(s.m))
	for _, e := range s.m {
		out = append(out, e.First)
	}
	slices.Sort(out)
	return out
}

// setJSON is the serialized form: the sorted entry list. Observations
// are recovered as the sum of counts.
type setJSON struct {
	Entries []Entry `json:"entries"`
}

// MarshalJSON serializes the set deterministically (entries sorted by
// fingerprint), so checkpoints of equal sets are byte-identical.
func (s *Set) MarshalJSON() ([]byte, error) {
	return json.Marshal(setJSON{Entries: s.Entries()})
}

// UnmarshalJSON restores a set serialized by MarshalJSON.
func (s *Set) UnmarshalJSON(data []byte) error {
	var sj setJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return err
	}
	s.m = make(map[uint64]Entry, len(sj.Entries))
	s.obs = 0
	for _, e := range sj.Entries {
		s.m[e.FP] = e
		s.obs += e.Count
	}
	return nil
}

// DepthCount attributes first discoveries to a change-point depth.
type DepthCount struct {
	Depth     uint64 `json:"depth"`
	Behaviors int    `json:"behaviors"`
}

// Stats summarizes a campaign's coverage state: how much has been seen,
// how fast novelty is still arriving, and the online estimates of what
// remains unseen.
type Stats struct {
	// Behaviors is the number of distinct behaviors observed.
	Behaviors int
	// Observations is the number of complete trials folded in.
	Observations uint64
	// Singletons (f1) and Doubletons (f2) are the abundance counts the
	// estimators are built from: behaviors seen exactly once / twice.
	Singletons uint64
	Doubletons uint64
	// UnseenMass is the Good–Turing estimate f1/N of the probability
	// that the next trial exhibits a never-seen behavior. 0 when it is
	// exactly zero or no trials have been observed.
	UnseenMass float64
	// Chao1 is the Chao1 lower-bound estimate of the total number of
	// behaviors reachable at the campaign's sampling distribution:
	// S + f1²/(2·f2), or the bias-corrected S + f1(f1-1)/2 when f2 = 0.
	Chao1 float64
	// LastNovel is the global trial index of the most recent first
	// discovery (-1 when nothing was observed). A saturated campaign
	// ran LastNovel+1 trials to full coverage.
	LastNovel int64
	// GapHist is the log2-bucketed histogram of trials between
	// consecutive first discoveries (novelty gaps): mass drifting into
	// high buckets is the visible shape of saturation.
	GapHist telemetry.Hist
	// ByDepth attributes first discoveries to the discovering trial's
	// change-point depth, ascending.
	ByDepth []DepthCount
}

// Stats computes the campaign summary. It is a pure function of the
// set's contents, so serial and merged-parallel campaigns with equal
// sets report bit-identical statistics.
func (s *Set) Stats() Stats {
	st := Stats{Behaviors: s.Len(), Observations: s.Observations(), LastNovel: -1}
	if s == nil || len(s.m) == 0 {
		return st
	}
	byDepth := make(map[uint64]int)
	for _, e := range s.m {
		switch e.Count {
		case 1:
			st.Singletons++
		case 2:
			st.Doubletons++
		}
		byDepth[e.Depth]++
	}
	if st.Observations > 0 {
		st.UnseenMass = float64(st.Singletons) / float64(st.Observations)
	}
	f1, f2 := float64(st.Singletons), float64(st.Doubletons)
	if f2 > 0 {
		st.Chao1 = float64(st.Behaviors) + f1*f1/(2*f2)
	} else {
		st.Chao1 = float64(st.Behaviors) + f1*(f1-1)/2
	}
	novelty := s.Novelty()
	st.LastNovel = novelty[len(novelty)-1]
	for i := 1; i < len(novelty); i++ {
		st.GapHist.Observe(uint64(novelty[i] - novelty[i-1]))
	}
	for d, n := range byDepth {
		st.ByDepth = append(st.ByDepth, DepthCount{Depth: d, Behaviors: n})
	}
	slices.SortFunc(st.ByDepth, func(a, b DepthCount) int {
		switch {
		case a.Depth < b.Depth:
			return -1
		case a.Depth > b.Depth:
			return 1
		}
		return 0
	})
	return st
}

// Equal reports whether two sets contain exactly the same entries
// (fingerprints, first-seen indices, counts and depth attributions) —
// the bit-identical-merge property the determinism tests pin.
func (s *Set) Equal(o *Set) bool {
	if s.Len() != o.Len() || s.Observations() != o.Observations() {
		return false
	}
	if s == nil || s.m == nil {
		return true
	}
	for fp, e := range s.m {
		oe, ok := o.m[fp]
		if !ok || oe != e {
			return false
		}
	}
	return true
}

// SameBehaviors reports whether two sets saw the same distinct
// behaviors, ignoring when and how often — the census-equality check
// against the exhaustive explorer.
func (s *Set) SameBehaviors(o *Set) bool {
	if s.Len() != o.Len() {
		return false
	}
	if s == nil || s.m == nil {
		return true
	}
	for fp := range s.m {
		if _, ok := o.m[fp]; !ok {
			return false
		}
	}
	return true
}
