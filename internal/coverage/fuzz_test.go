package coverage

import (
	"math/rand"
	"testing"

	"pctwm/internal/memmodel"
)

// FuzzFingerprintOrderInvariance drives the canonicalizer with
// arbitrary event batches: any observation order that registers a read's
// reads-from source before the read (here: all writes before all reads,
// each group in any permutation) must produce the identical fingerprint,
// and repeated finalization of the same batch must be deterministic.
// Event ids are deliberately assigned in decode order, so permuting the
// observation order exercises the out-of-order id-table growth path.
func FuzzFingerprintOrderInvariance(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x00, 0x07, 0x00, 0x01, 0x01, 0x03}, uint64(1))
	f.Add([]byte{0xff, 0x00, 0x01, 0x00}, uint64(42))
	f.Add([]byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, data []byte, permSeed uint64) {
		const staticLocs = 3
		var writes, reads []*memmodel.Event
		nextIndex := map[memmodel.ThreadID]int{}
		for i := 0; i+4 <= len(data) && i < 4*64; i += 4 {
			b := data[i : i+4]
			tid := memmodel.ThreadID(1 + b[1]%4)
			index := nextIndex[tid]
			nextIndex[tid]++
			loc := memmodel.Loc(b[2] % staticLocs)
			id := memmodel.EventID(staticLocs + len(writes) + len(reads))
			if b[0]&1 == 0 {
				writes = append(writes,
					mkWrite(id, tid, index, loc, memmodel.Value(b[3]), memmodel.TS(2+len(writes))))
			} else {
				// Read from an initialization write or any write decoded
				// so far — both are registered before the reads pass.
				pick := int(b[3]) % (staticLocs + len(writes))
				src := memmodel.EventID(pick)
				if pick >= staticLocs {
					src = writes[pick-staticLocs].ID
				}
				reads = append(reads, mkRead(id, tid, index, loc, src))
			}
		}
		finals := []memmodel.Value{0, 0, 0}

		observe := func(order []*memmodel.Event) uint64 {
			var a Accumulator
			a.Reset("rc11", staticLocs)
			for _, ev := range order {
				a.Observe(ev)
			}
			for _, v := range finals {
				a.PushFinal(v)
			}
			return a.Finalize()
		}
		canonical := append(append([]*memmodel.Event{}, writes...), reads...)
		ref := observe(canonical)
		if again := observe(canonical); again != ref {
			t.Fatalf("fingerprint not deterministic: %#x vs %#x", again, ref)
		}

		rng := rand.New(rand.NewSource(int64(permSeed)))
		for round := 0; round < 4; round++ {
			pw := append([]*memmodel.Event{}, writes...)
			pr := append([]*memmodel.Event{}, reads...)
			rng.Shuffle(len(pw), func(i, j int) { pw[i], pw[j] = pw[j], pw[i] })
			rng.Shuffle(len(pr), func(i, j int) { pr[i], pr[j] = pr[j], pr[i] })
			if got := observe(append(pw, pr...)); got != ref {
				t.Fatalf("round %d: permuted observation order changed the fingerprint: %#x vs %#x",
					round, got, ref)
			}
		}
	})
}
