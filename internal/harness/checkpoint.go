package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pctwm/internal/checkpoint"
	"pctwm/internal/coverage"
	"pctwm/internal/engine"
	"pctwm/internal/telemetry"
)

// Metrics is the canonical checkpoint.Observer; the assertion lives here
// because telemetry deliberately does not import checkpoint.
var _ checkpoint.Observer = (*telemetry.Metrics)(nil)

// DefaultCheckpointEvery is the checkpoint cadence (trials per
// generation) when CheckpointSpec.Every is zero. Large enough that the
// save cost (one JSON write) vanishes against thousands of trials, small
// enough that a kill loses at most a few seconds of work.
const DefaultCheckpointEvery = 5000

// CheckpointSpec arms the checkpoint/resume layer of RunCampaign: the
// campaign runs in chunks of Every trials and writes an atomic,
// checksummed, versioned snapshot of its cumulative state after each
// chunk, so a killed process can resume with -resume and finish with
// bit-identical totals to an uninterrupted run at any worker count.
//
// One spec is shared by every campaign of a process (each campaign cell
// gets its own subdirectory under Dir, keyed by program/seed/runs/model
// plus Campaign.CheckpointCell); the degraded flag is deliberately
// sticky across cells — once the directory proves unwritable, the whole
// report is marked.
type CheckpointSpec struct {
	// Dir is the checkpoint directory (required; "" disables the layer).
	Dir string
	// Every is the chunk size in trials (0 = DefaultCheckpointEvery). A
	// kill or cancellation loses at most the in-flight chunk, which the
	// resumed campaign re-runs from its chunk boundary.
	Every int
	// Resume makes campaigns load the newest good checkpoint generation
	// under Dir and continue from it instead of starting over.
	Resume bool
	// FS is the filesystem checkpoints and repro bundles are written
	// through (nil = the real one); tests inject a checkpoint.FaultFS.
	FS checkpoint.FS
	// Logf receives the one-time degradation notice and corruption
	// recoveries (nil = silent).
	Logf func(format string, args ...any)

	degraded atomic.Bool
	logOnce  sync.Once

	// killAfterChunks is a test hook simulating SIGKILL: when > 0 the
	// campaign returns abruptly after that many committed generations,
	// leaving durable state exactly as a kill between generations would.
	killAfterChunks int
}

func (s *CheckpointSpec) fsys() checkpoint.FS {
	if s.FS == nil {
		return checkpoint.OS
	}
	return s.FS
}

func (s *CheckpointSpec) every() int {
	if s.Every <= 0 {
		return DefaultCheckpointEvery
	}
	return s.Every
}

func (s *CheckpointSpec) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Degraded reports whether any campaign under this spec gave up on
// durable writes (the directory became unwritable mid-campaign).
func (s *CheckpointSpec) Degraded() bool { return s.degraded.Load() }

// degrade records a durable-write failure: the campaign keeps running,
// the failure is logged once, and the result is marked degraded.
func (s *CheckpointSpec) degrade(err error, m *telemetry.Metrics) {
	s.logOnce.Do(func() {
		s.logf("checkpoint: durable writes failing, campaign continues without checkpoints: %v", err)
		if m != nil {
			m.CheckpointDegraded()
		}
	})
	s.degraded.Store(true)
}

// campaignKey identifies one campaign cell: the identity a checkpoint
// must match to be resumed into it. Strategy identity is deliberately
// not part of the key (strategy factories cannot be probed without
// consuming stateful ones); callers that run several strategies over the
// same (program, seed, runs) disambiguate with Campaign.CheckpointCell.
type campaignKey struct {
	Cell    string `json:"cell,omitempty"`
	Program string `json:"program"`
	Threads int    `json:"threads"`
	Locs    int    `json:"locs"`
	Seed    int64  `json:"seed"`
	Runs    int    `json:"runs"`
	Model   string `json:"model"`
}

func newCampaignKey(cell string, prog *engine.Program, seed int64, runs int, model string) campaignKey {
	if model == "" {
		model = engine.ModelRC11
	}
	return campaignKey{
		Cell:    cell,
		Program: prog.Name(),
		Threads: prog.NumThreads(),
		Locs:    prog.NumLocs(),
		Seed:    seed,
		Runs:    runs,
		Model:   model,
	}
}

// id renders the key canonically; it is stored in every checkpoint
// envelope and verified on load.
func (k campaignKey) id() string {
	data, _ := json.Marshal(k)
	return string(data)
}

// dirName maps the key onto a filesystem-safe subdirectory: a
// human-readable slug plus a hash of the full identity (two cells that
// differ only in, say, seed never share a directory).
func (k campaignKey) dirName() string {
	slug := k.Cell
	if slug == "" {
		slug = k.Program
	}
	slug = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, slug)
	h := fnv.New64a()
	h.Write([]byte(k.id()))
	return fmt.Sprintf("%s-%016x", slug, h.Sum64())
}

// campaignState is the checkpoint payload: everything needed to resume a
// campaign and finish with totals bit-identical to an uninterrupted run.
// NextTrial is the number of leading rounds fully merged into the
// counts; the resumed campaign continues at seed+NextTrial. Wall-clock
// fields accumulate across sessions.
type campaignState struct {
	Key              string                    `json:"key"`
	NextTrial        int                       `json:"next_trial"`
	Complete         bool                      `json:"complete"`
	Runs             int                       `json:"runs"`
	Hits             int                       `json:"hits"`
	Aborted          int                       `json:"aborted"`
	Deadlock         int                       `json:"deadlock"`
	Panics           int                       `json:"panics"`
	Timeouts         int                       `json:"timeouts"`
	Canceled         int                       `json:"canceled"`
	TotalEvents      int                       `json:"total_events"`
	ElapsedNs        int64                     `json:"elapsed_ns"`
	WallNs           int64                     `json:"wall_ns"`
	Nondeterministic int                       `json:"nondeterministic"`
	Failures         []TrialFailure            `json:"failures,omitempty"`
	Telemetry        *telemetry.EngineCounters `json:"telemetry,omitempty"`
	Coverage         *coverage.Set             `json:"coverage,omitempty"`
}

// newCampaignState snapshots the cumulative result at a chunk boundary.
// The telemetry change-point log (a bounded per-Runner diagnostic,
// excluded from merged totals) is not persisted.
func newCampaignState(key campaignKey, cum *TrialResult, next int, complete bool) campaignState {
	st := campaignState{
		Key:              key.id(),
		NextTrial:        next,
		Complete:         complete,
		Runs:             cum.Runs,
		Hits:             cum.Hits,
		Aborted:          cum.Aborted,
		Deadlock:         cum.Deadlock,
		Panics:           cum.Panics,
		Timeouts:         cum.Timeouts,
		Canceled:         cum.Canceled,
		TotalEvents:      cum.TotalEvents,
		ElapsedNs:        cum.Elapsed.Nanoseconds(),
		WallNs:           cum.Wall.Nanoseconds(),
		Nondeterministic: cum.Nondeterministic,
		Failures:         cum.Failures,
	}
	if cum.Telemetry != nil {
		tel := *cum.Telemetry
		tel.ChangePoints = nil
		st.Telemetry = &tel
	}
	st.Coverage = cum.Coverage
	return st
}

// restore loads the checkpointed counts into a fresh cumulative result.
func (st *campaignState) restore(cum *TrialResult) {
	cum.Runs = st.Runs
	cum.Hits = st.Hits
	cum.Aborted = st.Aborted
	cum.Deadlock = st.Deadlock
	cum.Panics = st.Panics
	cum.Timeouts = st.Timeouts
	cum.Canceled = st.Canceled
	cum.TotalEvents = st.TotalEvents
	cum.Elapsed = time.Duration(st.ElapsedNs)
	cum.Wall = time.Duration(st.WallNs)
	cum.Nondeterministic = st.Nondeterministic
	cum.Failures = st.Failures
	cum.Telemetry = st.Telemetry
	cum.Coverage = st.Coverage
	cum.ResumedRuns = st.NextTrial
}

// mergeCheckpointChunk folds one chunk's result into the cumulative
// campaign result. Counter merging matches mergeTrialResults; failures
// append (the repro budget is enforced globally by the chunk loop) and
// telemetry merges commutatively, so the cumulative totals equal an
// uninterrupted run's at any chunking and worker count.
func mergeCheckpointChunk(cum *TrialResult, chunk TrialResult) {
	mergeTrialResults(cum, chunk)
	cum.Wall += chunk.Wall
	cum.Stuck = cum.Stuck || chunk.Stuck
	if chunk.StuckDiag != "" {
		cum.StuckDiag = chunk.StuckDiag
	}
	cum.Failures = append(cum.Failures, chunk.Failures...)
	cum.Nondeterministic += chunk.Nondeterministic
	if chunk.Telemetry != nil {
		if cum.Telemetry == nil {
			cum.Telemetry = &telemetry.EngineCounters{}
		}
		keepCPs := cum.Telemetry.ChangePoints
		cum.Telemetry.Merge(chunk.Telemetry)
		if len(keepCPs) == 0 && len(chunk.Telemetry.ChangePoints) > 0 {
			cum.Telemetry.ChangePoints = append([]telemetry.ChangePoint(nil), chunk.Telemetry.ChangePoints...)
		} else {
			cum.Telemetry.ChangePoints = keepCPs
		}
	}
	if chunk.Coverage != nil {
		if cum.Coverage == nil {
			cum.Coverage = &coverage.Set{}
		}
		// Chunk trial indices are already campaign-global (the loop sets
		// Campaign.trialBase per chunk), so the merge is the same
		// order-insensitive fold the parallel workers use.
		cum.Coverage.Merge(chunk.Coverage)
	}
}

// runCheckpointedCampaign is RunCampaign's durable mode: the rounds run
// in chunks of spec.every() through the ordinary pool, and the
// cumulative state is checkpointed at every chunk boundary.
//
// Determinism argument: round i always runs with seed+i regardless of
// which worker claims it (the pool's atomic-counter partitioning), and
// every aggregate — counters, histograms, engine telemetry — merges
// commutatively. Chunk boundaries are therefore arbitrary split points
// of the same seed set: resuming at a boundary re-runs exactly the
// rounds an uninterrupted campaign would have run, so the final totals
// are bit-identical at any worker count and any kill pattern.
// Interrupted or stuck chunks are merged into the *returned* result (the
// operator sees partial counts) but never checkpointed: the durable
// state only ever advances by whole, cleanly-finished chunks, which a
// resume re-runs idempotently.
func runCheckpointedCampaign(prog *engine.Program, detect func(*engine.Outcome) bool,
	newStrategy func() engine.Strategy, runs int, seed int64, opts engine.Options, camp Campaign) TrialResult {
	spec := camp.Checkpoint
	key := newCampaignKey(camp.CheckpointCell, prog, seed, runs, opts.Model)
	store := &checkpoint.Store{FS: spec.fsys(), Dir: filepath.Join(spec.Dir, key.dirName())}
	if camp.Metrics != nil {
		store.Observer = camp.Metrics
	}

	// The caller's accumulator is stripped from the chunk options and
	// merged into exactly once at the end, mirroring runCampaignBatch.
	collect := camp.Telemetry || opts.Telemetry != nil
	telBase := opts.Telemetry
	opts.Telemetry = nil

	var cum TrialResult
	at := 0
	if spec.Resume {
		payload, gen, err := store.Load(key.id())
		var corrupt *checkpoint.CorruptError
		switch {
		case err == nil:
			var st campaignState
			if jerr := json.Unmarshal(payload, &st); jerr == nil {
				at = st.NextTrial
				st.restore(&cum)
				if camp.Metrics != nil && cum.Telemetry != nil {
					camp.Metrics.MergeEngine(cum.Telemetry)
				}
				if st.Complete || at >= runs {
					finishResumed(&cum, telBase, spec)
					return cum
				}
				spec.logf("checkpoint: resuming %s at trial %d/%d (generation %d)", key.dirName(), at, runs, gen)
			}
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			// Fresh campaign: nothing to resume.
		case errors.As(err, &corrupt):
			// Every generation is corrupt: start over rather than crash.
			spec.logf("checkpoint: %v; restarting campaign from trial 0", err)
		default:
			spec.logf("checkpoint: load failed (%v); restarting campaign from trial 0", err)
		}
	}

	reproTotal := 0
	if camp.ReproDir != "" {
		reproTotal = camp.MaxRepros
		if reproTotal <= 0 {
			reproTotal = defaultMaxRepros
		}
	}

	saved := 0
	for at < runs {
		if camp.Context != nil && camp.Context.Err() != nil {
			cum.Interrupted = true
			break
		}
		n := min(spec.every(), runs-at)
		inner := camp
		inner.Checkpoint = nil
		inner.CheckpointCell = ""
		inner.Telemetry = collect
		inner.sinkFS = spec.fsys()
		// Coverage novelty is keyed by campaign-global trial indices: the
		// chunk's workers offset their local indices by the chunk start,
		// so a resumed campaign's coverage curve continues seamlessly.
		inner.trialBase = int64(at)
		if camp.Coverage {
			// Seed the chunk's repro dedupe with the behaviors already
			// bundled (restored from the checkpoint or earlier chunks).
			inner.reproSeen = nil
			for _, f := range cum.Failures {
				if f.BehaviorFP != 0 {
					inner.reproSeen = append(inner.reproSeen, f.BehaviorFP)
				}
			}
		}
		if camp.ReproDir != "" {
			// The repro budget is global across chunks and sessions: the
			// restored failure list counts against it, so a resumed campaign
			// captures exactly the failures an uninterrupted one would.
			remaining := reproTotal - len(cum.Failures)
			if remaining <= 0 {
				inner.ReproDir = ""
				inner.MaxRepros = 0
			} else {
				inner.MaxRepros = remaining
			}
		}
		chunk := runCampaignBatch(prog, detect, newStrategy, n, seed+int64(at), opts, inner)
		mergeCheckpointChunk(&cum, chunk)
		if chunk.Interrupted || chunk.Stuck {
			break
		}
		at += n
		st := newCampaignState(key, &cum, at, at >= runs)
		payload, merr := json.Marshal(st)
		if merr != nil {
			spec.degrade(merr, camp.Metrics)
		} else if _, serr := store.Save(key.id(), payload); serr != nil {
			spec.degrade(serr, camp.Metrics)
		} else {
			saved++
			if spec.killAfterChunks > 0 && saved >= spec.killAfterChunks && at < runs {
				// Simulated SIGKILL between generations: abandon the campaign
				// with the durable state exactly as a kill would leave it.
				cum.Interrupted = true
				finishResumed(&cum, nil, spec)
				return cum
			}
		}
	}
	finishResumed(&cum, telBase, spec)
	return cum
}

// finishResumed applies the end-of-campaign bookkeeping shared by every
// exit path of the checkpointed loop: the caller's telemetry accumulator
// merge and the durability stamp.
func finishResumed(cum *TrialResult, telBase *telemetry.EngineCounters, spec *CheckpointSpec) {
	if telBase != nil && cum.Telemetry != nil {
		telBase.Merge(cum.Telemetry)
	}
	if spec.Degraded() {
		cum.Durability = DurabilityDegraded
	}
}

// LoadReproIndex collects the repro-bundle paths recorded in the newest
// good checkpoint generation of every campaign cell under dir, sorted
// and deduplicated — the durable index pctwm-replay -campaign replays.
func LoadReproIndex(fsys checkpoint.FS, dir string) ([]string, error) {
	if fsys == nil {
		fsys = checkpoint.OS
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading campaign dir: %w", err)
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		store := &checkpoint.Store{FS: fsys, Dir: filepath.Join(dir, e.Name())}
		payload, _, err := store.LoadLatest()
		if err != nil {
			continue // empty or corrupt cell: nothing to index
		}
		var st campaignState
		if json.Unmarshal(payload, &st) != nil {
			continue
		}
		for _, f := range st.Failures {
			if f.BundlePath != "" {
				paths = append(paths, f.BundlePath)
			}
		}
	}
	sort.Strings(paths)
	out := paths[:0]
	for i, p := range paths {
		if i == 0 || p != paths[i-1] {
			out = append(out, p)
		}
	}
	return out, nil
}
