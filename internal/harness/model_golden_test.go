package harness_test

// Golden-digest gate for the memory-model backend refactor: with the
// default rc11 backend the engine must produce bit-identical schedules
// and outcomes to the pre-refactor view machine at equal seeds. The
// digests in testdata/rc11_golden.json were captured from the monolithic
// engine immediately before the MemoryModel extraction; every litmus
// test and every paper benchmark is replayed under the random and PCTWM
// strategies for 200 seeds and the full execution (outcome counters,
// final state, recorded event stream with rf/mo/SC order, spawn/join
// links) is hashed per seed. Any divergence pinpoints the first
// (program, strategy, seed) whose trace changed.
//
// Regenerate (only when an intentional semantic change is made):
//
//	go test ./internal/harness -run TestRC11GoldenDigests -update-golden

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"pctwm/internal/benchprog"
	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/litmus"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/rc11_golden.json from the current engine")

const goldenSeeds = 200

// fnv1a accumulates 64-bit FNV-1a.
type fnv1a uint64

func newFNV() fnv1a { return 14695981039346656037 }

func (h *fnv1a) word(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x = (x ^ (v & 0xff)) * 1099511628211
		v >>= 8
	}
	*h = fnv1a(x)
}

func (h *fnv1a) str(s string) {
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x = (x ^ uint64(s[i])) * 1099511628211
	}
	x = (x ^ 0xff) * 1099511628211 // terminator: "ab","c" != "a","bc"
	*h = fnv1a(x)
}

// digestOutcome hashes everything schedule-determined about one run.
func digestOutcome(o *engine.Outcome) uint64 {
	h := newFNV()
	h.word(uint64(o.Steps))
	h.word(uint64(o.Events))
	h.word(uint64(o.CommEvents))
	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	h.word(b2u(o.BugHit))
	h.word(b2u(o.Aborted))
	h.word(b2u(o.Deadlocked))
	for _, m := range o.BugMessages {
		h.str(m)
	}
	if o.Err != nil {
		h.word(uint64(o.Err.Kind))
		h.word(uint64(o.Err.TID))
		h.str(o.Err.Msg)
	}
	h.word(uint64(len(o.Races)))
	keys := make([]string, 0, len(o.FinalValues))
	for k := range o.FinalValues {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h.str(k)
		h.word(uint64(o.FinalValues[k]))
	}
	if r := o.Recording; r != nil {
		for i := range r.Events {
			ev := &r.Events[i]
			h.word(uint64(ev.ID))
			h.word(uint64(ev.TID))
			h.word(uint64(ev.Index))
			h.word(uint64(ev.Label.Kind))
			h.word(uint64(ev.Label.Order))
			h.word(uint64(ev.Label.Loc))
			h.word(uint64(ev.Label.RVal))
			h.word(uint64(ev.Label.WVal))
			h.word(uint64(ev.Stamp))
			h.word(uint64(ev.ReadsFrom))
		}
		for _, id := range r.SCOrder {
			h.word(uint64(id))
		}
		for _, l := range r.SpawnLinks {
			h.word(uint64(l.From))
			h.word(uint64(l.Child))
		}
		for _, l := range r.JoinLinks {
			h.word(uint64(l.Child))
			h.word(uint64(l.To))
		}
	}
	return uint64(h)
}

// goldenCase is one (program, options, strategy) cell of the matrix.
type goldenCase struct {
	key   string
	prog  *engine.Program
	opts  engine.Options
	mk    func() engine.Strategy
	seeds int
}

func goldenCases() []goldenCase {
	strategies := func(depth int) map[string]func() engine.Strategy {
		if depth < 1 {
			depth = 1
		}
		return map[string]func() engine.Strategy{
			"random": func() engine.Strategy { return core.NewRandom() },
			"pctwm":  func() engine.Strategy { return core.NewPCTWM(depth, 1, 100) },
		}
	}
	var cases []goldenCase
	for _, lt := range litmus.Suite() {
		for sname, mk := range strategies(1) {
			cases = append(cases, goldenCase{
				key: lt.Name + "/" + sname, prog: lt.Program,
				opts: engine.Options{}, mk: mk, seeds: goldenSeeds,
			})
		}
	}
	for _, b := range benchprog.All() {
		for sname, mk := range strategies(b.Depth) {
			cases = append(cases, goldenCase{
				key: b.Name + "/" + sname, prog: b.Program(0),
				opts: b.Options(), mk: mk, seeds: goldenSeeds,
			})
		}
	}
	sort.Slice(cases, func(i, j int) bool { return cases[i].key < cases[j].key })
	return cases
}

func computeDigests(c goldenCase) []string {
	opts := c.opts
	opts.Record = true
	r := engine.NewRunner(c.prog, opts)
	defer r.Close()
	out := make([]string, c.seeds)
	for seed := 1; seed <= c.seeds; seed++ {
		o := r.Run(c.mk(), int64(seed))
		out[seed-1] = fmt.Sprintf("%016x", digestOutcome(o))
	}
	return out
}

const goldenPath = "testdata/rc11_golden.json"

func TestRC11GoldenDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("golden digest matrix is not run in -short mode")
	}
	cases := goldenCases()

	if *updateGolden {
		golden := make(map[string][]string, len(cases))
		for _, c := range cases {
			golden[c.key] = computeDigests(c)
		}
		data, err := json.MarshalIndent(golden, "", " ")
		if err != nil {
			t.Fatalf("encoding golden digests: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatalf("creating testdata dir: %v", err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("writing %s: %v", goldenPath, err)
		}
		t.Logf("wrote %d cells × %d seeds to %s", len(cases), goldenSeeds, goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading %s (regenerate with -update-golden): %v", goldenPath, err)
	}
	var golden map[string][]string
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}

	for _, c := range cases {
		c := c
		t.Run(c.key, func(t *testing.T) {
			t.Parallel()
			want, ok := golden[c.key]
			if !ok {
				t.Fatalf("no golden digests for %s (regenerate with -update-golden)", c.key)
			}
			got := computeDigests(c)
			if len(got) != len(want) {
				t.Fatalf("seed count changed: got %d, golden has %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d: trace digest diverged from pre-refactor engine: got %s, want %s", i+1, got[i], want[i])
				}
			}
		})
	}
}
