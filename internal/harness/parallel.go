package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pctwm/internal/engine"
)

// ResolveWorkers maps a -workers style flag value to an actual worker
// count: 0 (or negative) selects GOMAXPROCS, and the count is capped at
// the number of runs so no worker sits idle from the start.
func ResolveWorkers(workers, runs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// RunTrialsPooled is the streaming trial loop behind RunTrials and the
// -workers flags: runs rounds are claimed from a shared atomic counter by
// `workers` goroutines, each owning one pooled engine.Runner and one
// strategy value from newStrategy (Strategy.Begin resets per round).
// Aggregation is lock-free: every worker fills its own TrialResult, merged
// once after the pool drains.
//
// Round i always runs with seed+i, independent of which worker claims it,
// so hit counts and event totals are identical for every worker count —
// only Wall changes. Elapsed sums per-run execution time across workers
// (aggregate CPU time); Wall is the batch's wall-clock duration.
func RunTrialsPooled(prog *engine.Program, detect func(*engine.Outcome) bool,
	newStrategy func() engine.Strategy, runs int, seed int64, opts engine.Options, workers int) TrialResult {
	var res TrialResult
	res.Runs = runs
	if runs <= 0 {
		return res
	}
	workers = ResolveWorkers(workers, runs)

	start := time.Now()
	if workers == 1 {
		res = runWorker(prog, detect, newStrategy(), runs, seed, opts, nil)
		res.Runs = runs
		res.Wall = time.Since(start)
		return res
	}

	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		locals = make([]TrialResult, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			locals[w] = runWorker(prog, detect, newStrategy(), runs, seed, opts, &next)
		}(w)
	}
	wg.Wait()
	for _, l := range locals {
		res.Hits += l.Hits
		res.Aborted += l.Aborted
		res.Deadlock += l.Deadlock
		res.TotalEvents += l.TotalEvents
		res.Elapsed += l.Elapsed
	}
	res.Wall = time.Since(start)
	return res
}

// runWorker drains trial indices — sequentially when next is nil, from the
// shared counter otherwise — on one pooled Runner.
func runWorker(prog *engine.Program, detect func(*engine.Outcome) bool,
	strat engine.Strategy, runs int, seed int64, opts engine.Options, next *atomic.Int64) TrialResult {
	var local TrialResult
	r := engine.NewRunner(prog, opts)
	defer r.Close()
	for i := 0; ; i++ {
		if next != nil {
			i = int(next.Add(1)) - 1
		}
		if i >= runs {
			break
		}
		o := r.Run(strat, seed+int64(i))
		local.TotalEvents += o.Events
		local.Elapsed += o.Duration
		if o.Aborted {
			local.Aborted++
		}
		if o.Deadlocked {
			local.Deadlock++
		}
		if detect(o) {
			local.Hits++
		}
	}
	return local
}

// RunTrialsParallel is RunTrialsPooled under its historical name; workers
// ≤ 0 selects GOMAXPROCS.
//
// Deprecated: use RunTrialsPooled (same behavior) or RunTrials (serial).
func RunTrialsParallel(prog *engine.Program, detect func(*engine.Outcome) bool,
	newStrategy func() engine.Strategy, runs int, seed int64, opts engine.Options, workers int) TrialResult {
	return RunTrialsPooled(prog, detect, newStrategy, runs, seed, opts, workers)
}
