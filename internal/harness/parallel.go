package harness

import (
	"runtime"
	"sync"

	"pctwm/internal/engine"
)

// RunTrialsParallel is RunTrials with the rounds spread over worker
// goroutines. Each round runs in its own engine over the shared immutable
// program, so the rounds are independent; results are aggregated exactly
// as in the serial version (per-round Duration sums are CPU time across
// workers, not wall-clock). workers ≤ 0 selects GOMAXPROCS.
func RunTrialsParallel(prog *engine.Program, detect func(*engine.Outcome) bool,
	newStrategy func() engine.Strategy, runs int, seed int64, opts engine.Options, workers int) TrialResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	if workers <= 1 {
		return RunTrials(prog, detect, newStrategy, runs, seed, opts)
	}

	var (
		mu  sync.Mutex
		res TrialResult
		wg  sync.WaitGroup
	)
	res.Runs = runs
	next := make(chan int, runs)
	for i := 0; i < runs; i++ {
		next <- i
	}
	close(next)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local TrialResult
			for i := range next {
				o := engine.Run(prog, newStrategy(), seed+int64(i), opts)
				local.TotalEvents += o.Events
				local.Elapsed += o.Duration
				if o.Aborted {
					local.Aborted++
				}
				if o.Deadlocked {
					local.Deadlock++
				}
				if detect(o) {
					local.Hits++
				}
			}
			mu.Lock()
			res.Hits += local.Hits
			res.Aborted += local.Aborted
			res.Deadlock += local.Deadlock
			res.TotalEvents += local.TotalEvents
			res.Elapsed += local.Elapsed
			mu.Unlock()
		}()
	}
	wg.Wait()
	return res
}
