package harness

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pctwm/internal/checkpoint"
	"pctwm/internal/coverage"
	"pctwm/internal/engine"
	"pctwm/internal/replay"
	"pctwm/internal/telemetry"
	"pctwm/internal/telemetry/perfetto"
)

// ResolveWorkers maps a -workers style flag value to an actual worker
// count: 0 (or negative) selects GOMAXPROCS, and the count is capped at
// the number of runs so no worker sits idle from the start.
func ResolveWorkers(workers, runs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Campaign configures the resilience layer of a trial batch: worker
// count, cooperative cancellation, the campaign-level stuck-worker
// watchdog, and the repro-bundle sink with its flake triage. The zero
// value reproduces the plain RunTrialsPooled behaviour (serial, no
// watchdogs, no bundles) with zero hot-path overhead.
type Campaign struct {
	// Workers spreads the rounds over this many goroutines (0 =
	// GOMAXPROCS, 1 = serial). Hit counts and event totals are identical
	// for every worker count.
	Workers int
	// Context cancels the campaign cooperatively: workers stop claiming
	// new rounds, and the in-flight run of every worker is aborted by the
	// engine's step-loop watchdog (CanceledError). The merged result is
	// marked Interrupted with Runs reflecting completed trials only.
	Context context.Context
	// ReproDir enables the repro sink: the first MaxRepros failing trials
	// (bug hits, races, panics, deadlocks, timeouts — not step-limit
	// aborts or cancellations) are re-run once on a fresh Runner with a
	// decision recorder, triaged for determinism, and written as JSON
	// bundles under this directory (see replay.Bundle / pctwm-replay).
	ReproDir string
	// MaxRepros caps how many failures are triaged and bundled
	// (default 3 when ReproDir is set). The cap bounds the extra work:
	// the happy path and all failures beyond the cap cost nothing.
	MaxRepros int
	// StuckTimeout arms the campaign watchdog: if any worker goes this
	// long without finishing a trial, the campaign cancels the remaining
	// work, collects diagnostics (stuck seeds + goroutine dump), waits a
	// short grace period for workers to unwind, and returns a partial
	// result marked Stuck instead of hanging forever. A worker wedged
	// outside the engine's step loop (e.g. a ThreadFunc spinning without
	// memory operations) cannot be killed and is leaked — the diagnostics
	// name it. 0 disables the watchdog.
	StuckTimeout time.Duration
	// Telemetry enables per-worker engine counters: every worker's Runner
	// gets its own telemetry.EngineCounters shard (plain fields, no
	// hot-path synchronization), merged at the end into
	// TrialResult.Telemetry, the caller's engine.Options.Telemetry (if
	// set), and Metrics. Collection is also implied by a non-nil
	// engine.Options.Telemetry.
	Telemetry bool
	// Coverage enables behavioral coverage: every trial's engine computes
	// a canonical behavior fingerprint (engine.Options.Coverage), each
	// worker folds complete trials into a private coverage.Set shard, and
	// the shards merge into TrialResult.Coverage. Coverage implies
	// telemetry collection (the per-trial change-point count attributes
	// each first discovery to the depth that found it). The merged set is
	// bit-identical for every worker count.
	Coverage bool
	// Metrics, when non-nil, receives campaign-level observations (trial
	// counts and durations, quarantine/timeout/cancel/stuck counters,
	// repro triage verdicts, worker utilization) — the hub behind the
	// -metrics-addr endpoint and the -progress reporter. Updated once per
	// trial with atomics; never touched on the engine hot path.
	Metrics *telemetry.Metrics
	// EmbedPerfetto makes the repro sink embed a Chrome trace-event JSON
	// rendering of each bundle's triage re-run (Bundle.Perfetto), for
	// visual diffing of divergences in Perfetto. Requires ReproDir.
	EmbedPerfetto bool
	// Model, when non-empty, overrides the memory-model backend for
	// campaigns that build their own engine.Options from a benchmark
	// registry (BenchTrialsCampaign and friends). Callers that pass
	// explicit Options set Options.Model directly instead.
	Model string
	// Checkpoint, when non-nil with a Dir, arms the durable
	// checkpoint/resume layer: the campaign runs in chunks and persists
	// its cumulative state after each one (see CheckpointSpec). One spec
	// is shared across all campaigns of a process.
	Checkpoint *CheckpointSpec
	// CheckpointCell disambiguates campaigns that share a program, seed,
	// runs and model (e.g. different strategy columns of a bench matrix)
	// inside the checkpoint directory. Ignored without Checkpoint.
	CheckpointCell string

	// sinkFS, when non-nil, routes repro-bundle writes through an
	// injectable filesystem; set by the checkpointed campaign loop so
	// every durable sink shares the spec's FS (chunks run with
	// Checkpoint=nil and would otherwise lose it).
	sinkFS checkpoint.FS

	// trialBase offsets the campaign-global trial indices coverage
	// observations are keyed by; the checkpointed campaign loop sets it
	// to each chunk's start so resumed coverage curves continue exactly
	// where the previous session stopped.
	trialBase int64

	// reproSeen seeds the repro sink's behavior-fingerprint dedupe set;
	// the checkpointed loop passes the fingerprints of already-bundled
	// failures so a resumed campaign never re-bundles a behavior.
	reproSeen []uint64
}

// defaultMaxRepros bounds bundle writing + flake triage when the caller
// enables ReproDir without choosing a cap.
const defaultMaxRepros = 3

// TrialFailure describes one captured failing trial (at most
// Campaign.MaxRepros are captured per campaign).
type TrialFailure struct {
	// Seed is the failing round's engine seed.
	Seed int64
	// Kind classifies the failure: "bug", "race", "panic", "deadlock",
	// "timeout" or "harness-panic" (a panic that escaped the engine —
	// strategy or harness code).
	Kind string
	// BehaviorFP is the failing trial's behavior fingerprint (0 when the
	// campaign ran without Campaign.Coverage or the trial had no
	// outcome). With coverage on, the repro budget is keyed by it: one
	// bundle per distinct failure behavior.
	BehaviorFP uint64 `json:"behavior_fp,omitempty"`
	// Msg is a short human-readable description.
	Msg string
	// Triage is the flake-triage verdict (replay.TriageDeterministic,
	// replay.TriageNondeterministic or replay.TriageSkipped).
	Triage string
	// BundlePath is the written repro bundle ("" if writing failed; Msg
	// then carries the error).
	BundlePath string
}

// RunTrialsPooled is the streaming trial loop behind RunTrials and the
// -workers flags: runs rounds are claimed from a shared atomic counter by
// `workers` goroutines, each owning one pooled engine.Runner and one
// strategy value from newStrategy (Strategy.Begin resets per round).
// Aggregation is lock-free: every worker fills its own TrialResult, merged
// once after the pool drains.
//
// Round i always runs with seed+i, independent of which worker claims it,
// so hit counts and event totals are identical for every worker count —
// only Wall changes. Elapsed sums per-run execution time across workers
// (aggregate CPU time); Wall is the batch's wall-clock duration.
func RunTrialsPooled(prog *engine.Program, detect func(*engine.Outcome) bool,
	newStrategy func() engine.Strategy, runs int, seed int64, opts engine.Options, workers int) TrialResult {
	return RunCampaign(prog, detect, newStrategy, runs, seed, opts, Campaign{Workers: workers})
}

// RunCampaign is RunTrialsPooled with the full resilience layer: panic
// quarantine, cooperative cancellation, per-trial and campaign-level
// watchdogs, and the repro sink. See Campaign for the knobs.
//
// Panic quarantine: a panic that escapes engine.Runner.Run (a buggy
// strategy, a harness bug) is recovered at the trial boundary, counted in
// TrialResult.Panics, and the worker's possibly-corrupted Runner and
// strategy are replaced with fresh ones — one hostile trial never poisons
// a sibling worker's trials or the rest of the worker's own rounds.
//
// With Campaign.Checkpoint armed the campaign additionally runs in
// chunks, persisting its cumulative state after each one so a killed
// process resumes with bit-identical totals (see CheckpointSpec).
func RunCampaign(prog *engine.Program, detect func(*engine.Outcome) bool,
	newStrategy func() engine.Strategy, runs int, seed int64, opts engine.Options, camp Campaign) TrialResult {
	if camp.Checkpoint != nil && camp.Checkpoint.Dir != "" && runs > 0 {
		return runCheckpointedCampaign(prog, detect, newStrategy, runs, seed, opts, camp)
	}
	return runCampaignBatch(prog, detect, newStrategy, runs, seed, opts, camp)
}

// runCampaignBatch is the single-batch campaign loop shared by the plain
// and checkpointed paths.
func runCampaignBatch(prog *engine.Program, detect func(*engine.Outcome) bool,
	newStrategy func() engine.Strategy, runs int, seed int64, opts engine.Options, camp Campaign) TrialResult {
	var res TrialResult
	if runs <= 0 {
		return res
	}
	workers := ResolveWorkers(camp.Workers, runs)

	// Telemetry collection: each worker gets a private EngineCounters
	// shard (the engine writes it with plain fields — sharing one across
	// workers would race), merged after the pool drains. The caller's
	// Options.Telemetry, if any, is treated as an accumulator across
	// campaigns: it is stripped here and merged into at the end.
	// Coverage implies telemetry collection: the per-worker counter shard
	// supplies each trial's change-point count, the depth attribution of
	// first discoveries.
	collect := camp.Telemetry || opts.Telemetry != nil || camp.Coverage
	telBase := opts.Telemetry
	opts.Telemetry = nil
	opts.Coverage = opts.Coverage || camp.Coverage
	if camp.Metrics != nil {
		camp.Metrics.AddExpected(runs)
	}

	// pprof labels: workers run under worker/strategy/program labels so
	// CPU profiles of long campaigns attribute samples per worker and per
	// configuration. The strategy label comes from the strategy value each
	// worker creates anyway — RunCampaign never makes extra newStrategy
	// calls (some callers hand out stateful strategies by call order).
	progName := prog.Name()

	// Derive the campaign context: the caller's context if any, wrapped in
	// a cancelable child when the stuck-worker watchdog needs a kill
	// switch. The engine polls it inside the step loop, so cancellation
	// aborts in-flight runs, not just pending ones.
	ctx := camp.Context
	cancel := context.CancelFunc(nil)
	if camp.StuckTimeout > 0 {
		base := ctx
		if base == nil {
			base = context.Background()
		}
		ctx, cancel = context.WithCancel(base)
		defer cancel()
	}
	if ctx != nil {
		opts.Context = ctx
	}

	var sink *reproSink
	if camp.ReproDir != "" {
		max := camp.MaxRepros
		if max <= 0 {
			max = defaultMaxRepros
		}
		sink = &reproSink{
			prog: prog, newStrategy: newStrategy, opts: opts,
			dir: camp.ReproDir, max: max, fs: camp.sinkFS,
			metrics: camp.Metrics, embedPerfetto: camp.EmbedPerfetto,
			dedupe: camp.Coverage,
		}
		for _, fp := range camp.reproSeen {
			if fp != 0 {
				if sink.seen == nil {
					sink.seen = make(map[uint64]bool)
				}
				sink.seen[fp] = true
			}
		}
	}

	start := time.Now()
	if workers == 1 {
		var tel *telemetry.EngineCounters
		if collect {
			tel = &telemetry.EngineCounters{}
		}
		var cov *coverage.Set
		if camp.Coverage {
			cov = &coverage.Set{}
		}
		strat := newStrategy()
		labeledWorker(ctx, 0, strat.Name(), progName, func() {
			res = runWorker(prog, detect, strat, newStrategy, runs, seed, opts, nil, ctx, sink, nil, tel, camp.Metrics, cov, camp.trialBase)
		})
		finishTelemetry(&res, []*telemetry.EngineCounters{tel}, nil, telBase, camp.Metrics)
		finishCoverage(&res, []*coverage.Set{cov}, nil)
		finishCampaign(&res, sink, start, camp.Metrics)
		return res
	}

	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		locals = make([]TrialResult, workers)
		states = make([]*workerState, workers)
		shards = make([]*telemetry.EngineCounters, workers)
		covs   = make([]*coverage.Set, workers)
	)
	for w := 0; w < workers; w++ {
		states[w] = &workerState{}
		states[w].beat.Store(time.Now().UnixNano())
		if collect {
			shards[w] = &telemetry.EngineCounters{}
		}
		if camp.Coverage {
			covs[w] = &coverage.Set{}
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer states[w].done.Store(true)
			strat := newStrategy()
			labeledWorker(ctx, w, strat.Name(), progName, func() {
				locals[w] = runWorker(prog, detect, strat, newStrategy, runs, seed, opts, &next, ctx, sink, states[w], shards[w], camp.Metrics, covs[w], camp.trialBase)
			})
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	if camp.StuckTimeout > 0 {
		res.Stuck, res.StuckDiag = watchCampaign(done, states, camp.StuckTimeout, cancel)
	} else {
		<-done
	}

	for w, l := range locals {
		if !states[w].done.Load() {
			continue // stuck worker: its local result was never published
		}
		mergeTrialResults(&res, l)
	}
	finishTelemetry(&res, shards, states, telBase, camp.Metrics)
	finishCoverage(&res, covs, states)
	finishCampaign(&res, sink, start, camp.Metrics)
	return res
}

// finishCoverage merges the per-worker coverage shards into the campaign
// result. Set.Merge is commutative and associative and novelty is keyed
// by global trial indices, so the merged set is bit-identical for every
// worker count and merge order. Shards of workers that never published
// (stuck) are skipped, like telemetry shards.
func finishCoverage(res *TrialResult, covs []*coverage.Set, states []*workerState) {
	merged := &coverage.Set{}
	any := false
	for w, c := range covs {
		if c == nil {
			continue
		}
		if states != nil && !states[w].done.Load() {
			continue
		}
		any = true
		merged.Merge(c)
	}
	if any {
		res.Coverage = merged
	}
}

// labeledWorker runs f under pprof goroutine labels naming the worker,
// strategy and program, so CPU/goroutine profiles of long campaigns can
// be filtered per worker and per configuration.
func labeledWorker(ctx context.Context, w int, strategy, program string, f func()) {
	if ctx == nil {
		ctx = context.Background()
	}
	pprof.Do(ctx, pprof.Labels(
		"pctwm_worker", strconv.Itoa(w),
		"pctwm_strategy", strategy,
		"pctwm_program", program,
	), func(context.Context) { f() })
}

// finishTelemetry merges the per-worker counter shards — in worker order,
// though Merge is commutative so any order yields bit-identical totals —
// into the campaign result, the caller's accumulator and the metrics hub.
// Shards of workers that never published (stuck, see watchCampaign) are
// skipped: a wedged goroutine may still be writing its shard.
func finishTelemetry(res *TrialResult, shards []*telemetry.EngineCounters, states []*workerState, base *telemetry.EngineCounters, m *telemetry.Metrics) {
	merged := &telemetry.EngineCounters{}
	any := false
	for w, s := range shards {
		if s == nil {
			continue
		}
		if states != nil && !states[w].done.Load() {
			continue
		}
		any = true
		merged.Merge(s)
		// Keep a bounded change-point log for diagnostics: the first
		// shard's entries (the log is per-Runner and excluded from merged
		// totals, so this does not perturb determinism of the counters).
		if len(merged.ChangePoints) == 0 && len(s.ChangePoints) > 0 {
			merged.ChangePoints = append(merged.ChangePoints, s.ChangePoints...)
		}
	}
	if !any {
		return
	}
	res.Telemetry = merged
	if base != nil {
		base.Merge(merged)
	}
	if m != nil {
		m.MergeEngine(merged)
	}
}

// finishCampaign folds the repro sink into the merged result, stamps the
// batch wall time, and reports campaign-terminal conditions to the
// metrics hub.
func finishCampaign(res *TrialResult, sink *reproSink, start time.Time, m *telemetry.Metrics) {
	if sink != nil {
		sink.mu.Lock()
		res.Failures = append(res.Failures, sink.captured...)
		res.Nondeterministic += sink.nondet
		sink.mu.Unlock()
	}
	res.Wall = time.Since(start)
	if m != nil {
		if res.Interrupted {
			m.CampaignInterrupted()
		}
		if res.Stuck {
			m.WorkerStuck()
		}
	}
}

// mergeTrialResults accumulates a worker's local result into the merged
// campaign result.
func mergeTrialResults(res *TrialResult, l TrialResult) {
	res.Runs += l.Runs
	res.Hits += l.Hits
	res.Aborted += l.Aborted
	res.Deadlock += l.Deadlock
	res.Panics += l.Panics
	res.Timeouts += l.Timeouts
	res.Canceled += l.Canceled
	res.TotalEvents += l.TotalEvents
	res.Elapsed += l.Elapsed
	res.Interrupted = res.Interrupted || l.Interrupted
}

// workerState is the heartbeat a worker publishes for the campaign
// watchdog: the wall-clock time and seed of its current trial, and
// whether it has returned.
type workerState struct {
	beat atomic.Int64 // UnixNano at the last trial boundary
	seed atomic.Int64 // seed of the trial in flight
	done atomic.Bool
}

// watchCampaign polls worker heartbeats until the pool drains or a worker
// exceeds stuckAfter without finishing a trial. On a stuck worker it
// cancels the campaign context (aborting every worker still inside the
// engine's step loop), waits a grace period, and returns diagnostics
// naming the wedged workers plus a truncated all-goroutine dump. Workers
// wedged outside the step loop are leaked by design — the alternative is
// hanging the campaign forever.
func watchCampaign(done chan struct{}, states []*workerState, stuckAfter time.Duration, cancel context.CancelFunc) (bool, string) {
	poll := stuckAfter / 4
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return false, ""
		case <-ticker.C:
			now := time.Now().UnixNano()
			var wedged []string
			for w, ws := range states {
				if ws.done.Load() {
					continue
				}
				if now-ws.beat.Load() > int64(stuckAfter) {
					wedged = append(wedged, fmt.Sprintf("worker %d (seed %d, silent %v)",
						w, ws.seed.Load(), time.Duration(now-ws.beat.Load()).Round(time.Millisecond)))
				}
			}
			if len(wedged) == 0 {
				continue
			}
			// A worker is stuck. Cancel the campaign so every worker still
			// passing through the engine step loop aborts, then give the
			// pool a grace period to unwind before declaring the campaign
			// stuck and returning partial results.
			cancel()
			grace := stuckAfter
			if grace < 200*time.Millisecond {
				grace = 200 * time.Millisecond
			}
			select {
			case <-done:
				return false, "" // everyone unwound after the cancel: not stuck after all
			case <-time.After(grace):
			}
			buf := make([]byte, 16<<10)
			buf = buf[:runtime.Stack(buf, true)]
			diag := fmt.Sprintf("campaign watchdog: stuck workers after %v: %s\ngoroutine dump (truncated):\n%s",
				stuckAfter, joinStrings(wedged, "; "), buf)
			return true, diag
		}
	}
}

func joinStrings(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}

// panicInfo captures a panic that escaped the engine during one trial.
type panicInfo struct {
	val   string
	stack string
}

// safeRun executes one trial with a recover boundary: a panic out of
// Runner.Run (strategy bug, harness bug — user-program panics are already
// contained by the engine and surface as PanicError outcomes) is
// converted into a structured panicInfo instead of killing the worker.
func safeRun(r *engine.Runner, strat engine.Strategy, seed int64) (o *engine.Outcome, pan *panicInfo) {
	defer func() {
		if v := recover(); v != nil {
			pan = &panicInfo{val: fmt.Sprint(v), stack: string(debug.Stack())}
		}
	}()
	return r.Run(strat, seed), nil
}

// closeQuarantined releases a Runner whose last trial panicked. The
// Runner's internal state is suspect, so Close runs on a side goroutine
// with its own recover: if teardown itself wedges or panics, the campaign
// loses one goroutine instead of a worker.
func closeQuarantined(r *engine.Runner) {
	go func() {
		defer func() { recover() }()
		r.Close()
	}()
}

// runWorker drains trial indices — sequentially when next is nil, from the
// shared counter otherwise — on one pooled Runner, applying the per-trial
// resilience protocol: heartbeat, cancellation check, panic quarantine,
// outcome classification, failure capture, and (when armed) telemetry:
// tel is this worker's private engine-counter shard, metrics the shared
// campaign hub (atomics, touched once per trial). strat is the worker's
// already-created strategy (its Name labels the worker's pprof context);
// newStrategy only mints quarantine replacements.
func runWorker(prog *engine.Program, detect func(*engine.Outcome) bool,
	strat engine.Strategy, newStrategy func() engine.Strategy, runs int, seed int64, opts engine.Options,
	next *atomic.Int64, ctx context.Context, sink *reproSink, ws *workerState,
	tel *telemetry.EngineCounters, metrics *telemetry.Metrics, covSet *coverage.Set, trialBase int64) TrialResult {
	var local TrialResult
	opts.Telemetry = tel
	if metrics != nil {
		metrics.WorkerStarted()
		defer metrics.WorkerDone()
	}
	r := engine.NewRunner(prog, opts)
	defer func() { r.Close() }()
	for i := 0; ; i++ {
		if next != nil {
			i = int(next.Add(1)) - 1
		}
		if i >= runs {
			break
		}
		if ctx != nil && ctx.Err() != nil {
			local.Interrupted = true
			break
		}
		s := seed + int64(i)
		if ws != nil {
			ws.seed.Store(s)
			ws.beat.Store(time.Now().UnixNano())
		}
		var cpBefore uint64
		if tel != nil {
			cpBefore = tel.ChangePointDepth.Count
		}
		o, pan := safeRun(r, strat, s)
		local.Runs++
		if pan != nil {
			// Quarantine: count the panic, replace the suspect Runner and
			// strategy, and keep draining rounds.
			local.Panics++
			if metrics != nil {
				metrics.ObserveTrial(telemetry.TrialObs{Quarantined: true})
			}
			if sink != nil {
				sink.capture(s, 0, "harness-panic", "panic escaped the engine: "+pan.val,
					replay.OutcomeSummary{}, pan)
			}
			closeQuarantined(r)
			r = engine.NewRunner(prog, opts)
			strat = newStrategy()
			continue
		}
		local.TotalEvents += o.Events
		local.Elapsed += o.Duration
		hit := false
		if !o.Canceled {
			// Canceled trials summarize a partial execution; they are not
			// classified (preserving pre-telemetry behaviour, where the
			// worker broke out before running the detector).
			hit = detect(o)
		}
		// Coverage: only complete executions define a behavior (runs cut
		// short by the step limit, a timeout or cancellation observed a
		// prefix, which would make the census ill-defined). The trial is
		// keyed by its campaign-global index and attributed to the
		// change-point depth the strategy actually used this trial.
		behaviorSeen := covSet != nil && o.Err == nil
		if behaviorSeen {
			var depth uint64
			if tel != nil {
				depth = tel.ChangePointDepth.Count - cpBefore
			}
			covSet.Observe(o.BehaviorFP, trialBase+int64(i), depth)
		}
		if metrics != nil {
			metrics.ObserveTrial(telemetry.TrialObs{
				Duration:    o.Duration,
				Events:      o.Events,
				Hit:         hit,
				Deadlocked:  o.Deadlocked,
				TimedOut:    o.TimedOut,
				Canceled:    o.Canceled,
				BehaviorFP:  o.BehaviorFP,
				HasBehavior: behaviorSeen,
			})
		}
		if o.Canceled {
			local.Canceled++
			local.Interrupted = true
			break
		}
		if o.TimedOut {
			local.Timeouts++
		} else if o.Aborted {
			local.Aborted++
		}
		if o.Deadlocked {
			local.Deadlock++
		}
		if hit {
			local.Hits++
		}
		if sink != nil {
			if kind, failing := classifyFailure(o, hit); failing {
				sink.capture(s, o.BehaviorFP, kind, failureMsg(o, kind), replay.Summarize(o), nil)
			}
		}
	}
	if ws != nil {
		ws.beat.Store(time.Now().UnixNano())
	}
	return local
}

// classifyFailure decides whether a trial outcome is worth a repro bundle
// and names its kind. Step-limit aborts (livelock guard trips, common and
// benign in bounded benchmarks) and cancellations (operator action) are
// not failures.
func classifyFailure(o *engine.Outcome, hit bool) (string, bool) {
	if o.Err != nil {
		switch o.Err.Kind {
		case engine.PanicError:
			return "panic", true
		case engine.DeadlockError:
			return "deadlock", true
		case engine.TimeoutError:
			return "timeout", true
		}
	}
	if hit {
		if !o.BugHit && len(o.Races) > 0 {
			return "race", true
		}
		return "bug", true
	}
	return "", false
}

// failureMsg renders a short description of the failing outcome.
func failureMsg(o *engine.Outcome, kind string) string {
	if o.Err != nil {
		return o.Err.Msg
	}
	if len(o.BugMessages) > 0 {
		return o.BugMessages[0]
	}
	if kind == "race" && len(o.Races) > 0 {
		return fmt.Sprintf("%d data race(s) detected", len(o.Races))
	}
	return kind
}

// reproSink captures the first max failing trials of a campaign: each is
// re-run once on a fresh Runner under a decision recorder (flake triage +
// schedule capture) and written as a replay.Bundle under dir.
type reproSink struct {
	prog        *engine.Program
	newStrategy func() engine.Strategy
	opts        engine.Options
	dir         string
	max         int
	// fs routes bundle writes through an injectable filesystem (nil =
	// the real one); the checkpointed campaign loop sets it so bundle
	// durability is hardened and fault-testable like checkpoints.
	fs checkpoint.FS
	// metrics, when non-nil, receives one ReproTriaged observation per
	// written bundle. embedPerfetto makes the triage re-run record its
	// execution graph and embeds it as a Chrome trace-event document.
	metrics       *telemetry.Metrics
	embedPerfetto bool

	// dedupe keys the capture budget by behavior fingerprint (campaigns
	// with Coverage on): a failure behavior already bundled is never
	// triaged again, so the max slots go to distinct behaviors instead of
	// the first max arrivals of the same one.
	dedupe bool

	mu       sync.Mutex
	claimed  int             // capture slots consumed (≤ max)
	seen     map[uint64]bool // bundled behavior fingerprints (dedupe)
	captured []TrialFailure
	nondet   int
}

// capture triages and bundles one failing trial if a slot is free. fp is
// the trial's behavior fingerprint (0 without coverage or for harness
// panics, which have no outcome — those always consume a slot). orig
// summarizes the campaign trial; pan is non-nil when the trial panicked
// outside the engine.
func (s *reproSink) capture(seed int64, fp uint64, kind, msg string, orig replay.OutcomeSummary, pan *panicInfo) {
	s.mu.Lock()
	if s.claimed >= s.max || (s.dedupe && fp != 0 && s.seen[fp]) {
		s.mu.Unlock()
		return
	}
	if s.dedupe && fp != 0 {
		if s.seen == nil {
			s.seen = make(map[uint64]bool)
		}
		s.seen[fp] = true
	}
	s.claimed++
	s.mu.Unlock()

	fail := s.triage(seed, fp, kind, msg, orig, pan)
	s.mu.Lock()
	s.captured = append(s.captured, fail)
	if fail.Triage == replay.TriageNondeterministic {
		s.nondet++
	}
	s.mu.Unlock()
	if s.metrics != nil {
		s.metrics.ReproTriaged(fail.Triage)
	}
}

// triage re-runs the failing seed on a fresh Runner with a recorder
// wrapped around a fresh strategy, compares the re-run against the
// original outcome (determinism verdict), and writes the repro bundle.
// The re-run strips the campaign Context and wall-clock bound so the
// recorded trace covers a complete, deterministic execution.
func (s *reproSink) triage(seed int64, fp uint64, kind, msg string, orig replay.OutcomeSummary, pan *panicInfo) TrialFailure {
	fail := TrialFailure{Seed: seed, Kind: kind, Msg: msg, BehaviorFP: fp}

	reOpts := s.opts
	reOpts.Context = nil
	reOpts.MaxWallTime = 0
	// The re-run gets its own telemetry shard (never a campaign worker's
	// — triage runs concurrently with workers): change points logged into
	// it annotate the embedded Perfetto trace.
	reOpts.Telemetry = nil
	var reTel *telemetry.EngineCounters
	if s.embedPerfetto {
		reOpts.Record = true
		reTel = &telemetry.EngineCounters{}
		reOpts.Telemetry = reTel
	}

	strat := s.newStrategy()
	stratName := strat.Name()
	rec := replay.NewRecorder(strat)
	fresh := engine.NewRunner(s.prog, reOpts)
	o2, pan2 := safeRun(fresh, rec, seed)
	if pan2 == nil {
		fresh.Close()
	} else {
		closeQuarantined(fresh)
	}

	bundle := replay.NewBundle(s.prog, stratName, seed, reOpts)
	bundle.Trace = rec.Trace()
	bundle.FirstOutcome = orig
	bundle.BehaviorFP = fp
	switch {
	case pan2 != nil:
		bundle.HarnessPanic = pan2.val
		bundle.Stack = pan2.stack
		if pan != nil && pan.val == pan2.val {
			fail.Triage = replay.TriageDeterministic
		} else {
			fail.Triage = replay.TriageNondeterministic
		}
	case pan != nil:
		// The campaign trial panicked but the re-run completed: the panic
		// is not a function of (program, strategy, seed).
		bundle.Outcome = replay.Summarize(o2)
		fail.Triage = replay.TriageNondeterministic
	case kind == "timeout":
		// Wall-clock-dependent: the re-run (without the bound) legitimately
		// diverges from the timed-out original; determinism is not judged.
		bundle.Outcome = replay.Summarize(o2)
		fail.Triage = replay.TriageSkipped
	default:
		bundle.Outcome = replay.Summarize(o2)
		if diffs := orig.Diff(bundle.Outcome); len(diffs) == 0 {
			fail.Triage = replay.TriageDeterministic
		} else {
			fail.Triage = replay.TriageNondeterministic
			fail.Msg += " [rerun diverged: " + joinStrings(diffs, ", ") + "]"
		}
	}
	bundle.Triage = fail.Triage
	if s.embedPerfetto && o2 != nil && o2.Recording != nil {
		var cps []telemetry.ChangePoint
		if reTel != nil {
			cps = reTel.ChangePoints
		}
		if data, err := perfetto.Marshal(o2.Recording, cps); err == nil {
			bundle.Perfetto = data
		}
	}

	sinkFS := s.fs
	if sinkFS == nil {
		sinkFS = checkpoint.OS
	}
	path, err := bundle.WriteFileFS(sinkFS, s.dir)
	if err != nil {
		fail.Msg += " [bundle write failed: " + err.Error() + "]"
	} else {
		fail.BundlePath = path
	}
	return fail
}

// RunTrialsParallel is RunTrialsPooled under its historical name; workers
// ≤ 0 selects GOMAXPROCS.
//
// Deprecated: use RunTrialsPooled (same behavior) or RunTrials (serial).
func RunTrialsParallel(prog *engine.Program, detect func(*engine.Outcome) bool,
	newStrategy func() engine.Strategy, runs int, seed int64, opts engine.Options, workers int) TrialResult {
	return RunTrialsPooled(prog, detect, newStrategy, runs, seed, opts, workers)
}
