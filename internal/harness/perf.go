package harness

import (
	"runtime"
	"time"

	"pctwm/internal/apps"
	"pctwm/internal/engine"
)

// PerfResult is one Table-4 measurement: an application tested by one
// strategy in one core configuration.
type PerfResult struct {
	App      string
	Strategy string
	// Cores is the GOMAXPROCS setting ("single" = 1). The engine
	// serializes threads like C11Tester, so — as the paper observes —
	// the configuration should not matter.
	Cores int
	Runs  int
	// MeanSeconds is the mean wall-clock time per run.
	MeanSeconds float64
	// Throughput is Ops/MeanSeconds (reported for Silo).
	Throughput float64
	// RSDPercent is the relative standard deviation over the runs.
	RSDPercent float64
	// NsPerEvent is the mean engine cost per memory event — the
	// per-operation instrumentation overhead (strategy bookkeeping,
	// view maintenance) independent of how many retries a schedule needs.
	NsPerEvent float64
	// RacesDetected counts runs in which the detector found a data race
	// (the paper: both tools detect races in all applications).
	RacesDetected int
	Aborted       int
}

// MeasureApp runs the application `runs` times under the factory's
// strategy and aggregates timing (Table 4 averages over 10 runs). All runs
// share one pooled Runner and one strategy value, so the measurement
// reflects steady-state per-run cost rather than setup cost.
func MeasureApp(a *apps.App, factory StrategyFactory, runs int, seed int64, cores int) PerfResult {
	prog := a.Program()
	opts := a.Options()
	est := EstimateParams(prog, 5, seed^0x9e1f, opts)

	prev := runtime.GOMAXPROCS(cores)
	defer runtime.GOMAXPROCS(prev)

	res := PerfResult{App: a.Name, Cores: cores, Runs: runs}
	r := engine.NewRunner(prog, opts)
	strat := factory(est)
	res.Strategy = strat.Name()
	samples := make([]float64, 0, runs)
	var total time.Duration
	var totalEvents int
	for i := 0; i < runs; i++ {
		o := r.Run(strat, seed+int64(i))
		total += o.Duration
		totalEvents += o.Events
		samples = append(samples, o.Duration.Seconds())
		if len(o.Races) > 0 {
			res.RacesDetected++
		}
		if o.Aborted {
			res.Aborted++
		}
	}
	res.MeanSeconds = total.Seconds() / float64(runs)
	if totalEvents > 0 {
		res.NsPerEvent = float64(total.Nanoseconds()) / float64(totalEvents)
	}
	if res.MeanSeconds > 0 {
		res.Throughput = float64(a.Ops) / res.MeanSeconds
	}
	res.RSDPercent = RSD(samples)
	return res
}

// EngineSnapshot is a machine-readable steady-state performance sample of
// the trial loop for one benchmark/strategy pair (emitted by
// `pctwm-bench -json` and committed as BENCH_engine.json).
type EngineSnapshot struct {
	Benchmark  string  `json:"benchmark"`
	Strategy   string  `json:"strategy"`
	Runs       int     `json:"runs"`
	NsPerRun   float64 `json:"ns_per_run"`
	NsPerEvent float64 `json:"ns_per_event"`
	RunsPerSec float64 `json:"runs_per_sec"`
	// AllocsPerRun and BytesPerRun come from runtime.MemStats deltas over
	// the measured loop (all goroutines; run single-threaded for clean
	// numbers).
	AllocsPerRun float64 `json:"allocs_per_run"`
	BytesPerRun  float64 `json:"bytes_per_run"`
}

// MeasureEngine runs a steady-state serial trial loop on one pooled Runner
// and samples wall-clock and allocation cost per run. A warmup fraction
// (10% of runs, at least one) fills the Runner's pools before measurement.
func MeasureEngine(name string, prog *engine.Program, strat engine.Strategy, runs int, seed int64, opts engine.Options) EngineSnapshot {
	if runs < 1 {
		runs = 1
	}
	r := engine.NewRunner(prog, opts)
	warmup := runs / 10
	if warmup < 1 {
		warmup = 1
	}
	for i := 0; i < warmup; i++ {
		r.Run(strat, seed+int64(i))
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	var events int
	for i := 0; i < runs; i++ {
		events += r.Run(strat, seed+int64(i)).Events
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	snap := EngineSnapshot{
		Benchmark:    name,
		Strategy:     strat.Name(),
		Runs:         runs,
		NsPerRun:     float64(elapsed.Nanoseconds()) / float64(runs),
		AllocsPerRun: float64(after.Mallocs-before.Mallocs) / float64(runs),
		BytesPerRun:  float64(after.TotalAlloc-before.TotalAlloc) / float64(runs),
	}
	if events > 0 {
		snap.NsPerEvent = float64(elapsed.Nanoseconds()) / float64(events)
	}
	if elapsed > 0 {
		snap.RunsPerSec = float64(runs) / elapsed.Seconds()
	}
	return snap
}
