package harness

import (
	"runtime"
	"time"

	"pctwm/internal/apps"
	"pctwm/internal/engine"
)

// PerfResult is one Table-4 measurement: an application tested by one
// strategy in one core configuration.
type PerfResult struct {
	App      string
	Strategy string
	// Cores is the GOMAXPROCS setting ("single" = 1). The engine
	// serializes threads like C11Tester, so — as the paper observes —
	// the configuration should not matter.
	Cores int
	Runs  int
	// MeanSeconds is the mean wall-clock time per run.
	MeanSeconds float64
	// Throughput is Ops/MeanSeconds (reported for Silo).
	Throughput float64
	// RSDPercent is the relative standard deviation over the runs.
	RSDPercent float64
	// NsPerEvent is the mean engine cost per memory event — the
	// per-operation instrumentation overhead (strategy bookkeeping,
	// view maintenance) independent of how many retries a schedule needs.
	NsPerEvent float64
	// RacesDetected counts runs in which the detector found a data race
	// (the paper: both tools detect races in all applications).
	RacesDetected int
	Aborted       int
}

// MeasureApp runs the application `runs` times under the factory's
// strategy and aggregates timing (Table 4 averages over 10 runs).
func MeasureApp(a *apps.App, factory StrategyFactory, runs int, seed int64, cores int) PerfResult {
	prog := a.Program()
	opts := a.Options()
	est := EstimateParams(prog, 5, seed^0x9e1f, opts)

	prev := runtime.GOMAXPROCS(cores)
	defer runtime.GOMAXPROCS(prev)

	res := PerfResult{App: a.Name, Cores: cores, Runs: runs}
	samples := make([]float64, 0, runs)
	var total time.Duration
	var totalEvents int
	for i := 0; i < runs; i++ {
		s := factory(est)
		if res.Strategy == "" {
			res.Strategy = s.Name()
		}
		o := engine.Run(prog, s, seed+int64(i), opts)
		total += o.Duration
		totalEvents += o.Events
		samples = append(samples, o.Duration.Seconds())
		if len(o.Races) > 0 {
			res.RacesDetected++
		}
		if o.Aborted {
			res.Aborted++
		}
	}
	res.MeanSeconds = total.Seconds() / float64(runs)
	if totalEvents > 0 {
		res.NsPerEvent = float64(total.Nanoseconds()) / float64(totalEvents)
	}
	if res.MeanSeconds > 0 {
		res.Throughput = float64(a.Ops) / res.MeanSeconds
	}
	res.RSDPercent = RSD(samples)
	return res
}
