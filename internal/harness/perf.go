package harness

import (
	"runtime"
	"time"

	"pctwm/internal/apps"
	"pctwm/internal/engine"
	"pctwm/internal/telemetry"
)

// PerfResult is one Table-4 measurement: an application tested by one
// strategy in one core configuration.
type PerfResult struct {
	App      string
	Strategy string
	// Cores is the GOMAXPROCS setting ("single" = 1). The engine
	// serializes threads like C11Tester, so — as the paper observes —
	// the configuration should not matter.
	Cores int
	Runs  int
	// MeanSeconds is the mean wall-clock time per run.
	MeanSeconds float64
	// Throughput is Ops/MeanSeconds (reported for Silo).
	Throughput float64
	// RSDPercent is the relative standard deviation over the runs.
	RSDPercent float64
	// NsPerEvent is the mean engine cost per memory event — the
	// per-operation instrumentation overhead (strategy bookkeeping,
	// view maintenance) independent of how many retries a schedule needs.
	NsPerEvent float64
	// RacesDetected counts runs in which the detector found a data race
	// (the paper: both tools detect races in all applications).
	RacesDetected int
	Aborted       int
}

// MeasureApp runs the application `runs` times under the factory's
// strategy and aggregates timing (Table 4 averages over 10 runs). All runs
// share one pooled Runner and one strategy value, so the measurement
// reflects steady-state per-run cost rather than setup cost.
func MeasureApp(a *apps.App, factory StrategyFactory, runs int, seed int64, cores int) PerfResult {
	prog := a.Program()
	opts := a.Options()
	est := EstimateParams(prog, 5, seed^0x9e1f, opts)

	prev := runtime.GOMAXPROCS(cores)
	defer runtime.GOMAXPROCS(prev)

	res := PerfResult{App: a.Name, Cores: cores, Runs: runs}
	r := engine.NewRunner(prog, opts)
	defer r.Close()
	strat := factory(est)
	res.Strategy = strat.Name()
	samples := make([]float64, 0, runs)
	var total time.Duration
	var totalEvents int
	for i := 0; i < runs; i++ {
		o := r.Run(strat, seed+int64(i))
		total += o.Duration
		totalEvents += o.Events
		samples = append(samples, o.Duration.Seconds())
		if len(o.Races) > 0 {
			res.RacesDetected++
		}
		if o.Aborted {
			res.Aborted++
		}
	}
	res.MeanSeconds = total.Seconds() / float64(runs)
	if totalEvents > 0 {
		res.NsPerEvent = float64(total.Nanoseconds()) / float64(totalEvents)
	}
	if res.MeanSeconds > 0 {
		res.Throughput = float64(a.Ops) / res.MeanSeconds
	}
	res.RSDPercent = RSD(samples)
	return res
}

// EngineSnapshot is a machine-readable steady-state performance sample of
// the trial loop for one benchmark/strategy pair (emitted by
// `pctwm-bench -json` and committed as BENCH_engine.json).
type EngineSnapshot struct {
	Benchmark  string  `json:"benchmark"`
	Strategy   string  `json:"strategy"`
	Runs       int     `json:"runs"`
	NsPerRun   float64 `json:"ns_per_run"`
	NsPerEvent float64 `json:"ns_per_event"`
	RunsPerSec float64 `json:"runs_per_sec"`
	// AllocsPerRun and BytesPerRun come from runtime.MemStats deltas over
	// the measured loop (all goroutines; run single-threaded for clean
	// numbers).
	AllocsPerRun float64 `json:"allocs_per_run"`
	BytesPerRun  float64 `json:"bytes_per_run"`
	// Telemetry digests the engine counters accumulated over the measured
	// loop when the caller armed engine.Options.Telemetry; omitted (and
	// costing nothing) otherwise. Old snapshots without the field decode
	// fine — CompareSnapshots only reads NsPerEvent.
	Telemetry *telemetry.EngineSummary `json:"telemetry,omitempty"`
}

// SnapshotDelta is the benchstat-style comparison of one
// benchmark/strategy cell across two engine snapshots (committed baseline
// vs fresh measurement).
type SnapshotDelta struct {
	Benchmark string
	Strategy  string
	// OldNsPerEvent / NewNsPerEvent are the per-event costs being compared.
	OldNsPerEvent float64
	NewNsPerEvent float64
	// DeltaPercent is (new-old)/old in percent: positive means the new
	// snapshot is slower (a regression), negative faster.
	DeltaPercent float64
	// OldAllocsPerRun / NewAllocsPerRun compare steady-state allocation
	// counts the same way (zero when the old snapshot predates the field).
	OldAllocsPerRun float64
	NewAllocsPerRun float64
	// AllocsDeltaPercent is (new-old)/old allocations in percent; 0 when
	// the old side is 0 (nothing to compare against).
	AllocsDeltaPercent float64
}

// Regressed reports whether the cell's per-event cost grew by more than
// maxPercent.
func (d SnapshotDelta) Regressed(maxPercent float64) bool {
	return d.DeltaPercent > maxPercent
}

// allocsAbsSlack is the absolute allocs-per-run growth below which
// AllocsRegressed never fires: steady-state loops sit at a handful of
// allocations per run, where GC bookkeeping jitter of a fraction of an
// allocation would otherwise trip any percentage gate.
const allocsAbsSlack = 0.5

// AllocsRegressed reports whether the cell's allocations per run grew by
// more than maxPercent AND by more than half an allocation in absolute
// terms. Old snapshots without allocation data (old side 0) never
// regress.
func (d SnapshotDelta) AllocsRegressed(maxPercent float64) bool {
	if d.OldAllocsPerRun <= 0 {
		return false
	}
	return d.AllocsDeltaPercent > maxPercent &&
		d.NewAllocsPerRun-d.OldAllocsPerRun > allocsAbsSlack
}

// CompareSnapshots matches old and new snapshots by (benchmark, strategy)
// and returns one delta per pair present in both, in the old snapshot's
// order. Cells present on only one side are ignored — the gate compares
// what both snapshots measured.
func CompareSnapshots(old, new []EngineSnapshot) []SnapshotDelta {
	idx := make(map[[2]string]EngineSnapshot, len(new))
	for _, s := range new {
		idx[[2]string{s.Benchmark, s.Strategy}] = s
	}
	var deltas []SnapshotDelta
	for _, o := range old {
		n, ok := idx[[2]string{o.Benchmark, o.Strategy}]
		if !ok || o.NsPerEvent <= 0 {
			continue
		}
		d := SnapshotDelta{
			Benchmark:       o.Benchmark,
			Strategy:        o.Strategy,
			OldNsPerEvent:   o.NsPerEvent,
			NewNsPerEvent:   n.NsPerEvent,
			DeltaPercent:    100 * (n.NsPerEvent - o.NsPerEvent) / o.NsPerEvent,
			OldAllocsPerRun: o.AllocsPerRun,
			NewAllocsPerRun: n.AllocsPerRun,
		}
		if o.AllocsPerRun > 0 {
			d.AllocsDeltaPercent = 100 * (n.AllocsPerRun - o.AllocsPerRun) / o.AllocsPerRun
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// SnapshotGaps names the cells present on only one side of a snapshot
// comparison: missingFromOld lists "benchmark/strategy" cells the
// candidate measured but the baseline lacks (e.g. an old
// BENCH_engine.json recorded before explore cells existed), and
// missingFromNew the reverse. CompareSnapshots skips one-sided cells
// silently; callers use the gaps to report *which* cells were not
// compared instead of a generic mismatch. Names appear in input order,
// deduplicated.
func SnapshotGaps(old, new []EngineSnapshot) (missingFromOld, missingFromNew []string) {
	key := func(s EngineSnapshot) [2]string { return [2]string{s.Benchmark, s.Strategy} }
	name := func(s EngineSnapshot) string { return s.Benchmark + "/" + s.Strategy }
	oldIdx := make(map[[2]string]bool, len(old))
	for _, s := range old {
		oldIdx[key(s)] = true
	}
	newIdx := make(map[[2]string]bool, len(new))
	for _, s := range new {
		newIdx[key(s)] = true
	}
	seen := make(map[[2]string]bool)
	for _, s := range new {
		if !oldIdx[key(s)] && !seen[key(s)] {
			seen[key(s)] = true
			missingFromOld = append(missingFromOld, name(s))
		}
	}
	seen = make(map[[2]string]bool)
	for _, s := range old {
		if !newIdx[key(s)] && !seen[key(s)] {
			seen[key(s)] = true
			missingFromNew = append(missingFromNew, name(s))
		}
	}
	return missingFromOld, missingFromNew
}

// measureReps is the number of timed repetitions MeasureEngine performs.
// Each repetition replays the identical seed sequence, so the repetitions
// are the same computation measured under different ambient noise; the
// fastest one is the least-perturbed sample and is what gets reported
// (best-of-N, the usual benchmarking estimator for deterministic work).
const measureReps = 3

// MeasureEngine runs a steady-state serial trial loop on one pooled Runner
// and samples wall-clock and allocation cost per run. A warmup fraction
// (10% of runs, at least one) fills the Runner's pools before measurement;
// the timed loop is then repeated measureReps times and the fastest
// repetition reported.
func MeasureEngine(name string, prog *engine.Program, strat engine.Strategy, runs int, seed int64, opts engine.Options) EngineSnapshot {
	if runs < 1 {
		runs = 1
	}
	r := engine.NewRunner(prog, opts)
	defer r.Close()
	warmup := runs / 10
	if warmup < 1 {
		warmup = 1
	}
	for i := 0; i < warmup; i++ {
		r.Run(strat, seed+int64(i))
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var best time.Duration
	var events int
	for rep := 0; rep < measureReps; rep++ {
		start := time.Now()
		n := 0
		for i := 0; i < runs; i++ {
			n += r.Run(strat, seed+int64(i)).Events
		}
		if elapsed := time.Since(start); rep == 0 || elapsed < best {
			best, events = elapsed, n
		}
	}
	runtime.ReadMemStats(&after)

	totalRuns := float64(measureReps * runs)
	snap := EngineSnapshot{
		Benchmark:    name,
		Strategy:     strat.Name(),
		Runs:         runs,
		NsPerRun:     float64(best.Nanoseconds()) / float64(runs),
		AllocsPerRun: float64(after.Mallocs-before.Mallocs) / totalRuns,
		BytesPerRun:  float64(after.TotalAlloc-before.TotalAlloc) / totalRuns,
	}
	if events > 0 {
		snap.NsPerEvent = float64(best.Nanoseconds()) / float64(events)
	}
	if best > 0 {
		snap.RunsPerSec = float64(runs) / best.Seconds()
	}
	if opts.Telemetry != nil {
		s := opts.Telemetry.Summary()
		snap.Telemetry = &s
	}
	return snap
}
