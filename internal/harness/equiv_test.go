package harness_test

// Trace-equivalence gate for the direct-handoff scheduler: for every
// litmus test and every paper benchmark, the legacy baton scheduler
// (Options.Baton) and the default direct-handoff scheduler must produce
// identical executions for the same strategy and seed — same recorded
// event trace (po, rf, mo, SC order, spawn/join links), same outcome
// classification, same final state. This is the "bit-identical schedules"
// contract that lets the baton path serve as the reference implementation
// while it remains available as an escape hatch.

import (
	"reflect"
	"testing"

	"pctwm/internal/benchprog"
	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/litmus"
)

// equivSeeds is the number of seeds each program is replayed under per
// strategy, on both scheduler implementations.
const equivSeeds = 200

// compareOutcomes fails the test when the two outcomes differ in anything
// but wall-clock duration.
func compareOutcomes(t *testing.T, name, strategy string, seed int64, direct, baton *engine.Outcome) {
	t.Helper()
	fail := func(field string, d, b any) {
		t.Errorf("%s/%s seed %d: %s diverged: direct=%v baton=%v", name, strategy, seed, field, d, b)
	}
	if direct.Steps != baton.Steps {
		fail("Steps", direct.Steps, baton.Steps)
	}
	if direct.Events != baton.Events {
		fail("Events", direct.Events, baton.Events)
	}
	if direct.CommEvents != baton.CommEvents {
		fail("CommEvents", direct.CommEvents, baton.CommEvents)
	}
	if direct.BugHit != baton.BugHit {
		fail("BugHit", direct.BugHit, baton.BugHit)
	}
	if !reflect.DeepEqual(direct.BugMessages, baton.BugMessages) {
		fail("BugMessages", direct.BugMessages, baton.BugMessages)
	}
	if direct.Aborted != baton.Aborted {
		fail("Aborted", direct.Aborted, baton.Aborted)
	}
	if direct.Deadlocked != baton.Deadlocked {
		fail("Deadlocked", direct.Deadlocked, baton.Deadlocked)
	}
	if !reflect.DeepEqual(direct.Err, baton.Err) {
		fail("Err", direct.Err, baton.Err)
	}
	if !reflect.DeepEqual(direct.Races, baton.Races) {
		fail("Races", direct.Races, baton.Races)
	}
	if !reflect.DeepEqual(direct.FinalValues, baton.FinalValues) {
		fail("FinalValues", direct.FinalValues, baton.FinalValues)
	}
	switch {
	case direct.Recording == nil || baton.Recording == nil:
		fail("Recording presence", direct.Recording != nil, baton.Recording != nil)
	case !reflect.DeepEqual(direct.Recording.Events, baton.Recording.Events):
		fail("Recording.Events", len(direct.Recording.Events), len(baton.Recording.Events))
	case !reflect.DeepEqual(direct.Recording.SCOrder, baton.Recording.SCOrder):
		fail("Recording.SCOrder", direct.Recording.SCOrder, baton.Recording.SCOrder)
	case !reflect.DeepEqual(direct.Recording.SpawnLinks, baton.Recording.SpawnLinks):
		fail("Recording.SpawnLinks", direct.Recording.SpawnLinks, baton.Recording.SpawnLinks)
	case !reflect.DeepEqual(direct.Recording.JoinLinks, baton.Recording.JoinLinks):
		fail("Recording.JoinLinks", direct.Recording.JoinLinks, baton.Recording.JoinLinks)
	case !reflect.DeepEqual(direct.Recording.LocNames, baton.Recording.LocNames):
		fail("Recording.LocNames", direct.Recording.LocNames, baton.Recording.LocNames)
	}
}

// checkEquivalence runs prog under mk()-built strategies on both
// scheduler implementations for seeds 1..n and compares every execution.
// Each seed gets a fresh strategy instance per path so no strategy state
// leaks between the two runs being compared.
func checkEquivalence(t *testing.T, name string, prog *engine.Program, opts engine.Options, strategy string, mk func() engine.Strategy, n int) {
	t.Helper()
	opts.Record = true
	direct := engine.NewRunner(prog, opts)
	defer direct.Close()
	batonOpts := opts
	batonOpts.Baton = true
	baton := engine.NewRunner(prog, batonOpts)
	defer baton.Close()

	for seed := int64(1); seed <= int64(n); seed++ {
		od := direct.Run(mk(), seed)
		ob := baton.Run(mk(), seed)
		compareOutcomes(t, name, strategy, seed, od, ob)
		if t.Failed() {
			t.Fatalf("%s/%s: stopping at first divergent seed %d", name, strategy, seed)
		}
	}
}

// strategies under which equivalence is checked: the random baseline
// exercises broad schedule diversity; PCTWM additionally exercises the
// strategy-state protocol (priority changes, OnSpin, read picks) along
// the direct handoff path.
func equivStrategies(depth int) map[string]func() engine.Strategy {
	if depth < 1 {
		depth = 1
	}
	return map[string]func() engine.Strategy{
		"random": func() engine.Strategy { return core.NewRandom() },
		"pctwm":  func() engine.Strategy { return core.NewPCTWM(depth, 1, 100) },
	}
}

// TestTraceEquivalenceLitmus: every litmus test produces identical traces
// on both schedulers for 200 seeds.
func TestTraceEquivalenceLitmus(t *testing.T) {
	for _, lt := range litmus.Suite() {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			t.Parallel()
			for sname, mk := range equivStrategies(1) {
				checkEquivalence(t, lt.Name, lt.Program, engine.Options{}, sname, mk, equivSeeds)
			}
		})
	}
}

// TestTraceEquivalenceBenchmarks: every paper benchmark produces
// identical traces on both schedulers for 200 seeds, under the
// benchmark's own options (race detection on, stop at first bug).
func TestTraceEquivalenceBenchmarks(t *testing.T) {
	for _, b := range benchprog.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			seeds := equivSeeds
			if testing.Short() {
				seeds = 25
			}
			for sname, mk := range equivStrategies(b.Depth) {
				checkEquivalence(t, b.Name, b.Program(0), b.Options(), sname, mk, seeds)
			}
		})
	}
}
