package harness

import (
	"context"
	"math/rand"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pctwm/internal/benchprog"
	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/litmus"
	"pctwm/internal/memmodel"
	"pctwm/internal/replay"
)

// panickyStrategy panics in Begin for a deterministic, seed-dependent
// subset of runs (roughly 1/rate of them) — a model of a buggy strategy
// whose panic escapes the engine into the harness.
type panickyStrategy struct {
	inner engine.Strategy
	rate  int
}

func newPanicky(rate int) engine.Strategy {
	return &panickyStrategy{inner: core.NewRandom(), rate: rate}
}

func (s *panickyStrategy) Name() string { return "panicky" }
func (s *panickyStrategy) Begin(info engine.ProgramInfo, rng *rand.Rand) {
	doomed := rng.Intn(s.rate) == 0
	s.inner.Begin(info, rng)
	if doomed {
		panic("strategy bug")
	}
}
func (s *panickyStrategy) NextThread(en []engine.PendingOp) memmodel.ThreadID {
	return s.inner.NextThread(en)
}
func (s *panickyStrategy) PickRead(rc engine.ReadContext) int { return s.inner.PickRead(rc) }
func (s *panickyStrategy) OnEvent(ev *memmodel.Event)         { s.inner.OnEvent(ev) }
func (s *panickyStrategy) OnThreadStart(t, p memmodel.ThreadID) {
	s.inner.OnThreadStart(t, p)
}
func (s *panickyStrategy) OnSpin(t memmodel.ThreadID) { s.inner.OnSpin(t) }

// TestCampaignPanicQuarantine: a strategy panic is recovered at the trial
// boundary, counted, and the worker keeps draining rounds on a fresh
// Runner — with identical counts for every worker count (the panics are a
// deterministic function of the seed).
func TestCampaignPanicQuarantine(t *testing.T) {
	b, err := benchprog.ByName("dekker")
	if err != nil {
		t.Fatal(err)
	}
	prog := b.Program(0)
	opts := b.Options()
	const runs = 60
	newStrategy := func() engine.Strategy { return newPanicky(4) }

	serial := RunCampaign(prog, b.Detect, newStrategy, runs, 7, opts, Campaign{Workers: 1})
	if serial.Panics == 0 {
		t.Fatalf("no panics triggered; panicky strategy too tame: %+v", serial)
	}
	if serial.Runs != runs {
		t.Fatalf("panics aborted the campaign: %d/%d rounds ran", serial.Runs, runs)
	}
	if serial.TotalEvents == 0 {
		t.Fatalf("no events counted — quarantine poisoned the surviving rounds")
	}
	par := RunCampaign(prog, b.Detect, newStrategy, runs, 7, opts, Campaign{Workers: 4})
	if par.Runs != serial.Runs || par.Panics != serial.Panics ||
		par.Hits != serial.Hits || par.TotalEvents != serial.TotalEvents {
		t.Fatalf("parallel campaign diverges from serial:\n  parallel %+v\n  serial   %+v", par, serial)
	}
}

// panickyProgram panics inside a ThreadFunc when the load observes the
// sibling's store — a user-program crash that only some schedules reach.
// The engine contains it as a PanicError outcome.
func panickyProgram() *engine.Program {
	p := engine.NewProgram("panicky-prog")
	l := p.Loc("L", 0)
	p.AddThread(func(th *engine.Thread) { th.Store(l, 1, memmodel.Relaxed) })
	p.AddThread(func(th *engine.Thread) {
		if th.Load(l, memmodel.Relaxed) == 1 {
			panic("program op exploded")
		}
	})
	return p
}

// TestCampaignPanickingProgramIsolated: a panicking program operation in
// one worker's trial is contained by the engine (no harness panic), does
// not poison sibling workers' trials, and produces a deterministic repro
// bundle that replays to the identical outcome.
func TestCampaignPanickingProgramIsolated(t *testing.T) {
	prog := panickyProgram()
	opts := engine.Options{}
	detect := func(*engine.Outcome) bool { return false }
	newStrategy := func() engine.Strategy { return core.NewRandom() }
	const runs = 200

	serial := RunCampaign(prog, detect, newStrategy, runs, 3, opts, Campaign{Workers: 1})
	dir := t.TempDir()
	par := RunCampaign(prog, detect, newStrategy, runs, 3, opts,
		Campaign{Workers: 4, ReproDir: dir, MaxRepros: 2})

	if par.Panics != 0 {
		t.Fatalf("ThreadFunc panic escaped the engine into the harness: %+v", par)
	}
	if par.Runs != runs {
		t.Fatalf("program panics aborted the pool: %d/%d rounds ran", par.Runs, runs)
	}
	if par.Runs != serial.Runs || par.TotalEvents != serial.TotalEvents || par.Hits != serial.Hits {
		t.Fatalf("panicking trials poisoned siblings — parallel diverges from serial:\n  parallel %+v\n  serial   %+v", par, serial)
	}
	if len(par.Failures) == 0 {
		t.Fatalf("no failures captured; expected panic bundles in %s", dir)
	}
	for _, f := range par.Failures {
		if f.Kind != "panic" {
			t.Fatalf("failure kind %q, want \"panic\": %+v", f.Kind, f)
		}
		if f.Triage != replay.TriageDeterministic {
			t.Fatalf("panic triage %q, want DETERMINISTIC: %+v", f.Triage, f)
		}
		if f.BundlePath == "" {
			t.Fatalf("no bundle written: %+v", f)
		}
		bundle, err := replay.LoadBundle(f.BundlePath)
		if err != nil {
			t.Fatal(err)
		}
		vr, err := bundle.Verify(prog)
		if err != nil {
			t.Fatal(err)
		}
		if !vr.Match {
			t.Fatalf("panic bundle does not replay: derails=%d diffs=%v", vr.Derails, vr.Diffs)
		}
	}
}

// TestCampaignCancelPreCanceled: an already-canceled context stops the
// campaign before any round runs.
func TestCampaignCancelPreCanceled(t *testing.T) {
	b, _ := benchprog.ByName("dekker")
	prog := b.Program(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunCampaign(prog, b.Detect, func() engine.Strategy { return core.NewRandom() },
		50, 1, b.Options(), Campaign{Workers: 2, Context: ctx})
	if res.Runs != 0 {
		t.Fatalf("pre-canceled campaign ran %d rounds", res.Runs)
	}
	if !res.Interrupted {
		t.Fatalf("result not marked interrupted: %+v", res)
	}
}

// TestCampaignCancelMidRun: canceling the campaign context mid-batch
// returns promptly with a partial, interrupted result — in-flight runs are
// aborted by the engine's step-loop watchdog rather than waited out.
func TestCampaignCancelMidRun(t *testing.T) {
	b, _ := benchprog.ByName("msqueue")
	prog := b.Program(0)
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(30*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()

	start := time.Now()
	res := RunCampaign(prog, b.Detect, func() engine.Strategy { return core.NewRandom() },
		1<<30, 1, b.Options(), Campaign{Workers: 2, Context: ctx})
	elapsed := time.Since(start)
	if !res.Interrupted {
		t.Fatalf("result not marked interrupted: %+v", res)
	}
	if res.Runs == 0 {
		t.Fatalf("campaign ran no rounds before the cancel landed")
	}
	if res.Runs >= 1<<30 {
		t.Fatalf("campaign claims to have finished %d rounds", res.Runs)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancel did not abort the campaign promptly: took %v", elapsed)
	}
}

// blockingStrategy wedges inside NextThread until its gate channel closes
// — a worker stuck mid-trial that cooperative cancellation cannot reach.
type blockingStrategy struct{ gate chan struct{} }

func (s *blockingStrategy) Name() string                         { return "blocking" }
func (s *blockingStrategy) Begin(engine.ProgramInfo, *rand.Rand) {}
func (s *blockingStrategy) NextThread(en []engine.PendingOp) memmodel.ThreadID {
	<-s.gate
	return en[0].TID
}
func (s *blockingStrategy) PickRead(engine.ReadContext) int      { return 0 }
func (s *blockingStrategy) OnEvent(*memmodel.Event)              {}
func (s *blockingStrategy) OnThreadStart(_, _ memmodel.ThreadID) {}
func (s *blockingStrategy) OnSpin(memmodel.ThreadID)             {}

// TestCampaignStuckWatchdog: a worker wedged inside a trial trips the
// campaign watchdog — the campaign returns a partial result marked Stuck
// with diagnostics naming the wedged worker, instead of hanging forever.
func TestCampaignStuckWatchdog(t *testing.T) {
	b, _ := benchprog.ByName("dekker")
	prog := b.Program(0)
	gate := make(chan struct{})
	defer close(gate) // release the leaked worker after the test
	var tookBlocker atomic.Bool
	newStrategy := func() engine.Strategy {
		if tookBlocker.CompareAndSwap(false, true) {
			return &blockingStrategy{gate: gate}
		}
		return core.NewRandom()
	}

	start := time.Now()
	res := RunCampaign(prog, b.Detect, newStrategy, 500, 1, b.Options(),
		Campaign{Workers: 2, StuckTimeout: 120 * time.Millisecond})
	elapsed := time.Since(start)
	if !res.Stuck {
		t.Fatalf("watchdog did not flag the wedged worker: %+v", res)
	}
	if !strings.Contains(res.StuckDiag, "stuck workers") || !strings.Contains(res.StuckDiag, "goroutine") {
		t.Fatalf("diagnostics missing worker/goroutine details:\n%s", res.StuckDiag)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("stuck campaign took %v to give up", elapsed)
	}
}

// counterStrategy deliberately violates the strategy determinism contract:
// its schedule depends on a global run counter instead of the engine's
// seeded rng, so re-running the same seed yields a different execution.
type counterStrategy struct {
	n *atomic.Int64
	k int64
}

func (s *counterStrategy) Name() string { return "counter" }
func (s *counterStrategy) Begin(engine.ProgramInfo, *rand.Rand) {
	s.k = s.n.Add(1)
}
func (s *counterStrategy) NextThread(en []engine.PendingOp) memmodel.ThreadID {
	return en[int(s.k)%len(en)].TID
}
func (s *counterStrategy) PickRead(rc engine.ReadContext) int {
	return int(s.k) % len(rc.Candidates)
}
func (s *counterStrategy) OnEvent(*memmodel.Event)              {}
func (s *counterStrategy) OnThreadStart(_, _ memmodel.ThreadID) {}
func (s *counterStrategy) OnSpin(memmodel.ThreadID)             {}

// interleaveProgram's final L value uniquely encodes the interleaving of
// nine seq-cst read-modify-write rounds across three threads, so any two
// different schedules end in different final states.
func interleaveProgram() *engine.Program {
	p := engine.NewProgram("interleave")
	l := p.Loc("L", 0)
	for id := 1; id <= 3; id++ {
		id := memmodel.Value(id)
		p.AddThread(func(th *engine.Thread) {
			for j := 0; j < 3; j++ {
				v := th.Load(l, memmodel.SeqCst)
				th.Store(l, v*4+id, memmodel.SeqCst)
			}
		})
	}
	return p
}

// TestCampaignFlakeTriageNondeterministic: when the triage re-run of a
// failing seed diverges from the original outcome, the failure is flagged
// NONDETERMINISTIC — the signal that the strategy (or engine) broke the
// determinism contract.
func TestCampaignFlakeTriageNondeterministic(t *testing.T) {
	prog := interleaveProgram()
	var n atomic.Int64
	newStrategy := func() engine.Strategy { return &counterStrategy{n: &n} }
	detect := func(o *engine.Outcome) bool { return o.Err == nil } // every clean run "fails"

	dir := t.TempDir()
	res := RunCampaign(prog, detect, newStrategy, 1, 42, engine.Options{},
		Campaign{Workers: 1, ReproDir: dir, MaxRepros: 1})
	if len(res.Failures) != 1 {
		t.Fatalf("captured %d failures, want 1: %+v", len(res.Failures), res)
	}
	f := res.Failures[0]
	if f.Triage != replay.TriageNondeterministic {
		t.Fatalf("triage %q, want NONDETERMINISTIC: %+v", f.Triage, f)
	}
	if res.Nondeterministic != 1 {
		t.Fatalf("Nondeterministic count %d, want 1", res.Nondeterministic)
	}
	if !strings.Contains(f.Msg, "rerun diverged") {
		t.Fatalf("failure message does not explain the divergence: %q", f.Msg)
	}
}

// TestCampaignBundleRoundTrip: failing trials captured by a campaign
// produce bundles that replay bit-identically — across a benchprog
// benchmark (bug + race detection) and a litmus test (weak-outcome
// detection).
func TestCampaignBundleRoundTrip(t *testing.T) {
	t.Run("benchprog", func(t *testing.T) {
		b, err := benchprog.ByName("rwlock")
		if err != nil {
			t.Fatal(err)
		}
		prog := b.Program(0)
		dir := t.TempDir()
		res := RunCampaign(prog, b.Detect, func() engine.Strategy { return core.NewPCTWM(2, 1, 25) },
			150, 11, b.Options(), Campaign{Workers: 2, ReproDir: dir, MaxRepros: 3})
		if res.Hits == 0 || len(res.Failures) == 0 {
			t.Fatalf("campaign found no failures to bundle: %+v", res)
		}
		if res.Nondeterministic != 0 {
			t.Fatalf("deterministic engine flagged nondeterministic failures: %+v", res.Failures)
		}
		verifyBundles(t, prog, res.Failures)
	})
	t.Run("litmus", func(t *testing.T) {
		test := litmus.SBRelaxed()
		if len(test.Weak) == 0 {
			t.Fatal("SBRelaxed has no weak outcome")
		}
		weak := test.Weak[0]
		detect := func(o *engine.Outcome) bool {
			return o.Err == nil && !o.Aborted && !o.Deadlocked && test.Outcome(o.FinalValues) == weak
		}
		dir := t.TempDir()
		res := RunCampaign(test.Program, detect, func() engine.Strategy { return core.NewRandom() },
			100, 5, engine.Options{}, Campaign{Workers: 1, ReproDir: dir, MaxRepros: 2})
		if len(res.Failures) == 0 {
			t.Fatalf("weak outcome %q never detected in %d runs", weak, res.Runs)
		}
		verifyBundles(t, test.Program, res.Failures)
	})
}

func verifyBundles(t *testing.T, prog *engine.Program, failures []TrialFailure) {
	t.Helper()
	for _, f := range failures {
		if f.Triage != replay.TriageDeterministic {
			t.Fatalf("failure triage %q, want DETERMINISTIC: %+v", f.Triage, f)
		}
		if f.BundlePath == "" {
			t.Fatalf("no bundle written for seed %d: %s", f.Seed, f.Msg)
		}
		if _, err := os.Stat(f.BundlePath); err != nil {
			t.Fatalf("bundle file missing: %v", err)
		}
		bundle, err := replay.LoadBundle(f.BundlePath)
		if err != nil {
			t.Fatal(err)
		}
		if bundle.Seed != f.Seed || bundle.Triage != f.Triage {
			t.Fatalf("bundle metadata mismatch: %+v vs %+v", bundle, f)
		}
		vr, err := bundle.Verify(prog)
		if err != nil {
			t.Fatal(err)
		}
		if !vr.Match {
			t.Fatalf("bundle for seed %d does not replay bit-identically: derails=%d diffs=%v",
				f.Seed, vr.Derails, vr.Diffs)
		}
		if diffs := bundle.FirstOutcome.Diff(vr.Summary); len(diffs) != 0 {
			t.Fatalf("replay diverges from the original campaign trial: %v", diffs)
		}
	}
}
