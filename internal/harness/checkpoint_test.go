package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"pctwm/internal/benchprog"
	"pctwm/internal/checkpoint"
	"pctwm/internal/engine"
	"pctwm/internal/telemetry"
)

// comparableResult strips the timing-dependent fields of a TrialResult
// (Elapsed, Wall are wall-clock noise; the telemetry change-point log is
// a bounded per-Runner diagnostic whose content depends on which worker
// merged first) and canonicalizes the failure order (capture order races
// across workers; the captured *set* is deterministic when the repro
// budget covers every failure).
func comparableResult(r TrialResult) TrialResult {
	r.Elapsed, r.Wall = 0, 0
	r.ResumedRuns = 0
	r.StuckDiag = ""
	if r.Telemetry != nil {
		tel := *r.Telemetry
		tel.ChangePoints = nil
		r.Telemetry = &tel
	}
	fails := append([]TrialFailure(nil), r.Failures...)
	for i := range fails {
		fails[i].BundlePath = filepath.Base(fails[i].BundlePath)
	}
	sort.Slice(fails, func(i, j int) bool { return fails[i].Seed < fails[j].Seed })
	if len(fails) == 0 {
		fails = nil
	}
	r.Failures = fails
	return r
}

// requireIdentical asserts two stripped results are bit-identical,
// dumping both as JSON on divergence.
func requireIdentical(t *testing.T, label string, got, want TrialResult) {
	t.Helper()
	if reflect.DeepEqual(got, want) {
		return
	}
	gj, _ := json.MarshalIndent(struct {
		TrialResult
		Telemetry *telemetry.EngineCounters
	}{got, got.Telemetry}, "", " ")
	wj, _ := json.MarshalIndent(struct {
		TrialResult
		Telemetry *telemetry.EngineCounters
	}{want, want.Telemetry}, "", " ")
	t.Fatalf("%s diverges:\n--- got ---\n%s\n--- want ---\n%s", label, gj, wj)
}

func mustBench(t *testing.T, name string) *benchprog.Benchmark {
	t.Helper()
	b, err := benchprog.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCheckpointKillResumeDeterminism is the tentpole guarantee: a
// campaign killed between checkpoint generations (simulated SIGKILL via
// the killAfterChunks hook) and resumed finishes with bit-identical
// totals, telemetry merges, and repro indexes to an uninterrupted run —
// across worker counts and memory models.
func TestCheckpointKillResumeDeterminism(t *testing.T) {
	b := mustBench(t, "dekker")
	prog := b.Program(0)
	const (
		runs  = 600
		every = 100
		seed  = 42
	)
	for _, model := range []string{engine.ModelRC11, engine.ModelTSO} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers%d", model, workers), func(t *testing.T) {
				opts := b.Options()
				opts.Model = model
				newStrategy := func() engine.Strategy { return C11Tester()(Estimate{}) }

				// Reference: uninterrupted, unchunked campaign with a repro
				// budget large enough to capture every failure.
				refDir := t.TempDir()
				ref := RunCampaign(prog, b.Detect, newStrategy, runs, seed, opts,
					Campaign{Workers: workers, Telemetry: true, ReproDir: refDir, MaxRepros: runs})

				// Killed run: checkpoint every 100 trials, die after 2
				// committed generations (trial 200 of 600).
				dir := t.TempDir()
				reproDir := filepath.Join(dir, "repros")
				spec := &CheckpointSpec{Dir: filepath.Join(dir, "ckpt"), Every: every, killAfterChunks: 2}
				camp := Campaign{Workers: workers, Telemetry: true, ReproDir: reproDir, MaxRepros: runs,
					Checkpoint: spec, CheckpointCell: "kill-resume"}
				killed := RunCampaign(prog, b.Detect, newStrategy, runs, seed, opts, camp)
				if !killed.Interrupted {
					t.Fatalf("killAfterChunks did not interrupt the campaign: %+v", killed)
				}
				if killed.Runs != 2*every {
					t.Fatalf("killed campaign ran %d trials, want %d", killed.Runs, 2*every)
				}

				// Resume in a fresh spec (new process): must pick up at trial
				// 200 and finish.
				respec := &CheckpointSpec{Dir: filepath.Join(dir, "ckpt"), Every: every, Resume: true}
				recamp := camp
				recamp.Checkpoint = respec
				resumed := RunCampaign(prog, b.Detect, newStrategy, runs, seed, opts, recamp)
				if resumed.ResumedRuns != 2*every {
					t.Fatalf("ResumedRuns = %d, want %d", resumed.ResumedRuns, 2*every)
				}
				requireIdentical(t, "resumed vs uninterrupted", comparableResult(resumed), comparableResult(ref))

				// Repro indexes: same bundle set (by filename).
				refIdx := bundleNames(t, refDir)
				resIdx := bundleNames(t, reproDir)
				if fmt.Sprint(refIdx) != fmt.Sprint(resIdx) {
					t.Fatalf("repro index diverges:\n  resumed %v\n  ref     %v", resIdx, refIdx)
				}
				// And the durable index recorded in the checkpoint matches
				// the bundles on disk.
				idx, err := LoadReproIndex(nil, filepath.Join(dir, "ckpt"))
				if err != nil {
					t.Fatalf("LoadReproIndex: %v", err)
				}
				var idxNames []string
				for _, p := range idx {
					idxNames = append(idxNames, filepath.Base(p))
				}
				sort.Strings(idxNames)
				if fmt.Sprint(idxNames) != fmt.Sprint(resIdx) {
					t.Fatalf("checkpointed repro index diverges from disk:\n  index %v\n  disk  %v", idxNames, resIdx)
				}

				// Resuming an already-complete campaign returns the stored
				// totals without running anything.
				again := RunCampaign(prog, b.Detect, newStrategy, runs, seed, opts, recamp)
				if again.ResumedRuns != runs || again.Runs != runs {
					t.Fatalf("resume of complete campaign re-ran trials: %+v", again)
				}
				requireIdentical(t, "stored vs uninterrupted", comparableResult(again), comparableResult(ref))
			})
		}
	}
}

func bundleNames(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names
}

// TestCheckpointedMatchesUnchunked: with checkpointing on and no kill,
// the chunked loop itself must not perturb totals.
func TestCheckpointedMatchesUnchunked(t *testing.T) {
	b := mustBench(t, "barrier")
	prog := b.Program(0)
	opts := b.Options()
	newStrategy := func() engine.Strategy { return C11Tester()(Estimate{}) }
	const runs, seed = 300, 11

	plain := RunCampaign(prog, b.Detect, newStrategy, runs, seed, opts, Campaign{Workers: 2, Telemetry: true})
	spec := &CheckpointSpec{Dir: t.TempDir(), Every: 64}
	chunked := RunCampaign(prog, b.Detect, newStrategy, runs, seed, opts,
		Campaign{Workers: 2, Telemetry: true, Checkpoint: spec})
	requireIdentical(t, "checkpointed vs plain", comparableResult(chunked), comparableResult(plain))
}

// TestCheckpointTransientFaultsRetried: a burst of transient write
// errors (ENOSPC-style) is absorbed by retry/backoff; the campaign stays
// fully durable.
func TestCheckpointTransientFaultsRetried(t *testing.T) {
	b := mustBench(t, "dekker")
	prog := b.Program(0)
	opts := b.Options()
	newStrategy := func() engine.Strategy { return C11Tester()(Estimate{}) }

	ffs := &checkpoint.FaultFS{}
	ffs.FailWrites(2, errors.New("injected ENOSPC"))
	m := &telemetry.Metrics{}
	spec := &CheckpointSpec{Dir: t.TempDir(), Every: 50, FS: ffs}
	res := RunCampaign(prog, b.Detect, newStrategy, 150, 3, opts,
		Campaign{Workers: 2, Metrics: m, Checkpoint: spec})
	if res.Durability == DurabilityDegraded || spec.Degraded() {
		t.Fatalf("transient faults degraded the campaign: %+v", res)
	}
	snap := m.SnapshotAt(time.Now())
	if snap.CheckpointRetries < 2 {
		t.Fatalf("retries = %d, want >= 2", snap.CheckpointRetries)
	}
	if snap.CheckpointWrites != 3 {
		t.Fatalf("writes = %d, want 3 generations", snap.CheckpointWrites)
	}
}

// TestCheckpointPermanentFaultDegrades: a directory that becomes
// unwritable mid-campaign (EACCES forever) must not stop the campaign —
// it finishes, logs once, and the result is marked degraded.
func TestCheckpointPermanentFaultDegrades(t *testing.T) {
	b := mustBench(t, "dekker")
	prog := b.Program(0)
	opts := b.Options()
	newStrategy := func() engine.Strategy { return C11Tester()(Estimate{}) }

	ffs := &checkpoint.FaultFS{}
	var logs []string
	m := &telemetry.Metrics{}
	spec := &CheckpointSpec{Dir: t.TempDir(), Every: 40, FS: ffs,
		Logf: func(format string, args ...any) { logs = append(logs, fmt.Sprintf(format, args...)) }}
	// First campaign lands its checkpoints, then the disk goes read-only.
	res1 := RunCampaign(prog, b.Detect, newStrategy, 40, 5, opts,
		Campaign{Workers: 1, Metrics: m, Checkpoint: spec, CheckpointCell: "warm"})
	if res1.Durability == DurabilityDegraded {
		t.Fatalf("healthy campaign marked degraded: %+v", res1)
	}
	ffs.SetPermanentError(errors.New("injected EACCES"))
	res2 := RunCampaign(prog, b.Detect, newStrategy, 120, 5, opts,
		Campaign{Workers: 2, Metrics: m, Checkpoint: spec, CheckpointCell: "cold"})
	if res2.Runs != 120 {
		t.Fatalf("degraded campaign did not finish: %d/120 trials", res2.Runs)
	}
	if res2.Durability != DurabilityDegraded || !spec.Degraded() {
		t.Fatalf("permanent write failure not marked degraded: %+v", res2)
	}
	if len(logs) != 1 {
		t.Fatalf("degradation logged %d times, want exactly once: %v", len(logs), logs)
	}
	if got := m.SnapshotAt(time.Now()).CheckpointDegraded; got != 1 {
		t.Fatalf("CheckpointDegraded = %d, want 1", got)
	}
}

// TestCheckpointTornWriteFallsBack: a torn newest generation (what a
// SIGKILL or power cut mid-flush leaves when the rename already landed)
// must not poison resume — the loader falls back to the previous good
// generation and the campaign re-runs the lost chunk, finishing
// bit-identical to an uninterrupted run.
func TestCheckpointTornWriteFallsBack(t *testing.T) {
	b := mustBench(t, "dekker")
	prog := b.Program(0)
	opts := b.Options()
	newStrategy := func() engine.Strategy { return C11Tester()(Estimate{}) }
	const runs, every, seed = 300, 50, 9

	ref := RunCampaign(prog, b.Detect, newStrategy, runs, seed, opts, Campaign{Workers: 2})

	dir := t.TempDir()
	spec := &CheckpointSpec{Dir: dir, Every: every, killAfterChunks: 3}
	killed := RunCampaign(prog, b.Detect, newStrategy, runs, seed, opts,
		Campaign{Workers: 2, Checkpoint: spec})
	if !killed.Interrupted {
		t.Fatalf("kill hook did not fire: %+v", killed)
	}
	// Tear the newest generation on disk: half its bytes survive.
	cells, err := os.ReadDir(dir)
	if err != nil || len(cells) != 1 {
		t.Fatalf("campaign cells = %v, %v", cells, err)
	}
	cellDir := filepath.Join(dir, cells[0].Name())
	gens, err := os.ReadDir(cellDir)
	if err != nil || len(gens) == 0 {
		t.Fatalf("generations = %v, %v", gens, err)
	}
	newest := filepath.Join(cellDir, gens[len(gens)-1].Name())
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	m := &telemetry.Metrics{}
	respec := &CheckpointSpec{Dir: dir, Every: every, Resume: true}
	resumed := RunCampaign(prog, b.Detect, newStrategy, runs, seed, opts,
		Campaign{Workers: 2, Metrics: m, Checkpoint: respec})
	if resumed.ResumedRuns != 2*every {
		t.Fatalf("resume did not fall back to generation 2: ResumedRuns = %d, want %d", resumed.ResumedRuns, 2*every)
	}
	if got := m.SnapshotAt(time.Now()).CheckpointCorrupt; got != 1 {
		t.Fatalf("CheckpointCorrupt = %d, want 1", got)
	}
	requireIdentical(t, "post-fallback totals", comparableResult(resumed), comparableResult(ref))
}

// TestCheckpointBundleWritesHardened: repro-bundle writes inside a
// checkpointed campaign ride the same fault-injectable filesystem and
// retry policy as checkpoints.
func TestCheckpointBundleWritesHardened(t *testing.T) {
	b := mustBench(t, "dekker")
	prog := b.Program(0)
	opts := b.Options()
	newStrategy := func() engine.Strategy { return C11Tester()(Estimate{}) }

	dir := t.TempDir()
	ffs := &checkpoint.FaultFS{}
	ffs.FailWrites(1, errors.New("injected EIO"))
	spec := &CheckpointSpec{Dir: filepath.Join(dir, "ckpt"), Every: 100, FS: ffs}
	res := RunCampaign(prog, b.Detect, newStrategy, 100, 21, opts,
		Campaign{Workers: 1, ReproDir: filepath.Join(dir, "repros"), MaxRepros: 100, Checkpoint: spec})
	if len(res.Failures) == 0 {
		t.Skip("no failures captured at this seed; nothing to assert")
	}
	for _, f := range res.Failures {
		if f.BundlePath == "" {
			t.Fatalf("bundle write not retried past transient fault: %+v", f)
		}
	}
}
