package harness

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"pctwm/internal/benchprog"
	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/replay"
	"pctwm/internal/telemetry"
)

// TestTelemetryMergeDeterministic: campaign counter totals are
// bit-identical between serial and every parallel worker count over the
// same seed set — merging per-worker shards is commutative, and the
// grant classification is derived purely from the schedule.
func TestTelemetryMergeDeterministic(t *testing.T) {
	b, err := benchprog.ByName("rwlock")
	if err != nil {
		t.Fatal(err)
	}
	prog := b.Program(0)
	opts := b.Options()
	newStrategy := func() engine.Strategy { return core.NewPCTWM(2, 1, 10) }

	run := func(workers int) telemetry.EngineSummary {
		res := RunCampaign(prog, b.Detect, newStrategy, 200, 7, opts,
			Campaign{Workers: workers, Telemetry: true})
		if res.Telemetry == nil {
			t.Fatalf("workers=%d: no telemetry collected", workers)
		}
		return res.Telemetry.Summary()
	}

	ref := run(1)
	if ref.Trials != 200 {
		t.Fatalf("serial trials %d", ref.Trials)
	}
	if ref.Events == 0 || ref.Handoffs+ref.SameThreadGrants == 0 {
		t.Fatalf("serial counters empty: %+v", ref)
	}
	if ref.RFCandidates.Count == 0 {
		t.Fatalf("no rf candidate observations: %+v", ref)
	}
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d telemetry diverges:\n got %+v\nwant %+v", workers, got, ref)
		}
	}
}

// TestTelemetryEventsMatchOutcome: the op matrix total equals the
// engine's own event count, and the PCTWM change-point histogram is
// populated when the strategy delays.
func TestTelemetryEventsMatchOutcome(t *testing.T) {
	b, err := benchprog.ByName("dekker")
	if err != nil {
		t.Fatal(err)
	}
	prog := b.Program(0)
	res := RunCampaign(prog, b.Detect, func() engine.Strategy { return core.NewPCTWM(2, 1, 10) },
		100, 3, b.Options(), Campaign{Workers: 1, Telemetry: true})
	if res.Telemetry == nil {
		t.Fatal("no telemetry")
	}
	s := res.Telemetry.Summary()
	if s.Events != uint64(res.TotalEvents) {
		t.Fatalf("op matrix total %d != engine event total %d", s.Events, res.TotalEvents)
	}
	if s.ChangePointDepth.Count == 0 {
		t.Fatalf("PCTWM logged no change points over 100 trials: %+v", s)
	}
}

// TestTelemetryAccumulator: a caller-supplied Options.Telemetry both
// enables collection and accumulates across campaigns.
func TestTelemetryAccumulator(t *testing.T) {
	b, _ := benchprog.ByName("dekker")
	prog := b.Program(0)
	opts := b.Options()
	acc := &telemetry.EngineCounters{}
	opts.Telemetry = acc
	newStrategy := func() engine.Strategy { return core.NewRandom() }
	for i := 0; i < 2; i++ {
		res := RunCampaign(prog, b.Detect, newStrategy, 50, int64(100*i), opts, Campaign{Workers: 2})
		if res.Telemetry == nil {
			t.Fatal("Options.Telemetry did not imply collection")
		}
	}
	if acc.Trials != 100 {
		t.Fatalf("accumulator trials %d, want 100", acc.Trials)
	}
}

// TestTelemetryMetricsHub: the campaign feeds the shared metrics hub —
// trial counts, engine merge, and worker accounting all land.
func TestTelemetryMetricsHub(t *testing.T) {
	b, _ := benchprog.ByName("dekker")
	prog := b.Program(0)
	m := &telemetry.Metrics{}
	res := RunCampaign(prog, b.Detect, func() engine.Strategy { return core.NewRandom() },
		80, 5, b.Options(), Campaign{Workers: 4, Telemetry: true, Metrics: m})
	s := m.SnapshotAt(time.Now())
	if s.Trials != 80 || s.Expected != 80 {
		t.Fatalf("hub trials %d/%d", s.Trials, s.Expected)
	}
	if s.Events != uint64(res.TotalEvents) {
		t.Fatalf("hub events %d != %d", s.Events, res.TotalEvents)
	}
	if s.Hits != uint64(res.Hits) {
		t.Fatalf("hub hits %d != %d", s.Hits, res.Hits)
	}
	if s.Workers != 0 {
		t.Fatalf("workers still registered: %d", s.Workers)
	}
	if s.Engine.Trials != 80 {
		t.Fatalf("merged engine trials %d", s.Engine.Trials)
	}
	if res.Telemetry == nil || !reflect.DeepEqual(s.Engine, res.Telemetry.Summary()) {
		t.Fatalf("hub engine summary diverges from campaign telemetry")
	}
}

// TestTelemetryZeroAllocOverhead: arming (or not arming) an engine
// counter shard adds zero allocations to the steady-state trial loop —
// the hooks are plain field increments, and the nil path is a single
// predictable branch. (The wall-clock cost is bounded separately by the
// CI bench gate against BENCH_engine.json.)
func TestTelemetryZeroAllocOverhead(t *testing.T) {
	b, _ := benchprog.ByName("dekker")
	prog := b.Program(0)

	measure := func(tel *telemetry.EngineCounters) float64 {
		opts := b.Options()
		opts.Telemetry = tel
		r := engine.NewRunner(prog, opts)
		defer r.Close()
		strat := core.NewRandom()
		// Warm the Runner's pools.
		for i := 0; i < 20; i++ {
			r.Run(strat, int64(i))
		}
		seed := int64(0)
		return testing.AllocsPerRun(300, func() {
			r.Run(strat, seed)
			seed++
		})
	}

	nilPath := measure(nil)
	armed := measure(&telemetry.EngineCounters{})
	if delta := armed - nilPath; delta > 0.5 {
		t.Fatalf("telemetry adds %.2f allocs/run (nil %.2f, armed %.2f), want 0",
			delta, nilPath, armed)
	}
}

// TestCampaignEmbedPerfetto: with EmbedPerfetto the repro sink records
// the triage re-run and embeds a loadable Chrome trace-event document in
// the bundle, and the bundle still replays.
func TestCampaignEmbedPerfetto(t *testing.T) {
	b, err := benchprog.ByName("dekker")
	if err != nil {
		t.Fatal(err)
	}
	prog := b.Program(0)
	dir := t.TempDir()
	res := RunCampaign(prog, b.Detect, func() engine.Strategy { return core.NewPCTWM(2, 1, 10) },
		300, 1, b.Options(), Campaign{Workers: 2, ReproDir: dir, MaxRepros: 2, EmbedPerfetto: true})
	if len(res.Failures) == 0 {
		t.Skip("no failures captured in 300 rounds (seed drift); nothing to verify")
	}
	checked := 0
	for _, f := range res.Failures {
		if f.BundlePath == "" {
			continue
		}
		bundle, err := replay.LoadBundle(f.BundlePath)
		if err != nil {
			t.Fatal(err)
		}
		if len(bundle.Perfetto) == 0 {
			t.Fatalf("bundle %s has no embedded perfetto trace", f.BundlePath)
		}
		var doc struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(bundle.Perfetto, &doc); err != nil {
			t.Fatalf("embedded trace does not parse: %v", err)
		}
		if len(doc.TraceEvents) == 0 {
			t.Fatalf("embedded trace is empty")
		}
		if bundle.Triage == replay.TriageDeterministic {
			vr, err := bundle.Verify(prog)
			if err != nil {
				t.Fatal(err)
			}
			if !vr.Match {
				t.Fatalf("deterministic bundle did not replay: derails=%d diffs=%v", vr.Derails, vr.Diffs)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no bundle was written")
	}
}

// TestTrialResultRateGuards: the derived rates never divide by zero.
func TestTrialResultRateGuards(t *testing.T) {
	var zero TrialResult
	if got := zero.TrialsPerSec(); got != 0 {
		t.Fatalf("empty TrialsPerSec %v", got)
	}
	if got := zero.NsPerEvent(); got != 0 {
		t.Fatalf("empty NsPerEvent %v", got)
	}
	r := TrialResult{Runs: 10, Wall: 2 * time.Second}
	if got := r.TrialsPerSec(); got != 5 {
		t.Fatalf("TrialsPerSec %v, want 5", got)
	}
	r = TrialResult{TotalEvents: 1000, Elapsed: time.Millisecond}
	if got := r.NsPerEvent(); got != 1000 {
		t.Fatalf("NsPerEvent %v, want 1000", got)
	}
	// Degenerate: runs without wall time, events without elapsed time.
	r = TrialResult{Runs: 10}
	if got := r.TrialsPerSec(); got != 0 {
		t.Fatalf("wall-less TrialsPerSec %v", got)
	}
	r = TrialResult{TotalEvents: 10}
	if got := r.NsPerEvent(); got != 0 {
		t.Fatalf("elapsed-less NsPerEvent %v", got)
	}
}

// BenchmarkTrialLoopTelemetryOff/On measure the steady-state per-trial
// cost with and without an armed counter shard; the delta is the
// instrumentation overhead (ISSUE budget: within a few percent; the CI
// bench gate enforces the committed bound).
func BenchmarkTrialLoopTelemetryOff(b *testing.B) {
	benchTrialLoop(b, false)
}

func BenchmarkTrialLoopTelemetryOn(b *testing.B) {
	benchTrialLoop(b, true)
}

func benchTrialLoop(b *testing.B, telemetryOn bool) {
	bm, err := benchprog.ByName("dekker")
	if err != nil {
		b.Fatal(err)
	}
	prog := bm.Program(0)
	opts := bm.Options()
	if telemetryOn {
		opts.Telemetry = &telemetry.EngineCounters{}
	}
	r := engine.NewRunner(prog, opts)
	defer r.Close()
	strat := core.NewRandom()
	for i := 0; i < 20; i++ {
		r.Run(strat, int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(strat, int64(i))
	}
}
