package harness

import (
	"pctwm/internal/core"
	"pctwm/internal/distcheck"
	"pctwm/internal/engine"
	"pctwm/internal/litmus"
)

// DistCheckConfig parameterizes a strategy-conformance campaign. The
// zero value selects the CI defaults: PCT depth 3, PCTWM depth 2 with
// history 3, and distcheck's own run-count/seed/alpha defaults.
type DistCheckConfig struct {
	// Depth is PCT's d (default 3).
	Depth int
	// WMDepth is PCTWM's d (default 2).
	WMDepth int
	// History is PCTWM's h (default 3).
	History int
	// EstimateRuns profiles each program for k/kcom (default 32).
	EstimateRuns int
	// Check is passed through to distcheck.Run (zero fields take
	// distcheck defaults; Options applies to estimation as well).
	Check distcheck.Config
}

func (c DistCheckConfig) withDefaults() DistCheckConfig {
	if c.Depth == 0 {
		c.Depth = 3
	}
	if c.WMDepth == 0 {
		c.WMDepth = 2
	}
	if c.History == 0 {
		c.History = 3
	}
	if c.EstimateRuns == 0 {
		c.EstimateRuns = 32
	}
	return c
}

// DistCheckResult pairs the two halves of a conformance campaign: the
// shipped strategies must pass every check, and the preserved colliding
// fixtures must fail their permutation checks (proof the harness still
// detects the bug class it was built to catch).
type DistCheckResult struct {
	// Conformance holds the fixed strategies' checks; all must pass.
	Conformance *distcheck.Report `json:"conformance"`
	// Fixtures holds the colliding fixtures' permutation checks; all
	// must fail.
	Fixtures *distcheck.Report `json:"fixtures"`
	// Detected is true when every colliding fixture failed.
	Detected bool `json:"detected"`
	// Passed is Conformance.Passed && Detected.
	Passed bool `json:"passed"`
}

// DistCheckSuite is the default small-litmus conformance set: programs
// with handfuls of behaviors, exhaustively enumerable in milliseconds,
// and — for the bound check — with every behavior reachable through
// communication-event delays. Write-race programs like 2+2W do not
// qualify: their mixed-final-write behavior needs a preemption between
// plain writes, which PCTWM (faithfully to the paper) never introduces,
// so the per-behavior bound does not apply to it.
func DistCheckSuite() []*litmus.Test {
	return []*litmus.Test{
		litmus.SBRelaxed(),
		litmus.MPRelaxed(),
		litmus.LoadBuffering(),
		litmus.CoRR(),
		litmus.WRC(),
	}
}

// distCheckStrategies builds the shipped strategies, parameterized per
// program by the estimated k/kcom.
func distCheckStrategies(cfg DistCheckConfig) []distcheck.Strategy {
	d, wd, h := cfg.Depth, cfg.WMDepth, cfg.History
	return []distcheck.Strategy{
		{
			Name:    "c11tester",
			New:     func(distcheck.Params) engine.Strategy { return core.NewRandom() },
			Uniform: true,
		},
		{
			Name:  "pct",
			New:   func(p distcheck.Params) engine.Strategy { return core.NewPCT(d, p.Steps) },
			Bound: func(p distcheck.Params) float64 { return core.PCTBound(p.Threads, p.Steps, d) },
		},
		{
			Name:  "pctwm",
			New:   func(p distcheck.Params) engine.Strategy { return core.NewPCTWM(wd, h, p.Comm) },
			Bound: func(p distcheck.Params) float64 { return core.PCTWMBound(p.Comm, wd, h) },
		},
	}
}

// DistCheckCampaign runs the strategy-conformance suite over tests (nil
// selects DistCheckSuite), with each program's bound parameters profiled
// by EstimateParams, then re-runs the permutation check on the colliding
// regression fixtures to prove detection still works.
func DistCheckCampaign(tests []*litmus.Test, cfg DistCheckConfig) (*DistCheckResult, error) {
	cfg = cfg.withDefaults()
	if tests == nil {
		tests = DistCheckSuite()
	}
	programs := make([]distcheck.Program, 0, len(tests))
	for _, lt := range tests {
		est := EstimateParams(lt.Program, cfg.EstimateRuns, cfg.Check.Seed+1, cfg.Check.Options)
		programs = append(programs, distcheck.Program{
			Prog: lt.Program,
			Params: distcheck.Params{
				Threads: est.Threads,
				Steps:   est.K,
				Comm:    est.KCom,
			},
		})
	}
	conf, err := distcheck.Run(programs, distCheckStrategies(cfg), cfg.Check)
	if err != nil {
		return nil, err
	}
	fixtures := []distcheck.Strategy{
		{
			Name: "pct-colliding",
			New:  func(p distcheck.Params) engine.Strategy { return core.NewCollidingPCT(cfg.Depth, p.Steps) },
		},
		{
			Name: "pctwm-colliding",
			New: func(p distcheck.Params) engine.Strategy {
				return core.NewCollidingPCTWM(cfg.WMDepth, cfg.History, p.Comm)
			},
		},
	}
	fix, err := distcheck.Run(nil, fixtures, cfg.Check)
	if err != nil {
		return nil, err
	}
	detected := true
	for _, res := range fix.Results {
		if res.Pass {
			detected = false
		}
	}
	return &DistCheckResult{
		Conformance: conf,
		Fixtures:    fix,
		Detected:    detected,
		Passed:      conf.Passed && detected,
	}, nil
}
