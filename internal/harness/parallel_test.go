package harness

import (
	"testing"

	"pctwm/internal/benchprog"
	"pctwm/internal/core"
	"pctwm/internal/engine"
)

// TestParallelMatchesSerial: the parallel runner visits the same seeds and
// therefore produces identical hit counts.
func TestParallelMatchesSerial(t *testing.T) {
	b, err := benchprog.ByName("rwlock")
	if err != nil {
		t.Fatal(err)
	}
	prog := b.Program(0)
	opts := b.Options()
	newStrategy := func() engine.Strategy { return core.NewPCTWM(2, 1, 10) }

	serial := RunTrials(prog, b.Detect, newStrategy, 300, 7, opts)
	parallel := RunTrialsParallel(prog, b.Detect, newStrategy, 300, 7, opts, 4)
	if serial.Hits != parallel.Hits || serial.Runs != parallel.Runs {
		t.Fatalf("parallel %d/%d != serial %d/%d",
			parallel.Hits, parallel.Runs, serial.Hits, serial.Runs)
	}
	if serial.TotalEvents != parallel.TotalEvents {
		t.Fatalf("event totals differ: %d vs %d", parallel.TotalEvents, serial.TotalEvents)
	}
}

// TestParallelSingleWorkerFallback: degenerate worker counts fall back to
// the serial path.
func TestParallelSingleWorkerFallback(t *testing.T) {
	b, _ := benchprog.ByName("dekker")
	prog := b.Program(0)
	res := RunTrialsParallel(prog, b.Detect, func() engine.Strategy { return core.NewRandom() },
		10, 1, b.Options(), 1)
	if res.Runs != 10 {
		t.Fatalf("runs %d", res.Runs)
	}
}
