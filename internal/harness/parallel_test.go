package harness

import (
	"testing"

	"pctwm/internal/benchprog"
	"pctwm/internal/core"
	"pctwm/internal/engine"
)

// TestParallelMatchesSerial: the parallel runner visits the same seeds and
// therefore produces identical hit counts.
func TestParallelMatchesSerial(t *testing.T) {
	b, err := benchprog.ByName("rwlock")
	if err != nil {
		t.Fatal(err)
	}
	prog := b.Program(0)
	opts := b.Options()
	newStrategy := func() engine.Strategy { return core.NewPCTWM(2, 1, 10) }

	serial := RunTrials(prog, b.Detect, newStrategy, 300, 7, opts)
	parallel := RunTrialsParallel(prog, b.Detect, newStrategy, 300, 7, opts, 4)
	if serial.Hits != parallel.Hits || serial.Runs != parallel.Runs {
		t.Fatalf("parallel %d/%d != serial %d/%d",
			parallel.Hits, parallel.Runs, serial.Hits, serial.Runs)
	}
	if serial.TotalEvents != parallel.TotalEvents {
		t.Fatalf("event totals differ: %d vs %d", parallel.TotalEvents, serial.TotalEvents)
	}
}

// TestParallelSingleWorkerFallback: degenerate worker counts fall back to
// the serial path.
func TestParallelSingleWorkerFallback(t *testing.T) {
	b, _ := benchprog.ByName("dekker")
	prog := b.Program(0)
	res := RunTrialsParallel(prog, b.Detect, func() engine.Strategy { return core.NewRandom() },
		10, 1, b.Options(), 1)
	if res.Runs != 10 {
		t.Fatalf("runs %d", res.Runs)
	}
}

// TestPooledWorkerCountsAgree: every worker count visits the same seeds,
// so the aggregate counters are identical; this test doubles as the
// `go test -race` exercise of the streaming pool on two structurally
// different benchmark programs.
func TestPooledWorkerCountsAgree(t *testing.T) {
	for _, name := range []string{"rwlock", "msqueue"} {
		t.Run(name, func(t *testing.T) {
			b, err := benchprog.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			prog := b.Program(0)
			opts := b.Options()
			newStrategy := func() engine.Strategy { return core.NewPCTWM(2, 1, 25) }

			ref := RunTrialsPooled(prog, b.Detect, newStrategy, 120, 11, opts, 1)
			for _, workers := range []int{2, 3, 8, 0} {
				got := RunTrialsPooled(prog, b.Detect, newStrategy, 120, 11, opts, workers)
				if got.Hits != ref.Hits || got.TotalEvents != ref.TotalEvents ||
					got.Aborted != ref.Aborted || got.Deadlock != ref.Deadlock {
					t.Fatalf("workers=%d diverges from serial: %+v vs %+v", workers, got, ref)
				}
			}
		})
	}
}

// TestTrialResultWall: Wall measures the batch, Elapsed sums per-run time.
func TestTrialResultWall(t *testing.T) {
	b, _ := benchprog.ByName("dekker")
	prog := b.Program(0)
	res := RunTrials(prog, b.Detect, func() engine.Strategy { return core.NewRandom() },
		50, 1, b.Options())
	if res.Wall <= 0 {
		t.Fatalf("wall time not measured: %+v", res)
	}
	if res.Elapsed <= 0 {
		t.Fatalf("per-run time not summed: %+v", res)
	}
	if res.Wall < res.Elapsed/2 {
		t.Fatalf("serial wall %v implausibly below summed run time %v", res.Wall, res.Elapsed)
	}
}
