package harness

import (
	"math"
	"testing"

	"pctwm/internal/benchprog"
	"pctwm/internal/core"
)

func snap(bench, strat string, nsPerEvent float64) EngineSnapshot {
	return EngineSnapshot{Benchmark: bench, Strategy: strat, NsPerEvent: nsPerEvent}
}

// TestCompareSnapshots: deltas are matched by (benchmark, strategy),
// reported in baseline order, and unmatched or degenerate cells are
// skipped.
func TestCompareSnapshots(t *testing.T) {
	old := []EngineSnapshot{
		snap("dekker", "c11tester", 200),
		snap("dekker", "pctwm", 100),
		snap("seqlock", "pctwm", 150),   // missing from the fresh snapshot
		snap("msqueue", "c11tester", 0), // degenerate: no events measured
	}
	fresh := []EngineSnapshot{
		snap("dekker", "pctwm", 130),      // +30% — a regression at 15%
		snap("dekker", "c11tester", 190),  // -5% — an improvement
		snap("msqueue", "c11tester", 250), // unmatched (baseline degenerate)
		snap("barrier", "pctwm", 99),      // not in the baseline
	}

	deltas := CompareSnapshots(old, fresh)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2: %+v", len(deltas), deltas)
	}
	if deltas[0].Benchmark != "dekker" || deltas[0].Strategy != "c11tester" {
		t.Errorf("deltas not in baseline order: %+v", deltas)
	}
	if math.Abs(deltas[0].DeltaPercent - -5) > 1e-9 {
		t.Errorf("c11tester delta = %v, want -5", deltas[0].DeltaPercent)
	}
	if math.Abs(deltas[1].DeltaPercent-30) > 1e-9 {
		t.Errorf("pctwm delta = %v, want +30", deltas[1].DeltaPercent)
	}
	if deltas[0].Regressed(15) {
		t.Errorf("improvement flagged as regression: %+v", deltas[0])
	}
	if !deltas[1].Regressed(15) {
		t.Errorf("+30%% not flagged as regression at 15%%: %+v", deltas[1])
	}
	if deltas[1].Regressed(40) {
		t.Errorf("+30%% flagged as regression at 40%%: %+v", deltas[1])
	}
}

// TestMeasureEngineShape: a tiny measurement produces internally
// consistent, positive metrics.
func TestMeasureEngineShape(t *testing.T) {
	b, err := benchprog.ByName("dekker")
	if err != nil {
		t.Fatal(err)
	}
	s := MeasureEngine(b.Name, b.Program(0), core.NewRandom(), 50, 1, b.Options())
	if s.Benchmark != "dekker" || s.Strategy == "" {
		t.Fatalf("bad identity: %+v", s)
	}
	if s.NsPerRun <= 0 || s.NsPerEvent <= 0 || s.RunsPerSec <= 0 {
		t.Fatalf("non-positive metrics: %+v", s)
	}
	if s.NsPerEvent >= s.NsPerRun {
		t.Fatalf("per-event cost %v not below per-run cost %v", s.NsPerEvent, s.NsPerRun)
	}
}
