package harness

import (
	"math"
	"testing"

	"pctwm/internal/benchprog"
	"pctwm/internal/core"
)

func snap(bench, strat string, nsPerEvent float64) EngineSnapshot {
	return EngineSnapshot{Benchmark: bench, Strategy: strat, NsPerEvent: nsPerEvent}
}

// TestCompareSnapshots: deltas are matched by (benchmark, strategy),
// reported in baseline order, and unmatched or degenerate cells are
// skipped.
func TestCompareSnapshots(t *testing.T) {
	old := []EngineSnapshot{
		snap("dekker", "c11tester", 200),
		snap("dekker", "pctwm", 100),
		snap("seqlock", "pctwm", 150),   // missing from the fresh snapshot
		snap("msqueue", "c11tester", 0), // degenerate: no events measured
	}
	fresh := []EngineSnapshot{
		snap("dekker", "pctwm", 130),      // +30% — a regression at 15%
		snap("dekker", "c11tester", 190),  // -5% — an improvement
		snap("msqueue", "c11tester", 250), // unmatched (baseline degenerate)
		snap("barrier", "pctwm", 99),      // not in the baseline
	}

	deltas := CompareSnapshots(old, fresh)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2: %+v", len(deltas), deltas)
	}
	if deltas[0].Benchmark != "dekker" || deltas[0].Strategy != "c11tester" {
		t.Errorf("deltas not in baseline order: %+v", deltas)
	}
	if math.Abs(deltas[0].DeltaPercent - -5) > 1e-9 {
		t.Errorf("c11tester delta = %v, want -5", deltas[0].DeltaPercent)
	}
	if math.Abs(deltas[1].DeltaPercent-30) > 1e-9 {
		t.Errorf("pctwm delta = %v, want +30", deltas[1].DeltaPercent)
	}
	if deltas[0].Regressed(15) {
		t.Errorf("improvement flagged as regression: %+v", deltas[0])
	}
	if !deltas[1].Regressed(15) {
		t.Errorf("+30%% not flagged as regression at 15%%: %+v", deltas[1])
	}
	if deltas[1].Regressed(40) {
		t.Errorf("+30%% flagged as regression at 40%%: %+v", deltas[1])
	}
}

// TestSnapshotGaps: one-sided cells are reported by name — a baseline
// missing a cell the candidate has (e.g. an old BENCH_engine.json
// without explore cells) is named instead of silently skipped.
func TestSnapshotGaps(t *testing.T) {
	old := []EngineSnapshot{
		snap("dekker", "c11tester", 200),
		snap("seqlock", "pctwm", 150),
		snap("seqlock", "pctwm", 150), // duplicate cell: reported once
	}
	fresh := []EngineSnapshot{
		snap("dekker", "c11tester", 190),
		snap("explore-litmus", "serial", 99),
		snap("explore-litmus", "workers-8", 60),
	}
	missingFromOld, missingFromNew := SnapshotGaps(old, fresh)
	wantOld := []string{"explore-litmus/serial", "explore-litmus/workers-8"}
	wantNew := []string{"seqlock/pctwm"}
	if len(missingFromOld) != len(wantOld) || missingFromOld[0] != wantOld[0] || missingFromOld[1] != wantOld[1] {
		t.Errorf("missingFromOld = %v, want %v", missingFromOld, wantOld)
	}
	if len(missingFromNew) != 1 || missingFromNew[0] != wantNew[0] {
		t.Errorf("missingFromNew = %v, want %v", missingFromNew, wantNew)
	}
	if a, b := SnapshotGaps(fresh, fresh); a != nil || b != nil {
		t.Errorf("identical snapshots report gaps: %v %v", a, b)
	}
}

func snapAllocs(bench, strat string, nsPerEvent, allocs float64) EngineSnapshot {
	s := snap(bench, strat, nsPerEvent)
	s.AllocsPerRun = allocs
	return s
}

// TestCompareSnapshotsAllocs: the allocation gate fires on a real
// regression, tolerates sub-slack jitter on tiny counts, and never
// fires against a baseline without allocation data.
func TestCompareSnapshotsAllocs(t *testing.T) {
	old := []EngineSnapshot{
		snapAllocs("dekker", "pctwm", 100, 20),
		snapAllocs("msqueue", "pctwm", 100, 2),
		snapAllocs("seqlock", "pctwm", 100, 0), // pre-allocs baseline
	}
	fresh := []EngineSnapshot{
		snapAllocs("dekker", "pctwm", 100, 30),   // +50%, +10 abs: regression
		snapAllocs("msqueue", "pctwm", 100, 2.4), // +20% but only +0.4 abs: jitter
		snapAllocs("seqlock", "pctwm", 100, 7),   // old side empty: no gate
	}
	deltas := CompareSnapshots(old, fresh)
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3: %+v", len(deltas), deltas)
	}
	if !deltas[0].AllocsRegressed(25) {
		t.Errorf("+50%%/+10 allocs not flagged: %+v", deltas[0])
	}
	if deltas[0].AllocsRegressed(60) {
		t.Errorf("+50%% flagged at a 60%% gate: %+v", deltas[0])
	}
	if deltas[0].Regressed(15) {
		t.Errorf("allocs regression leaked into the ns_per_event gate: %+v", deltas[0])
	}
	if deltas[1].AllocsRegressed(10) {
		t.Errorf("sub-slack jitter (+0.4 allocs) flagged: %+v", deltas[1])
	}
	if deltas[1].AllocsDeltaPercent < 19 || deltas[1].AllocsDeltaPercent > 21 {
		t.Errorf("allocs delta = %v, want ~20", deltas[1].AllocsDeltaPercent)
	}
	if deltas[2].AllocsRegressed(0) {
		t.Errorf("empty baseline flagged: %+v", deltas[2])
	}
}

// TestMeasureEngineShape: a tiny measurement produces internally
// consistent, positive metrics.
func TestMeasureEngineShape(t *testing.T) {
	b, err := benchprog.ByName("dekker")
	if err != nil {
		t.Fatal(err)
	}
	s := MeasureEngine(b.Name, b.Program(0), core.NewRandom(), 50, 1, b.Options())
	if s.Benchmark != "dekker" || s.Strategy == "" {
		t.Fatalf("bad identity: %+v", s)
	}
	if s.NsPerRun <= 0 || s.NsPerEvent <= 0 || s.RunsPerSec <= 0 {
		t.Fatalf("non-positive metrics: %+v", s)
	}
	if s.NsPerEvent >= s.NsPerRun {
		t.Fatalf("per-event cost %v not below per-run cost %v", s.NsPerEvent, s.NsPerRun)
	}
}
