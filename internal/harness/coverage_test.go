package harness

import (
	"fmt"
	"path/filepath"
	"reflect"
	"slices"
	"testing"

	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/enumerate"
	"pctwm/internal/litmus"
	"pctwm/internal/replay"
)

// noDetect is the detector for pure coverage campaigns: nothing is a bug.
func noDetect(*engine.Outcome) bool { return false }

// TestCoverageCensusEquality is the soundness cross-validation: on every
// litmus test whose behavior space the exhaustive explorer can census
// completely, a saturated random campaign's fingerprint set must equal
// the census exactly — under every memory-model backend. A behavior
// outside the census would mean the fingerprinting (or the enumeration)
// is unsound; the campaign side is given geometrically more trials until
// it saturates.
func TestCoverageCensusEquality(t *testing.T) {
	for _, model := range engine.Models() {
		for _, lt := range litmus.Suite() {
			lt := lt
			t.Run(model+"/"+lt.Name, func(t *testing.T) {
				opts := engine.Options{Model: model}
				census, err := enumerate.BehaviorCensus(lt.Program, opts,
					enumerate.Config{Limit: 500_000})
				if err != nil {
					t.Fatal(err)
				}
				if !census.Complete {
					t.Skipf("state space too large (%d runs)", census.Runs)
				}
				want := census.Fingerprints()
				newStrategy := func() engine.Strategy { return core.NewRandom() }
				var got []uint64
				for runs := 512; runs <= 32768; runs *= 4 {
					res := RunCampaign(lt.Program, noDetect, newStrategy, runs, 7, opts,
						Campaign{Workers: 4, Coverage: true})
					got = res.Coverage.Fingerprints()
					for _, fp := range got {
						if !slices.Contains(want, fp) {
							t.Fatalf("campaign behavior %#x is outside the complete census (%d behaviors)", fp, len(want))
						}
					}
					if slices.Equal(got, want) {
						return
					}
				}
				t.Fatalf("campaign did not saturate: %d of %d census behaviors after 32768 trials",
					len(got), len(want))
			})
		}
	}
}

// TestCoverageWorkerDeterminism: the merged coverage set — entries,
// first-seen trial indices, counts, depth attributions, and every
// derived statistic — is bit-identical at any worker count.
func TestCoverageWorkerDeterminism(t *testing.T) {
	b := mustBench(t, "dekker")
	prog := b.Program(0)
	opts := b.Options()
	newStrategy := func() engine.Strategy { return core.NewPCTWM(2, 1, 10) }

	ref := RunCampaign(prog, b.Detect, newStrategy, 400, 9, opts,
		Campaign{Workers: 1, Coverage: true})
	if ref.Coverage == nil || ref.Coverage.Len() == 0 {
		t.Fatalf("serial campaign produced no coverage: %+v", ref)
	}
	if ref.Coverage.Observations() > uint64(ref.Runs) {
		t.Fatalf("more observations (%d) than trials (%d)", ref.Coverage.Observations(), ref.Runs)
	}
	for _, workers := range []int{2, 8, 0} {
		got := RunCampaign(prog, b.Detect, newStrategy, 400, 9, opts,
			Campaign{Workers: workers, Coverage: true})
		if !got.Coverage.Equal(ref.Coverage) {
			t.Fatalf("workers=%d coverage set diverges from serial:\n got %+v\nwant %+v",
				workers, got.Coverage.Entries(), ref.Coverage.Entries())
		}
		if !reflect.DeepEqual(got.Coverage.Stats(), ref.Coverage.Stats()) {
			t.Fatalf("workers=%d coverage stats diverge", workers)
		}
	}
}

// TestCoverageKillResumeDeterminism: a campaign killed between
// checkpoint generations and resumed finishes with a coverage set (and
// estimators) bit-identical to an uninterrupted run's — first-seen trial
// indices survive the process boundary because they are campaign-global.
func TestCoverageKillResumeDeterminism(t *testing.T) {
	b := mustBench(t, "dekker")
	prog := b.Program(0)
	const (
		runs  = 600
		every = 100
		seed  = 42
	)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			opts := b.Options()
			newStrategy := func() engine.Strategy { return C11Tester()(Estimate{}) }

			ref := RunCampaign(prog, b.Detect, newStrategy, runs, seed, opts,
				Campaign{Workers: workers, Coverage: true})
			if ref.Coverage == nil || ref.Coverage.Len() == 0 {
				t.Fatalf("reference campaign produced no coverage")
			}

			dir := t.TempDir()
			spec := &CheckpointSpec{Dir: filepath.Join(dir, "ckpt"), Every: every, killAfterChunks: 2}
			camp := Campaign{Workers: workers, Coverage: true,
				Checkpoint: spec, CheckpointCell: "coverage-kill-resume"}
			killed := RunCampaign(prog, b.Detect, newStrategy, runs, seed, opts, camp)
			if !killed.Interrupted || killed.Runs != 2*every {
				t.Fatalf("killAfterChunks did not interrupt at trial %d: %+v", 2*every, killed)
			}

			respec := &CheckpointSpec{Dir: filepath.Join(dir, "ckpt"), Every: every, Resume: true}
			recamp := camp
			recamp.Checkpoint = respec
			resumed := RunCampaign(prog, b.Detect, newStrategy, runs, seed, opts, recamp)
			if resumed.ResumedRuns != 2*every {
				t.Fatalf("ResumedRuns = %d, want %d", resumed.ResumedRuns, 2*every)
			}
			if !resumed.Coverage.Equal(ref.Coverage) {
				t.Fatalf("resumed coverage set diverges from uninterrupted:\n got %+v\nwant %+v",
					resumed.Coverage.Entries(), ref.Coverage.Entries())
			}
			if !reflect.DeepEqual(resumed.Coverage.Stats(), ref.Coverage.Stats()) {
				t.Fatalf("resumed coverage stats diverge:\n got %+v\nwant %+v",
					resumed.Coverage.Stats(), ref.Coverage.Stats())
			}

			// Resuming the complete campaign restores the set from the
			// checkpoint without running anything.
			again := RunCampaign(prog, b.Detect, newStrategy, runs, seed, opts, recamp)
			if again.ResumedRuns != runs || !again.Coverage.Equal(ref.Coverage) {
				t.Fatalf("stored coverage set diverges after full resume")
			}
		})
	}
}

// TestCoverageReproDedupe: with coverage on, the repro budget is keyed
// by behavior fingerprint — a campaign whose failures repeat the same
// behavior captures each distinct behavior once instead of burning the
// budget on duplicates.
func TestCoverageReproDedupe(t *testing.T) {
	b := mustBench(t, "dekker")
	prog := b.Program(0)
	newStrategy := func() engine.Strategy { return core.NewPCTWM(2, 1, 10) }

	dir := t.TempDir()
	res := RunCampaign(prog, b.Detect, newStrategy, 400, 9, b.Options(),
		Campaign{Workers: 1, Coverage: true, ReproDir: dir, MaxRepros: 400})
	if res.Hits == 0 || len(res.Failures) == 0 {
		t.Fatalf("campaign found nothing to capture: %+v", res)
	}
	if len(res.Failures) >= res.Hits {
		t.Fatalf("dedupe captured %d bundles for %d hits — expected fewer bundles than hits",
			len(res.Failures), res.Hits)
	}
	seen := map[uint64]bool{}
	for _, f := range res.Failures {
		if f.BehaviorFP == 0 {
			t.Fatalf("failure captured without a behavior fingerprint: %+v", f)
		}
		if seen[f.BehaviorFP] {
			t.Fatalf("behavior %#x captured twice: %+v", f.BehaviorFP, res.Failures)
		}
		seen[f.BehaviorFP] = true
		bun, err := replay.LoadBundle(f.BundlePath)
		if err != nil {
			t.Fatal(err)
		}
		if bun.BehaviorFP != f.BehaviorFP {
			t.Fatalf("bundle records behavior %#x, campaign %#x", bun.BehaviorFP, f.BehaviorFP)
		}
	}
}

// TestCoverageZeroAlloc: arming Options.Coverage adds zero allocations
// to the steady-state trial loop — the accumulator's scratch is owned by
// the Runner and reused across runs.
func TestCoverageZeroAlloc(t *testing.T) {
	b := mustBench(t, "dekker")
	prog := b.Program(0)

	measure := func(cov bool) float64 {
		opts := b.Options()
		opts.Coverage = cov
		r := engine.NewRunner(prog, opts)
		defer r.Close()
		strat := core.NewRandom()
		for i := 0; i < 20; i++ {
			r.Run(strat, int64(i))
		}
		seed := int64(0)
		return testing.AllocsPerRun(300, func() {
			r.Run(strat, seed)
			seed++
		})
	}

	off := measure(false)
	on := measure(true)
	if delta := on - off; delta > 0.5 {
		t.Fatalf("coverage adds %.2f allocs/run (off %.2f, on %.2f), want 0", delta, off, on)
	}
}
