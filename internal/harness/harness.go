// Package harness runs repeated randomized test trials, estimates the
// PCT/PCTWM input parameters (the program event count k and communication
// event count kcom), and aggregates hit rates and timing — the machinery
// behind the paper's evaluation (§6).
//
// Trial loops are built on engine.Runner: every worker owns one pooled
// Runner and one strategy value (Strategy.Begin resets per run), so a
// steady-state loop performs near-zero allocations per trial.
package harness

import (
	"fmt"
	"math"
	"time"

	"pctwm/internal/benchprog"
	"pctwm/internal/core"
	"pctwm/internal/coverage"
	"pctwm/internal/engine"
	"pctwm/internal/stats"
	"pctwm/internal/telemetry"
)

// Estimate holds measured program parameters, obtained like the paper by
// profiling runs: k is the estimated number of shared-memory events, kcom
// the estimated number of communication events (Table 1).
type Estimate struct {
	K    int
	KCom int
	// Threads is the number of root threads.
	Threads int
}

// EstimateParams profiles prog with the naive random strategy and returns
// the mean observed event counts, rounded to nearest. The mean (rather
// than the maximum) keeps the sampled change points and communication
// indices within the range of events an execution actually encounters.
func EstimateParams(prog *engine.Program, runs int, seed int64, opts engine.Options) Estimate {
	est := Estimate{Threads: prog.NumThreads()}
	if runs < 1 {
		runs = 1
	}
	r := engine.NewRunner(prog, opts)
	defer r.Close()
	strat := core.NewRandom()
	var sumK, sumKCom int
	for i := 0; i < runs; i++ {
		o := r.Run(strat, seed+int64(i))
		sumK += o.Events
		sumKCom += o.CommEvents
	}
	est.K = (sumK + runs/2) / runs
	est.KCom = (sumKCom + runs/2) / runs
	if est.K < 1 {
		est.K = 1
	}
	if est.KCom < 1 {
		est.KCom = 1
	}
	return est
}

// TrialResult aggregates a batch of runs.
type TrialResult struct {
	Runs     int
	Hits     int
	Aborted  int
	Deadlock int
	// Panics counts trials whose panic escaped the engine (a strategy or
	// harness bug): the worker recovered, quarantined its Runner, and kept
	// going (see RunCampaign).
	Panics int
	// Timeouts counts trials aborted by the per-trial wall-clock watchdog
	// (engine.Options.MaxWallTime).
	Timeouts int
	// Canceled counts trials aborted mid-run by campaign cancellation.
	Canceled int
	// TotalEvents across all runs, for averages.
	TotalEvents int
	// Elapsed is the summed per-run execution time. With parallel workers
	// this is aggregate CPU time across all workers, not wall-clock time;
	// use Wall for the batch's real duration.
	Elapsed time.Duration
	// Wall is the wall-clock duration of the whole batch (equal to Elapsed
	// up to loop overhead when the batch ran serially).
	Wall time.Duration
	// Interrupted marks a campaign stopped early by context cancellation:
	// Runs reflects completed trials only.
	Interrupted bool
	// Stuck marks a campaign aborted by the stuck-worker watchdog
	// (Campaign.StuckTimeout); StuckDiag carries the diagnostics (wedged
	// workers + goroutine dump). The counts cover finished workers only.
	Stuck     bool
	StuckDiag string
	// Failures lists the captured failing trials with their flake-triage
	// verdicts and repro-bundle paths (populated only when
	// Campaign.ReproDir is set; at most Campaign.MaxRepros entries).
	Failures []TrialFailure
	// Nondeterministic counts captured failures whose triage re-run
	// diverged from the original outcome for the same (program, strategy,
	// seed) — an engine or strategy determinism bug.
	Nondeterministic int
	// Telemetry holds the merged per-worker engine counters when the
	// campaign collected them (Campaign.Telemetry or a caller-provided
	// engine.Options.Telemetry); nil otherwise. Totals are bit-identical
	// between serial and parallel campaigns over the same seed set.
	Telemetry *telemetry.EngineCounters
	// Coverage is the campaign's merged behavior set (Campaign.Coverage):
	// every complete trial's fingerprint with first-seen trial indices,
	// counts and change-point-depth attribution. Like Telemetry it is
	// bit-identical for every worker count and across kill/resume
	// (entries key novelty by the campaign-global trial index).
	Coverage *coverage.Set
	// ResumedRuns is how many of Runs were restored from a checkpoint
	// rather than executed by this process (0 for fresh campaigns).
	ResumedRuns int
	// Durability is "" for a fully durable campaign and
	// DurabilityDegraded when the checkpoint directory became unwritable
	// mid-campaign: the campaign kept running, but its state and repro
	// bundles may not all have reached disk.
	Durability string
}

// DurabilityDegraded marks a campaign whose durable sinks failed
// persistently (see Campaign.Checkpoint / CheckpointSpec.Degraded).
const DurabilityDegraded = "degraded"

// Rate returns the bug hitting rate in percent (the paper's metric).
// Zero-guarded: an empty batch rates 0, never NaN (which would poison
// JSON encoding downstream).
func (r TrialResult) Rate() float64 {
	if r.Runs == 0 {
		return 0
	}
	return 100 * float64(r.Hits) / float64(r.Runs)
}

// TrialsPerSec returns the batch completion rate against wall-clock
// time. Zero-guarded: zero-trial or zero-duration batches (interrupted
// campaigns, sub-resolution timers) rate 0, never NaN/Inf.
func (r TrialResult) TrialsPerSec() float64 {
	if r.Runs == 0 || r.Wall <= 0 {
		return 0
	}
	return float64(r.Runs) / r.Wall.Seconds()
}

// NsPerEvent returns the mean execution cost per memory event in
// nanoseconds, zero-guarded like Rate and TrialsPerSec.
func (r TrialResult) NsPerEvent() float64 {
	if r.TotalEvents == 0 || r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Elapsed.Nanoseconds()) / float64(r.TotalEvents)
}

// CI95 returns the 95%% Wilson confidence interval of the hit rate, in
// percent.
func (r TrialResult) CI95() (low, high float64) {
	return stats.Wilson95(r.Hits, r.Runs)
}

// AvgEvents returns the mean number of memory events per run.
func (r TrialResult) AvgEvents() float64 {
	if r.Runs == 0 {
		return 0
	}
	return float64(r.TotalEvents) / float64(r.Runs)
}

// AvgTime returns the mean execution (CPU) time per run. This is a per-run
// cost metric; it does not shrink when the batch runs on more workers.
func (r TrialResult) AvgTime() time.Duration {
	if r.Runs == 0 {
		return 0
	}
	return r.Elapsed / time.Duration(r.Runs)
}

func (r TrialResult) String() string {
	s := fmt.Sprintf("hits %d/%d (%.1f%%), avg %.0f events, %v cpu/run, %v wall",
		r.Hits, r.Runs, r.Rate(), r.AvgEvents(),
		r.AvgTime().Round(time.Microsecond), r.Wall.Round(time.Millisecond))
	if r.Panics > 0 {
		s += fmt.Sprintf(", %d panic(s)", r.Panics)
	}
	if r.Timeouts > 0 {
		s += fmt.Sprintf(", %d timeout(s)", r.Timeouts)
	}
	if r.Nondeterministic > 0 {
		s += fmt.Sprintf(", %d NONDETERMINISTIC", r.Nondeterministic)
	}
	if r.Coverage != nil {
		s += fmt.Sprintf(", %d behavior(s)", r.Coverage.Len())
	}
	if r.ResumedRuns > 0 {
		s += fmt.Sprintf(", %d resumed", r.ResumedRuns)
	}
	if r.Durability == DurabilityDegraded {
		s += ", durability DEGRADED"
	}
	if r.Stuck {
		s += ", STUCK"
	} else if r.Interrupted {
		s += ", interrupted"
	}
	return s
}

// RunTrials executes prog for runs rounds on one pooled Runner, counting
// rounds whose outcome detect() flags as a bug hit. newStrategy is invoked
// once; the returned strategy is reset by its Begin on every round (the
// engine.Strategy contract). Round i runs with seed+i, so results are
// reproducible and identical to RunTrialsPooled with any worker count.
func RunTrials(prog *engine.Program, detect func(*engine.Outcome) bool,
	newStrategy func() engine.Strategy, runs int, seed int64, opts engine.Options) TrialResult {
	return RunTrialsPooled(prog, detect, newStrategy, runs, seed, opts, 1)
}

// StrategyFactory builds a fresh strategy per run from the measured
// program parameters.
type StrategyFactory func(est Estimate) engine.Strategy

// C11Tester is the naive-random baseline factory.
func C11Tester() StrategyFactory {
	return func(Estimate) engine.Strategy { return core.NewRandom() }
}

// POSFactory builds the partial-order-sampling baseline (related work,
// paper §7).
func POSFactory() StrategyFactory {
	return func(Estimate) engine.Strategy { return core.NewPOS() }
}

// PCTFactory builds the PCT variant with bug depth d; k comes from the
// estimate.
func PCTFactory(d int) StrategyFactory {
	return func(est Estimate) engine.Strategy { return core.NewPCT(d, est.K) }
}

// PCTWMFactory builds PCTWM with bug depth d and history depth h; kcom
// comes from the estimate.
func PCTWMFactory(d, h int) StrategyFactory {
	return func(est Estimate) engine.Strategy { return core.NewPCTWM(d, h, est.KCom) }
}

// BenchTrials profiles the benchmark, then runs trials with the factory
// spread over the given number of workers (0 = GOMAXPROCS, 1 = serial).
func BenchTrials(b *benchprog.Benchmark, factory StrategyFactory, runs int, seed int64, extraWrites, workers int) (TrialResult, Estimate) {
	return BenchTrialsCampaign(b, factory, runs, seed, extraWrites, Campaign{Workers: workers})
}

// BenchTrialsCampaign is BenchTrials with the full campaign resilience
// layer (cancellation, repro bundles, watchdogs). The parameter estimate
// runs before the trials and is not subject to the campaign context.
func BenchTrialsCampaign(b *benchprog.Benchmark, factory StrategyFactory, runs int, seed int64, extraWrites int, camp Campaign) (TrialResult, Estimate) {
	prog := b.Program(extraWrites)
	opts := b.Options()
	if camp.Model != "" {
		opts.Model = camp.Model
	}
	est := EstimateParams(prog, 20, seed^0x5eed, opts)
	res := RunCampaign(prog, b.Detect, func() engine.Strategy { return factory(est) }, runs, seed, opts, camp)
	return res, est
}

// BestOverH runs PCTWM for h = 1..maxH and returns the best rate together
// with the h that achieved it (Table 2 reports "Rate (h:x)").
func BestOverH(b *benchprog.Benchmark, d, maxH, runs int, seed int64, workers int) (TrialResult, int) {
	return BestOverHCampaign(b, d, maxH, runs, seed, Campaign{Workers: workers})
}

// BestOverHCampaign is BestOverH under a campaign: each h-sweep row runs
// with the campaign's resilience knobs, and the sweep stops early (returning
// the best row so far) when the campaign context is canceled.
func BestOverHCampaign(b *benchprog.Benchmark, d, maxH, runs int, seed int64, camp Campaign) (TrialResult, int) {
	var best TrialResult
	bestH := 1
	for h := 1; h <= maxH; h++ {
		if camp.Context != nil && camp.Context.Err() != nil {
			best.Interrupted = true
			break
		}
		res, _ := BenchTrialsCampaign(b, PCTWMFactory(d, h), runs, seed+int64(1000*h), 0, camp)
		if res.Rate() > best.Rate() || (h == 1 && best.Runs == 0) {
			best, bestH = res, h
		}
		if res.Interrupted || res.Stuck {
			best.Interrupted = best.Interrupted || res.Interrupted
			best.Stuck = best.Stuck || res.Stuck
			break
		}
	}
	return best, bestH
}

// RSD returns the relative standard deviation (percent) of the samples,
// as reported in Table 4.
func RSD(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range samples {
		sum += s
	}
	mean := sum / float64(len(samples))
	if mean == 0 {
		return 0
	}
	var sq float64
	for _, s := range samples {
		sq += (s - mean) * (s - mean)
	}
	sd := math.Sqrt(sq / float64(len(samples)))
	return 100 * sd / mean
}
