package harness

import (
	"math"
	"testing"

	"pctwm/internal/benchprog"
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

func simpleProgram() *engine.Program {
	p := engine.NewProgram("simple")
	x := p.Loc("X", 0)
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 1, memmodel.Relaxed)
	})
	p.AddThread(func(t *engine.Thread) {
		v := t.Load(x, memmodel.Relaxed)
		t.Assert(v == 0, "observed the write")
	})
	return p
}

func TestEstimateParams(t *testing.T) {
	p := simpleProgram()
	est := EstimateParams(p, 10, 1, engine.Options{})
	if est.K < 2 || est.KCom < 1 || est.Threads != 2 {
		t.Fatalf("estimate %+v", est)
	}
}

func TestRunTrialsCountsHits(t *testing.T) {
	p := simpleProgram()
	res := RunTrials(p, func(o *engine.Outcome) bool { return o.BugHit },
		func() engine.Strategy { return C11Tester()(Estimate{}) }, 200, 3, engine.Options{})
	if res.Runs != 200 {
		t.Fatalf("runs %d", res.Runs)
	}
	// The assert fires whenever the read observes the write: both
	// outcomes must occur under random testing.
	if res.Hits == 0 || res.Hits == res.Runs {
		t.Fatalf("degenerate hit count %d/%d", res.Hits, res.Runs)
	}
	if res.AvgEvents() <= 0 || res.AvgTime() <= 0 {
		t.Fatalf("averages broken: %s", res.String())
	}
}

func TestRate(t *testing.T) {
	r := TrialResult{Runs: 200, Hits: 50}
	if r.Rate() != 25 {
		t.Fatalf("rate %v", r.Rate())
	}
	if (TrialResult{}).Rate() != 0 {
		t.Fatal("zero-runs rate")
	}
}

func TestRSD(t *testing.T) {
	if got := RSD([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("constant samples RSD %v", got)
	}
	got := RSD([]float64{4, 6})
	if math.Abs(got-20) > 1e-9 { // sd=1, mean=5 → 20%
		t.Fatalf("RSD = %v, want 20", got)
	}
	if RSD(nil) != 0 || RSD([]float64{0, 0}) != 0 {
		t.Fatal("degenerate RSD")
	}
}

func TestFactories(t *testing.T) {
	est := Estimate{K: 30, KCom: 12}
	if s := C11Tester()(est); s.Name() != "c11tester" {
		t.Fatalf("factory name %q", s.Name())
	}
	if s := PCTFactory(2)(est); s.Name() != "pct" {
		t.Fatalf("factory name %q", s.Name())
	}
	if s := PCTWMFactory(2, 3)(est); s.Name() != "pctwm" {
		t.Fatalf("factory name %q", s.Name())
	}
}

func TestBestOverH(t *testing.T) {
	b, err := benchprog.ByName("dekker")
	if err != nil {
		t.Fatal(err)
	}
	res, h := BestOverH(b, b.Depth, 2, 60, 5, 1)
	if h < 1 || h > 2 {
		t.Fatalf("best h out of range: %d", h)
	}
	if res.Rate() < 99 {
		t.Fatalf("dekker at d=0 should hit ~always, got %.1f%%", res.Rate())
	}
}

func TestPOSFactory(t *testing.T) {
	if s := POSFactory()(Estimate{}); s.Name() != "pos" {
		t.Fatalf("factory name %q", s.Name())
	}
}

func TestCI95(t *testing.T) {
	r := TrialResult{Runs: 100, Hits: 50}
	lo, hi := r.CI95()
	if lo >= 50 || hi <= 50 {
		t.Fatalf("CI [%v, %v] should bracket 50", lo, hi)
	}
}
