package harness

import (
	"testing"

	"pctwm/internal/distcheck"
	"pctwm/internal/litmus"
)

// distCheckFastConfig shrinks the campaign for single-program tests;
// the statistical margins stay comfortable at these sizes.
func distCheckFastConfig() distcheck.Config {
	return distcheck.Config{Runs: 2000, PermRounds: 3000}
}

// TestDistCheckCampaign is the CI conformance gate: over the default
// small-litmus suite with estimated parameters and the default fixed
// seed, the shipped strategies pass every distributional check and the
// colliding regression fixtures are detected.
func TestDistCheckCampaign(t *testing.T) {
	res, err := DistCheckCampaign(nil, DistCheckConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Conformance.Results {
		t.Logf("%-11s %-10s %-12s pass=%-5v p=%-10.3g %s",
			r.Check, r.Strategy, r.Program, r.Pass, r.P, r.Detail)
	}
	if !res.Conformance.Passed {
		t.Errorf("conformance failures: %+v", res.Conformance.Failures())
	}
	if !res.Detected {
		for _, r := range res.Fixtures.Results {
			t.Logf("fixture %-16s pass=%v chi2=%.2f p=%g", r.Strategy, r.Pass, r.Stat, r.P)
		}
		t.Error("colliding fixtures were not detected")
	}
	if res.Passed != (res.Conformance.Passed && res.Detected) {
		t.Error("Passed is not the conjunction of Conformance.Passed and Detected")
	}
}

// TestDistCheckCampaignCustomSuite: an explicit test list overrides the
// default suite, and the estimated parameters flow into the bounds.
func TestDistCheckCampaignCustomSuite(t *testing.T) {
	res, err := DistCheckCampaign([]*litmus.Test{litmus.SBRelaxed()}, DistCheckConfig{
		Check: distCheckFastConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	progs := map[string]bool{}
	for _, r := range res.Conformance.Results {
		if r.Program != "" {
			progs[r.Program] = true
		}
	}
	if len(progs) != 1 || !progs["SB+rlx"] {
		t.Fatalf("expected checks over SB+rlx only, got %v", progs)
	}
	if !res.Passed {
		t.Fatalf("SB-only campaign failed: %+v", res.Conformance.Failures())
	}
}
