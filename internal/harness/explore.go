package harness

import (
	"fmt"
	"runtime"
	"time"

	"pctwm/internal/engine"
	"pctwm/internal/enumerate"
	"pctwm/internal/telemetry"
)

// ExploreTarget is one program in an explore-throughput measurement:
// the exhaustive explorer enumerates its decision tree and classifies
// each leaf with Key. Callers build targets from litmus.Suite() or
// benchprog programs; harness stays ignorant of either package.
type ExploreTarget struct {
	Name string
	Prog *engine.Program
	Key  func(*engine.Outcome) string
}

// ExploreStrategyName renders the worker count as the snapshot's
// strategy tag ("serial" for 1, "workers-N" otherwise), so explore
// cells gate per worker count like trial-loop cells gate per strategy.
func ExploreStrategyName(workers int) string {
	if workers == 1 {
		return "serial"
	}
	if workers <= 0 {
		return fmt.Sprintf("workers-%d", runtime.GOMAXPROCS(0))
	}
	return fmt.Sprintf("workers-%d", workers)
}

// MeasureExplore exhaustively explores every target (limit-capped, on
// `workers` exploration workers) and reports aggregate throughput as an
// EngineSnapshot cell: runs are merged explored executions across all
// targets, events come from the explorer's telemetry, and the usual
// best-of-measureReps wall-clock estimator smooths ambient noise. The
// cell plugs into the same CompareSnapshots gate as the trial loop.
func MeasureExplore(name string, targets []ExploreTarget, limit, workers int, opts engine.Options) EngineSnapshot {
	measure := func() (time.Duration, int, *telemetry.EngineCounters) {
		tel := &telemetry.EngineCounters{}
		o := opts
		o.Telemetry = tel
		total := 0
		start := time.Now()
		for _, tgt := range targets {
			_, res := enumerate.Outcomes(tgt.Prog, o, enumerate.Config{Limit: limit, Workers: workers}, tgt.Key)
			if res.Drift != nil {
				// Exploration targets are deterministic by construction;
				// surface a drift as a zero-runs cell rather than panicking.
				return time.Since(start), 0, tel
			}
			total += res.Runs
		}
		return time.Since(start), total, tel
	}

	// Warmup pass: fault in code paths and let the runtime settle.
	measure()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var best time.Duration
	var runs int
	var tel *telemetry.EngineCounters
	for rep := 0; rep < measureReps; rep++ {
		elapsed, n, t := measure()
		if rep == 0 || elapsed < best {
			best, runs, tel = elapsed, n, t
		}
	}
	runtime.ReadMemStats(&after)

	totalRuns := float64(measureReps) * float64(max(runs, 1))
	snap := EngineSnapshot{
		Benchmark:    name,
		Strategy:     ExploreStrategyName(workers),
		Runs:         runs,
		AllocsPerRun: float64(after.Mallocs-before.Mallocs) / totalRuns,
		BytesPerRun:  float64(after.TotalAlloc-before.TotalAlloc) / totalRuns,
	}
	if runs > 0 {
		snap.NsPerRun = float64(best.Nanoseconds()) / float64(runs)
	}
	if ev := tel.Events(); ev > 0 {
		snap.NsPerEvent = float64(best.Nanoseconds()) / float64(ev)
	}
	if best > 0 {
		snap.RunsPerSec = float64(runs) / best.Seconds()
	}
	s := tel.Summary()
	snap.Telemetry = &s
	return snap
}
