package harness

import (
	"testing"

	"pctwm/internal/engine"
	"pctwm/internal/litmus"
)

// TestMeasureExploreShape: the explore-throughput cell carries a
// positive measurement, the strategy tag encodes the worker count, and
// serial vs parallel cells report the same merged run count (the
// determinism contract surfacing in the snapshot).
func TestMeasureExploreShape(t *testing.T) {
	var targets []ExploreTarget
	for _, name := range []string{"SB+rlx", "MP+rlx"} {
		for _, lt := range litmus.Suite() {
			if lt.Name == name {
				lt := lt
				targets = append(targets, ExploreTarget{
					Name: lt.Name,
					Prog: lt.Program,
					Key:  func(o *engine.Outcome) string { return lt.Outcome(o.FinalValues) },
				})
			}
		}
	}
	if len(targets) != 2 {
		t.Fatalf("targets: %d", len(targets))
	}
	serial := MeasureExplore("explore-test", targets, 0, 1, engine.Options{})
	par := MeasureExplore("explore-test", targets, 0, 4, engine.Options{})
	if serial.Strategy != "serial" || par.Strategy != "workers-4" {
		t.Fatalf("strategy tags: %q / %q", serial.Strategy, par.Strategy)
	}
	if serial.Runs <= 0 || serial.NsPerRun <= 0 || serial.NsPerEvent <= 0 || serial.RunsPerSec <= 0 {
		t.Fatalf("degenerate serial cell: %+v", serial)
	}
	if par.Runs != serial.Runs {
		t.Fatalf("merged run counts diverge: serial %d, workers-4 %d", serial.Runs, par.Runs)
	}
	if serial.Telemetry == nil || serial.Telemetry.ExploreRuns == 0 {
		t.Fatalf("missing explorer telemetry: %+v", serial.Telemetry)
	}
}
