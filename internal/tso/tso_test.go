package tso

import (
	"fmt"
	"testing"
)

// sb builds the store-buffering shape on the TSO machine.
func sb() *Program {
	p := NewProgram("tso-sb")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	ra := p.Loc("a", -1)
	rb := p.Loc("b", -1)
	p.AddThread(func(t *Thread) {
		t.Store(x, 1)
		t.Store(ra, t.Load(y))
	})
	p.AddThread(func(t *Thread) {
		t.Store(y, 1)
		t.Store(rb, t.Load(x))
	})
	return p
}

func outcomes(t *testing.T, p *Program, limit int) map[string]int {
	t.Helper()
	counts := map[string]int{}
	res := Explore(p, limit, func(o *Outcome) {
		if o.Aborted {
			t.Fatal("aborted execution during exploration")
		}
		counts[fmt.Sprintf("a=%d b=%d", o.FinalValues["a"], o.FinalValues["b"])]++
	})
	if !res.Complete {
		t.Fatalf("exploration incomplete after %d runs", res.Runs)
	}
	t.Logf("%d executions, %d outcomes", res.Runs, len(counts))
	return counts
}

// TestSBAllowsStoreBuffering: TSO's signature weak behaviour a=b=0 is
// reachable.
func TestSBAllowsStoreBuffering(t *testing.T) {
	counts := outcomes(t, sb(), 500000)
	if counts["a=0 b=0"] == 0 {
		t.Fatalf("store buffering outcome unreachable: %v", counts)
	}
	for _, want := range []string{"a=0 b=1", "a=1 b=0", "a=1 b=1"} {
		if counts[want] == 0 {
			t.Fatalf("SC outcome %q unreachable: %v", want, counts)
		}
	}
}

// TestSBWithMFenceForbidsStoreBuffering: mfence between the store and the
// load restores SC for this shape.
func TestSBWithMFenceForbidsStoreBuffering(t *testing.T) {
	p := NewProgram("tso-sb-fenced")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	ra := p.Loc("a", -1)
	rb := p.Loc("b", -1)
	p.AddThread(func(t *Thread) {
		t.Store(x, 1)
		t.MFence()
		t.Store(ra, t.Load(y))
	})
	p.AddThread(func(t *Thread) {
		t.Store(y, 1)
		t.MFence()
		t.Store(rb, t.Load(x))
	})
	counts := outcomes(t, p, 500000)
	if counts["a=0 b=0"] != 0 {
		t.Fatalf("fenced SB still shows store buffering: %v", counts)
	}
}

// TestMPForbidden: TSO's FIFO buffers forbid the message-passing
// violation a=1 b=0.
func TestMPForbidden(t *testing.T) {
	p := NewProgram("tso-mp")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	ra := p.Loc("a", -1)
	rb := p.Loc("b", -1)
	p.AddThread(func(t *Thread) {
		t.Store(x, 1)
		t.Store(y, 1)
	})
	p.AddThread(func(t *Thread) {
		a := t.Load(y)
		t.Store(ra, a)
		t.Store(rb, t.Load(x))
	})
	counts := outcomes(t, p, 500000)
	if counts["a=1 b=0"] != 0 {
		t.Fatalf("TSO produced the MP violation: %v", counts)
	}
	if counts["a=1 b=1"] == 0 || counts["a=0 b=0"] == 0 {
		t.Fatalf("expected outcomes missing: %v", counts)
	}
}

// TestLBForbidden: load buffering cannot happen (loads execute before
// later own stores).
func TestLBForbidden(t *testing.T) {
	p := NewProgram("tso-lb")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	ra := p.Loc("a", -1)
	rb := p.Loc("b", -1)
	p.AddThread(func(t *Thread) {
		t.Store(ra, t.Load(y))
		t.Store(x, 1)
	})
	p.AddThread(func(t *Thread) {
		t.Store(rb, t.Load(x))
		t.Store(y, 1)
	})
	counts := outcomes(t, p, 500000)
	if counts["a=1 b=1"] != 0 {
		t.Fatalf("TSO produced load buffering: %v", counts)
	}
}

// TestIRIWForbidden: TSO is multi-copy atomic — readers never disagree on
// the order of independent writes.
func TestIRIWForbidden(t *testing.T) {
	p := NewProgram("tso-iriw")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	regs := make([]Loc, 4)
	for i := range regs {
		regs[i] = p.Loc(fmt.Sprintf("r%d", i+1), -1)
	}
	p.AddThread(func(t *Thread) { t.Store(x, 1) })
	p.AddThread(func(t *Thread) { t.Store(y, 1) })
	p.AddThread(func(t *Thread) {
		t.Store(regs[0], t.Load(x))
		t.Store(regs[1], t.Load(y))
	})
	p.AddThread(func(t *Thread) {
		t.Store(regs[2], t.Load(y))
		t.Store(regs[3], t.Load(x))
	})
	bad := 0
	res := Explore(p, 120000, func(o *Outcome) {
		if o.FinalValues["r1"] == 1 && o.FinalValues["r2"] == 0 &&
			o.FinalValues["r3"] == 1 && o.FinalValues["r4"] == 0 {
			bad++
		}
	})
	// The full 4-thread state space is too large to exhaust; the bounded
	// prefix must still be violation-free.
	if bad != 0 {
		t.Fatalf("TSO produced the IRIW violation %d times", bad)
	}
	t.Logf("%d executions explored (complete=%v)", res.Runs, res.Complete)
}

// TestStoreForwarding: a thread always sees its own buffered store.
func TestStoreForwarding(t *testing.T) {
	p := NewProgram("tso-fwd")
	x := p.Loc("X", 0)
	r := p.Loc("r", -1)
	p.AddThread(func(t *Thread) {
		t.Store(x, 7)
		t.Store(r, t.Load(x))
	})
	Explore(p, 0, func(o *Outcome) {
		if o.FinalValues["r"] != 7 {
			t.Fatalf("store forwarding broken: %v", o.FinalValues)
		}
	})
}

// TestFetchAddAtomic: LOCK-prefixed RMWs drain and act on memory.
func TestFetchAddAtomic(t *testing.T) {
	p := NewProgram("tso-rmw")
	x := p.Loc("X", 0)
	p.AddThread(func(t *Thread) { t.FetchAdd(x, 1) })
	p.AddThread(func(t *Thread) { t.FetchAdd(x, 1) })
	Explore(p, 0, func(o *Outcome) {
		if o.FinalValues["X"] != 2 {
			t.Fatalf("lost update: %v", o.FinalValues)
		}
	})
}

// dekkerTSO builds Dekker's entry protocol without fences: the classic
// x86 pitfall. Both threads can read the other's flag as 0 out of their
// store buffers' shadow and enter the critical section together.
func dekkerTSO(withFence bool) *Program {
	p := NewProgram("tso-dekker")
	flag1 := p.Loc("flag1", 0)
	flag2 := p.Loc("flag2", 0)
	count := p.Loc("count", 0)
	e1 := p.Loc("entered1", 0)
	e2 := p.Loc("entered2", 0)
	worker := func(my, other, entered Loc) func(*Thread) {
		return func(t *Thread) {
			t.Store(my, 1)
			if withFence {
				t.MFence()
			}
			if t.Load(other) == 0 {
				// Critical section: unsynchronized read-modify-write.
				t.Store(entered, 1)
				v := t.Load(count)
				t.Store(count, v+1)
			}
		}
	}
	p.AddThread(worker(flag1, flag2, e1))
	p.AddThread(worker(flag2, flag1, e2))
	return p
}

// TestPCTWMTSODekker: PCTWM-TSO with d=0 produces the mutual-exclusion
// failure in every round (no load communicates, so both threads see the
// other's flag as 0); with mfence the failure is impossible under any
// policy.
func TestPCTWMTSODekker(t *testing.T) {
	// Mutual exclusion is violated when both threads entered the critical
	// section; the unsynchronized counter then loses an update.
	violated := func(o *Outcome) bool {
		return o.FinalValues["entered1"] == 1 && o.FinalValues["entered2"] == 1 &&
			o.FinalValues["count"] < 2
	}

	hits := 0
	const rounds = 200
	for seed := int64(0); seed < rounds; seed++ {
		o := Run(dekkerTSO(false), NewPCTWMPolicy(0, 6, seed), 0)
		if violated(o) {
			hits++
		}
	}
	if hits != rounds {
		t.Fatalf("PCTWM-TSO d=0 hit %d/%d, want all", hits, rounds)
	}

	// Exhaustively: the fenced version never fails.
	res := Explore(dekkerTSO(true), 2000000, func(o *Outcome) {
		if violated(o) {
			t.Fatalf("fenced Dekker lost an update: %v", o.FinalValues)
		}
	})
	if !res.Complete {
		t.Skipf("state space too large (%d runs)", res.Runs)
	}

	// The unfenced version fails under *some* schedule (exhaustive
	// witness) ...
	witnessed := false
	Explore(dekkerTSO(false), 2000000, func(o *Outcome) {
		if violated(o) {
			witnessed = true
		}
	})
	if !witnessed {
		t.Fatal("unfenced Dekker never failed — TSO buffers not modeled?")
	}

	// ... but naive random testing misses it in a sizable fraction of
	// rounds, which is the PCTWM-TSO advantage.
	randHits := 0
	for seed := int64(0); seed < rounds; seed++ {
		if violated(Run(dekkerTSO(false), NewRandomPolicy(seed), 0)) {
			randHits++
		}
	}
	if randHits == rounds {
		t.Fatalf("random policy also hit every round (%d/%d); no discrimination", randHits, rounds)
	}
	t.Logf("PCTWM-TSO d=0: %d/%d, random: %d/%d", hits, rounds, randHits, rounds)
}
