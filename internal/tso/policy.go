package tso

import "math/rand"

// RandomPolicy is the naive random baseline on the TSO machine: every
// enabled action (thread step or buffer drain) is chosen uniformly.
type RandomPolicy struct {
	rng *rand.Rand
}

// NewRandomPolicy returns a uniform policy seeded by seed.
func NewRandomPolicy(seed int64) *RandomPolicy {
	return &RandomPolicy{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Policy.
func (p *RandomPolicy) Name() string { return "tso-random" }

// Begin implements Policy.
func (p *RandomPolicy) Begin(int) {}

// Choose implements Policy.
func (p *RandomPolicy) Choose(actions []Action) int { return p.rng.Intn(len(actions)) }

// PCTWMPolicy adapts PCTWM to TSO (the paper's §5 model-agnosticism: the
// algorithm needs only a notion of communication event and of thread-local
// behaviour). Under TSO the weak behaviour is the delayed drain of store
// buffers, and a communication relation is a load observing another
// thread's drained store:
//
//   - drains are deferred as long as any thread can step, so by default
//     loads observe only their own buffered stores and the initial memory
//     (the thread-local view — readLocal);
//   - threads run serially in a random priority order;
//   - the d1…dd-th loads encountered (sampled from [1, kloads]) are
//     delayed by demoting their threads; when only delayed threads remain,
//     buffers are drained first, so exactly the sampled loads observe the
//     drained remote stores (readGlobal).
//
// TSO has a single memory copy, so a load has no choice of stale values
// and the history depth h degenerates to 1.
type PCTWMPolicy struct {
	// Depth is the bug depth d.
	Depth int
	// Loads is the estimated number of load events (the kcom analogue).
	Loads int

	rng      *rand.Rand
	prio     map[ThreadID]int
	sampled  map[int]int
	counted  map[int64]bool
	loadSeen int
}

// NewPCTWMPolicy returns PCTWM-TSO with bug depth d and kloads estimated
// load events, seeded by seed.
func NewPCTWMPolicy(d, kloads int, seed int64) *PCTWMPolicy {
	if d < 0 {
		d = 0
	}
	if kloads < 1 {
		kloads = 1
	}
	return &PCTWMPolicy{Depth: d, Loads: kloads, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Policy.
func (p *PCTWMPolicy) Name() string { return "tso-pctwm" }

// Begin implements Policy.
func (p *PCTWMPolicy) Begin(numThreads int) {
	p.prio = make(map[ThreadID]int, numThreads)
	p.counted = make(map[int64]bool)
	p.loadSeen = 0
	p.sampled = make(map[int]int, p.Depth)
	perm := p.rng.Perm(p.Loads)
	for k := 0; k < p.Depth && k < len(perm); k++ {
		p.sampled[perm[k]+1] = k + 1
	}
	for i := 1; i <= numThreads; i++ {
		p.prio[ThreadID(i)] = p.Depth + 1 + p.rng.Intn(numThreads*2)
	}
}

func key(tid ThreadID, opIndex int) int64 { return int64(tid)<<32 | int64(opIndex) }

// Choose implements Policy.
func (p *PCTWMPolicy) Choose(actions []Action) int {
	for {
		best := -1
		bestPrio := 0
		firstDrain := -1
		for i, a := range actions {
			if a.Kind == ActDrain {
				if firstDrain < 0 {
					firstDrain = i
				}
				continue
			}
			if pr := p.prio[a.TID]; best < 0 || pr > bestPrio {
				best, bestPrio = i, pr
			}
		}
		if best < 0 {
			// Only drains remain (all threads finished): flush buffers.
			return firstDrain
		}
		a := actions[best]
		if a.IsLoad && !p.counted[key(a.TID, a.OpIndex)] {
			p.counted[key(a.TID, a.OpIndex)] = true
			p.loadSeen++
			if k, hit := p.sampled[p.loadSeen]; hit {
				// Delay this load: demote its thread into reserved slot
				// d−k+1 and re-pick.
				p.prio[a.TID] = p.Depth - k + 1
				continue
			}
		}
		if bestPrio <= p.Depth && firstDrain >= 0 {
			// The chosen thread is a delayed sink: its load must observe
			// the drained memory, so flush pending buffers first.
			return firstDrain
		}
		return best
	}
}
