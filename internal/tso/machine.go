// Package tso demonstrates the paper's claim that PCTWM is memory-model
// agnostic (§5): it implements a second weak memory model — x86-TSO with
// per-thread FIFO store buffers (Owens, Sarkar, Sewell 2009) — and adapts
// the PCTWM sampling idea to it. Under TSO the only weak behaviour is
// delayed store-buffer drains, so a communication relation is a load
// observing another thread's drained store; PCTWM-TSO keeps drains as
// late as possible and delays d sampled loads so that exactly they can
// observe remote values.
//
// The package has its own small machine (threads post operations and
// park, a policy chooses among thread steps and buffer drains), its own
// litmus checks (SB allowed; MP, LB and IRIW forbidden — TSO is
// multi-copy atomic), and a Dekker demonstration: the classic mutual
// exclusion algorithm fails on TSO without fences, and PCTWM-TSO with
// d = 0 produces the failing execution every time.
package tso

import (
	"fmt"
	"sync"
)

// Loc identifies a shared location (dense indices from Program.Loc).
type Loc int

// Value is a stored value.
type Value int64

// ThreadID identifies a thread (1-based).
type ThreadID int

// Program declares locations and threads for the TSO machine.
type Program struct {
	name    string
	locs    []locDecl
	byName  map[string]Loc
	threads []func(*Thread)
}

type locDecl struct {
	name string
	init Value
}

// NewProgram creates an empty TSO program.
func NewProgram(name string) *Program {
	return &Program{name: name, byName: make(map[string]Loc)}
}

// Loc declares a shared location.
func (p *Program) Loc(name string, init Value) Loc {
	if _, dup := p.byName[name]; dup {
		panic(fmt.Sprintf("tso: duplicate location %q", name))
	}
	l := Loc(len(p.locs))
	p.locs = append(p.locs, locDecl{name, init})
	p.byName[name] = l
	return l
}

// AddThread registers a thread body.
func (p *Program) AddThread(fn func(*Thread)) { p.threads = append(p.threads, fn) }

// opCode for the TSO machine.
type opCode uint8

const (
	opLoad opCode = iota
	opStore
	opMFence
	opRMWAdd
	opAssert
)

type request struct {
	code      opCode
	loc       Loc
	val       Value
	assertOK  bool
	assertMsg string
}

type response struct{ val Value }

// Thread is a TSO thread handle.
type Thread struct {
	m      *machine
	id     ThreadID
	resume chan response
	req    request
	done   bool
	// store buffer: FIFO of pending stores.
	buffer []bufEntry
	// index of the next operation (event identity for policies).
	opIndex int
}

type bufEntry struct {
	loc Loc
	val Value
}

// ID returns the thread id.
func (t *Thread) ID() ThreadID { return t.id }

func (t *Thread) post(r request) response {
	t.req = r
	select {
	case t.m.parkCh <- t:
	case <-t.m.killed:
		panic(tsoKilled{})
	}
	select {
	case res := <-t.resume:
		return res
	case <-t.m.killed:
		panic(tsoKilled{})
	}
}

type tsoKilled struct{}

// Load reads loc: the youngest own buffered store wins (store
// forwarding), otherwise shared memory.
func (t *Thread) Load(loc Loc) Value { return t.post(request{code: opLoad, loc: loc}).val }

// Store buffers a write to loc.
func (t *Thread) Store(loc Loc, v Value) { t.post(request{code: opStore, loc: loc, val: v}) }

// MFence drains this thread's store buffer.
func (t *Thread) MFence() { t.post(request{code: opMFence}) }

// FetchAdd drains the buffer and atomically adds to memory, returning the
// previous value (x86 LOCK-prefixed instruction).
func (t *Thread) FetchAdd(loc Loc, delta Value) Value {
	return t.post(request{code: opRMWAdd, loc: loc, val: delta}).val
}

// Assert records a bug when cond is false.
func (t *Thread) Assert(cond bool, format string, args ...any) {
	msg := ""
	if !cond {
		msg = fmt.Sprintf(format, args...)
	}
	t.post(request{code: opAssert, assertOK: cond, assertMsg: msg})
}

// ActionKind distinguishes machine actions.
type ActionKind uint8

const (
	// ActStep executes the thread's pending operation.
	ActStep ActionKind = iota
	// ActDrain flushes the oldest entry of the thread's store buffer.
	ActDrain
)

// Action is one schedulable machine transition.
type Action struct {
	Kind ActionKind
	TID  ThreadID
	// For ActStep: the pending op's code and identity.
	Op      opCode
	OpIndex int
	// IsLoad reports whether the pending step is a load — the potential
	// communication sinks of PCTWM-TSO.
	IsLoad bool
}

// Policy decides which enabled action runs next.
type Policy interface {
	Name() string
	Begin(numThreads int)
	// Choose picks an index into actions (never empty).
	Choose(actions []Action) int
}

// Outcome of one TSO execution.
type Outcome struct {
	BugHit      bool
	BugMessages []string
	FinalValues map[string]Value
	Steps       int
	// Loads counts executed load operations (the kcom analogue).
	Loads   int
	Aborted bool
}

// machine is one execution's state.
type machine struct {
	prog    *Program
	memory  []Value
	threads []*Thread
	parkCh  chan *Thread
	doneCh  chan ThreadID
	killed  chan struct{}
	wg      sync.WaitGroup
	outcome Outcome
}

// Run executes the program under the policy. maxSteps guards against
// divergence (0 = default 100000).
func Run(p *Program, policy Policy, maxSteps int) *Outcome {
	if maxSteps <= 0 {
		maxSteps = 100000
	}
	m := &machine{
		prog:   p,
		memory: make([]Value, len(p.locs)),
		parkCh: make(chan *Thread),
		doneCh: make(chan ThreadID),
		killed: make(chan struct{}),
	}
	for i, d := range p.locs {
		m.memory[i] = d.init
	}
	policy.Begin(len(p.threads))
	for i, fn := range p.threads {
		t := &Thread{m: m, id: ThreadID(i + 1), resume: make(chan response)}
		m.threads = append(m.threads, t)
		m.start(t, fn)
	}
	m.loop(policy, maxSteps)
	close(m.killed)
	m.wg.Wait()
	m.outcome.FinalValues = make(map[string]Value, len(p.locs))
	for i, d := range p.locs {
		m.outcome.FinalValues[d.name] = m.memory[i]
	}
	return &m.outcome
}

func (m *machine) start(t *Thread, fn func(*Thread)) {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(tsoKilled); ok {
					return
				}
				panic(r)
			}
		}()
		fn(t)
		select {
		case m.doneCh <- t.id:
		case <-m.killed:
		}
	}()
	m.waitForPark(t)
}

func (m *machine) waitForPark(t *Thread) {
	select {
	case parked := <-m.parkCh:
		if parked != t {
			panic("tso: serialization violated")
		}
	case tid := <-m.doneCh:
		if tid != t.id {
			panic("tso: serialization violated")
		}
		t.done = true
	}
}

func (m *machine) actions() []Action {
	var acts []Action
	for _, t := range m.threads {
		if !t.done {
			acts = append(acts, Action{
				Kind: ActStep, TID: t.id,
				Op: t.req.code, OpIndex: t.opIndex,
				IsLoad: t.req.code == opLoad,
			})
		}
		if len(t.buffer) > 0 {
			acts = append(acts, Action{Kind: ActDrain, TID: t.id})
		}
	}
	return acts
}

func (m *machine) loop(policy Policy, maxSteps int) {
	for {
		acts := m.actions()
		if len(acts) == 0 {
			return
		}
		if m.outcome.Steps >= maxSteps {
			m.outcome.Aborted = true
			return
		}
		m.outcome.Steps++
		a := acts[policy.Choose(acts)]
		t := m.threads[a.TID-1]
		if a.Kind == ActDrain {
			e := t.buffer[0]
			t.buffer = t.buffer[1:]
			m.memory[e.loc] = e.val
			continue
		}
		m.execute(t)
	}
}

func (m *machine) execute(t *Thread) {
	req := t.req
	t.opIndex++
	var res response
	switch req.code {
	case opLoad:
		m.outcome.Loads++
		res.val = m.memory[req.loc]
		// Store forwarding: the youngest buffered store to loc wins.
		for i := len(t.buffer) - 1; i >= 0; i-- {
			if t.buffer[i].loc == req.loc {
				res.val = t.buffer[i].val
				break
			}
		}
	case opStore:
		t.buffer = append(t.buffer, bufEntry{req.loc, req.val})
	case opMFence, opRMWAdd:
		for _, e := range t.buffer {
			m.memory[e.loc] = e.val
		}
		t.buffer = t.buffer[:0]
		if req.code == opRMWAdd {
			res.val = m.memory[req.loc]
			m.memory[req.loc] = res.val + req.val
		}
	case opAssert:
		if !req.assertOK {
			m.outcome.BugHit = true
			m.outcome.BugMessages = append(m.outcome.BugMessages, req.assertMsg)
		}
	}
	t.resume <- res
	m.waitForPark(t)
}
