package tso

// scriptedPolicy drives exhaustive exploration: it follows a decision
// prefix and records arities, exactly like internal/enumerate does for
// the C11 engine.
type scriptedPolicy struct {
	script []int
	pos    int
	arity  []int
}

func (s *scriptedPolicy) Name() string { return "tso-scripted" }
func (s *scriptedPolicy) Begin(int)    {}
func (s *scriptedPolicy) Choose(actions []Action) int {
	s.arity = append(s.arity, len(actions))
	choice := 0
	if s.pos < len(s.script) {
		choice = s.script[s.pos]
	}
	s.pos++
	if choice >= len(actions) {
		choice = len(actions) - 1
	}
	return choice
}

// ExploreResult summarizes an exhaustive TSO exploration.
type ExploreResult struct {
	Runs     int
	Complete bool
}

// Explore enumerates every action sequence of the program (up to limit
// runs), calling visit with each outcome.
func Explore(p *Program, limit int, visit func(*Outcome)) ExploreResult {
	var res ExploreResult
	script := []int{}
	for {
		if limit > 0 && res.Runs >= limit {
			return res
		}
		s := &scriptedPolicy{script: script}
		o := Run(p, s, 0)
		res.Runs++
		visit(o)

		next := make([]int, len(s.arity))
		copy(next, script)
		i := len(s.arity) - 1
		for i >= 0 {
			if next[i]+1 < s.arity[i] {
				break
			}
			i--
		}
		if i < 0 {
			res.Complete = true
			return res
		}
		script = append(next[:i:i], next[i]+1)
	}
}
