package replay

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"pctwm/internal/checkpoint"
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// BundleVersion is the current repro-bundle format version. Version 2
// added the top-level memory-model record; version 3 added the behavior
// fingerprint. Loaders accept version 2 bundles (their BehaviorFP is
// simply absent) and version 1 bundles (written before the engine grew
// selectable backends) by treating them as rc11. Bump on incompatible
// changes.
const BundleVersion = 3

// bundleVersionModel is the pre-coverage model-tagged format, still read.
const bundleVersionModel = 2

// bundleVersionLegacy is the last pre-model bundle format, still read.
const bundleVersionLegacy = 1

// OutcomeSummary is the replay-verifiable digest of an engine.Outcome: the
// schedule-determined counters, the failure signals, and the final state.
// Two runs of the same program with the same decision sequence must agree
// on every field (Recording and Duration are deliberately excluded — the
// former is bulky and implied, the latter is wall-clock noise).
type OutcomeSummary struct {
	Steps       int                       `json:"steps"`
	Events      int                       `json:"events"`
	CommEvents  int                       `json:"comm_events"`
	BugHit      bool                      `json:"bug_hit"`
	BugMessages []string                  `json:"bug_messages,omitempty"`
	ErrKind     string                    `json:"err_kind,omitempty"`
	ErrMsg      string                    `json:"err_msg,omitempty"`
	Aborted     bool                      `json:"aborted,omitempty"`
	Deadlocked  bool                      `json:"deadlocked,omitempty"`
	Races       int                       `json:"races"`
	FinalValues map[string]memmodel.Value `json:"final_values,omitempty"`
}

// Summarize digests an outcome. The TimedOut/Canceled flags are folded
// into ErrKind; bundles are written from triage re-runs that strip the
// wall-clock bound, so a summary normally carries a deterministic kind.
func Summarize(o *engine.Outcome) OutcomeSummary {
	s := OutcomeSummary{
		Steps:       o.Steps,
		Events:      o.Events,
		CommEvents:  o.CommEvents,
		BugHit:      o.BugHit,
		BugMessages: o.BugMessages,
		Aborted:     o.Aborted,
		Deadlocked:  o.Deadlocked,
		Races:       len(o.Races),
		FinalValues: o.FinalValues,
	}
	if o.Err != nil {
		s.ErrKind = o.Err.Kind.String()
		s.ErrMsg = o.Err.Msg
	}
	return s
}

// Diff lists the fields on which two summaries disagree (empty = equal).
// The order is deterministic for stable diagnostics.
func (s OutcomeSummary) Diff(other OutcomeSummary) []string {
	var diffs []string
	add := func(field string, a, b any) {
		diffs = append(diffs, fmt.Sprintf("%s: %v vs %v", field, a, b))
	}
	if s.Steps != other.Steps {
		add("steps", s.Steps, other.Steps)
	}
	if s.Events != other.Events {
		add("events", s.Events, other.Events)
	}
	if s.CommEvents != other.CommEvents {
		add("comm_events", s.CommEvents, other.CommEvents)
	}
	if s.BugHit != other.BugHit {
		add("bug_hit", s.BugHit, other.BugHit)
	}
	if len(s.BugMessages) != len(other.BugMessages) {
		add("bug_messages", len(s.BugMessages), len(other.BugMessages))
	} else {
		for i := range s.BugMessages {
			if s.BugMessages[i] != other.BugMessages[i] {
				add(fmt.Sprintf("bug_messages[%d]", i), s.BugMessages[i], other.BugMessages[i])
				break
			}
		}
	}
	if s.ErrKind != other.ErrKind {
		add("err_kind", s.ErrKind, other.ErrKind)
	}
	if s.Aborted != other.Aborted {
		add("aborted", s.Aborted, other.Aborted)
	}
	if s.Deadlocked != other.Deadlocked {
		add("deadlocked", s.Deadlocked, other.Deadlocked)
	}
	if s.Races != other.Races {
		add("races", s.Races, other.Races)
	}
	if len(s.FinalValues) != len(other.FinalValues) {
		add("final_values", len(s.FinalValues), len(other.FinalValues))
	} else {
		keys := make([]string, 0, len(s.FinalValues))
		for k := range s.FinalValues {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			bv, ok := other.FinalValues[k]
			if !ok || bv != s.FinalValues[k] {
				add("final_values["+k+"]", s.FinalValues[k], bv)
				break
			}
		}
	}
	return diffs
}

// Triage verdicts recorded in bundles (see harness flake triage: the
// failing seed is re-run once on a fresh Runner and compared).
const (
	// TriageDeterministic: the re-run reproduced the original outcome —
	// the failure is a real, replayable program behaviour.
	TriageDeterministic = "DETERMINISTIC"
	// TriageNondeterministic: the re-run diverged from the original
	// outcome for the same (program, strategy, seed) — an engine or
	// strategy determinism bug; the bundle's trace captures the re-run.
	TriageNondeterministic = "NONDETERMINISTIC"
	// TriageSkipped: the failure was wall-clock-dependent (timeout) or
	// interrupted, so determinism was not judged.
	TriageSkipped = "SKIPPED"
)

// Bundle is a self-contained reproduction artifact for one failing trial:
// everything needed to re-execute the run bit-identically (program
// identity, strategy, seed, engine options, the recorded decision
// sequence) plus the outcome it must reproduce and the flake-triage
// verdict. Bundles are written as JSON under a campaign's repro
// directory and replayed by `pctwm-replay` (or Bundle.Verify).
type Bundle struct {
	Version int    `json:"version"`
	Program string `json:"program"`
	// ProgramThreads/ProgramLocs fingerprint the program so a replay
	// against a same-named but different program is flagged instead of
	// silently derailing.
	ProgramThreads int    `json:"program_threads"`
	ProgramLocs    int    `json:"program_locs"`
	Strategy       string `json:"strategy"`
	Seed           int64  `json:"seed"`
	// Model is the memory-model backend the trace was recorded under
	// ("rc11", "sc", "tso"). A decision sequence is only meaningful
	// against the semantics that produced it — the same schedule read
	// under another model visits different states — so DecodeBundle
	// refuses bundles recording a model this build does not implement,
	// and Verify replays under exactly this model.
	Model   string         `json:"model"`
	Options engine.Options `json:"options"`
	// Trace is the recorded decision sequence of the triage re-run; nil
	// when the trial panicked before any decision was recorded.
	Trace *Trace `json:"trace,omitempty"`
	// Outcome is the digest of the triage re-run (what a replay must
	// reproduce). For harness panics it digests the partial run.
	Outcome OutcomeSummary `json:"outcome"`
	// FirstOutcome is the digest of the original campaign trial. It equals
	// Outcome when Triage is DETERMINISTIC.
	FirstOutcome OutcomeSummary `json:"first_outcome"`
	// BehaviorFP is the original trial's canonical behavior fingerprint
	// (internal/coverage), recorded when the campaign ran with coverage
	// on. Zero for coverage-off campaigns, harness-panic bundles, and
	// pre-v3 bundles. When set, a replay with Options.Coverage re-derives
	// the fingerprint and Verify checks it matches.
	BehaviorFP uint64 `json:"behavior_fp,omitempty"`
	Triage     string `json:"triage"`
	// HarnessPanic carries the panic value when the trial panicked outside
	// the engine (strategy or harness code); Stack is the recovered stack.
	// Such bundles replay best-effort: the Player stands in for the
	// panicking strategy, so Verify skips the outcome match.
	HarnessPanic string    `json:"harness_panic,omitempty"`
	Stack        string    `json:"stack,omitempty"`
	WrittenAt    time.Time `json:"written_at"`
	// Perfetto optionally embeds the triage re-run's schedule as a Chrome
	// trace-event JSON document (Campaign.EmbedPerfetto), so a bundle's
	// recorded execution can be opened in Perfetto directly and visually
	// diffed against a diverging replay (pctwm-replay -perfetto-dir).
	Perfetto json.RawMessage `json:"perfetto,omitempty"`
}

// NewBundle assembles a bundle for prog. Options are embedded as given
// (strip Context before calling; it does not serialize).
func NewBundle(prog *engine.Program, strategy string, seed int64, opts engine.Options) *Bundle {
	model := opts.Model
	if model == "" {
		model = engine.ModelRC11
	}
	return &Bundle{
		Version:        BundleVersion,
		Program:        prog.Name(),
		ProgramThreads: prog.NumThreads(),
		ProgramLocs:    prog.NumLocs(),
		Strategy:       strategy,
		Seed:           seed,
		Model:          model,
		Options:        opts,
		WrittenAt:      time.Now().UTC(),
	}
}

// Matches reports whether prog matches the bundle's program fingerprint.
func (b *Bundle) Matches(prog *engine.Program) bool {
	return b.Program == prog.Name() &&
		b.ProgramThreads == prog.NumThreads() &&
		b.ProgramLocs == prog.NumLocs()
}

// Encode renders the bundle as indented JSON.
func (b *Bundle) Encode() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}

// DecodeBundle parses and validates a JSON bundle. Version-1 bundles
// (pre-model) are upgraded in place: they were recorded by the rc11-only
// engine, so their model is rc11 by construction.
func DecodeBundle(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("replay: decoding bundle: %w", err)
	}
	switch b.Version {
	case BundleVersion:
	case bundleVersionModel:
		// Pre-coverage: no fingerprint was recorded. Nothing to upgrade.
	case bundleVersionLegacy:
		if b.Model == "" {
			b.Model = engine.ModelRC11
		}
	default:
		return nil, fmt.Errorf("replay: bundle version %d, this build reads versions %d through %d",
			b.Version, bundleVersionLegacy, BundleVersion)
	}
	if b.Program == "" {
		return nil, fmt.Errorf("replay: bundle has no program name")
	}
	if b.Model == "" {
		b.Model = engine.ModelRC11
	}
	if !engine.ValidModel(b.Model) {
		return nil, fmt.Errorf("replay: bundle records memory model %q; this build implements %v — "+
			"the trace cannot be replayed under different semantics", b.Model, engine.Models())
	}
	// The top-level record is authoritative; keep the embedded options
	// consistent so Verify and ad-hoc engine.Run callers agree.
	b.Options.Model = b.Model
	return &b, nil
}

// WriteFile writes the bundle under dir as
// "<program>-<strategy>-seed<seed>.json" (name sanitized) and returns the
// path. The directory is created if missing.
func (b *Bundle) WriteFile(dir string) (string, error) {
	return b.WriteFileFS(checkpoint.OS, dir)
}

// WriteFileFS is WriteFile through an explicit filesystem — the hardened
// durable-sink path: directory creation, write-to-temp-then-rename (so a
// SIGKILL mid-flush never leaves a torn bundle that a later pctwm-replay
// chokes on), and bounded retry with exponential backoff on transient
// write errors.
func (b *Bundle) WriteFileFS(fsys checkpoint.FS, dir string) (string, error) {
	name := fmt.Sprintf("%s-%s-seed%d.json", sanitizeName(b.Program), sanitizeName(b.Strategy), b.Seed)
	path := filepath.Join(dir, name)
	data, err := b.Encode()
	if err != nil {
		return "", fmt.Errorf("replay: encoding bundle: %w", err)
	}
	if err := checkpoint.WriteDurable(fsys, path, append(data, '\n'), nil); err != nil {
		return "", fmt.Errorf("replay: writing bundle: %w", err)
	}
	return path, nil
}

// LoadBundle reads a bundle file.
func LoadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	return DecodeBundle(data)
}

// sanitizeName maps a program/strategy name onto a filesystem-safe slug.
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

// VerifyResult is the outcome of replaying a bundle against a program.
type VerifyResult struct {
	// Outcome is the replayed execution's outcome.
	Outcome *engine.Outcome
	// Summary digests Outcome.
	Summary OutcomeSummary
	// Derails counts replay decisions that could not follow the trace
	// (non-zero means the program or engine changed since recording).
	Derails int
	// Match is true when the replay reproduced the bundle's recorded
	// outcome exactly with zero derails. Harness-panic bundles never
	// match (the panicking strategy is absent); check Diffs/Derails.
	Match bool
	// Diffs lists the summary fields that disagree (empty on match).
	Diffs []string
}

// Verify re-executes the bundle's trace against prog and compares the
// result with the recorded outcome. The bundle's embedded options are
// used verbatim (they never include a Context or wall-clock bound — the
// writer strips those), so the replay is deterministic.
func (b *Bundle) Verify(prog *engine.Program) (VerifyResult, error) {
	if !b.Matches(prog) {
		return VerifyResult{}, fmt.Errorf(
			"replay: program mismatch: bundle recorded %q (%d threads, %d locs), got %q (%d threads, %d locs)",
			b.Program, b.ProgramThreads, b.ProgramLocs,
			prog.Name(), prog.NumThreads(), prog.NumLocs())
	}
	trace := b.Trace
	if trace == nil {
		trace = &Trace{}
	}
	player := NewPlayer(trace)
	opts := b.Options
	opts.Context = nil
	if b.Model != "" {
		opts.Model = b.Model
	}
	o := engine.Run(prog, player, b.Seed, opts)
	res := VerifyResult{
		Outcome: o,
		Summary: Summarize(o),
		Derails: player.Derails,
	}
	res.Diffs = b.Outcome.Diff(res.Summary)
	// The recorded fingerprint digests the *original* campaign trial; it
	// is only a replay obligation when triage proved the failure
	// deterministic (for NONDETERMINISTIC bundles the trace captures the
	// diverged re-run, whose behavior legitimately differs).
	if b.BehaviorFP != 0 && o.BehaviorFP != 0 && b.Triage == TriageDeterministic &&
		o.BehaviorFP != b.BehaviorFP {
		res.Diffs = append(res.Diffs, fmt.Sprintf("behavior_fp: %#x vs %#x", b.BehaviorFP, o.BehaviorFP))
	}
	res.Match = len(res.Diffs) == 0 && res.Derails == 0 && b.HarnessPanic == ""
	return res, nil
}
