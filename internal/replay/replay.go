// Package replay records the decisions a testing strategy makes during
// one execution (thread scheduling and reads-from choices) so a failing
// execution can be replayed exactly — deterministic reproduction of a
// randomly found weak-memory bug, independent of the strategy and seed
// that found it.
package replay

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// Trace is the decision sequence of one execution. It is
// JSON-serializable for storing alongside a bug report.
type Trace struct {
	// Threads is the sequence of scheduled thread ids.
	Threads []memmodel.ThreadID `json:"threads"`
	// Reads is the sequence of reads-from candidate indices.
	Reads []int `json:"reads"`
}

// Encode renders the trace as JSON.
func (t *Trace) Encode() ([]byte, error) { return json.Marshal(t) }

// Decode parses a JSON trace.
func Decode(data []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("replay: decoding trace: %w", err)
	}
	return &t, nil
}

// Recorder wraps a strategy and captures every decision it makes.
type Recorder struct {
	inner engine.Strategy
	trace Trace
}

// NewRecorder wraps inner.
func NewRecorder(inner engine.Strategy) *Recorder { return &Recorder{inner: inner} }

// Trace returns a copy of the recorded decisions.
func (r *Recorder) Trace() *Trace {
	return &Trace{
		Threads: append([]memmodel.ThreadID(nil), r.trace.Threads...),
		Reads:   append([]int(nil), r.trace.Reads...),
	}
}

// Name implements engine.Strategy.
func (r *Recorder) Name() string { return r.inner.Name() + "+record" }

// Begin implements engine.Strategy.
func (r *Recorder) Begin(info engine.ProgramInfo, rng *rand.Rand) {
	r.trace = Trace{}
	r.inner.Begin(info, rng)
}

// NextThread implements engine.Strategy.
func (r *Recorder) NextThread(enabled []engine.PendingOp) memmodel.ThreadID {
	tid := r.inner.NextThread(enabled)
	r.trace.Threads = append(r.trace.Threads, tid)
	return tid
}

// PickRead implements engine.Strategy.
func (r *Recorder) PickRead(rc engine.ReadContext) int {
	i := r.inner.PickRead(rc)
	r.trace.Reads = append(r.trace.Reads, i)
	return i
}

// OnEvent implements engine.Strategy.
func (r *Recorder) OnEvent(ev *memmodel.Event) { r.inner.OnEvent(ev) }

// OnThreadStart implements engine.Strategy.
func (r *Recorder) OnThreadStart(tid, parent memmodel.ThreadID) {
	r.inner.OnThreadStart(tid, parent)
}

// OnSpin implements engine.Strategy.
func (r *Recorder) OnSpin(tid memmodel.ThreadID) { r.inner.OnSpin(tid) }

// Player replays a trace. Decisions beyond the trace (which can only
// happen if the program changed) fall back to the first alternative.
type Player struct {
	trace   *Trace
	tPos    int
	rPos    int
	Derails int // decisions that could not follow the trace
}

// NewPlayer builds a strategy replaying the trace.
func NewPlayer(trace *Trace) *Player { return &Player{trace: trace} }

// Name implements engine.Strategy.
func (p *Player) Name() string { return "replay" }

// Begin implements engine.Strategy.
func (p *Player) Begin(engine.ProgramInfo, *rand.Rand) { p.tPos, p.rPos, p.Derails = 0, 0, 0 }

// NextThread implements engine.Strategy.
func (p *Player) NextThread(enabled []engine.PendingOp) memmodel.ThreadID {
	if p.tPos < len(p.trace.Threads) {
		want := p.trace.Threads[p.tPos]
		p.tPos++
		for _, op := range enabled {
			if op.TID == want {
				return want
			}
		}
		p.Derails++
	}
	return enabled[0].TID
}

// PickRead implements engine.Strategy.
func (p *Player) PickRead(rc engine.ReadContext) int {
	if p.rPos < len(p.trace.Reads) {
		i := p.trace.Reads[p.rPos]
		p.rPos++
		if i < len(rc.Candidates) {
			return i
		}
		p.Derails++
	}
	return 0
}

// OnEvent implements engine.Strategy.
func (p *Player) OnEvent(*memmodel.Event) {}

// OnThreadStart implements engine.Strategy.
func (p *Player) OnThreadStart(_, _ memmodel.ThreadID) {}

// OnSpin implements engine.Strategy.
func (p *Player) OnSpin(memmodel.ThreadID) {}

// FindAndRecord searches for an execution that detect flags, recording
// decisions; it returns the trace of the first failing execution.
func FindAndRecord(prog *engine.Program, newStrategy func() engine.Strategy,
	detect func(*engine.Outcome) bool, rounds int, seed int64, opts engine.Options) (*Trace, *engine.Outcome, bool) {
	for i := 0; i < rounds; i++ {
		rec := NewRecorder(newStrategy())
		o := engine.Run(prog, rec, seed+int64(i), opts)
		if detect(o) {
			return rec.Trace(), o, true
		}
	}
	return nil, nil, false
}
