package replay

import (
	"testing"

	"pctwm/internal/benchprog"
	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// TestRecordAndReplayReproducesBug: find a bug with a random strategy,
// then replay the trace and get the identical outcome with zero derails.
func TestRecordAndReplayReproducesBug(t *testing.T) {
	for _, name := range []string{"dekker", "rwlock", "seqlock"} {
		b, err := benchprog.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		prog := b.Program(0)
		opts := b.Options()
		trace, found, ok := FindAndRecord(prog,
			func() engine.Strategy { return core.NewRandom() },
			b.Detect, 500, 3, opts)
		if !ok {
			t.Fatalf("%s: no failing execution in 500 rounds", name)
		}
		player := NewPlayer(trace)
		replayed := engine.Run(prog, player, 999 /* seed must not matter */, opts)
		if player.Derails != 0 {
			t.Fatalf("%s: replay derailed %d times", name, player.Derails)
		}
		if !b.Detect(replayed) {
			t.Fatalf("%s: replay lost the bug", name)
		}
		if replayed.Events != found.Events || replayed.Steps != found.Steps {
			t.Fatalf("%s: replay diverged: %d/%d events, %d/%d steps",
				name, replayed.Events, found.Events, replayed.Steps, found.Steps)
		}
	}
}

// TestReplayIsStrategyIndependent: a PCTWM-found bug replays without
// PCTWM.
func TestReplayIsStrategyIndependent(t *testing.T) {
	b, err := benchprog.ByName("mpmcqueue")
	if err != nil {
		t.Fatal(err)
	}
	prog := b.Program(0)
	opts := b.Options()
	trace, _, ok := FindAndRecord(prog,
		func() engine.Strategy { return core.NewPCTWM(2, 1, 10) },
		b.Detect, 200, 5, opts)
	if !ok {
		t.Fatal("no failing execution")
	}
	o := engine.Run(prog, NewPlayer(trace), 0, opts)
	if !b.Detect(o) {
		t.Fatal("replay lost the PCTWM-found bug")
	}
}

// TestTraceRoundTrip: traces survive JSON encoding.
func TestTraceRoundTrip(t *testing.T) {
	tr := &Trace{Threads: []memmodel.ThreadID{1, 2, 1}, Reads: []int{0, 2, 1}}
	data, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Threads) != 3 || len(back.Reads) != 3 || back.Reads[1] != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if _, err := Decode([]byte("{")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

// TestPlayerFallsBackGracefully: replaying against a different program
// derails but terminates.
func TestPlayerFallsBackGracefully(t *testing.T) {
	b, _ := benchprog.ByName("dekker")
	other, _ := benchprog.ByName("barrier")
	trace, _, ok := FindAndRecord(b.Program(0),
		func() engine.Strategy { return core.NewRandom() },
		b.Detect, 300, 1, b.Options())
	if !ok {
		t.Fatal("no failing dekker execution")
	}
	p := NewPlayer(trace)
	o := engine.Run(other.Program(0), p, 0, other.Options())
	if o.Deadlocked {
		t.Fatal("mismatched replay deadlocked")
	}
}
