package replay

import (
	"strings"
	"testing"

	"pctwm/internal/core"
	"pctwm/internal/engine"
)

// fpBundle records a failing lost-update trial with coverage on, so the
// bundle carries the original trial's behavior fingerprint.
func fpBundle(t *testing.T) *Bundle {
	t.Helper()
	prog := lostUpdateProgram()
	opts := engine.Options{Coverage: true}
	trace, found, ok := FindAndRecord(prog,
		func() engine.Strategy { return core.NewRandom() },
		lostUpdate, 500, 3, opts)
	if !ok {
		t.Fatal("no failing execution found")
	}
	if found.BehaviorFP == 0 {
		t.Fatal("coverage-armed run produced no behavior fingerprint")
	}
	b := NewBundle(prog, "random", 3, opts)
	b.Trace = trace
	b.Outcome = Summarize(found)
	b.Triage = TriageDeterministic
	b.BehaviorFP = found.BehaviorFP
	return b
}

// TestBundleBehaviorFPRoundTrip: a version-3 bundle preserves the
// behavior fingerprint through encode/decode, and Verify replays it with
// a matching fingerprint.
func TestBundleBehaviorFPRoundTrip(t *testing.T) {
	b := fpBundle(t)
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"version": 3`) && !strings.Contains(string(data), `"version":3`) {
		t.Fatalf("encoded bundle is not version 3:\n%s", data)
	}
	back, err := DecodeBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.BehaviorFP != b.BehaviorFP {
		t.Fatalf("round trip lost the fingerprint: %#x vs %#x", back.BehaviorFP, b.BehaviorFP)
	}
	res, err := back.Verify(lostUpdateProgram())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match {
		t.Fatalf("replay diverged: derails=%d diffs=%v", res.Derails, res.Diffs)
	}
}

// TestBundleBehaviorFPMismatchDiverges: a deterministic bundle whose
// recorded fingerprint disagrees with the replayed behavior is reported
// as diverged, naming the fingerprint pair.
func TestBundleBehaviorFPMismatchDiverges(t *testing.T) {
	b := fpBundle(t)
	b.BehaviorFP ^= 1
	res, err := b.Verify(lostUpdateProgram())
	if err != nil {
		t.Fatal(err)
	}
	if res.Match {
		t.Fatal("corrupted fingerprint still reproduced")
	}
	found := false
	for _, d := range res.Diffs {
		if strings.Contains(d, "behavior_fp") {
			found = true
		}
	}
	if !found {
		t.Fatalf("divergence does not name the fingerprint: %v", res.Diffs)
	}
}

// TestBundleBehaviorFPNondeterministicExempt: NONDETERMINISTIC bundles
// record the diverged triage re-run, so the original trial's fingerprint
// is not a replay obligation.
func TestBundleBehaviorFPNondeterministicExempt(t *testing.T) {
	b := fpBundle(t)
	b.BehaviorFP ^= 1
	b.Triage = TriageNondeterministic
	res, err := b.Verify(lostUpdateProgram())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diffs {
		if strings.Contains(d, "behavior_fp") {
			t.Fatalf("nondeterministic bundle held to the original fingerprint: %v", res.Diffs)
		}
	}
}

// TestBundleVersion2Upgrades: a version-2 bundle (pre-coverage) decodes
// cleanly with a zero fingerprint, which exempts it from the check.
func TestBundleVersion2Upgrades(t *testing.T) {
	data := []byte(`{"version": 2, "program": "dekker", "program_threads": 2,
		"program_locs": 3, "strategy": "random", "seed": 7, "model": "rc11",
		"options": {"model": "rc11"},
		"outcome": {"steps": 0, "events": 0, "comm_events": 0, "races": 0},
		"first_outcome": {"steps": 0, "events": 0, "comm_events": 0, "races": 0},
		"triage": "DETERMINISTIC", "written_at": "2026-01-01T00:00:00Z"}`)
	b, err := DecodeBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if b.BehaviorFP != 0 {
		t.Fatalf("v2 bundle decoded with fingerprint %#x, want 0", b.BehaviorFP)
	}
}
