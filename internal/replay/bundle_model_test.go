package replay

import (
	"strings"
	"testing"

	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// lostUpdateProgram builds a two-thread read-modify-write race whose lost
// update (final count 1 instead of 2) is reachable under every memory
// model — plain scheduling nondeterminism suffices — so bundle tests can
// find a failing trace on rc11, sc and tso alike.
func lostUpdateProgram() *engine.Program {
	p := engine.NewProgram("lost-update")
	c := p.Loc("count", 0)
	body := func(t *engine.Thread) {
		v := t.Load(c, memmodel.Relaxed)
		t.Store(c, v+1, memmodel.Relaxed)
	}
	p.AddThread(body)
	p.AddThread(body)
	return p
}

func lostUpdate(o *engine.Outcome) bool { return o.FinalValues["count"] < 2 }

// TestBundleModelRoundTrip: a bundle written under each backend records
// the model, survives encode/decode, and Verify replays it under the
// recorded semantics with a matching outcome.
func TestBundleModelRoundTrip(t *testing.T) {
	for _, model := range engine.Models() {
		model := model
		t.Run(model, func(t *testing.T) {
			prog := lostUpdateProgram()
			opts := engine.Options{Model: model}
			trace, found, ok := FindAndRecord(prog,
				func() engine.Strategy { return core.NewRandom() },
				lostUpdate, 500, 3, opts)
			if !ok {
				t.Fatalf("no failing execution under %s", model)
			}
			bundle := NewBundle(prog, "random", 3, opts)
			bundle.Trace = trace
			bundle.Outcome = Summarize(found)
			bundle.Triage = TriageDeterministic
			if bundle.Model != model {
				t.Fatalf("NewBundle recorded model %q, want %q", bundle.Model, model)
			}

			data, err := bundle.Encode()
			if err != nil {
				t.Fatal(err)
			}
			back, err := DecodeBundle(data)
			if err != nil {
				t.Fatal(err)
			}
			if back.Model != model || back.Options.Model != model {
				t.Fatalf("round trip lost the model: top=%q options=%q", back.Model, back.Options.Model)
			}
			res, err := back.Verify(lostUpdateProgram())
			if err != nil {
				t.Fatal(err)
			}
			if !res.Match {
				t.Fatalf("replay under %s diverged: derails=%d diffs=%v", model, res.Derails, res.Diffs)
			}
		})
	}
}

// TestBundleModelDefaults: an empty model in the writer's options is
// recorded as rc11 (the engine default).
func TestBundleModelDefaults(t *testing.T) {
	bundle := NewBundle(lostUpdateProgram(), "random", 1, engine.Options{})
	if bundle.Model != engine.ModelRC11 {
		t.Fatalf("default model = %q, want %q", bundle.Model, engine.ModelRC11)
	}
}

// TestBundleLegacyVersionUpgrades: a version-1 bundle (written before
// model selection existed) decodes as rc11.
func TestBundleLegacyVersionUpgrades(t *testing.T) {
	legacy := []byte(`{"version": 1, "program": "dekker", "program_threads": 2,
		"program_locs": 3, "strategy": "random", "seed": 7,
		"options": {}, "outcome": {"steps": 0, "events": 0, "comm_events": 0, "races": 0},
		"first_outcome": {"steps": 0, "events": 0, "comm_events": 0, "races": 0},
		"triage": "DETERMINISTIC", "written_at": "2026-01-01T00:00:00Z"}`)
	b, err := DecodeBundle(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if b.Model != engine.ModelRC11 || b.Options.Model != engine.ModelRC11 {
		t.Fatalf("legacy bundle model = %q / %q, want rc11", b.Model, b.Options.Model)
	}
}

// TestBundleUnknownModelRefused: a bundle recording a model this build
// does not implement fails to decode with a clear error — not a panic,
// and never a misleading divergence report from replaying under the
// wrong semantics.
func TestBundleUnknownModelRefused(t *testing.T) {
	data := []byte(`{"version": 2, "program": "dekker", "program_threads": 2,
		"program_locs": 3, "strategy": "random", "seed": 7, "model": "ppc",
		"options": {"model": "ppc"},
		"outcome": {"steps": 0, "events": 0, "comm_events": 0, "races": 0},
		"first_outcome": {"steps": 0, "events": 0, "comm_events": 0, "races": 0},
		"triage": "DETERMINISTIC", "written_at": "2026-01-01T00:00:00Z"}`)
	_, err := DecodeBundle(data)
	if err == nil {
		t.Fatal("unknown model accepted")
	}
	if !strings.Contains(err.Error(), `"ppc"`) || !strings.Contains(err.Error(), "rc11") {
		t.Fatalf("error should name the offending and supported models, got: %v", err)
	}
}

// TestBundleFutureVersionRefused: an unknown format version is refused
// with both readable versions named.
func TestBundleFutureVersionRefused(t *testing.T) {
	data := []byte(`{"version": 99, "program": "x"}`)
	_, err := DecodeBundle(data)
	if err == nil {
		t.Fatal("future version accepted")
	}
	if !strings.Contains(err.Error(), "99") {
		t.Fatalf("error should name the version, got: %v", err)
	}
}
