package replay

import (
	"testing"

	"pctwm/internal/benchprog"
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// FuzzDecode: arbitrary bytes never crash the trace decoder, and every
// successfully decoded trace can drive a replay to completion.
func FuzzDecode(f *testing.F) {
	f.Add([]byte(`{"threads":[1,2,1],"reads":[0,1]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"threads":null,"reads":[99999]}`))
	f.Add([]byte(`not json`))

	b, err := benchprog.ByName("dekker")
	if err != nil {
		f.Fatal(err)
	}
	prog := b.Program(0)
	opts := b.Options()
	opts.MaxSteps = 2000

	f.Fuzz(func(t *testing.T, data []byte) {
		trace, err := Decode(data)
		if err != nil {
			return
		}
		p := NewPlayer(trace)
		o := engine.Run(prog, p, 0, opts)
		if o.Deadlocked {
			t.Fatalf("replay of fuzzed trace deadlocked: %q", data)
		}
	})
}

// FuzzPlayerRobustness: random thread/read sequences always terminate.
func FuzzPlayerRobustness(f *testing.F) {
	f.Add(uint8(3), uint8(1), uint8(0))
	b, err := benchprog.ByName("mpmcqueue")
	if err != nil {
		f.Fatal(err)
	}
	prog := b.Program(0)
	opts := b.Options()
	opts.MaxSteps = 2000

	f.Fuzz(func(t *testing.T, a, bb, c uint8) {
		trace := &Trace{
			Threads: []memmodel.ThreadID{memmodel.ThreadID(a%4 + 1), memmodel.ThreadID(bb%4 + 1)},
			Reads:   []int{int(c % 8), int(a % 3)},
		}
		o := engine.Run(prog, NewPlayer(trace), 0, opts)
		if o.Deadlocked {
			t.Fatal("fuzzed replay deadlocked")
		}
	})
}
