// Package stats provides the small statistical toolbox the evaluation
// uses: Wilson score confidence intervals for bug hitting rates and basic
// sample aggregates.
package stats

import "math"

// Wilson returns the Wilson score interval (low, high), in percent, for
// observing hits successes in n trials at the given z (1.96 ≈ 95%
// confidence). It is well-behaved for rates near 0% and 100%, unlike the
// normal approximation.
func Wilson(hits, n int, z float64) (low, high float64) {
	if n == 0 {
		return 0, 100
	}
	p := float64(hits) / float64(n)
	nn := float64(n)
	z2 := z * z
	denom := 1 + z2/nn
	center := p + z2/(2*nn)
	margin := z * math.Sqrt(p*(1-p)/nn+z2/(4*nn*nn))
	low = 100 * (center - margin) / denom
	high = 100 * (center + margin) / denom
	if low < 0 {
		low = 0
	}
	if high > 100 {
		high = 100
	}
	return low, high
}

// Wilson95 is Wilson at 95% confidence.
func Wilson95(hits, n int) (low, high float64) { return Wilson(hits, n, 1.96) }

// Mean returns the arithmetic mean of the samples (0 for none).
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range samples {
		sum += s
	}
	return sum / float64(len(samples))
}

// StdDev returns the population standard deviation.
func StdDev(samples []float64) float64 {
	if len(samples) < 2 {
		return 0
	}
	m := Mean(samples)
	var sq float64
	for _, s := range samples {
		sq += (s - m) * (s - m)
	}
	return math.Sqrt(sq / float64(len(samples)))
}

// GeoMean returns the geometric mean of positive samples (used for
// normalized cross-benchmark summaries).
func GeoMean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var logSum float64
	for _, s := range samples {
		if s <= 0 {
			return 0
		}
		logSum += math.Log(s)
	}
	return math.Exp(logSum / float64(len(samples)))
}
