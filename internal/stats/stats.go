// Package stats provides the small statistical toolbox the evaluation
// uses: Wilson score confidence intervals for bug hitting rates and basic
// sample aggregates.
package stats

import "math"

// Wilson returns the Wilson score interval (low, high), in percent, for
// observing hits successes in n trials at the given z (1.96 ≈ 95%
// confidence). It is well-behaved for rates near 0% and 100%, unlike the
// normal approximation.
//
// Out-of-domain inputs are handled conservatively rather than producing
// NaN or inverted intervals: hits is clamped into [0, n], and a
// non-positive z (no confidence level at all) or non-positive n yields
// the vacuous interval (0, 100).
func Wilson(hits, n int, z float64) (low, high float64) {
	if n <= 0 || z <= 0 {
		return 0, 100
	}
	if hits < 0 {
		hits = 0
	}
	if hits > n {
		hits = n
	}
	p := float64(hits) / float64(n)
	nn := float64(n)
	z2 := z * z
	denom := 1 + z2/nn
	center := p + z2/(2*nn)
	margin := z * math.Sqrt(p*(1-p)/nn+z2/(4*nn*nn))
	low = 100 * (center - margin) / denom
	high = 100 * (center + margin) / denom
	if low < 0 {
		low = 0
	}
	if high > 100 {
		high = 100
	}
	return low, high
}

// Wilson95 is Wilson at 95% confidence.
func Wilson95(hits, n int) (low, high float64) { return Wilson(hits, n, 1.96) }

// Mean returns the arithmetic mean of the samples (0 for none).
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range samples {
		sum += s
	}
	return sum / float64(len(samples))
}

// StdDev returns the population standard deviation.
func StdDev(samples []float64) float64 {
	if len(samples) < 2 {
		return 0
	}
	m := Mean(samples)
	var sq float64
	for _, s := range samples {
		sq += (s - m) * (s - m)
	}
	return math.Sqrt(sq / float64(len(samples)))
}

// ChiSquareCDF returns P(X ≤ x) for a chi-square distribution with df
// degrees of freedom — the regularized lower incomplete gamma function
// P(df/2, x/2). Out-of-domain inputs (df < 1, x ≤ 0) return 0.
func ChiSquareCDF(x float64, df int) float64 {
	if df < 1 || x <= 0 || math.IsNaN(x) {
		return 0
	}
	return regIncGammaLower(float64(df)/2, x/2)
}

// ChiSquareP returns the upper-tail p-value P(X ≥ x) of a chi-square
// statistic with df degrees of freedom: the probability, under the null
// hypothesis, of a statistic at least as extreme as the observed one.
func ChiSquareP(x float64, df int) float64 {
	if df < 1 {
		return 1
	}
	return 1 - ChiSquareCDF(x, df)
}

// regIncGammaLower computes the regularized lower incomplete gamma
// function P(a, x) = γ(a, x)/Γ(a) for a > 0, x ≥ 0, via the standard
// series expansion (x < a+1) or continued fraction (x ≥ a+1); both
// converge to near machine precision for the chi-square range used here.
func regIncGammaLower(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 1e-14
		tiny    = 1e-300
	)
	if x <= 0 {
		return 0
	}
	lg, _ := math.Lgamma(a)
	if x < a+1 {
		// Series: P(a,x) = e^{-x} x^a / Γ(a) · Σ_{n≥0} x^n / (a(a+1)…(a+n)).
		ap := a
		sum := 1 / a
		term := sum
		for i := 0; i < maxIter; i++ {
			ap++
			term *= x / ap
			sum += term
			if math.Abs(term) < math.Abs(sum)*eps {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	}
	// Continued fraction for Q(a,x) (modified Lentz); P = 1 − Q.
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lg) * h
	return 1 - q
}

// ChiSquareStat returns Pearson's chi-square statistic Σ (obs−exp)²/exp
// over paired observed counts and expected counts. Bins with
// non-positive expectation are skipped (the caller is expected to pool
// them; see the validity rule of thumb exp ≥ 5 per bin).
func ChiSquareStat(obs []int, exp []float64) float64 {
	var x float64
	for i, e := range exp {
		if i >= len(obs) || e <= 0 {
			continue
		}
		d := float64(obs[i]) - e
		x += d * d / e
	}
	return x
}

// GStat returns the G-test (log-likelihood ratio) statistic
// 2·Σ obs·ln(obs/exp) over paired observed counts and expected counts.
// Empty observed bins contribute 0 (the limit of x·ln x at 0); bins with
// non-positive expectation are skipped. Under the null hypothesis G is
// asymptotically chi-square distributed with the same degrees of freedom
// as Pearson's statistic.
func GStat(obs []int, exp []float64) float64 {
	var g float64
	for i, e := range exp {
		if i >= len(obs) || e <= 0 || obs[i] == 0 {
			continue
		}
		o := float64(obs[i])
		g += o * math.Log(o/e)
	}
	return 2 * g
}

// GeoMean returns the geometric mean of positive samples (used for
// normalized cross-benchmark summaries).
func GeoMean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var logSum float64
	for _, s := range samples {
		if s <= 0 {
			return 0
		}
		logSum += math.Log(s)
	}
	return math.Exp(logSum / float64(len(samples)))
}
