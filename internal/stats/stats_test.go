package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWilsonBasics(t *testing.T) {
	low, high := Wilson95(50, 100)
	if low >= 50 || high <= 50 {
		t.Fatalf("interval [%v, %v] should bracket 50%%", low, high)
	}
	if high-low > 25 {
		t.Fatalf("interval too wide for n=100: [%v, %v]", low, high)
	}
	// Degenerate cases stay in range and never NaN.
	for _, c := range [][2]int{{0, 10}, {10, 10}, {0, 0}} {
		lo, hi := Wilson95(c[0], c[1])
		if math.IsNaN(lo) || math.IsNaN(hi) || lo < 0 || hi > 100 || lo > hi {
			t.Fatalf("Wilson(%d,%d) = [%v, %v]", c[0], c[1], lo, hi)
		}
	}
}

// TestWilsonProperties: property-based sanity — the interval contains the
// point estimate and shrinks with n.
func TestWilsonProperties(t *testing.T) {
	prop := func(hitsRaw, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		hits := int(hitsRaw) % (n + 1)
		lo, hi := Wilson95(hits, n)
		p := 100 * float64(hits) / float64(n)
		if lo > p+1e-9 || hi < p-1e-9 {
			return false
		}
		lo10, hi10 := Wilson95(hits*10, n*10)
		return hi10-lo10 <= hi-lo+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestWilsonEdgeCases pins the out-of-domain behavior: hits clamped into
// [0, n], non-positive z rejected with the vacuous interval, and tiny n
// well-behaved. Before the clamp, hits > n produced p > 1 and a NaN
// margin, and z < 0 produced an inverted interval (low > high).
func TestWilsonEdgeCases(t *testing.T) {
	cases := []struct {
		name              string
		hits, n           int
		z                 float64
		wantLow, wantHigh float64 // -1 = only check well-formedness
	}{
		{"hits above n clamps to n", 15, 10, 1.96, -1, -1},
		{"negative hits clamps to 0", -3, 10, 1.96, -1, -1},
		{"z zero rejected", 5, 10, 0, 0, 100},
		{"z negative rejected", 5, 10, -1.96, 0, 100},
		{"n zero", 0, 0, 1.96, 0, 100},
		{"n negative", 2, -5, 1.96, 0, 100},
		{"n one miss", 0, 1, 1.96, -1, -1},
		{"n one hit", 1, 1, 1.96, -1, -1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			lo, hi := Wilson(c.hits, c.n, c.z)
			if math.IsNaN(lo) || math.IsNaN(hi) || lo < 0 || hi > 100 || lo > hi {
				t.Fatalf("Wilson(%d,%d,%v) = [%v, %v]: malformed interval", c.hits, c.n, c.z, lo, hi)
			}
			if c.wantLow >= 0 && (lo != c.wantLow || hi != c.wantHigh) {
				t.Fatalf("Wilson(%d,%d,%v) = [%v, %v], want [%v, %v]", c.hits, c.n, c.z, lo, hi, c.wantLow, c.wantHigh)
			}
		})
	}
	// Clamped hits must agree with the in-range equivalent.
	lo1, hi1 := Wilson(15, 10, 1.96)
	lo2, hi2 := Wilson(10, 10, 1.96)
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatalf("clamped Wilson(15,10) = [%v, %v] != Wilson(10,10) = [%v, %v]", lo1, hi1, lo2, hi2)
	}
}

// TestChiSquareCDF checks the CDF against standard table quantiles: the
// 95th percentile of chi-square with df degrees of freedom.
func TestChiSquareCDF(t *testing.T) {
	quantiles95 := map[int]float64{
		1:  3.841,
		2:  5.991,
		5:  11.070,
		10: 18.307,
		23: 35.172,
	}
	for df, q := range quantiles95 {
		if got := ChiSquareCDF(q, df); math.Abs(got-0.95) > 5e-4 {
			t.Errorf("ChiSquareCDF(%v, %d) = %v, want ≈0.95", q, df, got)
		}
	}
	if got := ChiSquareCDF(0, 3); got != 0 {
		t.Errorf("CDF at 0 must be 0, got %v", got)
	}
	if got := ChiSquareCDF(1e6, 3); math.Abs(got-1) > 1e-9 {
		t.Errorf("CDF at +inf-ish must be 1, got %v", got)
	}
	if got := ChiSquareCDF(5, 0); got != 0 {
		t.Errorf("df < 1 must return 0, got %v", got)
	}
	if p := ChiSquareP(3.841, 1); math.Abs(p-0.05) > 5e-4 {
		t.Errorf("ChiSquareP(3.841, 1) = %v, want ≈0.05", p)
	}
	// Monotone in x, for a few dfs.
	for _, df := range []int{1, 4, 30} {
		prev := -1.0
		for x := 0.5; x < 60; x += 0.5 {
			v := ChiSquareCDF(x, df)
			if v < prev-1e-12 || v < 0 || v > 1 {
				t.Fatalf("CDF not monotone/in-range at df=%d x=%v: %v after %v", df, x, v, prev)
			}
			prev = v
		}
	}
}

// TestGAndChiSquareStats: both statistics are 0 for a perfect fit and
// agree asymptotically on a near-null sample; gross misfit yields large
// values.
func TestGAndChiSquareStats(t *testing.T) {
	obs := []int{25, 25, 25, 25}
	exp := []float64{25, 25, 25, 25}
	if g := GStat(obs, exp); g != 0 {
		t.Fatalf("GStat perfect fit = %v", g)
	}
	if x := ChiSquareStat(obs, exp); x != 0 {
		t.Fatalf("ChiSquareStat perfect fit = %v", x)
	}
	obs2 := []int{28, 22, 24, 26}
	g, x := GStat(obs2, exp), ChiSquareStat(obs2, exp)
	if g <= 0 || x <= 0 || math.Abs(g-x) > 0.1*x+0.1 {
		t.Fatalf("near-null sample: G=%v chi2=%v should be close and positive", g, x)
	}
	skew := []int{97, 1, 1, 1}
	if g := GStat(skew, exp); ChiSquareP(g, 3) > 1e-6 {
		t.Fatalf("gross misfit should be overwhelmingly significant, G=%v p=%v", g, ChiSquareP(g, 3))
	}
	// Empty observed bins contribute 0 to G, and non-positive
	// expectations are skipped by both.
	if g := GStat([]int{0, 100}, []float64{50, 50}); math.IsNaN(g) || math.IsInf(g, 0) {
		t.Fatalf("empty bin produced %v", g)
	}
	if x := ChiSquareStat([]int{10}, []float64{0}); x != 0 {
		t.Fatalf("zero expectation must be skipped, got %v", x)
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("degenerate aggregates")
	}
	if m := Mean([]float64{2, 4, 6}); m != 4 {
		t.Fatalf("mean %v", m)
	}
	if sd := StdDev([]float64{4, 6}); math.Abs(sd-1) > 1e-9 {
		t.Fatalf("stddev %v", sd)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Fatalf("geomean %v", g)
	}
	if GeoMean([]float64{1, 0}) != 0 || GeoMean(nil) != 0 {
		t.Fatal("degenerate geomean")
	}
}
