package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWilsonBasics(t *testing.T) {
	low, high := Wilson95(50, 100)
	if low >= 50 || high <= 50 {
		t.Fatalf("interval [%v, %v] should bracket 50%%", low, high)
	}
	if high-low > 25 {
		t.Fatalf("interval too wide for n=100: [%v, %v]", low, high)
	}
	// Degenerate cases stay in range and never NaN.
	for _, c := range [][2]int{{0, 10}, {10, 10}, {0, 0}} {
		lo, hi := Wilson95(c[0], c[1])
		if math.IsNaN(lo) || math.IsNaN(hi) || lo < 0 || hi > 100 || lo > hi {
			t.Fatalf("Wilson(%d,%d) = [%v, %v]", c[0], c[1], lo, hi)
		}
	}
}

// TestWilsonProperties: property-based sanity — the interval contains the
// point estimate and shrinks with n.
func TestWilsonProperties(t *testing.T) {
	prop := func(hitsRaw, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		hits := int(hitsRaw) % (n + 1)
		lo, hi := Wilson95(hits, n)
		p := 100 * float64(hits) / float64(n)
		if lo > p+1e-9 || hi < p-1e-9 {
			return false
		}
		lo10, hi10 := Wilson95(hits*10, n*10)
		return hi10-lo10 <= hi-lo+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("degenerate aggregates")
	}
	if m := Mean([]float64{2, 4, 6}); m != 4 {
		t.Fatalf("mean %v", m)
	}
	if sd := StdDev([]float64{4, 6}); math.Abs(sd-1) > 1e-9 {
		t.Fatalf("stddev %v", sd)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Fatalf("geomean %v", g)
	}
	if GeoMean([]float64{1, 0}) != 0 || GeoMean(nil) != 0 {
		t.Fatal("degenerate geomean")
	}
}
