package memmodel

import (
	"fmt"
	"sort"
	"strings"
)

// TS is a per-location modification-order timestamp. Writes to one
// location receive increasing timestamps 1, 2, 3, … in mo order; 0 means
// "before every write", i.e. the location is unknown to the view.
type TS int32

// View maps locations to the mo-maximal write timestamp observed for each
// location (Definition 1). A view is the operational representation of the
// paper's view(x) = maximal_mo(E_x): since mo is totally ordered per
// location and timestamps follow mo, one timestamp per location suffices.
//
// The zero value is the empty view (only initialization writes, which have
// timestamp 1 once a location exists; a missing entry means "no opinion",
// i.e. floor 0).
type View struct {
	ts map[Loc]TS
}

// NewView returns an empty view.
func NewView() View { return View{} }

// Get returns the timestamp the view holds for loc (0 if none).
func (v View) Get(loc Loc) TS { return v.ts[loc] }

// Set records timestamp t for loc if it advances the view. It implements
// the single-location case of ⊔mo: view(x) ← max(view(x), t).
func (v *View) Set(loc Loc, t TS) {
	if t <= v.ts[loc] {
		return
	}
	if v.ts == nil {
		v.ts = make(map[Loc]TS, 8)
	}
	v.ts[loc] = t
}

// Join merges other into v on all locations (Definition 1: combining views
// on all memory locations, ⊔mo(view1, view2)).
func (v *View) Join(other View) {
	if len(other.ts) == 0 {
		return
	}
	if v.ts == nil {
		v.ts = make(map[Loc]TS, len(other.ts))
	}
	for loc, t := range other.ts {
		if t > v.ts[loc] {
			v.ts[loc] = t
		}
	}
}

// JoinLoc merges only the entry for loc from other into v (the relaxed-read
// case of Algorithm 2 line 16: the thread view is updated only at e.loc).
func (v *View) JoinLoc(other View, loc Loc) {
	if t := other.ts[loc]; t > v.ts[loc] {
		v.Set(loc, t)
	}
}

// Clone returns an independent copy of the view. Clones are used as the
// "bag" a write event carries (Algorithm 2 line 26: e.bag ← t.view).
func (v View) Clone() View {
	if len(v.ts) == 0 {
		return View{}
	}
	c := make(map[Loc]TS, len(v.ts))
	for loc, t := range v.ts {
		c[loc] = t
	}
	return View{ts: c}
}

// Len returns the number of locations the view has an opinion on.
func (v View) Len() int { return len(v.ts) }

// Leq reports whether v ⊑ other pointwise (every entry of v is covered by
// other). The empty view is ⊑ everything.
func (v View) Leq(other View) bool {
	for loc, t := range v.ts {
		if t > other.ts[loc] {
			return false
		}
	}
	return true
}

// Equal reports pointwise equality of the non-zero entries.
func (v View) Equal(other View) bool {
	return v.Leq(other) && other.Leq(v)
}

// Locations returns the locations with non-zero entries in ascending order.
func (v View) Locations() []Loc {
	locs := make([]Loc, 0, len(v.ts))
	for loc := range v.ts {
		locs = append(locs, loc)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	return locs
}

// String renders the view as {(x1,ts), …} in location order, mirroring the
// paper's figures.
func (v View) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, loc := range v.Locations() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(x%d,%d)", loc, v.ts[loc])
	}
	b.WriteByte('}')
	return b.String()
}
