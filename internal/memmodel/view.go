package memmodel

import (
	"fmt"
	"strings"
)

// TS is a per-location modification-order timestamp. Writes to one
// location receive increasing timestamps 1, 2, 3, … in mo order; 0 means
// "before every write", i.e. the location is unknown to the view.
type TS int32

// View maps locations to the mo-maximal write timestamp observed for each
// location (Definition 1). A view is the operational representation of the
// paper's view(x) = maximal_mo(E_x): since mo is totally ordered per
// location and timestamps follow mo, one timestamp per location suffices.
//
// Views are stored densely: entry i holds the timestamp of Loc(i+1).
// Locations are small integers handed out contiguously by the engine, so a
// dense slice makes Join/Clone straight memory sweeps instead of map
// operations — the view machine of Algorithm 2 clones a view per write
// event, which made map-backed views the engine's dominant allocation.
//
// The zero value is the empty view (only initialization writes, which have
// timestamp 1 once a location exists; a missing entry means "no opinion",
// i.e. floor 0).
type View struct {
	ts []TS // ts[i] is the timestamp for Loc(i+1); trailing zeros implied
}

// NewView returns an empty view.
func NewView() View { return View{} }

// Get returns the timestamp the view holds for loc (0 if none).
func (v View) Get(loc Loc) TS {
	if i := int(loc) - 1; i >= 0 && i < len(v.ts) {
		return v.ts[i]
	}
	return 0
}

// grow extends the dense storage to cover n locations, zeroing any slack
// reclaimed from a previous larger use of the backing array.
func (v *View) grow(n int) {
	if n <= len(v.ts) {
		return
	}
	if n <= cap(v.ts) {
		old := len(v.ts)
		v.ts = v.ts[:n]
		for i := old; i < n; i++ {
			v.ts[i] = 0
		}
		return
	}
	nt := make([]TS, n)
	copy(nt, v.ts)
	v.ts = nt
}

// Set records timestamp t for loc if it advances the view. It implements
// the single-location case of ⊔mo: view(x) ← max(view(x), t).
func (v *View) Set(loc Loc, t TS) {
	i := int(loc) - 1
	if i < 0 {
		return
	}
	if i < len(v.ts) {
		if t > v.ts[i] {
			v.ts[i] = t
		}
		return
	}
	if t == 0 {
		return
	}
	v.grow(i + 1)
	v.ts[i] = t
}

// Join merges other into v on all locations (Definition 1: combining views
// on all memory locations, ⊔mo(view1, view2)).
func (v *View) Join(other View) {
	if len(other.ts) == 0 {
		return
	}
	v.grow(len(other.ts))
	for i, t := range other.ts {
		if t > v.ts[i] {
			v.ts[i] = t
		}
	}
}

// JoinLoc merges only the entry for loc from other into v (the relaxed-read
// case of Algorithm 2 line 16: the thread view is updated only at e.loc).
func (v *View) JoinLoc(other View, loc Loc) {
	if t := other.Get(loc); t > v.Get(loc) {
		v.Set(loc, t)
	}
}

// Clone returns an independent copy of the view. Clones are used as the
// "bag" a write event carries (Algorithm 2 line 26: e.bag ← t.view).
// Hot paths should prefer ViewArena.Clone, which recycles backing arrays.
func (v View) Clone() View {
	if len(v.ts) == 0 {
		return View{}
	}
	c := make([]TS, len(v.ts))
	copy(c, v.ts)
	return View{ts: c}
}

// CopyFrom makes v an exact copy of other, reusing v's backing array when
// it is large enough. It is the in-place counterpart of Clone for
// long-lived views (thread views, fence snapshots) that are overwritten
// many times per execution.
func (v *View) CopyFrom(other View) {
	n := len(other.ts)
	if cap(v.ts) < n {
		v.ts = make([]TS, n)
	} else {
		v.ts = v.ts[:n]
	}
	copy(v.ts, other.ts)
}

// Reset empties the view, keeping the backing array for reuse.
func (v *View) Reset() {
	v.ts = v.ts[:0]
}

// Len returns the number of locations the view has an opinion on.
func (v View) Len() int {
	n := 0
	for _, t := range v.ts {
		if t != 0 {
			n++
		}
	}
	return n
}

// Leq reports whether v ⊑ other pointwise (every entry of v is covered by
// other). The empty view is ⊑ everything.
func (v View) Leq(other View) bool {
	for i, t := range v.ts {
		if t == 0 {
			continue
		}
		if i >= len(other.ts) || t > other.ts[i] {
			return false
		}
	}
	return true
}

// Equal reports pointwise equality of the non-zero entries.
func (v View) Equal(other View) bool {
	return v.Leq(other) && other.Leq(v)
}

// Locations returns the locations with non-zero entries in ascending order.
func (v View) Locations() []Loc {
	locs := make([]Loc, 0, len(v.ts))
	for i, t := range v.ts {
		if t != 0 {
			locs = append(locs, Loc(i+1))
		}
	}
	return locs
}

// String renders the view as {(x1,ts), …} in location order, mirroring the
// paper's figures.
func (v View) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, loc := range v.Locations() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(x%d,%d)", loc, v.Get(loc))
	}
	b.WriteByte('}')
	return b.String()
}

// ViewArena recycles view backing arrays through a plain freelist. The
// engine clones a view ("bag") per write event; with an arena, a
// steady-state execution loop reuses the arrays released by the previous
// run instead of growing the heap — see Runner in internal/engine.
//
// The freelist is deliberately not synchronized: each engine owns one arena
// and its accesses are serialized by the scheduler baton. (An earlier
// sync.Pool-backed version allocated a slice-header box on every Release,
// which dominated the steady-state allocation profile.) The zero value is
// ready to use.
type ViewArena struct {
	free [][]TS
	// max is the rounded-up high-water capacity requested from this arena.
	// Every fresh allocation uses max, so once the largest view size of the
	// program has been seen, recycled arrays fit all later requests and the
	// freelist stops dropping undersized arrays (which previously caused a
	// steady trickle of allocations when small and large clones interleave).
	max int
}

// get returns a zero-length slice with capacity ≥ n, preferring recycled
// arrays. Fresh arrays are allocated at the arena's high-water capacity, so
// the freelist converges on arrays that fit every view of the program after
// a short warmup.
func (a *ViewArena) get(n int) []TS {
	if n > a.max {
		c := 8
		for c < n {
			c *= 2
		}
		a.max = c
	}
	for l := len(a.free); l > 0; l-- {
		s := a.free[l-1]
		a.free[l-1] = nil
		a.free = a.free[:l-1]
		if cap(s) >= n {
			return s
		}
	}
	c := a.max
	if c < 8 {
		c = 8
	}
	return make([]TS, 0, c)
}

// Clone returns an independent copy of v backed by a recycled array. The
// result always owns an arena array — even when v is empty — so a clone
// that is grown afterwards (bag.Set, Join) and later Released returns
// arena storage to the freelist. (An earlier version returned the zero
// View for empty sources; such clones grew plain make()d arrays that were
// then Released without ever having been taken from the arena, so the
// freelist gained one array per relaxed write and grew without bound.)
func (a *ViewArena) Clone(v View) View {
	n := len(v.ts)
	ts := a.get(n)[:n]
	copy(ts, v.ts)
	return View{ts: ts}
}

// New returns a zeroed view covering n locations, backed by a recycled
// array.
func (a *ViewArena) New(n int) View {
	ts := a.get(n)[:n]
	for i := range ts {
		ts[i] = 0
	}
	return View{ts: ts}
}

// Release returns v's backing array to the arena and empties v. Only the
// owner of the view's backing array (the holder of the last clone) may
// release it; released views must not be read again.
func (a *ViewArena) Release(v *View) {
	if cap(v.ts) > 0 {
		a.free = append(a.free, v.ts[:0])
	}
	v.ts = nil
}
