package memmodel

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOrderPredicates(t *testing.T) {
	cases := []struct {
		o                    Order
		atomic, acq, rel, sc bool
	}{
		{NonAtomic, false, false, false, false},
		{Relaxed, true, false, false, false},
		{Acquire, true, true, false, false},
		{Release, true, false, true, false},
		{AcqRel, true, true, true, false},
		{SeqCst, true, true, true, true},
	}
	for _, c := range cases {
		if c.o.IsAtomic() != c.atomic || c.o.IsAcquire() != c.acq ||
			c.o.IsRelease() != c.rel || c.o.IsSC() != c.sc {
			t.Errorf("%s: predicates (%v,%v,%v,%v), want (%v,%v,%v,%v)",
				c.o, c.o.IsAtomic(), c.o.IsAcquire(), c.o.IsRelease(), c.o.IsSC(),
				c.atomic, c.acq, c.rel, c.sc)
		}
		if !c.o.Valid() {
			t.Errorf("%s not valid", c.o)
		}
	}
	if Order(200).Valid() {
		t.Error("garbage order reported valid")
	}
}

func TestOrderStrings(t *testing.T) {
	want := map[Order]string{
		NonAtomic: "na", Relaxed: "rlx", Acquire: "acq",
		Release: "rel", AcqRel: "acq-rel", SeqCst: "sc",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), s)
		}
	}
}

func TestKindPredicates(t *testing.T) {
	if !KindRead.Reads() || !KindRMW.Reads() || KindWrite.Reads() {
		t.Error("Reads predicate wrong")
	}
	if !KindWrite.Writes() || !KindRMW.Writes() || KindRead.Writes() {
		t.Error("Writes predicate wrong")
	}
	for _, k := range []Kind{KindRead, KindWrite, KindRMW} {
		if !k.IsMemoryAccess() {
			t.Errorf("%s should be a memory access", k)
		}
	}
	for _, k := range []Kind{KindFence, KindSpawn, KindJoin, KindAssert} {
		if k.IsMemoryAccess() {
			t.Errorf("%s should not be a memory access", k)
		}
	}
}

// TestCommunicationEvents pins Definition 3: sinks are reads, RMWs and
// acquire-or-SC fences; plain stores (even SC ones) and release fences
// are sources, not sinks.
func TestCommunicationEvents(t *testing.T) {
	sink := func(k Kind, o Order) bool { return Label{Kind: k, Order: o}.IsCommunicationEvent() }
	src := func(k Kind, o Order) bool { return Label{Kind: k, Order: o}.IsCommunicationSource() }

	if !sink(KindRead, Relaxed) || !sink(KindRMW, Relaxed) || !sink(KindFence, Acquire) || !sink(KindFence, SeqCst) {
		t.Error("missing communication sinks")
	}
	if sink(KindWrite, SeqCst) || sink(KindWrite, Release) || sink(KindFence, Release) || sink(KindSpawn, Relaxed) {
		t.Error("spurious communication sinks")
	}
	if !src(KindWrite, Relaxed) || !src(KindRMW, Relaxed) || !src(KindFence, Release) || !src(KindRead, SeqCst) {
		t.Error("missing communication sources")
	}
	if src(KindRead, Relaxed) || src(KindFence, Acquire) {
		t.Error("spurious communication sources")
	}
}

func TestLabelString(t *testing.T) {
	l := Label{Kind: KindRMW, Order: AcqRel, Loc: 3, RVal: 1, WVal: 2}
	if s := l.String(); !strings.Contains(s, "U") || !strings.Contains(s, "acq-rel") {
		t.Errorf("label string %q", s)
	}
	e := Event{ID: 5, TID: 2, Index: 1, Label: l}
	if s := e.String(); !strings.Contains(s, "e5") || !strings.Contains(s, "t2") {
		t.Errorf("event string %q", s)
	}
}

func TestViewBasics(t *testing.T) {
	var v View
	if v.Get(1) != 0 || v.Len() != 0 {
		t.Fatal("zero view not empty")
	}
	v.Set(1, 5)
	v.Set(1, 3) // must not regress
	if v.Get(1) != 5 {
		t.Fatalf("Get(1) = %d, want 5", v.Get(1))
	}
	v.Set(2, 1)
	if got := v.String(); got != "{(x1,5), (x2,1)}" {
		t.Fatalf("String() = %q", got)
	}
	c := v.Clone()
	c.Set(1, 9)
	if v.Get(1) != 5 {
		t.Fatal("Clone aliases the original")
	}
	if !v.Leq(c) || c.Leq(v) {
		t.Fatal("Leq wrong")
	}
}

func TestViewJoinLoc(t *testing.T) {
	var a, b View
	b.Set(1, 4)
	b.Set(2, 7)
	a.JoinLoc(b, 1)
	if a.Get(1) != 4 || a.Get(2) != 0 {
		t.Fatalf("JoinLoc leaked entries: %s", a)
	}
}

// randomView builds a view from fuzz input.
func randomView(r *rand.Rand) View {
	var v View
	n := r.Intn(6)
	for i := 0; i < n; i++ {
		v.Set(Loc(1+r.Intn(5)), TS(1+r.Intn(20)))
	}
	return v
}

// TestViewJoinLattice checks the join-semilattice laws of ⊔mo with
// property-based testing: commutativity, associativity, idempotence, and
// that join is the least upper bound w.r.t. Leq.
func TestViewJoinLattice(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomView(r), randomView(r), randomView(r)

		ab := a.Clone()
		ab.Join(b)
		ba := b.Clone()
		ba.Join(a)
		if !ab.Equal(ba) {
			t.Log("join not commutative")
			return false
		}

		abc1 := ab.Clone()
		abc1.Join(c)
		bc := b.Clone()
		bc.Join(c)
		abc2 := a.Clone()
		abc2.Join(bc)
		if !abc1.Equal(abc2) {
			t.Log("join not associative")
			return false
		}

		aa := a.Clone()
		aa.Join(a)
		if !aa.Equal(a) {
			t.Log("join not idempotent")
			return false
		}

		if !a.Leq(ab) || !b.Leq(ab) {
			t.Log("join not an upper bound")
			return false
		}
		// Least: any upper bound u of a and b dominates a⊔b.
		u := ab.Clone()
		u.Set(5, 99)
		if !ab.Leq(u) {
			t.Log("join not least")
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestViewLeqPartialOrder checks reflexivity, antisymmetry and
// transitivity of Leq.
func TestViewLeqPartialOrder(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomView(r), randomView(r)
		if !a.Leq(a) {
			return false
		}
		if a.Leq(b) && b.Leq(a) && !a.Equal(b) {
			return false
		}
		c := a.Clone()
		c.Join(b)
		cc := c.Clone()
		cc.Set(1, 50)
		return a.Leq(c) && c.Leq(cc) && a.Leq(cc) // transitivity along a chain
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
