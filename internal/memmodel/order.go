// Package memmodel defines the vocabulary of the C11-style weak memory
// model used throughout this repository: memory orders, event kinds and
// labels, per-location timestamps, thread views, and the message "bags"
// that communicate views between threads (paper §4 and §5.1).
package memmodel

import "fmt"

// Order is a C11 memory order attached to an atomic access or fence, plus
// NonAtomic for plain (racy) accesses.
type Order uint8

const (
	// NonAtomic marks a plain, non-atomic access. Conflicting unordered
	// non-atomic accesses are data races.
	NonAtomic Order = iota
	// Relaxed is memory_order_relaxed: atomicity only, no synchronization.
	Relaxed
	// Acquire is memory_order_acquire (loads and fences).
	Acquire
	// Release is memory_order_release (stores and fences).
	Release
	// AcqRel is memory_order_acq_rel (RMWs and fences).
	AcqRel
	// SeqCst is memory_order_seq_cst.
	SeqCst
)

var orderNames = [...]string{
	NonAtomic: "na",
	Relaxed:   "rlx",
	Acquire:   "acq",
	Release:   "rel",
	AcqRel:    "acq-rel",
	SeqCst:    "sc",
}

// String returns the short C11 name of the order (rlx, acq, rel, ...).
func (o Order) String() string {
	if int(o) < len(orderNames) {
		return orderNames[o]
	}
	return fmt.Sprintf("order(%d)", uint8(o))
}

// IsAtomic reports whether the order denotes an atomic access.
func (o Order) IsAtomic() bool { return o != NonAtomic }

// IsAcquire reports whether an access with this order is an acquire access,
// i.e. its order is one of acq, acq-rel, sc (paper §2.1).
func (o Order) IsAcquire() bool { return o == Acquire || o == AcqRel || o == SeqCst }

// IsRelease reports whether an access with this order is a release access,
// i.e. its order is one of rel, acq-rel, sc (paper §2.1).
func (o Order) IsRelease() bool { return o == Release || o == AcqRel || o == SeqCst }

// IsSC reports whether the order is sequentially consistent.
func (o Order) IsSC() bool { return o == SeqCst }

// Valid reports whether o is one of the defined orders.
func (o Order) Valid() bool { return int(o) < len(orderNames) }
