package memmodel

import "fmt"

// Kind classifies an event resulting from a shared memory access or fence
// (paper §4: R, W, U, F, plus thread-management pseudo-events that carry
// synchronization in the engine).
type Kind uint8

const (
	// KindRead is a load (R).
	KindRead Kind = iota
	// KindWrite is a store (W).
	KindWrite
	// KindRMW is a successful atomic read-modify-write (U).
	KindRMW
	// KindFence is a memory fence (F).
	KindFence
	// KindSpawn is thread creation; synchronizes with the child's start.
	KindSpawn
	// KindJoin is thread join; the child's termination synchronizes with it.
	KindJoin
	// KindAssert is an assertion check; it is not a memory access.
	KindAssert
)

var kindNames = [...]string{
	KindRead:   "R",
	KindWrite:  "W",
	KindRMW:    "U",
	KindFence:  "F",
	KindSpawn:  "Spawn",
	KindJoin:   "Join",
	KindAssert: "Assert",
}

// String returns the paper's single-letter name for memory events.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsMemoryAccess reports whether the kind touches a memory location.
func (k Kind) IsMemoryAccess() bool {
	return k == KindRead || k == KindWrite || k == KindRMW
}

// Reads reports whether the event observes a value (R ∪ U, the paper's
// "R = R ∪ U").
func (k Kind) Reads() bool { return k == KindRead || k == KindRMW }

// Writes reports whether the event produces a value (W ∪ U, the paper's
// "W = W ∪ U").
func (k Kind) Writes() bool { return k == KindWrite || k == KindRMW }

// ThreadID identifies a thread in an execution. Thread 0 is the
// initialization pseudo-thread that performs the initial writes.
type ThreadID int32

// InitThread is the pseudo-thread owning initialization writes.
const InitThread ThreadID = 0

// EventID uniquely identifies an event within one execution.
type EventID int32

// NoEvent is the zero EventID sentinel (no event).
const NoEvent EventID = -1

// Loc identifies a shared memory location. Locations are allocated by the
// engine; the zero value is invalid.
type Loc int32

// NoLoc marks label fields that do not reference a location (fences:
// loc = rVal = wVal = ⊥, paper §4).
const NoLoc Loc = 0

// Value is the value stored at a location. Benchmarks encode pointers as
// the Loc of the pointed-to cell.
type Value int64

// Label describes an event: the operation kind, the memory order, the
// location, and the read/written values (paper §4, ⟨op, loc, rVal, wVal⟩).
type Label struct {
	Kind  Kind
	Order Order
	Loc   Loc
	RVal  Value
	WVal  Value
}

// IsCommunicationEvent implements the paper's isCommunicationEvent
// (Algorithm 1, lines 15-16): a communication event is a potential *sink*
// of a communication relation — an event that can receive updates from
// other threads (Definition 3: "a sink event communicates the updates of
// other threads to its local thread"). These are reads, RMWs, and
// acquire-or-stronger fences; SC reads/RMWs/fences are covered by those
// cases. A plain SC *store* is excluded: although Algorithm 1 writes the
// set as (SC ∪ R ∪ F⊒acq), the paper's own §3.3 example states that
// Program P1 — whose writes are all SC — has "only one possible
// communication sink, the load operation in the assertion", so the SC
// component is read as SC events that can observe others.
func (l Label) IsCommunicationEvent() bool {
	switch l.Kind {
	case KindRead, KindRMW:
		return true
	case KindFence:
		return l.Order.IsAcquire() || l.Order.IsSC()
	default:
		return false
	}
}

// IsCommunicationSource reports whether the event can be the source of a
// communication relation: an SC event, a write, or a release fence
// (Definition 3: dom(com)).
func (l Label) IsCommunicationSource() bool {
	switch l.Kind {
	case KindWrite, KindRMW:
		return true
	case KindFence:
		return l.Order.IsRelease() || l.Order.IsSC()
	case KindRead:
		return l.Order.IsSC()
	default:
		return false
	}
}

func (l Label) String() string {
	switch l.Kind {
	case KindRead:
		return fmt.Sprintf("R%s(x%d,%d)", subscript(l.Order), l.Loc, l.RVal)
	case KindWrite:
		return fmt.Sprintf("W%s(x%d,%d)", subscript(l.Order), l.Loc, l.WVal)
	case KindRMW:
		return fmt.Sprintf("U%s(x%d,%d->%d)", subscript(l.Order), l.Loc, l.RVal, l.WVal)
	case KindFence:
		return fmt.Sprintf("F%s", subscript(l.Order))
	default:
		return l.Kind.String()
	}
}

func subscript(o Order) string { return "[" + o.String() + "]" }

// Event is the tuple ⟨id, tid, lab⟩ of paper §4, extended with the
// per-thread program-order index (events of one thread are po-totally
// ordered by Index) and, for writes, the location timestamp (mo position).
type Event struct {
	ID    EventID
	TID   ThreadID
	Index int // po index within the thread, starting at 0
	Label Label
	// Stamp is the modification-order timestamp for W ∪ U events
	// (1-based append order per location); 0 otherwise.
	Stamp TS
	// ReadsFrom is the EventID of the write this R ∪ U event reads from;
	// NoEvent otherwise.
	ReadsFrom EventID
}

func (e Event) String() string {
	return fmt.Sprintf("e%d:t%d#%d:%s", e.ID, e.TID, e.Index, e.Label)
}
