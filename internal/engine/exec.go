package engine

import (
	"fmt"
	"strconv"

	"pctwm/internal/memmodel"
)

// apply grants thread t's parked request and applies the active memory
// model's semantics, returning the response the thread resumes with. The
// caller (a baton holder, see driveStep) wakes t with the response — or
// discards it when the run stopped. The request is consumed in place (no
// copy): t cannot repost until it is woken.
//
// Memory operations (loads, stores, RMWs, fences, allocations) dispatch
// to the model backend; thread management (spawn, join, assert, yield) is
// model-agnostic and handled here, with backend hooks where a model
// attaches semantics to thread lifecycle (TSO drains buffers on spawn and
// thread completion).
func (e *Engine) apply(t *Thread) response {
	req := &t.req
	var res response
	switch req.code {
	case opLoad:
		res.value = e.model.execRead(t, req.loc, req.order, false, 0)
	case opStore:
		e.model.execWrite(t, req.loc, req.value, req.order)
	case opCAS:
		res.value, res.ok = e.model.execCAS(t, req)
	case opFetchAdd:
		res.value = e.model.execRMW(t, req.loc, req.order, func(old memmodel.Value) memmodel.Value { return old + req.value })
	case opExchange:
		res.value = e.model.execRMW(t, req.loc, req.order, func(memmodel.Value) memmodel.Value { return req.value })
	case opFence:
		e.model.execFence(t, req.order)
	case opAlloc:
		res.loc = e.model.execAlloc(t, req)
	case opSpawn:
		res.spawned = e.execSpawn(t, t.ext.spawnFn)
	case opJoin:
		e.execJoin(t, req.joinTID)
	case opAssert:
		e.execAssert(t, req)
	case opYield:
		// No event; scheduling opportunity only.
	default:
		panic(fmt.Sprintf("pctwm: unknown opcode %d", req.code))
	}
	return res
}

// beginEvent ticks the thread's clock and builds the event skeleton.
func (e *Engine) beginEvent(t *Thread, lab memmodel.Label) (*memmodel.Event, int32) {
	clock := t.curVC.Tick(int(t.id))
	ev := e.newEvent(t.id, t.nextIndex, lab)
	t.nextIndex++
	return ev, clock
}

// finishEvent applies the model's post-event propagation (rc11: SC view
// extension), recording, counting and strategy notification — common tail
// of every memory event.
func (e *Engine) finishEvent(t *Thread, ev *memmodel.Event) {
	e.model.postEvent(t, ev)
	if ev.Label.Kind.IsMemoryAccess() || ev.Label.Kind == memmodel.KindFence {
		e.outcome.Events++
		if e.model.commEvent(ev.Label) {
			e.outcome.CommEvents++
		}
	}
	if e.tel != nil {
		e.tel.CountOp(ev.Label.Kind, ev.Label.Order)
	}
	if e.cov != nil {
		e.cov.Observe(ev)
	}
	e.record(ev)
	e.strat.OnEvent(ev)
}

func (e *Engine) loc(l memmodel.Loc) *location {
	i := int(l) - 1
	if i < 0 || i >= len(e.locs) {
		panic(fmt.Sprintf("pctwm: access to invalid location %d", l))
	}
	return &e.locs[i]
}

func (e *Engine) execSpawn(t *Thread, fn ThreadFunc) *ThreadHandle {
	e.model.onSpawn(t)
	ev, _ := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindSpawn})
	// The child is named lazily ("parent.id", see Thread.Name): no string
	// formatting on the spawn hot path.
	child := e.newThread("", t, t.cur, t.curVC)
	if e.rec != nil {
		e.rec.SpawnLinks = append(e.rec.SpawnLinks, SpawnLink{From: ev.ID, Child: child.id})
	}
	e.startThread(child, fn)
	e.strat.OnThreadStart(child.id, t.id)
	e.progress()
	e.finishEvent(t, ev)
	return &ThreadHandle{tid: child.id}
}

func (e *Engine) execJoin(t *Thread, child memmodel.ThreadID) {
	c := e.thread(child)
	if c == nil {
		panic(fmt.Sprintf("pctwm: join of unknown thread %d", child))
	}
	if !c.finished {
		// The scheduler only grants enabled threads; being granted here
		// means the child finished.
		panic("pctwm: join granted while child still running")
	}
	ev, _ := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindJoin})
	if e.rec != nil {
		e.rec.JoinLinks = append(e.rec.JoinLinks, JoinLink{Child: child, To: ev.ID})
	}
	// Child termination synchronizes with the join (the views are empty
	// and the join is a no-op under models that do not track them).
	t.cur.Join(c.cur)
	t.curVC.Join(c.curVC)
	e.finishEvent(t, ev)
}

func (e *Engine) execAssert(t *Thread, req *request) {
	ev, _ := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindAssert})
	e.progress()
	if !req.assertOK {
		// Benchmarks hit failing asserts on a large fraction of runs;
		// building the message by hand keeps fmt's interface machinery off
		// that path (same output as the previous Sprintf).
		buf := make([]byte, 0, 48+len(t.ext.assertMsg))
		buf = append(buf, "assertion failed in "...)
		buf = append(buf, t.Name()...)
		buf = append(buf, " (t"...)
		buf = strconv.AppendInt(buf, int64(t.id), 10)
		buf = append(buf, "): "...)
		buf = append(buf, t.ext.assertMsg...)
		e.reportBug(string(buf))
	}
	e.finishEvent(t, ev)
}

// progress resets the stall detector: something observable happened.
func (e *Engine) progress() { e.stepsSinceProgress = 0 }

func (e *Engine) raceCheck(t *Thread, ev memmodel.EventID, l memmodel.Loc, write, nonAtomic bool, clock int32) {
	if e.det == nil {
		return
	}
	if e.tel != nil {
		e.tel.RaceChecks++
	}
	e.det.OnAccess(t.id, ev, l, write, nonAtomic, clock, t.curVC)
}

// spinCheck implements the wait-loop heuristic: a thread repeatedly loading
// the same value from the same location is assumed livelocked and the
// strategy is notified so it can randomize (paper §6.2).
func (e *Engine) spinCheck(t *Thread, l memmodel.Loc, v memmodel.Value) {
	if t.spinLoc == l && t.spinVal == v {
		t.spinCount++
		if t.spinCount >= e.opts.SpinThreshold && t.spinCount%e.opts.SpinThreshold == 0 {
			e.strat.OnSpin(t.id)
		}
		return
	}
	t.spinLoc, t.spinVal, t.spinCount = l, v, 1
}

func (t *Thread) resetSpin() { t.spinLoc, t.spinVal, t.spinCount = 0, 0, 0 }
