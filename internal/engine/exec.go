package engine

import (
	"fmt"
	"strconv"

	"pctwm/internal/memmodel"
	"pctwm/internal/vclock"
)

// apply grants thread t's parked request and applies the memory-model
// semantics (the view machine of Algorithm 2), returning the response the
// thread resumes with. The caller (a baton holder, see driveStep) wakes t
// with the response — or discards it when the run stopped. The request is
// consumed in place (no copy): t cannot repost until it is woken.
func (e *Engine) apply(t *Thread) response {
	req := &t.req
	var res response
	switch req.code {
	case opLoad:
		res.value = e.execRead(t, req.loc, req.order, false, 0)
	case opStore:
		e.execWrite(t, req.loc, req.value, req.order)
	case opCAS:
		res.value, res.ok = e.execCAS(t, req)
	case opFetchAdd:
		res.value = e.execRMW(t, req.loc, req.order, func(old memmodel.Value) memmodel.Value { return old + req.value })
	case opExchange:
		res.value = e.execRMW(t, req.loc, req.order, func(memmodel.Value) memmodel.Value { return req.value })
	case opFence:
		e.execFence(t, req.order)
	case opAlloc:
		res.loc = e.execAlloc(t, req)
	case opSpawn:
		res.spawned = e.execSpawn(t, t.ext.spawnFn)
	case opJoin:
		e.execJoin(t, req.joinTID)
	case opAssert:
		e.execAssert(t, req)
	case opYield:
		// No event; scheduling opportunity only.
	default:
		panic(fmt.Sprintf("pctwm: unknown opcode %d", req.code))
	}
	return res
}

// beginEvent ticks the thread's clock and builds the event skeleton.
func (e *Engine) beginEvent(t *Thread, lab memmodel.Label) (*memmodel.Event, int32) {
	clock := t.curVC.Tick(int(t.id))
	ev := e.newEvent(t.id, t.nextIndex, lab)
	t.nextIndex++
	return ev, clock
}

// finishEvent applies SC view propagation, recording, counting and
// strategy notification — common tail of every memory event.
func (e *Engine) finishEvent(t *Thread, ev *memmodel.Event) {
	if ev.Label.Order.IsSC() && ev.Label.Kind != memmodel.KindAssert {
		// SC events extend the global SC view after their own update
		// (Algorithm 2, getSC: successors observe this event's bag).
		e.scView.Join(t.cur)
		e.scVC.Join(t.curVC)
	}
	if ev.Label.Kind.IsMemoryAccess() || ev.Label.Kind == memmodel.KindFence {
		e.outcome.Events++
		if ev.Label.IsCommunicationEvent() {
			e.outcome.CommEvents++
		}
	}
	if e.tel != nil {
		e.tel.CountOp(ev.Label.Kind, ev.Label.Order)
	}
	e.record(ev)
	e.strat.OnEvent(ev)
}

// acquireSCView is called before an SC event touches memory: the event
// observes the views of all SC-predecessors.
func (e *Engine) acquireSCView(t *Thread) {
	t.cur.Join(e.scView)
	t.curVC.Join(e.scVC)
}

func (e *Engine) loc(l memmodel.Loc) *location {
	i := int(l) - 1
	if i < 0 || i >= len(e.locs) {
		panic(fmt.Sprintf("pctwm: access to invalid location %d", l))
	}
	return &e.locs[i]
}

// readCandidates returns the coherence-legal writes for a read of l by t in
// ascending modification order. The coherence scan starts from the
// reader's view timestamp (the thread's floor for l), not the head of the
// modification order, so its cost is O(|candidates|) rather than O(|mo|).
// Without filtering, Candidates[0] is the thread-local view write
// (readLocal). When excludeVal is set, writes carrying excluded are
// filtered out (the failure path of a strong CAS).
//
// Aliasing contract: the returned slice aliases the engine-owned scratch
// buffer e.candBuf. It is valid only until the next readCandidates call;
// execRead/execCAS/execReadOf therefore fully consume one candidate set
// (strategy PickRead + message lookup) before issuing the next candidate
// query, and strategies must not retain ReadContext.Candidates across
// PickRead calls.
func (e *Engine) readCandidates(t *Thread, l memmodel.Loc, excludeVal bool, excluded memmodel.Value) []ReadCandidate {
	loc := e.loc(l)
	floor := t.cur.Get(l)
	if floor == 0 {
		floor = 1
	}
	msgs := loc.mo[floor-1:]
	cands := e.candBuf[:0]
	for i := range msgs {
		m := &msgs[i]
		if excludeVal && m.val == excluded {
			continue
		}
		cands = append(cands, ReadCandidate{Stamp: m.stamp, Value: m.val, Writer: m.event, WriterTID: m.tid})
	}
	e.candBuf = cands
	if e.tel != nil {
		// Sole materialization point of candidate bags: observing here
		// counts each read's readGlobal search space exactly once.
		e.tel.RFCandidates.Observe(uint64(len(cands)))
	}
	return cands
}

// execRead performs a load. When casFail is true the read is the failure
// path of a CAS and the candidate set excludes values equal to expected.
func (e *Engine) execRead(t *Thread, l memmodel.Loc, ord memmodel.Order, casFail bool, expected memmodel.Value) memmodel.Value {
	if ord.IsSC() {
		e.acquireSCView(t)
	}
	cands := e.readCandidates(t, l, casFail, expected)
	if len(cands) == 0 {
		panic(fmt.Sprintf("pctwm: no read candidates for %s at %s", t.Name(), e.locName(l)))
	}
	choice := 0
	if len(cands) > 1 {
		choice = e.strat.PickRead(ReadContext{
			TID: t.id, Index: t.nextIndex, Loc: l, Order: ord,
			RMWFailure: casFail, Candidates: cands,
		})
		if choice < 0 || choice >= len(cands) {
			panic(fmt.Sprintf("pctwm: strategy %s picked read candidate %d of %d", e.strat.Name(), choice, len(cands)))
		}
	}
	c := cands[choice]
	m := e.loc(l).byStamp(c.Stamp)

	ev, clock := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindRead, Order: ord, Loc: l, RVal: m.val})
	ev.ReadsFrom = m.event

	// View update (Algorithm 2 lines 9-19).
	if ord.IsAcquire() {
		// Synchronizing read: acquire the whole bag (line 14).
		t.cur.Join(m.bag)
		t.curVC.Join(m.relVC)
	} else {
		// Relaxed or non-atomic: only this location advances (line 16);
		// the bag is stashed for a later acquire fence (sink-side
		// (po;[F]) of the sw definition).
		t.cur.Set(l, m.stamp)
		t.acqStash.Join(m.bag)
		t.acqStashVC.Join(m.relVC)
	}

	e.raceCheck(t, ev.ID, l, false, ord == memmodel.NonAtomic, clock)
	e.spinCheck(t, l, m.val)
	e.finishEvent(t, ev)
	return m.val
}

// publishBag computes the view a new write at (l, ts) publishes. The
// returned view's backing array comes from the view arena and is owned by
// the message it is stored in.
func (t *Thread) publishBag(l memmodel.Loc, ts memmodel.TS, ord memmodel.Order, readMsg *message) memmodel.View {
	var bag memmodel.View
	if ord.IsRelease() {
		// Release write: publish the full thread view (sw source).
		bag = t.eng.viewArena.Clone(t.cur)
	} else {
		// Relaxed write after a release fence still carries the fence's
		// view (source-side ([F];po) of the sw definition).
		bag = t.eng.viewArena.Clone(t.relFence)
	}
	if readMsg != nil {
		// RMWs continue release sequences: rf+ chains through updates, so
		// the update's message carries the read message's bag.
		bag.Join(readMsg.bag)
	}
	bag.Set(l, ts)
	return bag
}

// publishVC computes the happens-before clock a new write publishes along
// sw; like publishBag, the backing array is arena-owned by the message.
func (t *Thread) publishVC(ord memmodel.Order) vclock.VC {
	if ord.IsRelease() {
		return t.eng.vcArena.Clone(t.curVC)
	}
	return t.eng.vcArena.Clone(t.relFenceVC)
}

func (e *Engine) execWrite(t *Thread, l memmodel.Loc, v memmodel.Value, ord memmodel.Order) {
	if ord.IsSC() {
		e.acquireSCView(t)
	}
	loc := e.loc(l)
	ev, clock := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindWrite, Order: ord, Loc: l, WVal: v})

	ts := memmodel.TS(len(loc.mo) + 1)
	bag := t.publishBag(l, ts, ord, nil)
	relVC := t.publishVC(ord)
	m := loc.appendSlot()
	m.val, m.tid, m.event = v, t.id, ev.ID
	m.bag, m.relVC = bag, relVC
	m.nonAtomic = ord == memmodel.NonAtomic
	ev.Stamp = ts
	t.cur.Set(l, ts) // Algorithm 2 lines 4-5

	t.resetSpin()
	e.progress()
	e.raceCheck(t, ev.ID, l, true, ord == memmodel.NonAtomic, clock)
	e.finishEvent(t, ev)
}

// execRMW performs an atomic update: it reads the mo-maximal write (the
// only read preserving atomicity with an append-only mo) and appends the
// transformed value immediately after it.
func (e *Engine) execRMW(t *Thread, l memmodel.Loc, ord memmodel.Order, f func(memmodel.Value) memmodel.Value) memmodel.Value {
	if ord.IsSC() {
		e.acquireSCView(t)
	}
	loc := e.loc(l)
	old := loc.maximal()
	newVal := f(old.val)
	ev, clock := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindRMW, Order: ord, Loc: l, RVal: old.val, WVal: newVal})
	ev.ReadsFrom = old.event

	// Read side of the update.
	if ord.IsAcquire() {
		t.cur.Join(old.bag)
		t.curVC.Join(old.relVC)
	} else {
		t.acqStash.Join(old.bag)
		t.acqStashVC.Join(old.relVC)
	}

	// Write side.
	ts := memmodel.TS(len(loc.mo) + 1)
	bag := t.publishBag(l, ts, ord, old)
	relVC := t.publishVC(ord)
	relVC.Join(old.relVC)
	m := loc.appendSlot()
	m.val, m.tid, m.event = newVal, t.id, ev.ID
	m.bag, m.relVC = bag, relVC
	ev.Stamp = ts
	t.cur.Set(l, ts)

	t.resetSpin()
	e.progress()
	e.raceCheck(t, ev.ID, l, true, false, clock)
	e.finishEvent(t, ev)
	return old.val
}

func (e *Engine) execCAS(t *Thread, req *request) (memmodel.Value, bool) {
	loc := e.loc(req.loc)
	if loc.maximal().val == req.expected {
		if req.weak {
			// Weak CAS: the strategy may direct the operation at a
			// non-maximal write, failing spuriously even though the
			// exchange could have succeeded.
			cands := e.readCandidates(t, req.loc, false, 0)
			if len(cands) > 1 {
				choice := e.strat.PickRead(ReadContext{
					TID: t.id, Index: t.nextIndex, Loc: req.loc,
					Order: req.failOrder, RMWFailure: true, Candidates: cands,
				})
				if choice < 0 || choice >= len(cands) {
					panic(fmt.Sprintf("pctwm: strategy %s picked read candidate %d of %d", e.strat.Name(), choice, len(cands)))
				}
				if choice != len(cands)-1 {
					v := e.execReadOf(t, req.loc, req.failOrder, cands[choice])
					return v, false
				}
			}
		}
		old := e.execRMW(t, req.loc, req.order, func(memmodel.Value) memmodel.Value { return req.value })
		return old, true
	}
	// Failure: a plain read that must observe a value ≠ expected (strong
	// CAS fails only on a genuine mismatch; a weak CAS behaves the same
	// once the maximal value differs). The mo-maximal write is always a
	// candidate, so the filtered set is never empty here.
	v := e.execRead(t, req.loc, req.failOrder, true, req.expected)
	return v, false
}

// execReadOf performs a read event pinned to a specific candidate (used
// by the weak-CAS spurious-failure path, which already consulted the
// strategy).
func (e *Engine) execReadOf(t *Thread, l memmodel.Loc, ord memmodel.Order, c ReadCandidate) memmodel.Value {
	if ord.IsSC() {
		e.acquireSCView(t)
	}
	m := e.loc(l).byStamp(c.Stamp)
	ev, clock := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindRead, Order: ord, Loc: l, RVal: m.val})
	ev.ReadsFrom = m.event
	if ord.IsAcquire() {
		t.cur.Join(m.bag)
		t.curVC.Join(m.relVC)
	} else {
		t.cur.Set(l, m.stamp)
		t.acqStash.Join(m.bag)
		t.acqStashVC.Join(m.relVC)
	}
	e.raceCheck(t, ev.ID, l, false, ord == memmodel.NonAtomic, clock)
	e.spinCheck(t, l, m.val)
	e.finishEvent(t, ev)
	return m.val
}

func (e *Engine) execFence(t *Thread, ord memmodel.Order) {
	if !ord.IsAcquire() && !ord.IsRelease() {
		panic(fmt.Sprintf("pctwm: fence with order %s", ord))
	}
	ev, _ := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindFence, Order: ord})
	if ord.IsAcquire() {
		// Claim the bags stashed by earlier relaxed reads (Algorithm 2
		// lines 20-23, getSWSet).
		t.cur.Join(t.acqStash)
		t.curVC.Join(t.acqStashVC)
	}
	if ord.IsSC() {
		e.acquireSCView(t)
	}
	if ord.IsRelease() {
		// Snapshot for later relaxed writes (lines 24-25: the thread's own
		// view does not change). CopyFrom reuses the snapshot's backing
		// array across fences.
		t.relFence.CopyFrom(t.cur)
		t.relFenceVC.CopyFrom(t.curVC)
	}
	e.finishEvent(t, ev)
}

func (e *Engine) execAlloc(t *Thread, req *request) memmodel.Loc {
	base := memmodel.Loc(len(e.locs) + 1)
	for i := 0; i < req.allocN; i++ {
		var init memmodel.Value
		if i < len(t.ext.allocInit) {
			init = t.ext.allocInit[i]
		}
		l := memmodel.Loc(len(e.locs) + 1)

		ev, clock := e.beginEvent(t, memmodel.Label{
			Kind: memmodel.KindWrite, Order: memmodel.NonAtomic, Loc: l, WVal: init,
		})
		ev.Stamp = 1
		bag := e.viewArena.New(int(l))
		bag.Set(l, 1)
		loc := e.pushLoc()
		loc.allocName = t.ext.allocName
		loc.allocBase = base
		loc.allocIdx = i
		loc.mo = append(loc.mo, message{
			stamp: 1, val: init, tid: t.id, event: ev.ID,
			bag: bag, relVC: e.vcArena.Clone(t.relFenceVC), nonAtomic: true,
		})
		t.cur.Set(l, 1)
		e.raceCheck(t, ev.ID, l, true, true, clock)
		e.finishEvent(t, ev)
	}
	e.progress()
	return base
}

func (e *Engine) execSpawn(t *Thread, fn ThreadFunc) *ThreadHandle {
	ev, _ := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindSpawn})
	// The child is named lazily ("parent.id", see Thread.Name): no string
	// formatting on the spawn hot path.
	child := e.newThread("", t, t.cur, t.curVC)
	if e.rec != nil {
		e.rec.SpawnLinks = append(e.rec.SpawnLinks, SpawnLink{From: ev.ID, Child: child.id})
	}
	e.startThread(child, fn)
	e.strat.OnThreadStart(child.id, t.id)
	e.progress()
	e.finishEvent(t, ev)
	return &ThreadHandle{tid: child.id}
}

func (e *Engine) execJoin(t *Thread, child memmodel.ThreadID) {
	c := e.thread(child)
	if c == nil {
		panic(fmt.Sprintf("pctwm: join of unknown thread %d", child))
	}
	if !c.finished {
		// The scheduler only grants enabled threads; being granted here
		// means the child finished.
		panic("pctwm: join granted while child still running")
	}
	ev, _ := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindJoin})
	if e.rec != nil {
		e.rec.JoinLinks = append(e.rec.JoinLinks, JoinLink{Child: child, To: ev.ID})
	}
	// Child termination synchronizes with the join.
	t.cur.Join(c.cur)
	t.curVC.Join(c.curVC)
	e.finishEvent(t, ev)
}

func (e *Engine) execAssert(t *Thread, req *request) {
	ev, _ := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindAssert})
	e.progress()
	if !req.assertOK {
		// Benchmarks hit failing asserts on a large fraction of runs;
		// building the message by hand keeps fmt's interface machinery off
		// that path (same output as the previous Sprintf).
		buf := make([]byte, 0, 48+len(t.ext.assertMsg))
		buf = append(buf, "assertion failed in "...)
		buf = append(buf, t.Name()...)
		buf = append(buf, " (t"...)
		buf = strconv.AppendInt(buf, int64(t.id), 10)
		buf = append(buf, "): "...)
		buf = append(buf, t.ext.assertMsg...)
		e.reportBug(string(buf))
	}
	e.finishEvent(t, ev)
}

// progress resets the stall detector: something observable happened.
func (e *Engine) progress() { e.stepsSinceProgress = 0 }

func (e *Engine) raceCheck(t *Thread, ev memmodel.EventID, l memmodel.Loc, write, nonAtomic bool, clock int32) {
	if e.det == nil {
		return
	}
	if e.tel != nil {
		e.tel.RaceChecks++
	}
	e.det.OnAccess(t.id, ev, l, write, nonAtomic, clock, t.curVC)
}

// spinCheck implements the wait-loop heuristic: a thread repeatedly loading
// the same value from the same location is assumed livelocked and the
// strategy is notified so it can randomize (paper §6.2).
func (e *Engine) spinCheck(t *Thread, l memmodel.Loc, v memmodel.Value) {
	if t.spinLoc == l && t.spinVal == v {
		t.spinCount++
		if t.spinCount >= e.opts.SpinThreshold && t.spinCount%e.opts.SpinThreshold == 0 {
			e.strat.OnSpin(t.id)
		}
		return
	}
	t.spinLoc, t.spinVal, t.spinCount = l, v, 1
}

func (t *Thread) resetSpin() { t.spinLoc, t.spinVal, t.spinCount = 0, 0, 0 }
