package engine

import (
	"pctwm/internal/memmodel"
)

// opCode enumerates the requests a thread can post to the engine. Every
// request parks the thread until the scheduler grants it, which serializes
// the execution exactly like C11Tester does.
type opCode uint8

const (
	opLoad opCode = iota
	opStore
	opCAS
	opFetchAdd
	opExchange
	opFence
	opAlloc
	opSpawn
	opJoin
	opAssert
	opYield
)

// request is an operation posted by a thread goroutine to the engine. It
// holds only plain-old-data fields so that the per-operation store
// `t.req = request{...}` compiles to a handful of scalar writes — no
// duffcopy, no GC write barriers on the hot path. The pointer-bearing
// parameters of the rare requests live in reqExt.
type request struct {
	code  opCode
	order memmodel.Order
	// failOrder is the failure memory order of a compare-and-swap.
	failOrder memmodel.Order
	weak      bool // CAS may fail spuriously
	assertOK  bool
	loc       memmodel.Loc
	value     memmodel.Value    // store value / CAS desired / fetch-add delta
	expected  memmodel.Value    // CAS expected
	joinTID   memmodel.ThreadID // join target (read by isEnabled)
	allocN    int
}

// reqExt carries the pointer-bearing parameters of the rare requests
// (alloc, spawn, assert). It is written only by those operations, keeping
// the hot-path request stores free of pointer slots.
type reqExt struct {
	allocName string
	allocInit []memmodel.Value
	spawnFn   ThreadFunc
	assertMsg string
}

// response carries the result of a granted request back to the thread.
type response struct {
	value   memmodel.Value // load result / CAS old value / fetch-add old value
	ok      bool           // CAS success
	loc     memmodel.Loc   // alloc base
	spawned *ThreadHandle
}

// PendingOp describes the operation a parked thread will perform next.
// Strategies inspect pending operations to make scheduling decisions;
// in particular PCTWM checks isCommunicationEvent on the pending label
// before the event executes (Algorithm 1, line 6).
type PendingOp struct {
	TID memmodel.ThreadID
	// Index is the po index the event will receive, making (TID, Index) a
	// stable identity for a not-yet-executed event.
	Index int
	Kind  memmodel.Kind
	Order memmodel.Order
	Loc   memmodel.Loc
	// Comm marks the pending event as a potential communication sink
	// under the active memory model (rc11: SC ∪ R ∪ F⊒acq, Definition 3;
	// sc/tso: reads and RMWs). The engine computes it from the backend at
	// post time, so strategies stay model-agnostic.
	Comm bool
}

// IsCommunicationEvent reports whether the pending event is a potential
// communication sink under the memory model the engine is running.
func (p PendingOp) IsCommunicationEvent() bool { return p.Comm }

func (r *request) pendingKind() memmodel.Kind {
	switch r.code {
	case opLoad:
		return memmodel.KindRead
	case opStore:
		return memmodel.KindWrite
	case opCAS, opFetchAdd, opExchange:
		return memmodel.KindRMW
	case opFence:
		return memmodel.KindFence
	case opSpawn:
		return memmodel.KindSpawn
	case opJoin:
		return memmodel.KindJoin
	default:
		return memmodel.KindAssert
	}
}
