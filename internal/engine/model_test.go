package engine

import (
	"math/rand"
	"testing"

	"pctwm/internal/memmodel"
	"pctwm/internal/telemetry"
)

// orderStrategy drives a scripted interleaving: NextThread follows tids
// (falling back to the first enabled op when the scripted thread is not
// runnable), and PickRead consumes picks per read with a choice
// (-1 = last candidate; exhausted script = candidate 0).
type orderStrategy struct {
	tids  []memmodel.ThreadID
	picks []int
	step  int
	pick  int
}

func (s *orderStrategy) Name() string                         { return "order" }
func (s *orderStrategy) Begin(ProgramInfo, *rand.Rand)        { s.step, s.pick = 0, 0 }
func (s *orderStrategy) OnThreadStart(_, _ memmodel.ThreadID) {}
func (s *orderStrategy) OnEvent(ev *memmodel.Event)           {}
func (s *orderStrategy) OnSpin(tid memmodel.ThreadID)         {}

func (s *orderStrategy) NextThread(en []PendingOp) memmodel.ThreadID {
	if s.step < len(s.tids) {
		want := s.tids[s.step]
		s.step++
		for _, op := range en {
			if op.TID == want {
				return want
			}
		}
	}
	return en[0].TID
}

func (s *orderStrategy) PickRead(rc ReadContext) int {
	p := 0
	if s.pick < len(s.picks) {
		p = s.picks[s.pick]
		s.pick++
	}
	if p < 0 || p >= len(rc.Candidates) {
		return len(rc.Candidates) - 1
	}
	return p
}

// sbProgram is store buffering: both threads store their flag, then read
// the other's. AddThread order gives the threads TIDs 1 and 2.
func sbProgram(ord memmodel.Order) *Program {
	p := NewProgram("sb-model")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	a := p.Loc("a", -1)
	b := p.Loc("b", -1)
	p.AddThread(func(th *Thread) {
		th.Store(x, 1, ord)
		th.Store(a, th.Load(y, memmodel.Relaxed), memmodel.NonAtomic)
	})
	p.AddThread(func(th *Thread) {
		th.Store(y, 1, ord)
		th.Store(b, th.Load(x, memmodel.Relaxed), memmodel.NonAtomic)
	})
	return p
}

// sbSchedule alternates the threads so both loads run while the other
// thread's store can still sit in its buffer (neither thread finishes —
// and drains — before the loads): the only way to reach a=b=0 on a
// machine with store buffers, and provably too late for it on one
// without.
var sbSchedule = []memmodel.ThreadID{1, 2, 1, 2, 1, 2}

// TestModelSBDifferential runs the same store-buffering interleaving
// under all three backends with memory-copy reads (pick 0): tso and rc11
// exhibit a=b=0, sc cannot.
func TestModelSBDifferential(t *testing.T) {
	for _, tc := range []struct {
		model string
		weak  bool
	}{
		{ModelSC, false},
		{ModelTSO, true},
		{ModelRC11, true},
	} {
		o := Run(sbProgram(memmodel.Relaxed), &orderStrategy{tids: sbSchedule}, 1, Options{Model: tc.model})
		gotWeak := o.FinalValues["a"] == 0 && o.FinalValues["b"] == 0
		if gotWeak != tc.weak {
			t.Errorf("%s: a=%d b=%d, want weak=%v", tc.model, o.FinalValues["a"], o.FinalValues["b"], tc.weak)
		}
	}
}

// TestTSOStoreForwarding: a load after the thread's own buffered store
// must return the buffered value (x86 forwarding is mandatory, the
// strategy is not consulted), while another thread still reads the stale
// shared copy.
func TestTSOStoreForwarding(t *testing.T) {
	p := NewProgram("forward")
	x := p.Loc("X", 0)
	a := p.Loc("a", -1)
	b := p.Loc("b", -1)
	p.AddThread(func(th *Thread) {
		th.Store(x, 1, memmodel.Relaxed)
		th.Store(a, th.Load(x, memmodel.Relaxed), memmodel.NonAtomic)
		th.Load(x, memmodel.Relaxed) // keep the thread alive past T2's read
	})
	p.AddThread(func(th *Thread) {
		th.Store(b, th.Load(x, memmodel.Relaxed), memmodel.NonAtomic)
	})
	// T1 stores and reads back, then T2 reads while T1's store is still
	// buffered (T1 has not finished, so no drain has happened).
	s := &orderStrategy{tids: []memmodel.ThreadID{1, 1, 1, 2, 2}}
	o := Run(p, s, 1, Options{Model: ModelTSO})
	if o.FinalValues["a"] != 1 {
		t.Errorf("own read must forward from the store buffer: a=%d, want 1", o.FinalValues["a"])
	}
	if o.FinalValues["b"] != 0 {
		t.Errorf("remote read picked the shared copy: b=%d, want stale 0", o.FinalValues["b"])
	}
}

// TestTSOSCStoreDrains: mapping an SC store to MOV+MFENCE makes it
// immediately visible — the same schedule that hides a relaxed store
// cannot hide an SC one.
func TestTSOSCStoreDrains(t *testing.T) {
	for _, tc := range []struct {
		ord  memmodel.Order
		want memmodel.Value
	}{
		{memmodel.Relaxed, 0},
		{memmodel.SeqCst, 1},
	} {
		p := NewProgram("sc-store")
		x := p.Loc("X", 0)
		b := p.Loc("b", -1)
		p.AddThread(func(th *Thread) {
			th.Store(x, 1, tc.ord)
			th.Load(x, memmodel.Relaxed) // keep T1 unfinished during T2's read
		})
		p.AddThread(func(th *Thread) {
			th.Store(b, th.Load(x, memmodel.Relaxed), memmodel.NonAtomic)
		})
		s := &orderStrategy{tids: []memmodel.ThreadID{1, 2, 2}}
		o := Run(p, s, 1, Options{Model: ModelTSO})
		if o.FinalValues["b"] != tc.want {
			t.Errorf("%v store: b=%d, want %d", tc.ord, o.FinalValues["b"], tc.want)
		}
	}
}

// TestTSODrainThroughFIFO: observing a remote buffered store commits its
// owner's FIFO prefix first, so message passing cannot deliver the flag
// without the payload.
func TestTSODrainThroughFIFO(t *testing.T) {
	p := NewProgram("mp-fifo")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	r1 := p.Loc("r1", -1)
	r2 := p.Loc("r2", -1)
	p.AddThread(func(th *Thread) {
		th.Store(x, 7, memmodel.Relaxed) // payload, buffered first
		th.Store(y, 1, memmodel.Relaxed) // flag, buffered second
		th.Load(x, memmodel.Relaxed) // keep T1 unfinished during T2's reads
	})
	p.AddThread(func(th *Thread) {
		th.Store(r1, th.Load(y, memmodel.Relaxed), memmodel.NonAtomic)
		th.Store(r2, th.Load(x, memmodel.Relaxed), memmodel.NonAtomic)
	})
	// T2's flag read picks the buffered remote store (candidate 1: memory
	// copy is candidate 0); the payload read then picks candidate 0, which
	// must already be 7 because the flag's drain-through flushed it.
	s := &orderStrategy{tids: []memmodel.ThreadID{1, 1, 2, 2, 2, 2}, picks: []int{-1, 0}}
	o := Run(p, s, 1, Options{Model: ModelTSO})
	if o.FinalValues["r1"] != 1 {
		t.Fatalf("flag read did not observe the buffered store: r1=%d", o.FinalValues["r1"])
	}
	if o.FinalValues["r2"] != 7 {
		t.Errorf("FIFO drain-through must commit the payload before the flag: r2=%d, want 7", o.FinalValues["r2"])
	}
}

// TestModelTelemetryTagging: the engine stamps the model on its counters,
// and Drains counts buffered-store flushes only under tso.
func TestModelTelemetryTagging(t *testing.T) {
	for _, model := range Models() {
		tel := &telemetry.EngineCounters{}
		Run(sbProgram(memmodel.Relaxed), &orderStrategy{tids: sbSchedule}, 1, Options{Model: model, Telemetry: tel})
		if tel.Model != model {
			t.Errorf("counters stamped %q, want %q", tel.Model, model)
		}
		if model == ModelTSO && tel.Drains == 0 {
			t.Errorf("tso run flushed no buffered stores")
		}
		if model != ModelTSO && tel.Drains != 0 {
			t.Errorf("%s run counted %d drains, want 0", model, tel.Drains)
		}
	}
}

// TestSCReadsAreSingular: under sc every load has exactly one candidate,
// so a strategy's PickRead is never consulted — a panicking picker proves
// it.
func TestSCReadsAreSingular(t *testing.T) {
	s := &panicPickStrategy{}
	o := Run(sbProgram(memmodel.Relaxed), s, 1, Options{Model: ModelSC})
	if o.FinalValues["a"] == 0 && o.FinalValues["b"] == 0 {
		t.Fatalf("sc reached the store-buffering outcome: %v", o.FinalValues)
	}
}

// panicPickStrategy runs threads in pending order and panics if PickRead
// is ever called.
type panicPickStrategy struct{}

func (panicPickStrategy) Name() string                         { return "panic-pick" }
func (panicPickStrategy) Begin(ProgramInfo, *rand.Rand)        {}
func (panicPickStrategy) OnThreadStart(_, _ memmodel.ThreadID) {}
func (panicPickStrategy) OnEvent(ev *memmodel.Event)           {}
func (panicPickStrategy) OnSpin(tid memmodel.ThreadID)         {}
func (panicPickStrategy) NextThread(en []PendingOp) memmodel.ThreadID {
	return en[0].TID
}
func (panicPickStrategy) PickRead(rc ReadContext) int {
	panic("sc backend consulted PickRead")
}

// TestTSORMWDrains: a CAS drains the issuing thread's buffer (LOCK
// prefix) and operates on shared memory.
func TestTSORMWDrains(t *testing.T) {
	p := NewProgram("rmw-drain")
	x := p.Loc("X", 0)
	c := p.Loc("C", 0)
	b := p.Loc("b", -1)
	p.AddThread(func(th *Thread) {
		th.Store(x, 5, memmodel.Relaxed) // buffered...
		th.CAS(c, 0, 1, memmodel.SeqCst, memmodel.Relaxed) // ...until the LOCK CMPXCHG drains it
		th.Load(x, memmodel.Relaxed)
	})
	p.AddThread(func(th *Thread) {
		th.Store(b, th.Load(x, memmodel.Relaxed), memmodel.NonAtomic)
	})
	// T2 reads the shared copy right after T1's CAS: the drain must have
	// committed x=5.
	s := &orderStrategy{tids: []memmodel.ThreadID{1, 1, 2, 2}}
	o := Run(p, s, 1, Options{Model: ModelTSO})
	if o.FinalValues["b"] != 5 {
		t.Errorf("CAS did not drain the store buffer: b=%d, want 5", o.FinalValues["b"])
	}
	if o.FinalValues["C"] != 1 {
		t.Errorf("CAS failed: C=%d, want 1", o.FinalValues["C"])
	}
}
