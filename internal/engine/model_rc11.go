package engine

import (
	"fmt"

	"pctwm/internal/memmodel"
	"pctwm/internal/vclock"
)

// rc11Backend is the default memory model: the paper's C11 view machine
// (Algorithm 2). Thread views, per-write message bags and release clocks
// implement the §4 semantics; the global SC view orders SC accesses. This
// is the pre-extraction engine code moved verbatim — for a fixed program,
// strategy and seed it produces bit-identical schedules, recordings and
// outcomes to the monolithic engine (see the rc11 golden-digest test in
// internal/harness).
type rc11Backend struct {
	e *Engine

	// global SC synchronization state (paper §4 (SC) axiom, operationally:
	// every SC event joins and then extends the global SC view).
	scView memmodel.View
	scVC   vclock.VC

	// initView/initVC are the view and clock produced by the
	// initialization writes; their backing arrays persist across runs.
	initView memmodel.View
	initVC   vclock.VC
}

func (b *rc11Backend) name() string { return ModelRC11 }

func (b *rc11Backend) resetRun() {
	b.scView.Reset()
	b.scVC.Reset()
}

// initStatic cold-builds the per-location init messages with their bags
// and release clocks, plus the view/clock root threads inherit.
func (b *rc11Backend) initStatic() {
	e := b.e
	b.initView.Reset()
	b.initVC.Reset()
	for i, d := range e.prog.locs {
		l := memmodel.Loc(i + 1)
		b.initVC.Tick(int(memmodel.InitThread))
		bag := e.viewArena.New(int(l))
		bag.Set(l, 1)
		loc := e.pushLoc()
		loc.name = d.name
		m := loc.appendSlot()
		m.val, m.tid, m.event = d.init, memmodel.InitThread, memmodel.EventID(i)
		m.bag, m.relVC = bag, e.vcArena.Clone(b.initVC)
		b.initView.Set(l, 1)
	}
}

func (b *rc11Backend) rootView() (memmodel.View, vclock.VC) {
	return b.initView, b.initVC
}

func (b *rc11Backend) releaseMessage(m *message) {
	b.e.viewArena.Release(&m.bag)
	b.e.vcArena.Release(&m.relVC)
}

// postEvent extends the global SC view after an SC event's own update
// (Algorithm 2, getSC: successors observe this event's bag).
func (b *rc11Backend) postEvent(t *Thread, ev *memmodel.Event) {
	if ev.Label.Order.IsSC() && ev.Label.Kind != memmodel.KindAssert {
		b.scView.Join(t.cur)
		b.scVC.Join(t.curVC)
	}
}

func (b *rc11Backend) onSpawn(t *Thread)        {}
func (b *rc11Backend) onThreadFinish(t *Thread) {}

func (b *rc11Backend) commSink(kind memmodel.Kind, ord memmodel.Order) bool {
	return memmodel.Label{Kind: kind, Order: ord}.IsCommunicationEvent()
}

func (b *rc11Backend) commEvent(lab memmodel.Label) bool {
	return lab.IsCommunicationEvent()
}

func (b *rc11Backend) finalValue(i int, loc *location) memmodel.Value {
	return loc.maximal().val
}

// acquireSCView is called before an SC event touches memory: the event
// observes the views of all SC-predecessors.
func (b *rc11Backend) acquireSCView(t *Thread) {
	t.cur.Join(b.scView)
	t.curVC.Join(b.scVC)
}

// readCandidates returns the coherence-legal writes for a read of l by t in
// ascending modification order. The coherence scan starts from the
// reader's view timestamp (the thread's floor for l), not the head of the
// modification order, so its cost is O(|candidates|) rather than O(|mo|).
// Without filtering, Candidates[0] is the thread-local view write
// (readLocal). When excludeVal is set, writes carrying excluded are
// filtered out (the failure path of a strong CAS).
//
// Aliasing contract: the returned slice aliases the engine-owned scratch
// buffer e.candBuf. It is valid only until the next readCandidates call;
// execRead/execCAS/execReadOf therefore fully consume one candidate set
// (strategy PickRead + message lookup) before issuing the next candidate
// query, and strategies must not retain ReadContext.Candidates across
// PickRead calls.
func (b *rc11Backend) readCandidates(t *Thread, l memmodel.Loc, excludeVal bool, excluded memmodel.Value) []ReadCandidate {
	e := b.e
	loc := e.loc(l)
	floor := t.cur.Get(l)
	if floor == 0 {
		floor = 1
	}
	msgs := loc.mo[floor-1:]
	cands := e.candBuf[:0]
	for i := range msgs {
		m := &msgs[i]
		if excludeVal && m.val == excluded {
			continue
		}
		cands = append(cands, ReadCandidate{Stamp: m.stamp, Value: m.val, Writer: m.event, WriterTID: m.tid})
	}
	e.candBuf = cands
	if e.tel != nil {
		// Sole materialization point of candidate bags: observing here
		// counts each read's readGlobal search space exactly once.
		e.tel.RFCandidates.Observe(uint64(len(cands)))
	}
	return cands
}

// execRead performs a load. When casFail is true the read is the failure
// path of a CAS and the candidate set excludes values equal to expected.
func (b *rc11Backend) execRead(t *Thread, l memmodel.Loc, ord memmodel.Order, casFail bool, expected memmodel.Value) memmodel.Value {
	e := b.e
	if ord.IsSC() {
		b.acquireSCView(t)
	}
	cands := b.readCandidates(t, l, casFail, expected)
	if len(cands) == 0 {
		panic(fmt.Sprintf("pctwm: no read candidates for %s at %s", t.Name(), e.locName(l)))
	}
	choice := 0
	if len(cands) > 1 {
		choice = e.strat.PickRead(ReadContext{
			TID: t.id, Index: t.nextIndex, Loc: l, Order: ord,
			RMWFailure: casFail, Candidates: cands,
		})
		if choice < 0 || choice >= len(cands) {
			panic(fmt.Sprintf("pctwm: strategy %s picked read candidate %d of %d", e.strat.Name(), choice, len(cands)))
		}
	}
	c := cands[choice]
	m := e.loc(l).byStamp(c.Stamp)

	ev, clock := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindRead, Order: ord, Loc: l, RVal: m.val})
	ev.ReadsFrom = m.event

	// View update (Algorithm 2 lines 9-19).
	if ord.IsAcquire() {
		// Synchronizing read: acquire the whole bag (line 14).
		t.cur.Join(m.bag)
		t.curVC.Join(m.relVC)
	} else {
		// Relaxed or non-atomic: only this location advances (line 16);
		// the bag is stashed for a later acquire fence (sink-side
		// (po;[F]) of the sw definition).
		t.cur.Set(l, m.stamp)
		t.acqStash.Join(m.bag)
		t.acqStashVC.Join(m.relVC)
	}

	e.raceCheck(t, ev.ID, l, false, ord == memmodel.NonAtomic, clock)
	e.spinCheck(t, l, m.val)
	e.finishEvent(t, ev)
	return m.val
}

// publishBag computes the view a new write at (l, ts) publishes. The
// returned view's backing array comes from the view arena and is owned by
// the message it is stored in.
func (t *Thread) publishBag(l memmodel.Loc, ts memmodel.TS, ord memmodel.Order, readMsg *message) memmodel.View {
	var bag memmodel.View
	if ord.IsRelease() {
		// Release write: publish the full thread view (sw source).
		bag = t.eng.viewArena.Clone(t.cur)
	} else {
		// Relaxed write after a release fence still carries the fence's
		// view (source-side ([F];po) of the sw definition).
		bag = t.eng.viewArena.Clone(t.relFence)
	}
	if readMsg != nil {
		// RMWs continue release sequences: rf+ chains through updates, so
		// the update's message carries the read message's bag.
		bag.Join(readMsg.bag)
	}
	bag.Set(l, ts)
	return bag
}

// publishVC computes the happens-before clock a new write publishes along
// sw; like publishBag, the backing array is arena-owned by the message.
func (t *Thread) publishVC(ord memmodel.Order) vclock.VC {
	if ord.IsRelease() {
		return t.eng.vcArena.Clone(t.curVC)
	}
	return t.eng.vcArena.Clone(t.relFenceVC)
}

func (b *rc11Backend) execWrite(t *Thread, l memmodel.Loc, v memmodel.Value, ord memmodel.Order) {
	e := b.e
	if ord.IsSC() {
		b.acquireSCView(t)
	}
	loc := e.loc(l)
	ev, clock := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindWrite, Order: ord, Loc: l, WVal: v})

	ts := memmodel.TS(len(loc.mo) + 1)
	bag := t.publishBag(l, ts, ord, nil)
	relVC := t.publishVC(ord)
	m := loc.appendSlot()
	m.val, m.tid, m.event = v, t.id, ev.ID
	m.bag, m.relVC = bag, relVC
	m.nonAtomic = ord == memmodel.NonAtomic
	ev.Stamp = ts
	t.cur.Set(l, ts) // Algorithm 2 lines 4-5

	t.resetSpin()
	e.progress()
	e.raceCheck(t, ev.ID, l, true, ord == memmodel.NonAtomic, clock)
	e.finishEvent(t, ev)
}

// execRMW performs an atomic update: it reads the mo-maximal write (the
// only read preserving atomicity with an append-only mo) and appends the
// transformed value immediately after it.
func (b *rc11Backend) execRMW(t *Thread, l memmodel.Loc, ord memmodel.Order, f func(memmodel.Value) memmodel.Value) memmodel.Value {
	e := b.e
	if ord.IsSC() {
		b.acquireSCView(t)
	}
	loc := e.loc(l)
	old := loc.maximal()
	newVal := f(old.val)
	ev, clock := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindRMW, Order: ord, Loc: l, RVal: old.val, WVal: newVal})
	ev.ReadsFrom = old.event

	// Read side of the update.
	if ord.IsAcquire() {
		t.cur.Join(old.bag)
		t.curVC.Join(old.relVC)
	} else {
		t.acqStash.Join(old.bag)
		t.acqStashVC.Join(old.relVC)
	}

	// Write side.
	ts := memmodel.TS(len(loc.mo) + 1)
	bag := t.publishBag(l, ts, ord, old)
	relVC := t.publishVC(ord)
	relVC.Join(old.relVC)
	m := loc.appendSlot()
	m.val, m.tid, m.event = newVal, t.id, ev.ID
	m.bag, m.relVC = bag, relVC
	ev.Stamp = ts
	t.cur.Set(l, ts)

	t.resetSpin()
	e.progress()
	e.raceCheck(t, ev.ID, l, true, false, clock)
	e.finishEvent(t, ev)
	return old.val
}

func (b *rc11Backend) execCAS(t *Thread, req *request) (memmodel.Value, bool) {
	e := b.e
	loc := e.loc(req.loc)
	if loc.maximal().val == req.expected {
		if req.weak {
			// Weak CAS: the strategy may direct the operation at a
			// non-maximal write, failing spuriously even though the
			// exchange could have succeeded.
			cands := b.readCandidates(t, req.loc, false, 0)
			if len(cands) > 1 {
				choice := e.strat.PickRead(ReadContext{
					TID: t.id, Index: t.nextIndex, Loc: req.loc,
					Order: req.failOrder, RMWFailure: true, Candidates: cands,
				})
				if choice < 0 || choice >= len(cands) {
					panic(fmt.Sprintf("pctwm: strategy %s picked read candidate %d of %d", e.strat.Name(), choice, len(cands)))
				}
				if choice != len(cands)-1 {
					v := b.execReadOf(t, req.loc, req.failOrder, cands[choice])
					return v, false
				}
			}
		}
		old := b.execRMW(t, req.loc, req.order, func(memmodel.Value) memmodel.Value { return req.value })
		return old, true
	}
	// Failure: a plain read that must observe a value ≠ expected (strong
	// CAS fails only on a genuine mismatch; a weak CAS behaves the same
	// once the maximal value differs). The mo-maximal write is always a
	// candidate, so the filtered set is never empty here.
	v := b.execRead(t, req.loc, req.failOrder, true, req.expected)
	return v, false
}

// execReadOf performs a read event pinned to a specific candidate (used
// by the weak-CAS spurious-failure path, which already consulted the
// strategy).
func (b *rc11Backend) execReadOf(t *Thread, l memmodel.Loc, ord memmodel.Order, c ReadCandidate) memmodel.Value {
	e := b.e
	if ord.IsSC() {
		b.acquireSCView(t)
	}
	m := e.loc(l).byStamp(c.Stamp)
	ev, clock := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindRead, Order: ord, Loc: l, RVal: m.val})
	ev.ReadsFrom = m.event
	if ord.IsAcquire() {
		t.cur.Join(m.bag)
		t.curVC.Join(m.relVC)
	} else {
		t.cur.Set(l, m.stamp)
		t.acqStash.Join(m.bag)
		t.acqStashVC.Join(m.relVC)
	}
	e.raceCheck(t, ev.ID, l, false, ord == memmodel.NonAtomic, clock)
	e.spinCheck(t, l, m.val)
	e.finishEvent(t, ev)
	return m.val
}

func (b *rc11Backend) execFence(t *Thread, ord memmodel.Order) {
	e := b.e
	if !ord.IsAcquire() && !ord.IsRelease() {
		panic(fmt.Sprintf("pctwm: fence with order %s", ord))
	}
	ev, _ := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindFence, Order: ord})
	if ord.IsAcquire() {
		// Claim the bags stashed by earlier relaxed reads (Algorithm 2
		// lines 20-23, getSWSet).
		t.cur.Join(t.acqStash)
		t.curVC.Join(t.acqStashVC)
	}
	if ord.IsSC() {
		b.acquireSCView(t)
	}
	if ord.IsRelease() {
		// Snapshot for later relaxed writes (lines 24-25: the thread's own
		// view does not change). CopyFrom reuses the snapshot's backing
		// array across fences.
		t.relFence.CopyFrom(t.cur)
		t.relFenceVC.CopyFrom(t.curVC)
	}
	e.finishEvent(t, ev)
}

func (b *rc11Backend) execAlloc(t *Thread, req *request) memmodel.Loc {
	e := b.e
	base := memmodel.Loc(len(e.locs) + 1)
	for i := 0; i < req.allocN; i++ {
		var init memmodel.Value
		if i < len(t.ext.allocInit) {
			init = t.ext.allocInit[i]
		}
		l := memmodel.Loc(len(e.locs) + 1)

		ev, clock := e.beginEvent(t, memmodel.Label{
			Kind: memmodel.KindWrite, Order: memmodel.NonAtomic, Loc: l, WVal: init,
		})
		ev.Stamp = 1
		bag := e.viewArena.New(int(l))
		bag.Set(l, 1)
		loc := e.pushLoc()
		loc.allocName = t.ext.allocName
		loc.allocBase = base
		loc.allocIdx = i
		loc.mo = append(loc.mo, message{
			stamp: 1, val: init, tid: t.id, event: ev.ID,
			bag: bag, relVC: e.vcArena.Clone(t.relFenceVC), nonAtomic: true,
		})
		t.cur.Set(l, 1)
		e.raceCheck(t, ev.ID, l, true, true, clock)
		e.finishEvent(t, ev)
	}
	e.progress()
	return base
}
