package engine

// Direct-handoff scheduler (the default; Options.Baton selects the legacy
// protocol in engine.go).
//
// The engine serializes simulated threads with a baton: exactly one
// goroutine — the host (runDirect) or one thread coroutine — touches
// engine state at a time. Threads run on coroutines (iter.Pull, backed by
// the runtime's coroswitch), so a handoff is a direct goroutine switch
// that never enters the Go scheduler: no run queue, no sudog, no timer
// check, no OS-thread wakeup. The yielding thread runs the strategy
// decision inline on its own stack (Strategy state is engine-serialized,
// so no locking is needed), publishes the grant in engine state and
// yields; the host trampoline resumes the granted thread:
//
//	yielding thread ──driveStep()──► e.granted = t2 ──yield──► host
//	                                                            │
//	                                              t2.resume() ──┘
//	                                                            ▼
//	                                                granted thread resumes
//
// Two coroswitches per handoff (~½ the cost of a channel park/wake pair),
// zero when the strategy grants the same thread again, and no standing
// scheduler goroutine during stepping. Thread coroutines are pooled across
// runs: when a run ends, each shell's coroutine parks on its between-runs
// yield, so the next run reuses the coroutine (and its already-grown
// stack) instead of paying goroutine creation per run. Runner.Close
// releases the pool.
//
// Invariant: strategy state (and all engine state) is only touched by the
// goroutine currently holding the baton. The baton moves exclusively
// through coroutine switches, so every state access is ordered by a
// happens-before edge (iter.Pull is race-instrumented) — the protocol is
// race-detector-clean.

import (
	"iter"
	"time"
)

// runDirect executes one run under the direct-handoff protocol. It is the
// host: it starts the root threads, performs the first scheduling
// decision, and then trampolines — it resumes whichever thread the last
// decision granted until a decision ends the run. Duration covers
// initialization + stepping; teardown (unwinding parked threads after
// aborted runs) is excluded so per-event numbers are comparable across
// protocols.
func (e *Engine) runDirect() {
	defer e.teardownDirect()
	start := time.Now()
	defer func() { e.outcome.Duration = time.Since(start) }()

	e.endRun = false
	e.startRoots()

	t, res, ended := e.driveStep()
	if ended {
		return
	}
	e.granted, e.grantRes = t, res
	for !e.endRun {
		e.granted.resume()
	}
}

// startThreadDirect hands fn to t's pooled coroutine (creating it on first
// use of the shell) and resumes it; the resume call returns when the
// thread parks on its first operation or finishes. The caller holds the
// baton; the new thread's first yield returns control here (iter.Pull
// yields return to the most recent resumer).
func (e *Engine) startThreadDirect(t *Thread, fn ThreadFunc) {
	t.started = true
	if !t.live {
		t.live = true
		t.resume, t.stop = pullResume(t.coroLoop)
	}
	e.startFn = fn
	t.resume()
	e.startFn = nil
}

// pullResume adapts iter.Pull's next to a plain resume function.
func pullResume(seq iter.Seq[struct{}]) (resume func(), stop func()) {
	next, stop := iter.Pull(seq)
	return func() { next() }, stop
}

// coroLoop is the body of a pooled thread coroutine: it serves one
// ThreadFunc per run and parks on its between-runs yield in between. The
// yield returns false only when Runner.Close stops the coroutine.
func (t *Thread) coroLoop(yield func(struct{}) bool) {
	t.yield = yield
	for {
		t.runBody(t.eng.startFn)
		if !yield(struct{}{}) {
			return
		}
	}
}

// runBody runs one ThreadFunc to completion, unwinding (killedError) or
// user panic, and performs the matching protocol epilogue.
func (t *Thread) runBody(fn ThreadFunc) {
	defer func() {
		r := recover()
		if r != nil {
			if _, ok := r.(killedError); ok {
				// Torn down mid-run: fall back to coroLoop, whose
				// between-runs yield returns control to the teardown loop.
				return
			}
		}
		t.finishDirect(r != nil, r)
	}()
	fn(t)
}

// finishDirect is the completion protocol of a thread whose ThreadFunc
// returned or panicked with a user error. It runs inside the coroutine;
// falling out parks the coroutine on its between-runs yield, handing
// control back to the resumer (the starter for never-parked threads, the
// host trampoline otherwise).
func (t *Thread) finishDirect(panicked bool, val any) {
	e := t.eng
	done := threadDone{tid: t.id, panicked: panicked, panicVal: val}
	if t.firstPark {
		// Finished without ever parking: the starter holds the baton and is
		// blocked in startThreadDirect's resume call. Account the completion
		// (we are serialized with the starter) and fall out.
		e.finishThread(t, done)
		return
	}
	// This coroutine was the last granted: it holds the baton and drives
	// the next scheduling decision before parking; the host resumes the
	// granted thread.
	e.finishThread(t, done)
	if e.stopped {
		e.endRun = true
		return
	}
	t2, res, ended := e.driveStep()
	if ended {
		e.endRun = true
		return
	}
	e.granted, e.grantRes = t2, res
}

// postDirect parks the thread on the request in t.req under the
// direct-handoff protocol and returns the granted response.
//
// The first park of a thread's life yields straight back to the starter
// (blocked in startThreadDirect). Every later park means this thread was
// the last one granted, so it still holds the baton: it runs the
// scheduling decision inline. If the strategy grants this thread again,
// the response returns without any coroutine switch; otherwise the grant
// is published in engine state and the thread yields to the host, which
// resumes the granted thread.
func (t *Thread) postDirect() response {
	e := t.eng
	if t.firstPark {
		t.firstPark = false
	} else {
		t2, res, ended := e.driveStep()
		if ended {
			e.endRun = true
		} else if t2 == t {
			return res
		} else {
			e.granted, e.grantRes = t2, res
		}
	}
	if !t.yield(struct{}{}) {
		// Runner.Close stopped the coroutine while parked mid-run. Close
		// only runs between runs (teardown unwinds mid-run threads first),
		// but iter.Pull surfaces a stop as a false yield: unwind like a
		// kill so user-code defers still run.
		panic(killedError{})
	}
	if e.killing {
		panic(killedError{})
	}
	return e.grantRes
}

// teardownDirect unwinds every thread coroutine still parked inside its
// ThreadFunc (aborted runs, deadlocks, StopOnBug) so no coroutine retains
// user-code frames across runs. Finished threads are already parked on
// their between-runs yield and need nothing. Each resume below returns
// when the killed thread has finished unwinding its user-code stack and
// parked between runs, so the run's pooled state is quiescent when
// releaseRun executes.
func (e *Engine) teardownDirect() {
	e.killing = true
	for _, t := range e.threads {
		if t.started && !t.finished {
			t.resume()
		}
	}
	e.killing = false
}

// Close releases the Runner's pooled thread coroutines. It must not be
// called concurrently with Run; after Close the Runner is dead (Run
// panics). Close is idempotent. Runners on the legacy baton path have no
// pooled coroutines, so Close only waits out their per-run goroutines.
func (r *Runner) Close() {
	e := &r.e
	if e.closed {
		return
	}
	e.closed = true
	shutdown := func(ts []*Thread) {
		for _, t := range ts {
			if t.live {
				t.live = false
				// stop resumes the coroutine parked on its between-runs
				// yield; the yield returns false and coroLoop returns.
				// iter.Pull's stop is synchronous: it returns only after
				// the coroutine has exited.
				t.stop()
			}
		}
	}
	shutdown(e.freeThreads)
	shutdown(e.threads) // defensive: empty between runs
	e.wg.Wait()         // legacy baton path's per-run goroutines
}
