package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"pctwm/internal/memmodel"
)

// coinStrategy schedules uniformly at random among the enabled threads
// and read candidates — just enough nondeterminism to drive a Runner
// through many distinct final states.
type coinStrategy struct{ rng *rand.Rand }

func (s *coinStrategy) Name() string                      { return "coin" }
func (s *coinStrategy) Begin(_ ProgramInfo, r *rand.Rand) { s.rng = r }
func (s *coinStrategy) NextThread(en []PendingOp) memmodel.ThreadID {
	return en[s.rng.Intn(len(en))].TID
}
func (s *coinStrategy) PickRead(rc ReadContext) int          { return s.rng.Intn(len(rc.Candidates)) }
func (s *coinStrategy) OnEvent(*memmodel.Event)              {}
func (s *coinStrategy) OnThreadStart(_, _ memmodel.ThreadID) {}
func (s *coinStrategy) OnSpin(memmodel.ThreadID)             {}

// fvManyProgram reaches up to 2^n distinct final states: two threads race
// to be the last writer of each of n locations, so every subset of
// "thread B wrote last" is a possible final value vector.
func fvManyProgram(n int) *Program {
	p := NewProgram("fv-many")
	locs := make([]memmodel.Loc, n)
	for i := range locs {
		locs[i] = p.Loc(fmt.Sprintf("L%d", i), 0)
	}
	mk := func(v memmodel.Value) ThreadFunc {
		return func(th *Thread) {
			for _, l := range locs {
				th.Store(l, v, memmodel.Relaxed)
			}
		}
	}
	p.AddThread(mk(1))
	p.AddThread(mk(2))
	return p
}

// TestFinalValuesCacheBounded: the per-Runner FinalValues interning cache
// must stay capped at maxFinalValueCache entries no matter how many
// distinct final states a campaign reaches — overflow states fall back to
// fresh maps instead of growing Runner-retained memory without limit.
func TestFinalValuesCacheBounded(t *testing.T) {
	const n = 8 // 2^8 = 256 reachable final states >> the cache cap
	p := fvManyProgram(n)
	r := NewRunner(p, Options{})
	defer r.Close()

	strat := &coinStrategy{}
	distinct := map[[n]memmodel.Value]bool{}
	for seed := 0; seed < 4000; seed++ {
		o := r.Run(strat, int64(seed))
		var key [n]memmodel.Value
		for i := 0; i < n; i++ {
			v, ok := o.FinalValues[fmt.Sprintf("L%d", i)]
			if !ok {
				t.Fatalf("seed %d: FinalValues missing L%d: %v", seed, i, o.FinalValues)
			}
			if v != 1 && v != 2 {
				t.Fatalf("seed %d: L%d = %d, want 1 or 2", seed, i, v)
			}
			key[i] = v
		}
		distinct[key] = true
		if got := len(r.e.fvCache); got > maxFinalValueCache {
			t.Fatalf("seed %d: fvCache grew to %d entries, cap is %d", seed, got, maxFinalValueCache)
		}
	}
	if len(distinct) <= maxFinalValueCache {
		t.Fatalf("test program reached only %d distinct final states; need > %d to exercise the cap",
			len(distinct), maxFinalValueCache)
	}
	if got := len(r.e.fvCache); got != maxFinalValueCache {
		t.Fatalf("fvCache holds %d entries after overflow, want exactly the cap %d", got, maxFinalValueCache)
	}
}

// TestFinalValuesHashShortCircuit: interning still returns the shared map
// for repeated final states (the hash must not break cache hits).
func TestFinalValuesHashShortCircuit(t *testing.T) {
	p := fvManyProgram(2)
	r := NewRunner(p, Options{})
	defer r.Close()
	seen := map[[2]memmodel.Value]map[string]memmodel.Value{}
	strat := &coinStrategy{}
	for seed := 0; seed < 200; seed++ {
		o := r.Run(strat, int64(seed))
		key := [2]memmodel.Value{o.FinalValues["L0"], o.FinalValues["L1"]}
		if prev, ok := seen[key]; ok {
			// Same final state → the interned map must be shared (pointer
			// equality via reflect on map headers is overkill; spot-check by
			// mutating nothing and comparing addresses through fmt).
			if fmt.Sprintf("%p", prev) != fmt.Sprintf("%p", o.FinalValues) {
				t.Fatalf("seed %d: final state %v rebuilt a fresh map instead of interning", seed, key)
			}
		} else {
			seen[key] = o.FinalValues
		}
	}
	if len(seen) < 2 {
		t.Fatalf("only %d distinct final states observed; test too weak", len(seen))
	}
}
