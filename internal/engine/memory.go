package engine

import (
	"fmt"

	"pctwm/internal/memmodel"
	"pctwm/internal/vclock"
)

// message is a write event living in a location's modification order. It
// carries the "bag" of the paper's Algorithm 2 — the view it communicates
// to readers that synchronize with it — plus the matching vector clock for
// happens-before tracking.
type message struct {
	stamp memmodel.TS
	val   memmodel.Value
	// writer identity
	tid   memmodel.ThreadID
	event memmodel.EventID
	// bag is the view the write publishes: the full thread view for
	// release writes, {loc: stamp} ∪ relFence view for relaxed writes,
	// additionally joined with the read-message bag for RMWs (release
	// sequences through rf+). Its backing array is owned by this message
	// and returned to the view arena when the run's state is released.
	bag memmodel.View
	// relVC is the happens-before clock the write publishes along sw. Its
	// backing array is owned by this message (see bag).
	relVC vclock.VC
	// nonAtomic marks plain (na) writes for the race detector.
	nonAtomic bool
}

// location is the runtime state of one shared memory cell: its full
// modification order. mo[i] has stamp i+1; mo is append-only, so
// modification order coincides with write execution order (as in
// C11Tester).
//
// Display names are lazy: statically declared locations carry their
// declared name, dynamically allocated ones only the Alloc call's
// parameters — the "name#base[idx]" string is formatted on demand
// (diagnostics, recordings), never on the allocation hot path.
type location struct {
	name string // static declaration name; "" for dynamic allocations
	// dynamic-allocation naming parameters (valid when name == "")
	allocName string
	allocBase memmodel.Loc
	allocIdx  int

	mo []message
}

// displayName renders the location's diagnostic name; self is the
// location's own handle (used for dynamic allocations).
func (l *location) displayName(self memmodel.Loc) string {
	if l.name != "" {
		return l.name
	}
	return fmt.Sprintf("%s#%d[%d]", l.allocName, l.allocBase, l.allocIdx)
}

func (l *location) maximal() *message { return &l.mo[len(l.mo)-1] }

// byStamp returns the message with the given stamp.
func (l *location) byStamp(ts memmodel.TS) *message { return &l.mo[ts-1] }

// appendSlot grows the modification order by one and returns the new slot,
// zeroed except for its stamp. Callers fill the remaining fields in place:
// message is large enough that constructing it in the caller and passing it
// by value costs two bulk copies per write on the hot path.
func (l *location) appendSlot() *message {
	n := len(l.mo)
	if n < cap(l.mo) {
		// Reused backing storage holds a stale message from a previous run
		// (its bag/relVC arrays were released); clear it before handing out.
		l.mo = l.mo[:n+1]
		l.mo[n] = message{}
	} else {
		l.mo = append(l.mo, message{})
	}
	m := &l.mo[n]
	m.stamp = memmodel.TS(n + 1)
	return m
}
