package engine

import (
	"fmt"

	"pctwm/internal/memmodel"
	"pctwm/internal/vclock"
)

// ThreadFunc is the body of a simulated thread. It runs in its own
// goroutine but is fully serialized by the engine: at most one thread makes
// progress at a time, and every shared-memory access goes through the
// Thread handle.
type ThreadFunc func(t *Thread)

// ThreadHandle identifies a spawned thread for Join.
type ThreadHandle struct {
	tid memmodel.ThreadID
}

// TID returns the thread id of the spawned thread.
func (h *ThreadHandle) TID() memmodel.ThreadID { return h.tid }

// errKilled is panicked inside thread goroutines when the engine tears an
// execution down early (bug found, step limit, ...).
type killedError struct{}

func (killedError) Error() string { return "pctwm: execution torn down" }

// Thread is a simulated thread's access point to the weak memory engine.
// All methods may only be called from within the ThreadFunc this handle was
// passed to.
type Thread struct {
	eng  *Engine
	id   memmodel.ThreadID
	name string
	// parent backs lazy naming of spawned threads: "parent.id" strings are
	// formatted on first use (diagnostics only), never on the spawn hot
	// path. Valid for the duration of one run.
	parent *Thread

	// req is the parked request (POD only); ext carries the
	// pointer-bearing parameters of rare requests; pend is the request's
	// strategy-facing summary, computed once at post time instead of on
	// every scheduling decision.
	req  request
	ext  reqExt
	pend PendingOp

	// Legacy baton protocol (Options.Baton): a parked thread blocks on
	// wake until a baton holder grants its pending request.
	wake chan response

	// Direct-handoff protocol (default): the thread body runs on a
	// coroutine (iter.Pull). resume switches into the coroutine, yield
	// switches back to the most recent resumer, stop terminates the
	// coroutine (Runner.Close) — all direct goroutine switches that never
	// enter the Go scheduler. live marks the shell's pooled coroutine
	// (parked on its between-runs yield, released by Runner.Close).
	resume func()
	stop   func()
	yield  func(struct{}) bool
	live   bool

	// firstPark marks the one park in a thread's life that must report to
	// the starter instead of driving the scheduler itself.
	firstPark bool

	// rc11 memory-model state (paper §5.1 / Algorithm 2); empty under
	// other backends
	cur      memmodel.View // thread view: latest observed write per location
	acqStash memmodel.View // bags stashed by relaxed reads, claimed by F⊒acq
	relFence memmodel.View // view snapshot at the last release fence

	// happens-before clocks mirroring the views (race detection)
	curVC      vclock.VC
	acqStashVC vclock.VC
	relFenceVC vclock.VC

	// tso memory-model state: the thread's FIFO store buffer (empty under
	// other backends)
	tsoBuf []tsoEntry

	// bookkeeping
	nextIndex int // po index of the next event
	finished  bool
	started   bool

	// spin detection
	spinLoc   memmodel.Loc
	spinVal   memmodel.Value
	spinCount int
}

// ID returns this thread's identifier (1-based; 0 is the init pseudo-thread).
func (t *Thread) ID() memmodel.ThreadID { return t.id }

// Name returns the thread's diagnostic name. Spawned threads are named
// lazily ("parent.id") so the spawn hot path never formats strings.
func (t *Thread) Name() string {
	if t.name == "" && t.parent != nil {
		t.name = fmt.Sprintf("%s.%d", t.parent.Name(), t.id)
	}
	return t.name
}

// recycle readies a thread shell from a previous run for reuse. The park
// channel, the persistent goroutine and the views'/clocks' backing arrays
// are retained.
func (t *Thread) recycle() {
	t.req = request{}
	t.ext = reqExt{}
	t.pend = PendingOp{}
	t.name = ""
	t.parent = nil
	t.cur.Reset()
	t.acqStash.Reset()
	t.relFence.Reset()
	t.curVC.Reset()
	t.acqStashVC.Reset()
	t.relFenceVC.Reset()
	t.tsoBuf = t.tsoBuf[:0]
	t.nextIndex = 0
	t.finished = false
	t.started = false
	t.resetSpin()
}

// submit parks the thread on the request stored in t.req and returns the
// engine's response, dispatching to the active scheduling protocol. It
// also caches the request's strategy-facing PendingOp summary, so
// enabledOps does not recompute it on every scheduling decision while the
// thread stays parked.
func (t *Thread) submit() response {
	kind := t.req.pendingKind()
	t.pend = PendingOp{
		TID:   t.id,
		Index: t.nextIndex,
		Kind:  kind,
		Order: t.req.order,
		Loc:   t.req.loc,
		Comm:  t.eng.model.commSink(kind, t.req.order),
	}
	if t.eng.opts.Baton {
		return t.postBaton()
	}
	return t.postDirect()
}

// postBaton is the legacy (Options.Baton) park/grant protocol.
//
// The first park of a thread's life signals the starter (which holds the
// baton and is blocked in waitForPark) and waits to be granted. Every
// later park means this thread was the last one granted, so it still holds
// the baton: it drives the next scheduling decision itself. If the
// strategy grants this thread again the request is applied without any
// goroutine switch; otherwise the baton (and the granted thread's
// response) is handed directly to the chosen thread.
func (t *Thread) postBaton() response {
	e := t.eng
	if t.firstPark {
		t.firstPark = false
		select {
		case e.parkCh <- t:
		case <-e.killed:
			panic(killedError{})
		}
	} else {
		t2, res, ended := e.driveStep()
		if ended {
			e.signalEnd()
			<-e.killed
			panic(killedError{})
		}
		if t2 == t {
			return res
		}
		select {
		case t2.wake <- res:
		case <-e.killed:
			panic(killedError{})
		}
	}
	select {
	case res := <-t.wake:
		return res
	case <-e.killed:
		panic(killedError{})
	}
}

// Load performs an atomic (or, with memmodel.NonAtomic, a plain) load of
// loc with the given memory order and returns the value read. Which write
// the load reads from is decided by the active testing strategy among the
// coherence-legal candidates.
func (t *Thread) Load(loc memmodel.Loc, ord memmodel.Order) memmodel.Value {
	t.req = request{code: opLoad, loc: loc, order: ord}
	return t.submit().value
}

// Store performs an atomic (or plain) store of v to loc.
func (t *Thread) Store(loc memmodel.Loc, v memmodel.Value, ord memmodel.Order) {
	t.req = request{code: opStore, loc: loc, value: v, order: ord}
	t.submit()
}

// CAS is a strong compare-and-swap: if the modification-order-maximal value
// of loc equals expected the swap succeeds (an RMW event with order ordSucc);
// otherwise it fails with a read event of order ordFail that may observe any
// coherence-legal stale value different from expected. Returns the value
// observed and whether the swap succeeded.
func (t *Thread) CAS(loc memmodel.Loc, expected, desired memmodel.Value, ordSucc, ordFail memmodel.Order) (memmodel.Value, bool) {
	t.req = request{
		code: opCAS, loc: loc, expected: expected, value: desired,
		order: ordSucc, failOrder: ordFail,
	}
	res := t.submit()
	return res.value, res.ok
}

// CASWeak is a weak compare-and-swap: like CAS, but it may fail
// spuriously — the strategy may direct the operation to observe any
// coherence-legal write (possibly one carrying the expected value) without
// performing the exchange, as C11's compare_exchange_weak allows. Retry
// loops must therefore tolerate ok == false with an unchanged value.
func (t *Thread) CASWeak(loc memmodel.Loc, expected, desired memmodel.Value, ordSucc, ordFail memmodel.Order) (memmodel.Value, bool) {
	t.req = request{
		code: opCAS, loc: loc, expected: expected, value: desired,
		order: ordSucc, failOrder: ordFail, weak: true,
	}
	res := t.submit()
	return res.value, res.ok
}

// FetchAdd atomically adds delta to loc and returns the previous value.
func (t *Thread) FetchAdd(loc memmodel.Loc, delta memmodel.Value, ord memmodel.Order) memmodel.Value {
	t.req = request{code: opFetchAdd, loc: loc, value: delta, order: ord}
	return t.submit().value
}

// Exchange atomically replaces the value of loc and returns the previous one.
func (t *Thread) Exchange(loc memmodel.Loc, v memmodel.Value, ord memmodel.Order) memmodel.Value {
	t.req = request{code: opExchange, loc: loc, value: v, order: ord}
	return t.submit().value
}

// Fence issues a memory fence with the given order (Acquire, Release,
// AcqRel or SeqCst).
func (t *Thread) Fence(ord memmodel.Order) {
	t.req = request{code: opFence, order: ord}
	t.submit()
}

// Alloc allocates n fresh contiguous shared locations initialized to init
// (missing entries default to zero) and returns the base location. The
// initializing writes are attributed to the allocating thread and are
// immediately part of its view, so freshly allocated memory behaves like
// C11 object construction before publication.
func (t *Thread) Alloc(name string, n int, init ...memmodel.Value) memmodel.Loc {
	if n <= 0 {
		panic(fmt.Sprintf("pctwm: Alloc(%q, %d): n must be positive", name, n))
	}
	t.req = request{code: opAlloc, allocN: n}
	t.ext.allocName = name
	t.ext.allocInit = init
	return t.submit().loc
}

// Spawn starts a new simulated thread running fn. The spawn synchronizes
// with the child's start (the child inherits the parent's view).
func (t *Thread) Spawn(fn ThreadFunc) *ThreadHandle {
	if fn == nil {
		panic("pctwm: Spawn(nil)")
	}
	t.req = request{code: opSpawn}
	t.ext.spawnFn = fn
	return t.submit().spawned
}

// Join blocks until the thread behind h terminates; the child's final view
// is merged into this thread's view (termination synchronizes with join).
func (t *Thread) Join(h *ThreadHandle) {
	if h == nil {
		panic("pctwm: Join(nil)")
	}
	t.req = request{code: opJoin, joinTID: h.tid}
	t.submit()
}

// Assert records a bug when cond is false. The execution continues unless
// the engine was configured with StopOnBug.
func (t *Thread) Assert(cond bool, format string, args ...any) {
	if !cond {
		if len(args) == 0 {
			t.ext.assertMsg = format
		} else {
			t.ext.assertMsg = fmt.Sprintf(format, args...)
		}
	}
	t.req = request{code: opAssert, assertOK: cond}
	t.submit()
}

// Yield relinquishes the processor without performing a memory event. It
// still passes through the scheduler, so strategies may deprioritize
// yielding threads; it does not create an event.
func (t *Thread) Yield() {
	t.req = request{code: opYield}
	t.submit()
}
