package engine

import (
	"fmt"

	"pctwm/internal/memmodel"
	"pctwm/internal/vclock"
)

// tsoBackend is x86-TSO (Owens, Sarkar, Sewell 2009): each thread owns a
// FIFO store buffer, loads forward from the youngest own buffered store
// (mandatory on x86), RMWs and SC accesses drain the issuing thread's
// buffer, and shared memory holds one copy per location. It absorbs the
// former internal/tso demo machine into the main engine, so every
// strategy, the harness, campaigns, telemetry, recording and replay work
// on TSO unchanged.
//
// Drains are not standalone scheduler actions (strategies would need a
// TSO-specific protocol); they are folded into the read-candidate choice:
//
//   - a load with no own buffered store to the location chooses among the
//     write currently in shared memory (Candidates[0] — the "no drain
//     happened" default, PCTWM's readLocal analogue) and the remote
//     buffered stores to that location in ascending stamp order;
//   - choosing a remote buffered store drains its owner's buffer FIFO
//     through the chosen entry first (exactly the machine steps that make
//     the store visible), so MP-style reorderings stay impossible;
//   - buffers also drain at forced points: own RMW/CAS (LOCK prefix), SC
//     store and SC fence (MFENCE), spawn (the child must observe the
//     parent's initialization), and thread completion (so final state
//     reflects every completed thread's stores).
//
// The modification order (location.mo) records stores in issue order and
// mem[l] holds the stamp of the write currently visible in shared memory.
// Since drains of different threads may interleave, the drain order — not
// the issue order — is the coherence order; mem simply tracks the last
// drain, which is exactly the operational x86-TSO machine.
type tsoBackend struct {
	e *Engine
	// mem[i] is the stamp of the write to Loc(i+1) currently in shared
	// memory (1 = the initialization write). Reset per run.
	mem []memmodel.TS
}

// tsoEntry is one pending store in a thread's FIFO store buffer.
type tsoEntry struct {
	loc   memmodel.Loc
	stamp memmodel.TS
}

func (b *tsoBackend) name() string { return ModelTSO }

func (b *tsoBackend) resetRun() {
	k := len(b.e.prog.locs)
	if cap(b.mem) < k {
		b.mem = make([]memmodel.TS, k)
	}
	b.mem = b.mem[:k]
	for i := range b.mem {
		b.mem[i] = 1
	}
}

func (b *tsoBackend) initStatic() {
	e := b.e
	for i, d := range e.prog.locs {
		loc := e.pushLoc()
		loc.name = d.name
		m := loc.appendSlot()
		m.val, m.tid, m.event = d.init, memmodel.InitThread, memmodel.EventID(i)
	}
}

func (b *tsoBackend) rootView() (memmodel.View, vclock.VC) {
	return memmodel.View{}, vclock.VC{}
}

func (b *tsoBackend) releaseMessage(m *message) {}

func (b *tsoBackend) postEvent(t *Thread, ev *memmodel.Event) {}

// onSpawn drains the parent's buffer: thread creation synchronizes, so
// the child must observe the parent's writes from shared memory.
func (b *tsoBackend) onSpawn(t *Thread) { b.drain(t) }

// onThreadFinish drains the completed thread's buffer: its stores become
// globally visible, and the final state includes them.
func (b *tsoBackend) onThreadFinish(t *Thread) { b.drain(t) }

// commSink: under TSO the weak behaviour is the delayed drain of store
// buffers, and a communication relation is a load (or RMW) observing
// another thread's store — so the sinks are the reads and RMWs,
// regardless of memory order (x86 has no per-access order choice).
func (b *tsoBackend) commSink(kind memmodel.Kind, ord memmodel.Order) bool {
	return kind.Reads()
}

func (b *tsoBackend) commEvent(lab memmodel.Label) bool {
	return lab.Kind.Reads()
}

func (b *tsoBackend) finalValue(i int, loc *location) memmodel.Value {
	return loc.byStamp(b.mem[i]).val
}

func (b *tsoBackend) setMem(l memmodel.Loc, ts memmodel.TS) {
	b.mem[int(l)-1] = ts
}

// drain flushes t's entire store buffer to shared memory in FIFO order.
func (b *tsoBackend) drain(t *Thread) {
	if len(t.tsoBuf) == 0 {
		return
	}
	for _, en := range t.tsoBuf {
		b.setMem(en.loc, en.stamp)
	}
	if b.e.tel != nil {
		b.e.tel.Drains += uint64(len(t.tsoBuf))
	}
	t.tsoBuf = t.tsoBuf[:0]
}

// drainThrough flushes owner's buffer FIFO up to and including the entry
// (l, stamp); later entries stay buffered.
func (b *tsoBackend) drainThrough(owner *Thread, l memmodel.Loc, stamp memmodel.TS) {
	n := 0
	for i, en := range owner.tsoBuf {
		if en.loc == l && en.stamp == stamp {
			n = i + 1
			break
		}
	}
	if n == 0 {
		panic(fmt.Sprintf("pctwm: tso drain-through: stamp %d for loc %d not buffered by t%d", stamp, l, owner.id))
	}
	for i := 0; i < n; i++ {
		b.setMem(owner.tsoBuf[i].loc, owner.tsoBuf[i].stamp)
	}
	if b.e.tel != nil {
		b.e.tel.Drains += uint64(n)
	}
	owner.tsoBuf = append(owner.tsoBuf[:0], owner.tsoBuf[n:]...)
}

// readCandidates collects the writes a load of l by t may observe when t
// has no own buffered store to l: the write currently in shared memory
// first, then every remote buffered store to l in ascending stamp order.
// The slice aliases e.candBuf (same contract as the rc11 backend).
func (b *tsoBackend) readCandidates(t *Thread, l memmodel.Loc, excludeVal bool, excluded memmodel.Value) []ReadCandidate {
	e := b.e
	loc := e.loc(l)
	cands := e.candBuf[:0]
	memStamp := b.mem[int(l)-1]
	if m := loc.byStamp(memStamp); !(excludeVal && m.val == excluded) {
		cands = append(cands, ReadCandidate{Stamp: memStamp, Value: m.val, Writer: m.event, WriterTID: m.tid})
	}
	head := len(cands)
	for _, other := range e.threads {
		if other == t {
			continue
		}
		for _, en := range other.tsoBuf {
			if en.loc != l {
				continue
			}
			m := loc.byStamp(en.stamp)
			if excludeVal && m.val == excluded {
				continue
			}
			// Insert in ascending stamp order behind the memory candidate
			// (each thread's own entries are already FIFO-ascending, so
			// this is a cheap merge across threads).
			j := len(cands)
			for j > head && cands[j-1].Stamp > en.stamp {
				j--
			}
			cands = append(cands, ReadCandidate{})
			copy(cands[j+1:], cands[j:])
			cands[j] = ReadCandidate{Stamp: en.stamp, Value: m.val, Writer: m.event, WriterTID: m.tid}
		}
	}
	e.candBuf = cands
	if e.tel != nil {
		e.tel.RFCandidates.Observe(uint64(len(cands)))
	}
	return cands
}

func (b *tsoBackend) execRead(t *Thread, l memmodel.Loc, ord memmodel.Order, casFail bool, expected memmodel.Value) memmodel.Value {
	e := b.e
	loc := e.loc(l)

	// Store forwarding: the youngest own buffered store to l wins,
	// unconditionally (x86 gives the program no choice here).
	for i := len(t.tsoBuf) - 1; i >= 0; i-- {
		if t.tsoBuf[i].loc == l {
			m := loc.byStamp(t.tsoBuf[i].stamp)
			if e.tel != nil {
				e.tel.RFCandidates.Observe(1)
			}
			return b.finishRead(t, l, ord, m)
		}
	}

	cands := b.readCandidates(t, l, casFail, expected)
	if len(cands) == 0 {
		panic(fmt.Sprintf("pctwm: no read candidates for %s at %s", t.Name(), e.locName(l)))
	}
	choice := 0
	if len(cands) > 1 {
		choice = e.strat.PickRead(ReadContext{
			TID: t.id, Index: t.nextIndex, Loc: l, Order: ord,
			RMWFailure: casFail, Candidates: cands,
		})
		if choice < 0 || choice >= len(cands) {
			panic(fmt.Sprintf("pctwm: strategy %s picked read candidate %d of %d", e.strat.Name(), choice, len(cands)))
		}
	}
	c := cands[choice]
	if c.Stamp != b.mem[int(l)-1] {
		// A remote buffered store: make it visible the way the machine
		// would — drain its owner's buffer through it.
		owner := e.thread(c.WriterTID)
		if owner == nil {
			panic(fmt.Sprintf("pctwm: tso candidate writer t%d unknown", c.WriterTID))
		}
		b.drainThrough(owner, l, c.Stamp)
	}
	return b.finishRead(t, l, ord, loc.byStamp(c.Stamp))
}

// finishRead emits the read event for message m.
func (b *tsoBackend) finishRead(t *Thread, l memmodel.Loc, ord memmodel.Order, m *message) memmodel.Value {
	e := b.e
	ev, _ := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindRead, Order: ord, Loc: l, RVal: m.val})
	ev.ReadsFrom = m.event
	e.spinCheck(t, l, m.val)
	e.finishEvent(t, ev)
	return m.val
}

func (b *tsoBackend) execWrite(t *Thread, l memmodel.Loc, v memmodel.Value, ord memmodel.Order) {
	e := b.e
	loc := e.loc(l)
	ev, _ := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindWrite, Order: ord, Loc: l, WVal: v})
	ts := memmodel.TS(len(loc.mo) + 1)
	m := loc.appendSlot()
	m.val, m.tid, m.event = v, t.id, ev.ID
	m.nonAtomic = ord == memmodel.NonAtomic
	ev.Stamp = ts
	t.tsoBuf = append(t.tsoBuf, tsoEntry{loc: l, stamp: ts})
	if ord.IsSC() {
		// x86 mapping of an SC store: MOV + MFENCE — the store enters the
		// buffer and the buffer drains immediately.
		b.drain(t)
	}
	t.resetSpin()
	e.progress()
	e.finishEvent(t, ev)
}

func (b *tsoBackend) execRMW(t *Thread, l memmodel.Loc, ord memmodel.Order, f func(memmodel.Value) memmodel.Value) memmodel.Value {
	e := b.e
	// LOCK-prefixed instruction: the issuing thread's buffer drains and
	// the update operates on shared memory atomically.
	b.drain(t)
	loc := e.loc(l)
	old := loc.byStamp(b.mem[int(l)-1])
	oldVal, oldEvent := old.val, old.event
	newVal := f(oldVal)
	ev, _ := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindRMW, Order: ord, Loc: l, RVal: oldVal, WVal: newVal})
	ev.ReadsFrom = oldEvent
	ts := memmodel.TS(len(loc.mo) + 1)
	m := loc.appendSlot()
	m.val, m.tid, m.event = newVal, t.id, ev.ID
	ev.Stamp = ts
	b.setMem(l, ts)
	t.resetSpin()
	e.progress()
	e.finishEvent(t, ev)
	return oldVal
}

func (b *tsoBackend) execCAS(t *Thread, req *request) (memmodel.Value, bool) {
	e := b.e
	// LOCK CMPXCHG drains the buffer before comparing against memory; a
	// weak CAS behaves exactly like a strong one (x86 has no spurious
	// failure).
	b.drain(t)
	loc := e.loc(req.loc)
	if loc.byStamp(b.mem[int(req.loc)-1]).val == req.expected {
		old := b.execRMW(t, req.loc, req.order, func(memmodel.Value) memmodel.Value { return req.value })
		return old, true
	}
	// Failure: a read of the memory value (the buffer is empty, so no
	// forwarding; the value necessarily differs from expected).
	if e.tel != nil {
		e.tel.RFCandidates.Observe(1)
	}
	v := b.finishRead(t, req.loc, req.failOrder, loc.byStamp(b.mem[int(req.loc)-1]))
	return v, false
}

func (b *tsoBackend) execFence(t *Thread, ord memmodel.Order) {
	e := b.e
	if !ord.IsAcquire() && !ord.IsRelease() {
		panic(fmt.Sprintf("pctwm: fence with order %s", ord))
	}
	ev, _ := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindFence, Order: ord})
	if ord.IsSC() {
		// MFENCE. Acquire/release(/acq-rel) fences compile to nothing on
		// x86: loads and stores already carry those orders.
		b.drain(t)
	}
	e.finishEvent(t, ev)
}

func (b *tsoBackend) execAlloc(t *Thread, req *request) memmodel.Loc {
	e := b.e
	base := memmodel.Loc(len(e.locs) + 1)
	for i := 0; i < req.allocN; i++ {
		var init memmodel.Value
		if i < len(t.ext.allocInit) {
			init = t.ext.allocInit[i]
		}
		l := memmodel.Loc(len(e.locs) + 1)
		ev, _ := e.beginEvent(t, memmodel.Label{
			Kind: memmodel.KindWrite, Order: memmodel.NonAtomic, Loc: l, WVal: init,
		})
		ev.Stamp = 1
		loc := e.pushLoc()
		loc.allocName = t.ext.allocName
		loc.allocBase = base
		loc.allocIdx = i
		m := loc.appendSlot()
		m.val, m.tid, m.event = init, t.id, ev.ID
		m.nonAtomic = true
		// Initialization writes go straight to memory (allocation is not
		// a store the buffer may delay).
		b.mem = append(b.mem, 1)
		e.finishEvent(t, ev)
	}
	e.progress()
	return base
}
