package engine

import (
	"math/rand"
	"strings"
	"testing"

	"pctwm/internal/memmodel"
)

// scriptStrategy is a deterministic strategy for unit tests: it runs the
// lowest-numbered enabled thread and reads a fixed candidate position.
type scriptStrategy struct {
	// readPick selects the candidate index: 0 = thread-local view,
	// -1 = mo-maximal.
	readPick int
	spins    []memmodel.ThreadID
	events   []memmodel.Event
}

func (s *scriptStrategy) Name() string                         { return "script" }
func (s *scriptStrategy) Begin(ProgramInfo, *rand.Rand)        {}
func (s *scriptStrategy) OnThreadStart(_, _ memmodel.ThreadID) {}
func (s *scriptStrategy) OnEvent(ev *memmodel.Event)           { s.events = append(s.events, *ev) }
func (s *scriptStrategy) OnSpin(tid memmodel.ThreadID)         { s.spins = append(s.spins, tid) }
func (s *scriptStrategy) NextThread(en []PendingOp) memmodel.ThreadID {
	return en[0].TID
}
func (s *scriptStrategy) PickRead(rc ReadContext) int {
	if s.readPick < 0 {
		return len(rc.Candidates) - 1
	}
	if s.readPick >= len(rc.Candidates) {
		return len(rc.Candidates) - 1
	}
	return s.readPick
}

func run(t *testing.T, p *Program, s Strategy, opts Options) *Outcome {
	t.Helper()
	return Run(p, s, 1, opts)
}

// TestSerialLocalViews: with thread-local reads (candidate 0), the second
// thread does not observe the first thread's relaxed writes — the d=0
// behaviour PCTWM builds on.
func TestSerialLocalViews(t *testing.T) {
	p := NewProgram("sb")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	a := p.Loc("a", -1)
	b := p.Loc("b", -1)
	p.AddThread(func(th *Thread) {
		th.Store(x, 1, memmodel.Relaxed)
		th.Store(a, th.Load(y, memmodel.Relaxed), memmodel.NonAtomic)
	})
	p.AddThread(func(th *Thread) {
		th.Store(y, 1, memmodel.Relaxed)
		th.Store(b, th.Load(x, memmodel.Relaxed), memmodel.NonAtomic)
	})
	o := run(t, p, &scriptStrategy{readPick: 0}, Options{})
	if o.FinalValues["a"] != 0 || o.FinalValues["b"] != 0 {
		t.Fatalf("local views should give a=b=0, got %v", o.FinalValues)
	}
	if o.Events == 0 || o.CommEvents == 0 {
		t.Fatalf("event counting broken: %+v", o)
	}
}

// TestMoMaxReads: with mo-maximal reads the serialized second thread sees
// the first thread's writes.
func TestMoMaxReads(t *testing.T) {
	p := NewProgram("mp")
	x := p.Loc("X", 0)
	b := p.Loc("b", -1)
	p.AddThread(func(th *Thread) { th.Store(x, 7, memmodel.Relaxed) })
	p.AddThread(func(th *Thread) {
		th.Store(b, th.Load(x, memmodel.Relaxed), memmodel.NonAtomic)
	})
	o := run(t, p, &scriptStrategy{readPick: -1}, Options{})
	if o.FinalValues["b"] != 7 {
		t.Fatalf("mo-max read should give 7, got %v", o.FinalValues)
	}
}

// TestAcquireReleaseTransfersView: an acquire load of a release store
// brings the writer's whole view across (no stale payload afterwards).
func TestAcquireReleaseTransfersView(t *testing.T) {
	p := NewProgram("mp-ra")
	x := p.Loc("X", 0)
	f := p.Loc("F", 0)
	b := p.Loc("b", -1)
	p.AddThread(func(th *Thread) {
		th.Store(x, 9, memmodel.Relaxed)
		th.Store(f, 1, memmodel.Release)
	})
	p.AddThread(func(th *Thread) {
		if th.Load(f, memmodel.Acquire) == 1 { // mo-max: reads the release store
			// Thread-local read (candidate 0) must now see x=9: the
			// acquire raised the floor.
			th.Store(b, th.Load(x, memmodel.Relaxed), memmodel.NonAtomic)
		}
	})
	s := &scriptStrategy{readPick: -1}
	o := run(t, p, s, Options{})
	if o.FinalValues["b"] != 9 {
		t.Fatalf("acquire should transfer the view, got %v", o.FinalValues)
	}
	// Same program, but reading the flag via the local view: the guard
	// fails and b stays -1.
	o = run(t, p, &scriptStrategy{readPick: 0}, Options{})
	if o.FinalValues["b"] != -1 {
		t.Fatalf("local flag read should skip the guard, got %v", o.FinalValues)
	}
}

// TestFenceStashSemantics: a relaxed read stashes the message view; only
// a later acquire fence publishes it into the thread view.
func TestFenceStashSemantics(t *testing.T) {
	build := func(withFence bool) *Program {
		p := NewProgram("fences")
		x := p.Loc("X", 0)
		f := p.Loc("F", 0)
		b := p.Loc("b", -1)
		p.AddThread(func(th *Thread) {
			th.Store(x, 3, memmodel.Relaxed)
			th.Fence(memmodel.Release)
			th.Store(f, 1, memmodel.Relaxed)
		})
		p.AddThread(func(th *Thread) {
			th.Load(f, memmodel.Relaxed) // reads mo-max (the script strategy)
			if withFence {
				th.Fence(memmodel.Acquire)
			}
			// Thread-local x read: must be 3 iff the fence ran.
			b2 := th.Load(x, memmodel.Relaxed)
			th.Store(b, b2, memmodel.NonAtomic)
		})
		return p
	}
	// All reads pick mo-max except we want the x read local... use two
	// phases: with fence, even the local floor includes x=3, so mo-max ==
	// local; without fence the floor stays at the init write. Reading
	// candidate 0 demonstrates the difference.
	withFence := &scriptStrategy{readPick: 0}
	o := Run(build(true), withFence, 1, Options{})
	_ = o
	// candidate 0 for the f read gives 0 and skips nothing (no guard);
	// instead check by forcing the f read to mo-max via readPick -1 and
	// the x read... the script strategy cannot mix picks per location, so
	// run with mo-max picks and verify the floor through FinalValues.
	oFence := Run(build(true), &scriptStrategy{readPick: 0}, 1, Options{})
	oNoFence := Run(build(false), &scriptStrategy{readPick: 0}, 1, Options{})
	// With readPick 0 the f read itself reads the init write (local), so
	// both b values are 0 — the interesting case needs mo-max f reads.
	if oFence.FinalValues["b"] != 0 || oNoFence.FinalValues["b"] != 0 {
		t.Fatalf("local-view runs should not see x: %v / %v", oFence.FinalValues, oNoFence.FinalValues)
	}
	oFence = Run(build(true), &scriptStrategy{readPick: -1}, 1, Options{})
	oNoFence = Run(build(false), &scriptStrategy{readPick: -1}, 1, Options{})
	if oFence.FinalValues["b"] != 3 {
		t.Fatalf("acquire fence should claim the stashed view: %v", oFence.FinalValues)
	}
	if oNoFence.FinalValues["b"] != 3 {
		// mo-max x read sees 3 anyway; the fence difference shows with
		// local x reads, covered by the litmus suite (MP1+fences). Here
		// we only require both runs to complete coherently.
		t.Fatalf("mo-max x read should see 3: %v", oNoFence.FinalValues)
	}
}

// TestRMWAtomicityForced: concurrent increments never lose updates
// regardless of the read policy.
func TestRMWAtomicityForced(t *testing.T) {
	for _, pick := range []int{0, -1} {
		p := NewProgram("fa")
		x := p.Loc("X", 0)
		for i := 0; i < 3; i++ {
			p.AddThread(func(th *Thread) { th.FetchAdd(x, 1, memmodel.Relaxed) })
		}
		o := run(t, p, &scriptStrategy{readPick: pick}, Options{})
		if o.FinalValues["X"] != 3 {
			t.Fatalf("lost update with pick %d: %v", pick, o.FinalValues)
		}
	}
}

// TestCASSemantics: success iff the mo-maximal value matches; the failure
// read never observes the expected value.
func TestCASSemantics(t *testing.T) {
	p := NewProgram("cas")
	x := p.Loc("X", 5)
	r1 := p.Loc("r1", -1)
	r2 := p.Loc("r2", -1)
	p.AddThread(func(th *Thread) {
		old, ok := th.CAS(x, 5, 6, memmodel.AcqRel, memmodel.Relaxed)
		th.Assert(ok && old == 5, "first CAS should succeed (old=%d)", old)
		th.Store(r1, old, memmodel.NonAtomic)
		old2, ok2 := th.CAS(x, 5, 7, memmodel.AcqRel, memmodel.Relaxed)
		th.Assert(!ok2 && old2 != 5, "second CAS should fail with a non-expected value (old=%d)", old2)
		th.Store(r2, old2, memmodel.NonAtomic)
	})
	o := run(t, p, &scriptStrategy{readPick: 0}, Options{})
	if o.BugHit {
		t.Fatalf("CAS semantics broken: %v", o.BugMessages)
	}
	if o.FinalValues["X"] != 6 || o.FinalValues["r1"] != 5 || o.FinalValues["r2"] != 6 {
		t.Fatalf("final state %v", o.FinalValues)
	}
}

// TestExchange returns the previous value and installs the new one.
func TestExchange(t *testing.T) {
	p := NewProgram("xchg")
	x := p.Loc("X", 4)
	r := p.Loc("r", -1)
	p.AddThread(func(th *Thread) {
		th.Store(r, th.Exchange(x, 8, memmodel.AcqRel), memmodel.NonAtomic)
	})
	o := run(t, p, &scriptStrategy{}, Options{})
	if o.FinalValues["r"] != 4 || o.FinalValues["X"] != 8 {
		t.Fatalf("exchange state %v", o.FinalValues)
	}
}

// TestSpawnJoinViews: the child inherits the parent's view; join merges
// the child's final view back.
func TestSpawnJoinViews(t *testing.T) {
	p := NewProgram("spawn")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	r := p.Loc("r", -1)
	p.AddThread(func(th *Thread) {
		th.Store(x, 1, memmodel.Relaxed)
		h := th.Spawn(func(c *Thread) {
			// Child sees the parent's write in its local view.
			c.Assert(c.Load(x, memmodel.Relaxed) == 1, "child should inherit the parent view")
			c.Store(y, 2, memmodel.Relaxed)
		})
		th.Join(h)
		// After join, the child's write is in the parent's local view.
		th.Store(r, th.Load(y, memmodel.Relaxed), memmodel.NonAtomic)
	})
	o := run(t, p, &scriptStrategy{readPick: 0}, Options{})
	if o.BugHit {
		t.Fatalf("bug: %v", o.BugMessages)
	}
	if o.FinalValues["r"] != 2 {
		t.Fatalf("join should merge the child view: %v", o.FinalValues)
	}
}

// TestAllocInitialValues: allocated cells start at the provided values and
// are in the allocating thread's view.
func TestAllocInitialValues(t *testing.T) {
	p := NewProgram("alloc")
	r := p.Loc("r", -1)
	p.AddThread(func(th *Thread) {
		base := th.Alloc("obj", 3, 10, 20)
		sum := th.Load(base, memmodel.Relaxed) +
			th.Load(base+1, memmodel.Relaxed) +
			th.Load(base+2, memmodel.Relaxed)
		th.Store(r, sum, memmodel.NonAtomic)
	})
	o := run(t, p, &scriptStrategy{readPick: 0}, Options{})
	if o.FinalValues["r"] != 30 {
		t.Fatalf("alloc init broken: %v", o.FinalValues)
	}
}

// TestSpinDetection: a local-view spin loop triggers OnSpin.
func TestSpinDetection(t *testing.T) {
	p := NewProgram("spin")
	f := p.Loc("F", 0)
	p.AddThread(func(th *Thread) {
		for i := 0; i < 40; i++ {
			if th.Load(f, memmodel.Relaxed) == 1 {
				return
			}
		}
	})
	p.AddThread(func(th *Thread) { th.Store(f, 1, memmodel.Relaxed) })
	s := &scriptStrategy{readPick: 0}
	run(t, p, s, Options{SpinThreshold: 8})
	if len(s.spins) == 0 {
		t.Fatal("spin loop not detected")
	}
}

// TestMaxStepsAborts: runaway executions end with Aborted.
func TestMaxStepsAborts(t *testing.T) {
	p := NewProgram("forever")
	f := p.Loc("F", 0)
	p.AddThread(func(th *Thread) {
		for {
			if th.Load(f, memmodel.Relaxed) == 1 {
				return
			}
		}
	})
	o := run(t, p, &scriptStrategy{readPick: 0}, Options{MaxSteps: 200})
	if !o.Aborted {
		t.Fatal("expected an aborted run")
	}
}

// TestStopOnBug: the execution ends at the first failed assertion.
func TestStopOnBug(t *testing.T) {
	p := NewProgram("stop")
	x := p.Loc("X", 0)
	p.AddThread(func(th *Thread) {
		th.Assert(false, "boom")
		th.Store(x, 1, memmodel.Relaxed) // must not run
	})
	o := run(t, p, &scriptStrategy{}, Options{StopOnBug: true})
	if !o.BugHit || len(o.BugMessages) != 1 {
		t.Fatalf("bug not recorded: %+v", o)
	}
	if o.FinalValues["X"] != 0 {
		t.Fatal("execution continued past the bug")
	}
}

// TestThreadPanicIsACrashBug: a panicking thread function is reported,
// not propagated.
func TestThreadPanicIsACrashBug(t *testing.T) {
	p := NewProgram("crash")
	p.Loc("X", 0)
	p.AddThread(func(th *Thread) { panic("kaboom") })
	o := run(t, p, &scriptStrategy{}, Options{})
	if !o.BugHit || !strings.Contains(strings.Join(o.BugMessages, " "), "kaboom") {
		t.Fatalf("crash not reported: %+v", o)
	}
}

// TestYieldIsNotAnEvent: yields consume steps but produce no events.
func TestYieldIsNotAnEvent(t *testing.T) {
	p := NewProgram("yield")
	p.Loc("X", 0)
	p.AddThread(func(th *Thread) {
		th.Yield()
		th.Yield()
	})
	o := run(t, p, &scriptStrategy{}, Options{})
	if o.Events != 0 {
		t.Fatalf("yields recorded as events: %d", o.Events)
	}
	if o.Steps < 2 {
		t.Fatalf("yields must consume steps: %d", o.Steps)
	}
}

// TestRecordingShape: recorded executions carry po/rf/mo/SC material.
func TestRecordingShape(t *testing.T) {
	p := NewProgram("rec")
	x := p.Loc("X", 0)
	p.AddThread(func(th *Thread) {
		th.Store(x, 1, memmodel.SeqCst)
		th.Load(x, memmodel.SeqCst)
	})
	o := run(t, p, &scriptStrategy{readPick: -1}, Options{Record: true})
	rec := o.Recording
	if rec == nil || len(rec.Events) == 0 {
		t.Fatal("no recording")
	}
	if len(rec.SCOrder) != 2 {
		t.Fatalf("SC order has %d events, want 2", len(rec.SCOrder))
	}
	var sawRF bool
	for _, ev := range rec.Events {
		if ev.Label.Kind.Reads() && ev.ReadsFrom != memmodel.NoEvent {
			sawRF = true
		}
	}
	if !sawRF {
		t.Fatal("no rf recorded")
	}
	if len(rec.SpawnLinks) != 1 {
		t.Fatalf("spawn links %v", rec.SpawnLinks)
	}
}

// TestDuplicateLocationPanics covers program construction errors.
func TestDuplicateLocationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic for the duplicate location")
		}
	}()
	p := NewProgram("dup")
	p.Loc("X", 0)
	p.Loc("X", 0)
}

// TestProgramSealedAfterRun: mutating a program after Run panics.
func TestProgramSealedAfterRun(t *testing.T) {
	p := NewProgram("sealed")
	p.Loc("X", 0)
	p.AddThread(func(th *Thread) {})
	run(t, p, &scriptStrategy{}, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic when adding to a sealed program")
		}
	}()
	p.Loc("Y", 0)
}

// TestWeakCASSpuriousFailure: a weak CAS directed at a stale candidate
// fails even though the mo-maximal value matches; directed at the maximal
// one it succeeds.
func TestWeakCASSpuriousFailure(t *testing.T) {
	build := func() *Program {
		p := NewProgram("weakcas")
		x := p.Loc("X", 0)
		r := p.Loc("r", -1)
		ok := p.Loc("ok", -1)
		p.AddThread(func(th *Thread) { th.Store(x, 0, memmodel.Relaxed) }) // second zero write
		p.AddThread(func(th *Thread) {
			v, success := th.CASWeak(x, 0, 9, memmodel.AcqRel, memmodel.Relaxed)
			th.Store(r, v, memmodel.NonAtomic)
			if success {
				th.Store(ok, 1, memmodel.NonAtomic)
			} else {
				th.Store(ok, 0, memmodel.NonAtomic)
			}
		})
		return p
	}
	// readPick 0 = thread-local (stale) candidate: spurious failure, the
	// observed value still equals the expected one.
	o := Run(build(), &scriptStrategy{readPick: 0}, 1, Options{})
	if o.FinalValues["ok"] != 0 || o.FinalValues["r"] != 0 {
		t.Fatalf("expected spurious failure observing 0: %v", o.FinalValues)
	}
	if o.FinalValues["X"] == 9 {
		t.Fatalf("spurious failure must not install: %v", o.FinalValues)
	}
	// readPick -1 = mo-max: success.
	o = Run(build(), &scriptStrategy{readPick: -1}, 1, Options{})
	if o.FinalValues["ok"] != 1 || o.FinalValues["X"] != 9 {
		t.Fatalf("expected success: %v", o.FinalValues)
	}
}

// TestWeakCASRetryLoopTerminates: a retry loop over CASWeak makes
// progress under the livelock heuristics.
func TestWeakCASRetryLoopTerminates(t *testing.T) {
	p := NewProgram("weakcas-loop")
	x := p.Loc("X", 0)
	p.AddThread(func(th *Thread) {
		for {
			if _, ok := th.CASWeak(x, 0, 1, memmodel.AcqRel, memmodel.Relaxed); ok {
				return
			}
		}
	})
	o := Run(p, &scriptStrategy{readPick: -1}, 1, Options{MaxSteps: 1000})
	if o.Aborted {
		t.Fatal("weak CAS loop never succeeded with mo-max picks")
	}
}
