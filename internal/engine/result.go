package engine

import (
	"context"
	"time"

	"pctwm/internal/memmodel"
	"pctwm/internal/race"
	"pctwm/internal/telemetry"
)

// Recording is the execution graph material captured when Options.Record
// is set: the full event list (po is recoverable from TID+Index, rf from
// ReadsFrom, mo from Stamp) plus the total order of SC events. The axiom
// package turns a Recording into a checkable execution graph.
type Recording struct {
	Events  []memmodel.Event
	SCOrder []memmodel.EventID
	// SpawnLinks order thread starts after their spawn event (From is
	// NoEvent for root threads, which start after initialization).
	SpawnLinks []SpawnLink
	// JoinLinks order a thread's last event before the join that reaped it.
	JoinLinks []JoinLink
	// LocNames maps locations to diagnostic names (static + dynamic).
	LocNames map[memmodel.Loc]string
}

// SpawnLink records that Child's first event is ordered after event From.
type SpawnLink struct {
	From  memmodel.EventID
	Child memmodel.ThreadID
}

// JoinLink records that event To is ordered after Child's last event.
type JoinLink struct {
	Child memmodel.ThreadID
	To    memmodel.EventID
}

// RunErrorKind classifies the abnormal ways an execution can end.
type RunErrorKind uint8

const (
	// PanicError: a simulated thread's ThreadFunc panicked.
	PanicError RunErrorKind = iota + 1
	// DeadlockError: unfinished threads remained but none was enabled.
	DeadlockError
	// StepLimitError: the execution hit Options.MaxSteps.
	StepLimitError
	// TimeoutError: the execution exceeded Options.MaxWallTime.
	TimeoutError
	// CanceledError: Options.Context was canceled mid-run.
	CanceledError
)

// String names the kind for diagnostics.
func (k RunErrorKind) String() string {
	switch k {
	case PanicError:
		return "panic"
	case DeadlockError:
		return "deadlock"
	case StepLimitError:
		return "step-limit"
	case TimeoutError:
		return "timeout"
	case CanceledError:
		return "canceled"
	}
	return "unknown"
}

// RunError is the structured form of an abnormal execution ending,
// surfaced as Outcome.Err. It complements the BugHit / Deadlocked /
// Aborted booleans with machine-readable details, and is produced
// identically by the direct-handoff and the legacy baton scheduler.
type RunError struct {
	Kind RunErrorKind
	// TID is the thread the error is attributed to (the panicking thread
	// for PanicError; 0 when no single thread is responsible).
	TID memmodel.ThreadID
	// Msg is a deterministic human-readable description.
	Msg string
}

func (e *RunError) Error() string { return e.Msg }

// Outcome summarizes one execution.
type Outcome struct {
	// BugHit is true when an assertion failed or a thread crashed.
	BugHit bool
	// BugMessages holds the failed assertion messages / panic values.
	BugMessages []string
	// Err structures the first abnormal-termination cause of the run
	// (thread panic, deadlock, step-limit abort); nil for clean runs and
	// for plain assertion failures, which are reported via BugMessages.
	Err *RunError
	// Races holds detected data races (when race detection is on).
	Races []race.Race
	// Steps counts scheduler grants (including yields).
	Steps int
	// Events counts memory events (R, W, U, F).
	Events int
	// CommEvents counts executed communication events (SC ∪ R ∪ F⊒acq),
	// the paper's k_com.
	CommEvents int
	// Aborted is true when the execution hit MaxSteps (livelock guard).
	Aborted bool
	// Deadlocked is true when unfinished threads remained but none was
	// enabled (a join cycle).
	Deadlocked bool
	// TimedOut is true when the execution exceeded Options.MaxWallTime
	// (Err.Kind is TimeoutError).
	TimedOut bool
	// Canceled is true when Options.Context was canceled mid-run (Err.Kind
	// is CanceledError). The run's threads were unwound cleanly; the
	// Outcome summarizes the partial execution.
	Canceled bool
	// FinalValues maps static location names to their mo-maximal values.
	// Outcomes of the same Runner that ended in the same final state share
	// one interned map; treat it as read-only.
	FinalValues map[string]memmodel.Value
	// BehaviorFP is the run's canonical behavior fingerprint (final
	// values + reads-from pairs + modification orders, see
	// internal/coverage), computed when Options.Coverage is set; 0
	// otherwise. Complete executions with equal fingerprints exhibited
	// the same behavior regardless of schedule.
	BehaviorFP uint64
	// Recording is non-nil when Options.Record was set.
	Recording *Recording
	// Duration is the wall-clock time of the run's execution phase:
	// memory initialization plus the stepping loop, measured around the
	// inline scheduling decisions. Teardown (unwinding parked threads
	// after an aborted run) is excluded, so per-event cost derived from
	// Duration is comparable across scheduler implementations.
	Duration time.Duration
}

// Failed reports whether the execution exposed a bug: an assertion
// failure or thread crash (BugHit), a data race (the C11Tester notion
// used for the application benchmarks), or a structured abnormal ending
// that indicts the program — a panic or a deadlock. Resource aborts
// (step limit, wall-clock timeout, cancellation) are NOT failures: they
// say the run was cut short, not that the program misbehaved; use
// Abnormal (or inspect Err directly) to see those.
//
// Panicking runs set both BugHit and a PanicError, but Failed counts a
// run once — callers tallying Failed alongside per-kind counters (e.g.
// harness.TrialResult.Deadlock) must not sum the two.
func (o *Outcome) Failed() bool {
	if o.BugHit || len(o.Races) > 0 {
		return true
	}
	if o.Err != nil && (o.Err.Kind == PanicError || o.Err.Kind == DeadlockError) {
		return true
	}
	return false
}

// Abnormal reports whether the execution ended abnormally for any reason
// (panic, deadlock, step limit, wall-clock timeout, cancellation).
func (o *Outcome) Abnormal() bool { return o.Err != nil }

// Options configure one execution. The zero value gives the documented
// defaults; Options is JSON-serializable (repro bundles embed it) —
// non-serializable fields carry `json:"-"` and must be re-attached after
// decoding.
type Options struct {
	// Model selects the memory-model backend: "rc11" (default — the
	// paper's C11 view machine), "sc" (sequential consistency, the
	// differential-testing baseline) or "tso" (x86-TSO store buffers).
	// Strategies run unchanged on every model; the backend decides read
	// candidates, synchronization and which operations count as
	// communication events. Race detection (DetectRaces) is defined over
	// the rc11 happens-before and is ignored by the other backends.
	Model string `json:"model,omitempty"`
	// MaxSteps aborts the execution after this many scheduler grants
	// (guards against livelocks the strategy cannot escape). 0 means the
	// default of 100000.
	MaxSteps int
	// MaxWallTime bounds one execution's wall-clock duration. The step
	// loop checks a precomputed deadline every watchdogInterval grants, so
	// a livelocked execution under a buggy strategy is cut off in bounded
	// real time instead of spinning to MaxSteps; the run ends with a
	// TimeoutError and unwinds its threads cleanly. 0 disables the bound.
	// Timeouts are inherently wall-clock-dependent: the same seed may time
	// out at a different step (or not at all) on a re-run.
	MaxWallTime time.Duration
	// Context, when non-nil, cancels in-flight executions: the step loop
	// polls Context.Done() every watchdogInterval grants and ends the run
	// with a CanceledError, releasing coroutines with no goroutine leaks.
	// An un-canceled Context does not perturb schedules or outcomes.
	Context context.Context `json:"-"`
	// SpinThreshold is the number of consecutive identical loads after
	// which the strategy's OnSpin fires. 0 means the default of 12.
	SpinThreshold int
	// StallWindow is the number of scheduler steps without a write, RMW or
	// thread completion after which OnSpin fires regardless of the spin
	// pattern. 0 means the default of 256.
	StallWindow int
	// StopOnBug ends the execution at the first failed assertion.
	StopOnBug bool
	// Record captures the execution graph for consistency checking.
	Record bool
	// DetectRaces enables the vector-clock data race detector.
	DetectRaces bool
	// MaxRaces caps the number of reported races (default 16).
	MaxRaces int
	// Coverage computes a canonical behavior fingerprint per run
	// (Outcome.BehaviorFP) from a per-Runner scratch accumulator. The
	// hook is allocation-free in steady state and costs a few percent of
	// per-event time; when false the hot path pays one nil check. The
	// field is serialized so repro bundles record whether their outcome
	// summaries carry fingerprints.
	Coverage bool `json:"coverage,omitempty"`
	// Telemetry, when non-nil, receives per-execution engine counters (op
	// kind/order matrix, handoffs vs same-thread grants, rf candidate-bag
	// sizes, change-point depths, race checks). The counters use plain
	// field increments — a Runner is single-threaded by contract — so an
	// EngineCounters must not be shared by Runners that run concurrently
	// (campaign workers each get their own shard, merged at the end). A
	// nil Telemetry costs exactly one predictable branch per hook and
	// allocates nothing.
	Telemetry *telemetry.EngineCounters `json:"-"`
	// Baton selects the legacy channel-select baton scheduler instead of
	// the default direct-handoff scheduler. Both produce bit-identical
	// schedules and outcomes for the same seed; the legacy path is kept
	// for one release as an escape hatch (cmd flag -engine.baton) and as
	// the reference implementation for the trace-equivalence tests. It
	// costs roughly 2× per event (two channel selects plus per-run
	// goroutine creation on the hot path).
	Baton bool
}

func (o Options) withDefaults() Options {
	if o.Model == "" {
		o.Model = ModelRC11
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 100000
	}
	if o.SpinThreshold == 0 {
		o.SpinThreshold = 12
	}
	if o.StallWindow == 0 {
		o.StallWindow = 256
	}
	if o.MaxRaces == 0 {
		o.MaxRaces = 16
	}
	return o
}
