package engine

import (
	"time"

	"pctwm/internal/memmodel"
	"pctwm/internal/race"
)

// Recording is the execution graph material captured when Options.Record
// is set: the full event list (po is recoverable from TID+Index, rf from
// ReadsFrom, mo from Stamp) plus the total order of SC events. The axiom
// package turns a Recording into a checkable execution graph.
type Recording struct {
	Events  []memmodel.Event
	SCOrder []memmodel.EventID
	// SpawnLinks order thread starts after their spawn event (From is
	// NoEvent for root threads, which start after initialization).
	SpawnLinks []SpawnLink
	// JoinLinks order a thread's last event before the join that reaped it.
	JoinLinks []JoinLink
	// LocNames maps locations to diagnostic names (static + dynamic).
	LocNames map[memmodel.Loc]string
}

// SpawnLink records that Child's first event is ordered after event From.
type SpawnLink struct {
	From  memmodel.EventID
	Child memmodel.ThreadID
}

// JoinLink records that event To is ordered after Child's last event.
type JoinLink struct {
	Child memmodel.ThreadID
	To    memmodel.EventID
}

// Outcome summarizes one execution.
type Outcome struct {
	// BugHit is true when an assertion failed or a thread crashed.
	BugHit bool
	// BugMessages holds the failed assertion messages / panic values.
	BugMessages []string
	// Races holds detected data races (when race detection is on).
	Races []race.Race
	// Steps counts scheduler grants (including yields).
	Steps int
	// Events counts memory events (R, W, U, F).
	Events int
	// CommEvents counts executed communication events (SC ∪ R ∪ F⊒acq),
	// the paper's k_com.
	CommEvents int
	// Aborted is true when the execution hit MaxSteps (livelock guard).
	Aborted bool
	// Deadlocked is true when unfinished threads remained but none was
	// enabled (a join cycle).
	Deadlocked bool
	// FinalValues maps static location names to their mo-maximal values.
	FinalValues map[string]memmodel.Value
	// Recording is non-nil when Options.Record was set.
	Recording *Recording
	// Duration is the wall-clock time of the run.
	Duration time.Duration
}

// Failed reports whether the execution exposed a bug, counting data races
// as failures (the C11Tester notion used for the application benchmarks).
func (o *Outcome) Failed() bool { return o.BugHit || len(o.Races) > 0 }

// Options configure one execution.
type Options struct {
	// MaxSteps aborts the execution after this many scheduler grants
	// (guards against livelocks the strategy cannot escape). 0 means the
	// default of 100000.
	MaxSteps int
	// SpinThreshold is the number of consecutive identical loads after
	// which the strategy's OnSpin fires. 0 means the default of 12.
	SpinThreshold int
	// StallWindow is the number of scheduler steps without a write, RMW or
	// thread completion after which OnSpin fires regardless of the spin
	// pattern. 0 means the default of 256.
	StallWindow int
	// StopOnBug ends the execution at the first failed assertion.
	StopOnBug bool
	// Record captures the execution graph for consistency checking.
	Record bool
	// DetectRaces enables the vector-clock data race detector.
	DetectRaces bool
	// MaxRaces caps the number of reported races (default 16).
	MaxRaces int
}

func (o Options) withDefaults() Options {
	if o.MaxSteps == 0 {
		o.MaxSteps = 100000
	}
	if o.SpinThreshold == 0 {
		o.SpinThreshold = 12
	}
	if o.StallWindow == 0 {
		o.StallWindow = 256
	}
	if o.MaxRaces == 0 {
		o.MaxRaces = 16
	}
	return o
}
