package engine

import (
	"fmt"

	"pctwm/internal/memmodel"
	"pctwm/internal/vclock"
)

// scBackend is sequential consistency: one memory copy, every read
// observes the mo-maximal write, every write is immediately visible to
// everyone. Reads have exactly one candidate, so the strategy's PickRead
// is never consulted and the only nondeterminism is the interleaving —
// which makes sc the differential-testing baseline (a weak behaviour is
// precisely an outcome reachable under tso/rc11 but not under sc) and the
// overhead floor of the scheduling machinery.
type scBackend struct {
	e *Engine
}

func (b *scBackend) name() string { return ModelSC }

func (b *scBackend) resetRun() {}

func (b *scBackend) initStatic() {
	e := b.e
	for i, d := range e.prog.locs {
		loc := e.pushLoc()
		loc.name = d.name
		m := loc.appendSlot()
		m.val, m.tid, m.event = d.init, memmodel.InitThread, memmodel.EventID(i)
	}
}

func (b *scBackend) rootView() (memmodel.View, vclock.VC) {
	return memmodel.View{}, vclock.VC{}
}

func (b *scBackend) releaseMessage(m *message) {}

func (b *scBackend) postEvent(t *Thread, ev *memmodel.Event) {}
func (b *scBackend) onSpawn(t *Thread)                       {}
func (b *scBackend) onThreadFinish(t *Thread)                {}

// commSink: with a single memory copy every read observes other threads'
// writes directly, so the communication sinks are the reads and RMWs
// (fences carry no synchronization beyond what every access already has).
func (b *scBackend) commSink(kind memmodel.Kind, ord memmodel.Order) bool {
	return kind.Reads()
}

func (b *scBackend) commEvent(lab memmodel.Label) bool {
	return lab.Kind.Reads()
}

func (b *scBackend) finalValue(i int, loc *location) memmodel.Value {
	return loc.maximal().val
}

func (b *scBackend) execRead(t *Thread, l memmodel.Loc, ord memmodel.Order, casFail bool, expected memmodel.Value) memmodel.Value {
	e := b.e
	m := e.loc(l).maximal()
	if casFail && m.val == expected {
		// Unreachable: the CAS failure path runs only when the maximal
		// value differs from expected.
		panic(fmt.Sprintf("pctwm: sc CAS failure read at %s observed the expected value", e.locName(l)))
	}
	if e.tel != nil {
		e.tel.RFCandidates.Observe(1)
	}
	ev, _ := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindRead, Order: ord, Loc: l, RVal: m.val})
	ev.ReadsFrom = m.event
	e.spinCheck(t, l, m.val)
	e.finishEvent(t, ev)
	return m.val
}

func (b *scBackend) execWrite(t *Thread, l memmodel.Loc, v memmodel.Value, ord memmodel.Order) {
	e := b.e
	loc := e.loc(l)
	ev, _ := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindWrite, Order: ord, Loc: l, WVal: v})
	ts := memmodel.TS(len(loc.mo) + 1)
	m := loc.appendSlot()
	m.val, m.tid, m.event = v, t.id, ev.ID
	m.nonAtomic = ord == memmodel.NonAtomic
	ev.Stamp = ts
	t.resetSpin()
	e.progress()
	e.finishEvent(t, ev)
}

func (b *scBackend) execRMW(t *Thread, l memmodel.Loc, ord memmodel.Order, f func(memmodel.Value) memmodel.Value) memmodel.Value {
	e := b.e
	loc := e.loc(l)
	old := loc.maximal()
	oldVal, oldEvent := old.val, old.event
	newVal := f(oldVal)
	ev, _ := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindRMW, Order: ord, Loc: l, RVal: oldVal, WVal: newVal})
	ev.ReadsFrom = oldEvent
	ts := memmodel.TS(len(loc.mo) + 1)
	m := loc.appendSlot()
	m.val, m.tid, m.event = newVal, t.id, ev.ID
	ev.Stamp = ts
	t.resetSpin()
	e.progress()
	e.finishEvent(t, ev)
	return oldVal
}

func (b *scBackend) execCAS(t *Thread, req *request) (memmodel.Value, bool) {
	e := b.e
	// Under SC a weak CAS cannot fail spuriously: there is no stale value
	// to observe instead of the maximal one.
	if e.loc(req.loc).maximal().val == req.expected {
		old := b.execRMW(t, req.loc, req.order, func(memmodel.Value) memmodel.Value { return req.value })
		return old, true
	}
	v := b.execRead(t, req.loc, req.failOrder, true, req.expected)
	return v, false
}

func (b *scBackend) execFence(t *Thread, ord memmodel.Order) {
	e := b.e
	if !ord.IsAcquire() && !ord.IsRelease() {
		panic(fmt.Sprintf("pctwm: fence with order %s", ord))
	}
	// Every access is already sequentially consistent; the fence is an
	// event with no additional semantics.
	ev, _ := e.beginEvent(t, memmodel.Label{Kind: memmodel.KindFence, Order: ord})
	e.finishEvent(t, ev)
}

func (b *scBackend) execAlloc(t *Thread, req *request) memmodel.Loc {
	e := b.e
	base := memmodel.Loc(len(e.locs) + 1)
	for i := 0; i < req.allocN; i++ {
		var init memmodel.Value
		if i < len(t.ext.allocInit) {
			init = t.ext.allocInit[i]
		}
		l := memmodel.Loc(len(e.locs) + 1)
		ev, _ := e.beginEvent(t, memmodel.Label{
			Kind: memmodel.KindWrite, Order: memmodel.NonAtomic, Loc: l, WVal: init,
		})
		ev.Stamp = 1
		loc := e.pushLoc()
		loc.allocName = t.ext.allocName
		loc.allocBase = base
		loc.allocIdx = i
		m := loc.appendSlot()
		m.val, m.tid, m.event = init, t.id, ev.ID
		m.nonAtomic = true
		e.finishEvent(t, ev)
	}
	e.progress()
	return base
}
