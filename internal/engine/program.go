package engine

import (
	"fmt"
	"sync/atomic"

	"pctwm/internal/memmodel"
)

// Program is a static description of a weak-memory test program: a set of
// named shared locations with initial values and a set of root threads.
// A Program is immutable once built and can be executed any number of
// times; every Run starts from a fresh state.
type Program struct {
	name    string
	locs    []locDecl
	byName  map[string]memmodel.Loc
	threads []rootThread
	sealed  atomic.Bool
}

type locDecl struct {
	name string
	init memmodel.Value
}

type rootThread struct {
	name string
	fn   ThreadFunc
}

// NewProgram creates an empty program with a diagnostic name.
func NewProgram(name string) *Program {
	return &Program{name: name, byName: make(map[string]memmodel.Loc)}
}

// Name returns the program's diagnostic name.
func (p *Program) Name() string { return p.name }

// Loc declares a shared location with an initial value and returns its
// handle. Location handles are valid across all runs of the program.
func (p *Program) Loc(name string, init memmodel.Value) memmodel.Loc {
	if p.sealed.Load() {
		panic("pctwm: Program.Loc called after Run")
	}
	if _, dup := p.byName[name]; dup {
		panic(fmt.Sprintf("pctwm: duplicate location %q", name))
	}
	p.locs = append(p.locs, locDecl{name: name, init: init})
	l := memmodel.Loc(len(p.locs)) // 1-based; 0 is NoLoc
	p.byName[name] = l
	return l
}

// LocArray declares n locations named name[0..n-1] and returns the base
// handle; element i is Base+Loc(i).
func (p *Program) LocArray(name string, n int, init memmodel.Value) memmodel.Loc {
	if n <= 0 {
		panic(fmt.Sprintf("pctwm: LocArray(%q, %d): n must be positive", name, n))
	}
	base := p.Loc(fmt.Sprintf("%s[0]", name), init)
	for i := 1; i < n; i++ {
		p.Loc(fmt.Sprintf("%s[%d]", name, i), init)
	}
	return base
}

// LocName returns the declared name of a static location, or a synthetic
// name for dynamically allocated ones.
func (p *Program) LocName(l memmodel.Loc) string {
	if i := int(l) - 1; i >= 0 && i < len(p.locs) {
		return p.locs[i].name
	}
	return fmt.Sprintf("heap#%d", l)
}

// AddThread registers a root thread. Root threads are started before the
// first scheduling decision, in declaration order, as in the paper's
// benchmarks (all threads exist up front).
func (p *Program) AddThread(fn ThreadFunc) {
	p.AddNamedThread(fmt.Sprintf("T%d", len(p.threads)+1), fn)
}

// AddNamedThread registers a root thread with a diagnostic name.
func (p *Program) AddNamedThread(name string, fn ThreadFunc) {
	if p.sealed.Load() {
		panic("pctwm: Program.AddThread called after Run")
	}
	if fn == nil {
		panic("pctwm: AddThread(nil)")
	}
	p.threads = append(p.threads, rootThread{name: name, fn: fn})
}

// NumThreads returns the number of root threads.
func (p *Program) NumThreads() int { return len(p.threads) }

// NumLocs returns the number of statically declared locations.
func (p *Program) NumLocs() int { return len(p.locs) }
