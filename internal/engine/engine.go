// Package engine executes weak-memory test programs under the control of a
// pluggable testing strategy. It is the repository's substitute for the
// C11Tester framework the paper builds on: threads are fully serialized,
// every read consults the strategy for which coherence-legal write to read
// from, and thread views / message bags implement the paper's Algorithm 2
// semantics for the C11 memory model of §4.
package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pctwm/internal/coverage"
	"pctwm/internal/memmodel"
	"pctwm/internal/race"
	"pctwm/internal/telemetry"
	"pctwm/internal/vclock"
)

// Engine holds the mutable state of one execution. It is embedded in a
// Runner and reset between runs; use Run or Runner for the public API.
type Engine struct {
	prog   *Program
	strat  Strategy
	opts   Options
	rng    *rand.Rand
	rngSrc xoshiro // backing source of rng; cheap O(1) re-seed per run

	// viewArena and vcArena recycle the per-write view bags and release
	// clocks across this engine's executions. They are engine-local (not
	// package-global) so their freelists need no synchronization: all
	// accesses happen under the scheduler baton.
	viewArena memmodel.ViewArena
	vcArena   vclock.Arena

	locs []location // index = Loc-1

	threads     []*Thread // index = ThreadID-1, creation order
	freeThreads []*Thread // recycled thread shells from earlier runs
	nextTID     memmodel.ThreadID

	// Direct-handoff scheduler state (all accesses serialized by the
	// baton). The yielding thread publishes the next grant in
	// granted/grantRes and yields; the host trampoline (runDirect)
	// resumes granted, which reads grantRes. endRun tells the trampoline
	// the run is over; killing turns teardown resumes into unwinds;
	// startFn carries the ThreadFunc into a coroutine being started.
	granted  *Thread
	grantRes response
	endRun   bool
	killing  bool
	startFn  ThreadFunc

	// Legacy baton scheduler state (Options.Baton). parkCh/doneCh serve
	// thread startup (first park / immediate finish); both are reused
	// across runs. killed is closed at teardown and must be fresh per
	// run. endCh (buffered) carries the end-of-run signal from whichever
	// goroutine holds the baton back to the host.
	parkCh chan *Thread
	doneCh chan threadDone
	endCh  chan struct{}
	killed chan struct{}

	// wg counts the legacy baton path's per-run thread goroutines. The
	// direct path needs no counter: coroutines stop synchronously.
	wg     sync.WaitGroup
	closed bool

	// model is the active memory-model backend (Options.Model): the
	// semantics of every memory operation — candidate sets, view/buffer
	// updates, fence and RMW rules — while the engine keeps the
	// model-agnostic machinery (scheduling, threads, mo bookkeeping,
	// events, recording, telemetry).
	model modelBackend

	// initWarm marks the static init state as cached from a previous run:
	// the first len(prog.locs) location slots still hold their single init
	// message (and the backend its root view), so initMemory skips the
	// rebuild entirely (the state is identical for every run of the same
	// program).
	initWarm bool

	nextEventID memmodel.EventID
	outcome     Outcome
	rec         *Recording
	det         *race.Detector

	// scratch buffers reused across steps to keep the hot loop
	// allocation-free.
	evScratch  memmodel.Event
	enabledBuf []PendingOp
	candBuf    []ReadCandidate

	// fvCache interns FinalValues maps per distinct final state (see
	// finalValues); fvScratch is the per-run value-vector key buffer.
	fvCache   []fvEntry
	fvScratch []memmodel.Value

	stepsSinceProgress int
	stopped            bool

	// tel caches Options.Telemetry (nil = telemetry off: one predictable
	// branch per hook, no allocation). lastGranted is the thread the
	// previous grant ran, classifying each grant as a handoff (thread
	// switch) or a same-thread grant; it is derived purely from the
	// schedule, so the counts are bit-identical across scheduler
	// protocols and worker counts.
	tel         *telemetry.EngineCounters
	lastGranted *Thread

	// cov is the behavior-fingerprint accumulator (Options.Coverage);
	// nil when coverage is off, so the finishEvent hook costs one
	// predictable branch. Its scratch is reused across runs.
	cov *coverage.Accumulator

	// Watchdog state (cancellation + wall-clock bound), refreshed per run
	// by reset. watchdogOn gates the hot path: when neither a Context nor
	// a MaxWallTime is configured, driveStep pays a single cached-bool
	// branch and never touches a channel or the clock.
	watchdogOn bool
	ctxDone    <-chan struct{}
	deadline   time.Time
}

// watchdogInterval is how many scheduler grants pass between cancellation
// / deadline checks (power of two; the check is `steps&watchdogMask==0`).
// 64 keeps the poll off the per-event profile while bounding the overrun
// of a canceled or timed-out run to tens of microseconds of stepping.
const (
	watchdogInterval = 64
	watchdogMask     = watchdogInterval - 1
)

// fvEntry is one interned FinalValues map: the value vector (in static
// location order) it was built from, its FNV-1a hash (short-circuits the
// lookup scan), and the shared map.
type fvEntry struct {
	hash uint64
	vals []memmodel.Value
	m    map[string]memmodel.Value
}

// fvHash is FNV-1a over the value vector. Collisions are harmless: the
// full vector is still compared on a hash match.
func fvHash(vals []memmodel.Value) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range vals {
		h = (h ^ uint64(v)) * 1099511628211
	}
	return h
}

type threadDone struct {
	tid      memmodel.ThreadID
	panicked bool
	panicVal any
}

// Runner executes a program repeatedly, reusing location tables, message
// bags, thread shells, thread goroutines, scratch buffers and scheduler
// channels between runs so that a steady-state trial loop allocates
// near-zero memory per run.
//
// A Runner is bound to one immutable Program and one Options value. It is
// NOT safe for concurrent use; for parallel trials give each worker its own
// Runner (see internal/harness.RunTrialsPooled).
//
// With the default direct-handoff scheduler a Runner pools thread
// coroutines between runs (parked on their between-runs yield). Call Close
// when done with a Runner to release them; a dropped unclosed Runner pins
// its pooled coroutines (at most the program's thread count) until process
// exit.
//
// Determinism guarantee: for a fixed program, strategy and seed, a run
// produces the same Outcome (and byte-identical Recording) whether the
// Runner is fresh or has executed any number of prior runs, whether the
// trial executes on the serial or the pooled harness path, and whether the
// direct-handoff or the legacy baton scheduler executes it.
type Runner struct {
	e Engine
}

// NewRunner prepares a reusable Runner for prog. The program is sealed on
// first use exactly as with Run.
func NewRunner(prog *Program, opts Options) *Runner {
	if prog.NumThreads() == 0 {
		panic(fmt.Sprintf("pctwm: program %q has no threads", prog.Name()))
	}
	prog.sealed.Store(true)
	r := &Runner{}
	e := &r.e
	e.prog = prog
	e.opts = opts.withDefaults()
	e.model = newBackend(e, e.opts.Model)
	if e.opts.Model != ModelRC11 {
		// The vector-clock race detector is defined over the rc11 view
		// machine's happens-before; other backends do not maintain clocks.
		e.opts.DetectRaces = false
	}
	if e.opts.Baton {
		e.parkCh = make(chan *Thread)
		e.doneCh = make(chan threadDone)
		e.endCh = make(chan struct{}, 1)
	}
	return r
}

// Program returns the program this Runner executes.
func (r *Runner) Program() *Program { return r.e.prog }

// Run executes the program once under strat with the given random seed and
// returns the outcome. The seed drives only the strategy's decisions; the
// engine itself is deterministic. The returned Outcome does not alias
// Runner state and stays valid across subsequent runs.
func (r *Runner) Run(strat Strategy, seed int64) *Outcome {
	e := &r.e
	if e.closed {
		panic("pctwm: Runner.Run called after Close")
	}
	e.reset(strat, seed)
	e.run()
	e.finalize()
	out := e.outcome
	e.outcome = Outcome{}
	return &out
}

// Run executes prog once under strat with the given random seed and
// options, returning the outcome. It is a one-shot wrapper over Runner
// (including goroutine cleanup); repeated-trial loops should create a
// Runner (or use the harness) to amortize setup.
func Run(prog *Program, strat Strategy, seed int64, opts Options) *Outcome {
	r := NewRunner(prog, opts)
	defer r.Close()
	return r.Run(strat, seed)
}

// reset prepares the engine for a fresh execution. Location tables, thread
// shells and scratch buffers retained by the previous run are reused;
// everything observable starts from the initial state.
func (e *Engine) reset(strat Strategy, seed int64) {
	e.strat = strat
	e.rngSrc.Seed(seed)
	if e.rng == nil {
		e.rng = rand.New(&e.rngSrc)
	}
	if e.opts.Baton {
		e.killed = make(chan struct{})
	}
	e.nextTID = 0
	e.model.resetRun()
	e.nextEventID = 0
	e.outcome = Outcome{}
	e.rec = nil
	if e.opts.Record {
		e.rec = &Recording{}
	}
	if e.opts.DetectRaces {
		if e.det == nil {
			e.det = race.NewDetector(e.locName, e.opts.MaxRaces)
		} else {
			e.det.Reset()
		}
	}
	e.stepsSinceProgress = 0
	e.stopped = false
	e.tel = e.opts.Telemetry
	if e.tel != nil && e.tel.Model == "" {
		e.tel.Model = e.opts.Model
	}
	e.lastGranted = nil
	if e.opts.Coverage {
		if e.cov == nil {
			e.cov = new(coverage.Accumulator)
		}
		e.cov.Reset(e.opts.Model, len(e.prog.locs))
	}
	e.ctxDone = nil
	if e.opts.Context != nil {
		e.ctxDone = e.opts.Context.Done()
	}
	e.deadline = time.Time{}
	if e.opts.MaxWallTime > 0 {
		e.deadline = time.Now().Add(e.opts.MaxWallTime)
	}
	e.watchdogOn = e.ctxDone != nil || e.opts.MaxWallTime > 0
}

// checkInterrupt polls the run's cancellation context and wall-clock
// deadline (called from driveStep every watchdogInterval grants). It
// reports true when the run must end, having recorded the structured
// cause. Cancellation wins over the deadline so an operator interrupt is
// never misreported as a timeout.
func (e *Engine) checkInterrupt() bool {
	if e.ctxDone != nil {
		select {
		case <-e.ctxDone:
			e.outcome.Canceled = true
			msg := "run canceled"
			if err := e.opts.Context.Err(); err != nil {
				msg = "run canceled: " + err.Error()
			}
			e.setRunError(&RunError{Kind: CanceledError, Msg: msg})
			return true
		default:
		}
	}
	if !e.deadline.IsZero() && time.Now().After(e.deadline) {
		e.outcome.TimedOut = true
		e.setRunError(&RunError{
			Kind: TimeoutError,
			Msg:  fmt.Sprintf("wall-clock limit (%v) exceeded", e.opts.MaxWallTime),
		})
		return true
	}
	return false
}

// finalize snapshots everything the Outcome needs from engine state, then
// releases the run's pooled resources (message bags, release clocks,
// location tables, thread shells) back to their arenas.
func (e *Engine) finalize() {
	e.outcome.Recording = e.rec
	if e.rec != nil {
		names := make(map[memmodel.Loc]string, len(e.locs))
		for i := range e.locs {
			l := memmodel.Loc(i + 1)
			names[l] = e.locs[i].displayName(l)
		}
		e.rec.LocNames = names
	}
	if e.det != nil {
		// Copy: the detector's race slice is reused by the next run's Reset,
		// while Outcomes must stay valid indefinitely.
		if rs := e.det.Races(); len(rs) > 0 {
			e.outcome.Races = append([]race.Race(nil), rs...)
		}
	}
	e.outcome.FinalValues = e.finalValues()
	if e.cov != nil {
		// The fingerprint's final-value vector mirrors finalValues: the
		// mo-maximal value of every static location in declaration
		// order (zero for the never-written slots of a cut-short run).
		for i := range e.prog.locs {
			var v memmodel.Value
			if i < len(e.locs) && len(e.locs[i].mo) > 0 {
				v = e.model.finalValue(i, &e.locs[i])
			}
			e.cov.PushFinal(v)
		}
		e.outcome.BehaviorFP = e.cov.Finalize()
	}
	if e.tel != nil {
		e.tel.Trials++
	}
	e.releaseRun()
}

// releaseRun drains the per-run pooled state. Message bags and release
// clocks go back to the arenas; locations and thread shells are truncated
// in place so the next run reuses their backing storage (including, on the
// direct path, each shell's parked goroutine).
func (e *Engine) releaseRun() {
	// Static locations stay warm (initWarm): their single init message is
	// identical in every run of the same program, so only the writes the
	// run itself performed are released. Dynamically allocated locations
	// are drained completely.
	keep := 0
	if e.initWarm {
		keep = len(e.prog.locs)
	}
	for i := range e.locs {
		loc := &e.locs[i]
		base := 0
		if i < keep {
			base = 1
		}
		for j := base; j < len(loc.mo); j++ {
			e.model.releaseMessage(&loc.mo[j])
		}
		loc.mo = loc.mo[:base]
		if i >= keep {
			loc.name = ""
			loc.allocName = ""
		}
	}
	e.locs = e.locs[:keep]
	e.freeThreads = append(e.freeThreads, e.threads...)
	e.threads = e.threads[:0]
}

func (e *Engine) locName(l memmodel.Loc) string {
	if i := int(l) - 1; i >= 0 && i < len(e.locs) {
		return e.locs[i].displayName(l)
	}
	return fmt.Sprintf("x%d", l)
}

// run dispatches to the active scheduling protocol. Both protocols share
// driveStep/apply (and therefore every strategy interaction), so schedules
// and outcomes are bit-identical across them for a fixed seed.
func (e *Engine) run() {
	if e.opts.Baton {
		e.runBaton()
	} else {
		e.runDirect()
	}
}

// startRoots creates and starts the root threads and announces them to the
// strategy. The caller holds the baton.
func (e *Engine) startRoots() {
	initView, initVC := e.initMemory()

	// Root threads inherit the init thread's view (the spawn of root
	// threads synchronizes with initialization).
	lastInit := memmodel.NoEvent
	if e.nextEventID > 0 {
		lastInit = e.nextEventID - 1
	}
	nRoots := len(e.prog.threads)
	for _, rt := range e.prog.threads {
		t := e.newThread(rt.name, nil, initView, initVC)
		if e.rec != nil {
			e.rec.SpawnLinks = append(e.rec.SpawnLinks, SpawnLink{From: lastInit, Child: t.id})
		}
		e.startThread(t, rt.fn)
	}

	e.strat.Begin(ProgramInfo{
		Name:           e.prog.Name(),
		NumRootThreads: nRoots,
		Telemetry:      e.tel,
	}, e.rng)
	for i := 0; i < nRoots; i++ {
		e.strat.OnThreadStart(e.threads[i].id, memmodel.InitThread)
	}
}

// runBaton executes the legacy scheduling protocol. The engine serializes
// threads with a baton: exactly one goroutine — the host (this function)
// or one thread goroutine — may touch engine state at a time. A parked
// thread that holds the baton drives the next scheduling decision itself
// and hands the baton to the granted thread via an unbuffered channel
// select (racing a kill channel), and thread goroutines are created per
// run.
func (e *Engine) runBaton() {
	defer e.teardownBaton()
	start := time.Now()
	defer func() { e.outcome.Duration = time.Since(start) }()

	e.startRoots()

	// Kick off: the host performs the first scheduling decision, hands the
	// baton to the granted thread, and waits for the end-of-run signal.
	t, res, ended := e.driveStep()
	if ended {
		return
	}
	t.wake <- res
	<-e.endCh
}

// driveStep performs one scheduling decision: it collects the enabled
// operations, asks the strategy, applies the chosen thread's pending
// operation and returns the thread to wake together with its response.
// ended is true when the run is over (deadlock, step budget, bug with
// StopOnBug) and no thread should be woken. The caller must hold the
// baton.
func (e *Engine) driveStep() (granted *Thread, res response, ended bool) {
	if e.watchdogOn && e.outcome.Steps&watchdogMask == 0 && e.checkInterrupt() {
		return nil, response{}, true
	}
	enabled := e.enabledOps()
	if len(enabled) == 0 {
		if e.liveThreads() > 0 {
			e.outcome.Deadlocked = true
			e.setRunError(&RunError{Kind: DeadlockError, Msg: e.deadlockMsg()})
		}
		return nil, response{}, true
	}
	if e.outcome.Steps >= e.opts.MaxSteps {
		e.outcome.Aborted = true
		e.setRunError(&RunError{
			Kind: StepLimitError,
			Msg:  fmt.Sprintf("step limit (%d) exceeded", e.opts.MaxSteps),
		})
		return nil, response{}, true
	}
	tid := e.strat.NextThread(enabled)
	t := e.thread(tid)
	if t == nil || !e.isEnabled(t) {
		panic(fmt.Sprintf("pctwm: strategy %s chose non-enabled thread %d", e.strat.Name(), tid))
	}
	if e.tel != nil {
		if t == e.lastGranted {
			e.tel.SameThreadGrants++
		} else {
			e.tel.Handoffs++
		}
		e.lastGranted = t
	}
	e.outcome.Steps++
	e.stepsSinceProgress++
	res = e.apply(t)
	if e.stopped {
		return nil, response{}, true
	}
	if e.stepsSinceProgress >= e.opts.StallWindow {
		e.stepsSinceProgress = 0
		e.strat.OnSpin(tid)
	}
	return t, res, false
}

// setRunError records the first abnormal-termination cause of the run.
func (e *Engine) setRunError(err *RunError) {
	if e.outcome.Err == nil {
		e.outcome.Err = err
	}
}

// deadlockMsg renders the blocked live threads deterministically
// (ascending thread id).
func (e *Engine) deadlockMsg() string {
	msg := "deadlock: no enabled thread among"
	for _, t := range e.threads {
		if t.started && !t.finished {
			msg += fmt.Sprintf(" t%d", t.id)
		}
	}
	return msg
}

// signalEnd notifies the host that the run is over (legacy protocol).
// endCh is buffered and at most one end is signalled per run (the baton is
// unique), so the send never blocks.
func (e *Engine) signalEnd() {
	e.endCh <- struct{}{}
}

// initMemory creates the initialization writes (thread 0) and returns the
// view/clock every root thread inherits (zero values for models without
// views). The returned view and clock are backend-owned scratch (their
// backing arrays persist across runs); callers must copy, not retain.
func (e *Engine) initMemory() (memmodel.View, vclock.VC) {
	k := len(e.prog.locs)
	if e.initWarm && len(e.locs) != k {
		// The program's location table changed between runs (programs are
		// not supposed to be mutated after NewRunner, but stay safe):
		// discard the cached init state and rebuild cold.
		e.invalidateInit()
	}
	if !e.initWarm {
		e.model.initStatic()
		e.initWarm = true
	}
	// Initialization events bypass the strategy and the race detector; only
	// the event-id counter advances (ids feed the messages and must stay
	// identical across runs and options). Recorded runs additionally replay
	// the init events into the recording.
	e.nextEventID = memmodel.EventID(k)
	if e.rec != nil {
		e.recordInitEvents()
	}
	return e.model.rootView()
}

// recordInitEvents appends the k initialization write events to the
// recording (ids 0..k-1, matching the cached init messages).
func (e *Engine) recordInitEvents() {
	for i, d := range e.prog.locs {
		ev := memmodel.Event{
			ID: memmodel.EventID(i), TID: memmodel.InitThread, Index: i,
			Label: memmodel.Label{
				Kind:  memmodel.KindWrite,
				Order: memmodel.Relaxed,
				Loc:   memmodel.Loc(i + 1),
				WVal:  d.init,
			},
			ReadsFrom: memmodel.NoEvent,
			Stamp:     1,
		}
		e.record(&ev)
	}
}

// invalidateInit releases the cached static init state (see initWarm).
func (e *Engine) invalidateInit() {
	for i := range e.locs {
		loc := &e.locs[i]
		for j := range loc.mo {
			e.model.releaseMessage(&loc.mo[j])
		}
		loc.mo = loc.mo[:0]
		loc.name = ""
		loc.allocName = ""
	}
	e.locs = e.locs[:0]
	e.initWarm = false
}

// pushLoc extends the location table by one slot, reusing the slot's
// modification-order backing array from a previous run when available.
func (e *Engine) pushLoc() *location {
	if len(e.locs) < cap(e.locs) {
		e.locs = e.locs[:len(e.locs)+1]
	} else {
		e.locs = append(e.locs, location{})
	}
	return &e.locs[len(e.locs)-1]
}

func (e *Engine) thread(tid memmodel.ThreadID) *Thread {
	if i := int(tid) - 1; i >= 0 && i < len(e.threads) {
		return e.threads[i]
	}
	return nil
}

func (e *Engine) newThread(name string, parent *Thread, view memmodel.View, vc vclock.VC) *Thread {
	e.nextTID++
	var t *Thread
	if n := len(e.freeThreads); n > 0 {
		t = e.freeThreads[n-1]
		e.freeThreads = e.freeThreads[:n-1]
		t.recycle()
	} else {
		t = &Thread{eng: e}
		if e.opts.Baton {
			t.wake = make(chan response)
		}
	}
	t.id = e.nextTID
	t.name = name
	t.parent = parent
	t.firstPark = true
	t.cur.CopyFrom(view)
	t.curVC.CopyFrom(vc)
	e.threads = append(e.threads, t)
	return t
}

// startThread launches (or, on the direct path, reuses) the goroutine for
// t and waits for it to park on its first operation or finish immediately.
// The caller holds the baton.
func (e *Engine) startThread(t *Thread, fn ThreadFunc) {
	if e.opts.Baton {
		e.startThreadBaton(t, fn)
	} else {
		e.startThreadDirect(t, fn)
	}
}

// startThreadBaton launches a per-run goroutine for t (legacy protocol).
func (e *Engine) startThreadBaton(t *Thread, fn ThreadFunc) {
	t.started = true
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer func() {
			r := recover()
			if r != nil {
				if _, ok := r.(killedError); ok {
					return
				}
			}
			if t.firstPark {
				// Never parked: the starter is waiting on doneCh.
				select {
				case e.doneCh <- threadDone{tid: t.id, panicked: r != nil, panicVal: r}:
				case <-e.killed:
				}
				return
			}
			// This goroutine holds the baton: account the completion and
			// drive the next scheduling decision before exiting.
			e.finishThread(t, threadDone{tid: t.id, panicked: r != nil, panicVal: r})
			if e.stopped {
				e.signalEnd()
				return
			}
			t2, res, ended := e.driveStep()
			if ended {
				e.signalEnd()
				return
			}
			select {
			case t2.wake <- res:
			case <-e.killed:
			}
		}()
		fn(t)
	}()
	e.waitForPark(t)
}

// waitForPark blocks until thread t either parks on its first operation or
// terminates (legacy protocol). It is used only during thread startup,
// when the starter holds the baton and t is the only runnable thread.
func (e *Engine) waitForPark(t *Thread) {
	select {
	case parked := <-e.parkCh:
		if parked != t {
			panic("pctwm: engine serialization violated: unexpected thread parked")
		}
	case done := <-e.doneCh:
		if done.tid != t.id {
			panic("pctwm: engine serialization violated: unexpected thread finished")
		}
		e.finishThread(t, done)
	}
}

func (e *Engine) finishThread(t *Thread, done threadDone) {
	t.finished = true
	e.model.onThreadFinish(t)
	e.stepsSinceProgress = 0
	if done.panicked {
		msg := fmt.Sprintf("thread %s (t%d) crashed: %v", t.Name(), t.id, done.panicVal)
		e.reportBug(msg)
		e.setRunError(&RunError{Kind: PanicError, TID: t.id, Msg: msg})
	}
}

func (e *Engine) reportBug(msg string) {
	e.outcome.BugHit = true
	e.outcome.BugMessages = append(e.outcome.BugMessages, msg)
	if e.opts.StopOnBug {
		e.stopped = true
	}
}

func (e *Engine) isEnabled(t *Thread) bool {
	if !t.started || t.finished {
		return false
	}
	// A thread parked on Join is blocked until its target terminates.
	if t.req.code == opJoin {
		child := e.thread(t.req.joinTID)
		if child == nil || !child.finished {
			return false
		}
	}
	return true
}

// enabledOps collects the pending operations of all enabled threads in
// ascending thread-id order (the threads slice is in creation = id order).
// Each thread's PendingOp was precomputed when it parked (Thread.submit),
// so collecting is a plain copy loop. The returned slice aliases an engine
// scratch buffer: strategies must not retain it across calls.
func (e *Engine) enabledOps() []PendingOp {
	ops := e.enabledBuf[:0]
	for _, t := range e.threads {
		if e.isEnabled(t) {
			ops = append(ops, t.pend)
		}
	}
	e.enabledBuf = ops
	return ops
}

func (e *Engine) liveThreads() int {
	n := 0
	for _, t := range e.threads {
		if t.started && !t.finished {
			n++
		}
	}
	return n
}

// newEvent fills the engine's event scratch slot and returns it. At most
// one event is under construction at a time (the execution is serialized
// and every exec path finishes its event before starting another), so a
// single scratch slot avoids a per-event heap allocation.
func (e *Engine) newEvent(tid memmodel.ThreadID, index int, lab memmodel.Label) *memmodel.Event {
	e.evScratch = memmodel.Event{
		ID:        e.nextEventID,
		TID:       tid,
		Index:     index,
		Label:     lab,
		ReadsFrom: memmodel.NoEvent,
	}
	e.nextEventID++
	return &e.evScratch
}

func (e *Engine) record(ev *memmodel.Event) {
	if e.rec == nil {
		return
	}
	e.rec.Events = append(e.rec.Events, *ev)
	if ev.Label.Order.IsSC() && ev.Label.Kind != memmodel.KindAssert {
		e.rec.SCOrder = append(e.rec.SCOrder, ev.ID)
	}
}

// finalValues builds the Outcome's FinalValues map. Programs reach only a
// handful of distinct final states across a trial campaign, so the maps
// are interned per Runner: runs ending in an already-seen state share the
// cached (read-only, see Outcome.FinalValues) map instead of rebuilding
// it — map construction was the dominant per-run allocation.
func (e *Engine) finalValues() map[string]memmodel.Value {
	buf := e.fvScratch[:0]
	miss := false
	for i := range e.prog.locs {
		if i < len(e.locs) && len(e.locs[i].mo) > 0 {
			buf = append(buf, e.model.finalValue(i, &e.locs[i]))
		} else {
			miss = true // keep the cache key aligned with map contents
			break
		}
	}
	e.fvScratch = buf
	var h uint64
	if !miss {
		h = fvHash(buf)
	outer:
		for i := range e.fvCache {
			ent := &e.fvCache[i]
			if ent.hash != h || len(ent.vals) != len(buf) {
				continue
			}
			for j := range buf {
				if ent.vals[j] != buf[j] {
					continue outer
				}
			}
			return ent.m
		}
	}
	vals := make(map[string]memmodel.Value, len(e.prog.locs))
	for i := range e.prog.locs {
		if i < len(e.locs) && len(e.locs[i].mo) > 0 {
			vals[e.locs[i].name] = e.model.finalValue(i, &e.locs[i])
		}
	}
	if !miss && len(e.fvCache) < maxFinalValueCache {
		e.fvCache = append(e.fvCache, fvEntry{
			hash: h,
			vals: append([]memmodel.Value(nil), buf...),
			m:    vals,
		})
	}
	return vals
}

// maxFinalValueCache bounds the per-Runner interning cache of FinalValues
// maps: a campaign whose program reaches more distinct final states than
// this (or that keeps a Runner hot across many configurations) builds
// fresh maps for the overflow instead of growing Runner-retained memory
// without limit. The cached entries' hashes keep the lookup scan cheap
// even when every run misses.
const maxFinalValueCache = 64

// teardownBaton unwinds the legacy protocol's per-run goroutines.
func (e *Engine) teardownBaton() {
	close(e.killed)
	e.wg.Wait()
}
