// Package engine executes weak-memory test programs under the control of a
// pluggable testing strategy. It is the repository's substitute for the
// C11Tester framework the paper builds on: threads are fully serialized,
// every read consults the strategy for which coherence-legal write to read
// from, and thread views / message bags implement the paper's Algorithm 2
// semantics for the C11 memory model of §4.
package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"pctwm/internal/memmodel"
	"pctwm/internal/race"
	"pctwm/internal/vclock"
)

// Engine runs one execution of a program under a strategy. Create a fresh
// Engine per run via Run; an Engine is not reusable.
type Engine struct {
	prog  *Program
	strat Strategy
	opts  Options
	rng   *rand.Rand

	locs     []location // index = Loc-1
	locNames map[memmodel.Loc]string

	threads map[memmodel.ThreadID]*Thread
	nextTID memmodel.ThreadID

	parkCh chan *Thread
	doneCh chan threadDone
	killed chan struct{}
	wg     sync.WaitGroup

	// global SC synchronization state (paper §4 (SC) axiom, operationally:
	// every SC event joins and then extends the global SC view).
	scView memmodel.View
	scVC   vclock.VC

	nextEventID memmodel.EventID
	outcome     Outcome
	rec         *Recording
	det         *race.Detector

	stepsSinceProgress int
	stopped            bool
}

type threadDone struct {
	tid      memmodel.ThreadID
	panicked bool
	panicVal any
}

// Run executes prog once under strat with the given random seed and
// options, returning the outcome. The seed drives only the strategy's
// decisions; the engine itself is deterministic.
func Run(prog *Program, strat Strategy, seed int64, opts Options) *Outcome {
	if prog.NumThreads() == 0 {
		panic(fmt.Sprintf("pctwm: program %q has no threads", prog.Name()))
	}
	prog.sealed.Store(true)
	e := &Engine{
		prog:     prog,
		strat:    strat,
		opts:     opts.withDefaults(),
		rng:      rand.New(rand.NewSource(seed)),
		locNames: make(map[memmodel.Loc]string),
		threads:  make(map[memmodel.ThreadID]*Thread),
		parkCh:   make(chan *Thread),
		doneCh:   make(chan threadDone),
		killed:   make(chan struct{}),
	}
	if e.opts.Record {
		e.rec = &Recording{LocNames: e.locNames}
	}
	if e.opts.DetectRaces {
		e.det = race.NewDetector(e.locName, e.opts.MaxRaces)
	}
	start := time.Now()
	e.run()
	e.outcome.Duration = time.Since(start)
	e.outcome.Recording = e.rec
	if e.det != nil {
		e.outcome.Races = e.det.Races()
	}
	e.outcome.FinalValues = e.finalValues()
	return &e.outcome
}

func (e *Engine) locName(l memmodel.Loc) string {
	if n, ok := e.locNames[l]; ok {
		return n
	}
	return fmt.Sprintf("x%d", l)
}

func (e *Engine) run() {
	defer e.teardown()

	initView, initVC := e.initMemory()

	// Start root threads; they inherit the init thread's view (the spawn
	// of root threads synchronizes with initialization).
	lastInit := memmodel.NoEvent
	if e.nextEventID > 0 {
		lastInit = e.nextEventID - 1
	}
	roots := make([]*Thread, 0, len(e.prog.threads))
	for _, rt := range e.prog.threads {
		t := e.newThread(rt.name, initView, initVC)
		roots = append(roots, t)
		if e.rec != nil {
			e.rec.SpawnLinks = append(e.rec.SpawnLinks, SpawnLink{From: lastInit, Child: t.id})
		}
		e.startThread(t, rt.fn)
	}

	e.strat.Begin(ProgramInfo{
		Name:           e.prog.Name(),
		NumRootThreads: len(roots),
	}, e.rng)
	for _, t := range roots {
		e.strat.OnThreadStart(t.id, memmodel.InitThread)
	}

	for !e.stopped {
		enabled := e.enabledOps()
		if len(enabled) == 0 {
			if e.liveThreads() > 0 {
				e.outcome.Deadlocked = true
			}
			return
		}
		if e.outcome.Steps >= e.opts.MaxSteps {
			e.outcome.Aborted = true
			return
		}
		tid := e.strat.NextThread(enabled)
		t := e.threads[tid]
		if t == nil || !e.isEnabled(t) {
			panic(fmt.Sprintf("pctwm: strategy %s chose non-enabled thread %d", e.strat.Name(), tid))
		}
		e.outcome.Steps++
		e.stepsSinceProgress++
		e.execute(t)
		if e.stepsSinceProgress >= e.opts.StallWindow {
			e.stepsSinceProgress = 0
			e.strat.OnSpin(tid)
		}
	}
}

// initMemory creates the initialization writes (thread 0) and returns the
// view/clock every root thread inherits.
func (e *Engine) initMemory() (memmodel.View, vclock.VC) {
	var view memmodel.View
	var vc vclock.VC
	e.locs = make([]location, 0, len(e.prog.locs))
	for i, d := range e.prog.locs {
		l := memmodel.Loc(i + 1)
		e.locNames[l] = d.name
		vc.Tick(int(memmodel.InitThread))
		ev := e.newEvent(memmodel.InitThread, i, memmodel.Label{
			Kind:  memmodel.KindWrite,
			Order: memmodel.Relaxed,
			Loc:   l,
			WVal:  d.init,
		})
		ev.Stamp = 1
		e.record(ev)
		var bag memmodel.View
		bag.Set(l, 1)
		e.locs = append(e.locs, location{
			name: d.name,
			mo: []message{{
				stamp: 1, val: d.init,
				tid: memmodel.InitThread, event: ev.ID,
				bag: bag, relVC: vc.Clone(),
			}},
		})
		view.Set(l, 1)
	}
	return view, vc
}

func (e *Engine) newThread(name string, view memmodel.View, vc vclock.VC) *Thread {
	e.nextTID++
	t := &Thread{
		eng:    e,
		id:     e.nextTID,
		name:   name,
		resume: make(chan response),
		cur:    view.Clone(),
		curVC:  vc.Clone(),
	}
	e.threads[t.id] = t
	return t
}

// startThread launches the goroutine for t and waits for it to park on its
// first operation (or finish immediately).
func (e *Engine) startThread(t *Thread, fn ThreadFunc) {
	t.started = true
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedError); ok {
					return
				}
				select {
				case e.doneCh <- threadDone{tid: t.id, panicked: true, panicVal: r}:
				case <-e.killed:
				}
				return
			}
			select {
			case e.doneCh <- threadDone{tid: t.id}:
			case <-e.killed:
			}
		}()
		fn(t)
	}()
	e.waitForPark(t)
}

// waitForPark blocks until thread t either parks on its next operation or
// terminates. The engine's serialization invariant guarantees t is the
// only runnable thread.
func (e *Engine) waitForPark(t *Thread) {
	select {
	case parked := <-e.parkCh:
		if parked != t {
			panic("pctwm: engine serialization violated: unexpected thread parked")
		}
	case done := <-e.doneCh:
		if done.tid != t.id {
			panic("pctwm: engine serialization violated: unexpected thread finished")
		}
		e.finishThread(t, done)
	}
}

func (e *Engine) finishThread(t *Thread, done threadDone) {
	t.finished = true
	e.stepsSinceProgress = 0
	if done.panicked {
		e.reportBug(fmt.Sprintf("thread %s (t%d) crashed: %v", t.name, t.id, done.panicVal))
	}
}

func (e *Engine) reportBug(msg string) {
	e.outcome.BugHit = true
	e.outcome.BugMessages = append(e.outcome.BugMessages, msg)
	if e.opts.StopOnBug {
		e.stopped = true
	}
}

func (e *Engine) isEnabled(t *Thread) bool {
	if !t.started || t.finished {
		return false
	}
	// A thread parked on Join is blocked until its target terminates.
	if t.req.code == opJoin {
		child := e.threads[t.req.joinTID]
		if child == nil || !child.finished {
			return false
		}
	}
	return true
}

func (e *Engine) enabledOps() []PendingOp {
	tids := make([]memmodel.ThreadID, 0, len(e.threads))
	for tid := range e.threads {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	ops := make([]PendingOp, 0, len(tids))
	for _, tid := range tids {
		t := e.threads[tid]
		if e.isEnabled(t) {
			ops = append(ops, t.pending())
		}
	}
	return ops
}

func (e *Engine) liveThreads() int {
	n := 0
	for _, t := range e.threads {
		if t.started && !t.finished {
			n++
		}
	}
	return n
}

func (e *Engine) newEvent(tid memmodel.ThreadID, index int, lab memmodel.Label) *memmodel.Event {
	ev := &memmodel.Event{
		ID:        e.nextEventID,
		TID:       tid,
		Index:     index,
		Label:     lab,
		ReadsFrom: memmodel.NoEvent,
	}
	e.nextEventID++
	return ev
}

func (e *Engine) record(ev *memmodel.Event) {
	if e.rec == nil {
		return
	}
	e.rec.Events = append(e.rec.Events, *ev)
	if ev.Label.Order.IsSC() && ev.Label.Kind != memmodel.KindAssert {
		e.rec.SCOrder = append(e.rec.SCOrder, ev.ID)
	}
}

func (e *Engine) finalValues() map[string]memmodel.Value {
	vals := make(map[string]memmodel.Value, len(e.prog.locs))
	for i := range e.prog.locs {
		if i < len(e.locs) && len(e.locs[i].mo) > 0 {
			vals[e.locs[i].name] = e.locs[i].maximal().val
		}
	}
	return vals
}

func (e *Engine) teardown() {
	close(e.killed)
	e.wg.Wait()
}
