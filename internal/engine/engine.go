// Package engine executes weak-memory test programs under the control of a
// pluggable testing strategy. It is the repository's substitute for the
// C11Tester framework the paper builds on: threads are fully serialized,
// every read consults the strategy for which coherence-legal write to read
// from, and thread views / message bags implement the paper's Algorithm 2
// semantics for the C11 memory model of §4.
package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pctwm/internal/memmodel"
	"pctwm/internal/race"
	"pctwm/internal/vclock"
)

// Engine holds the mutable state of one execution. It is embedded in a
// Runner and reset between runs; use Run or Runner for the public API.
type Engine struct {
	prog   *Program
	strat  Strategy
	opts   Options
	rng    *rand.Rand
	rngSrc xoshiro // backing source of rng; cheap O(1) re-seed per run

	// viewArena and vcArena recycle the per-write view bags and release
	// clocks across this engine's executions. They are engine-local (not
	// package-global) so their freelists need no synchronization: all
	// accesses happen under the scheduler baton.
	viewArena memmodel.ViewArena
	vcArena   vclock.Arena

	locs []location // index = Loc-1

	threads     []*Thread // index = ThreadID-1, creation order
	freeThreads []*Thread // recycled thread shells from earlier runs
	nextTID     memmodel.ThreadID

	// parkCh/doneCh serve thread startup (first park / immediate finish);
	// both are reused across runs. killed is closed at teardown and must be
	// fresh per run. endCh (buffered) carries the end-of-run signal from
	// whichever goroutine holds the baton back to the host.
	parkCh chan *Thread
	doneCh chan threadDone
	endCh  chan struct{}
	killed chan struct{}
	wg     sync.WaitGroup

	// global SC synchronization state (paper §4 (SC) axiom, operationally:
	// every SC event joins and then extends the global SC view).
	scView memmodel.View
	scVC   vclock.VC

	nextEventID memmodel.EventID
	outcome     Outcome
	rec         *Recording
	det         *race.Detector

	// scratch buffers reused across steps to keep the hot loop
	// allocation-free.
	evScratch  memmodel.Event
	enabledBuf []PendingOp
	candBuf    []ReadCandidate

	stepsSinceProgress int
	stopped            bool
}

type threadDone struct {
	tid      memmodel.ThreadID
	panicked bool
	panicVal any
}

// Runner executes a program repeatedly, reusing location tables, message
// bags, thread shells, scratch buffers and scheduler channels between runs
// so that a steady-state trial loop allocates near-zero memory per run.
//
// A Runner is bound to one immutable Program and one Options value. It is
// NOT safe for concurrent use; for parallel trials give each worker its own
// Runner (see internal/harness.RunTrialsPooled).
//
// Determinism guarantee: for a fixed program, strategy and seed, a run
// produces the same Outcome (and byte-identical Recording) whether the
// Runner is fresh or has executed any number of prior runs, and whether
// the trial executes on the serial or the pooled harness path.
type Runner struct {
	e Engine
}

// NewRunner prepares a reusable Runner for prog. The program is sealed on
// first use exactly as with Run.
func NewRunner(prog *Program, opts Options) *Runner {
	if prog.NumThreads() == 0 {
		panic(fmt.Sprintf("pctwm: program %q has no threads", prog.Name()))
	}
	prog.sealed.Store(true)
	r := &Runner{}
	e := &r.e
	e.prog = prog
	e.opts = opts.withDefaults()
	e.parkCh = make(chan *Thread)
	e.doneCh = make(chan threadDone)
	e.endCh = make(chan struct{}, 1)
	return r
}

// Program returns the program this Runner executes.
func (r *Runner) Program() *Program { return r.e.prog }

// Run executes the program once under strat with the given random seed and
// returns the outcome. The seed drives only the strategy's decisions; the
// engine itself is deterministic. The returned Outcome does not alias
// Runner state and stays valid across subsequent runs.
func (r *Runner) Run(strat Strategy, seed int64) *Outcome {
	e := &r.e
	e.reset(strat, seed)
	start := time.Now()
	e.run()
	e.outcome.Duration = time.Since(start)
	e.finalize()
	out := e.outcome
	e.outcome = Outcome{}
	return &out
}

// Run executes prog once under strat with the given random seed and
// options, returning the outcome. It is a one-shot wrapper over Runner;
// repeated-trial loops should create a Runner (or use the harness) to
// amortize setup.
func Run(prog *Program, strat Strategy, seed int64, opts Options) *Outcome {
	return NewRunner(prog, opts).Run(strat, seed)
}

// reset prepares the engine for a fresh execution. Location tables, thread
// shells and scratch buffers retained by the previous run are reused;
// everything observable starts from the initial state.
func (e *Engine) reset(strat Strategy, seed int64) {
	e.strat = strat
	e.rngSrc.Seed(seed)
	if e.rng == nil {
		e.rng = rand.New(&e.rngSrc)
	}
	e.killed = make(chan struct{})
	e.nextTID = 0
	e.scView.Reset()
	e.scVC.Reset()
	e.nextEventID = 0
	e.outcome = Outcome{}
	e.rec = nil
	if e.opts.Record {
		e.rec = &Recording{}
	}
	if e.opts.DetectRaces {
		if e.det == nil {
			e.det = race.NewDetector(e.locName, e.opts.MaxRaces)
		} else {
			e.det.Reset()
		}
	}
	e.stepsSinceProgress = 0
	e.stopped = false
}

// finalize snapshots everything the Outcome needs from engine state, then
// releases the run's pooled resources (message bags, release clocks,
// location tables, thread shells) back to their arenas.
func (e *Engine) finalize() {
	e.outcome.Recording = e.rec
	if e.rec != nil {
		names := make(map[memmodel.Loc]string, len(e.locs))
		for i := range e.locs {
			l := memmodel.Loc(i + 1)
			names[l] = e.locs[i].displayName(l)
		}
		e.rec.LocNames = names
	}
	if e.det != nil {
		// Copy: the detector's race slice is reused by the next run's Reset,
		// while Outcomes must stay valid indefinitely.
		if rs := e.det.Races(); len(rs) > 0 {
			e.outcome.Races = append([]race.Race(nil), rs...)
		}
	}
	e.outcome.FinalValues = e.finalValues()
	e.releaseRun()
}

// releaseRun drains the per-run pooled state. Message bags and release
// clocks go back to the arenas; locations and thread shells are truncated
// in place so the next run reuses their backing storage.
func (e *Engine) releaseRun() {
	for i := range e.locs {
		loc := &e.locs[i]
		for j := range loc.mo {
			e.viewArena.Release(&loc.mo[j].bag)
			e.vcArena.Release(&loc.mo[j].relVC)
		}
		loc.mo = loc.mo[:0]
		loc.name = ""
		loc.allocName = ""
	}
	e.locs = e.locs[:0]
	e.freeThreads = append(e.freeThreads, e.threads...)
	e.threads = e.threads[:0]
}

func (e *Engine) locName(l memmodel.Loc) string {
	if i := int(l) - 1; i >= 0 && i < len(e.locs) {
		return e.locs[i].displayName(l)
	}
	return fmt.Sprintf("x%d", l)
}

// run executes the scheduling protocol. The engine serializes threads with
// a baton: exactly one goroutine — the host (this function) or one thread
// goroutine — may touch engine state at a time. A parked thread that holds
// the baton drives the next scheduling decision itself and hands the baton
// directly to the granted thread, so consecutive grants to the same thread
// cost no goroutine switch and alternating grants cost one (the classic
// engine-in-the-middle protocol costs two per step).
func (e *Engine) run() {
	defer e.teardown()

	initView, initVC := e.initMemory()

	// Start root threads; they inherit the init thread's view (the spawn
	// of root threads synchronizes with initialization).
	lastInit := memmodel.NoEvent
	if e.nextEventID > 0 {
		lastInit = e.nextEventID - 1
	}
	nRoots := len(e.prog.threads)
	for _, rt := range e.prog.threads {
		t := e.newThread(rt.name, initView, initVC)
		if e.rec != nil {
			e.rec.SpawnLinks = append(e.rec.SpawnLinks, SpawnLink{From: lastInit, Child: t.id})
		}
		e.startThread(t, rt.fn)
	}

	e.strat.Begin(ProgramInfo{
		Name:           e.prog.Name(),
		NumRootThreads: nRoots,
	}, e.rng)
	for i := 0; i < nRoots; i++ {
		e.strat.OnThreadStart(e.threads[i].id, memmodel.InitThread)
	}

	// Kick off: the host performs the first scheduling decision, hands the
	// baton to the granted thread, and waits for the end-of-run signal.
	t, res, ended := e.driveStep()
	if ended {
		return
	}
	t.wake <- res
	<-e.endCh
}

// driveStep performs one scheduling decision: it collects the enabled
// operations, asks the strategy, applies the chosen thread's pending
// operation and returns the thread to wake together with its response.
// ended is true when the run is over (deadlock, step budget, bug with
// StopOnBug) and no thread should be woken. The caller must hold the
// baton.
func (e *Engine) driveStep() (granted *Thread, res response, ended bool) {
	enabled := e.enabledOps()
	if len(enabled) == 0 {
		if e.liveThreads() > 0 {
			e.outcome.Deadlocked = true
		}
		return nil, response{}, true
	}
	if e.outcome.Steps >= e.opts.MaxSteps {
		e.outcome.Aborted = true
		return nil, response{}, true
	}
	tid := e.strat.NextThread(enabled)
	t := e.thread(tid)
	if t == nil || !e.isEnabled(t) {
		panic(fmt.Sprintf("pctwm: strategy %s chose non-enabled thread %d", e.strat.Name(), tid))
	}
	e.outcome.Steps++
	e.stepsSinceProgress++
	res = e.apply(t)
	if e.stopped {
		return nil, response{}, true
	}
	if e.stepsSinceProgress >= e.opts.StallWindow {
		e.stepsSinceProgress = 0
		e.strat.OnSpin(tid)
	}
	return t, res, false
}

// signalEnd notifies the host that the run is over. endCh is buffered and
// at most one end is signalled per run (the baton is unique), so the send
// never blocks.
func (e *Engine) signalEnd() {
	e.endCh <- struct{}{}
}

// initMemory creates the initialization writes (thread 0) and returns the
// view/clock every root thread inherits.
func (e *Engine) initMemory() (memmodel.View, vclock.VC) {
	var view memmodel.View
	var vc vclock.VC
	for i, d := range e.prog.locs {
		l := memmodel.Loc(i + 1)
		vc.Tick(int(memmodel.InitThread))
		ev := e.newEvent(memmodel.InitThread, i, memmodel.Label{
			Kind:  memmodel.KindWrite,
			Order: memmodel.Relaxed,
			Loc:   l,
			WVal:  d.init,
		})
		ev.Stamp = 1
		e.record(ev)
		bag := e.viewArena.New(int(l))
		bag.Set(l, 1)
		loc := e.pushLoc()
		loc.name = d.name
		loc.mo = append(loc.mo, message{
			stamp: 1, val: d.init,
			tid: memmodel.InitThread, event: ev.ID,
			bag: bag, relVC: e.vcArena.Clone(vc),
		})
		view.Set(l, 1)
	}
	return view, vc
}

// pushLoc extends the location table by one slot, reusing the slot's
// modification-order backing array from a previous run when available.
func (e *Engine) pushLoc() *location {
	if len(e.locs) < cap(e.locs) {
		e.locs = e.locs[:len(e.locs)+1]
	} else {
		e.locs = append(e.locs, location{})
	}
	return &e.locs[len(e.locs)-1]
}

func (e *Engine) thread(tid memmodel.ThreadID) *Thread {
	if i := int(tid) - 1; i >= 0 && i < len(e.threads) {
		return e.threads[i]
	}
	return nil
}

func (e *Engine) newThread(name string, view memmodel.View, vc vclock.VC) *Thread {
	e.nextTID++
	var t *Thread
	if n := len(e.freeThreads); n > 0 {
		t = e.freeThreads[n-1]
		e.freeThreads = e.freeThreads[:n-1]
		t.recycle()
	} else {
		t = &Thread{eng: e, wake: make(chan response)}
	}
	t.id = e.nextTID
	t.name = name
	t.firstPark = true
	t.cur.CopyFrom(view)
	t.curVC.CopyFrom(vc)
	e.threads = append(e.threads, t)
	return t
}

// startThread launches the goroutine for t and waits for it to park on its
// first operation (or finish immediately). The caller holds the baton.
func (e *Engine) startThread(t *Thread, fn ThreadFunc) {
	t.started = true
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer func() {
			r := recover()
			if r != nil {
				if _, ok := r.(killedError); ok {
					return
				}
			}
			if t.firstPark {
				// Never parked: the starter is waiting on doneCh.
				select {
				case e.doneCh <- threadDone{tid: t.id, panicked: r != nil, panicVal: r}:
				case <-e.killed:
				}
				return
			}
			// This goroutine holds the baton: account the completion and
			// drive the next scheduling decision before exiting.
			e.finishThread(t, threadDone{tid: t.id, panicked: r != nil, panicVal: r})
			if e.stopped {
				e.signalEnd()
				return
			}
			t2, res, ended := e.driveStep()
			if ended {
				e.signalEnd()
				return
			}
			select {
			case t2.wake <- res:
			case <-e.killed:
			}
		}()
		fn(t)
	}()
	e.waitForPark(t)
}

// waitForPark blocks until thread t either parks on its first operation or
// terminates. It is used only during thread startup, when the starter
// holds the baton and t is the only runnable thread.
func (e *Engine) waitForPark(t *Thread) {
	select {
	case parked := <-e.parkCh:
		if parked != t {
			panic("pctwm: engine serialization violated: unexpected thread parked")
		}
	case done := <-e.doneCh:
		if done.tid != t.id {
			panic("pctwm: engine serialization violated: unexpected thread finished")
		}
		e.finishThread(t, done)
	}
}

func (e *Engine) finishThread(t *Thread, done threadDone) {
	t.finished = true
	e.stepsSinceProgress = 0
	if done.panicked {
		e.reportBug(fmt.Sprintf("thread %s (t%d) crashed: %v", t.name, t.id, done.panicVal))
	}
}

func (e *Engine) reportBug(msg string) {
	e.outcome.BugHit = true
	e.outcome.BugMessages = append(e.outcome.BugMessages, msg)
	if e.opts.StopOnBug {
		e.stopped = true
	}
}

func (e *Engine) isEnabled(t *Thread) bool {
	if !t.started || t.finished {
		return false
	}
	// A thread parked on Join is blocked until its target terminates.
	if t.req.code == opJoin {
		child := e.thread(t.req.joinTID)
		if child == nil || !child.finished {
			return false
		}
	}
	return true
}

// enabledOps collects the pending operations of all enabled threads in
// ascending thread-id order (the threads slice is in creation = id order).
// The returned slice aliases an engine scratch buffer: strategies must not
// retain it across calls.
func (e *Engine) enabledOps() []PendingOp {
	ops := e.enabledBuf[:0]
	for _, t := range e.threads {
		if e.isEnabled(t) {
			ops = append(ops, t.pending())
		}
	}
	e.enabledBuf = ops
	return ops
}

func (e *Engine) liveThreads() int {
	n := 0
	for _, t := range e.threads {
		if t.started && !t.finished {
			n++
		}
	}
	return n
}

// newEvent fills the engine's event scratch slot and returns it. At most
// one event is under construction at a time (the execution is serialized
// and every exec path finishes its event before starting another), so a
// single scratch slot avoids a per-event heap allocation.
func (e *Engine) newEvent(tid memmodel.ThreadID, index int, lab memmodel.Label) *memmodel.Event {
	e.evScratch = memmodel.Event{
		ID:        e.nextEventID,
		TID:       tid,
		Index:     index,
		Label:     lab,
		ReadsFrom: memmodel.NoEvent,
	}
	e.nextEventID++
	return &e.evScratch
}

func (e *Engine) record(ev *memmodel.Event) {
	if e.rec == nil {
		return
	}
	e.rec.Events = append(e.rec.Events, *ev)
	if ev.Label.Order.IsSC() && ev.Label.Kind != memmodel.KindAssert {
		e.rec.SCOrder = append(e.rec.SCOrder, ev.ID)
	}
}

func (e *Engine) finalValues() map[string]memmodel.Value {
	vals := make(map[string]memmodel.Value, len(e.prog.locs))
	for i := range e.prog.locs {
		if i < len(e.locs) && len(e.locs[i].mo) > 0 {
			vals[e.locs[i].name] = e.locs[i].maximal().val
		}
	}
	return vals
}

func (e *Engine) teardown() {
	close(e.killed)
	e.wg.Wait()
}
