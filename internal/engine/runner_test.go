package engine_test

import (
	"reflect"
	"testing"

	"pctwm/internal/benchprog"
	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// stripTiming zeroes the only non-deterministic Outcome field so outcomes
// can be compared with reflect.DeepEqual.
func stripTiming(o *engine.Outcome) *engine.Outcome {
	c := *o
	c.Duration = 0
	return &c
}

// runnerDeterminismPrograms picks two structurally different benchmarks: a
// spin-lock-style program (exercises RMWs, spins, OnSpin heuristics) and a
// queue (exercises Alloc, spawn/join, release sequences).
var runnerDeterminismPrograms = []string{"rwlock", "msqueue"}

// TestRunnerSeedDeterminism checks the Runner reuse contract: for a fixed
// program, strategy and seed, the Outcome (including the full Recording)
// is identical whether the Runner is fresh or has executed any number of
// prior runs with other seeds.
func TestRunnerSeedDeterminism(t *testing.T) {
	for _, name := range runnerDeterminismPrograms {
		t.Run(name, func(t *testing.T) {
			bench, err := benchprog.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			prog := bench.Program(0)
			opts := bench.Options()
			opts.Record = true
			opts.DetectRaces = true

			const seeds = 25

			// Reference: a fresh Runner (and a fresh strategy) per seed.
			fresh := make([]*engine.Outcome, seeds)
			for seed := 0; seed < seeds; seed++ {
				r := engine.NewRunner(prog, opts)
				fresh[seed] = stripTiming(r.Run(core.NewPCTWM(3, 2, 40), int64(seed)))
			}

			// One Runner and one strategy value reused across every seed.
			reused := engine.NewRunner(prog, opts)
			strat := core.NewPCTWM(3, 2, 40)
			for seed := 0; seed < seeds; seed++ {
				got := stripTiming(reused.Run(strat, int64(seed)))
				if !reflect.DeepEqual(got, fresh[seed]) {
					t.Fatalf("seed %d: reused-Runner outcome differs from fresh-Runner outcome\nreused: %+v\nfresh:  %+v",
						seed, got, fresh[seed])
				}
			}

			// Replaying a seed on a warm Runner reproduces it too (results
			// must not depend on the order seeds were executed in).
			for _, seed := range []int{0, seeds / 2, seeds - 1} {
				got := stripTiming(reused.Run(strat, int64(seed)))
				if !reflect.DeepEqual(got, fresh[seed]) {
					t.Fatalf("seed %d: replay on warm Runner differs", seed)
				}
			}
		})
	}
}

// TestRunnerMatchesOneShotRun checks that the legacy one-shot engine.Run
// produces the same outcomes as the Runner API.
func TestRunnerMatchesOneShotRun(t *testing.T) {
	bench, err := benchprog.ByName("rwlock")
	if err != nil {
		t.Fatal(err)
	}
	prog := bench.Program(0)
	opts := bench.Options()
	opts.Record = true

	r := engine.NewRunner(prog, opts)
	for seed := int64(0); seed < 10; seed++ {
		oneShot := stripTiming(engine.Run(prog, core.NewPCTWM(3, 2, 40), seed, opts))
		pooled := stripTiming(r.Run(core.NewPCTWM(3, 2, 40), seed))
		if !reflect.DeepEqual(oneShot, pooled) {
			t.Fatalf("seed %d: one-shot Run and Runner.Run disagree", seed)
		}
	}
}

// TestRunnerOutcomeSurvivesReuse checks that a returned Outcome (including
// races and recording) does not alias Runner state: running again must not
// mutate an earlier result.
func TestRunnerOutcomeSurvivesReuse(t *testing.T) {
	bench, err := benchprog.ByName("msqueue")
	if err != nil {
		t.Fatal(err)
	}
	prog := bench.Program(0)
	opts := bench.Options()
	opts.Record = true
	opts.DetectRaces = true

	r := engine.NewRunner(prog, opts)
	strat := core.NewPCTWM(3, 2, 40)
	first := r.Run(strat, 1)
	snapshot := deepCopyOutcome(stripTiming(first))
	for seed := int64(2); seed < 12; seed++ {
		r.Run(strat, seed)
	}
	if !reflect.DeepEqual(stripTiming(first), snapshot) {
		t.Fatal("earlier Outcome mutated by later runs on the same Runner")
	}
}

// deepCopyOutcome clones o and every slice/map it references, so aliasing
// bugs between Outcomes and Runner internals become observable.
func deepCopyOutcome(o *engine.Outcome) *engine.Outcome {
	c := *o
	c.BugMessages = append([]string(nil), o.BugMessages...)
	c.Races = append(c.Races[:0:0], o.Races...)
	if o.FinalValues != nil {
		c.FinalValues = make(map[string]memmodel.Value, len(o.FinalValues))
		for k, v := range o.FinalValues {
			c.FinalValues[k] = v
		}
	}
	if o.Recording != nil {
		rec := *o.Recording
		rec.Events = append(rec.Events[:0:0], o.Recording.Events...)
		rec.SCOrder = append(rec.SCOrder[:0:0], o.Recording.SCOrder...)
		rec.SpawnLinks = append(rec.SpawnLinks[:0:0], o.Recording.SpawnLinks...)
		rec.JoinLinks = append(rec.JoinLinks[:0:0], o.Recording.JoinLinks...)
		if o.Recording.LocNames != nil {
			rec.LocNames = make(map[memmodel.Loc]string, len(o.Recording.LocNames))
			for k, v := range o.Recording.LocNames {
				rec.LocNames[k] = v
			}
		}
		c.Recording = &rec
	}
	return &c
}
