package engine

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"pctwm/internal/memmodel"
)

// crashProgram has a second thread so the panicking thread's TID (2) is
// distinguishable from "no attribution" (0) and from the root thread (1).
func crashProgram() *Program {
	p := NewProgram("err-crash")
	x := p.Loc("X", 0)
	p.AddThread(func(th *Thread) { th.Store(x, 1, memmodel.Relaxed) })
	p.AddThread(func(th *Thread) { panic("kaboom") })
	return p
}

// joinCycleProgram deadlocks deterministically: the child joins itself (a
// thread is never enabled while waiting on an unfinished thread, and it
// cannot finish while blocked), and the root waits on the child. The
// child's leading Load matters: a spawned function runs eagerly up to its
// first submit while the parent's Spawn is still executing, so the load
// parks the child before it reads h — by the time it is granted again the
// parent has long assigned the handle.
func joinCycleProgram() *Program {
	p := NewProgram("err-joincycle")
	x := p.Loc("X", 0)
	p.AddThread(func(th *Thread) {
		var h *ThreadHandle
		h = th.Spawn(func(c *Thread) {
			c.Load(x, memmodel.Relaxed)
			c.Join(h)
		})
		th.Join(h)
	})
	return p
}

// spinForeverProgram never terminates under readPick 0 (the thread-local
// candidate is the initial write), so it exercises the step-limit abort.
func spinForeverProgram() *Program {
	p := NewProgram("err-spin")
	f := p.Loc("F", 0)
	p.AddThread(func(th *Thread) {
		for th.Load(f, memmodel.Relaxed) == 0 {
		}
	})
	p.AddThread(func(th *Thread) { th.Store(f, 0, memmodel.Relaxed) })
	return p
}

// TestRunErrorPanic: a panicking thread yields a structured PanicError
// attributed to the panicking thread, alongside the BugHit report.
func TestRunErrorPanic(t *testing.T) {
	for _, baton := range []bool{false, true} {
		o := run(t, crashProgram(), &scriptStrategy{}, Options{Baton: baton})
		if !o.BugHit {
			t.Fatalf("baton=%v: crash not reported as bug: %+v", baton, o)
		}
		if o.Err == nil {
			t.Fatalf("baton=%v: Outcome.Err is nil for a panicking run", baton)
		}
		if o.Err.Kind != PanicError {
			t.Errorf("baton=%v: Err.Kind = %v, want %v", baton, o.Err.Kind, PanicError)
		}
		if o.Err.TID != 2 {
			t.Errorf("baton=%v: Err.TID = %d, want 2 (the panicking thread)", baton, o.Err.TID)
		}
		if !strings.Contains(o.Err.Msg, "kaboom") {
			t.Errorf("baton=%v: Err.Msg = %q, want the panic value", baton, o.Err.Msg)
		}
		if o.Err.Error() != o.Err.Msg {
			t.Errorf("baton=%v: Error() = %q, want Msg %q", baton, o.Err.Error(), o.Err.Msg)
		}
	}
}

// TestRunErrorDeadlock: a join cycle yields a DeadlockError naming the
// blocked threads, with no single-thread attribution.
func TestRunErrorDeadlock(t *testing.T) {
	for _, baton := range []bool{false, true} {
		o := run(t, joinCycleProgram(), &scriptStrategy{}, Options{Baton: baton})
		if !o.Deadlocked {
			t.Fatalf("baton=%v: expected a deadlocked run: %+v", baton, o)
		}
		if o.Err == nil {
			t.Fatalf("baton=%v: Outcome.Err is nil for a deadlocked run", baton)
		}
		if o.Err.Kind != DeadlockError {
			t.Errorf("baton=%v: Err.Kind = %v, want %v", baton, o.Err.Kind, DeadlockError)
		}
		if o.Err.TID != 0 {
			t.Errorf("baton=%v: Err.TID = %d, want 0 (no attribution)", baton, o.Err.TID)
		}
		if !strings.Contains(o.Err.Msg, "t1") || !strings.Contains(o.Err.Msg, "t2") {
			t.Errorf("baton=%v: Err.Msg = %q, want both blocked threads named", baton, o.Err.Msg)
		}
		if !o.Failed() {
			t.Errorf("baton=%v: a deadlocked run must report Failed()", baton)
		}
	}
}

// TestFailedAccountsForErr: Failed() reflects the structured error —
// panics and deadlocks are failures, resource aborts (step limit,
// timeout, cancellation) are not, and a panicking run (which sets both
// BugHit and a PanicError) is counted exactly once.
func TestFailedAccountsForErr(t *testing.T) {
	cases := []struct {
		name string
		o    Outcome
		want bool
	}{
		{"clean", Outcome{}, false},
		{"bughit", Outcome{BugHit: true}, true},
		{"panic-sets-both", Outcome{BugHit: true, Err: &RunError{Kind: PanicError}}, true},
		{"panic-err-only", Outcome{Err: &RunError{Kind: PanicError}}, true},
		{"deadlock", Outcome{Deadlocked: true, Err: &RunError{Kind: DeadlockError}}, true},
		{"step-limit", Outcome{Aborted: true, Err: &RunError{Kind: StepLimitError}}, false},
		{"timeout", Outcome{TimedOut: true, Err: &RunError{Kind: TimeoutError}}, false},
		{"canceled", Outcome{Canceled: true, Err: &RunError{Kind: CanceledError}}, false},
	}
	for _, c := range cases {
		if got := c.o.Failed(); got != c.want {
			t.Errorf("%s: Failed() = %v, want %v", c.name, got, c.want)
		}
		if got := c.o.Abnormal(); got != (c.o.Err != nil) {
			t.Errorf("%s: Abnormal() = %v, want %v", c.name, got, c.o.Err != nil)
		}
	}
}

// TestRunErrorStepLimit: hitting MaxSteps yields a StepLimitError that
// names the configured budget, consistent with the Aborted flag.
func TestRunErrorStepLimit(t *testing.T) {
	for _, baton := range []bool{false, true} {
		o := run(t, spinForeverProgram(), &scriptStrategy{readPick: 0},
			Options{MaxSteps: 200, Baton: baton})
		if !o.Aborted {
			t.Fatalf("baton=%v: expected an aborted run: %+v", baton, o)
		}
		if o.Err == nil {
			t.Fatalf("baton=%v: Outcome.Err is nil for an aborted run", baton)
		}
		if o.Err.Kind != StepLimitError {
			t.Errorf("baton=%v: Err.Kind = %v, want %v", baton, o.Err.Kind, StepLimitError)
		}
		if !strings.Contains(o.Err.Msg, "200") {
			t.Errorf("baton=%v: Err.Msg = %q, want the step budget named", baton, o.Err.Msg)
		}
	}
}

// TestRunErrorNilOnCleanAndAssertRuns: clean runs and plain assertion
// failures do not produce a structured error — assertion failures are
// reported through BugMessages only.
func TestRunErrorNilOnCleanAndAssertRuns(t *testing.T) {
	p := NewProgram("err-clean")
	x := p.Loc("X", 0)
	p.AddThread(func(th *Thread) { th.Store(x, 1, memmodel.Relaxed) })
	if o := run(t, p, &scriptStrategy{}, Options{}); o.Err != nil {
		t.Errorf("clean run: Err = %+v, want nil", o.Err)
	}

	q := NewProgram("err-assert")
	q.Loc("X", 0)
	q.AddThread(func(th *Thread) { th.Assert(false, "always fails") })
	o := run(t, q, &scriptStrategy{}, Options{})
	if !o.BugHit {
		t.Fatalf("assertion failure not reported: %+v", o)
	}
	if o.Err != nil {
		t.Errorf("assertion failure: Err = %+v, want nil", o.Err)
	}
}

// TestRunErrorTimeout: a livelocked execution with a wall-clock bound is
// cut off with a TimeoutError long before it burns through a huge step
// budget, on both scheduler protocols.
func TestRunErrorTimeout(t *testing.T) {
	for _, baton := range []bool{false, true} {
		o := run(t, spinForeverProgram(), &scriptStrategy{readPick: 0},
			Options{MaxSteps: 1 << 30, MaxWallTime: 2 * time.Millisecond, Baton: baton})
		if !o.TimedOut {
			t.Fatalf("baton=%v: expected a timed-out run: %+v", baton, o)
		}
		if o.Err == nil || o.Err.Kind != TimeoutError {
			t.Fatalf("baton=%v: Err = %+v, want TimeoutError", baton, o.Err)
		}
		if !strings.Contains(o.Err.Msg, "2ms") {
			t.Errorf("baton=%v: Err.Msg = %q, want the configured limit named", baton, o.Err.Msg)
		}
		if o.Aborted {
			t.Errorf("baton=%v: timeout also reported as step-limit abort", baton)
		}
		if o.Failed() {
			t.Errorf("baton=%v: a timeout must not count as a program failure", baton)
		}
		if !o.Abnormal() {
			t.Errorf("baton=%v: a timeout must count as abnormal", baton)
		}
	}
}

// TestRunErrorCanceled: a pre-canceled context ends the run at the first
// watchdog check with a CanceledError; the outcome is marked Canceled and
// is not a program failure.
func TestRunErrorCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, baton := range []bool{false, true} {
		o := run(t, spinForeverProgram(), &scriptStrategy{readPick: 0},
			Options{MaxSteps: 1 << 30, Context: ctx, Baton: baton})
		if !o.Canceled {
			t.Fatalf("baton=%v: expected a canceled run: %+v", baton, o)
		}
		if o.Err == nil || o.Err.Kind != CanceledError {
			t.Fatalf("baton=%v: Err = %+v, want CanceledError", baton, o.Err)
		}
		if o.Steps != 0 {
			t.Errorf("baton=%v: pre-canceled run stepped %d times, want 0", baton, o.Steps)
		}
		if o.Failed() {
			t.Errorf("baton=%v: cancellation must not count as a program failure", baton)
		}
	}
}

// TestCancelMidRunReleasesThreads: canceling from another goroutine while
// the engine livelocks aborts the in-flight run within the watchdog
// granularity; the threads parked mid-execution are unwound (the next run
// on the same Runner works) and no goroutines leak after Close — on both
// protocols.
func TestCancelMidRunReleasesThreads(t *testing.T) {
	for _, baton := range []bool{false, true} {
		base := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		r := NewRunner(spinForeverProgram(), Options{
			MaxSteps: 1 << 30, Context: ctx, Baton: baton,
		})
		timer := time.AfterFunc(2*time.Millisecond, cancel)
		o := r.Run(&scriptStrategy{readPick: 0}, 1)
		timer.Stop()
		if !o.Canceled || o.Err == nil || o.Err.Kind != CanceledError {
			t.Fatalf("baton=%v: expected a canceled run, got %+v", baton, o)
		}
		// The Runner must stay usable: the context is still canceled, so a
		// second run aborts immediately instead of wedging on stale state.
		o2 := r.Run(&scriptStrategy{readPick: 0}, 2)
		if !o2.Canceled {
			t.Fatalf("baton=%v: second run after cancel: %+v", baton, o2)
		}
		r.Close()
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			if n := runtime.NumGoroutine(); n <= base {
				break
			} else if time.Now().After(deadline) {
				t.Fatalf("baton=%v: goroutines leaked after canceled runs + Close: base %d, now %d", baton, base, n)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestUncanceledContextDoesNotPerturb: attaching a live (never canceled)
// context must not change the schedule or outcome for a fixed seed.
func TestUncanceledContextDoesNotPerturb(t *testing.T) {
	p := spinForeverProgram()
	plain := run(t, p, &scriptStrategy{readPick: 0}, Options{MaxSteps: 500})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withCtx := run(t, p, &scriptStrategy{readPick: 0}, Options{MaxSteps: 500, Context: ctx})
	if plain.Steps != withCtx.Steps || plain.Events != withCtx.Events {
		t.Fatalf("live context perturbed the run: %d/%d steps, %d/%d events",
			plain.Steps, withCtx.Steps, plain.Events, withCtx.Events)
	}
}

// TestRunErrorKindString covers the diagnostic names, including the
// zero value.
func TestRunErrorKindString(t *testing.T) {
	cases := map[RunErrorKind]string{
		PanicError:      "panic",
		DeadlockError:   "deadlock",
		StepLimitError:  "step-limit",
		TimeoutError:    "timeout",
		CanceledError:   "canceled",
		RunErrorKind(0): "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("RunErrorKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// TestDurationMeasuredAroundExecution: Outcome.Duration covers the
// execution phase only (initialization + stepping), so it is positive yet
// bounded by the wall time around Run on both scheduler implementations —
// the accounting the harness sums into TrialResult.Elapsed. Aborted runs
// make teardown (unwinding parked threads) as expensive as it gets, which
// is exactly the portion that must not be billed to Duration.
func TestDurationMeasuredAroundExecution(t *testing.T) {
	for _, baton := range []bool{false, true} {
		r := NewRunner(spinForeverProgram(), Options{MaxSteps: 500, Baton: baton})
		start := time.Now()
		o := r.Run(&scriptStrategy{readPick: 0}, 1)
		wall := time.Since(start)
		r.Close()
		if !o.Aborted {
			t.Fatalf("baton=%v: expected an aborted run", baton)
		}
		if o.Duration <= 0 || o.Duration > wall {
			t.Errorf("baton=%v: Duration %v outside (0, wall %v]", baton, o.Duration, wall)
		}
	}
}

// TestNoGoroutineLeakAfterAbortedRuns: the regression test for the
// direct-handoff scheduler's coroutine pool. Aborted runs leave threads
// parked mid-execution; the Runner must unwind and pool them, and Close
// must release the pool. A thousand aborted runs therefore may not grow
// the process goroutine count.
func TestNoGoroutineLeakAfterAbortedRuns(t *testing.T) {
	base := runtime.NumGoroutine()

	r := NewRunner(spinForeverProgram(), Options{MaxSteps: 50})
	for i := 0; i < 1000; i++ {
		o := r.Run(&scriptStrategy{readPick: 0}, int64(i))
		if !o.Aborted {
			t.Fatalf("run %d: expected an aborted run, got %+v", i, o)
		}
	}

	// Before Close the pool may hold up to the program's thread count.
	if n := runtime.NumGoroutine(); n > base+2*r.Program().NumThreads()+2 {
		t.Fatalf("goroutines grew with aborted runs: base %d, now %d", base, n)
	}

	r.Close()

	// Released coroutines unwind asynchronously; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Close: base %d, now %d", base, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
