package engine

// xoshiro is a xoshiro256++ pseudo-random generator seeded through
// splitmix64. It implements math/rand.Source64.
//
// The engine re-seeds its generator on every Runner.Run; math/rand's
// default lagged-Fibonacci source pays a 607-word re-seed for that, which
// profiles as a dominant cost of short repeated trials. xoshiro256++
// re-seeds in four splitmix64 steps and draws a word in a handful of
// arithmetic ops, while providing more than enough statistical quality for
// schedule sampling.
type xoshiro struct {
	s [4]uint64
}

// Seed initializes the state from a single 64-bit seed via splitmix64, as
// recommended by the xoshiro authors (avoids the all-zero state and
// decorrelates nearby seeds).
func (x *xoshiro) Seed(seed int64) {
	z := uint64(seed)
	for i := range x.s {
		z += 0x9e3779b97f4a7c15
		w := z
		w = (w ^ (w >> 30)) * 0xbf58476d1ce4e5b9
		w = (w ^ (w >> 27)) * 0x94d049bb133111eb
		x.s[i] = w ^ (w >> 31)
	}
}

func rotl64(v uint64, k uint) uint64 { return v<<k | v>>(64-k) }

// Uint64 returns the next 64 random bits (xoshiro256++ step).
func (x *xoshiro) Uint64() uint64 {
	s := &x.s
	result := rotl64(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl64(s[3], 45)
	return result
}

// Int63 returns a non-negative 63-bit value (math/rand.Source).
func (x *xoshiro) Int63() int64 { return int64(x.Uint64() >> 1) }
