package engine

import (
	"fmt"

	"pctwm/internal/memmodel"
	"pctwm/internal/vclock"
)

// Memory-model backend names (Options.Model / -engine.model).
const (
	// ModelRC11 is the default: the paper's C11 view machine (Algorithm 2)
	// with message bags, release sequences and SC views.
	ModelRC11 = "rc11"
	// ModelSC is sequential consistency: a single memory copy, reads
	// observe only the mo-maximal write. Useful as a differential-testing
	// baseline and as the interleaving-only overhead floor.
	ModelSC = "sc"
	// ModelTSO is x86-TSO (Owens, Sarkar, Sewell 2009): per-thread FIFO
	// store buffers with mandatory store forwarding; RMWs and SC accesses
	// drain the issuing thread's buffer.
	ModelTSO = "tso"
)

// Models lists the supported memory-model backend names.
func Models() []string { return []string{ModelRC11, ModelSC, ModelTSO} }

// ValidModel reports whether name selects a supported backend ("" selects
// the default, rc11). Cmds validate flags with this before NewRunner,
// which panics on an unknown model.
func ValidModel(name string) bool {
	switch name {
	case "", ModelRC11, ModelSC, ModelTSO:
		return true
	}
	return false
}

// modelBackend is the memory-model semantics of the engine: everything
// that decides which writes a read may observe, what state a write
// publishes, and what synchronizes. The engine keeps the model-agnostic
// machinery — scheduling, threads, the per-location modification order
// (locs/mo, shared bookkeeping for every model), events, recording,
// telemetry — and delegates the semantics of each memory operation to the
// active backend. Strategies stay model-agnostic: they see the same
// NextThread/PickRead protocol for every backend, with the backend
// deciding the read-candidate sets and which pending operations count as
// communication sinks.
//
// Backends are engine-internal: each holds a pointer to its Engine and is
// serialized by the scheduler baton like all engine state.
type modelBackend interface {
	// name returns the backend's Options.Model name.
	name() string

	// resetRun clears per-run model state (called from Engine.reset,
	// before initMemory).
	resetRun()

	// initStatic cold-builds the static locations' initialization state
	// (one init message per declared location, stamp 1). The result is
	// cached across runs by Engine.initWarm; per-run state belongs in
	// resetRun.
	initStatic()

	// rootView returns the view and clock root threads inherit from the
	// initialization pseudo-thread (zero values for models that do not
	// track views).
	rootView() (memmodel.View, vclock.VC)

	// releaseMessage returns a message's model-owned resources (arena
	// views/clocks) when the run's state is drained back to the pools.
	releaseMessage(m *message)

	// Memory operations. Each implements the full semantics of one
	// granted request — candidate computation, strategy consultation
	// (PickRead), view/buffer updates — and emits its event(s) through
	// Engine.beginEvent/finishEvent.
	execRead(t *Thread, l memmodel.Loc, ord memmodel.Order, casFail bool, expected memmodel.Value) memmodel.Value
	execWrite(t *Thread, l memmodel.Loc, v memmodel.Value, ord memmodel.Order)
	execRMW(t *Thread, l memmodel.Loc, ord memmodel.Order, f func(memmodel.Value) memmodel.Value) memmodel.Value
	execCAS(t *Thread, req *request) (memmodel.Value, bool)
	execFence(t *Thread, ord memmodel.Order)
	execAlloc(t *Thread, req *request) memmodel.Loc

	// postEvent runs inside finishEvent, before counting and recording
	// (rc11 extends the global SC view here).
	postEvent(t *Thread, ev *memmodel.Event)

	// onSpawn runs when t spawns a child, before the child starts (TSO
	// drains the parent's store buffer so the child observes its
	// initialization writes).
	onSpawn(t *Thread)

	// onThreadFinish runs when t's ThreadFunc returns or panics (TSO
	// drains the finished thread's store buffer). Threads unwound by an
	// early teardown do not finish and keep their state.
	onThreadFinish(t *Thread)

	// commSink classifies a pending operation as a potential
	// communication sink (the paper's isCommunicationEvent, Algorithm 1):
	// under rc11, SC ∪ R ∪ F⊒acq; under sc/tso, reads and RMWs.
	commSink(kind memmodel.Kind, ord memmodel.Order) bool

	// commEvent classifies an executed event for the k_com counter
	// (Outcome.CommEvents); consistent with commSink.
	commEvent(lab memmodel.Label) bool

	// finalValue returns the value FinalValues reports for static
	// location index i (rc11/sc: mo-maximal; tso: the write currently in
	// shared memory — undrained buffered stores are not final state).
	finalValue(i int, loc *location) memmodel.Value
}

// newBackend builds the backend for a validated model name.
func newBackend(e *Engine, model string) modelBackend {
	switch model {
	case ModelRC11:
		return &rc11Backend{e: e}
	case ModelSC:
		return &scBackend{e: e}
	case ModelTSO:
		return &tsoBackend{e: e}
	}
	panic(fmt.Sprintf("pctwm: unknown memory model %q (supported: rc11, sc, tso)", model))
}
