package engine

import (
	"math/rand"

	"pctwm/internal/memmodel"
	"pctwm/internal/telemetry"
)

// ReadCandidate is one coherence-legal write a read may read from.
type ReadCandidate struct {
	// Stamp is the write's modification-order timestamp.
	Stamp memmodel.TS
	// Value is the value the read would observe.
	Value memmodel.Value
	// Writer is the event id of the write (NoEvent when recording is off
	// for init writes of dynamic locations).
	Writer memmodel.EventID
	// WriterTID is the thread that performed the write.
	WriterTID memmodel.ThreadID
}

// ReadContext describes a read about to execute. Candidates are the
// coherence-legal writes in ascending modification order:
//
//   - Candidates[0] is the thread-local view write — choosing it is the
//     paper's readLocal (Algorithm 2 line 19);
//   - Candidates[len-1] is the mo-maximal write;
//   - choosing uniformly among the last h candidates is readGlobal with
//     history depth h (Algorithm 2 line 12, Definition 5).
type ReadContext struct {
	TID   memmodel.ThreadID
	Index int // po index of the read event
	Loc   memmodel.Loc
	Order memmodel.Order
	// RMWFailure is true when the read is the failure path of a CAS; the
	// candidate list is already filtered to values ≠ expected.
	RMWFailure bool
	Candidates []ReadCandidate
}

// ProgramInfo is the static information handed to a strategy at the start
// of each execution.
type ProgramInfo struct {
	Name string
	// NumRootThreads is the number of threads that exist at the start.
	NumRootThreads int
	// Telemetry is the engine's counter shard for this execution (nil when
	// telemetry is off). Strategies with interesting internal events — the
	// PCTWM priority change points — log into it; like the engine, they
	// must guard every use with a nil check.
	Telemetry *telemetry.EngineCounters
}

// Strategy decides scheduling and read behavior for one execution. The
// engine calls Begin exactly once per run, then alternates NextThread /
// PickRead / notification callbacks. Implementations need not be safe for
// concurrent use; the engine serializes all calls.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Begin resets the strategy for a fresh execution seeded by r.
	Begin(info ProgramInfo, r *rand.Rand)
	// NextThread picks the thread to run among the enabled pending
	// operations (sorted by thread id, never empty).
	NextThread(enabled []PendingOp) memmodel.ThreadID
	// PickRead picks the index of the write to read from (see ReadContext).
	PickRead(rc ReadContext) int
	// OnEvent is invoked after each event executes. The pointed-to Event is
	// engine-owned scratch, valid only for the duration of the call;
	// strategies that retain it must copy.
	OnEvent(ev *memmodel.Event)
	// OnThreadStart is invoked when a thread becomes schedulable, including
	// root threads (parent is InitThread for those).
	OnThreadStart(tid, parent memmodel.ThreadID)
	// OnSpin is invoked when tid looks livelocked: it keeps re-reading the
	// same value from the same location (paper §6.2: wait-loop heuristic).
	OnSpin(tid memmodel.ThreadID)
}
