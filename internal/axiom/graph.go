// Package axiom builds execution graphs X = ⟨E, po, rf, mo, SC⟩ from
// engine recordings and checks the C11 consistency axioms of the paper's
// §4: write/read coherence, RMW atomicity, irrMOSC, and the C11Tester (SC)
// axiom that hb ∪ rf ∪ SC is acyclic. The engine's view machine is
// supposed to generate only consistent executions; tests use this package
// to enforce that as an invariant.
package axiom

import (
	"fmt"
	"sort"

	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// Graph is an execution graph. Events are indexed by EventID, which equals
// execution order (the engine allocates ids monotonically).
type Graph struct {
	Events []memmodel.Event

	byThread map[memmodel.ThreadID][]memmodel.EventID // po order per thread
	moByLoc  map[memmodel.Loc][]memmodel.EventID      // stamp order per location
	scOrder  []memmodel.EventID
	scRank   map[memmodel.EventID]int

	spawn []engine.SpawnLink
	joins []engine.JoinLink

	// rfSources[r] is the set of writes reaching read r through rf+
	// (chains of RMWs); the direct source is the last element.
	rfSources map[memmodel.EventID][]memmodel.EventID

	sw [][2]memmodel.EventID // synchronizes-with edges (derived)
	hb []bitset              // hb[i].has(j) ⇔ hb(j, i): predecessors of i
}

// FromRecording builds a Graph from an engine recording.
func FromRecording(rec *engine.Recording) (*Graph, error) {
	if rec == nil {
		return nil, fmt.Errorf("axiom: nil recording")
	}
	g := &Graph{
		Events:    rec.Events,
		byThread:  make(map[memmodel.ThreadID][]memmodel.EventID),
		moByLoc:   make(map[memmodel.Loc][]memmodel.EventID),
		scOrder:   rec.SCOrder,
		scRank:    make(map[memmodel.EventID]int, len(rec.SCOrder)),
		spawn:     rec.SpawnLinks,
		joins:     rec.JoinLinks,
		rfSources: make(map[memmodel.EventID][]memmodel.EventID),
	}
	for i, ev := range g.Events {
		if int(ev.ID) != i {
			return nil, fmt.Errorf("axiom: event %d recorded at position %d", ev.ID, i)
		}
		g.byThread[ev.TID] = append(g.byThread[ev.TID], ev.ID)
		if ev.Label.Kind.Writes() {
			g.moByLoc[ev.Label.Loc] = append(g.moByLoc[ev.Label.Loc], ev.ID)
		}
	}
	for _, evs := range g.byThread {
		ids := evs
		sort.Slice(ids, func(i, j int) bool {
			return g.Events[ids[i]].Index < g.Events[ids[j]].Index
		})
	}
	for _, ids := range g.moByLoc {
		sort.Slice(ids, func(i, j int) bool {
			return g.Events[ids[i]].Stamp < g.Events[ids[j]].Stamp
		})
	}
	for rank, id := range g.scOrder {
		g.scRank[id] = rank
	}
	g.buildRFSources()
	g.buildSW()
	g.buildHB()
	return g, nil
}

// buildRFSources computes, for each reading event, the rf+ ancestry: the
// direct rf source plus, when that source is an RMW, its sources in turn.
func (g *Graph) buildRFSources() {
	for _, ev := range g.Events {
		if !ev.Label.Kind.Reads() || ev.ReadsFrom == memmodel.NoEvent {
			continue
		}
		var anc []memmodel.EventID
		w := ev.ReadsFrom
		for {
			anc = append(anc, w)
			we := g.Events[w]
			if we.Label.Kind != memmodel.KindRMW || we.ReadsFrom == memmodel.NoEvent {
				break
			}
			w = we.ReadsFrom
		}
		g.rfSources[ev.ID] = anc
	}
}

// buildSW derives synchronizes-with edges per RC20 (paper §4):
//
//	sw ≜ [E⊒rel]; ([F];po)?; rf+; (po;[F])?; [E⊒acq]
//
// For every reading event r and every write w in its rf+ ancestry, the
// source side is w itself when w is a release write, or any release fence
// po-before w; the sink side is r itself when r is an acquire read, or any
// acquire fence po-after r.
func (g *Graph) buildSW() {
	seen := make(map[[2]memmodel.EventID]bool)
	add := func(src, dst memmodel.EventID) {
		k := [2]memmodel.EventID{src, dst}
		if !seen[k] {
			seen[k] = true
			g.sw = append(g.sw, k)
		}
	}
	for _, ev := range g.Events {
		anc := g.rfSources[ev.ID]
		if len(anc) == 0 {
			continue
		}
		sinks := g.sinkEvents(ev)
		if len(sinks) == 0 {
			continue
		}
		for _, w := range anc {
			for _, src := range g.sourceEvents(w) {
				for _, dst := range sinks {
					add(src, dst)
				}
			}
		}
	}
}

// sourceEvents returns the sw sources that write w enables: w when it is
// a release write, plus every release fence po-before w in w's thread.
func (g *Graph) sourceEvents(w memmodel.EventID) []memmodel.EventID {
	we := g.Events[w]
	var srcs []memmodel.EventID
	if we.Label.Order.IsRelease() {
		srcs = append(srcs, w)
	}
	for _, id := range g.byThread[we.TID] {
		fe := g.Events[id]
		if fe.Index >= we.Index {
			break
		}
		if fe.Label.Kind == memmodel.KindFence && fe.Label.Order.IsRelease() {
			srcs = append(srcs, id)
		}
	}
	return srcs
}

// sinkEvents returns the sw sinks that reading event r enables: r when it
// is an acquire read, plus every acquire fence po-after r in r's thread.
func (g *Graph) sinkEvents(r memmodel.Event) []memmodel.EventID {
	var sinks []memmodel.EventID
	if r.Label.Order.IsAcquire() {
		sinks = append(sinks, r.ID)
	}
	for _, id := range g.byThread[r.TID] {
		fe := g.Events[id]
		if fe.Index <= r.Index {
			continue
		}
		if fe.Label.Kind == memmodel.KindFence && fe.Label.Order.IsAcquire() {
			sinks = append(sinks, id)
		}
	}
	return sinks
}

// buildHB computes the happens-before closure hb = (po ∪ sw ∪ spawn/join
// edges)+. All edges point from lower to higher event ids in engine
// recordings (checked by Check), so one forward pass suffices.
func (g *Graph) buildHB() {
	n := len(g.Events)
	g.hb = make([]bitset, n)
	for i := range g.hb {
		g.hb[i] = newBitset(n)
	}
	addEdge := func(from, to memmodel.EventID) {
		if from == memmodel.NoEvent || int(from) >= n || int(to) >= n || from == to {
			return
		}
		if from > to {
			// Backward edge: recorded violations are reported by Check;
			// for closure purposes we ignore it (the cycle check catches
			// it separately).
			return
		}
		g.hb[to].set(int(from))
		g.hb[to].or(g.hb[from])
	}
	// Gather direct edges sorted by target so predecessors close first.
	type edge struct{ from, to memmodel.EventID }
	var edges []edge
	for _, ids := range g.byThread {
		for i := 1; i < len(ids); i++ {
			edges = append(edges, edge{ids[i-1], ids[i]})
		}
	}
	for _, e := range g.sw {
		edges = append(edges, edge{e[0], e[1]})
	}
	for _, s := range g.spawn {
		if ids := g.byThread[s.Child]; len(ids) > 0 {
			edges = append(edges, edge{s.From, ids[0]})
		}
	}
	for _, j := range g.joins {
		if ids := g.byThread[j.Child]; len(ids) > 0 {
			edges = append(edges, edge{ids[len(ids)-1], j.To})
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].to < edges[j].to })
	for _, e := range edges {
		addEdge(e.from, e.to)
	}
}

// HB reports whether a happens-before b.
func (g *Graph) HB(a, b memmodel.EventID) bool {
	if int(b) >= len(g.hb) || a == memmodel.NoEvent {
		return false
	}
	return g.hb[b].has(int(a))
}

// SW returns the derived synchronizes-with edges.
func (g *Graph) SW() [][2]memmodel.EventID { return g.sw }

// MO returns the modification order of loc.
func (g *Graph) MO(loc memmodel.Loc) []memmodel.EventID { return g.moByLoc[loc] }

// SCOrder returns the total order of SC events.
func (g *Graph) SCOrder() []memmodel.EventID { return g.scOrder }
