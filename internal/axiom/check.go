package axiom

import (
	"fmt"

	"pctwm/internal/memmodel"
)

// Violation reports one failed consistency axiom.
type Violation struct {
	Axiom  string
	Events []memmodel.EventID
	Msg    string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s violated: %s (events %v)", v.Axiom, v.Msg, v.Events)
}

func (g *Graph) violation(axiom, format string, evs ...memmodel.EventID) Violation {
	args := make([]any, len(evs))
	for i, id := range evs {
		if int(id) < len(g.Events) {
			args[i] = g.Events[id].String()
		} else {
			args[i] = fmt.Sprintf("e%d", id)
		}
	}
	return Violation{Axiom: axiom, Events: evs, Msg: fmt.Sprintf(format, args...)}
}

// Check verifies the well-formedness of the graph and the C11 consistency
// axioms of paper §4, returning every violation found (nil when the
// execution is consistent).
func (g *Graph) Check() []Violation {
	var vs []Violation
	vs = append(vs, g.checkWellFormed()...)
	vs = append(vs, g.checkCoherence()...)
	vs = append(vs, g.checkAtomicity()...)
	vs = append(vs, g.checkIrrMOSC()...)
	vs = append(vs, g.checkSCAcyclic()...)
	return vs
}

// checkWellFormed validates the basic structure: rf matches locations and
// values, mo stamps are dense per location, po indices are dense per
// thread.
func (g *Graph) checkWellFormed() []Violation {
	var vs []Violation
	for _, ev := range g.Events {
		if ev.Label.Kind.Reads() {
			if ev.ReadsFrom == memmodel.NoEvent {
				vs = append(vs, g.violation("wf-rf", "read %s has no rf source", ev.ID))
				continue
			}
			w := g.Events[ev.ReadsFrom]
			if !w.Label.Kind.Writes() {
				vs = append(vs, g.violation("wf-rf", "%s reads from non-write %s", ev.ID, w.ID))
			}
			if w.Label.Loc != ev.Label.Loc {
				vs = append(vs, g.violation("wf-rf", "%s reads from different location %s", ev.ID, w.ID))
			}
			if w.Label.WVal != ev.Label.RVal {
				vs = append(vs, g.violation("wf-rf", "%s observes a value not written by %s", ev.ID, w.ID))
			}
		}
	}
	for loc, ids := range g.moByLoc {
		for i, id := range ids {
			if got := g.Events[id].Stamp; int(got) != i+1 {
				vs = append(vs, g.violation("wf-mo",
					fmt.Sprintf("location %d: write %%s has stamp %d at mo position %d", loc, got, i+1), id))
			}
		}
	}
	for tid, ids := range g.byThread {
		for i, id := range ids {
			if got := g.Events[id].Index; got != i {
				vs = append(vs, g.violation("wf-po",
					fmt.Sprintf("thread %d: event %%s has po index %d at position %d", tid, got, i), id))
			}
		}
	}
	return vs
}

// readersOf returns the reading events of write w.
func (g *Graph) readersOf(w memmodel.EventID) []memmodel.EventID {
	var rs []memmodel.EventID
	for _, ev := range g.Events {
		if ev.Label.Kind.Reads() && ev.ReadsFrom == w {
			rs = append(rs, ev.ID)
		}
	}
	return rs
}

// checkCoherence verifies sc-per-location:
//
//	mo; rf?; hb? irreflexive   (write-coherence)
//	fr; rf?; hb  irreflexive   (read-coherence)
func (g *Graph) checkCoherence() []Violation {
	var vs []Violation
	for _, ids := range g.moByLoc {
		for i, w1 := range ids {
			for _, w2 := range ids[i+1:] { // mo(w1, w2)
				// write-coherence, rf skipped: hb?(w2, w1)
				if g.HB(w2, w1) {
					vs = append(vs, g.violation("write-coherence", "mo(%s,%s) but the later write happens-before the earlier", w1, w2))
				}
				for _, r := range g.readersOf(w2) {
					// write-coherence with rf: hb?(r, w1) incl. r = w1
					if r == w1 || g.HB(r, w1) {
						vs = append(vs, g.violation("write-coherence", "%s reads from mo-later %s but happens-before it", r, w2))
					}
				}
			}
		}
	}
	// read-coherence: fr(r, w'); rf?(w', y); hb(y, r).
	for _, ev := range g.Events {
		if !ev.Label.Kind.Reads() || ev.ReadsFrom == memmodel.NoEvent {
			continue
		}
		r := ev.ID
		w := g.Events[ev.ReadsFrom]
		for _, wp := range g.moByLoc[ev.Label.Loc] {
			if g.Events[wp].Stamp <= w.Stamp {
				continue // fr needs mo(w, w')
			}
			if g.HB(wp, r) {
				vs = append(vs, g.violation("read-coherence", "%s reads from %s overwritten by hb-earlier %s",
					r, w.ID, wp))
			}
			for _, r2 := range g.readersOf(wp) {
				if r2 != r && g.HB(r2, r) {
					vs = append(vs, g.violation("read-coherence", "%s reads stale value although hb-earlier %s saw a newer one", r, r2))
				}
			}
		}
	}
	return vs
}

// checkAtomicity verifies fr; mo irreflexive: every RMW reads its
// immediate mo-predecessor.
func (g *Graph) checkAtomicity() []Violation {
	var vs []Violation
	for _, ev := range g.Events {
		if ev.Label.Kind != memmodel.KindRMW || ev.ReadsFrom == memmodel.NoEvent {
			continue
		}
		w := g.Events[ev.ReadsFrom]
		if w.Stamp+1 != ev.Stamp {
			vs = append(vs, g.violation("atomicity", "RMW %s does not read its immediate mo-predecessor (%s)", ev.ID, w.ID))
		}
	}
	return vs
}

// checkIrrMOSC verifies mo; SC irreflexive: SC order agrees with mo on
// same-location SC accesses.
func (g *Graph) checkIrrMOSC() []Violation {
	var vs []Violation
	for _, ids := range g.moByLoc {
		for i, w1 := range ids {
			r1, ok1 := g.scRank[w1]
			if !ok1 {
				continue
			}
			for _, w2 := range ids[i+1:] {
				if r2, ok2 := g.scRank[w2]; ok2 && r2 < r1 {
					vs = append(vs, g.violation("irrMOSC", "mo(%s,%s) contradicts SC order", w1, w2))
				}
			}
		}
	}
	return vs
}

// checkSCAcyclic verifies the C11Tester (SC) axiom: hb ∪ rf ∪ SC acyclic.
// Engine recordings allocate event ids in execution order, so acyclicity
// reduces to every edge pointing forward.
func (g *Graph) checkSCAcyclic() []Violation {
	var vs []Violation
	check := func(rel string, from, to memmodel.EventID) {
		if from != memmodel.NoEvent && from >= to {
			vs = append(vs, g.violation("SC", rel+" edge %s -> %s against execution order", from, to))
		}
	}
	for _, ids := range g.byThread {
		for i := 1; i < len(ids); i++ {
			check("po", ids[i-1], ids[i])
		}
	}
	for _, e := range g.sw {
		check("sw", e[0], e[1])
	}
	for _, ev := range g.Events {
		if ev.Label.Kind.Reads() && ev.ReadsFrom != memmodel.NoEvent {
			check("rf", ev.ReadsFrom, ev.ID)
		}
	}
	for i := 1; i < len(g.scOrder); i++ {
		check("SC", g.scOrder[i-1], g.scOrder[i])
	}
	return vs
}
