package axiom

import (
	"fmt"
	"io"
	"sort"

	"pctwm/internal/memmodel"
)

// WriteText renders the execution as a per-thread event listing followed
// by the cross-thread relations (rf, sw, mo, SC) — the textual analogue
// of the paper's execution-graph figures.
func (g *Graph) WriteText(w io.Writer, locName func(memmodel.Loc) string) error {
	if locName == nil {
		locName = func(l memmodel.Loc) string { return fmt.Sprintf("x%d", l) }
	}
	tids := make([]memmodel.ThreadID, 0, len(g.byThread))
	for tid := range g.byThread {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })

	for _, tid := range tids {
		if tid == memmodel.InitThread {
			fmt.Fprintf(w, "init:\n")
		} else {
			fmt.Fprintf(w, "thread %d:\n", tid)
		}
		for _, id := range g.byThread[tid] {
			ev := g.Events[id]
			fmt.Fprintf(w, "  e%-3d %s", ev.ID, labelText(ev.Label, locName))
			if ev.Label.Kind.Reads() && ev.ReadsFrom != memmodel.NoEvent {
				fmt.Fprintf(w, "   [rf <- e%d]", ev.ReadsFrom)
			}
			fmt.Fprintln(w)
		}
	}

	if len(g.sw) > 0 {
		fmt.Fprintln(w, "sw:")
		for _, e := range g.sw {
			fmt.Fprintf(w, "  e%d -> e%d\n", e[0], e[1])
		}
	}
	locs := make([]memmodel.Loc, 0, len(g.moByLoc))
	for loc := range g.moByLoc {
		locs = append(locs, loc)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	fmt.Fprintln(w, "mo:")
	for _, loc := range locs {
		fmt.Fprintf(w, "  %s:", locName(loc))
		for _, id := range g.moByLoc[loc] {
			fmt.Fprintf(w, " e%d", id)
		}
		fmt.Fprintln(w)
	}
	if len(g.scOrder) > 0 {
		fmt.Fprint(w, "SC:")
		for _, id := range g.scOrder {
			fmt.Fprintf(w, " e%d", id)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteDot renders the execution graph in Graphviz DOT format: one
// cluster per thread with po edges, plus rf (green), sw (blue), mo
// (dashed) and SC (dotted) edges.
func (g *Graph) WriteDot(w io.Writer, locName func(memmodel.Loc) string) error {
	if locName == nil {
		locName = func(l memmodel.Loc) string { return fmt.Sprintf("x%d", l) }
	}
	fmt.Fprintln(w, "digraph execution {")
	fmt.Fprintln(w, "  rankdir=TB; node [shape=box, fontname=\"monospace\"];")

	tids := make([]memmodel.ThreadID, 0, len(g.byThread))
	for tid := range g.byThread {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		fmt.Fprintf(w, "  subgraph cluster_t%d {\n    label=\"thread %d\";\n", tid, tid)
		ids := g.byThread[tid]
		for _, id := range ids {
			ev := g.Events[id]
			fmt.Fprintf(w, "    e%d [label=\"e%d: %s\"];\n", id, id, labelText(ev.Label, locName))
		}
		for i := 1; i < len(ids); i++ {
			fmt.Fprintf(w, "    e%d -> e%d [style=bold];\n", ids[i-1], ids[i])
		}
		fmt.Fprintln(w, "  }")
	}
	for _, ev := range g.Events {
		if ev.Label.Kind.Reads() && ev.ReadsFrom != memmodel.NoEvent {
			fmt.Fprintf(w, "  e%d -> e%d [color=green, label=\"rf\"];\n", ev.ReadsFrom, ev.ID)
		}
	}
	for _, e := range g.sw {
		fmt.Fprintf(w, "  e%d -> e%d [color=blue, label=\"sw\"];\n", e[0], e[1])
	}
	for _, ids := range g.moByLoc {
		for i := 1; i < len(ids); i++ {
			fmt.Fprintf(w, "  e%d -> e%d [style=dashed, color=gray, label=\"mo\"];\n", ids[i-1], ids[i])
		}
	}
	for i := 1; i < len(g.scOrder); i++ {
		fmt.Fprintf(w, "  e%d -> e%d [style=dotted, color=red, label=\"SC\"];\n", g.scOrder[i-1], g.scOrder[i])
	}
	fmt.Fprintln(w, "}")
	return nil
}

func labelText(l memmodel.Label, locName func(memmodel.Loc) string) string {
	switch l.Kind {
	case memmodel.KindRead:
		return fmt.Sprintf("R[%s](%s)=%d", l.Order, locName(l.Loc), l.RVal)
	case memmodel.KindWrite:
		return fmt.Sprintf("W[%s](%s)=%d", l.Order, locName(l.Loc), l.WVal)
	case memmodel.KindRMW:
		return fmt.Sprintf("U[%s](%s)%d->%d", l.Order, locName(l.Loc), l.RVal, l.WVal)
	case memmodel.KindFence:
		return fmt.Sprintf("F[%s]", l.Order)
	default:
		return l.Kind.String()
	}
}
