package axiom

// bitset is a fixed-capacity bit vector used for transitive-closure rows.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// or merges other into b (b |= other).
func (b bitset) or(other bitset) {
	for i, w := range other {
		b[i] |= w
	}
}
