package axiom

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/litmus"
	"pctwm/internal/memmodel"
)

// checkRun executes prog once with recording and fails on any axiom
// violation.
func checkRun(t *testing.T, prog *engine.Program, s engine.Strategy, seed int64) *Graph {
	t.Helper()
	o := engine.Run(prog, s, seed, engine.Options{Record: true})
	g, err := FromRecording(o.Recording)
	if err != nil {
		t.Fatalf("building graph: %v", err)
	}
	for _, v := range g.Check() {
		t.Errorf("%s (seed %d)", v, seed)
	}
	return g
}

// TestLitmusExecutionsConsistent records executions of the whole litmus
// suite under all three strategies and checks the §4 axioms on each.
func TestLitmusExecutionsConsistent(t *testing.T) {
	for _, lt := range litmus.Suite() {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			for seed := int64(0); seed < 50; seed++ {
				checkRun(t, lt.Program, core.NewRandom(), seed)
				checkRun(t, lt.Program, core.NewPCT(2, 15), seed)
				checkRun(t, lt.Program, core.NewPCTWM(2, 2, 8), seed)
			}
		})
	}
}

// randomProgram builds a random program: nThreads threads performing a
// random mix of loads, stores, RMWs and fences over nLocs locations with
// random memory orders. Every execution of any such program must satisfy
// the consistency axioms.
func randomProgram(r *rand.Rand, nThreads, nLocs, nOps int) *engine.Program {
	p := engine.NewProgram("random")
	locs := make([]memmodel.Loc, nLocs)
	for i := range locs {
		locs[i] = p.Loc(string(rune('A'+i)), memmodel.Value(i))
	}
	atomicOrds := []memmodel.Order{
		memmodel.Relaxed, memmodel.Acquire, memmodel.Release,
		memmodel.AcqRel, memmodel.SeqCst,
	}
	fenceOrds := []memmodel.Order{
		memmodel.Acquire, memmodel.Release, memmodel.AcqRel, memmodel.SeqCst,
	}
	for ti := 0; ti < nThreads; ti++ {
		// Pre-generate the op sequence so the ThreadFunc is deterministic.
		type op struct {
			kind int
			loc  memmodel.Loc
			ord  memmodel.Order
			val  memmodel.Value
		}
		ops := make([]op, nOps)
		for i := range ops {
			ops[i] = op{
				kind: r.Intn(6),
				loc:  locs[r.Intn(len(locs))],
				ord:  atomicOrds[r.Intn(len(atomicOrds))],
				val:  memmodel.Value(r.Intn(100)),
			}
			if ops[i].kind == 4 {
				ops[i].ord = fenceOrds[r.Intn(len(fenceOrds))]
			}
		}
		p.AddThread(func(t *engine.Thread) {
			for _, o := range ops {
				switch o.kind {
				case 0:
					t.Load(o.loc, o.ord)
				case 1:
					t.Store(o.loc, o.val, o.ord)
				case 2:
					t.FetchAdd(o.loc, 1, o.ord)
				case 3:
					t.CAS(o.loc, o.val, o.val+1, o.ord, memmodel.Relaxed)
				case 4:
					t.Fence(o.ord)
				case 5:
					t.Exchange(o.loc, o.val, o.ord)
				}
			}
		})
	}
	return p
}

// TestRandomProgramsConsistent is a property-based test: arbitrary
// programs under arbitrary strategies yield only axiom-consistent
// executions.
func TestRandomProgramsConsistent(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	prop := func(seed int64, strategyPick uint8, dh uint8) bool {
		r := rand.New(rand.NewSource(seed))
		prog := randomProgram(r, 2+r.Intn(3), 2+r.Intn(3), 3+r.Intn(8))
		var s engine.Strategy
		switch strategyPick % 3 {
		case 0:
			s = core.NewRandom()
		case 1:
			s = core.NewPCT(1+int(dh%4), 30)
		default:
			s = core.NewPCTWM(int(dh%4), 1+int(dh%3), 20)
		}
		o := engine.Run(prog, s, seed, engine.Options{Record: true})
		g, err := FromRecording(o.Recording)
		if err != nil {
			t.Logf("graph: %v", err)
			return false
		}
		if vs := g.Check(); len(vs) > 0 {
			for _, v := range vs {
				t.Logf("seed %d: %s", seed, v)
			}
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestHBBasics sanity-checks the derived happens-before relation on a
// fence-synchronized message-passing execution.
func TestHBBasics(t *testing.T) {
	lt := litmus.MPFences()
	for seed := int64(0); seed < 200; seed++ {
		o := engine.Run(lt.Program, core.NewRandom(), seed, engine.Options{Record: true})
		g, err := FromRecording(o.Recording)
		if err != nil {
			t.Fatal(err)
		}
		if vs := g.Check(); len(vs) > 0 {
			t.Fatalf("seed %d: %v", seed, vs)
		}
		// If the flag load read the flag store, the release fence must
		// happen-before the acquire fence.
		var flagStore, flagLoad, relFence, acqFence memmodel.EventID = -1, -1, -1, -1
		for _, ev := range g.Events {
			switch {
			case ev.Label.Kind == memmodel.KindWrite && ev.Label.Loc == 2 && ev.TID == 1:
				flagStore = ev.ID
			case ev.Label.Kind == memmodel.KindRead && ev.Label.Loc == 2 && ev.TID == 2:
				flagLoad = ev.ID
			case ev.Label.Kind == memmodel.KindFence && ev.TID == 1:
				relFence = ev.ID
			case ev.Label.Kind == memmodel.KindFence && ev.TID == 2:
				acqFence = ev.ID
			}
		}
		if flagLoad == -1 || flagStore == -1 {
			t.Fatalf("seed %d: flag events not found", seed)
		}
		if g.Events[flagLoad].ReadsFrom == flagStore {
			if !g.HB(relFence, acqFence) {
				t.Fatalf("seed %d: fence sw missing from hb", seed)
			}
		}
	}
}
