package axiom

import (
	"strings"
	"testing"

	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/litmus"
)

func renderGraph(t *testing.T) *Graph {
	t.Helper()
	lt := litmus.MPFences()
	o := engine.Run(lt.Program, core.NewRandom(), 3, engine.Options{Record: true})
	g, err := FromRecording(o.Recording)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWriteText(t *testing.T) {
	g := renderGraph(t)
	var b strings.Builder
	if err := g.WriteText(&b, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"init:", "thread 1:", "thread 2:", "mo:", "F[rel]", "F[acq]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in rendering:\n%s", want, out)
		}
	}
}

func TestWriteDot(t *testing.T) {
	g := renderGraph(t)
	var b strings.Builder
	if err := g.WriteDot(&b, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"digraph execution", "subgraph cluster_t1", "label=\"rf\"", "style=bold"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in DOT output:\n%s", want, out)
		}
	}
}
