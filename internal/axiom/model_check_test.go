package axiom_test

import (
	"testing"

	"pctwm/internal/axiom"
	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/enumerate"
	"pctwm/internal/litmus"
)

// TestCheckModelAcceptsOwnExecutions: every backend generates only
// executions consistent with its own axioms — the litmus suite explored
// under each model must recheck clean under that model's checker.
func TestCheckModelAcceptsOwnExecutions(t *testing.T) {
	for _, model := range engine.Models() {
		model := model
		t.Run(model, func(t *testing.T) {
			for _, lt := range litmus.Suite() {
				opts := engine.Options{Model: model, Record: true}
				r := engine.NewRunner(lt.Program, opts)
				strat := core.NewRandom()
				for seed := int64(0); seed < 30; seed++ {
					o := r.Run(strat, seed)
					g, err := axiom.FromRecording(o.Recording)
					if err != nil {
						r.Close()
						t.Fatalf("%s seed %d: %v", lt.Name, seed, err)
					}
					if vs := g.CheckModel(model); len(vs) > 0 {
						r.Close()
						t.Fatalf("%s seed %d under %s: %v", lt.Name, seed, model, vs)
					}
				}
				r.Close()
			}
		})
	}
}

// weakRecording exhaustively explores the test under rc11 and returns
// the recording of the first execution producing the given outcome. The
// search runs on the pooled explorer and stops at the first witness.
func weakRecording(t *testing.T, lt *litmus.Test, outcome string) *engine.Recording {
	t.Helper()
	var rec *engine.Recording
	res := enumerate.ExploreUntil(lt.Program, engine.Options{Record: true}, 500_000, func(o *engine.Outcome) bool {
		if lt.Outcome(o.FinalValues) == outcome {
			rec = o.Recording
			return false
		}
		return true
	})
	if res.Drift != nil {
		t.Fatalf("%s: %v", lt.Name, res.Drift)
	}
	if rec == nil {
		t.Fatalf("%s: outcome %q not reachable under rc11", lt.Name, outcome)
	}
	return rec
}

// TestCheckSCRejectsWeakBehaviour: an rc11 execution exhibiting store
// buffering is, by construction, not sequentially consistent — CheckSC
// must flag it while the rc11 checker accepts it.
func TestCheckSCRejectsWeakBehaviour(t *testing.T) {
	rec := weakRecording(t, litmus.SBRelaxed(), "a=0 b=0")
	g, err := axiom.FromRecording(rec)
	if err != nil {
		t.Fatal(err)
	}
	if vs := g.Check(); len(vs) > 0 {
		t.Fatalf("rc11 checker rejected its own execution: %v", vs)
	}
	if vs := g.CheckSC(); len(vs) == 0 {
		t.Fatal("CheckSC accepted a store-buffering execution")
	}
}

// TestCheckTSOAcceptsStoreBuffering: the same SB execution IS x86-TSO
// consistent (that is the model's namesake reordering), so CheckTSO
// accepts what CheckSC rejects.
func TestCheckTSOAcceptsStoreBuffering(t *testing.T) {
	rec := weakRecording(t, litmus.SBRelaxed(), "a=0 b=0")
	g, err := axiom.FromRecording(rec)
	if err != nil {
		t.Fatal(err)
	}
	if vs := g.CheckTSO(); len(vs) > 0 {
		t.Fatalf("CheckTSO rejected a store-buffering execution: %v", vs)
	}
}

// TestCheckTSORejectsStaleMessagePassing: an rc11 execution where the
// reader sees the flag but not the payload violates TSO's FIFO buffers.
func TestCheckTSORejectsStaleMessagePassing(t *testing.T) {
	rec := weakRecording(t, litmus.MPRelaxed(), "a=1 b=0")
	g, err := axiom.FromRecording(rec)
	if err != nil {
		t.Fatal(err)
	}
	if vs := g.CheckTSO(); len(vs) == 0 {
		t.Fatal("CheckTSO accepted a stale message-passing read")
	}
	if vs := g.CheckSC(); len(vs) == 0 {
		t.Fatal("CheckSC accepted a stale message-passing read")
	}
}

// TestCheckModelUnknown: an unknown model name yields a violation, not
// a silent pass.
func TestCheckModelUnknown(t *testing.T) {
	lt := litmus.SBRelaxed()
	o := engine.Run(lt.Program, core.NewRandom(), 1, engine.Options{Record: true})
	g, err := axiom.FromRecording(o.Recording)
	if err != nil {
		t.Fatal(err)
	}
	if vs := g.CheckModel("ppc"); len(vs) != 1 {
		t.Fatalf("unknown model: got %v", vs)
	}
}
