package axiom

import (
	"fmt"

	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// CheckModel verifies the recording against the axioms of the memory
// model that produced it ("" means the default rc11 model). Recordings
// are only meaningful against their own model: an rc11 execution with a
// weak behaviour is expected to fail CheckSC, and that failure is a
// property of the cross-check, not of the execution.
func (g *Graph) CheckModel(model string) []Violation {
	switch model {
	case "", engine.ModelRC11:
		return g.Check()
	case engine.ModelSC:
		return g.CheckSC()
	case engine.ModelTSO:
		return g.CheckTSO()
	}
	return []Violation{{Axiom: "model", Msg: fmt.Sprintf("unknown memory model %q (have %v)", model, engine.Models())}}
}

// CheckSC verifies sequential consistency: event ids are execution
// order, so the single interleaving the engine serialized is the
// witness, and every read (including the read side of RMWs) must
// observe the execution-order-latest write to its location.
func (g *Graph) CheckSC() []Violation {
	vs := g.checkWellFormed()
	last := make(map[memmodel.Loc]memmodel.EventID)
	for _, ev := range g.Events {
		if ev.Label.Kind.Reads() && ev.ReadsFrom != memmodel.NoEvent {
			if w, ok := last[ev.Label.Loc]; ok && ev.ReadsFrom != w {
				vs = append(vs, g.violation("sc-read",
					"%s does not read the interleaving-latest write %s", ev.ID, w))
			}
		}
		if ev.Label.Kind.Writes() {
			last[ev.Label.Loc] = ev.ID
		}
	}
	return vs
}

// tsoReplay is the operational x86-TSO state rebuilt while replaying a
// recording: per-thread FIFO store buffers plus the single shared copy
// of memory (the latest drained write per location).
type tsoReplay struct {
	mem map[memmodel.Loc]memmodel.EventID
	buf map[memmodel.ThreadID][]memmodel.EventID
}

// drain flushes tid's buffer to memory in FIFO order.
func (s *tsoReplay) drain(tid memmodel.ThreadID, g *Graph) {
	for _, w := range s.buf[tid] {
		s.mem[g.Events[w].Label.Loc] = w
	}
	s.buf[tid] = s.buf[tid][:0]
}

// drainThrough flushes owner's buffer up to and including entry w.
func (s *tsoReplay) drainThrough(owner memmodel.ThreadID, w memmodel.EventID, g *Graph) {
	b := s.buf[owner]
	for i, id := range b {
		s.mem[g.Events[id].Label.Loc] = id
		if id == w {
			s.buf[owner] = append(b[:0], b[i+1:]...)
			return
		}
	}
}

// CheckTSO verifies the recording against operational x86-TSO (Owens,
// Sarkar, Sewell 2009) by replaying it through store buffers: a load
// must forward from its own buffer when possible, and otherwise read
// either the shared-memory copy or a store still buffered in another
// thread (which commits that store's FIFO prefix); RMWs and SC
// operations flush the executing thread's buffer and act on memory
// directly. End-of-thread drains are not replayed — a store made
// visible that way is indistinguishable, to a later load, from one
// observed by drain-through.
func (g *Graph) CheckTSO() []Violation {
	vs := g.checkWellFormed()
	st := &tsoReplay{
		mem: make(map[memmodel.Loc]memmodel.EventID),
		buf: make(map[memmodel.ThreadID][]memmodel.EventID),
	}
	for _, ev := range g.Events {
		switch ev.Label.Kind {
		case memmodel.KindWrite:
			if ev.Stamp == 1 {
				// A location's first write is its initialization (static
				// init or Alloc), visible to everyone immediately — the
				// buffer never delays it.
				st.mem[ev.Label.Loc] = ev.ID
				continue
			}
			st.buf[ev.TID] = append(st.buf[ev.TID], ev.ID)
			if ev.Label.Order.IsSC() {
				st.drain(ev.TID, g) // MOV + MFENCE
			}
		case memmodel.KindRead:
			if ev.ReadsFrom == memmodel.NoEvent {
				continue // reported by checkWellFormed
			}
			// Mandatory store forwarding: the youngest own buffered
			// store to the location wins.
			if own := youngest(st.buf[ev.TID], ev.Label.Loc, g); own != memmodel.NoEvent {
				if ev.ReadsFrom != own {
					vs = append(vs, g.violation("tso-forward",
						"%s must forward from its own buffered store %s, read %s instead",
						ev.ID, own, ev.ReadsFrom))
				}
				continue
			}
			if w, ok := st.mem[ev.Label.Loc]; ok && w == ev.ReadsFrom {
				continue // read the shared copy
			}
			if owner, ok := bufferOwner(st.buf, ev.ReadsFrom); ok {
				st.drainThrough(owner, ev.ReadsFrom, g)
				continue // observed a remote buffered store as it committed
			}
			vs = append(vs, g.violation("tso-read",
				"%s reads %s, which is neither the shared copy nor buffered anywhere", ev.ID, ev.ReadsFrom))
		case memmodel.KindRMW:
			st.drain(ev.TID, g) // LOCK prefix: flush, then act on memory
			if ev.ReadsFrom != memmodel.NoEvent {
				if w, ok := st.mem[ev.Label.Loc]; !ok || w == ev.ReadsFrom {
					// read the shared copy
				} else if owner, ok := bufferOwner(st.buf, ev.ReadsFrom); ok {
					// The source was still buffered elsewhere: its owner's
					// FIFO prefix committed before the locked access.
					st.drainThrough(owner, ev.ReadsFrom, g)
				} else {
					vs = append(vs, g.violation("tso-rmw",
						"RMW %s must read the shared copy %s, read %s instead", ev.ID, w, ev.ReadsFrom))
				}
			}
			st.mem[ev.Label.Loc] = ev.ID // the locked write skips the buffer
		case memmodel.KindFence:
			if ev.Label.Order.IsSC() {
				st.drain(ev.TID, g) // MFENCE; weaker fences compile to nothing
			}
		case memmodel.KindSpawn:
			st.drain(ev.TID, g) // the child must see the parent's writes
		}
	}
	return vs
}

// youngest returns the most recent buffered store to loc in buf, or
// NoEvent when the buffer holds none.
func youngest(buf []memmodel.EventID, loc memmodel.Loc, g *Graph) memmodel.EventID {
	for i := len(buf) - 1; i >= 0; i-- {
		if g.Events[buf[i]].Label.Loc == loc {
			return buf[i]
		}
	}
	return memmodel.NoEvent
}

// bufferOwner finds which thread's buffer holds write w, if any.
func bufferOwner(bufs map[memmodel.ThreadID][]memmodel.EventID, w memmodel.EventID) (memmodel.ThreadID, bool) {
	for tid, b := range bufs {
		for _, id := range b {
			if id == w {
				return tid, true
			}
		}
	}
	return 0, false
}
