package axiom

import (
	"strings"
	"testing"

	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// rec builds a recording by hand. Events must be listed in execution
// order; ids are assigned from position.
func rec(events ...memmodel.Event) *engine.Recording {
	r := &engine.Recording{LocNames: map[memmodel.Loc]string{}}
	for i := range events {
		events[i].ID = memmodel.EventID(i)
	}
	r.Events = events
	for _, ev := range events {
		if ev.Label.Order.IsSC() {
			r.SCOrder = append(r.SCOrder, ev.ID)
		}
	}
	return r
}

func ev(tid memmodel.ThreadID, idx int, lab memmodel.Label, stamp memmodel.TS, rf memmodel.EventID) memmodel.Event {
	return memmodel.Event{TID: tid, Index: idx, Label: lab, Stamp: stamp, ReadsFrom: rf}
}

func w(loc memmodel.Loc, v memmodel.Value, ord memmodel.Order) memmodel.Label {
	return memmodel.Label{Kind: memmodel.KindWrite, Order: ord, Loc: loc, WVal: v}
}

func r(loc memmodel.Loc, v memmodel.Value, ord memmodel.Order) memmodel.Label {
	return memmodel.Label{Kind: memmodel.KindRead, Order: ord, Loc: loc, RVal: v}
}

func u(loc memmodel.Loc, rv, wv memmodel.Value, ord memmodel.Order) memmodel.Label {
	return memmodel.Label{Kind: memmodel.KindRMW, Order: ord, Loc: loc, RVal: rv, WVal: wv}
}

func mustViolate(t *testing.T, recording *engine.Recording, axiom string) {
	t.Helper()
	g, err := FromRecording(recording)
	if err != nil {
		t.Fatalf("building graph: %v", err)
	}
	for _, v := range g.Check() {
		if v.Axiom == axiom {
			return
		}
	}
	t.Fatalf("expected a %s violation, got %v", axiom, g.Check())
}

func mustPass(t *testing.T, recording *engine.Recording) {
	t.Helper()
	g, err := FromRecording(recording)
	if err != nil {
		t.Fatalf("building graph: %v", err)
	}
	if vs := g.Check(); len(vs) > 0 {
		t.Fatalf("expected consistency, got %v", vs)
	}
}

// TestDetectsReadCoherenceViolation: a read observing a value overwritten
// by an hb-earlier write (stale read past the coherence floor).
func TestDetectsReadCoherenceViolation(t *testing.T) {
	const x = memmodel.Loc(1)
	// t1: W x 0 (init, stamp 1); W x 1 (stamp 2); then t1 reads 0 — its own
	// po makes the stamp-2 write hb-before the read: read-coherence broken.
	recording := rec(
		ev(1, 0, w(x, 0, memmodel.Relaxed), 1, memmodel.NoEvent),
		ev(1, 1, w(x, 1, memmodel.Relaxed), 2, memmodel.NoEvent),
		ev(1, 2, r(x, 0, memmodel.Relaxed), 0, 0),
	)
	mustViolate(t, recording, "read-coherence")
}

// TestDetectsWriteCoherenceViolation: a read observing an mo-later write
// while happening-before an mo-earlier one.
func TestDetectsWriteCoherenceViolation(t *testing.T) {
	const x = memmodel.Loc(1)
	// t1: R x (reads stamp-2 write), then t1: W x (stamp 1)?? — the read of
	// the mo-later write happens-before the mo-earlier write.
	recording := rec(
		ev(2, 0, w(x, 5, memmodel.Relaxed), 2, memmodel.NoEvent),
		ev(1, 0, r(x, 5, memmodel.Relaxed), 0, 0),
		ev(1, 1, w(x, 1, memmodel.Relaxed), 1, memmodel.NoEvent),
	)
	mustViolate(t, recording, "write-coherence")
}

// TestDetectsAtomicityViolation: an RMW that skips a write in mo.
func TestDetectsAtomicityViolation(t *testing.T) {
	const x = memmodel.Loc(1)
	recording := rec(
		ev(1, 0, w(x, 0, memmodel.Relaxed), 1, memmodel.NoEvent),
		ev(2, 0, w(x, 7, memmodel.Relaxed), 2, memmodel.NoEvent),
		ev(3, 0, u(x, 0, 1, memmodel.Relaxed), 3, 0), // reads stamp 1, writes stamp 3
	)
	mustViolate(t, recording, "atomicity")
}

// TestDetectsIrrMOSCViolation: SC order contradicting mo.
func TestDetectsIrrMOSCViolation(t *testing.T) {
	const x = memmodel.Loc(1)
	// The stamp-2 write appears earlier in SC order than the stamp-1 write.
	recording := rec(
		ev(1, 0, w(x, 1, memmodel.SeqCst), 2, memmodel.NoEvent),
		ev(2, 0, w(x, 0, memmodel.SeqCst), 1, memmodel.NoEvent),
	)
	mustViolate(t, recording, "irrMOSC")
}

// TestDetectsRFValueMismatch: well-formedness of rf.
func TestDetectsRFValueMismatch(t *testing.T) {
	const x = memmodel.Loc(1)
	recording := rec(
		ev(1, 0, w(x, 3, memmodel.Relaxed), 1, memmodel.NoEvent),
		ev(2, 0, r(x, 4, memmodel.Relaxed), 0, 0),
	)
	mustViolate(t, recording, "wf-rf")
}

// TestDetectsSWThroughRMWChain: the derived sw must chain release writes
// through relaxed RMWs to acquire reads.
func TestDetectsSWThroughRMWChain(t *testing.T) {
	const x = memmodel.Loc(1)
	recording := rec(
		ev(1, 0, w(x, 1, memmodel.Release), 1, memmodel.NoEvent),
		ev(2, 0, u(x, 1, 2, memmodel.Relaxed), 2, 0),
		ev(3, 0, r(x, 2, memmodel.Acquire), 0, 1),
	)
	g, err := FromRecording(recording)
	if err != nil {
		t.Fatal(err)
	}
	mustPass(t, recording)
	if !g.HB(0, 2) {
		t.Fatalf("release write should happen-before acquire read via rf+; sw=%v", g.SW())
	}
	// The relaxed RMW itself must not be an sw source.
	for _, e := range g.SW() {
		if e[0] == 1 {
			t.Fatalf("relaxed RMW recorded as sw source: %v", g.SW())
		}
	}
}

// TestConsistentHandBuiltExecution: a correct MP execution passes.
func TestConsistentHandBuiltExecution(t *testing.T) {
	const x, y = memmodel.Loc(1), memmodel.Loc(2)
	recording := rec(
		ev(1, 0, w(x, 1, memmodel.Relaxed), 1, memmodel.NoEvent),
		ev(1, 1, w(y, 1, memmodel.Release), 1, memmodel.NoEvent),
		ev(2, 0, r(y, 1, memmodel.Acquire), 0, 1),
		ev(2, 1, r(x, 1, memmodel.Relaxed), 0, 0),
	)
	mustPass(t, recording)
}

// TestViolationString covers the diagnostic rendering.
func TestViolationString(t *testing.T) {
	v := Violation{Axiom: "atomicity", Events: []memmodel.EventID{1, 2}, Msg: "oops"}
	if !strings.Contains(v.String(), "atomicity") {
		t.Fatalf("bad violation string: %s", v)
	}
}
