// Package litmus provides classic weak-memory litmus tests expressed
// against the engine API, together with a runner that explores each test
// under a strategy and classifies the observed outcomes. The suite is the
// conformance test of the memory model: allowed weak behaviours must be
// observable, forbidden ones must never occur.
package litmus

import (
	"fmt"
	"sort"
	"strings"

	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// Test is one litmus test: a program writing its observations into
// registers, the set of allowed final register outcomes, and the subset of
// outcomes that witness genuinely weak (non-SC) behaviour.
type Test struct {
	Name        string
	Description string
	Program     *engine.Program
	// Registers are location names whose final values form the outcome.
	Registers []string
	// Allowed is the set of permitted outcomes under the default rc11
	// (C11Tester) model. When empty, every outcome not listed in
	// Forbidden is allowed.
	Allowed []string
	// Forbidden outcomes must never be observed under rc11. Redundant
	// when Allowed is exhaustive.
	Forbidden []string
	// Weak is the subset of allowed outcomes that only weak memory can
	// produce under rc11; the runner reports whether each was observed.
	Weak []string
	// PerModel overrides the outcome table for other memory-model
	// backends ("sc", "tso"). A model with no entry uses the base
	// Allowed/Forbidden/Weak — correct whenever the model's behaviours
	// coincide with rc11's on this program.
	PerModel map[string]Expectation
}

// Expectation is one memory model's outcome table for a test, with the
// same semantics as the Test base fields.
type Expectation struct {
	Allowed   []string
	Forbidden []string
	Weak      []string
}

// Expect returns the outcome table the given memory model must satisfy
// ("" means the default rc11 model).
func (t *Test) Expect(model string) Expectation {
	if model != "" && model != engine.ModelRC11 {
		if e, ok := t.PerModel[model]; ok {
			return e
		}
	}
	return Expectation{Allowed: t.Allowed, Forbidden: t.Forbidden, Weak: t.Weak}
}

// Outcome renders register values in declaration order: "a=0 b=1".
func (t *Test) Outcome(final map[string]memmodel.Value) string {
	parts := make([]string, len(t.Registers))
	for i, r := range t.Registers {
		parts[i] = fmt.Sprintf("%s=%d", r, final[r])
	}
	return strings.Join(parts, " ")
}

// Report summarizes a litmus exploration.
type Report struct {
	Test     *Test
	Runs     int
	Counts   map[string]int
	Illegal  []string // observed outcomes outside Allowed
	Missing  []string // Weak outcomes never observed
	Aborted  int
	Deadlock int
}

// OK reports whether the exploration conforms to the model: nothing
// illegal observed and every weak outcome witnessed.
func (r *Report) OK() bool { return len(r.Illegal) == 0 && len(r.Missing) == 0 }

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s runs=%d", r.Test.Name, r.Runs)
	keys := make([]string, 0, len(r.Counts))
	for k := range r.Counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  [%s]×%d", k, r.Counts[k])
	}
	if len(r.Illegal) > 0 {
		fmt.Fprintf(&b, "  ILLEGAL=%v", r.Illegal)
	}
	if len(r.Missing) > 0 {
		fmt.Fprintf(&b, "  MISSING-WEAK=%v", r.Missing)
	}
	return b.String()
}

// Run explores the test for the given number of runs under strategies
// produced by newStrategy (one per run, seeded deterministically from
// seed) and classifies outcomes.
func (t *Test) Run(newStrategy func() engine.Strategy, runs int, seed int64) *Report {
	return t.RunOpts(newStrategy, runs, seed, engine.Options{})
}

// RunOpts is Run with explicit engine options — e.g. the legacy baton
// scheduler for conformance cross-checks, or a non-default Model
// (outcomes are then classified against that model's expectation
// table). All rounds share one pooled Runner (outcomes are identical to
// per-round engine.Run by the Runner's determinism guarantee).
func (t *Test) RunOpts(newStrategy func() engine.Strategy, runs int, seed int64, opts engine.Options) *Report {
	rep := &Report{Test: t, Runs: runs, Counts: make(map[string]int)}
	exp := t.Expect(opts.Model)
	allowed := make(map[string]bool, len(exp.Allowed))
	for _, a := range exp.Allowed {
		allowed[a] = true
	}
	forbidden := make(map[string]bool, len(exp.Forbidden))
	for _, f := range exp.Forbidden {
		forbidden[f] = true
	}
	isIllegal := func(out string) bool {
		if forbidden[out] {
			return true
		}
		return len(exp.Allowed) > 0 && !allowed[out]
	}
	illegal := make(map[string]bool)
	r := engine.NewRunner(t.Program, opts)
	defer r.Close()
	for i := 0; i < runs; i++ {
		o := r.Run(newStrategy(), seed+int64(i))
		if o.Aborted {
			rep.Aborted++
			continue
		}
		if o.Deadlocked {
			rep.Deadlock++
			continue
		}
		out := t.Outcome(o.FinalValues)
		rep.Counts[out]++
		if isIllegal(out) && !illegal[out] {
			illegal[out] = true
			rep.Illegal = append(rep.Illegal, out)
		}
	}
	for _, w := range exp.Weak {
		if rep.Counts[w] == 0 {
			rep.Missing = append(rep.Missing, w)
		}
	}
	sort.Strings(rep.Illegal)
	return rep
}
