package litmus

import (
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// reg writes a thread-local observation into a result location. Result
// locations are written by exactly one thread, so non-atomic stores are
// race-free and land in FinalValues.
func reg(t *engine.Thread, l memmodel.Loc, v memmodel.Value) {
	t.Store(l, v, memmodel.NonAtomic)
}

// StoreBuffering builds the paper's Program SB with the given access
// order: X=1; a=Y ∥ Y=1; b=X.
func StoreBuffering(name string, ord memmodel.Order) *Test {
	p := engine.NewProgram(name)
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	ra := p.Loc("a", -1)
	rb := p.Loc("b", -1)
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 1, ord)
		reg(t, ra, t.Load(y, ord))
	})
	p.AddThread(func(t *engine.Thread) {
		t.Store(y, 1, ord)
		reg(t, rb, t.Load(x, ord))
	})
	return &Test{
		Name:      name,
		Program:   p,
		Registers: []string{"a", "b"},
	}
}

// SBRelaxed is SB with relaxed accesses: the non-SC outcome a=0 b=0 is a
// weak behaviour that must be observable (paper §2.1).
func SBRelaxed() *Test {
	t := StoreBuffering("SB+rlx", memmodel.Relaxed)
	t.Description = "store buffering, relaxed: a=0 b=0 allowed"
	t.Allowed = []string{"a=0 b=0", "a=0 b=1", "a=1 b=0", "a=1 b=1"}
	t.Weak = []string{"a=0 b=0"}
	// The textbook differentiator: a=0 b=0 needs store buffers, so SC
	// forbids it while TSO (the buffers' home) keeps it weak-observable.
	t.PerModel = map[string]Expectation{
		engine.ModelSC: {Allowed: []string{"a=0 b=1", "a=1 b=0", "a=1 b=1"}},
		engine.ModelTSO: {
			Allowed: []string{"a=0 b=0", "a=0 b=1", "a=1 b=0", "a=1 b=1"},
			Weak:    []string{"a=0 b=0"},
		},
	}
	return t
}

// SBSeqCst is SB with sc accesses: a=0 b=0 is forbidden.
func SBSeqCst() *Test {
	t := StoreBuffering("SB+sc", memmodel.SeqCst)
	t.Description = "store buffering, sc: a=0 b=0 forbidden"
	t.Allowed = []string{"a=0 b=1", "a=1 b=0", "a=1 b=1"}
	return t
}

// SBSCFences is SB with relaxed accesses separated by SC fences: a=0 b=0
// remains forbidden.
func SBSCFences() *Test {
	p := engine.NewProgram("SB+rlx+scfences")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	ra := p.Loc("a", -1)
	rb := p.Loc("b", -1)
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 1, memmodel.Relaxed)
		t.Fence(memmodel.SeqCst)
		reg(t, ra, t.Load(y, memmodel.Relaxed))
	})
	p.AddThread(func(t *engine.Thread) {
		t.Store(y, 1, memmodel.Relaxed)
		t.Fence(memmodel.SeqCst)
		reg(t, rb, t.Load(x, memmodel.Relaxed))
	})
	return &Test{
		Name:        "SB+rlx+scfences",
		Description: "store buffering with SC fences: a=0 b=0 forbidden",
		Program:     p,
		Registers:   []string{"a", "b"},
		Allowed:     []string{"a=0 b=1", "a=1 b=0", "a=1 b=1"},
	}
}

// MessagePassing builds X=1; Y=1 ∥ a=Y; b=X with the given orders for the
// flag (Y) accesses; the payload (X) accesses are relaxed.
func MessagePassing(name string, storeOrd, loadOrd memmodel.Order) *Test {
	p := engine.NewProgram(name)
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	ra := p.Loc("a", -1)
	rb := p.Loc("b", -1)
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 1, memmodel.Relaxed)
		t.Store(y, 1, storeOrd)
	})
	p.AddThread(func(t *engine.Thread) {
		a := t.Load(y, loadOrd)
		reg(t, ra, a)
		reg(t, rb, t.Load(x, memmodel.Relaxed))
	})
	return &Test{Name: name, Program: p, Registers: []string{"a", "b"}}
}

// MPRelaxed allows the stale read a=1 b=0 (weak behaviour).
func MPRelaxed() *Test {
	t := MessagePassing("MP+rlx", memmodel.Relaxed, memmodel.Relaxed)
	t.Description = "message passing, relaxed: a=1 b=0 allowed"
	t.Allowed = []string{"a=0 b=0", "a=0 b=1", "a=1 b=0", "a=1 b=1"}
	t.Weak = []string{"a=1 b=0"}
	// TSO's FIFO buffers keep message passing intact (seeing the flag
	// drains the payload first), so the stale read is rc11-only.
	mpStrong := Expectation{Allowed: []string{"a=0 b=0", "a=0 b=1", "a=1 b=1"}}
	t.PerModel = map[string]Expectation{
		engine.ModelSC:  mpStrong,
		engine.ModelTSO: mpStrong,
	}
	return t
}

// MPRelAcq forbids a=1 b=0: the acquire load of the release store
// synchronizes.
func MPRelAcq() *Test {
	t := MessagePassing("MP+rel+acq", memmodel.Release, memmodel.Acquire)
	t.Description = "message passing, release/acquire: a=1 b=0 forbidden"
	t.Allowed = []string{"a=0 b=0", "a=0 b=1", "a=1 b=1"}
	return t
}

// MPFences is the paper's Program MP1: relaxed accesses with a release
// fence before the flag store and an acquire fence after the flag load;
// a=1 b=0 is forbidden (Figure 1).
func MPFences() *Test {
	p := engine.NewProgram("MP1+fences")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	ra := p.Loc("a", -1)
	rb := p.Loc("b", -1)
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 1, memmodel.Relaxed)
		t.Fence(memmodel.Release)
		t.Store(y, 1, memmodel.Relaxed)
	})
	p.AddThread(func(t *engine.Thread) {
		a := t.Load(y, memmodel.Relaxed)
		reg(t, ra, a)
		t.Fence(memmodel.Acquire)
		reg(t, rb, t.Load(x, memmodel.Relaxed))
	})
	return &Test{
		Name:        "MP1+fences",
		Description: "paper MP1: fence-synchronized message passing, a=1 b=0 forbidden",
		Program:     p,
		Registers:   []string{"a", "b"},
		Allowed:     []string{"a=0 b=0", "a=0 b=1", "a=1 b=1"},
	}
}

// CoRR checks read-read coherence: two relaxed loads of the same location
// in one thread may not observe values against modification order.
func CoRR() *Test {
	p := engine.NewProgram("CoRR")
	x := p.Loc("X", 0)
	r1 := p.Loc("r1", -1)
	r2 := p.Loc("r2", -1)
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 1, memmodel.Relaxed)
	})
	p.AddThread(func(t *engine.Thread) {
		reg(t, r1, t.Load(x, memmodel.Relaxed))
		reg(t, r2, t.Load(x, memmodel.Relaxed))
	})
	return &Test{
		Name:        "CoRR",
		Description: "coherence: r1=1 r2=0 forbidden",
		Program:     p,
		Registers:   []string{"r1", "r2"},
		Allowed:     []string{"r1=0 r2=0", "r1=0 r2=1", "r1=1 r2=1"},
	}
}

// LoadBuffering checks that po ∪ rf stays acyclic in the C11Tester model
// (paper §4: out-of-thin-air is forbidden): a=1 b=1 must not occur.
func LoadBuffering() *Test {
	p := engine.NewProgram("LB+rlx")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	ra := p.Loc("a", -1)
	rb := p.Loc("b", -1)
	p.AddThread(func(t *engine.Thread) {
		reg(t, ra, t.Load(y, memmodel.Relaxed))
		t.Store(x, 1, memmodel.Relaxed)
	})
	p.AddThread(func(t *engine.Thread) {
		reg(t, rb, t.Load(x, memmodel.Relaxed))
		t.Store(y, 1, memmodel.Relaxed)
	})
	return &Test{
		Name:        "LB+rlx",
		Description: "load buffering: a=1 b=1 forbidden under (po ∪ rf) acyclicity",
		Program:     p,
		Registers:   []string{"a", "b"},
		Allowed:     []string{"a=0 b=0", "a=0 b=1", "a=1 b=0"},
	}
}

// IRIW builds the independent-reads-of-independent-writes shape with one
// access order for every operation.
func IRIW(name string, ord memmodel.Order) *Test {
	p := engine.NewProgram(name)
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	r1 := p.Loc("r1", -1)
	r2 := p.Loc("r2", -1)
	r3 := p.Loc("r3", -1)
	r4 := p.Loc("r4", -1)
	p.AddThread(func(t *engine.Thread) { t.Store(x, 1, ord) })
	p.AddThread(func(t *engine.Thread) { t.Store(y, 1, ord) })
	p.AddThread(func(t *engine.Thread) {
		reg(t, r1, t.Load(x, ord))
		reg(t, r2, t.Load(y, ord))
	})
	p.AddThread(func(t *engine.Thread) {
		reg(t, r3, t.Load(y, ord))
		reg(t, r4, t.Load(x, ord))
	})
	return &Test{Name: name, Program: p, Registers: []string{"r1", "r2", "r3", "r4"}}
}

// IRIWRelaxed allows the readers to disagree on the write order.
func IRIWRelaxed() *Test {
	t := IRIW("IRIW+rlx", memmodel.Relaxed)
	t.Description = "IRIW, relaxed: disagreeing readers allowed"
	t.Weak = []string{"r1=1 r2=0 r3=1 r4=0"}
	// TSO is multi-copy atomic (a drained store is visible to everyone
	// at once), so disagreeing readers need rc11's per-thread views.
	iriwStrong := Expectation{Forbidden: []string{"r1=1 r2=0 r3=1 r4=0"}}
	t.PerModel = map[string]Expectation{
		engine.ModelSC:  iriwStrong,
		engine.ModelTSO: iriwStrong,
	}
	return t
}

// IRIWSeqCst forbids disagreement: SC accesses are globally ordered.
func IRIWSeqCst() *Test {
	t := IRIW("IRIW+sc", memmodel.SeqCst)
	t.Description = "IRIW, sc: disagreeing readers forbidden"
	t.Forbidden = []string{"r1=1 r2=0 r3=1 r4=0"}
	return t
}

// RMWAtomicity checks that concurrent fetch-adds never lose updates.
func RMWAtomicity() *Test {
	p := engine.NewProgram("RMW-atomicity")
	x := p.Loc("X", 0)
	p.AddThread(func(t *engine.Thread) { t.FetchAdd(x, 1, memmodel.Relaxed) })
	p.AddThread(func(t *engine.Thread) { t.FetchAdd(x, 1, memmodel.Relaxed) })
	return &Test{
		Name:        "RMW-atomicity",
		Description: "two concurrent increments always sum",
		Program:     p,
		Registers:   []string{"X"},
		Allowed:     []string{"X=2"},
	}
}

// CASExclusive checks that exactly one of two competing strong CAS
// operations succeeds.
func CASExclusive() *Test {
	p := engine.NewProgram("CAS-exclusive")
	x := p.Loc("X", 0)
	ra := p.Loc("a", -1)
	rb := p.Loc("b", -1)
	p.AddThread(func(t *engine.Thread) {
		_, ok := t.CAS(x, 0, 1, memmodel.AcqRel, memmodel.Acquire)
		reg(t, ra, b2v(ok))
	})
	p.AddThread(func(t *engine.Thread) {
		_, ok := t.CAS(x, 0, 2, memmodel.AcqRel, memmodel.Acquire)
		reg(t, rb, b2v(ok))
	})
	return &Test{
		Name:        "CAS-exclusive",
		Description: "exactly one competing CAS succeeds",
		Program:     p,
		Registers:   []string{"a", "b", "X"},
		Allowed:     []string{"a=1 b=0 X=1", "a=0 b=1 X=2"},
	}
}

// ReleaseSequence checks rf+ chaining: an acquire load that reads an RMW
// which read from a release store synchronizes with that store.
func ReleaseSequence() *Test {
	p := engine.NewProgram("release-sequence")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	ra := p.Loc("a", -1)
	rb := p.Loc("b", -1)
	p.AddThread(func(t *engine.Thread) {
		t.Store(y, 7, memmodel.Relaxed)
		t.Store(x, 1, memmodel.Release)
	})
	p.AddThread(func(t *engine.Thread) {
		t.FetchAdd(x, 10, memmodel.Relaxed)
	})
	p.AddThread(func(t *engine.Thread) {
		a := t.Load(x, memmodel.Acquire)
		reg(t, ra, a)
		reg(t, rb, t.Load(y, memmodel.Relaxed))
	})
	return &Test{
		Name:        "release-sequence",
		Description: "rf+ through a relaxed RMW still synchronizes (a∈{1,11} ⇒ b=7)",
		Program:     p,
		Registers:   []string{"a", "b"},
		Forbidden:   []string{"a=1 b=0", "a=11 b=0"},
	}
}

func b2v(b bool) memmodel.Value {
	if b {
		return 1
	}
	return 0
}

// Suite returns the full conformance suite, including the extended
// coherence/causality tests of ExtendedSuite.
func Suite() []*Test {
	base := []*Test{
		SBRelaxed(),
		SBSeqCst(),
		SBSCFences(),
		MPRelaxed(),
		MPRelAcq(),
		MPFences(),
		CoRR(),
		LoadBuffering(),
		IRIWRelaxed(),
		IRIWSeqCst(),
		RMWAtomicity(),
		CASExclusive(),
		ReleaseSequence(),
	}
	base = append(base, ExtendedSuite()...)
	return append(base, MoreSuite()...)
}
