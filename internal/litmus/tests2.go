package litmus

import (
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// CoWW: same-thread writes are mo-ordered by program order.
func CoWW() *Test {
	p := engine.NewProgram("CoWW")
	x := p.Loc("X", 0)
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 1, memmodel.Relaxed)
		t.Store(x, 2, memmodel.Relaxed)
	})
	return &Test{
		Name:        "CoWW",
		Description: "write-write coherence: mo follows po",
		Program:     p,
		Registers:   []string{"X"},
		Allowed:     []string{"X=2"},
	}
}

// CoWR: a thread never reads a write older than its own last write.
func CoWR() *Test {
	p := engine.NewProgram("CoWR")
	x := p.Loc("X", 0)
	r := p.Loc("r", -1)
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 1, memmodel.Relaxed)
		reg(t, r, t.Load(x, memmodel.Relaxed))
	})
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 2, memmodel.Relaxed)
	})
	return &Test{
		Name:        "CoWR",
		Description: "write-read coherence: the read sees the own write or an mo-later one",
		Program:     p,
		Registers:   []string{"r", "X"},
		// Reading the initial 0 after writing 1 would violate coherence.
		Allowed: []string{"r=1 X=1", "r=1 X=2", "r=2 X=2"},
	}
}

// CoRW: a read never observes a write that is mo-after the reading
// thread's own later write (and never its own future write).
func CoRW() *Test {
	p := engine.NewProgram("CoRW")
	x := p.Loc("X", 0)
	r := p.Loc("r", -1)
	p.AddThread(func(t *engine.Thread) {
		reg(t, r, t.Load(x, memmodel.Relaxed))
		t.Store(x, 2, memmodel.Relaxed)
	})
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 1, memmodel.Relaxed)
	})
	return &Test{
		Name:        "CoRW",
		Description: "read-write coherence: no thread reads its own future write",
		Program:     p,
		Registers:   []string{"r"},
		Allowed:     []string{"r=0", "r=1"},
	}
}

// TwoPlusTwoW: opposing write pairs; with an append-only modification
// order the outcome X=1 Y=1 requires contradictory orderings.
func TwoPlusTwoW() *Test {
	p := engine.NewProgram("2+2W")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 1, memmodel.Relaxed)
		t.Store(y, 2, memmodel.Relaxed)
	})
	p.AddThread(func(t *engine.Thread) {
		t.Store(y, 1, memmodel.Relaxed)
		t.Store(x, 2, memmodel.Relaxed)
	})
	return &Test{
		Name:        "2+2W",
		Description: "two-plus-two writes: X=1 Y=1 unreachable with execution-order mo",
		Program:     p,
		Registers:   []string{"X", "Y"},
		Allowed:     []string{"X=1 Y=2", "X=2 Y=1", "X=2 Y=2"},
	}
}

// WRC is write-to-read causality: even a relaxed read pulls the observed
// location into the reader's view, so releasing after it transfers the
// coherence floor (read-coherence forbids the stale final read).
func WRC() *Test {
	p := engine.NewProgram("WRC")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	r1 := p.Loc("r1", -1)
	r2 := p.Loc("r2", -1)
	r3 := p.Loc("r3", -1)
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 1, memmodel.Relaxed)
	})
	p.AddThread(func(t *engine.Thread) {
		reg(t, r1, t.Load(x, memmodel.Relaxed))
		t.Store(y, 1, memmodel.Release)
	})
	p.AddThread(func(t *engine.Thread) {
		reg(t, r2, t.Load(y, memmodel.Acquire))
		reg(t, r3, t.Load(x, memmodel.Relaxed))
	})
	return &Test{
		Name:        "WRC",
		Description: "write-to-read causality: r1=1 ∧ r2=1 ⇒ r3=1",
		Program:     p,
		Registers:   []string{"r1", "r2", "r3"},
		Forbidden:   []string{"r1=1 r2=1 r3=0"},
		Weak:        []string{"r1=1 r2=0 r3=0"},
	}
}

// MPRelFenceOnly: a release fence without a matching acquire does not
// synchronize — the stale read stays allowed.
func MPRelFenceOnly() *Test {
	p := engine.NewProgram("MP+relfence-only")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	ra := p.Loc("a", -1)
	rb := p.Loc("b", -1)
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 1, memmodel.Relaxed)
		t.Fence(memmodel.Release)
		t.Store(y, 1, memmodel.Relaxed)
	})
	p.AddThread(func(t *engine.Thread) {
		reg(t, ra, t.Load(y, memmodel.Relaxed))
		reg(t, rb, t.Load(x, memmodel.Relaxed))
	})
	return &Test{
		Name:        "MP+relfence-only",
		Description: "one-sided release fence: a=1 b=0 still allowed",
		Program:     p,
		Registers:   []string{"a", "b"},
		Allowed:     []string{"a=0 b=0", "a=0 b=1", "a=1 b=0", "a=1 b=1"},
		Weak:        []string{"a=1 b=0"},
		// Fences below SC are no-ops on TSO, but the FIFO buffers forbid
		// the stale read regardless; SC forbids it trivially.
		PerModel: map[string]Expectation{
			engine.ModelSC:  {Allowed: []string{"a=0 b=0", "a=0 b=1", "a=1 b=1"}},
			engine.ModelTSO: {Allowed: []string{"a=0 b=0", "a=0 b=1", "a=1 b=1"}},
		},
	}
}

// MPAcqFenceOnly: an acquire fence without a matching release source does
// not synchronize either.
func MPAcqFenceOnly() *Test {
	p := engine.NewProgram("MP+acqfence-only")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	ra := p.Loc("a", -1)
	rb := p.Loc("b", -1)
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 1, memmodel.Relaxed)
		t.Store(y, 1, memmodel.Relaxed)
	})
	p.AddThread(func(t *engine.Thread) {
		reg(t, ra, t.Load(y, memmodel.Relaxed))
		t.Fence(memmodel.Acquire)
		reg(t, rb, t.Load(x, memmodel.Relaxed))
	})
	return &Test{
		Name:        "MP+acqfence-only",
		Description: "one-sided acquire fence: a=1 b=0 still allowed",
		Program:     p,
		Registers:   []string{"a", "b"},
		Allowed:     []string{"a=0 b=0", "a=0 b=1", "a=1 b=0", "a=1 b=1"},
		Weak:        []string{"a=1 b=0"},
		// Message passing needs no fences at all on SC or TSO.
		PerModel: map[string]Expectation{
			engine.ModelSC:  {Allowed: []string{"a=0 b=0", "a=0 b=1", "a=1 b=1"}},
			engine.ModelTSO: {Allowed: []string{"a=0 b=0", "a=0 b=1", "a=1 b=1"}},
		},
	}
}

// ReleaseSequenceBroken: RC20 release sequences do not extend through a
// later same-thread relaxed write — reading the relaxed overwrite gives
// no synchronization.
func ReleaseSequenceBroken() *Test {
	p := engine.NewProgram("relseq-broken")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	ra := p.Loc("a", -1)
	rb := p.Loc("b", -1)
	p.AddThread(func(t *engine.Thread) {
		t.Store(y, 7, memmodel.Relaxed)
		t.Store(x, 1, memmodel.Release)
		t.Store(x, 2, memmodel.Relaxed) // breaks the release sequence (RC20)
	})
	p.AddThread(func(t *engine.Thread) {
		a := t.Load(x, memmodel.Acquire)
		reg(t, ra, a)
		reg(t, rb, t.Load(y, memmodel.Relaxed))
	})
	return &Test{
		Name:        "relseq-broken",
		Description: "same-thread relaxed overwrite breaks the release sequence: a=2 b=0 allowed, a=1 b=0 forbidden",
		Program:     p,
		Registers:   []string{"a", "b"},
		Allowed:     []string{"a=0 b=0", "a=0 b=7", "a=1 b=7", "a=2 b=0", "a=2 b=7"},
		Weak:        []string{"a=2 b=0"},
		// On TSO the FIFO buffer drains Y=7 before either X store, so
		// observing any X value implies b=7 — release sequences are a
		// C11 refinement with no TSO analogue.
		PerModel: map[string]Expectation{
			engine.ModelSC:  {Allowed: []string{"a=0 b=0", "a=0 b=7", "a=1 b=7", "a=2 b=7"}},
			engine.ModelTSO: {Allowed: []string{"a=0 b=0", "a=0 b=7", "a=1 b=7", "a=2 b=7"}},
		},
	}
}

// SBOneSCFence: an SC fence in only one thread of SB does not restore
// sequential consistency.
func SBOneSCFence() *Test {
	p := engine.NewProgram("SB+one-scfence")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	ra := p.Loc("a", -1)
	rb := p.Loc("b", -1)
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 1, memmodel.Relaxed)
		t.Fence(memmodel.SeqCst)
		reg(t, ra, t.Load(y, memmodel.Relaxed))
	})
	p.AddThread(func(t *engine.Thread) {
		t.Store(y, 1, memmodel.Relaxed)
		reg(t, rb, t.Load(x, memmodel.Relaxed))
	})
	return &Test{
		Name:        "SB+one-scfence",
		Description: "one-sided SC fence: a=0 b=0 still allowed",
		Program:     p,
		Registers:   []string{"a", "b"},
		Allowed:     []string{"a=0 b=0", "a=0 b=1", "a=1 b=0", "a=1 b=1"},
		Weak:        []string{"a=0 b=0"},
		// A one-sided MFENCE is equally insufficient on real TSO (the
		// unfenced thread's store may still be buffered), so only SC
		// tightens the table.
		PerModel: map[string]Expectation{
			engine.ModelSC: {Allowed: []string{"a=0 b=1", "a=1 b=0", "a=1 b=1"}},
		},
	}
}

// FetchAddChain: a chain of relaxed fetch-adds is atomic and totally
// ordered; the sum never loses increments.
func FetchAddChain() *Test {
	p := engine.NewProgram("fetchadd-chain")
	x := p.Loc("X", 0)
	for i := 0; i < 3; i++ {
		p.AddThread(func(t *engine.Thread) {
			t.FetchAdd(x, 1, memmodel.Relaxed)
			t.FetchAdd(x, 10, memmodel.Relaxed)
		})
	}
	return &Test{
		Name:        "fetchadd-chain",
		Description: "six concurrent relaxed RMWs always sum to 33",
		Program:     p,
		Registers:   []string{"X"},
		Allowed:     []string{"X=33"},
	}
}

// ExtendedSuite returns the additional conformance tests beyond Suite.
func ExtendedSuite() []*Test {
	return []*Test{
		CoWW(),
		CoWR(),
		CoRW(),
		TwoPlusTwoW(),
		WRC(),
		MPRelFenceOnly(),
		MPAcqFenceOnly(),
		ReleaseSequenceBroken(),
		SBOneSCFence(),
		FetchAddChain(),
	}
}
