package litmus

import (
	"testing"

	"pctwm/internal/core"
	"pctwm/internal/engine"
)

func newRandomStrategy() engine.Strategy { return core.NewRandom() }

// TestSuiteRandom explores every litmus test under the C11Tester-style
// random strategy: forbidden outcomes must never appear and every weak
// outcome must be witnessed.
func TestSuiteRandom(t *testing.T) {
	for _, lt := range Suite() {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			rep := lt.Run(newRandomStrategy, 2000, 1)
			if !rep.OK() {
				t.Fatalf("conformance failure: %s", rep)
			}
			if rep.Aborted > 0 || rep.Deadlock > 0 {
				t.Fatalf("aborted=%d deadlocked=%d: %s", rep.Aborted, rep.Deadlock, rep)
			}
		})
	}
}

// TestSuitePCT checks that the PCT variant never produces an outcome
// outside the model.
func TestSuitePCT(t *testing.T) {
	for _, lt := range Suite() {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			rep := lt.Run(func() engine.Strategy { return core.NewPCT(3, 20) }, 1000, 2)
			if len(rep.Illegal) > 0 {
				t.Fatalf("illegal outcomes under PCT: %s", rep)
			}
		})
	}
}

// TestSuitePCTWM checks the same for PCTWM across several (d, h) settings.
func TestSuitePCTWM(t *testing.T) {
	for _, lt := range Suite() {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			for _, d := range []int{0, 1, 2, 3} {
				for _, h := range []int{1, 3} {
					rep := lt.Run(func() engine.Strategy { return core.NewPCTWM(d, h, 10) }, 400, int64(100*d+h))
					if len(rep.Illegal) > 0 {
						t.Fatalf("illegal outcomes under PCTWM(d=%d,h=%d): %s", d, h, rep)
					}
				}
			}
		})
	}
}
