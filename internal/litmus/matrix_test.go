package litmus

import (
	"flag"
	"testing"

	"pctwm/internal/engine"
	"pctwm/internal/enumerate"
)

// exploreWorkers shards the exhaustive explorations of this package's
// conformance tests across a worker pool (0 = GOMAXPROCS). Outcome sets
// are bit-identical at any value; CI passes -explore.workers explicitly.
var exploreWorkers = flag.Int("explore.workers", 0, "exhaustive-exploration workers (0 = GOMAXPROCS)")

// reachableOutcomes exhaustively enumerates every execution of the test
// under the given memory model and returns the set of final register
// outcomes. The litmus programs are tiny and loop-free, so the
// exploration must complete within the limit. Enumeration runs on the
// pooled parallel explorer.
func reachableOutcomes(t *testing.T, lt *Test, model string) map[string]bool {
	t.Helper()
	counts, res := enumerate.Outcomes(lt.Program, engine.Options{Model: model},
		enumerate.Config{Limit: 2_000_000, Workers: *exploreWorkers}, func(o *engine.Outcome) string {
			if o.Aborted || o.Deadlocked || o.Abnormal() {
				return "!abnormal"
			}
			return lt.Outcome(o.FinalValues)
		})
	if res.Drift != nil {
		t.Fatalf("%s/%s: %v", lt.Name, model, res.Drift)
	}
	if !res.Complete {
		t.Fatalf("%s/%s: exploration incomplete after %d runs", lt.Name, model, res.Runs)
	}
	if counts["!abnormal"] > 0 {
		t.Fatalf("%s/%s: %d abnormal executions", lt.Name, model, counts["!abnormal"])
	}
	set := make(map[string]bool, len(counts))
	for k := range counts {
		set[k] = true
	}
	return set
}

// TestCrossModelMatrix is the differential conformance check of the
// memory-model backends: the classic four-shape matrix (SB, MP, LB,
// IRIW, all relaxed) must reproduce the textbook allowed/forbidden
// tables on every model, distinguishing SC from TSO from RC11 by
// exactly the witness outcomes that separate them.
func TestCrossModelMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration is slow")
	}
	cases := []struct {
		test    func() *Test
		witness string
		// reachable under the model?
		sc, tso, rc11 bool
	}{
		// Store buffering: the weak outcome needs store buffers.
		{SBRelaxed, "a=0 b=0", false, true, true},
		// Message passing: TSO's FIFO buffers preserve causality.
		{MPRelaxed, "a=1 b=0", false, false, true},
		// Load buffering: forbidden everywhere (no load speculation; the
		// engine's mo is issue order, so po ∪ rf stays acyclic).
		{LoadBuffering, "a=1 b=1", false, false, false},
		// IRIW: disagreeing readers need non-multi-copy atomicity.
		{IRIWRelaxed, "r1=1 r2=0 r3=1 r4=0", false, false, true},
	}
	for _, c := range cases {
		lt := c.test()
		t.Run(lt.Name, func(t *testing.T) {
			perModel := map[string]map[string]bool{}
			for model, want := range map[string]bool{
				engine.ModelSC:   c.sc,
				engine.ModelTSO:  c.tso,
				engine.ModelRC11: c.rc11,
			} {
				got := reachableOutcomes(t, c.test(), model)
				perModel[model] = got
				if got[c.witness] != want {
					t.Errorf("%s under %s: witness %q reachable=%v, textbook says %v",
						lt.Name, model, c.witness, got[c.witness], want)
				}
				// Every reachable outcome must be legal under the model's
				// expectation table, and every weak outcome reachable.
				exp := lt.Expect(model)
				allowed := map[string]bool{}
				for _, a := range exp.Allowed {
					allowed[a] = true
				}
				for out := range got {
					if len(exp.Allowed) > 0 && !allowed[out] {
						t.Errorf("%s under %s: reachable outcome %q not in Allowed", lt.Name, model, out)
					}
				}
				for _, f := range exp.Forbidden {
					if got[f] {
						t.Errorf("%s under %s: forbidden outcome %q reachable", lt.Name, model, f)
					}
				}
				for _, w := range exp.Weak {
					if !got[w] {
						t.Errorf("%s under %s: weak outcome %q unreachable", lt.Name, model, w)
					}
				}
			}
			// Model strength: SC ⊆ TSO ⊆ RC11 on these relaxed programs.
			for out := range perModel[engine.ModelSC] {
				if !perModel[engine.ModelTSO][out] {
					t.Errorf("%s: SC outcome %q not reachable under TSO", lt.Name, out)
				}
			}
			for out := range perModel[engine.ModelTSO] {
				if !perModel[engine.ModelRC11][out] {
					t.Errorf("%s: TSO outcome %q not reachable under RC11", lt.Name, out)
				}
			}
		})
	}
}

// TestSuiteAllModels explores the full conformance suite under every
// backend with the random strategy, classifying against each model's
// expectation table: nothing illegal, every weak outcome witnessed.
func TestSuiteAllModels(t *testing.T) {
	for _, model := range engine.Models() {
		model := model
		t.Run(model, func(t *testing.T) {
			for _, lt := range Suite() {
				lt := lt
				t.Run(lt.Name, func(t *testing.T) {
					rep := lt.RunOpts(newRandomStrategy, 2000, 1, engine.Options{Model: model})
					if !rep.OK() {
						t.Fatalf("conformance failure under %s: %s", model, rep)
					}
					if rep.Aborted > 0 || rep.Deadlock > 0 {
						t.Fatalf("aborted=%d deadlocked=%d under %s: %s", rep.Aborted, rep.Deadlock, model, rep)
					}
				})
			}
		})
	}
}
