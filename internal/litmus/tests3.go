package litmus

import (
	"pctwm/internal/engine"
	"pctwm/internal/memmodel"
)

// CoRR2: two observer threads may not disagree on the modification order
// of one location (sc-per-location is a total order).
func CoRR2() *Test {
	p := engine.NewProgram("CoRR2")
	x := p.Loc("X", 0)
	r1 := p.Loc("r1", -1)
	r2 := p.Loc("r2", -1)
	r3 := p.Loc("r3", -1)
	r4 := p.Loc("r4", -1)
	p.AddThread(func(t *engine.Thread) { t.Store(x, 1, memmodel.Relaxed) })
	p.AddThread(func(t *engine.Thread) { t.Store(x, 2, memmodel.Relaxed) })
	p.AddThread(func(t *engine.Thread) {
		reg(t, r1, t.Load(x, memmodel.Relaxed))
		reg(t, r2, t.Load(x, memmodel.Relaxed))
	})
	p.AddThread(func(t *engine.Thread) {
		reg(t, r3, t.Load(x, memmodel.Relaxed))
		reg(t, r4, t.Load(x, memmodel.Relaxed))
	})
	return &Test{
		Name:        "CoRR2",
		Description: "observers agree on mo: r1=1 r2=2 with r3=2 r4=1 is forbidden",
		Program:     p,
		Registers:   []string{"r1", "r2", "r3", "r4"},
		Forbidden:   []string{"r1=1 r2=2 r3=2 r4=1", "r1=2 r2=1 r3=1 r4=2"},
	}
}

// SShape is the S litmus shape: Wx=2; Wy=1(rel) ∥ Ry=1(acq); Wx=1. When
// the acquire read observes the release write, coherence plus the sw edge
// force the second thread's Wx=1 mo-after Wx=2 in our append-order mo —
// the final X must then be 1.
func SShape() *Test {
	p := engine.NewProgram("S")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	ra := p.Loc("a", -1)
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 2, memmodel.Relaxed)
		t.Store(y, 1, memmodel.Release)
	})
	p.AddThread(func(t *engine.Thread) {
		a := t.Load(y, memmodel.Acquire)
		reg(t, ra, a)
		if a == 1 {
			t.Store(x, 1, memmodel.Relaxed)
		}
	})
	return &Test{
		Name:        "S",
		Description: "S shape: a=1 implies the final X is 1 (hb into mo)",
		Program:     p,
		Registers:   []string{"a", "X"},
		Allowed:     []string{"a=0 X=2", "a=1 X=1"},
	}
}

// RShape: two writers to X, the second thread observes Y through an
// acquire load; SC-per-location keeps the histories coherent.
func RShape() *Test {
	p := engine.NewProgram("R")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	ra := p.Loc("a", -1)
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 1, memmodel.Relaxed)
		t.Store(y, 1, memmodel.Release)
	})
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 2, memmodel.Relaxed)
		reg(t, ra, t.Load(y, memmodel.Acquire))
	})
	return &Test{
		Name:        "R",
		Description: "R shape: every interleaved outcome is coherent",
		Program:     p,
		Registers:   []string{"a", "X"},
		Allowed:     []string{"a=0 X=1", "a=0 X=2", "a=1 X=1", "a=1 X=2"},
	}
}

// ISA2: a three-thread release/acquire chain transfers the payload.
func ISA2() *Test {
	p := engine.NewProgram("ISA2")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	z := p.Loc("Z", 0)
	r1 := p.Loc("r1", -1)
	r2 := p.Loc("r2", -1)
	r3 := p.Loc("r3", -1)
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 1, memmodel.Relaxed)
		t.Store(y, 1, memmodel.Release)
	})
	p.AddThread(func(t *engine.Thread) {
		a := t.Load(y, memmodel.Acquire)
		reg(t, r1, a)
		if a == 1 {
			t.Store(z, 1, memmodel.Release)
		}
	})
	p.AddThread(func(t *engine.Thread) {
		b := t.Load(z, memmodel.Acquire)
		reg(t, r2, b)
		reg(t, r3, t.Load(x, memmodel.Relaxed))
	})
	return &Test{
		Name:        "ISA2",
		Description: "release/acquire chains are transitive: r1=1 ∧ r2=1 ⇒ r3=1",
		Program:     p,
		Registers:   []string{"r1", "r2", "r3"},
		Forbidden:   []string{"r1=1 r2=1 r3=0"},
	}
}

// ISA2Relaxed breaks the middle link: the stale read returns.
func ISA2Relaxed() *Test {
	p := engine.NewProgram("ISA2+rlx")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	z := p.Loc("Z", 0)
	r1 := p.Loc("r1", -1)
	r2 := p.Loc("r2", -1)
	r3 := p.Loc("r3", -1)
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 1, memmodel.Relaxed)
		t.Store(y, 1, memmodel.Release)
	})
	p.AddThread(func(t *engine.Thread) {
		a := t.Load(y, memmodel.Relaxed) // broken link: should be acquire
		reg(t, r1, a)
		if a == 1 {
			t.Store(z, 1, memmodel.Release)
		}
	})
	p.AddThread(func(t *engine.Thread) {
		b := t.Load(z, memmodel.Acquire)
		reg(t, r2, b)
		reg(t, r3, t.Load(x, memmodel.Relaxed))
	})
	return &Test{
		Name:        "ISA2+rlx",
		Description: "a relaxed middle link breaks the chain: r1=1 r2=1 r3=0 allowed",
		Program:     p,
		Registers:   []string{"r1", "r2", "r3"},
		Weak:        []string{"r1=1 r2=1 r3=0"},
		// TSO transfers causality without annotations (drain-through
		// makes X=1 globally visible before Z=1 can be observed).
		PerModel: map[string]Expectation{
			engine.ModelSC:  {Forbidden: []string{"r1=1 r2=1 r3=0"}},
			engine.ModelTSO: {Forbidden: []string{"r1=1 r2=1 r3=0"}},
		},
	}
}

// ExchangeOrder: exchanges are totally ordered like every RMW; the two
// threads' old values are never equal.
func ExchangeOrder() *Test {
	p := engine.NewProgram("exchange-order")
	x := p.Loc("X", 0)
	ra := p.Loc("a", -1)
	rb := p.Loc("b", -1)
	p.AddThread(func(t *engine.Thread) {
		reg(t, ra, t.Exchange(x, 1, memmodel.AcqRel))
	})
	p.AddThread(func(t *engine.Thread) {
		reg(t, rb, t.Exchange(x, 2, memmodel.AcqRel))
	})
	return &Test{
		Name:        "exchange-order",
		Description: "exchanges read distinct predecessors",
		Program:     p,
		Registers:   []string{"a", "b", "X"},
		Allowed:     []string{"a=0 b=1 X=2", "a=2 b=0 X=1"},
	}
}

// SBRMW: RMWs on both sides of SB read the mo-maximal write, so the
// store-buffering outcome vanishes (a classic repair for SB).
func SBRMW() *Test {
	p := engine.NewProgram("SB+rmw")
	x := p.Loc("X", 0)
	y := p.Loc("Y", 0)
	ra := p.Loc("a", -1)
	rb := p.Loc("b", -1)
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 1, memmodel.Relaxed)
		reg(t, ra, t.FetchAdd(y, 0, memmodel.AcqRel))
	})
	p.AddThread(func(t *engine.Thread) {
		t.Store(y, 1, memmodel.Relaxed)
		reg(t, rb, t.FetchAdd(x, 0, memmodel.AcqRel))
	})
	return &Test{
		Name:        "SB+rmw",
		Description: "RMW reads are mo-maximal: a=0 b=0 forbidden",
		Program:     p,
		Registers:   []string{"a", "b"},
		Allowed:     []string{"a=0 b=1", "a=1 b=0", "a=1 b=1"},
	}
}

// SpawnJoinSync: thread creation and join edges synchronize without any
// atomics.
func SpawnJoinSync() *Test {
	p := engine.NewProgram("spawn-join")
	x := p.Loc("X", 0)
	r := p.Loc("r", -1)
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 5, memmodel.NonAtomic)
		h := t.Spawn(func(c *engine.Thread) {
			v := c.Load(x, memmodel.NonAtomic)
			c.Store(x, v+1, memmodel.NonAtomic)
		})
		t.Join(h)
		reg(t, r, t.Load(x, memmodel.NonAtomic))
	})
	return &Test{
		Name:        "spawn-join",
		Description: "spawn/join synchronize plain accesses",
		Program:     p,
		Registers:   []string{"r"},
		Allowed:     []string{"r=6"},
	}
}

// SCReadStrong: under the engine's global SC view, an SC read observes
// the latest SC write (stronger than the C11Tester axiom; documented in
// EXPERIMENTS.md deviation 1).
func SCReadStrong() *Test {
	p := engine.NewProgram("sc-read-strong")
	x := p.Loc("X", 0)
	f := p.Loc("F", 0)
	r := p.Loc("r", -1)
	p.AddThread(func(t *engine.Thread) {
		t.Store(x, 1, memmodel.SeqCst)
		t.Store(f, 1, memmodel.SeqCst)
	})
	p.AddThread(func(t *engine.Thread) {
		if t.Load(f, memmodel.SeqCst) == 1 {
			reg(t, r, t.Load(x, memmodel.SeqCst))
		}
	})
	return &Test{
		Name:        "sc-read-strong",
		Description: "an SC read after an observed SC write sees the latest SC value",
		Program:     p,
		Registers:   []string{"r"},
		Allowed:     []string{"r=-1", "r=1"},
	}
}

// MoreSuite returns the third batch of conformance tests.
func MoreSuite() []*Test {
	return []*Test{
		CoRR2(),
		SShape(),
		RShape(),
		ISA2(),
		ISA2Relaxed(),
		ExchangeOrder(),
		SBRMW(),
		SpawnJoinSync(),
		SCReadStrong(),
	}
}
