// Command pctwm-litmus runs the weak-memory litmus conformance suite
// under a chosen strategy and reports the observed outcome histograms.
//
// Usage:
//
//	pctwm-litmus [-strategy c11tester|pct|pctwm] [-runs N] [-d D] [-y H] [-s SEED]
//	             [-coverage [-workers N] [-census FILE]]
//
// The flag names -d (bug depth), -y (history depth) and -s (seed) follow
// the paper's artifact (Appendix A.5).
//
// -coverage additionally runs each test as a behavior-coverage campaign:
// every complete trial is fingerprinted (internal/coverage) and the
// distinct-behavior count and saturation estimate are printed per test.
// -census cross-validates the campaign against a ground-truth census
// written by `pctwm-explore -census`: the campaign's behavior set must
// equal the exhaustive enumeration's exactly (the campaign is expected
// to saturate at -runs trials; the command exits 1 on any mismatch).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"slices"

	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/enumerate"
	"pctwm/internal/harness"
	"pctwm/internal/litmus"
)

func main() {
	var (
		strategy = flag.String("strategy", "c11tester", "testing strategy: c11tester, pct, pctwm")
		runs     = flag.Int("runs", 2000, "rounds per litmus test")
		depth    = flag.Int("d", 2, "bug depth (pct, pctwm)")
		history  = flag.Int("y", 2, "history depth (pctwm)")
		seed     = flag.Int64("s", 1, "base random seed")
		baton    = flag.Bool("engine.baton", false, "use the legacy baton scheduler (escape hatch; identical schedules)")
		model    = flag.String("engine.model", engine.ModelRC11, "memory model backend: rc11, sc, tso (outcomes classify against that model's table)")
		covFlag  = flag.Bool("coverage", false, "run each test as a behavior-coverage campaign and print saturation per test")
		workers  = flag.Int("workers", 1, "with -coverage: campaign workers (0 = GOMAXPROCS; results identical)")
		census   = flag.String("census", "", "with -coverage: verify campaign behavior sets against this pctwm-explore -census file (exit 1 on mismatch)")
	)
	flag.Parse()
	if !engine.ValidModel(*model) {
		fmt.Fprintf(os.Stderr, "pctwm-litmus: unknown memory model %q (have %v)\n", *model, engine.Models())
		os.Exit(2)
	}
	if *model == "" {
		*model = engine.ModelRC11 // "" selects the default backend
	}
	if *census != "" && !*covFlag {
		fmt.Fprintln(os.Stderr, "pctwm-litmus: -census requires -coverage")
		os.Exit(2)
	}

	newStrategy, err := makeFactory(*strategy, *depth, *history)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pctwm-litmus:", err)
		os.Exit(2)
	}

	// The census file is an array (one entry per test pctwm-explore ran);
	// index it by program name, keeping only entries for the active model.
	censuses := map[string]*enumerate.Census{}
	if *census != "" {
		data, err := os.ReadFile(*census)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pctwm-litmus: %v\n", err)
			os.Exit(2)
		}
		var list []*enumerate.Census
		if err := json.Unmarshal(data, &list); err != nil {
			fmt.Fprintf(os.Stderr, "pctwm-litmus: %s: %v\n", *census, err)
			os.Exit(2)
		}
		for _, c := range list {
			if c.Model == *model {
				censuses[c.Program] = c
			}
		}
	}

	failures := 0
	for _, t := range litmus.Suite() {
		opts := engine.Options{Baton: *baton, Model: *model}
		rep := t.RunOpts(newStrategy, *runs, *seed, opts)
		status := "ok  "
		switch {
		case len(rep.Illegal) > 0:
			// Observing a forbidden outcome is a genuine conformance
			// failure under any strategy.
			status = "FAIL"
			failures++
		case len(rep.Missing) > 0:
			// Missing weak outcomes are statistical (and expected of the
			// bounded strategies); exhaustive reachability is verified by
			// pctwm-explore and the enumerate test suite.
			status = "warn"
		}
		fmt.Printf("%s %s\n", status, rep)
		if *covFlag {
			failures += runCoverage(t, newStrategy, *runs, *seed, opts, *workers, censuses)
		}
	}
	if failures > 0 {
		fmt.Printf("%d conformance failure(s) under %s\n", failures, *model)
		os.Exit(1)
	}
	fmt.Printf("all litmus tests conform to the %s model\n", *model)
}

// runCoverage runs one litmus test as a behavior-coverage campaign,
// prints the saturation digest, and (when a census is available for the
// test) verifies census equality. Returns the number of failures.
func runCoverage(t *litmus.Test, newStrategy func() engine.Strategy, runs int, seed int64,
	opts engine.Options, workers int, censuses map[string]*enumerate.Census) int {
	camp := harness.Campaign{Workers: workers, Coverage: true}
	noHit := func(*engine.Outcome) bool { return false }
	res := harness.RunCampaign(t.Program, noHit, newStrategy, runs, seed, opts, camp)
	if res.Coverage == nil {
		fmt.Printf("     coverage: no complete trials\n")
		return 1
	}
	st := res.Coverage.Stats()
	fmt.Printf("     coverage: %d behavior(s) in %d trial(s), est_unseen %.2f%%, last novel at trial %d\n",
		st.Behaviors, st.Observations, 100*st.UnseenMass, st.LastNovel)
	c, ok := censuses[t.Program.Name()]
	if !ok {
		return 0
	}
	got, want := res.Coverage.Fingerprints(), c.Fingerprints()
	if slices.Equal(got, want) {
		fmt.Printf("     census: equal (%d behavior(s)) ✓\n", len(want))
		return 0
	}
	extra, missing := 0, 0
	for _, fp := range got {
		if !slices.Contains(want, fp) {
			extra++
		}
	}
	for _, fp := range want {
		if !slices.Contains(got, fp) {
			missing++
		}
	}
	// A behavior outside the census means the fingerprinting (or the
	// enumeration) is unsound; a missing one means the campaign did not
	// saturate at this trial count. Both fail the cross-validation.
	fmt.Printf("     census: MISMATCH — campaign %d vs census %d behavior(s) (%d unseen by campaign, %d outside census)\n",
		len(got), len(want), missing, extra)
	return 1
}

func makeFactory(name string, d, h int) (func() engine.Strategy, error) {
	switch name {
	case "c11tester":
		return func() engine.Strategy { return core.NewRandom() }, nil
	case "pct":
		return func() engine.Strategy { return core.NewPCT(d, 30) }, nil
	case "pctwm":
		return func() engine.Strategy { return core.NewPCTWM(d, h, 15) }, nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", name)
	}
}
