// Command pctwm-litmus runs the weak-memory litmus conformance suite
// under a chosen strategy and reports the observed outcome histograms.
//
// Usage:
//
//	pctwm-litmus [-strategy c11tester|pct|pctwm] [-runs N] [-d D] [-y H] [-s SEED]
//
// The flag names -d (bug depth), -y (history depth) and -s (seed) follow
// the paper's artifact (Appendix A.5).
package main

import (
	"flag"
	"fmt"
	"os"

	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/litmus"
)

func main() {
	var (
		strategy = flag.String("strategy", "c11tester", "testing strategy: c11tester, pct, pctwm")
		runs     = flag.Int("runs", 2000, "rounds per litmus test")
		depth    = flag.Int("d", 2, "bug depth (pct, pctwm)")
		history  = flag.Int("y", 2, "history depth (pctwm)")
		seed     = flag.Int64("s", 1, "base random seed")
		baton    = flag.Bool("engine.baton", false, "use the legacy baton scheduler (escape hatch; identical schedules)")
		model    = flag.String("engine.model", engine.ModelRC11, "memory model backend: rc11, sc, tso (outcomes classify against that model's table)")
	)
	flag.Parse()
	if !engine.ValidModel(*model) {
		fmt.Fprintf(os.Stderr, "pctwm-litmus: unknown memory model %q (have %v)\n", *model, engine.Models())
		os.Exit(2)
	}
	if *model == "" {
		*model = engine.ModelRC11 // "" selects the default backend
	}

	newStrategy, err := makeFactory(*strategy, *depth, *history)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pctwm-litmus:", err)
		os.Exit(2)
	}

	failures := 0
	for _, t := range litmus.Suite() {
		rep := t.RunOpts(newStrategy, *runs, *seed, engine.Options{Baton: *baton, Model: *model})
		status := "ok  "
		switch {
		case len(rep.Illegal) > 0:
			// Observing a forbidden outcome is a genuine conformance
			// failure under any strategy.
			status = "FAIL"
			failures++
		case len(rep.Missing) > 0:
			// Missing weak outcomes are statistical (and expected of the
			// bounded strategies); exhaustive reachability is verified by
			// pctwm-explore and the enumerate test suite.
			status = "warn"
		}
		fmt.Printf("%s %s\n", status, rep)
	}
	if failures > 0 {
		fmt.Printf("%d conformance failure(s) under %s\n", failures, *model)
		os.Exit(1)
	}
	fmt.Printf("all litmus tests conform to the %s model\n", *model)
}

func makeFactory(name string, d, h int) (func() engine.Strategy, error) {
	switch name {
	case "c11tester":
		return func() engine.Strategy { return core.NewRandom() }, nil
	case "pct":
		return func() engine.Strategy { return core.NewPCT(d, 30) }, nil
	case "pctwm":
		return func() engine.Strategy { return core.NewPCTWM(d, h, 15) }, nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", name)
	}
}
