// Command pctwm-replay re-executes repro bundles written by a trial
// campaign (harness.Campaign.ReproDir) and verifies that the recorded
// failing execution reproduces bit-identically.
//
// Usage:
//
//	pctwm-replay [-extra-writes N] [-v] [-perfetto-dir DIR] bundle.json [bundle2.json ...]
//	pctwm-replay -campaign CHECKPOINT_DIR [bundle.json ...]
//
// -campaign reads the durable repro-bundle index out of a campaign
// checkpoint directory (pctwm-bench/-experiments -checkpoint-dir): the
// newest good checkpoint generation of every cell names the bundles its
// campaign captured, and each of those is replayed as if passed on the
// command line (explicit bundle arguments are replayed afterwards).
//
// Each bundle names its program; the program is resolved against the
// built-in registries (benchmarks, litmus tests, applications) and
// fingerprint-checked (thread and location counts) before the replay, so
// a bundle recorded against a different build of the program is rejected
// instead of silently derailing. Version-3 bundles also record the
// behavior fingerprint (internal/coverage) of the original failing
// trial; a deterministic bundle whose replay produces a different
// fingerprint is reported as diverged. -extra-writes rebuilds benchmark
// programs with the Figure-6 inserted relaxed writes, matching campaigns
// that ran with them.
//
// -perfetto-dir writes Chrome trace-event JSON renderings of each bundle
// under DIR: <bundle>.recorded.perfetto.json for the trace embedded at
// capture time (campaigns run with EmbedPerfetto) and
// <bundle>.replay.perfetto.json for the schedule this replay actually
// executed — a diverging replay can then be diffed visually against the
// recorded schedule in ui.perfetto.dev.
//
// Exit status: 0 when every bundle reproduced its recorded outcome, 1
// when any replay diverged (outcome diff or schedule derail), 2 on usage,
// load or program-resolution errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pctwm/internal/apps"
	"pctwm/internal/benchprog"
	"pctwm/internal/engine"
	"pctwm/internal/harness"
	"pctwm/internal/litmus"
	"pctwm/internal/replay"
	"pctwm/internal/telemetry/perfetto"
)

func main() {
	var (
		extraWrites = flag.Int("extra-writes", 0, "rebuild benchmark programs with this many inserted relaxed writes (Figure 6 campaigns)")
		verbose     = flag.Bool("v", false, "print the replayed outcome summary for every bundle")
		perfDir     = flag.String("perfetto-dir", "", "write recorded and replayed schedules as Chrome trace-event JSON under this directory")
		model       = flag.String("engine.model", "", "require bundles to record this memory model (empty = replay each under its own recorded model)")
		campaign    = flag.String("campaign", "", "replay every bundle indexed by the checkpoints under this campaign directory")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pctwm-replay [-extra-writes N] [-v] [-perfetto-dir DIR] [-campaign DIR] bundle.json [bundle2.json ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *model != "" && !engine.ValidModel(*model) {
		fmt.Fprintf(os.Stderr, "pctwm-replay: unknown memory model %q (have %v)\n", *model, engine.Models())
		os.Exit(2)
	}
	paths := flag.Args()
	if *campaign != "" {
		indexed, err := harness.LoadReproIndex(nil, *campaign)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pctwm-replay: -campaign %s: %v\n", *campaign, err)
			os.Exit(2)
		}
		if len(indexed) == 0 {
			fmt.Printf("pctwm-replay: no repro bundles indexed under %s (campaign had no captured failures)\n", *campaign)
		}
		paths = append(indexed, paths...)
		if len(paths) == 0 {
			os.Exit(0)
		}
	}
	if len(paths) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	exit := 0
	for _, path := range paths {
		switch replayBundle(path, *extraWrites, *verbose, *perfDir, *model) {
		case 1:
			if exit == 0 {
				exit = 1
			}
		case 2:
			exit = 2
		}
	}
	os.Exit(exit)
}

// replayBundle loads, resolves and verifies one bundle, printing a
// one-line verdict (plus details on divergence). Returns an exit status
// contribution: 0 reproduced, 1 diverged, 2 load/resolve error.
func replayBundle(path string, extraWrites int, verbose bool, perfDir, wantModel string) int {
	b, err := replay.LoadBundle(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pctwm-replay: %s: %v\n", path, err)
		return 2
	}
	if wantModel != "" && b.Model != wantModel {
		// A decision sequence is only meaningful under the semantics it was
		// recorded against — refuse up front rather than report a divergence.
		fmt.Fprintf(os.Stderr, "pctwm-replay: %s: bundle records memory model %q, -engine.model requires %q\n",
			path, b.Model, wantModel)
		return 2
	}
	prog, err := resolveProgram(b, extraWrites)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pctwm-replay: %s: %v\n", path, err)
		return 2
	}
	if perfDir != "" {
		writePerfetto(path, b, prog, perfDir)
	}

	if b.HarnessPanic != "" {
		// The recorded failure was a panic outside the engine (strategy or
		// harness bug); the panicking strategy itself is not serializable,
		// so the replay is best-effort: re-run whatever decisions were
		// recorded and report, but do not judge reproduction.
		fmt.Printf("%s: %s seed=%d: harness panic bundle (triage %s): %s\n",
			path, b.Program, b.Seed, b.Triage, b.HarnessPanic)
		if verbose && b.Stack != "" {
			fmt.Printf("  recorded stack:\n%s\n", b.Stack)
		}
		return 0
	}

	res, err := b.Verify(prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pctwm-replay: %s: %v\n", path, err)
		return 2
	}
	// v3 bundles carry the behavior fingerprint the campaign recorded;
	// name it in the verdict so dedupe decisions can be audited by hand.
	var fp string
	if b.BehaviorFP != 0 {
		fp = fmt.Sprintf(", behavior %#x", b.BehaviorFP)
	}
	if res.Match {
		fmt.Printf("%s: %s %s seed=%d: REPRODUCED (%d steps, triage %s%s)\n",
			path, b.Program, b.Strategy, b.Seed, res.Summary.Steps, b.Triage, fp)
		if verbose {
			printSummary(res.Summary)
		}
		return 0
	}
	fmt.Printf("%s: %s %s seed=%d: DIVERGED (derails=%d, triage %s%s)\n",
		path, b.Program, b.Strategy, b.Seed, res.Derails, b.Triage, fp)
	for _, d := range res.Diffs {
		fmt.Printf("  diff %s\n", d)
	}
	if verbose {
		printSummary(res.Summary)
	}
	return 1
}

// writePerfetto renders the bundle as Chrome trace-event JSON under dir:
// the trace embedded at capture time (if the campaign ran with
// EmbedPerfetto) and the schedule a fresh replay of the recorded
// decisions executes here. Failures are reported but never affect the
// replay verdict — trace export is best-effort diagnostics.
func writePerfetto(path string, b *replay.Bundle, prog *engine.Program, dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "pctwm-replay: %s: perfetto dir: %v\n", path, err)
		return
	}
	base := strings.TrimSuffix(filepath.Base(path), ".json")
	if len(b.Perfetto) > 0 {
		out := filepath.Join(dir, base+".recorded.perfetto.json")
		if err := os.WriteFile(out, append([]byte(b.Perfetto), '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pctwm-replay: %s: %v\n", path, err)
		} else {
			fmt.Printf("%s: wrote recorded schedule to %s\n", path, out)
		}
	}

	// Re-run the recorded decisions with recording on to render the
	// schedule this build actually executes (it may diverge from the
	// recorded one; that is exactly what the pair of files shows).
	trace := b.Trace
	if trace == nil {
		trace = &replay.Trace{}
	}
	opts := b.Options
	opts.Context = nil
	opts.Telemetry = nil
	opts.Record = true
	o := engine.Run(prog, replay.NewPlayer(trace), b.Seed, opts)
	if o.Recording == nil {
		return
	}
	data, err := perfetto.Marshal(o.Recording, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pctwm-replay: %s: %v\n", path, err)
		return
	}
	out := filepath.Join(dir, base+".replay.perfetto.json")
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "pctwm-replay: %s: %v\n", path, err)
		return
	}
	fmt.Printf("%s: wrote replayed schedule to %s\n", path, out)
}

func printSummary(s replay.OutcomeSummary) {
	fmt.Printf("  steps=%d events=%d comm=%d bug=%v races=%d aborted=%v deadlocked=%v",
		s.Steps, s.Events, s.CommEvents, s.BugHit, s.Races, s.Aborted, s.Deadlocked)
	if s.ErrKind != "" {
		fmt.Printf(" err=%s(%s)", s.ErrKind, s.ErrMsg)
	}
	fmt.Println()
	for _, m := range s.BugMessages {
		fmt.Printf("  bug: %s\n", m)
	}
}

// resolveProgram finds the program the bundle was recorded against by
// name across the built-in registries, then fingerprint-checks it.
func resolveProgram(b *replay.Bundle, extraWrites int) (*engine.Program, error) {
	var candidates []*engine.Program
	for _, bench := range benchprog.All() {
		candidates = append(candidates, bench.Program(extraWrites), bench.FixedProgram())
	}
	for _, t := range litmus.Suite() {
		candidates = append(candidates, t.Program)
	}
	for _, a := range apps.All() {
		candidates = append(candidates, a.Program())
	}

	var named []*engine.Program
	for _, p := range candidates {
		if p.Name() == b.Program {
			if b.Matches(p) {
				return p, nil
			}
			named = append(named, p)
		}
	}
	if len(named) > 0 {
		p := named[0]
		return nil, fmt.Errorf(
			"program %q found but fingerprint differs: bundle has %d threads/%d locs, this build has %d/%d (recorded against a different build or -extra-writes?)",
			b.Program, b.ProgramThreads, b.ProgramLocs, p.NumThreads(), p.NumLocs())
	}
	return nil, fmt.Errorf("program %q not found in the benchmark, litmus or application registries", b.Program)
}
