// Command pctwm-replay re-executes repro bundles written by a trial
// campaign (harness.Campaign.ReproDir) and verifies that the recorded
// failing execution reproduces bit-identically.
//
// Usage:
//
//	pctwm-replay [-extra-writes N] [-v] bundle.json [bundle2.json ...]
//
// Each bundle names its program; the program is resolved against the
// built-in registries (benchmarks, litmus tests, applications) and
// fingerprint-checked (thread and location counts) before the replay, so
// a bundle recorded against a different build of the program is rejected
// instead of silently derailing. -extra-writes rebuilds benchmark
// programs with the Figure-6 inserted relaxed writes, matching campaigns
// that ran with them.
//
// Exit status: 0 when every bundle reproduced its recorded outcome, 1
// when any replay diverged (outcome diff or schedule derail), 2 on usage,
// load or program-resolution errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"pctwm/internal/apps"
	"pctwm/internal/benchprog"
	"pctwm/internal/engine"
	"pctwm/internal/litmus"
	"pctwm/internal/replay"
)

func main() {
	var (
		extraWrites = flag.Int("extra-writes", 0, "rebuild benchmark programs with this many inserted relaxed writes (Figure 6 campaigns)")
		verbose     = flag.Bool("v", false, "print the replayed outcome summary for every bundle")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pctwm-replay [-extra-writes N] [-v] bundle.json [bundle2.json ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	exit := 0
	for _, path := range flag.Args() {
		switch replayBundle(path, *extraWrites, *verbose) {
		case 1:
			if exit == 0 {
				exit = 1
			}
		case 2:
			exit = 2
		}
	}
	os.Exit(exit)
}

// replayBundle loads, resolves and verifies one bundle, printing a
// one-line verdict (plus details on divergence). Returns an exit status
// contribution: 0 reproduced, 1 diverged, 2 load/resolve error.
func replayBundle(path string, extraWrites int, verbose bool) int {
	b, err := replay.LoadBundle(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pctwm-replay: %s: %v\n", path, err)
		return 2
	}
	prog, err := resolveProgram(b, extraWrites)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pctwm-replay: %s: %v\n", path, err)
		return 2
	}

	if b.HarnessPanic != "" {
		// The recorded failure was a panic outside the engine (strategy or
		// harness bug); the panicking strategy itself is not serializable,
		// so the replay is best-effort: re-run whatever decisions were
		// recorded and report, but do not judge reproduction.
		fmt.Printf("%s: %s seed=%d: harness panic bundle (triage %s): %s\n",
			path, b.Program, b.Seed, b.Triage, b.HarnessPanic)
		if verbose && b.Stack != "" {
			fmt.Printf("  recorded stack:\n%s\n", b.Stack)
		}
		return 0
	}

	res, err := b.Verify(prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pctwm-replay: %s: %v\n", path, err)
		return 2
	}
	if res.Match {
		fmt.Printf("%s: %s %s seed=%d: REPRODUCED (%d steps, triage %s)\n",
			path, b.Program, b.Strategy, b.Seed, res.Summary.Steps, b.Triage)
		if verbose {
			printSummary(res.Summary)
		}
		return 0
	}
	fmt.Printf("%s: %s %s seed=%d: DIVERGED (derails=%d, triage %s)\n",
		path, b.Program, b.Strategy, b.Seed, res.Derails, b.Triage)
	for _, d := range res.Diffs {
		fmt.Printf("  diff %s\n", d)
	}
	if verbose {
		printSummary(res.Summary)
	}
	return 1
}

func printSummary(s replay.OutcomeSummary) {
	fmt.Printf("  steps=%d events=%d comm=%d bug=%v races=%d aborted=%v deadlocked=%v",
		s.Steps, s.Events, s.CommEvents, s.BugHit, s.Races, s.Aborted, s.Deadlocked)
	if s.ErrKind != "" {
		fmt.Printf(" err=%s(%s)", s.ErrKind, s.ErrMsg)
	}
	fmt.Println()
	for _, m := range s.BugMessages {
		fmt.Printf("  bug: %s\n", m)
	}
}

// resolveProgram finds the program the bundle was recorded against by
// name across the built-in registries, then fingerprint-checks it.
func resolveProgram(b *replay.Bundle, extraWrites int) (*engine.Program, error) {
	var candidates []*engine.Program
	for _, bench := range benchprog.All() {
		candidates = append(candidates, bench.Program(extraWrites), bench.FixedProgram())
	}
	for _, t := range litmus.Suite() {
		candidates = append(candidates, t.Program)
	}
	for _, a := range apps.All() {
		candidates = append(candidates, a.Program())
	}

	var named []*engine.Program
	for _, p := range candidates {
		if p.Name() == b.Program {
			if b.Matches(p) {
				return p, nil
			}
			named = append(named, p)
		}
	}
	if len(named) > 0 {
		p := named[0]
		return nil, fmt.Errorf(
			"program %q found but fingerprint differs: bundle has %d threads/%d locs, this build has %d/%d (recorded against a different build or -extra-writes?)",
			b.Program, b.ProgramThreads, b.ProgramLocs, p.NumThreads(), p.NumLocs())
	}
	return nil, fmt.Errorf("program %q not found in the benchmark, litmus or application registries", b.Program)
}
