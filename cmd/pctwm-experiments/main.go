// Command pctwm-experiments regenerates the paper's evaluation artifacts:
// Tables 1-4 and the data series behind Figures 5 and 6.
//
// Usage:
//
//	pctwm-experiments [-quick] [-runs N] [-fig6runs N] [-perfruns N] [-seed S] [-workers N] [-section all|table1|table2|table3|table4|figure5|figure6]
//
// The default configuration uses the paper's experiment sizes (1000
// rounds per table configuration, 500 per Figure 6 point, 10 timed runs
// per Table 4 cell); -quick shrinks everything for a fast smoke run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pctwm/internal/report"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "use the small smoke-run configuration")
		runs     = flag.Int("runs", 0, "rounds per configuration for tables 2-3 and figure 5 (0 = default)")
		fig6runs = flag.Int("fig6runs", 0, "rounds per figure 6 point (0 = default)")
		perfruns = flag.Int("perfruns", 0, "timed runs per table 4 cell (0 = default)")
		seed     = flag.Int64("seed", 0, "base random seed (0 = default)")
		workers  = flag.Int("workers", 1, "worker goroutines per trial batch (0 = GOMAXPROCS, 1 = serial); results are identical for every worker count")
		section  = flag.String("section", "all", "which artifact to regenerate: all, table1..table4, figure5, figure6, ablation, baselines, coverage, figure5csv, figure6csv")
	)
	flag.Parse()

	cfg := report.Default()
	if *quick {
		cfg = report.Quick()
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *fig6runs > 0 {
		cfg.Fig6Runs = *fig6runs
	}
	if *perfruns > 0 {
		cfg.PerfRuns = *perfruns
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers

	sections := map[string]func(io.Writer, report.Config) error{
		"all":        report.All,
		"table1":     report.Table1,
		"table2":     report.Table2,
		"table3":     report.Table3,
		"table4":     report.Table4,
		"figure5":    report.Figure5,
		"figure6":    report.Figure6,
		"ablation":   report.Ablations,
		"baselines":  report.Baselines,
		"coverage":   report.Coverage,
		"figure5csv": report.Figure5CSV,
		"figure6csv": report.Figure6CSV,
	}
	f, ok := sections[*section]
	if !ok {
		fmt.Fprintf(os.Stderr, "pctwm-experiments: unknown section %q\n", *section)
		os.Exit(2)
	}
	if err := f(os.Stdout, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "pctwm-experiments: %v\n", err)
		os.Exit(1)
	}
}
