// Command pctwm-experiments regenerates the paper's evaluation artifacts:
// Tables 1-4 and the data series behind Figures 5 and 6.
//
// Usage:
//
//	pctwm-experiments [-quick] [-runs N] [-fig6runs N] [-perfruns N] [-seed S] [-workers N]
//	                  [-repro-dir DIR [-max-repros N]]
//	                  [-checkpoint-dir DIR [-checkpoint-every N]] [-resume DIR]
//	                  [-metrics-addr ADDR] [-pprof-addr ADDR] [-progress] [-coverage] [-distcheck]
//	                  [-section all|table1|table2|table3|table4|figure5|figure6|coverage|coveragecsv|telemetry|distcheck|...]
//
// -coverage fingerprints every complete trial's behavior
// (internal/coverage) across all sections: with -progress the status
// line gains `behaviors=N est_unseen=p%`, the metrics endpoint exports
// pctwm_coverage_behaviors_total / pctwm_coverage_unseen_mass, and the
// repro sink spends its -max-repros budget on distinct behaviors. The
// coverage/coveragecsv sections (behavior census vs. campaign
// saturation on litmus programs) fingerprint regardless of the flag.
//
// -distcheck (or -section distcheck) runs the statistical
// strategy-conformance harness instead of the paper artifacts: the
// shipped strategies are checked against exact ground truth from the
// exhaustive explorer and the colliding-priority regression fixtures
// must be detected; any failure exits nonzero (the CI gate).
//
// The default configuration uses the paper's experiment sizes (1000
// rounds per table configuration, 500 per Figure 6 point, 10 timed runs
// per Table 4 cell); -quick shrinks everything for a fast smoke run.
// -repro-dir arms the campaign repro sink for every trial batch: failing
// trials are flake-triaged and written as replayable bundles (see
// pctwm-replay). -metrics-addr serves live campaign metrics (Prometheus
// text on /metrics, JSON on /metrics.json, expvar on /debug/vars);
// -pprof-addr serves net/http/pprof (campaign workers run under pprof
// labels, so profiles slice by worker/strategy/program); -progress
// prints a periodic one-line status to stderr. -checkpoint-dir arms
// durable campaign checkpoints: every trial batch periodically snapshots
// its cumulative state under DIR (one subdirectory per section cell),
// and `pctwm-experiments -resume DIR` with otherwise identical flags
// continues a killed run with bit-identical artifacts at any worker
// count; an unwritable directory degrades gracefully (the run finishes,
// a "durability: degraded" notice is printed). SIGINT/SIGTERM stop the
// run gracefully: the rows finished so far are flushed, the progress
// reporter emits its final line, a partial notice is printed, and the
// process exits nonzero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pctwm/internal/engine"
	"pctwm/internal/harness"
	"pctwm/internal/report"
	"pctwm/internal/telemetry"
)

func main() {
	var (
		quick         = flag.Bool("quick", false, "use the small smoke-run configuration")
		runs          = flag.Int("runs", 0, "rounds per configuration for tables 2-3 and figure 5 (0 = default)")
		fig6runs      = flag.Int("fig6runs", 0, "rounds per figure 6 point (0 = default)")
		perfruns      = flag.Int("perfruns", 0, "timed runs per table 4 cell (0 = default)")
		seed          = flag.Int64("seed", 0, "base random seed (0 = default)")
		workers       = flag.Int("workers", 1, "worker goroutines per trial batch (0 = GOMAXPROCS, 1 = serial); results are identical for every worker count")
		section       = flag.String("section", "all", "which artifact to regenerate: all, table1..table4, figure5, figure6, ablation, baselines, coverage, figure5csv, figure6csv, telemetry, telemetrycsv")
		reproDir      = flag.String("repro-dir", "", "write replayable repro bundles for failing trials under this directory")
		maxRepros     = flag.Int("max-repros", 3, "with -repro-dir: cap triaged bundles per trial batch")
		ckptDir       = flag.String("checkpoint-dir", "", "write periodic durable campaign checkpoints under this directory")
		ckptEvery     = flag.Int("checkpoint-every", harness.DefaultCheckpointEvery, "checkpoint cadence in trials per batch")
		resumeDir     = flag.String("resume", "", "resume a checkpointed run from this directory (implies -checkpoint-dir)")
		metricsAddr   = flag.String("metrics-addr", "", "serve campaign metrics on this address (/metrics Prometheus, /metrics.json, /debug/vars)")
		pprofAddr     = flag.String("pprof-addr", "", "serve net/http/pprof on this address")
		progress      = flag.Bool("progress", false, "print a periodic one-line campaign status to stderr")
		covFlag       = flag.Bool("coverage", false, "fingerprint each trial's behavior in every section's campaigns (progress line gains behaviors/est_unseen; repro bundles dedupe by behavior)")
		distcheckFlag = flag.Bool("distcheck", false, "run the strategy-conformance harness (shorthand for -section distcheck); exits nonzero if any distributional check fails or a colliding fixture goes undetected")
		model         = flag.String("engine.model", engine.ModelRC11, "memory model backend: rc11, sc, tso (the paper's tables are defined for rc11)")
	)
	flag.Parse()
	if !engine.ValidModel(*model) {
		fmt.Fprintf(os.Stderr, "pctwm-experiments: unknown memory model %q (have %v)\n", *model, engine.Models())
		os.Exit(2)
	}
	if *model == "" {
		*model = engine.ModelRC11 // "" selects the default backend
	}
	if *model != engine.ModelRC11 {
		fmt.Fprintf(os.Stderr, "pctwm-experiments: note: running under %s; the paper's tables are defined for rc11, so rates for bugs that need weak behaviour will differ\n", *model)
	}

	// Graceful interruption: the first SIGINT/SIGTERM cancels the context
	// (flushing the rows finished so far); a second signal kills the
	// process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := report.Default()
	if *quick {
		cfg = report.Quick()
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *fig6runs > 0 {
		cfg.Fig6Runs = *fig6runs
	}
	if *perfruns > 0 {
		cfg.PerfRuns = *perfruns
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers
	cfg.Context = ctx
	cfg.ReproDir = *reproDir
	cfg.MaxRepros = *maxRepros
	cfg.Model = *model
	cfg.Coverage = *covFlag

	// -resume is -checkpoint-dir plus loading whatever good generations
	// already exist; both at once must agree on the directory.
	if *resumeDir != "" {
		if *ckptDir != "" && *ckptDir != *resumeDir {
			fmt.Fprintf(os.Stderr, "pctwm-experiments: -resume %s conflicts with -checkpoint-dir %s\n", *resumeDir, *ckptDir)
			os.Exit(2)
		}
		*ckptDir = *resumeDir
	}
	if *ckptDir != "" {
		cfg.Checkpoint = &harness.CheckpointSpec{
			Dir:    *ckptDir,
			Every:  *ckptEvery,
			Resume: *resumeDir != "",
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "pctwm-experiments: "+format+"\n", args...)
			},
		}
	}

	// One metrics hub for the whole process: every report section's trial
	// batches feed it, and the HTTP endpoint / progress reporter read it.
	var metrics *telemetry.Metrics
	if *metricsAddr != "" || *progress {
		metrics = &telemetry.Metrics{}
		cfg.Metrics = metrics
	}
	if *metricsAddr != "" {
		bound, stopSrv, err := metrics.ListenAndServe(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pctwm-experiments: metrics endpoint: %v\n", err)
			os.Exit(2)
		}
		defer stopSrv()
		fmt.Fprintf(os.Stderr, "pctwm-experiments: serving metrics on http://%s/metrics\n", bound)
	}
	if *pprofAddr != "" {
		bound, stopSrv, err := telemetry.ListenAndServePprof(*pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pctwm-experiments: pprof endpoint: %v\n", err)
			os.Exit(2)
		}
		defer stopSrv()
		fmt.Fprintf(os.Stderr, "pctwm-experiments: serving pprof on http://%s/debug/pprof/\n", bound)
	}
	stopProgress := func() {}
	if *progress {
		stopProgress = telemetry.StartProgress(os.Stderr, metrics, 2*time.Second)
	}
	defer stopProgress()

	sections := map[string]func(io.Writer, report.Config) error{
		"all":          report.All,
		"table1":       report.Table1,
		"table2":       report.Table2,
		"table3":       report.Table3,
		"table4":       report.Table4,
		"figure5":      report.Figure5,
		"figure6":      report.Figure6,
		"ablation":     report.Ablations,
		"baselines":    report.Baselines,
		"coverage":     report.Coverage,
		"coveragecsv":  report.CoverageCSV,
		"figure5csv":   report.Figure5CSV,
		"figure6csv":   report.Figure6CSV,
		"telemetry":    report.Telemetry,
		"telemetrycsv": report.TelemetryCSV,
		"distcheck":    report.DistCheck,
	}
	if *distcheckFlag {
		*section = "distcheck"
	}
	f, ok := sections[*section]
	if !ok {
		fmt.Fprintf(os.Stderr, "pctwm-experiments: unknown section %q\n", *section)
		os.Exit(2)
	}
	err := f(os.Stdout, cfg)
	// Flush the final progress line before any exit path (os.Exit skips
	// deferred calls); stop is idempotent, so the deferred call is a no-op.
	stopProgress()
	if cfg.Checkpoint != nil && cfg.Checkpoint.Degraded() {
		fmt.Fprintf(os.Stderr, "pctwm-experiments: durability: degraded (checkpoint directory became unwritable; artifacts above are complete but not resumable)\n")
	}
	if err != nil {
		if errors.Is(err, report.ErrInterrupted) {
			fmt.Fprintf(os.Stderr, "pctwm-experiments: interrupted: output above is partial\n")
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pctwm-experiments: %v\n", err)
		os.Exit(1)
	}
}
