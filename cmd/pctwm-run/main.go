// Command pctwm-run tests a single benchmark or application under one
// strategy, mirroring the paper artifact's per-program runner.
//
// Usage:
//
//	pctwm-run -b dekker [-strategy pctwm] [-runs 1000] [-d D] [-y H] [-s SEED] [-extra N] [-v]
//
// Flag names follow the artifact (Appendix A.5): -d bug depth, -y history
// depth, -s seed. The strategy parameters k and kcom are estimated from
// profiling runs, as in the paper. -b accepts the nine Table-1 benchmark
// names, p1, mp2, and the application names iris, mabain, silo.
package main

import (
	"flag"
	"fmt"
	"os"

	"pctwm/internal/apps"
	"pctwm/internal/benchprog"
	"pctwm/internal/engine"
	"pctwm/internal/harness"
)

func main() {
	var (
		bench    = flag.String("b", "", "benchmark or application name (required)")
		strategy = flag.String("strategy", "pctwm", "testing strategy: c11tester, pct, pctwm")
		runs     = flag.Int("runs", 1000, "number of test rounds")
		depth    = flag.Int("d", -1, "bug depth (-1 = the benchmark's designed depth)")
		history  = flag.Int("y", 1, "history depth (pctwm)")
		seed     = flag.Int64("s", 1, "base random seed")
		extra    = flag.Int("extra", 0, "inserted relaxed writes (figure 6 instrumentation)")
		verbose  = flag.Bool("v", false, "print the first detected failure")
		baton    = flag.Bool("engine.baton", false, "use the legacy baton scheduler (escape hatch; identical schedules)")
		model    = flag.String("engine.model", engine.ModelRC11, "memory model backend: rc11, sc, tso")
	)
	flag.Parse()
	if *bench == "" {
		flag.Usage()
		os.Exit(2)
	}
	if !engine.ValidModel(*model) {
		fmt.Fprintf(os.Stderr, "pctwm-run: unknown memory model %q (have %v)\n", *model, engine.Models())
		os.Exit(2)
	}
	if *model == "" {
		*model = engine.ModelRC11 // "" selects the default backend
	}

	prog, detect, opts, designDepth, err := lookup(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pctwm-run:", err)
		os.Exit(2)
	}
	opts.Baton = *baton
	opts.Model = *model
	d := *depth
	if d < 0 {
		d = designDepth
	}

	var factory harness.StrategyFactory
	switch *strategy {
	case "c11tester":
		factory = harness.C11Tester()
	case "pct":
		factory = harness.PCTFactory(maxInt(d, 1))
	case "pctwm":
		factory = harness.PCTWMFactory(d, *history)
	default:
		fmt.Fprintf(os.Stderr, "pctwm-run: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	est := harness.EstimateParams(prog(*extra), 20, *seed^0x5eed, opts)
	fmt.Printf("%s under %s: estimated k=%d kcom=%d threads=%d\n",
		*bench, *strategy, est.K, est.KCom, est.Threads)

	if *verbose {
		r := engine.NewRunner(prog(*extra), opts)
		defer r.Close()
		strat := factory(est)
		for i := 0; i < *runs; i++ {
			o := r.Run(strat, *seed+int64(i))
			if detect(o) {
				fmt.Printf("first failure at round %d (seed %d):\n", i, *seed+int64(i))
				for _, m := range o.BugMessages {
					fmt.Println("  assertion:", m)
				}
				for _, r := range o.Races {
					fmt.Println("  race:", r)
				}
				break
			}
		}
	}

	res := harness.RunTrials(prog(*extra), detect, func() engine.Strategy { return factory(est) }, *runs, *seed, opts)
	fmt.Printf("bug hitting rate: %s\n", res.String())
	if res.Aborted > 0 || res.Deadlock > 0 {
		fmt.Printf("warning: %d aborted, %d deadlocked runs\n", res.Aborted, res.Deadlock)
	}
}

func lookup(name string) (prog func(int) *engine.Program, detect func(*engine.Outcome) bool, opts engine.Options, depth int, err error) {
	switch name {
	case "p1":
		b := benchprog.P1(5)
		return b.Program, b.Detect, b.Options(), b.Depth, nil
	case "mp2":
		b := benchprog.MP2()
		return b.Program, b.Detect, b.Options(), b.Depth, nil
	}
	if b, berr := benchprog.ByName(name); berr == nil {
		return b.Program, b.Detect, b.Options(), b.Depth, nil
	}
	if a, aerr := apps.ByName(name); aerr == nil {
		return func(int) *engine.Program { return a.Program() },
			func(o *engine.Outcome) bool { return o.Failed() },
			a.Options(), 2, nil
	}
	return nil, nil, engine.Options{}, 0, fmt.Errorf("unknown benchmark or application %q", name)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
