// Command pctwm-explore exhaustively enumerates every scheduling and
// reads-from choice of a litmus test (bounded model checking) and prints
// the reachable outcome histogram together with the declared expectation.
//
// Usage:
//
//	pctwm-explore                 # explore the whole litmus suite
//	pctwm-explore -t SB+rlx       # one test
//	pctwm-explore -limit 100000   # cap the exploration
//	pctwm-explore -engine.model tso   # exhaust the x86-TSO state space
//	pctwm-explore -workers 8      # shard subtrees across 8 workers
//	pctwm-explore -census FILE    # also write the behavior census (JSON)
//
// -census additionally enumerates each explored test's ground-truth
// behavior census — every distinct behavior fingerprint any schedule
// can realize (internal/coverage canonicalization) — and writes them as
// a JSON array. A saturated `pctwm-bench -coverage` campaign must
// reproduce exactly this fingerprint set (pctwm-bench -census verifies).
//
// Exploration shards disjoint decision-tree subtrees across -workers
// pooled engine runners (0 = GOMAXPROCS); outcome counts are merged
// deterministically, so the histogram is bit-identical at any worker
// count.
//
// With -engine.model the enumeration runs against that backend and the
// outcomes classify against the model's expectation table — the scripted
// enumeration strategy is model-agnostic, so switching backends explores
// a different reachable set under identical machinery.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"pctwm/internal/engine"
	"pctwm/internal/enumerate"
	"pctwm/internal/litmus"
	"pctwm/internal/telemetry"
)

func main() {
	var (
		test    = flag.String("t", "", "litmus test name (empty = all)")
		limit   = flag.Int("limit", 2000000, "maximum executions to explore per test")
		baton   = flag.Bool("engine.baton", false, "use the legacy baton scheduler (escape hatch; identical schedules)")
		model   = flag.String("engine.model", engine.ModelRC11, "memory model backend: rc11, sc, tso")
		workers = flag.Int("workers", 0, "exploration workers (0 = GOMAXPROCS, 1 = serial; results identical)")
		stats   = flag.Bool("stats", false, "print explorer telemetry (runs/steals/pruned) per test")
		census  = flag.String("census", "", "write the ground-truth behavior census of the explored tests to this JSON file")
	)
	flag.IntVar(workers, "explore.workers", 0, "alias for -workers")
	flag.Parse()
	if !engine.ValidModel(*model) {
		fmt.Fprintf(os.Stderr, "pctwm-explore: unknown memory model %q (have %v)\n", *model, engine.Models())
		os.Exit(2)
	}
	if *model == "" {
		*model = engine.ModelRC11 // "" selects the default backend
	}

	suite := litmus.Suite()
	if *test != "" {
		var filtered []*litmus.Test
		for _, lt := range suite {
			if lt.Name == *test {
				filtered = append(filtered, lt)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "pctwm-explore: unknown test %q; available:\n", *test)
			for _, lt := range suite {
				fmt.Fprintf(os.Stderr, "  %s\n", lt.Name)
			}
			os.Exit(2)
		}
		suite = filtered
	}

	// SIGINT/SIGTERM drain: cancel the exploration pool between
	// executions, print whatever partial histogram was merged, and exit
	// nonzero. A second signal kills the process immediately (stop()
	// restores default disposition).
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	failures := 0
	interrupted := false
	var censuses []*enumerate.Census
	for _, lt := range suite {
		var tel telemetry.EngineCounters
		opts := engine.Options{Baton: *baton, Model: *model}
		if *stats {
			opts.Telemetry = &tel
		}
		counts, res := enumerate.Outcomes(lt.Program, opts,
			enumerate.Config{Limit: *limit, Workers: *workers, Context: ctx}, func(o *engine.Outcome) string {
				return lt.Outcome(o.FinalValues)
			})
		if res.Drift != nil {
			fmt.Fprintf(os.Stderr, "pctwm-explore: %s: %v\n", lt.Name, res.Drift)
			os.Exit(1)
		}
		if res.Interrupted {
			interrupted = true
			fmt.Fprintf(os.Stderr, "pctwm-explore: %s: interrupted after %d executions (partial results below)\n",
				lt.Name, res.Runs)
		}
		fmt.Printf("%s (%s) [model %s]\n", lt.Name, lt.Description, *model)
		fmt.Printf("  %d executions, complete=%v\n", res.Runs, res.Complete)
		if *stats {
			fmt.Printf("  explorer: %d engine runs, %d steals, %d pruned subtrees\n",
				tel.ExploreRuns, tel.ExploreSteals, tel.ExplorePruned)
		}
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		exp := lt.Expect(*model)
		allowed := map[string]bool{}
		for _, a := range exp.Allowed {
			allowed[a] = true
		}
		forbidden := map[string]bool{}
		for _, f := range exp.Forbidden {
			forbidden[f] = true
		}
		for _, k := range keys {
			mark := " "
			if forbidden[k] || (len(exp.Allowed) > 0 && !allowed[k]) {
				mark = "✗ ILLEGAL"
				failures++
			}
			fmt.Printf("  [%s] ×%-6d %s\n", k, counts[k], mark)
		}
		if res.Complete {
			for _, f := range exp.Forbidden {
				fmt.Printf("  forbidden %q: unreachable ✓\n", f)
			}
		}
		if *census != "" && !interrupted {
			c, err := enumerate.BehaviorCensus(lt.Program, opts,
				enumerate.Config{Limit: *limit, Workers: *workers, Context: ctx})
			if err != nil {
				fmt.Fprintf(os.Stderr, "pctwm-explore: %s: census: %v\n", lt.Name, err)
				os.Exit(1)
			}
			fmt.Printf("  census: %d distinct behavior(s), complete=%v\n", len(c.Behaviors), c.Complete)
			censuses = append(censuses, c)
		}
		fmt.Println()
		if interrupted {
			// The context stays canceled; later tests would all report
			// zero executions. Stop after draining this one.
			break
		}
	}
	if *census != "" && !interrupted {
		data, err := json.MarshalIndent(censuses, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pctwm-explore: encoding census: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*census, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pctwm-explore: writing census: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("census: %d test(s) written to %s\n", len(censuses), *census)
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "pctwm-explore: interrupted; partial results printed")
		os.Exit(1)
	}
	if failures > 0 {
		fmt.Printf("%d illegal outcome(s)\n", failures)
		os.Exit(1)
	}
}
