// Command pctwm-trace finds a failing execution of a benchmark, replays
// it deterministically, and renders its execution graph — either as a
// per-thread text listing or as Graphviz DOT — together with the C11
// consistency verdict and any detected data races.
//
// Usage:
//
//	pctwm-trace -b dekker [-strategy pctwm] [-d D] [-y H] [-s SEED] [-rounds N] [-dot]
//	            [-perfetto out.json]
//
// -perfetto additionally writes the failing schedule as a Chrome
// trace-event JSON document (one track per thread, a slice per event,
// flow arrows for reads-from edges, instant markers on PCTWM priority
// change points) that ui.perfetto.dev or chrome://tracing load directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pctwm/internal/apps"
	"pctwm/internal/axiom"
	"pctwm/internal/benchprog"
	"pctwm/internal/engine"
	"pctwm/internal/harness"
	"pctwm/internal/memmodel"
	"pctwm/internal/replay"
	"pctwm/internal/telemetry"
	"pctwm/internal/telemetry/perfetto"
)

func main() {
	var (
		bench    = flag.String("b", "dekker", "benchmark or application name")
		strategy = flag.String("strategy", "pctwm", "strategy used to find the execution: c11tester, pct, pctwm")
		depth    = flag.Int("d", -1, "bug depth (-1 = the benchmark's designed depth)")
		history  = flag.Int("y", 1, "history depth (pctwm)")
		seed     = flag.Int64("s", 1, "base random seed")
		rounds   = flag.Int("rounds", 2000, "maximum rounds to search for a failing execution")
		dot      = flag.Bool("dot", false, "emit Graphviz DOT instead of text")
		baton    = flag.Bool("engine.baton", false, "use the legacy baton scheduler (escape hatch; identical schedules)")
		model    = flag.String("engine.model", engine.ModelRC11, "memory model backend: rc11, sc, tso (the recheck verifies the same model's axioms)")
		perfOut  = flag.String("perfetto", "", "also write the failing schedule as Chrome trace-event JSON to this file")
	)
	flag.Parse()
	if !engine.ValidModel(*model) {
		fmt.Fprintf(os.Stderr, "pctwm-trace: unknown memory model %q (have %v)\n", *model, engine.Models())
		os.Exit(2)
	}
	if *model == "" {
		*model = engine.ModelRC11 // "" selects the default backend
	}

	prog, detect, opts, designDepth, err := lookup(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pctwm-trace:", err)
		os.Exit(2)
	}
	opts.Baton = *baton
	opts.Model = *model
	d := *depth
	if d < 0 {
		d = designDepth
	}
	var factory harness.StrategyFactory
	switch *strategy {
	case "c11tester":
		factory = harness.C11Tester()
	case "pct":
		factory = harness.PCTFactory(maxInt(d, 1))
	case "pctwm":
		factory = harness.PCTWMFactory(d, *history)
	default:
		fmt.Fprintf(os.Stderr, "pctwm-trace: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	est := harness.EstimateParams(prog, 20, *seed^0x5eed, opts)

	// Search for a failing round, recording the decision sequence and —
	// with fresh engine counters per round — the PCTWM priority change
	// points of exactly the round that hit (accumulating one shared
	// counter across rounds would mix the change-point logs).
	var trace *replay.Trace
	var tel *telemetry.EngineCounters
	found := false
	for i := 0; i < *rounds && !found; i++ {
		roundTel := &telemetry.EngineCounters{}
		roundOpts := opts
		roundOpts.Telemetry = roundTel
		rec := replay.NewRecorder(factory(est))
		ro := engine.Run(prog, rec, *seed+int64(i), roundOpts)
		if detect(ro) {
			trace, tel, found = rec.Trace(), roundTel, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "pctwm-trace: no failing execution of %s in %d rounds\n", *bench, *rounds)
		os.Exit(1)
	}

	// Replay with recording to obtain the execution graph.
	opts.Record = true
	o := engine.Run(prog, replay.NewPlayer(trace), 0, opts)
	if !detect(o) {
		fmt.Fprintln(os.Stderr, "pctwm-trace: replay lost the failure")
		os.Exit(1)
	}
	g, err := axiom.FromRecording(o.Recording)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pctwm-trace:", err)
		os.Exit(1)
	}
	locName := func(l memmodel.Loc) string {
		if n, ok := o.Recording.LocNames[l]; ok {
			return n
		}
		return fmt.Sprintf("x%d", l)
	}

	if *perfOut != "" {
		data, err := perfetto.Marshal(o.Recording, tel.ChangePoints)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pctwm-trace:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*perfOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "pctwm-trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pctwm-trace: wrote Perfetto trace to %s (open in ui.perfetto.dev)\n", *perfOut)
	}

	if *dot {
		if err := g.WriteDot(os.Stdout, locName); err != nil {
			fmt.Fprintln(os.Stderr, "pctwm-trace:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("failing execution of %s (%s, %d events):\n\n", *bench, *strategy, len(g.Events))
	if err := g.WriteText(os.Stdout, locName); err != nil {
		fmt.Fprintln(os.Stderr, "pctwm-trace:", err)
		os.Exit(1)
	}
	fmt.Println()
	for _, m := range o.BugMessages {
		fmt.Println("assertion:", m)
	}
	for _, r := range o.Races {
		fmt.Println("race:", r)
	}
	checkStart := time.Now()
	vs := g.CheckModel(*model)
	tel.AddAxiomRecheck(time.Since(checkStart).Nanoseconds())
	if len(vs) == 0 {
		fmt.Printf("consistency: the execution satisfies the %s axioms (rechecked in %v)\n",
			*model, time.Duration(tel.AxiomRecheckNs).Round(time.Microsecond))
	} else {
		for _, v := range vs {
			fmt.Println("consistency VIOLATION:", v)
		}
	}
}

func lookup(name string) (prog *engine.Program, detect func(*engine.Outcome) bool, opts engine.Options, depth int, err error) {
	if b, berr := benchprog.ByName(name); berr == nil {
		return b.Program(0), b.Detect, b.Options(), b.Depth, nil
	}
	if a, aerr := apps.ByName(name); aerr == nil {
		return a.Program(), func(o *engine.Outcome) bool { return o.Failed() }, a.Options(), 2, nil
	}
	return nil, nil, engine.Options{}, 0, fmt.Errorf("unknown benchmark or application %q", name)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
