// Command pctwm-bench prints the full strategy × benchmark hit-rate
// matrix with Wilson confidence intervals — the quick overview of how the
// algorithms compare on the paper's suite.
//
// Usage:
//
//	pctwm-bench [-runs N] [-s SEED] [-workers N] [-d D] [-y H] [-bench a,b]
//	            [-repro-dir DIR [-max-repros N]]
//	            [-checkpoint-dir DIR [-checkpoint-every N]] [-resume DIR]
//	            [-metrics-addr ADDR] [-pprof-addr ADDR] [-progress] [-telemetry]
//	            [-coverage]
//	            [-json] [-compare FILE [-max-regress PCT] [-max-allocs-regress PCT]]
//	            [-explore] [-engine.baton]
//
// -workers spreads each cell's rounds over N worker goroutines (0 =
// GOMAXPROCS, 1 = serial; results are identical for every worker count).
// -telemetry collects per-cell engine counters (op mix, handoff ratio,
// rf candidate-bag sizes, change-point depths) and prints a summary per
// cell to stderr; in -json mode it embeds the counter digest in each
// snapshot. -metrics-addr serves live campaign metrics (Prometheus on
// /metrics, JSON on /metrics.json, expvar on /debug/vars); -pprof-addr
// serves net/http/pprof (workers run under pprof labels); -progress
// prints a periodic one-line status to stderr.
// -coverage fingerprints every complete trial's behavior
// (internal/coverage) and prints a per-cell saturation digest to stderr
// — distinct behaviors, the Good–Turing estimate of the unseen mass,
// the Chao1 richness bound, and the trial index of the last novelty;
// with -progress the live status line gains `behaviors=N est_unseen=p%`,
// and with -metrics-addr the endpoint exports
// pctwm_coverage_behaviors_total and pctwm_coverage_unseen_mass. With
// -coverage the repro sink also dedupes by behavior: the -max-repros
// budget is spent on distinct behavior fingerprints, not raw failures.
// -repro-dir arms the campaign repro sink: the first -max-repros failing
// trials per cell are flake-triaged and written as replayable JSON
// bundles under DIR (see pctwm-replay). -json switches to the
// machine-readable engine performance snapshot: instead of the hit-rate
// matrix, it emits one steady-state measurement (ns/run, runs/sec,
// allocs/run) per benchmark × strategy on stdout — the format committed
// as BENCH_engine.json. -compare measures the same snapshot and diffs it
// benchstat-style against a committed baseline, exiting 1 when any
// cell's ns_per_event regressed by more than -max-regress percent or its
// allocs_per_run by more than -max-allocs-regress percent — the CI bench
// gate. -explore adds exhaustive-exploration throughput cells (the full
// litmus suite enumerated serially and on 8 workers) to -json/-compare
// measurements. -engine.baton runs everything on the legacy baton
// scheduler (escape hatch; same schedules, slower).
//
// -checkpoint-dir arms the durable checkpoint layer: each benchmark ×
// strategy cell periodically (every -checkpoint-every trials) writes an
// atomic, checksummed snapshot of its cumulative state under DIR. After
// a crash or kill -9, `pctwm-bench -resume DIR` (same flags otherwise)
// reloads the newest good generation of every cell and continues,
// finishing with totals bit-identical to an uninterrupted run at any
// worker count. If the directory becomes unwritable mid-campaign the run
// keeps going, logs once, and the summary line is marked
// "durability: degraded".
//
// SIGINT/SIGTERM interrupt the run gracefully: in-flight trials are
// aborted through the engine's cooperative cancellation, the partial
// results measured so far are flushed (the -json snapshot is wrapped as
// {"partial":true,"snapshots":[...]}), and the process exits nonzero.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"pctwm/internal/benchprog"
	"pctwm/internal/core"
	"pctwm/internal/coverage"
	"pctwm/internal/engine"
	"pctwm/internal/harness"
	"pctwm/internal/litmus"
	"pctwm/internal/telemetry"
)

func main() {
	var (
		runs        = flag.Int("runs", 500, "rounds per strategy per benchmark")
		seed        = flag.Int64("s", 1, "base random seed")
		workers     = flag.Int("workers", 1, "worker goroutines per cell (0 = GOMAXPROCS, 1 = serial)")
		depth       = flag.Int("d", -1, "bug depth override (-1 = each benchmark's design depth)")
		history     = flag.Int("y", 1, "history depth for PCTWM")
		jsonOut     = flag.Bool("json", false, "emit the engine performance snapshot as JSON instead of the hit-rate matrix")
		benchSel    = flag.String("bench", "", "comma-separated benchmark names (default: all)")
		compare     = flag.String("compare", "", "baseline snapshot JSON to diff the fresh measurement against (benchstat-style)")
		maxRegress  = flag.Float64("max-regress", 15, "with -compare: fail when ns_per_event regresses by more than this percent")
		maxAllocs   = flag.Float64("max-allocs-regress", 25, "with -compare: fail when allocs_per_run regresses by more than this percent (plus absolute slack)")
		exploreFlag = flag.Bool("explore", false, "with -json/-compare: add exhaustive-exploration throughput cells over the litmus suite (serial and workers-8)")
		baton       = flag.Bool("engine.baton", false, "use the legacy baton scheduler (escape hatch; identical schedules)")
		reproDir    = flag.String("repro-dir", "", "write replayable repro bundles for failing trials under this directory")
		maxRepros   = flag.Int("max-repros", 3, "with -repro-dir: cap triaged bundles per benchmark × strategy cell")
		ckptDir     = flag.String("checkpoint-dir", "", "write periodic durable campaign checkpoints under this directory")
		ckptEvery   = flag.Int("checkpoint-every", harness.DefaultCheckpointEvery, "checkpoint cadence in trials per cell")
		resumeDir   = flag.String("resume", "", "resume a checkpointed campaign from this directory (implies -checkpoint-dir)")
		metricsAddr = flag.String("metrics-addr", "", "serve campaign metrics on this address (/metrics Prometheus, /metrics.json, /debug/vars)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this address")
		progress    = flag.Bool("progress", false, "print a periodic one-line campaign status to stderr")
		telFlag     = flag.Bool("telemetry", false, "collect engine counters per cell (stderr summary; embedded in -json snapshots)")
		covFlag     = flag.Bool("coverage", false, "fingerprint each trial's behavior and report per-cell coverage/saturation (implies telemetry collection)")
		model       = flag.String("engine.model", engine.ModelRC11, "memory model backend: rc11, sc, tso")
	)
	flag.Parse()
	if !engine.ValidModel(*model) {
		fmt.Fprintf(os.Stderr, "pctwm-bench: unknown memory model %q (have %v)\n", *model, engine.Models())
		os.Exit(2)
	}
	if *model == "" {
		*model = engine.ModelRC11 // "" selects the default backend
	}

	// -resume is -checkpoint-dir plus loading whatever good generations
	// already exist; both at once must agree on the directory.
	var spec *harness.CheckpointSpec
	if *resumeDir != "" {
		if *ckptDir != "" && *ckptDir != *resumeDir {
			fmt.Fprintf(os.Stderr, "pctwm-bench: -resume %s conflicts with -checkpoint-dir %s\n", *resumeDir, *ckptDir)
			os.Exit(2)
		}
		*ckptDir = *resumeDir
	}
	if *ckptDir != "" {
		spec = &harness.CheckpointSpec{
			Dir:    *ckptDir,
			Every:  *ckptEvery,
			Resume: *resumeDir != "",
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "pctwm-bench: "+format+"\n", args...)
			},
		}
	}

	// Graceful interruption: the first SIGINT/SIGTERM cancels the context
	// (draining workers and flushing partial results); a second signal
	// kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// One metrics hub for the process; the HTTP endpoint and the progress
	// reporter read it while the campaigns feed it.
	var metrics *telemetry.Metrics
	if *metricsAddr != "" || *progress {
		metrics = &telemetry.Metrics{}
	}
	if *metricsAddr != "" {
		bound, stopSrv, err := metrics.ListenAndServe(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pctwm-bench: metrics endpoint: %v\n", err)
			os.Exit(2)
		}
		defer stopSrv()
		fmt.Fprintf(os.Stderr, "pctwm-bench: serving metrics on http://%s/metrics\n", bound)
	}
	if *pprofAddr != "" {
		bound, stopSrv, err := telemetry.ListenAndServePprof(*pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pctwm-bench: pprof endpoint: %v\n", err)
			os.Exit(2)
		}
		defer stopSrv()
		fmt.Fprintf(os.Stderr, "pctwm-bench: serving pprof on http://%s/debug/pprof/\n", bound)
	}
	stopProgress := func() {}
	if *progress {
		stopProgress = telemetry.StartProgress(os.Stderr, metrics, 2*time.Second)
	}
	defer stopProgress()

	dFor := func(b *benchprog.Benchmark) int {
		if *depth >= 0 {
			return *depth
		}
		return b.Depth
	}
	optsFor := func(b *benchprog.Benchmark) engine.Options {
		opts := b.Options()
		opts.Baton = *baton
		opts.Model = *model
		// -coverage also applies to the -json/-compare measurement paths,
		// so the bench gate can bound the fingerprinting overhead and the
		// allocs gate can verify the hot path stays allocation-free with
		// the accumulator armed.
		opts.Coverage = *covFlag
		return opts
	}

	benches := benchprog.All()
	if *benchSel != "" {
		benches = benches[:0]
		for _, name := range strings.Split(*benchSel, ",") {
			b, err := benchprog.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "pctwm-bench: %v\n", err)
				os.Exit(2)
			}
			benches = append(benches, b)
		}
	}

	var exploreOpts *engine.Options
	if *exploreFlag {
		exploreOpts = &engine.Options{Baton: *baton, Model: *model}
	}
	if *compare != "" {
		code := runCompare(ctx, benches, dFor, optsFor, *runs, *seed, *history, *compare, *maxRegress, *maxAllocs, *telFlag, exploreOpts)
		stopProgress()
		os.Exit(code)
	}
	if *jsonOut {
		code := emitSnapshot(ctx, os.Stdout, benches, dFor, optsFor, *runs, *seed, *history, *telFlag, exploreOpts)
		stopProgress()
		os.Exit(code)
	}

	type column struct {
		name    string
		factory func(b *benchprog.Benchmark) harness.StrategyFactory
	}
	cols := []column{
		{"c11tester", func(*benchprog.Benchmark) harness.StrategyFactory { return harness.C11Tester() }},
		{"pos", func(*benchprog.Benchmark) harness.StrategyFactory { return harness.POSFactory() }},
		{"pct", func(b *benchprog.Benchmark) harness.StrategyFactory {
			d := dFor(b)
			if d < 1 {
				d = 1
			}
			return harness.PCTFactory(d)
		}},
		{"pctwm", func(b *benchprog.Benchmark) harness.StrategyFactory {
			return harness.PCTWMFactory(dFor(b), *history)
		}},
	}

	start := time.Now()
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	header := "Benchmark\td"
	for _, c := range cols {
		header += "\t" + c.name
	}
	fmt.Fprintln(tw, header)
	interrupted := false
	bundles := 0
	for _, b := range benches {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		prog := b.Program(0)
		opts := optsFor(b)
		est := harness.EstimateParams(prog, 20, *seed^0x5eed, opts)
		row := fmt.Sprintf("%s\t%d", b.Name, dFor(b))
		if metrics != nil {
			metrics.SetPhase(b.Name)
		}
		for i, c := range cols {
			factory := c.factory(b)
			newStrategy := func() engine.Strategy { return factory(est) }
			camp := harness.Campaign{
				Workers: *workers, Context: ctx,
				ReproDir: *reproDir, MaxRepros: *maxRepros,
				Metrics: metrics, Telemetry: *telFlag, Coverage: *covFlag,
				Checkpoint: spec, CheckpointCell: b.Name + "/" + c.name,
			}
			res := harness.RunCampaign(prog, b.Detect, newStrategy, *runs, *seed+int64(10*i), opts, camp)
			bundles += reportFailures(b.Name, c.name, res)
			if *telFlag && res.Telemetry != nil {
				reportTelemetry(b.Name, c.name, res.Telemetry)
			}
			if *covFlag && res.Coverage != nil {
				reportCoverage(b.Name, c.name, res.Coverage)
			}
			interrupted = interrupted || res.Interrupted
			lo, hi := res.CI95()
			row += fmt.Sprintf("\t%.1f [%.0f,%.0f]", res.Rate(), lo, hi)
		}
		fmt.Fprintln(tw, row)
		if interrupted {
			break
		}
	}
	tw.Flush()
	stopProgress()
	if bundles > 0 {
		fmt.Fprintf(os.Stderr, "pctwm-bench: %d repro bundle(s) written under %s (replay with pctwm-replay)\n", bundles, *reproDir)
	}
	durability := ""
	if spec != nil && spec.Degraded() {
		durability = ", durability: degraded"
	}
	if interrupted {
		fmt.Printf("(interrupted: partial results, %d rounds per completed cell, %v total%s)\n", *runs, time.Since(start).Round(time.Millisecond), durability)
		os.Exit(1)
	}
	fmt.Printf("(%d rounds per cell, %v total%s)\n", *runs, time.Since(start).Round(time.Millisecond), durability)
}

// reportFailures prints the campaign's captured failures (repro bundles +
// triage verdicts) to stderr and returns how many bundles were written.
func reportFailures(bench, strategy string, res harness.TrialResult) int {
	n := 0
	for _, f := range res.Failures {
		if f.BundlePath != "" {
			n++
		}
		fmt.Fprintf(os.Stderr, "pctwm-bench: %s/%s seed %d: %s (%s, triage %s) -> %s\n",
			bench, strategy, f.Seed, f.Kind, f.Msg, f.Triage, f.BundlePath)
	}
	if res.Nondeterministic > 0 {
		fmt.Fprintf(os.Stderr, "pctwm-bench: WARNING: %s/%s: %d failure(s) did not reproduce on re-run — determinism bug?\n",
			bench, strategy, res.Nondeterministic)
	}
	if res.Panics > 0 {
		fmt.Fprintf(os.Stderr, "pctwm-bench: WARNING: %s/%s: %d trial(s) panicked outside the engine (quarantined)\n",
			bench, strategy, res.Panics)
	}
	return n
}

// reportCoverage prints one cell's behavior-coverage digest to stderr.
// The set is merged deterministically, so the numbers are identical for
// every -workers setting and across kill/-resume boundaries.
func reportCoverage(bench, strategy string, set *coverage.Set) {
	st := set.Stats()
	fmt.Fprintf(os.Stderr,
		"pctwm-bench: coverage %s/%s: %d behavior(s) in %d trial(s), est_unseen %.2f%%, chao1 %.1f, last novel at trial %d\n",
		bench, strategy, st.Behaviors, st.Observations, 100*st.UnseenMass, st.Chao1, st.LastNovel)
}

// reportTelemetry prints one cell's merged engine-counter digest to
// stderr (identical totals for every -workers setting).
func reportTelemetry(bench, strategy string, c *telemetry.EngineCounters) {
	s := c.Summary()
	grants := s.Handoffs + s.SameThreadGrants
	handoffPct := 0.0
	if grants > 0 {
		handoffPct = 100 * float64(s.Handoffs) / float64(grants)
	}
	fmt.Fprintf(os.Stderr,
		"pctwm-bench: telemetry %s/%s: trials %d, events %d, handoffs %.1f%%, rf-cand mean %.1f max %d, cp-depth mean %.1f max %d, race checks %d\n",
		bench, strategy, s.Trials, s.Events, handoffPct,
		s.RFCandidates.Mean, s.RFCandidates.Max,
		s.ChangePointDepth.Mean, s.ChangePointDepth.Max, s.RaceChecks)
}

// snapshotSweeps is how many times the snapshot measurement sweeps the
// whole benchmark × strategy matrix. Each cell keeps its fastest sweep:
// the sweeps sample every cell at well-separated points in time, so an
// ambient noise episode (frequency scaling, a co-tenant VM burning the
// core) must span the entire measurement to bias a cell. The work is
// deterministic per cell, so the minimum estimates the unperturbed cost.
const snapshotSweeps = 3

// measureSnapshot measures the steady-state trial loop per benchmark for
// the random baseline and PCTWM. See snapshotSweeps for the noise model.
// The context is checked between cells: on cancellation the cells fully
// measured so far are returned with partial=true.
func measureSnapshot(ctx context.Context, benches []*benchprog.Benchmark, dFor func(*benchprog.Benchmark) int,
	optsFor func(*benchprog.Benchmark) engine.Options, runs int, seed int64, history int, collect bool,
	exploreOpts *engine.Options) (snaps []harness.EngineSnapshot, partial bool) {
	type cell struct {
		prog *engine.Program
		opts engine.Options
		name string
		mk   func() engine.Strategy
	}
	var cells []cell
	for _, b := range benches {
		b := b
		prog := b.Program(0)
		opts := optsFor(b)
		est := harness.EstimateParams(prog, 20, seed^0x5eed, opts)
		cells = append(cells,
			cell{prog, opts, b.Name, func() engine.Strategy { return core.NewRandom() }},
			cell{prog, opts, b.Name, func() engine.Strategy { return core.NewPCTWM(dFor(b), history, est.KCom) }},
		)
	}

	snaps = make([]harness.EngineSnapshot, len(cells))
	measured := 0
	for sweep := 0; sweep < snapshotSweeps; sweep++ {
		for i, c := range cells {
			if ctx.Err() != nil {
				// Keep only cells that completed at least one sweep.
				return snaps[:measured], true
			}
			opts := c.opts
			if collect {
				// Fresh counters per sweep so the kept (fastest) snapshot
				// carries the digest of exactly that sweep's loop.
				opts.Telemetry = &telemetry.EngineCounters{}
			}
			snap := harness.MeasureEngine(c.name, c.prog, c.mk(), runs, seed, opts)
			if sweep == 0 || snap.NsPerRun < snaps[i].NsPerRun {
				snaps[i] = snap
			}
			if sweep == 0 {
				measured = i + 1
			}
		}
	}
	if exploreOpts != nil {
		targets := litmusExploreTargets()
		for _, w := range exploreWorkerCounts {
			if ctx.Err() != nil {
				return snaps, true
			}
			snaps = append(snaps, harness.MeasureExplore(exploreCellName, targets, exploreLimit, w, *exploreOpts))
		}
	}
	return snaps, false
}

// Explore-throughput cell parameters: the cell exhausts the full litmus
// suite (the workload of the CI models job and the conformance tests),
// once serially and once on 8 workers, so the snapshot gates both the
// pooled per-leaf cost and the parallel sharding overhead.
const (
	exploreCellName = "explore-litmus"
	exploreLimit    = 2_000_000
)

var exploreWorkerCounts = []int{1, 8}

// litmusExploreTargets adapts the litmus suite to harness.ExploreTarget.
func litmusExploreTargets() []harness.ExploreTarget {
	var targets []harness.ExploreTarget
	for _, lt := range litmus.Suite() {
		lt := lt
		targets = append(targets, harness.ExploreTarget{
			Name: lt.Name,
			Prog: lt.Program,
			Key:  func(o *engine.Outcome) string { return lt.Outcome(o.FinalValues) },
		})
	}
	return targets
}

// partialSnapshot is the -json output format when the measurement was
// interrupted: the plain snapshot array (the committed BENCH_engine.json
// format) wrapped with an explicit partial marker so downstream tooling
// never mistakes a truncated measurement for a complete one.
type partialSnapshot struct {
	Partial   bool                     `json:"partial"`
	Snapshots []harness.EngineSnapshot `json:"snapshots"`
}

// emitSnapshot writes the JSON snapshot to w — the plain array
// (BENCH_engine.json format) on a complete measurement, the
// partial-marked wrapper when interrupted — and returns the exit status
// (nonzero on interruption).
func emitSnapshot(ctx context.Context, w *os.File, benches []*benchprog.Benchmark, dFor func(*benchprog.Benchmark) int,
	optsFor func(*benchprog.Benchmark) engine.Options, runs int, seed int64, history int, collect bool,
	exploreOpts *engine.Options) int {
	snaps, partial := measureSnapshot(ctx, benches, dFor, optsFor, runs, seed, history, collect, exploreOpts)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	var payload any = snaps
	if partial {
		payload = partialSnapshot{Partial: true, Snapshots: snaps}
	}
	if err := enc.Encode(payload); err != nil {
		fmt.Fprintf(os.Stderr, "pctwm-bench: %v\n", err)
		return 1
	}
	if partial {
		fmt.Fprintf(os.Stderr, "pctwm-bench: interrupted: snapshot covers %d cell(s), marked partial\n", len(snaps))
		return 1
	}
	return 0
}

// decodeSnapshots parses a snapshot file in either format: the plain
// array (complete measurement, the committed baseline format) or the
// {"partial":true,"snapshots":[...]} wrapper flushed by an interrupted
// run.
func decodeSnapshots(data []byte) ([]harness.EngineSnapshot, error) {
	var arr []harness.EngineSnapshot
	if err := json.Unmarshal(data, &arr); err == nil {
		return arr, nil
	}
	var wrapped partialSnapshot
	if err := json.Unmarshal(data, &wrapped); err == nil && wrapped.Snapshots != nil {
		return wrapped.Snapshots, nil
	}
	return nil, fmt.Errorf("neither a snapshot array nor a partial snapshot wrapper")
}

// runCompare measures a fresh snapshot of the selected benchmarks, diffs
// it against the committed baseline and prints a benchstat-style table.
// The returned exit code is 1 when any compared cell's ns_per_event
// regressed by more than maxRegress percent or its allocs_per_run by
// more than maxAllocs percent (beyond the absolute slack — see
// harness.SnapshotDelta.AllocsRegressed).
func runCompare(ctx context.Context, benches []*benchprog.Benchmark, dFor func(*benchprog.Benchmark) int,
	optsFor func(*benchprog.Benchmark) engine.Options, runs int, seed int64, history int,
	baselinePath string, maxRegress, maxAllocs float64, collect bool, exploreOpts *engine.Options) int {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pctwm-bench: %v\n", err)
		return 2
	}
	baseline, err := decodeSnapshots(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pctwm-bench: %s: %v\n", baselinePath, err)
		return 2
	}

	// Restrict the baseline to the benchmarks actually being measured so
	// a partial run (the CI gate measures three) is not failed for cells
	// it never sampled.
	selected := make(map[string]bool, len(benches))
	for _, b := range benches {
		selected[b.Name] = true
	}
	if exploreOpts != nil {
		selected[exploreCellName] = true
	}
	kept := baseline[:0]
	for _, s := range baseline {
		if selected[s.Benchmark] {
			kept = append(kept, s)
		}
	}

	fresh, partial := measureSnapshot(ctx, benches, dFor, optsFor, runs, seed, history, collect, exploreOpts)
	if partial {
		fmt.Fprintf(os.Stderr, "pctwm-bench: interrupted mid-measurement; comparison not judged\n")
		return 2
	}
	deltas := harness.CompareSnapshots(kept, fresh)
	missingFromOld, missingFromNew := harness.SnapshotGaps(kept, fresh)
	if len(missingFromOld) > 0 {
		fmt.Fprintf(os.Stderr, "pctwm-bench: %d cell(s) measured but absent from %s (not gated): %s\n",
			len(missingFromOld), baselinePath, strings.Join(missingFromOld, ", "))
	}
	if len(missingFromNew) > 0 {
		fmt.Fprintf(os.Stderr, "pctwm-bench: %d baseline cell(s) not measured this run: %s\n",
			len(missingFromNew), strings.Join(missingFromNew, ", "))
	}
	if len(deltas) == 0 {
		fmt.Fprintf(os.Stderr, "pctwm-bench: no comparable cells between %s and the fresh measurement\n", baselinePath)
		return 2
	}

	failed := 0
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tstrategy\told ns/event\tnew ns/event\tdelta\told allocs\tnew allocs\tallocs delta")
	for _, d := range deltas {
		mark := ""
		if d.Regressed(maxRegress) {
			mark = "  REGRESSION"
			failed++
		}
		if d.AllocsRegressed(maxAllocs) {
			mark += "  ALLOCS-REGRESSION"
			failed++
		}
		fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.1f\t%+.1f%%\t%.1f\t%.1f\t%+.1f%%%s\n",
			d.Benchmark, d.Strategy, d.OldNsPerEvent, d.NewNsPerEvent, d.DeltaPercent,
			d.OldAllocsPerRun, d.NewAllocsPerRun, d.AllocsDeltaPercent, mark)
	}
	tw.Flush()
	if failed > 0 {
		fmt.Printf("FAIL: %d regression(s) over %d cells (gates: ns_per_event %.0f%%, allocs_per_run %.0f%%) vs %s\n",
			failed, len(deltas), maxRegress, maxAllocs, baselinePath)
		return 1
	}
	fmt.Printf("ok: %d cells within %.0f%% ns/event and %.0f%% allocs of %s\n", len(deltas), maxRegress, maxAllocs, baselinePath)
	return 0
}
