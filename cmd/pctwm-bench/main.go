// Command pctwm-bench prints the full strategy × benchmark hit-rate
// matrix with Wilson confidence intervals — the quick overview of how the
// algorithms compare on the paper's suite.
//
// Usage:
//
//	pctwm-bench [-runs N] [-s SEED] [-workers N] [-d D] [-y H] [-bench a,b]
//	            [-json] [-compare FILE [-max-regress PCT]] [-engine.baton]
//
// -workers spreads each cell's rounds over N worker goroutines (0 =
// GOMAXPROCS, 1 = serial; results are identical for every worker count).
// -json switches to the machine-readable engine performance snapshot:
// instead of the hit-rate matrix, it emits one steady-state measurement
// (ns/run, runs/sec, allocs/run) per benchmark × strategy on stdout — the
// format committed as BENCH_engine.json. -compare measures the same
// snapshot and diffs it benchstat-style against a committed baseline,
// exiting 1 when any cell's ns_per_event regressed by more than
// -max-regress percent — the CI bench gate. -engine.baton runs everything
// on the legacy baton scheduler (escape hatch; same schedules, slower).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"pctwm/internal/benchprog"
	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/harness"
)

func main() {
	var (
		runs       = flag.Int("runs", 500, "rounds per strategy per benchmark")
		seed       = flag.Int64("s", 1, "base random seed")
		workers    = flag.Int("workers", 1, "worker goroutines per cell (0 = GOMAXPROCS, 1 = serial)")
		depth      = flag.Int("d", -1, "bug depth override (-1 = each benchmark's design depth)")
		history    = flag.Int("y", 1, "history depth for PCTWM")
		jsonOut    = flag.Bool("json", false, "emit the engine performance snapshot as JSON instead of the hit-rate matrix")
		benchSel   = flag.String("bench", "", "comma-separated benchmark names (default: all)")
		compare    = flag.String("compare", "", "baseline snapshot JSON to diff the fresh measurement against (benchstat-style)")
		maxRegress = flag.Float64("max-regress", 15, "with -compare: fail when ns_per_event regresses by more than this percent")
		baton      = flag.Bool("engine.baton", false, "use the legacy baton scheduler (escape hatch; identical schedules)")
	)
	flag.Parse()

	dFor := func(b *benchprog.Benchmark) int {
		if *depth >= 0 {
			return *depth
		}
		return b.Depth
	}
	optsFor := func(b *benchprog.Benchmark) engine.Options {
		opts := b.Options()
		opts.Baton = *baton
		return opts
	}

	benches := benchprog.All()
	if *benchSel != "" {
		benches = benches[:0]
		for _, name := range strings.Split(*benchSel, ",") {
			b, err := benchprog.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "pctwm-bench: %v\n", err)
				os.Exit(2)
			}
			benches = append(benches, b)
		}
	}

	if *compare != "" {
		os.Exit(runCompare(benches, dFor, optsFor, *runs, *seed, *history, *compare, *maxRegress))
	}
	if *jsonOut {
		emitSnapshot(os.Stdout, benches, dFor, optsFor, *runs, *seed, *history)
		return
	}

	type column struct {
		name    string
		factory func(b *benchprog.Benchmark) harness.StrategyFactory
	}
	cols := []column{
		{"c11tester", func(*benchprog.Benchmark) harness.StrategyFactory { return harness.C11Tester() }},
		{"pos", func(*benchprog.Benchmark) harness.StrategyFactory { return harness.POSFactory() }},
		{"pct", func(b *benchprog.Benchmark) harness.StrategyFactory {
			d := dFor(b)
			if d < 1 {
				d = 1
			}
			return harness.PCTFactory(d)
		}},
		{"pctwm", func(b *benchprog.Benchmark) harness.StrategyFactory {
			return harness.PCTWMFactory(dFor(b), *history)
		}},
	}

	start := time.Now()
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	header := "Benchmark\td"
	for _, c := range cols {
		header += "\t" + c.name
	}
	fmt.Fprintln(tw, header)
	for _, b := range benches {
		prog := b.Program(0)
		opts := optsFor(b)
		est := harness.EstimateParams(prog, 20, *seed^0x5eed, opts)
		row := fmt.Sprintf("%s\t%d", b.Name, dFor(b))
		for i, c := range cols {
			factory := c.factory(b)
			newStrategy := func() engine.Strategy { return factory(est) }
			res := harness.RunTrialsPooled(prog, b.Detect, newStrategy, *runs, *seed+int64(10*i), opts, *workers)
			lo, hi := res.CI95()
			row += fmt.Sprintf("\t%.1f [%.0f,%.0f]", res.Rate(), lo, hi)
		}
		fmt.Fprintln(tw, row)
	}
	tw.Flush()
	fmt.Printf("(%d rounds per cell, %v total)\n", *runs, time.Since(start).Round(time.Millisecond))
}

// snapshotSweeps is how many times the snapshot measurement sweeps the
// whole benchmark × strategy matrix. Each cell keeps its fastest sweep:
// the sweeps sample every cell at well-separated points in time, so an
// ambient noise episode (frequency scaling, a co-tenant VM burning the
// core) must span the entire measurement to bias a cell. The work is
// deterministic per cell, so the minimum estimates the unperturbed cost.
const snapshotSweeps = 3

// measureSnapshot measures the steady-state trial loop per benchmark for
// the random baseline and PCTWM. See snapshotSweeps for the noise model.
func measureSnapshot(benches []*benchprog.Benchmark, dFor func(*benchprog.Benchmark) int,
	optsFor func(*benchprog.Benchmark) engine.Options, runs int, seed int64, history int) []harness.EngineSnapshot {
	type cell struct {
		prog *engine.Program
		opts engine.Options
		name string
		mk   func() engine.Strategy
	}
	var cells []cell
	for _, b := range benches {
		b := b
		prog := b.Program(0)
		opts := optsFor(b)
		est := harness.EstimateParams(prog, 20, seed^0x5eed, opts)
		cells = append(cells,
			cell{prog, opts, b.Name, func() engine.Strategy { return core.NewRandom() }},
			cell{prog, opts, b.Name, func() engine.Strategy { return core.NewPCTWM(dFor(b), history, est.KCom) }},
		)
	}

	snaps := make([]harness.EngineSnapshot, len(cells))
	for sweep := 0; sweep < snapshotSweeps; sweep++ {
		for i, c := range cells {
			snap := harness.MeasureEngine(c.name, c.prog, c.mk(), runs, seed, c.opts)
			if sweep == 0 || snap.NsPerRun < snaps[i].NsPerRun {
				snaps[i] = snap
			}
		}
	}
	return snaps
}

// emitSnapshot writes the JSON snapshot array to w (the BENCH_engine.json
// format).
func emitSnapshot(w *os.File, benches []*benchprog.Benchmark, dFor func(*benchprog.Benchmark) int,
	optsFor func(*benchprog.Benchmark) engine.Options, runs int, seed int64, history int) {
	snaps := measureSnapshot(benches, dFor, optsFor, runs, seed, history)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snaps); err != nil {
		fmt.Fprintf(os.Stderr, "pctwm-bench: %v\n", err)
		os.Exit(1)
	}
}

// runCompare measures a fresh snapshot of the selected benchmarks, diffs
// it against the committed baseline and prints a benchstat-style table.
// The returned exit code is 1 when any compared cell's ns_per_event
// regressed by more than maxRegress percent.
func runCompare(benches []*benchprog.Benchmark, dFor func(*benchprog.Benchmark) int,
	optsFor func(*benchprog.Benchmark) engine.Options, runs int, seed int64, history int,
	baselinePath string, maxRegress float64) int {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pctwm-bench: %v\n", err)
		return 2
	}
	var baseline []harness.EngineSnapshot
	if err := json.Unmarshal(data, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "pctwm-bench: %s: %v\n", baselinePath, err)
		return 2
	}

	// Restrict the baseline to the benchmarks actually being measured so
	// a partial run (the CI gate measures three) is not failed for cells
	// it never sampled.
	selected := make(map[string]bool, len(benches))
	for _, b := range benches {
		selected[b.Name] = true
	}
	kept := baseline[:0]
	for _, s := range baseline {
		if selected[s.Benchmark] {
			kept = append(kept, s)
		}
	}

	fresh := measureSnapshot(benches, dFor, optsFor, runs, seed, history)
	deltas := harness.CompareSnapshots(kept, fresh)
	if len(deltas) == 0 {
		fmt.Fprintf(os.Stderr, "pctwm-bench: no comparable cells between %s and the fresh measurement\n", baselinePath)
		return 2
	}

	failed := 0
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tstrategy\told ns/event\tnew ns/event\tdelta")
	for _, d := range deltas {
		mark := ""
		if d.Regressed(maxRegress) {
			mark = "  REGRESSION"
			failed++
		}
		fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.1f\t%+.1f%%%s\n",
			d.Benchmark, d.Strategy, d.OldNsPerEvent, d.NewNsPerEvent, d.DeltaPercent, mark)
	}
	tw.Flush()
	if failed > 0 {
		fmt.Printf("FAIL: %d of %d cells regressed ns_per_event by more than %.0f%% vs %s\n",
			failed, len(deltas), maxRegress, baselinePath)
		return 1
	}
	fmt.Printf("ok: %d cells within %.0f%% of %s\n", len(deltas), maxRegress, baselinePath)
	return 0
}
