// Command pctwm-bench prints the full strategy × benchmark hit-rate
// matrix with Wilson confidence intervals — the quick overview of how the
// algorithms compare on the paper's suite.
//
// Usage:
//
//	pctwm-bench [-runs N] [-s SEED] [-workers N] [-d D] [-y H] [-json]
//
// -workers spreads each cell's rounds over N worker goroutines (0 =
// GOMAXPROCS, 1 = serial; results are identical for every worker count).
// -json switches to the machine-readable engine performance snapshot:
// instead of the hit-rate matrix, it emits one steady-state measurement
// (ns/run, runs/sec, allocs/run) per benchmark × strategy on stdout — the
// format committed as BENCH_engine.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"pctwm/internal/benchprog"
	"pctwm/internal/core"
	"pctwm/internal/engine"
	"pctwm/internal/harness"
)

func main() {
	var (
		runs     = flag.Int("runs", 500, "rounds per strategy per benchmark")
		seed     = flag.Int64("s", 1, "base random seed")
		workers  = flag.Int("workers", 1, "worker goroutines per cell (0 = GOMAXPROCS, 1 = serial)")
		depth    = flag.Int("d", -1, "bug depth override (-1 = each benchmark's design depth)")
		history  = flag.Int("y", 1, "history depth for PCTWM")
		jsonOut  = flag.Bool("json", false, "emit the engine performance snapshot as JSON instead of the hit-rate matrix")
		benchSel = flag.String("bench", "", "comma-free single benchmark name (default: all)")
	)
	flag.Parse()

	dFor := func(b *benchprog.Benchmark) int {
		if *depth >= 0 {
			return *depth
		}
		return b.Depth
	}

	benches := benchprog.All()
	if *benchSel != "" {
		b, err := benchprog.ByName(*benchSel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pctwm-bench: %v\n", err)
			os.Exit(2)
		}
		benches = []*benchprog.Benchmark{b}
	}

	if *jsonOut {
		emitSnapshot(benches, dFor, *runs, *seed, *history)
		return
	}

	type column struct {
		name    string
		factory func(b *benchprog.Benchmark) harness.StrategyFactory
	}
	cols := []column{
		{"c11tester", func(*benchprog.Benchmark) harness.StrategyFactory { return harness.C11Tester() }},
		{"pos", func(*benchprog.Benchmark) harness.StrategyFactory { return harness.POSFactory() }},
		{"pct", func(b *benchprog.Benchmark) harness.StrategyFactory {
			d := dFor(b)
			if d < 1 {
				d = 1
			}
			return harness.PCTFactory(d)
		}},
		{"pctwm", func(b *benchprog.Benchmark) harness.StrategyFactory {
			return harness.PCTWMFactory(dFor(b), *history)
		}},
	}

	start := time.Now()
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	header := "Benchmark\td"
	for _, c := range cols {
		header += "\t" + c.name
	}
	fmt.Fprintln(tw, header)
	for _, b := range benches {
		prog := b.Program(0)
		opts := b.Options()
		est := harness.EstimateParams(prog, 20, *seed^0x5eed, opts)
		row := fmt.Sprintf("%s\t%d", b.Name, dFor(b))
		for i, c := range cols {
			factory := c.factory(b)
			newStrategy := func() engine.Strategy { return factory(est) }
			res := harness.RunTrialsPooled(prog, b.Detect, newStrategy, *runs, *seed+int64(10*i), opts, *workers)
			lo, hi := res.CI95()
			row += fmt.Sprintf("\t%.1f [%.0f,%.0f]", res.Rate(), lo, hi)
		}
		fmt.Fprintln(tw, row)
	}
	tw.Flush()
	fmt.Printf("(%d rounds per cell, %v total)\n", *runs, time.Since(start).Round(time.Millisecond))
}

// emitSnapshot measures the steady-state trial loop per benchmark for the
// random baseline and PCTWM and writes the JSON array to stdout.
func emitSnapshot(benches []*benchprog.Benchmark, dFor func(*benchprog.Benchmark) int, runs int, seed int64, history int) {
	var snaps []harness.EngineSnapshot
	for _, b := range benches {
		prog := b.Program(0)
		opts := b.Options()
		est := harness.EstimateParams(prog, 20, seed^0x5eed, opts)
		strategies := []engine.Strategy{
			core.NewRandom(),
			core.NewPCTWM(dFor(b), history, est.KCom),
		}
		for _, s := range strategies {
			snaps = append(snaps, harness.MeasureEngine(b.Name, prog, s, runs, seed, opts))
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snaps); err != nil {
		fmt.Fprintf(os.Stderr, "pctwm-bench: %v\n", err)
		os.Exit(1)
	}
}
